// Quickstart: build a small multiprocessor-task schedule through the API,
// inspect composite (overlap) tasks, and export it as PNG, SVG and
// Jedule-XML — the minimal end-to-end tour of the library.
//
//   ./quickstart [output-directory]

#include <iostream>

#include "jedule/jedule.hpp"

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";

  using namespace jedule;

  // A cluster of 8 hosts running one 8-processor computation, with a
  // 4-processor data transfer overlapping its tail — the paper's Fig. 3
  // scenario, where the overlap becomes an orange "composite" task.
  model::Schedule schedule =
      model::ScheduleBuilder()
          .cluster(0, "cluster-0", 8)
          .meta("example", "quickstart")
          .task("1", "computation", 0.0, 0.31)
          .on(0, /*first_host=*/0, /*host_count=*/8)
          .task("2", "transfer", 0.25, 0.50)
          .on(0, 2, 4)
          .task("3", "computation", 0.50, 0.80)
          .hosts(0, {0, 1, 6, 7})  // non-contiguous allocation
          .build();

  // Statistics: the numbers behind the picture.
  const model::ScheduleStats stats = model::compute_stats(schedule);
  std::cout << "tasks:       " << stats.task_count << "\n"
            << "makespan:    " << stats.makespan << "\n"
            << "utilization: " << stats.utilization * 100.0 << "%\n";

  // Composite synthesis: where do tasks share resources?
  for (const auto& comp : model::synthesize_composites(schedule)) {
    std::cout << "composite " << comp.task.id() << " on ["
              << comp.task.start_time() << ", " << comp.task.end_time()
              << ")\n";
  }

  // Render with the bundled colormap (blue computation, red transfer,
  // orange composite) and with its grayscale version. A RenderOptions
  // carries style + colormap + thread count through the exporter registry;
  // threads = 0 means "JEDULE_THREADS env or hardware concurrency".
  render::RenderOptions options;
  options.style.width = 900;
  options.style.height = 420;
  render::export_schedule(schedule, options, dir + "/quickstart.png");
  render::export_schedule(schedule, options, dir + "/quickstart.svg");
  render::RenderOptions gray = options;
  gray.colormap = gray.colormap.grayscale();
  render::export_schedule(schedule, gray, dir + "/quickstart_gray.png");

  // Round-trip through the XML format of the paper's Fig. 1.
  io::save_schedule_xml(schedule, dir + "/quickstart.jed");
  const model::Schedule reloaded =
      io::load_schedule_xml(dir + "/quickstart.jed");
  std::cout << "reloaded " << reloaded.tasks().size() << " tasks from XML\n";

  std::cout << "wrote quickstart.{png,svg,jed} and quickstart_gray.png to "
            << dir << "\n";
  return 0;
}
