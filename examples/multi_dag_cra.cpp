// Case study Sec. IV: schedule four mixed-parallel applications on one
// 20-processor cluster with Constrained Resource Allocation (CRA_WORK /
// CRA_WIDTH), check the resource constraints visually (each application has
// its own color and its own processors — paper Fig. 5), and quantify what
// conservative backfilling recovers.
//
//   ./multi_dag_cra [output-directory]

#include <iostream>

#include "jedule/jedule.hpp"

int main(int argc, char** argv) {
  using namespace jedule;

  const std::string dir = argc > 1 ? argv[1] : ".";
  const auto platform = platform::homogeneous_cluster(20);

  // Four applications of different shapes and sizes.
  util::Rng rng(5);
  std::vector<dag::Dag> apps;
  apps.push_back(dag::fork_join_dag(3, 5, rng));
  apps.push_back(dag::long_dag(10, rng));
  apps.push_back(dag::wide_dag(8, rng));
  {
    dag::LayeredDagOptions o;
    o.levels = 5;
    o.min_width = 2;
    o.max_width = 4;
    apps.push_back(dag::layered_random(o, rng));
  }

  render::RenderOptions render_options;
  render_options.style.width = 1000;
  render_options.style.height = 520;

  for (const auto metric :
       {sched::ShareMetric::kWork, sched::ShareMetric::kWidth}) {
    sched::CraOptions options;
    options.metric = metric;
    options.mu = 0.5;
    options.backfill = true;

    const auto result = sched::schedule_multi_dag(apps, platform, options);
    std::cout << sched::share_metric_name(metric) << ": overall makespan "
              << result.overall_makespan << "\n";
    for (std::size_t i = 0; i < result.apps.size(); ++i) {
      const auto& app = result.apps[i];
      std::cout << "  app" << i << ": procs [" << app.first_host << ", "
                << app.first_host + app.host_count << "), makespan "
                << app.makespan << ", stretch " << app.stretch << "\n";
    }
    std::cout << "  idle before/after backfill: "
              << result.idle_before_backfill << " / "
              << result.idle_after_backfill << " ("
              << result.backfilled_tasks << " tasks moved)\n";

    const std::string file = std::string(dir) + "/cra_" +
                             sched::share_metric_name(metric) + ".png";
    render::export_schedule(result.schedule, render_options, file);
    std::cout << "  -> " << file << "\n";
  }
  return 0;
}
