// Case study Sec. VI: run the instrumented parallel Quicksort on the task
// pool and visualize per-thread execution (blue) and waiting (red) time —
// the paper's Figs. 11-12. The adversarial input (inversely sorted numbers,
// middle pivot) keeps a single thread busy for a large part of the run.
//
//   ./taskpool_quicksort [threads] [elements] [output-directory]

#include <iostream>

#include "jedule/jedule.hpp"

int main(int argc, char** argv) {
  using namespace jedule;
  using taskpool::QuicksortOptions;

  taskpool::TaskPool::Options pool;
  pool.threads = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::size_t elements =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 2'000'000;
  const std::string dir = argc > 3 ? argv[3] : ".";

  render::RenderOptions options;
  options.style.width = 1100;
  options.style.height = 420;
  options.style.show_labels = false;      // hundreds of tiny boxes
  options.style.show_composites = false;  // exec/wait never overlap per thread

  struct Run {
    const char* name;
    QuicksortOptions::Input input;
    const char* file;
  };
  for (const Run r : {Run{"random input", QuicksortOptions::Input::kRandom,
                          "/qsort_random.png"},
                      Run{"inversely sorted input",
                          QuicksortOptions::Input::kReversed,
                          "/qsort_reversed.png"}}) {
    QuicksortOptions qs;
    qs.elements = elements;
    qs.input = r.input;

    const auto run = taskpool::run_parallel_quicksort(pool, qs);
    std::cout << r.name << ": " << run.tasks << " tasks, "
              << run.log.wallclock << " s on " << pool.threads
              << " threads, sorted=" << (run.sorted ? "yes" : "NO") << "\n";

    taskpool::LogScheduleOptions ls;
    ls.merge_gap = run.log.wallclock / 4000.0;  // keep the view displayable
    const auto schedule = taskpool::log_to_schedule(run.log, ls);

    const double solo = model::fraction_of_time_with_busy(
        schedule, 1, {"computation"});
    std::cout << "  fraction of time with exactly 1 busy thread: " << solo
              << "\n";

    render::export_schedule(schedule, options, dir + r.file);
    std::cout << "  -> " << dir << r.file << "\n";
  }
  return 0;
}
