// Case study Sec. III: schedule the same moldable-task DAG with CPA, MCPA
// and the MCPA2 poly-algorithm on a homogeneous cluster, and export the
// side-by-side schedules a developer would eyeball — the workflow behind
// the paper's Fig. 4, where MCPA shows large idle holes.
//
//   ./mtask_cpa_vs_mcpa [procs] [output-directory]

#include <iostream>

#include "jedule/jedule.hpp"

int main(int argc, char** argv) {
  using namespace jedule;

  const int procs = argc > 1 ? std::atoi(argv[1]) : 16;
  const std::string dir = argc > 2 ? argv[2] : ".";

  // The Fig. 4 trigger: one precedence level mixing cheap and expensive
  // tasks, as wide as the machine.
  const dag::Dag graph = dag::mcpa_pathological_dag(procs);
  const platform::Platform cluster = platform::homogeneous_cluster(procs);

  render::RenderOptions options;
  options.style.width = 900;
  options.style.height = 500;

  std::cout << "DAG: " << graph.node_count() << " nodes, width "
            << graph.width() << "; cluster: " << procs << " procs\n\n";

  for (const auto algo : {sched::MTaskAlgorithm::kCpa,
                          sched::MTaskAlgorithm::kMcpa,
                          sched::MTaskAlgorithm::kMcpa2}) {
    const auto result = sched::schedule_mtask(graph, cluster, algo);
    const auto schedule = sched::mtask_to_schedule(graph, cluster, result);
    const auto stats = model::compute_stats(schedule);

    std::cout << result.algorithm << ": makespan " << result.makespan
              << ", idle " << stats.idle_time << " (utilization "
              << stats.utilization * 100.0 << "%)\n";

    const std::string file =
        dir + "/mtask_" + std::string(sched::algorithm_name(algo)) + ".png";
    render::export_schedule(schedule, options, file);
    std::cout << "  -> " << file << "\n";
  }

  std::cout << "\nMCPA shows the load-imbalance holes of paper Fig. 4; "
               "MCPA2 picks the CPA schedule.\n";
  return 0;
}
