// Case study Sec. VII: bird's-eye view of one day of a 1024-node cluster.
// Generates a synthetic LLNL-Thunder-like SWF trace (or loads a real .swf
// file if given), reconstructs node placements, highlights one user's jobs
// in yellow, and drives the headless interactive session to zoom into the
// busiest hours — paper Fig. 13 plus the Sec. II.D.1 interactions.
//
//   ./workload_browser [trace.swf] [output-directory]

#include <iostream>

#include "jedule/jedule.hpp"

int main(int argc, char** argv) {
  using namespace jedule;

  std::string trace_file;
  std::string dir = ".";
  if (argc > 1) trace_file = argv[1];
  if (argc > 2) dir = argv[2];

  io::SwfTrace trace;
  workload::TraceScheduleOptions conv;
  conv.cluster_name = "thunder";
  if (!trace_file.empty()) {
    trace = io::load_swf(trace_file);
    std::cout << "loaded " << trace.jobs.size() << " jobs from "
              << trace_file << "\n";
  } else {
    const workload::ThunderOptions opts;
    trace = workload::generate_thunder_day(opts);
    conv.reserved_nodes = opts.reserved_nodes;
    std::cout << "generated synthetic Thunder day: " << trace.jobs.size()
              << " jobs on " << opts.nodes << " nodes\n";
  }

  const auto converted = workload::trace_to_schedule(trace, conv);
  std::cout << "placed " << converted.schedule.tasks().size() << " jobs ("
            << converted.overlapped_jobs << " with placement conflicts, "
            << converted.dropped_jobs << " dropped)\n";

  // Highlight user 6447's jobs in yellow (the paper's Fig. 13).
  render::GanttStyle style;
  style.width = 1280;
  style.height = 720;
  style.show_labels = false;
  style.show_composites = false;
  style.highlight_key = "user";
  style.highlight_value = "6447";

  const color::ColorMap cmap = color::standard_colormap();
  render::RenderOptions options;
  options.style = style;
  options.colormap = cmap;
  render::export_schedule(converted.schedule, options,
                          dir + "/thunder_day.png");
  std::cout << "-> " << dir << "/thunder_day.png\n";

  // Interactive-mode tour: info, zoom into the afternoon, inspect a pixel.
  interactive::Session session(converted.schedule, cmap, style);
  for (const char* cmd : {"info", "zoom 40000 70000", "inspect 640 360",
                          "reset"}) {
    std::cout << "view> " << cmd << "\n  " << session.execute(cmd) << "\n";
  }
  session.execute("zoom 40000 70000");
  session.snapshot(dir + "/thunder_afternoon.png");
  std::cout << "-> " << dir << "/thunder_afternoon.png\n";
  return 0;
}
