// Case study Sec. V: HEFT-schedule a Montage workflow onto the
// heterogeneous 4-cluster platform of paper Fig. 7, once with the buggy
// platform description (backbone latency == intra-cluster latency) and once
// with a realistic backbone. The schedule views reproduce Figs. 8-9; the
// console output shows the anomaly Jedule exposed: under the flat latency
// an mBackground task migrates to a remote cluster "for free".
//
//   ./montage_heft [output-directory]

#include <iostream>
#include <map>

#include "jedule/jedule.hpp"

int main(int argc, char** argv) {
  using namespace jedule;

  const std::string dir = argc > 1 ? argv[1] : ".";
  const dag::Dag montage = dag::montage_case_study();
  std::cout << "Montage instance: " << montage.node_count() << " nodes\n";

  render::RenderOptions options;
  options.style.width = 1000;
  options.style.height = 640;
  options.style.view_mode = model::ViewMode::kAligned;

  struct Variant {
    const char* name;
    double backbone_latency;
    const char* file;
  };
  for (const Variant v : {Variant{"flat latency (buggy description)", 0.0,
                                  "/montage_heft_flat.png"},
                          Variant{"realistic backbone (50 ms)", 5e-2,
                                  "/montage_heft_backbone.png"}}) {
    const auto platform = platform::heterogeneous_case_study(v.backbone_latency);
    const auto result = sched::schedule_heft(montage, platform);
    std::cout << "\n" << v.name << ": " << result.free_ride_nodes.size()
              << " free-ride placement(s)";
    for (int n : result.free_ride_nodes) {
      std::cout << " " << montage.node(n).name << "->host"
                << result.host[static_cast<std::size_t>(n)];
    }

    // Where did the mBackground tasks go?
    std::map<int, int> clusters_used;
    for (int n = 0; n < montage.node_count(); ++n) {
      if (montage.node(n).type == "mBackground") {
        ++clusters_used[platform.cluster_of(
            result.host[static_cast<std::size_t>(n)])];
      }
    }
    std::cout << "\n" << v.name << ": makespan " << result.makespan << " s\n"
              << "  mBackground placement:";
    for (const auto& [cluster, count] : clusters_used) {
      std::cout << " cluster" << cluster << "=" << count;
    }
    std::cout << "\n";

    const auto schedule = sched::heft_to_schedule(montage, platform, result);
    render::export_schedule(schedule, options, dir + v.file);
    std::cout << "  -> " << dir << v.file << "\n";
  }

  dag::save_dot(montage, dir + "/montage.dot");
  std::cout << "\nworkflow structure (paper Fig. 6) -> " << dir
            << "/montage.dot\n";
  return 0;
}
