file(REMOVE_RECURSE
  "CMakeFiles/jed_sched.dir/allocation.cpp.o"
  "CMakeFiles/jed_sched.dir/allocation.cpp.o.d"
  "CMakeFiles/jed_sched.dir/backfill.cpp.o"
  "CMakeFiles/jed_sched.dir/backfill.cpp.o.d"
  "CMakeFiles/jed_sched.dir/cra.cpp.o"
  "CMakeFiles/jed_sched.dir/cra.cpp.o.d"
  "CMakeFiles/jed_sched.dir/heft.cpp.o"
  "CMakeFiles/jed_sched.dir/heft.cpp.o.d"
  "CMakeFiles/jed_sched.dir/mapping.cpp.o"
  "CMakeFiles/jed_sched.dir/mapping.cpp.o.d"
  "CMakeFiles/jed_sched.dir/mtask.cpp.o"
  "CMakeFiles/jed_sched.dir/mtask.cpp.o.d"
  "libjed_sched.a"
  "libjed_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jed_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
