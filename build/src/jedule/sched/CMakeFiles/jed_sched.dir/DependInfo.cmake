
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jedule/sched/allocation.cpp" "src/jedule/sched/CMakeFiles/jed_sched.dir/allocation.cpp.o" "gcc" "src/jedule/sched/CMakeFiles/jed_sched.dir/allocation.cpp.o.d"
  "/root/repo/src/jedule/sched/backfill.cpp" "src/jedule/sched/CMakeFiles/jed_sched.dir/backfill.cpp.o" "gcc" "src/jedule/sched/CMakeFiles/jed_sched.dir/backfill.cpp.o.d"
  "/root/repo/src/jedule/sched/cra.cpp" "src/jedule/sched/CMakeFiles/jed_sched.dir/cra.cpp.o" "gcc" "src/jedule/sched/CMakeFiles/jed_sched.dir/cra.cpp.o.d"
  "/root/repo/src/jedule/sched/heft.cpp" "src/jedule/sched/CMakeFiles/jed_sched.dir/heft.cpp.o" "gcc" "src/jedule/sched/CMakeFiles/jed_sched.dir/heft.cpp.o.d"
  "/root/repo/src/jedule/sched/mapping.cpp" "src/jedule/sched/CMakeFiles/jed_sched.dir/mapping.cpp.o" "gcc" "src/jedule/sched/CMakeFiles/jed_sched.dir/mapping.cpp.o.d"
  "/root/repo/src/jedule/sched/mtask.cpp" "src/jedule/sched/CMakeFiles/jed_sched.dir/mtask.cpp.o" "gcc" "src/jedule/sched/CMakeFiles/jed_sched.dir/mtask.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jedule/sim/CMakeFiles/jed_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/dag/CMakeFiles/jed_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/platform/CMakeFiles/jed_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/model/CMakeFiles/jed_model.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/util/CMakeFiles/jed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
