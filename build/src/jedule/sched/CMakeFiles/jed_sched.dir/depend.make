# Empty dependencies file for jed_sched.
# This may be replaced when dependencies are built.
