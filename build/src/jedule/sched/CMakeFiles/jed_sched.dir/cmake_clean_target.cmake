file(REMOVE_RECURSE
  "libjed_sched.a"
)
