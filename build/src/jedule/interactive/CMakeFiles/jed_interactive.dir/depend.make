# Empty dependencies file for jed_interactive.
# This may be replaced when dependencies are built.
