file(REMOVE_RECURSE
  "libjed_interactive.a"
)
