file(REMOVE_RECURSE
  "CMakeFiles/jed_interactive.dir/session.cpp.o"
  "CMakeFiles/jed_interactive.dir/session.cpp.o.d"
  "libjed_interactive.a"
  "libjed_interactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jed_interactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
