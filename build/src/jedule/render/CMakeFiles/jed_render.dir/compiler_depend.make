# Empty compiler generated dependencies file for jed_render.
# This may be replaced when dependencies are built.
