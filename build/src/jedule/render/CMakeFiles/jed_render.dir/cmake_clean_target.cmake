file(REMOVE_RECURSE
  "libjed_render.a"
)
