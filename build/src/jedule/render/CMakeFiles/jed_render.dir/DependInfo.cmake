
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jedule/render/ascii.cpp" "src/jedule/render/CMakeFiles/jed_render.dir/ascii.cpp.o" "gcc" "src/jedule/render/CMakeFiles/jed_render.dir/ascii.cpp.o.d"
  "/root/repo/src/jedule/render/canvas.cpp" "src/jedule/render/CMakeFiles/jed_render.dir/canvas.cpp.o" "gcc" "src/jedule/render/CMakeFiles/jed_render.dir/canvas.cpp.o.d"
  "/root/repo/src/jedule/render/deflate.cpp" "src/jedule/render/CMakeFiles/jed_render.dir/deflate.cpp.o" "gcc" "src/jedule/render/CMakeFiles/jed_render.dir/deflate.cpp.o.d"
  "/root/repo/src/jedule/render/export.cpp" "src/jedule/render/CMakeFiles/jed_render.dir/export.cpp.o" "gcc" "src/jedule/render/CMakeFiles/jed_render.dir/export.cpp.o.d"
  "/root/repo/src/jedule/render/font.cpp" "src/jedule/render/CMakeFiles/jed_render.dir/font.cpp.o" "gcc" "src/jedule/render/CMakeFiles/jed_render.dir/font.cpp.o.d"
  "/root/repo/src/jedule/render/framebuffer.cpp" "src/jedule/render/CMakeFiles/jed_render.dir/framebuffer.cpp.o" "gcc" "src/jedule/render/CMakeFiles/jed_render.dir/framebuffer.cpp.o.d"
  "/root/repo/src/jedule/render/gantt.cpp" "src/jedule/render/CMakeFiles/jed_render.dir/gantt.cpp.o" "gcc" "src/jedule/render/CMakeFiles/jed_render.dir/gantt.cpp.o.d"
  "/root/repo/src/jedule/render/inflate.cpp" "src/jedule/render/CMakeFiles/jed_render.dir/inflate.cpp.o" "gcc" "src/jedule/render/CMakeFiles/jed_render.dir/inflate.cpp.o.d"
  "/root/repo/src/jedule/render/pdf.cpp" "src/jedule/render/CMakeFiles/jed_render.dir/pdf.cpp.o" "gcc" "src/jedule/render/CMakeFiles/jed_render.dir/pdf.cpp.o.d"
  "/root/repo/src/jedule/render/png.cpp" "src/jedule/render/CMakeFiles/jed_render.dir/png.cpp.o" "gcc" "src/jedule/render/CMakeFiles/jed_render.dir/png.cpp.o.d"
  "/root/repo/src/jedule/render/ppm.cpp" "src/jedule/render/CMakeFiles/jed_render.dir/ppm.cpp.o" "gcc" "src/jedule/render/CMakeFiles/jed_render.dir/ppm.cpp.o.d"
  "/root/repo/src/jedule/render/profile.cpp" "src/jedule/render/CMakeFiles/jed_render.dir/profile.cpp.o" "gcc" "src/jedule/render/CMakeFiles/jed_render.dir/profile.cpp.o.d"
  "/root/repo/src/jedule/render/raster_canvas.cpp" "src/jedule/render/CMakeFiles/jed_render.dir/raster_canvas.cpp.o" "gcc" "src/jedule/render/CMakeFiles/jed_render.dir/raster_canvas.cpp.o.d"
  "/root/repo/src/jedule/render/svg.cpp" "src/jedule/render/CMakeFiles/jed_render.dir/svg.cpp.o" "gcc" "src/jedule/render/CMakeFiles/jed_render.dir/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jedule/model/CMakeFiles/jed_model.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/color/CMakeFiles/jed_color.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/io/CMakeFiles/jed_io.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/util/CMakeFiles/jed_util.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/xml/CMakeFiles/jed_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
