file(REMOVE_RECURSE
  "CMakeFiles/jed_render.dir/ascii.cpp.o"
  "CMakeFiles/jed_render.dir/ascii.cpp.o.d"
  "CMakeFiles/jed_render.dir/canvas.cpp.o"
  "CMakeFiles/jed_render.dir/canvas.cpp.o.d"
  "CMakeFiles/jed_render.dir/deflate.cpp.o"
  "CMakeFiles/jed_render.dir/deflate.cpp.o.d"
  "CMakeFiles/jed_render.dir/export.cpp.o"
  "CMakeFiles/jed_render.dir/export.cpp.o.d"
  "CMakeFiles/jed_render.dir/font.cpp.o"
  "CMakeFiles/jed_render.dir/font.cpp.o.d"
  "CMakeFiles/jed_render.dir/framebuffer.cpp.o"
  "CMakeFiles/jed_render.dir/framebuffer.cpp.o.d"
  "CMakeFiles/jed_render.dir/gantt.cpp.o"
  "CMakeFiles/jed_render.dir/gantt.cpp.o.d"
  "CMakeFiles/jed_render.dir/inflate.cpp.o"
  "CMakeFiles/jed_render.dir/inflate.cpp.o.d"
  "CMakeFiles/jed_render.dir/pdf.cpp.o"
  "CMakeFiles/jed_render.dir/pdf.cpp.o.d"
  "CMakeFiles/jed_render.dir/png.cpp.o"
  "CMakeFiles/jed_render.dir/png.cpp.o.d"
  "CMakeFiles/jed_render.dir/ppm.cpp.o"
  "CMakeFiles/jed_render.dir/ppm.cpp.o.d"
  "CMakeFiles/jed_render.dir/profile.cpp.o"
  "CMakeFiles/jed_render.dir/profile.cpp.o.d"
  "CMakeFiles/jed_render.dir/raster_canvas.cpp.o"
  "CMakeFiles/jed_render.dir/raster_canvas.cpp.o.d"
  "CMakeFiles/jed_render.dir/svg.cpp.o"
  "CMakeFiles/jed_render.dir/svg.cpp.o.d"
  "libjed_render.a"
  "libjed_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jed_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
