# Empty compiler generated dependencies file for jed_dag.
# This may be replaced when dependencies are built.
