file(REMOVE_RECURSE
  "libjed_dag.a"
)
