file(REMOVE_RECURSE
  "CMakeFiles/jed_dag.dir/dag.cpp.o"
  "CMakeFiles/jed_dag.dir/dag.cpp.o.d"
  "CMakeFiles/jed_dag.dir/dot.cpp.o"
  "CMakeFiles/jed_dag.dir/dot.cpp.o.d"
  "CMakeFiles/jed_dag.dir/generators.cpp.o"
  "CMakeFiles/jed_dag.dir/generators.cpp.o.d"
  "CMakeFiles/jed_dag.dir/montage.cpp.o"
  "CMakeFiles/jed_dag.dir/montage.cpp.o.d"
  "libjed_dag.a"
  "libjed_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jed_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
