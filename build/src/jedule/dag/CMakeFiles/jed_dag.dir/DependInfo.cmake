
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jedule/dag/dag.cpp" "src/jedule/dag/CMakeFiles/jed_dag.dir/dag.cpp.o" "gcc" "src/jedule/dag/CMakeFiles/jed_dag.dir/dag.cpp.o.d"
  "/root/repo/src/jedule/dag/dot.cpp" "src/jedule/dag/CMakeFiles/jed_dag.dir/dot.cpp.o" "gcc" "src/jedule/dag/CMakeFiles/jed_dag.dir/dot.cpp.o.d"
  "/root/repo/src/jedule/dag/generators.cpp" "src/jedule/dag/CMakeFiles/jed_dag.dir/generators.cpp.o" "gcc" "src/jedule/dag/CMakeFiles/jed_dag.dir/generators.cpp.o.d"
  "/root/repo/src/jedule/dag/montage.cpp" "src/jedule/dag/CMakeFiles/jed_dag.dir/montage.cpp.o" "gcc" "src/jedule/dag/CMakeFiles/jed_dag.dir/montage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jedule/util/CMakeFiles/jed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
