file(REMOVE_RECURSE
  "libjed_color.a"
)
