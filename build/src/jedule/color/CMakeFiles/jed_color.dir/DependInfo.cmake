
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jedule/color/color.cpp" "src/jedule/color/CMakeFiles/jed_color.dir/color.cpp.o" "gcc" "src/jedule/color/CMakeFiles/jed_color.dir/color.cpp.o.d"
  "/root/repo/src/jedule/color/colormap.cpp" "src/jedule/color/CMakeFiles/jed_color.dir/colormap.cpp.o" "gcc" "src/jedule/color/CMakeFiles/jed_color.dir/colormap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jedule/util/CMakeFiles/jed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
