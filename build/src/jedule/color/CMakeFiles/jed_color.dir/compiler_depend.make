# Empty compiler generated dependencies file for jed_color.
# This may be replaced when dependencies are built.
