file(REMOVE_RECURSE
  "CMakeFiles/jed_color.dir/color.cpp.o"
  "CMakeFiles/jed_color.dir/color.cpp.o.d"
  "CMakeFiles/jed_color.dir/colormap.cpp.o"
  "CMakeFiles/jed_color.dir/colormap.cpp.o.d"
  "libjed_color.a"
  "libjed_color.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jed_color.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
