# Empty dependencies file for jed_xml.
# This may be replaced when dependencies are built.
