file(REMOVE_RECURSE
  "libjed_xml.a"
)
