file(REMOVE_RECURSE
  "CMakeFiles/jed_xml.dir/xml.cpp.o"
  "CMakeFiles/jed_xml.dir/xml.cpp.o.d"
  "libjed_xml.a"
  "libjed_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jed_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
