file(REMOVE_RECURSE
  "CMakeFiles/jed_model.dir/builder.cpp.o"
  "CMakeFiles/jed_model.dir/builder.cpp.o.d"
  "CMakeFiles/jed_model.dir/composite.cpp.o"
  "CMakeFiles/jed_model.dir/composite.cpp.o.d"
  "CMakeFiles/jed_model.dir/schedule.cpp.o"
  "CMakeFiles/jed_model.dir/schedule.cpp.o.d"
  "CMakeFiles/jed_model.dir/stats.cpp.o"
  "CMakeFiles/jed_model.dir/stats.cpp.o.d"
  "libjed_model.a"
  "libjed_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jed_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
