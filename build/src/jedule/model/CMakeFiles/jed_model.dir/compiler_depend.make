# Empty compiler generated dependencies file for jed_model.
# This may be replaced when dependencies are built.
