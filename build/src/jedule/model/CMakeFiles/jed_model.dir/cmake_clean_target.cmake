file(REMOVE_RECURSE
  "libjed_model.a"
)
