# Empty compiler generated dependencies file for jed_workload.
# This may be replaced when dependencies are built.
