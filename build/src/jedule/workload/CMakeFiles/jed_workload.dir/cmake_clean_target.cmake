file(REMOVE_RECURSE
  "libjed_workload.a"
)
