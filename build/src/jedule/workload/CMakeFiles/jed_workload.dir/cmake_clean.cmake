file(REMOVE_RECURSE
  "CMakeFiles/jed_workload.dir/swf_parser.cpp.o"
  "CMakeFiles/jed_workload.dir/swf_parser.cpp.o.d"
  "CMakeFiles/jed_workload.dir/thunder.cpp.o"
  "CMakeFiles/jed_workload.dir/thunder.cpp.o.d"
  "CMakeFiles/jed_workload.dir/trace_schedule.cpp.o"
  "CMakeFiles/jed_workload.dir/trace_schedule.cpp.o.d"
  "libjed_workload.a"
  "libjed_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jed_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
