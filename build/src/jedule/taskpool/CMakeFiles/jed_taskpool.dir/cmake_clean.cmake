file(REMOVE_RECURSE
  "CMakeFiles/jed_taskpool.dir/log_schedule.cpp.o"
  "CMakeFiles/jed_taskpool.dir/log_schedule.cpp.o.d"
  "CMakeFiles/jed_taskpool.dir/pool.cpp.o"
  "CMakeFiles/jed_taskpool.dir/pool.cpp.o.d"
  "CMakeFiles/jed_taskpool.dir/quicksort.cpp.o"
  "CMakeFiles/jed_taskpool.dir/quicksort.cpp.o.d"
  "libjed_taskpool.a"
  "libjed_taskpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jed_taskpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
