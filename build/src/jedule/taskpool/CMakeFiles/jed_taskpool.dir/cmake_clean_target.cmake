file(REMOVE_RECURSE
  "libjed_taskpool.a"
)
