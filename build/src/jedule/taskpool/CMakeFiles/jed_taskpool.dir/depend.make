# Empty dependencies file for jed_taskpool.
# This may be replaced when dependencies are built.
