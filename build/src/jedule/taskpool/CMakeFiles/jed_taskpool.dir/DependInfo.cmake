
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jedule/taskpool/log_schedule.cpp" "src/jedule/taskpool/CMakeFiles/jed_taskpool.dir/log_schedule.cpp.o" "gcc" "src/jedule/taskpool/CMakeFiles/jed_taskpool.dir/log_schedule.cpp.o.d"
  "/root/repo/src/jedule/taskpool/pool.cpp" "src/jedule/taskpool/CMakeFiles/jed_taskpool.dir/pool.cpp.o" "gcc" "src/jedule/taskpool/CMakeFiles/jed_taskpool.dir/pool.cpp.o.d"
  "/root/repo/src/jedule/taskpool/quicksort.cpp" "src/jedule/taskpool/CMakeFiles/jed_taskpool.dir/quicksort.cpp.o" "gcc" "src/jedule/taskpool/CMakeFiles/jed_taskpool.dir/quicksort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jedule/model/CMakeFiles/jed_model.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/util/CMakeFiles/jed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
