
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jedule/util/log.cpp" "src/jedule/util/CMakeFiles/jed_util.dir/log.cpp.o" "gcc" "src/jedule/util/CMakeFiles/jed_util.dir/log.cpp.o.d"
  "/root/repo/src/jedule/util/rng.cpp" "src/jedule/util/CMakeFiles/jed_util.dir/rng.cpp.o" "gcc" "src/jedule/util/CMakeFiles/jed_util.dir/rng.cpp.o.d"
  "/root/repo/src/jedule/util/strings.cpp" "src/jedule/util/CMakeFiles/jed_util.dir/strings.cpp.o" "gcc" "src/jedule/util/CMakeFiles/jed_util.dir/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
