file(REMOVE_RECURSE
  "libjed_util.a"
)
