file(REMOVE_RECURSE
  "CMakeFiles/jed_util.dir/log.cpp.o"
  "CMakeFiles/jed_util.dir/log.cpp.o.d"
  "CMakeFiles/jed_util.dir/rng.cpp.o"
  "CMakeFiles/jed_util.dir/rng.cpp.o.d"
  "CMakeFiles/jed_util.dir/strings.cpp.o"
  "CMakeFiles/jed_util.dir/strings.cpp.o.d"
  "libjed_util.a"
  "libjed_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jed_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
