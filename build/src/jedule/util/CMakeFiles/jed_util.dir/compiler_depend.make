# Empty compiler generated dependencies file for jed_util.
# This may be replaced when dependencies are built.
