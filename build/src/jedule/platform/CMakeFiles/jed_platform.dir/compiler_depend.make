# Empty compiler generated dependencies file for jed_platform.
# This may be replaced when dependencies are built.
