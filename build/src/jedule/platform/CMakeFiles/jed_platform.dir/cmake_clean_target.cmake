file(REMOVE_RECURSE
  "libjed_platform.a"
)
