file(REMOVE_RECURSE
  "CMakeFiles/jed_platform.dir/platform.cpp.o"
  "CMakeFiles/jed_platform.dir/platform.cpp.o.d"
  "libjed_platform.a"
  "libjed_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jed_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
