
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jedule/io/colormap_xml.cpp" "src/jedule/io/CMakeFiles/jed_io.dir/colormap_xml.cpp.o" "gcc" "src/jedule/io/CMakeFiles/jed_io.dir/colormap_xml.cpp.o.d"
  "/root/repo/src/jedule/io/csv.cpp" "src/jedule/io/CMakeFiles/jed_io.dir/csv.cpp.o" "gcc" "src/jedule/io/CMakeFiles/jed_io.dir/csv.cpp.o.d"
  "/root/repo/src/jedule/io/file.cpp" "src/jedule/io/CMakeFiles/jed_io.dir/file.cpp.o" "gcc" "src/jedule/io/CMakeFiles/jed_io.dir/file.cpp.o.d"
  "/root/repo/src/jedule/io/jedule_xml.cpp" "src/jedule/io/CMakeFiles/jed_io.dir/jedule_xml.cpp.o" "gcc" "src/jedule/io/CMakeFiles/jed_io.dir/jedule_xml.cpp.o.d"
  "/root/repo/src/jedule/io/registry.cpp" "src/jedule/io/CMakeFiles/jed_io.dir/registry.cpp.o" "gcc" "src/jedule/io/CMakeFiles/jed_io.dir/registry.cpp.o.d"
  "/root/repo/src/jedule/io/swf.cpp" "src/jedule/io/CMakeFiles/jed_io.dir/swf.cpp.o" "gcc" "src/jedule/io/CMakeFiles/jed_io.dir/swf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jedule/model/CMakeFiles/jed_model.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/color/CMakeFiles/jed_color.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/xml/CMakeFiles/jed_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/util/CMakeFiles/jed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
