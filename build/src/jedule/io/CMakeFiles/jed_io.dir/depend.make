# Empty dependencies file for jed_io.
# This may be replaced when dependencies are built.
