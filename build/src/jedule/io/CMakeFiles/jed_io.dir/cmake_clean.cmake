file(REMOVE_RECURSE
  "CMakeFiles/jed_io.dir/colormap_xml.cpp.o"
  "CMakeFiles/jed_io.dir/colormap_xml.cpp.o.d"
  "CMakeFiles/jed_io.dir/csv.cpp.o"
  "CMakeFiles/jed_io.dir/csv.cpp.o.d"
  "CMakeFiles/jed_io.dir/file.cpp.o"
  "CMakeFiles/jed_io.dir/file.cpp.o.d"
  "CMakeFiles/jed_io.dir/jedule_xml.cpp.o"
  "CMakeFiles/jed_io.dir/jedule_xml.cpp.o.d"
  "CMakeFiles/jed_io.dir/registry.cpp.o"
  "CMakeFiles/jed_io.dir/registry.cpp.o.d"
  "CMakeFiles/jed_io.dir/swf.cpp.o"
  "CMakeFiles/jed_io.dir/swf.cpp.o.d"
  "libjed_io.a"
  "libjed_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jed_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
