file(REMOVE_RECURSE
  "libjed_io.a"
)
