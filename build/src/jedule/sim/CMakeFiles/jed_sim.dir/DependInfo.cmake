
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jedule/sim/dag_execution.cpp" "src/jedule/sim/CMakeFiles/jed_sim.dir/dag_execution.cpp.o" "gcc" "src/jedule/sim/CMakeFiles/jed_sim.dir/dag_execution.cpp.o.d"
  "/root/repo/src/jedule/sim/engine.cpp" "src/jedule/sim/CMakeFiles/jed_sim.dir/engine.cpp.o" "gcc" "src/jedule/sim/CMakeFiles/jed_sim.dir/engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jedule/dag/CMakeFiles/jed_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/platform/CMakeFiles/jed_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/model/CMakeFiles/jed_model.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/util/CMakeFiles/jed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
