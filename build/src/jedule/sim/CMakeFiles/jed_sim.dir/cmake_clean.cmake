file(REMOVE_RECURSE
  "CMakeFiles/jed_sim.dir/dag_execution.cpp.o"
  "CMakeFiles/jed_sim.dir/dag_execution.cpp.o.d"
  "CMakeFiles/jed_sim.dir/engine.cpp.o"
  "CMakeFiles/jed_sim.dir/engine.cpp.o.d"
  "libjed_sim.a"
  "libjed_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jed_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
