file(REMOVE_RECURSE
  "libjed_sim.a"
)
