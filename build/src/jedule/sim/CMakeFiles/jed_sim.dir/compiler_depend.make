# Empty compiler generated dependencies file for jed_sim.
# This may be replaced when dependencies are built.
