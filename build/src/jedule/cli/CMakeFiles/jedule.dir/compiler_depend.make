# Empty compiler generated dependencies file for jedule.
# This may be replaced when dependencies are built.
