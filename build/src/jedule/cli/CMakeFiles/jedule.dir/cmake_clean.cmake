file(REMOVE_RECURSE
  "CMakeFiles/jedule.dir/args.cpp.o"
  "CMakeFiles/jedule.dir/args.cpp.o.d"
  "CMakeFiles/jedule.dir/demos.cpp.o"
  "CMakeFiles/jedule.dir/demos.cpp.o.d"
  "CMakeFiles/jedule.dir/main.cpp.o"
  "CMakeFiles/jedule.dir/main.cpp.o.d"
  "jedule"
  "jedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
