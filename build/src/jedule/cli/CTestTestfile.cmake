# CMake generated Testfile for 
# Source directory: /root/repo/src/jedule/cli
# Build directory: /root/repo/build/src/jedule/cli
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
