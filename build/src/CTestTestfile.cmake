# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("jedule/util")
subdirs("jedule/xml")
subdirs("jedule/color")
subdirs("jedule/model")
subdirs("jedule/io")
subdirs("jedule/render")
subdirs("jedule/interactive")
subdirs("jedule/dag")
subdirs("jedule/platform")
subdirs("jedule/sim")
subdirs("jedule/sched")
subdirs("jedule/taskpool")
subdirs("jedule/workload")
subdirs("jedule/cli")
