file(REMOVE_RECURSE
  "CMakeFiles/test_render_framebuffer.dir/test_render_framebuffer.cpp.o"
  "CMakeFiles/test_render_framebuffer.dir/test_render_framebuffer.cpp.o.d"
  "test_render_framebuffer"
  "test_render_framebuffer.pdb"
  "test_render_framebuffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_render_framebuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
