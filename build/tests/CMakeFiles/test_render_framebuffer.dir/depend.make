# Empty dependencies file for test_render_framebuffer.
# This may be replaced when dependencies are built.
