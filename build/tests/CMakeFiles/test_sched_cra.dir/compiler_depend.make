# Empty compiler generated dependencies file for test_sched_cra.
# This may be replaced when dependencies are built.
