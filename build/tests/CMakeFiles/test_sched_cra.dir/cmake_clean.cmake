file(REMOVE_RECURSE
  "CMakeFiles/test_sched_cra.dir/test_sched_cra.cpp.o"
  "CMakeFiles/test_sched_cra.dir/test_sched_cra.cpp.o.d"
  "test_sched_cra"
  "test_sched_cra.pdb"
  "test_sched_cra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_cra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
