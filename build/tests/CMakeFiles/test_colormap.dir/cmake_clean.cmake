file(REMOVE_RECURSE
  "CMakeFiles/test_colormap.dir/test_colormap.cpp.o"
  "CMakeFiles/test_colormap.dir/test_colormap.cpp.o.d"
  "test_colormap"
  "test_colormap.pdb"
  "test_colormap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_colormap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
