# Empty dependencies file for test_colormap.
# This may be replaced when dependencies are built.
