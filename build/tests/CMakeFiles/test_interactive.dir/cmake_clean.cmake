file(REMOVE_RECURSE
  "CMakeFiles/test_interactive.dir/test_interactive.cpp.o"
  "CMakeFiles/test_interactive.dir/test_interactive.cpp.o.d"
  "test_interactive"
  "test_interactive.pdb"
  "test_interactive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
