# Empty compiler generated dependencies file for test_io_registry.
# This may be replaced when dependencies are built.
