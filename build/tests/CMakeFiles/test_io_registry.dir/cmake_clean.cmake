file(REMOVE_RECURSE
  "CMakeFiles/test_io_registry.dir/test_io_registry.cpp.o"
  "CMakeFiles/test_io_registry.dir/test_io_registry.cpp.o.d"
  "test_io_registry"
  "test_io_registry.pdb"
  "test_io_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
