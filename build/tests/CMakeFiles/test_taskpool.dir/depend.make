# Empty dependencies file for test_taskpool.
# This may be replaced when dependencies are built.
