file(REMOVE_RECURSE
  "CMakeFiles/test_taskpool.dir/test_taskpool.cpp.o"
  "CMakeFiles/test_taskpool.dir/test_taskpool.cpp.o.d"
  "test_taskpool"
  "test_taskpool.pdb"
  "test_taskpool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taskpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
