file(REMOVE_RECURSE
  "CMakeFiles/test_model_stats.dir/test_model_stats.cpp.o"
  "CMakeFiles/test_model_stats.dir/test_model_stats.cpp.o.d"
  "test_model_stats"
  "test_model_stats.pdb"
  "test_model_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
