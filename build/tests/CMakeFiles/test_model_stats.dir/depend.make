# Empty dependencies file for test_model_stats.
# This may be replaced when dependencies are built.
