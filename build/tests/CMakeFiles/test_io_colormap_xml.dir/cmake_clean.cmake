file(REMOVE_RECURSE
  "CMakeFiles/test_io_colormap_xml.dir/test_io_colormap_xml.cpp.o"
  "CMakeFiles/test_io_colormap_xml.dir/test_io_colormap_xml.cpp.o.d"
  "test_io_colormap_xml"
  "test_io_colormap_xml.pdb"
  "test_io_colormap_xml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_colormap_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
