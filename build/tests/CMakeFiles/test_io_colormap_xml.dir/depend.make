# Empty dependencies file for test_io_colormap_xml.
# This may be replaced when dependencies are built.
