# Empty dependencies file for test_sched_allocation.
# This may be replaced when dependencies are built.
