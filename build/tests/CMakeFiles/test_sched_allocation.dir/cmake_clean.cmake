file(REMOVE_RECURSE
  "CMakeFiles/test_sched_allocation.dir/test_sched_allocation.cpp.o"
  "CMakeFiles/test_sched_allocation.dir/test_sched_allocation.cpp.o.d"
  "test_sched_allocation"
  "test_sched_allocation.pdb"
  "test_sched_allocation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
