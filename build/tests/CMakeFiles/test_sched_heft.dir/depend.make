# Empty dependencies file for test_sched_heft.
# This may be replaced when dependencies are built.
