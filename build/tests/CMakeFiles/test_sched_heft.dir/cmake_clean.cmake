file(REMOVE_RECURSE
  "CMakeFiles/test_sched_heft.dir/test_sched_heft.cpp.o"
  "CMakeFiles/test_sched_heft.dir/test_sched_heft.cpp.o.d"
  "test_sched_heft"
  "test_sched_heft.pdb"
  "test_sched_heft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_heft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
