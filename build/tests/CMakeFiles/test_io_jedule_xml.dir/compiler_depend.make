# Empty compiler generated dependencies file for test_io_jedule_xml.
# This may be replaced when dependencies are built.
