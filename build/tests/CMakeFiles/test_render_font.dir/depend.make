# Empty dependencies file for test_render_font.
# This may be replaced when dependencies are built.
