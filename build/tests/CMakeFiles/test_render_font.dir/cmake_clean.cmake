file(REMOVE_RECURSE
  "CMakeFiles/test_render_font.dir/test_render_font.cpp.o"
  "CMakeFiles/test_render_font.dir/test_render_font.cpp.o.d"
  "test_render_font"
  "test_render_font.pdb"
  "test_render_font[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_render_font.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
