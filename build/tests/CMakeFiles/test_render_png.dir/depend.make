# Empty dependencies file for test_render_png.
# This may be replaced when dependencies are built.
