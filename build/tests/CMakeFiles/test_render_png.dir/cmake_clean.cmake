file(REMOVE_RECURSE
  "CMakeFiles/test_render_png.dir/test_render_png.cpp.o"
  "CMakeFiles/test_render_png.dir/test_render_png.cpp.o.d"
  "test_render_png"
  "test_render_png.pdb"
  "test_render_png[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_render_png.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
