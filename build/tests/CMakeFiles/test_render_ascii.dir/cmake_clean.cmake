file(REMOVE_RECURSE
  "CMakeFiles/test_render_ascii.dir/test_render_ascii.cpp.o"
  "CMakeFiles/test_render_ascii.dir/test_render_ascii.cpp.o.d"
  "test_render_ascii"
  "test_render_ascii.pdb"
  "test_render_ascii[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_render_ascii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
