# Empty compiler generated dependencies file for test_render_ascii.
# This may be replaced when dependencies are built.
