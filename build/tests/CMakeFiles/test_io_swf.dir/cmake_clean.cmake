file(REMOVE_RECURSE
  "CMakeFiles/test_io_swf.dir/test_io_swf.cpp.o"
  "CMakeFiles/test_io_swf.dir/test_io_swf.cpp.o.d"
  "test_io_swf"
  "test_io_swf.pdb"
  "test_io_swf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_swf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
