file(REMOVE_RECURSE
  "CMakeFiles/test_render_gantt.dir/test_render_gantt.cpp.o"
  "CMakeFiles/test_render_gantt.dir/test_render_gantt.cpp.o.d"
  "test_render_gantt"
  "test_render_gantt.pdb"
  "test_render_gantt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_render_gantt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
