# Empty compiler generated dependencies file for test_render_deflate.
# This may be replaced when dependencies are built.
