file(REMOVE_RECURSE
  "CMakeFiles/test_render_deflate.dir/test_render_deflate.cpp.o"
  "CMakeFiles/test_render_deflate.dir/test_render_deflate.cpp.o.d"
  "test_render_deflate"
  "test_render_deflate.pdb"
  "test_render_deflate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_render_deflate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
