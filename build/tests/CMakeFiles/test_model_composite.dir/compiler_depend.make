# Empty compiler generated dependencies file for test_model_composite.
# This may be replaced when dependencies are built.
