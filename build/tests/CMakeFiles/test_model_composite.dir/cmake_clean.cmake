file(REMOVE_RECURSE
  "CMakeFiles/test_model_composite.dir/test_model_composite.cpp.o"
  "CMakeFiles/test_model_composite.dir/test_model_composite.cpp.o.d"
  "test_model_composite"
  "test_model_composite.pdb"
  "test_model_composite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_composite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
