
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_color.cpp" "tests/CMakeFiles/test_color.dir/test_color.cpp.o" "gcc" "tests/CMakeFiles/test_color.dir/test_color.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jedule/interactive/CMakeFiles/jed_interactive.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/render/CMakeFiles/jed_render.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/io/CMakeFiles/jed_io.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/sched/CMakeFiles/jed_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/sim/CMakeFiles/jed_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/dag/CMakeFiles/jed_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/platform/CMakeFiles/jed_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/taskpool/CMakeFiles/jed_taskpool.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/workload/CMakeFiles/jed_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/model/CMakeFiles/jed_model.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/color/CMakeFiles/jed_color.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/xml/CMakeFiles/jed_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/jedule/util/CMakeFiles/jed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
