file(REMOVE_RECURSE
  "CMakeFiles/test_cli_integration.dir/test_cli_integration.cpp.o"
  "CMakeFiles/test_cli_integration.dir/test_cli_integration.cpp.o.d"
  "test_cli_integration"
  "test_cli_integration.pdb"
  "test_cli_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cli_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
