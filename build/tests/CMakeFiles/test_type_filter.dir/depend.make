# Empty dependencies file for test_type_filter.
# This may be replaced when dependencies are built.
