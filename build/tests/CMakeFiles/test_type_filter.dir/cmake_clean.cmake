file(REMOVE_RECURSE
  "CMakeFiles/test_type_filter.dir/test_type_filter.cpp.o"
  "CMakeFiles/test_type_filter.dir/test_type_filter.cpp.o.d"
  "test_type_filter"
  "test_type_filter.pdb"
  "test_type_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_type_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
