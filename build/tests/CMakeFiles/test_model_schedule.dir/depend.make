# Empty dependencies file for test_model_schedule.
# This may be replaced when dependencies are built.
