file(REMOVE_RECURSE
  "CMakeFiles/test_model_schedule.dir/test_model_schedule.cpp.o"
  "CMakeFiles/test_model_schedule.dir/test_model_schedule.cpp.o.d"
  "test_model_schedule"
  "test_model_schedule.pdb"
  "test_model_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
