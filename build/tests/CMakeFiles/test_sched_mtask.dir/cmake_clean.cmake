file(REMOVE_RECURSE
  "CMakeFiles/test_sched_mtask.dir/test_sched_mtask.cpp.o"
  "CMakeFiles/test_sched_mtask.dir/test_sched_mtask.cpp.o.d"
  "test_sched_mtask"
  "test_sched_mtask.pdb"
  "test_sched_mtask[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_mtask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
