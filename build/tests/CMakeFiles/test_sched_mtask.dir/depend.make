# Empty dependencies file for test_sched_mtask.
# This may be replaced when dependencies are built.
