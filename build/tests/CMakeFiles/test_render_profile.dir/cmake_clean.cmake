file(REMOVE_RECURSE
  "CMakeFiles/test_render_profile.dir/test_render_profile.cpp.o"
  "CMakeFiles/test_render_profile.dir/test_render_profile.cpp.o.d"
  "test_render_profile"
  "test_render_profile.pdb"
  "test_render_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_render_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
