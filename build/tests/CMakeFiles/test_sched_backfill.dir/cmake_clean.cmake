file(REMOVE_RECURSE
  "CMakeFiles/test_sched_backfill.dir/test_sched_backfill.cpp.o"
  "CMakeFiles/test_sched_backfill.dir/test_sched_backfill.cpp.o.d"
  "test_sched_backfill"
  "test_sched_backfill.pdb"
  "test_sched_backfill[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_backfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
