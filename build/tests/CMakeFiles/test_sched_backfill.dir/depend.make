# Empty dependencies file for test_sched_backfill.
# This may be replaced when dependencies are built.
