file(REMOVE_RECURSE
  "CMakeFiles/test_render_vector_formats.dir/test_render_vector_formats.cpp.o"
  "CMakeFiles/test_render_vector_formats.dir/test_render_vector_formats.cpp.o.d"
  "test_render_vector_formats"
  "test_render_vector_formats.pdb"
  "test_render_vector_formats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_render_vector_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
