# Empty compiler generated dependencies file for test_render_vector_formats.
# This may be replaced when dependencies are built.
