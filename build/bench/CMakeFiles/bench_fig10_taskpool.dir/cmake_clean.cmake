file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_taskpool.dir/bench_fig10_taskpool.cpp.o"
  "CMakeFiles/bench_fig10_taskpool.dir/bench_fig10_taskpool.cpp.o.d"
  "bench_fig10_taskpool"
  "bench_fig10_taskpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_taskpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
