# Empty dependencies file for bench_fig10_taskpool.
# This may be replaced when dependencies are built.
