file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_heft_backbone.dir/bench_fig09_heft_backbone.cpp.o"
  "CMakeFiles/bench_fig09_heft_backbone.dir/bench_fig09_heft_backbone.cpp.o.d"
  "bench_fig09_heft_backbone"
  "bench_fig09_heft_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_heft_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
