# Empty compiler generated dependencies file for bench_fig09_heft_backbone.
# This may be replaced when dependencies are built.
