file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_colormap.dir/bench_fig02_colormap.cpp.o"
  "CMakeFiles/bench_fig02_colormap.dir/bench_fig02_colormap.cpp.o.d"
  "bench_fig02_colormap"
  "bench_fig02_colormap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_colormap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
