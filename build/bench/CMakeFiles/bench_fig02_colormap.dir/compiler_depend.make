# Empty compiler generated dependencies file for bench_fig02_colormap.
# This may be replaced when dependencies are built.
