# Empty compiler generated dependencies file for bench_fig13_thunder.
# This may be replaced when dependencies are built.
