file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_thunder.dir/bench_fig13_thunder.cpp.o"
  "CMakeFiles/bench_fig13_thunder.dir/bench_fig13_thunder.cpp.o.d"
  "bench_fig13_thunder"
  "bench_fig13_thunder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_thunder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
