file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_composite.dir/bench_fig03_composite.cpp.o"
  "CMakeFiles/bench_fig03_composite.dir/bench_fig03_composite.cpp.o.d"
  "bench_fig03_composite"
  "bench_fig03_composite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_composite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
