# Empty dependencies file for bench_fig07_platform.
# This may be replaced when dependencies are built.
