file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_platform.dir/bench_fig07_platform.cpp.o"
  "CMakeFiles/bench_fig07_platform.dir/bench_fig07_platform.cpp.o.d"
  "bench_fig07_platform"
  "bench_fig07_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
