# Empty dependencies file for bench_fig11_qsort_random.
# This may be replaced when dependencies are built.
