# Empty compiler generated dependencies file for bench_fig06_montage_dag.
# This may be replaced when dependencies are built.
