file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_montage_dag.dir/bench_fig06_montage_dag.cpp.o"
  "CMakeFiles/bench_fig06_montage_dag.dir/bench_fig06_montage_dag.cpp.o.d"
  "bench_fig06_montage_dag"
  "bench_fig06_montage_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_montage_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
