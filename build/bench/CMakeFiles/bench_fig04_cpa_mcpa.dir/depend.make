# Empty dependencies file for bench_fig04_cpa_mcpa.
# This may be replaced when dependencies are built.
