file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_cpa_mcpa.dir/bench_fig04_cpa_mcpa.cpp.o"
  "CMakeFiles/bench_fig04_cpa_mcpa.dir/bench_fig04_cpa_mcpa.cpp.o.d"
  "bench_fig04_cpa_mcpa"
  "bench_fig04_cpa_mcpa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_cpa_mcpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
