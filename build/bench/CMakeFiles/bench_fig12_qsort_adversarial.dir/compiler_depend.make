# Empty compiler generated dependencies file for bench_fig12_qsort_adversarial.
# This may be replaced when dependencies are built.
