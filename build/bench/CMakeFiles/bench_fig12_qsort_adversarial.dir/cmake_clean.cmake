file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_qsort_adversarial.dir/bench_fig12_qsort_adversarial.cpp.o"
  "CMakeFiles/bench_fig12_qsort_adversarial.dir/bench_fig12_qsort_adversarial.cpp.o.d"
  "bench_fig12_qsort_adversarial"
  "bench_fig12_qsort_adversarial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_qsort_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
