# Empty dependencies file for bench_fig01_xml.
# This may be replaced when dependencies are built.
