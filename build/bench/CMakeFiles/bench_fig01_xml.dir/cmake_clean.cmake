file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_xml.dir/bench_fig01_xml.cpp.o"
  "CMakeFiles/bench_fig01_xml.dir/bench_fig01_xml.cpp.o.d"
  "bench_fig01_xml"
  "bench_fig01_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
