file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_cra.dir/bench_fig05_cra.cpp.o"
  "CMakeFiles/bench_fig05_cra.dir/bench_fig05_cra.cpp.o.d"
  "bench_fig05_cra"
  "bench_fig05_cra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_cra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
