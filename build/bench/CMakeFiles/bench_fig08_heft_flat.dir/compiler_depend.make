# Empty compiler generated dependencies file for bench_fig08_heft_flat.
# This may be replaced when dependencies are built.
