file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_heft_flat.dir/bench_fig08_heft_flat.cpp.o"
  "CMakeFiles/bench_fig08_heft_flat.dir/bench_fig08_heft_flat.cpp.o.d"
  "bench_fig08_heft_flat"
  "bench_fig08_heft_flat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_heft_flat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
