# Empty compiler generated dependencies file for taskpool_quicksort.
# This may be replaced when dependencies are built.
