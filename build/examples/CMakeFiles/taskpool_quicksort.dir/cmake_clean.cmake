file(REMOVE_RECURSE
  "CMakeFiles/taskpool_quicksort.dir/taskpool_quicksort.cpp.o"
  "CMakeFiles/taskpool_quicksort.dir/taskpool_quicksort.cpp.o.d"
  "taskpool_quicksort"
  "taskpool_quicksort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskpool_quicksort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
