# Empty dependencies file for montage_heft.
# This may be replaced when dependencies are built.
