file(REMOVE_RECURSE
  "CMakeFiles/montage_heft.dir/montage_heft.cpp.o"
  "CMakeFiles/montage_heft.dir/montage_heft.cpp.o.d"
  "montage_heft"
  "montage_heft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/montage_heft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
