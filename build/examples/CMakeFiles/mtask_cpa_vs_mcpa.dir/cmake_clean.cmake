file(REMOVE_RECURSE
  "CMakeFiles/mtask_cpa_vs_mcpa.dir/mtask_cpa_vs_mcpa.cpp.o"
  "CMakeFiles/mtask_cpa_vs_mcpa.dir/mtask_cpa_vs_mcpa.cpp.o.d"
  "mtask_cpa_vs_mcpa"
  "mtask_cpa_vs_mcpa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtask_cpa_vs_mcpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
