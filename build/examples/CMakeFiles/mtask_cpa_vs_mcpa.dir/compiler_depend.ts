# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mtask_cpa_vs_mcpa.
