# Empty compiler generated dependencies file for mtask_cpa_vs_mcpa.
# This may be replaced when dependencies are built.
