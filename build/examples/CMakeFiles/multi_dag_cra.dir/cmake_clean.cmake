file(REMOVE_RECURSE
  "CMakeFiles/multi_dag_cra.dir/multi_dag_cra.cpp.o"
  "CMakeFiles/multi_dag_cra.dir/multi_dag_cra.cpp.o.d"
  "multi_dag_cra"
  "multi_dag_cra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_dag_cra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
