# Empty compiler generated dependencies file for multi_dag_cra.
# This may be replaced when dependencies are built.
