# Empty compiler generated dependencies file for workload_browser.
# This may be replaced when dependencies are built.
