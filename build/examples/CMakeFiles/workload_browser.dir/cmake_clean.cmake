file(REMOVE_RECURSE
  "CMakeFiles/workload_browser.dir/workload_browser.cpp.o"
  "CMakeFiles/workload_browser.dir/workload_browser.cpp.o.d"
  "workload_browser"
  "workload_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
