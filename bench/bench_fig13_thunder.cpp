// Fig. 13 — "Visualization of the parallel workload of the LLNL Thunder
// Cluster on one day in 2007. Yellow rectangles denote jobs of a selected
// user": 1024 nodes, 834 jobs, 20 reserved login/debug nodes, user 6447
// highlighted. The real trace is proprietary; the synthetic generator
// reproduces the documented properties (DESIGN.md §2).

#include "bench_report.hpp"
#include "jedule/model/stats.hpp"
#include "jedule/render/export.hpp"
#include "jedule/render/exporter.hpp"
#include "jedule/workload/thunder.hpp"
#include "jedule/workload/trace_schedule.hpp"

namespace {

using namespace jedule;

workload::TraceScheduleResult converted_day() {
  const workload::ThunderOptions opts;
  const auto trace = workload::generate_thunder_day(opts);
  workload::TraceScheduleOptions conv;
  conv.cluster_name = "thunder";
  conv.reserved_nodes = opts.reserved_nodes;
  return workload::trace_to_schedule(trace, conv);
}

void report() {
  using namespace jedule::bench;
  report_header("Fig. 13", "one day of a 1024-node cluster: 834 jobs, nodes "
                           "0-19 reserved, user 6447 highlighted in yellow");
  const auto result = converted_day();
  const auto& schedule = result.schedule;
  report_row("jobs placed", std::to_string(schedule.tasks().size()));
  report_row("nodes", std::to_string(schedule.total_hosts()));
  report_row("jobs with placement conflicts (trace overcommit)",
             std::to_string(result.overlapped_jobs));
  report_check("834 jobs on 1024 nodes (paper's day)",
               schedule.tasks().size() == 834 &&
                   schedule.total_hosts() == 1024);

  // "20 nodes of this cluster were reserved ... jobs get only executed by
  // nodes with a number greater than 20."
  const auto stats = model::compute_stats(schedule);
  bool reserved_empty = true;
  for (int h = 0; h < 20; ++h) {
    if (stats.busy_by_resource[static_cast<std::size_t>(h)] > 0) {
      reserved_empty = false;
    }
  }
  report_check("reserved nodes 0-19 carry no jobs", reserved_empty);

  int highlighted = 0;
  for (const auto& t : schedule.tasks()) {
    if (t.property("user") == "6447") ++highlighted;
  }
  report_row("jobs of user 6447 (yellow)", std::to_string(highlighted));
  report_check("highlighted user has a visible minority of jobs",
               highlighted >= 10 &&
                   highlighted < static_cast<int>(schedule.tasks().size()) / 4);

  render::RenderOptions options;
  options.style.width = 1280;
  options.style.height = 720;
  options.style.show_labels = false;
  options.style.show_composites = false;
  options.style.highlight_key = "user";
  options.style.highlight_value = "6447";
  options.threads = 1;
  const auto png = render::render_to_bytes(schedule, options, "png");
  report_row("rendered PNG size", std::to_string(png.size()) + " bytes");
  report_check("bird's-eye render succeeds", png.size() > 10000);
  report_footer();
}

void BM_GenerateThunderDay(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::generate_thunder_day());
  }
}
BENCHMARK(BM_GenerateThunderDay)->Unit(benchmark::kMillisecond);

void BM_PlaceTrace(benchmark::State& state) {
  const workload::ThunderOptions opts;
  const auto trace = workload::generate_thunder_day(opts);
  workload::TraceScheduleOptions conv;
  conv.reserved_nodes = opts.reserved_nodes;
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::trace_to_schedule(trace, conv));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.jobs.size()));
}
BENCHMARK(BM_PlaceTrace)->Unit(benchmark::kMillisecond);

void BM_RenderThunderDay(benchmark::State& state) {
  const auto result = converted_day();
  render::RenderOptions options;
  options.style.width = 1280;
  options.style.height = 720;
  options.style.show_labels = false;
  options.style.show_composites = false;
  options.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::render_raster(result.schedule, options));
  }
}
BENCHMARK(BM_RenderThunderDay)->Unit(benchmark::kMillisecond);

}  // namespace

JEDULE_BENCH_MAIN(report)
