// Fig. 2 — the colormap format: parse the paper's "standard map" example,
// verify the colors and composite rule, and measure lookup/parse costs.

#include "bench_report.hpp"
#include "jedule/color/colormap.hpp"
#include "jedule/io/colormap_xml.hpp"

namespace {

using namespace jedule;

const char kFig2Doc[] = R"(<cmap name="standard_map">
  <conf name="min_fontsize_label" value="11"/>
  <conf name="fontsize_label" value="13"/>
  <conf name="font_size_axes" value="12"/>
  <task id="computation">
    <color type="fg" rgb="FFFFFF"/><color type="bg" rgb="0000FF"/>
  </task>
  <task id="transfer">
    <color type="fg" rgb="000000"/><color type="bg" rgb="f10000"/>
  </task>
  <composite>
    <task id="computation"/><task id="transfer"/>
    <color type="fg" rgb="FFFFFF"/><color type="bg" rgb="ff6200"/>
  </composite>
</cmap>)";

void report() {
  using namespace jedule::bench;
  report_header("Fig. 2", "sample color map with one composite type "
                          "(blue computation, red transfer, orange overlap)");
  const auto map = io::read_colormap_xml(kFig2Doc);
  report_row("computation bg",
             "#" + color::to_hex(map.style_for("computation").background));
  report_row("transfer bg",
             "#" + color::to_hex(map.style_for("transfer").background));
  report_row("composite {computation, transfer} bg",
             "#" + color::to_hex(
                       map.composite_style({"computation", "transfer"})
                           .background));
  report_check("colors match the paper's hex values",
               color::to_hex(map.style_for("computation").background) ==
                       "0000ff" &&
                   color::to_hex(map.style_for("transfer").background) ==
                       "f10000" &&
                   color::to_hex(map.composite_style(
                                         {"computation", "transfer"})
                                     .background) == "ff6200");
  const auto gray = map.grayscale();
  report_check("grayscale derivation keeps structure",
               gray.styles().size() == map.styles().size());
  report_footer();
}

void BM_ParseColormapXml(benchmark::State& state) {
  const std::string doc(kFig2Doc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::read_colormap_xml(doc));
  }
}
BENCHMARK(BM_ParseColormapXml);

void BM_StyleLookup(benchmark::State& state) {
  const auto map = color::standard_colormap();
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.style_for("computation"));
    benchmark::DoNotOptimize(map.style_for("unknown-type"));
  }
}
BENCHMARK(BM_StyleLookup);

void BM_CompositeLookup(benchmark::State& state) {
  const auto map = color::standard_colormap();
  const std::set<std::string> members{"computation", "transfer"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.composite_style(members));
  }
}
BENCHMARK(BM_CompositeLookup);

}  // namespace

JEDULE_BENCH_MAIN(report)
