// Fig. 6 — "Structure of the Montage workflow (nodes with the same color
// are of same task type)": regenerate the workflow DAG, verify its stage
// structure, and emit the DOT rendering the figure is drawn from.

#include <map>

#include "bench_report.hpp"
#include "jedule/dag/dot.hpp"
#include "jedule/dag/montage.hpp"

namespace {

using namespace jedule;

void report() {
  using namespace jedule::bench;
  report_header("Fig. 6", "Montage workflow structure; the paper's instance "
                          "has 50 compute nodes (ours: 48, the closest "
                          "member of the 5k+3 family, k = 9)");
  const auto dag = dag::montage_case_study();
  report_row("nodes / edges", std::to_string(dag.node_count()) + " / " +
                                  std::to_string(dag.edges().size()));
  std::map<std::string, int> stages;
  for (const auto& n : dag.nodes()) ++stages[n.type];
  for (const auto& [stage, count] : stages) {
    report_row("  " + stage, std::to_string(count));
  }
  report_check("single mConcatFit/mBgModel/mImgtbl/mAdd/mShrink/mJPEG",
               stages["mConcatFit"] == 1 && stages["mBgModel"] == 1 &&
                   stages["mImgtbl"] == 1 && stages["mAdd"] == 1 &&
                   stages["mShrink"] == 1 && stages["mJPEG"] == 1);
  report_check("one mBackground per input image",
               stages["mBackground"] == stages["mProject"]);
  const std::string dot = dag::to_dot(dag);
  report_row("DOT export size", std::to_string(dot.size()) + " bytes");
  report_check("DOT colors nodes by type",
               dot.find("fillcolor") != std::string::npos);
  report_footer();
}

void BM_MontageGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag::montage_dag(static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_MontageGeneration)->Arg(4)->Arg(9)->Arg(32);

void BM_MontageToDot(benchmark::State& state) {
  const auto dag = dag::montage_case_study();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag::to_dot(dag));
  }
}
BENCHMARK(BM_MontageToDot);

void BM_MontageAnalyses(benchmark::State& state) {
  const auto dag = dag::montage_case_study();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag.topological_order());
    benchmark::DoNotOptimize(dag.precedence_levels());
    benchmark::DoNotOptimize(dag.width());
  }
}
BENCHMARK(BM_MontageAnalyses);

}  // namespace

JEDULE_BENCH_MAIN(report)
