// Fig. 7 — "Heterogeneous platform used for the case study": two clusters
// of four 1.65 Gflop/s processors and two clusters of two 3.3 Gflop/s
// processors behind one backbone. Verifies the model and measures the
// communication-cost queries HEFT issues.

#include "bench_report.hpp"
#include "jedule/platform/platform.hpp"

namespace {

using namespace jedule;

void report() {
  using namespace jedule::bench;
  report_header("Fig. 7", "4 clusters: 2x(4 procs @1.65 Gflop/s) + "
                          "2x(2 procs @3.3 Gflop/s), single backbone");
  const auto p = platform::heterogeneous_case_study(5e-2);
  report_row("description", p.describe());
  report_row("total hosts", std::to_string(p.total_hosts()));
  bool speeds_ok = true;
  for (int h : {0, 1, 6, 7}) speeds_ok = speeds_ok && p.host_speed(h) == 3.3;
  for (int h : {2, 3, 4, 5, 8, 9, 10, 11}) {
    speeds_ok = speeds_ok && p.host_speed(h) == 1.65;
  }
  report_check("fast processors are 0-1 and 6-7, twice as fast", speeds_ok);
  report_row("intra-cluster 1 MB transfer",
             fmt(p.comm_time(2, 3, 1.0), 6) + " s");
  report_row("inter-cluster 1 MB transfer",
             fmt(p.comm_time(2, 8, 1.0), 6) + " s");
  report_check("backbone dominates inter-cluster cost",
               p.comm_time(2, 8, 1.0) > p.comm_time(2, 3, 1.0) + 0.04);
  const auto flat = platform::heterogeneous_case_study(0.0);
  report_check("flat description prices remote == local (the Fig. 8 bug)",
               flat.comm_time(2, 8, 1.0) == flat.comm_time(2, 3, 1.0));
  report_footer();
}

void BM_CommTime(benchmark::State& state) {
  const auto p = platform::heterogeneous_case_study(5e-2);
  int src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.comm_time(src % 12, (src + 7) % 12, 4.0));
    ++src;
  }
}
BENCHMARK(BM_CommTime);

void BM_PlatformAverages(benchmark::State& state) {
  const auto p = platform::heterogeneous_case_study(5e-2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.average_latency());
    benchmark::DoNotOptimize(p.average_bandwidth());
  }
}
BENCHMARK(BM_PlatformAverages);

void BM_PlatformConstruction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(platform::heterogeneous_case_study(5e-2));
  }
}
BENCHMARK(BM_PlatformConstruction);

}  // namespace

JEDULE_BENCH_MAIN(report)
