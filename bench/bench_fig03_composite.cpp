// Fig. 3 — "Example schedule featuring composite tasks (orange), which
// denote the overlapping of computation (blue) and communication time
// (red)": synthesize the overlap, render it, verify the orange pixels, and
// measure composite synthesis and rendering.

#include "bench_report.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/model/composite.hpp"
#include "jedule/render/export.hpp"
#include "jedule/util/rng.hpp"

namespace {

using namespace jedule;

model::Schedule fig3_schedule() {
  return model::ScheduleBuilder()
      .cluster(0, "cluster-0", 8)
      .task("1", "computation", 0.0, 0.31)
      .on(0, 0, 8)
      .task("2", "transfer", 0.25, 0.50)
      .on(0, 2, 4)
      .build();
}

model::Schedule random_overlapping(int tasks) {
  util::Rng rng(7);
  model::ScheduleBuilder builder;
  builder.cluster(0, "c", 32);
  for (int i = 0; i < tasks; ++i) {
    const double start = rng.uniform(0, tasks / 4.0);
    const int first = static_cast<int>(rng.uniform_int(0, 28));
    builder
        .task(std::to_string(i), i % 2 ? "computation" : "transfer", start,
              start + rng.uniform(0.5, 8))
        .on(0, first, static_cast<int>(rng.uniform_int(1, 4)));
  }
  return builder.build();
}

void report() {
  using namespace jedule::bench;
  report_header("Fig. 3", "overlap of computation and communication becomes "
                          "an orange composite task");
  const auto schedule = fig3_schedule();
  const auto composites = model::synthesize_composites(schedule);
  report_row("composites found", std::to_string(composites.size()));
  if (!composites.empty()) {
    const auto& c = composites[0];
    report_row("composite id", c.task.id());
    report_row("composite interval", "[" + fmt(c.task.start_time()) + ", " +
                                         fmt(c.task.end_time()) + "]");
    report_check("id is the member concatenation", c.task.id() == "1+2");
    report_check("type is 'composite'", c.task.type() == "composite");
    report_check("covers exactly the shared region",
                 c.task.start_time() == 0.25 && c.task.end_time() == 0.31 &&
                     c.task.configurations()[0].hosts[0] ==
                         model::HostRange{2, 4});
  }

  // Render and verify the orange fill actually appears.
  render::RenderOptions options;
  options.style.width = 640;
  options.style.height = 360;
  options.threads = 1;
  const auto fb = render::render_raster(schedule, options);
  const auto layout =
      render::layout_gantt(schedule, options.colormap, options.style);
  bool orange_seen = false;
  for (const auto& box : layout.boxes) {
    if (box.composite) {
      // Probe inside the first host row, clear of outline, grid lines
      // (drawn at row boundaries) and the centered label.
      const auto px = fb.pixel(static_cast<int>(box.x + 4),
                               static_cast<int>(box.y + box.h / 8));
      orange_seen = px == color::parse_color("ff6200");
    }
  }
  report_check("rendered composite is the paper's orange (ff6200)",
               orange_seen);
  report_footer();
}

void BM_SynthesizeComposites(benchmark::State& state) {
  const auto schedule = random_overlapping(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::synthesize_composites(schedule));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SynthesizeComposites)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RenderWithComposites(benchmark::State& state) {
  const auto schedule = random_overlapping(static_cast<int>(state.range(0)));
  render::RenderOptions options;
  options.style.width = 1000;
  options.style.height = 600;
  options.style.show_labels = false;
  options.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::render_raster(schedule, options));
  }
}
BENCHMARK(BM_RenderWithComposites)->Arg(1000)->Arg(5000);

}  // namespace

JEDULE_BENCH_MAIN(report)
