// Fig. 5 — "Jedule output for the schedule produced by the CRA_WIDTH
// algorithm. Four mixed-parallel applications, each having its own color,
// are scheduled on a cluster of 20 processors. The resource constraints
// imposed by the algorithm are respected." The paper also observes that
// the top processors (17-19) are clearly underused, motivating the
// conservative backfilling step whose effect is quantified here.

#include <algorithm>
#include <set>

#include "bench_report.hpp"
#include "jedule/dag/generators.hpp"
#include "jedule/model/stats.hpp"
#include "jedule/sched/cra.hpp"
#include "jedule/util/rng.hpp"

namespace {

using namespace jedule;

std::vector<dag::Dag> four_apps() {
  util::Rng rng(5);
  std::vector<dag::Dag> apps;
  apps.push_back(dag::fork_join_dag(3, 5, rng));
  apps.push_back(dag::long_dag(10, rng));
  apps.push_back(dag::wide_dag(8, rng));
  dag::LayeredDagOptions o;
  o.levels = 5;
  o.min_width = 2;
  o.max_width = 4;
  apps.push_back(layered_random(o, rng));
  return apps;
}

void report() {
  using namespace jedule::bench;
  report_header("Fig. 5",
                "4 applications on 20 processors under CRA: per-app "
                "processor blocks are respected; the last processors are "
                "underused; backfilling reduces idle time without delaying "
                "any task");
  const auto apps = four_apps();
  const auto platform = platform::homogeneous_cluster(20);

  for (const auto metric :
       {sched::ShareMetric::kWork, sched::ShareMetric::kWidth}) {
    sched::CraOptions options;
    options.metric = metric;
    options.backfill = true;
    const auto result = sched::schedule_multi_dag(apps, platform, options);

    std::string blocks;
    for (const auto& app : result.apps) {
      blocks += "[" + std::to_string(app.first_host) + "," +
                std::to_string(app.first_host + app.host_count) + ") ";
    }
    report_row(std::string(sched::share_metric_name(metric)) + " blocks",
               blocks);
    report_row(std::string(sched::share_metric_name(metric)) +
                   " makespan / max stretch",
               fmt(result.overall_makespan) + " / " +
                   fmt(result.max_stretch, 2));
    report_row(std::string(sched::share_metric_name(metric)) +
                   " idle before/after backfill",
               fmt(result.idle_before_backfill, 1) + " / " +
                   fmt(result.idle_after_backfill, 1) + " (" +
                   std::to_string(result.backfilled_tasks) + " tasks moved)");

    // Constraint check (the Fig. 5 visual check): every task inside its
    // application's block. Backfilling may legitimately move tasks across
    // blocks, so it runs on the pre-backfill schedule.
    bool constrained = true;
    sched::CraOptions strict = options;
    strict.backfill = false;
    const auto raw = sched::schedule_multi_dag(apps, platform, strict);
    for (const auto& task : raw.schedule.tasks()) {
      const auto& app = raw.apps[static_cast<std::size_t>(
          std::stoi(std::string(*task.property("app"))))];
      for (const auto& cfg : task.configurations()) {
        for (int h : cfg.host_list()) {
          if (h < app.first_host || h >= app.first_host + app.host_count) {
            constrained = false;
          }
        }
      }
    }
    report_check(std::string(sched::share_metric_name(metric)) +
                     ": resource constraints respected",
                 constrained);

    // "processors 17 to 19 are clearly underused ... the initial
    // distribution of the processors among the applications can be too
    // restrictive": which processors end up starved depends on the app
    // mix, so the check targets the paper's actual point — the three
    // least-used processors fall clearly below the cluster average.
    const auto stats = model::compute_stats(raw.schedule);
    std::vector<std::pair<double, int>> busy;
    for (int h = 0; h < 20; ++h) {
      busy.emplace_back(stats.busy_by_resource[static_cast<std::size_t>(h)],
                        h);
    }
    std::sort(busy.begin(), busy.end());
    const double bottom3 =
        (busy[0].first + busy[1].first + busy[2].first) / 3.0;
    const double avg = stats.covered_time / 20.0;
    report_row(std::string(sched::share_metric_name(metric)) +
                   " least-used processors",
               std::to_string(busy[0].second) + "," +
                   std::to_string(busy[1].second) + "," +
                   std::to_string(busy[2].second) + " avg busy " +
                   fmt(bottom3, 1) + " vs cluster avg " + fmt(avg, 1));
    if (metric == sched::ShareMetric::kWidth) {
      // The figure's algorithm: width-based shares ignore the actual work
      // per application, so some blocks starve (the paper's processors
      // 17-19). Work-based shares balance by construction, so the check
      // applies to CRA_WIDTH only.
      report_check(std::string(sched::share_metric_name(metric)) +
                       ": distribution leaves processors clearly underused",
                   bottom3 < 0.7 * avg);
    }
    report_check(std::string(sched::share_metric_name(metric)) +
                     ": backfilling reduced idle time",
                 result.idle_after_backfill <=
                     result.idle_before_backfill + 1e-9);
  }

  // Ablation: the mu knob of beta_i = mu/|A| + (1-mu) W(i)/sum W(j)
  // trades overall makespan against fairness (Sec. IV's bi-criteria view).
  std::printf("  mu sweep (CRA_WORK):  mu  makespan  max-stretch\n");
  for (double mu : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    sched::CraOptions options;
    options.mu = mu;
    const auto r = sched::schedule_multi_dag(apps, platform, options);
    std::printf("    %.2f  %8.1f  %6.2f\n", mu, r.overall_makespan,
                r.max_stretch);
  }
  report_footer();
}

void BM_ScheduleMultiDag(benchmark::State& state) {
  const auto apps = four_apps();
  const auto platform = platform::homogeneous_cluster(20);
  sched::CraOptions options;
  options.backfill = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::schedule_multi_dag(apps, platform, options));
  }
}
BENCHMARK(BM_ScheduleMultiDag)->Arg(0)->Arg(1);

void BM_CraShares(benchmark::State& state) {
  const auto apps = four_apps();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::cra_shares(apps, sched::ShareMetric::kWork, 0.5));
  }
}
BENCHMARK(BM_CraShares);

}  // namespace

JEDULE_BENCH_MAIN(report)
