// Scale bench — the paper's Sec. VI claim that "Jedule can handle big data
// sets required to analyze fine-grained task parallel applications ... more
// than 200,000 individual tasks": composite synthesis, layout, raster
// painting, PNG encoding and XML parsing at growing task counts.

#include "bench_report.hpp"
#include "jedule/io/jedule_xml.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/model/composite.hpp"
#include "jedule/render/export.hpp"
#include "jedule/render/deflate.hpp"
#include "jedule/render/png.hpp"
#include "jedule/util/rng.hpp"
#include "jedule/util/stopwatch.hpp"

namespace {

using namespace jedule;

model::Schedule big_schedule(int tasks) {
  // Fine-grained task-pool style trace: 64 "threads", alternating exec and
  // wait intervals, no overlaps (like Figs. 11-12 at scale).
  util::Rng rng(1);
  model::ScheduleBuilder builder;
  const int threads = 64;
  builder.cluster(0, "smp", threads);
  std::vector<double> cursor(threads, 0.0);
  for (int i = 0; i < tasks; ++i) {
    const int t = i % threads;
    const double len = rng.uniform(0.0001, 0.01);
    builder
        .task("t" + std::to_string(t) + "." + std::to_string(i),
              i % 2 ? "computation" : "waiting", cursor[static_cast<std::size_t>(t)],
              cursor[static_cast<std::size_t>(t)] + len)
        .on(0, t, 1);
    cursor[static_cast<std::size_t>(t)] += len;
  }
  return builder.build();
}

void report() {
  using namespace jedule::bench;
  report_header("scale", "'Jedule can handle big data sets ... more than "
                         "200,000 individual tasks' (Sec. VI)");
  const int kTasks = 250000;
  util::Stopwatch watch;
  const auto schedule = big_schedule(kTasks);
  report_row("build 250k-task schedule", fmt(watch.seconds(), 2) + " s");

  watch.reset();
  const auto composites = model::synthesize_composites(schedule);
  report_row("composite sweep", fmt(watch.seconds(), 2) + " s (" +
                                    std::to_string(composites.size()) +
                                    " overlaps)");

  render::GanttStyle style;
  style.width = 1280;
  style.height = 720;
  style.show_labels = false;
  watch.reset();
  const auto fb =
      render::render_raster(schedule, color::standard_colormap(), style);
  report_row("layout + raster paint", fmt(watch.seconds(), 2) + " s");

  watch.reset();
  const auto png = render::encode_png(fb);
  report_row("PNG encode",
             fmt(watch.seconds(), 2) + " s (" + std::to_string(png.size()) +
                 " bytes)");

  // Ablation: the in-tree fixed-Huffman deflate vs stored blocks — the
  // LZ77 stage is what keeps chart PNGs small.
  {
    const auto& px = fb.pixels();
    const auto stored = render::zlib_compress(px.data(), px.size(), false);
    const auto packed = render::zlib_compress(px.data(), px.size(), true);
    report_row("zlib on raw pixels: stored vs fixed-Huffman",
               std::to_string(stored.size() / 1024) + " KiB vs " +
                   std::to_string(packed.size() / 1024) + " KiB (" +
                   fmt(static_cast<double>(stored.size()) /
                           static_cast<double>(packed.size()), 1) +
                   "x)");
  }

  watch.reset();
  const auto xml = io::write_schedule_xml(schedule);
  report_row("XML write",
             fmt(watch.seconds(), 2) + " s (" +
                 std::to_string(xml.size() / 1024 / 1024) + " MiB)");
  watch.reset();
  const auto back = io::read_schedule_xml(xml);
  report_row("XML parse + validate", fmt(watch.seconds(), 2) + " s");
  report_check("250k tasks round-trip end to end",
               back.tasks().size() == static_cast<std::size_t>(kTasks));
  report_footer();
}

void BM_Composites(benchmark::State& state) {
  const auto schedule = big_schedule(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::synthesize_composites(schedule));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Composites)->Arg(10000)->Arg(50000)->Arg(200000)
    ->Unit(benchmark::kMillisecond);

void BM_LayoutAndPaint(benchmark::State& state) {
  const auto schedule = big_schedule(static_cast<int>(state.range(0)));
  render::GanttStyle style;
  style.width = 1280;
  style.height = 720;
  style.show_labels = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        render::render_raster(schedule, color::standard_colormap(), style));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LayoutAndPaint)->Arg(10000)->Arg(50000)->Arg(200000)
    ->Unit(benchmark::kMillisecond);

void BM_PngEncode(benchmark::State& state) {
  const auto schedule = big_schedule(50000);
  render::GanttStyle style;
  style.width = 1280;
  style.height = 720;
  style.show_labels = false;
  const auto fb =
      render::render_raster(schedule, color::standard_colormap(), style);
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::encode_png(fb));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          fb.width() * fb.height() * 3);
}
BENCHMARK(BM_PngEncode)->Unit(benchmark::kMillisecond);

void BM_XmlParse(benchmark::State& state) {
  const auto xml =
      io::write_schedule_xml(big_schedule(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::read_schedule_xml(xml));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_XmlParse)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

}  // namespace

JEDULE_BENCH_MAIN(report)
