// Scale bench — the paper's Sec. VI claim that "Jedule can handle big data
// sets required to analyze fine-grained task parallel applications ... more
// than 200,000 individual tasks": composite synthesis, layout, raster
// painting, PNG encoding and XML parsing at growing task counts, each with
// a serial vs multi-threaded comparison (outputs must be byte-identical).

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include <filesystem>

#include "bench_report.hpp"
#include "jedule/engine/events.hpp"
#include "jedule/engine/render_service.hpp"
#include "jedule/engine/store.hpp"
#include "jedule/interactive/session.hpp"
#include "jedule/io/ingest.hpp"
#include "jedule/io/jedule_xml.hpp"
#include "jedule/io/snapshot.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/model/composite.hpp"
#include "jedule/model/edge_index.hpp"
#include "jedule/model/task_index.hpp"
#include "jedule/render/canvas.hpp"
#include "jedule/render/export.hpp"
#include "jedule/render/exporter.hpp"
#include "jedule/render/deflate.hpp"
#include "jedule/render/font.hpp"
#include "jedule/render/framebuffer.hpp"
#include "jedule/render/gantt.hpp"
#include "jedule/render/kernels.hpp"
#include "jedule/render/png.hpp"
#include "jedule/render/raster_canvas.hpp"
#include "jedule/render/span.hpp"
#include "jedule/render/tile_cache.hpp"
#include "jedule/util/cpu.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/parallel.hpp"
#include "jedule/util/rng.hpp"
#include "jedule/util/stopwatch.hpp"
#include "jedule/util/strings.hpp"
#include "jedule/xml/xml.hpp"

namespace {

using namespace jedule;

constexpr int kBenchThreads = 8;

model::Schedule big_schedule(int tasks) {
  // Fine-grained task-pool style trace: 64 "threads", alternating exec and
  // wait intervals, no overlaps (like Figs. 11-12 at scale).
  util::Rng rng(1);
  model::ScheduleBuilder builder;
  const int threads = 64;
  builder.cluster(0, "smp", threads);
  std::vector<double> cursor(threads, 0.0);
  for (int i = 0; i < tasks; ++i) {
    const int t = i % threads;
    const double len = rng.uniform(0.0001, 0.01);
    builder
        .task("t" + std::to_string(t) + "." + std::to_string(i),
              i % 2 ? "computation" : "waiting", cursor[static_cast<std::size_t>(t)],
              cursor[static_cast<std::size_t>(t)] + len)
        .on(0, t, 1);
    cursor[static_cast<std::size_t>(t)] += len;
  }
  return builder.build();
}

model::Schedule million_schedule(int tasks, int hosts) {
  // Million-task ingest workload: per-host task chains with a full-width
  // barrier task every few thousand tasks — the shape of a fine-grained
  // task-parallel trace on a big partition. Tasks never overlap, so the
  // composite stage sees heavy input but synthesizes nothing.
  util::Rng rng(7);
  model::ScheduleBuilder builder;
  builder.cluster(0, "big", hosts);
  std::vector<double> cursor(static_cast<std::size_t>(hosts), 0.0);
  for (int i = 0; i < tasks; ++i) {
    if (i % 5000 == 4999) {
      const double at = *std::max_element(cursor.begin(), cursor.end());
      const double len = rng.uniform(0.001, 0.01);
      builder.task("barrier." + std::to_string(i), "barrier", at, at + len)
          .on(0, 0, hosts);
      std::fill(cursor.begin(), cursor.end(), at + len);
    } else {
      const int h = i % hosts;
      const double len = rng.uniform(0.0001, 0.01);
      const double at = cursor[static_cast<std::size_t>(h)];
      builder
          .task("t" + std::to_string(h) + "." + std::to_string(i),
                i % 2 ? "computation" : "waiting", at, at + len)
          .on(0, h, 1);
      cursor[static_cast<std::size_t>(h)] = at + len;
    }
  }
  return builder.build();
}

model::Schedule overdraw_schedule(int tasks, int hosts, int depth) {
  // Overdraw-heavy render workload: at any instant ~`depth` tasks cover
  // each host (overlapping tasks on one host are legal — Fig. 3 draws
  // one), so a per-pixel painter writes every box pixel ~depth times
  // while the span rasterizer's occlusion pass writes it once.
  util::Rng rng(13);
  model::ScheduleBuilder builder;
  builder.cluster(0, "dense", hosts);
  const int per_host = tasks / hosts;
  for (int h = 0; h < hosts; ++h) {
    for (int i = 0; i < per_host; ++i) {
      const double start = i;
      const double len = depth + rng.uniform(0.0, 1.0);
      builder
          .task("d" + std::to_string(h) + "." + std::to_string(i),
                i % 2 ? "computation" : "transfer", start, start + len)
          .on(0, h, 1);
    }
  }
  return builder.build();
}

/// Memoized schedules for the interactive-frame benches: the 1M-task one is
/// also what million_xml() serializes, so it is built exactly once.
const model::Schedule& frame_schedule(int tasks) {
  static std::map<int, model::Schedule> cache;
  auto it = cache.find(tasks);
  if (it == cache.end()) {
    it = cache
             .emplace(tasks, tasks >= 1000000 ? million_schedule(tasks, 4096)
                                              : big_schedule(tasks))
             .first;
  }
  return it->second;
}

const model::TaskIndex& frame_index(int tasks) {
  static std::map<int, model::TaskIndex> cache;
  auto it = cache.find(tasks);
  if (it == cache.end()) {
    it = cache.emplace(tasks, model::TaskIndex(frame_schedule(tasks))).first;
  }
  return it->second;
}

/// Shared across the report and the BM_Ingest* timings (building the
/// million-task document once keeps the bench startup bounded).
const std::string& million_xml() {
  static const std::string xml = [] {
    return io::write_schedule_xml(frame_schedule(1000000));
  }();
  return xml;
}

// ---------------------------------------------------------------------------
// Binary snapshots and O(delta) append (DESIGN.md §4h): shared entries for
// the report and the BM_Snapshot*/BM_AppendDelta rows.
// ---------------------------------------------------------------------------

constexpr int kAppendDelta = 10000;

/// frame_schedule(tasks) minus its last kAppendDelta tasks: both generators
/// are deterministic per task index, so rebuilding with a smaller count
/// reproduces the first N-delta tasks exactly.
const model::Schedule& prefix_schedule(int tasks) {
  static std::map<int, model::Schedule> cache;
  auto it = cache.find(tasks);
  if (it == cache.end()) {
    const int base = tasks - kAppendDelta;
    it = cache
             .emplace(tasks, tasks >= 1000000 ? million_schedule(base, 4096)
                                              : big_schedule(base))
             .first;
  }
  return it->second;
}

const engine::EntryPtr& arena_entry(int tasks) {
  static std::map<int, engine::EntryPtr> cache;
  auto it = cache.find(tasks);
  if (it == cache.end()) {
    it = cache.emplace(tasks, engine::make_entry(frame_schedule(tasks)))
             .first;
  }
  return it->second;
}

const engine::EntryPtr& append_base_entry(int tasks) {
  static std::map<int, engine::EntryPtr> cache;
  auto it = cache.find(tasks);
  if (it == cache.end()) {
    it = cache.emplace(tasks, engine::make_entry(prefix_schedule(tasks)))
             .first;
  }
  return it->second;
}

const std::vector<model::ScheduleArena::Event>& append_events(int tasks) {
  static std::map<int, std::vector<model::ScheduleArena::Event>> cache;
  auto it = cache.find(tasks);
  if (it == cache.end()) {
    it = cache
             .emplace(tasks, engine::events_from_tasks(frame_schedule(tasks),
                                                       static_cast<std::size_t>(
                                                           tasks - kAppendDelta)))
             .first;
  }
  return it->second;
}

std::string bench_snapshot_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// Pre-PR reference ingest: faithful copies of the DOM-walking reader, the
// per-host validate and the per-(cluster, host) composite sweep as they stood
// before the zero-copy ingest work (the same convention as ReferenceTimeline
// in tests/test_sched_gaps.cpp). Together they are the "pre-PR DOM path" the
// >= 5x ingest row measures against.
// ---------------------------------------------------------------------------
namespace legacy {

int require_int_attr(const xml::Element& e, std::string_view name) {
  auto v = util::parse_int(e.require_attr(name));
  if (!v) {
    throw ParseError("attribute '" + std::string(name) + "' of <" +
                         e.name() + "> is not an integer",
                     e.source_line());
  }
  return static_cast<int>(*v);
}

model::Configuration parse_configuration(const xml::Element& e) {
  model::Configuration cfg;
  for (const auto* prop : e.children_named("conf_property")) {
    const auto name = prop->require_attr("name");
    const auto value = prop->require_attr("value");
    if (name == "cluster_id") {
      cfg.cluster_id = static_cast<int>(*util::parse_int(value));
    }
  }
  for (const auto* hosts :
       e.first_child("host_lists")->children_named("hosts")) {
    model::HostRange r;
    r.start = require_int_attr(*hosts, "start");
    r.nb = require_int_attr(*hosts, "nb");
    cfg.hosts.push_back(r);
  }
  return cfg;
}

model::Task parse_node(const xml::Element& e) {
  model::Task t;
  double start = 0;
  double end = 0;
  for (const auto* prop : e.children_named("node_property")) {
    const auto name = prop->require_attr("name");
    const auto value = std::string(prop->require_attr("value"));
    if (name == "id") {
      t.set_id(value);
    } else if (name == "type") {
      t.set_type(value);
    } else if (name == "start_time") {
      start = *util::parse_double(value);
    } else if (name == "end_time") {
      end = *util::parse_double(value);
    } else {
      t.set_property(std::string(name), value);
    }
  }
  t.set_times(start, end);
  for (const auto* cfg : e.children_named("configuration")) {
    t.add_configuration(parse_configuration(*cfg));
  }
  return t;
}

/// Pre-PR validate: expands every host range into a per-configuration
/// std::set<int> and tracks task ids in an ordered set.
void validate(const model::Schedule& schedule) {
  std::set<std::string_view> seen_ids;
  for (const auto& t : schedule.tasks()) {
    if (!seen_ids.insert(t.id()).second) {
      throw ValidationError("duplicate task id '" + t.id() + "'");
    }
    for (const auto& cfg : t.configurations()) {
      const model::Cluster& cluster = schedule.cluster_by_id(cfg.cluster_id);
      std::set<int> used;
      for (const auto& range : cfg.hosts) {
        if (range.start < 0 || range.start + range.nb > cluster.hosts) {
          throw ValidationError("host range out of bounds");
        }
        for (int h = range.start; h < range.start + range.nb; ++h) {
          if (!used.insert(h).second) {
            throw ValidationError("task '" + t.id() + "' lists host " +
                                  std::to_string(h) + " twice");
          }
        }
      }
    }
  }
}

/// Pre-PR DOM reader: baseline recursive parse, then a DOM walk.
model::Schedule read_schedule(const std::string& xml_text) {
  const xml::Document doc = xml::baseline_parse(xml_text);
  const xml::Element& root = *doc.root;
  model::Schedule schedule;
  for (const auto* cluster :
       root.first_child("platform")->children_named("cluster")) {
    model::Cluster c;
    c.id = require_int_attr(*cluster, "id");
    if (auto name = cluster->attr("name")) c.name = std::string(*name);
    c.hosts = require_int_attr(*cluster, "hosts");
    schedule.add_cluster(std::move(c));
  }
  if (const auto* nodes = root.first_child("node_infos")) {
    for (const auto* node : nodes->children_named("node_statistics")) {
      schedule.add_task(parse_node(*node));
    }
  }
  validate(schedule);
  return schedule;
}

struct GroupKey {
  int cluster_id;
  model::Time begin;
  model::Time end;
  std::vector<std::size_t> members;

  bool operator<(const GroupKey& o) const {
    return std::tie(cluster_id, begin, end, members) <
           std::tie(o.cluster_id, o.begin, o.end, o.members);
  }
};

struct Interval {
  std::size_t task_index;
  model::Time begin;
  model::Time end;
};

std::vector<model::HostRange> compress_hosts(std::vector<int> hosts) {
  std::sort(hosts.begin(), hosts.end());
  std::vector<model::HostRange> ranges;
  for (int h : hosts) {
    if (!ranges.empty() && ranges.back().start + ranges.back().nb == h) {
      ++ranges.back().nb;
    } else {
      ranges.push_back(model::HostRange{h, 1});
    }
  }
  return ranges;
}

/// Pre-PR composite sweep: expands every allocation to per-(cluster, host)
/// interval lists and sweeps each host independently (serial path).
std::vector<model::Composite> composites(const model::Schedule& schedule) {
  const auto& tasks = schedule.tasks();
  std::map<std::pair<int, int>, std::vector<Interval>> per_resource;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const model::Task& t = tasks[i];
    if (!(t.end_time() > t.start_time())) continue;
    for (const auto& cfg : t.configurations()) {
      for (const auto& range : cfg.hosts) {
        for (int h = range.start; h < range.start + range.nb; ++h) {
          per_resource[{cfg.cluster_id, h}].push_back(
              Interval{i, t.start_time(), t.end_time()});
        }
      }
    }
  }

  std::map<GroupKey, std::vector<int>> groups;
  for (const auto& [resource, intervals] : per_resource) {
    if (intervals.size() < 2) continue;
    struct Event {
      model::Time time;
      bool is_start;
      std::size_t task_index;
    };
    std::vector<Event> events;
    events.reserve(intervals.size() * 2);
    for (const auto& iv : intervals) {
      events.push_back(Event{iv.begin, true, iv.task_index});
      events.push_back(Event{iv.end, false, iv.task_index});
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.is_start != b.is_start) return !a.is_start;
                return a.task_index < b.task_index;
              });
    std::vector<std::size_t> active;
    std::size_t e = 0;
    model::Time prev_time = 0;
    bool have_prev = false;
    while (e < events.size()) {
      const model::Time now = events[e].time;
      if (have_prev && active.size() >= 2 && now > prev_time) {
        groups[GroupKey{resource.first, prev_time, now, active}].push_back(
            resource.second);
      }
      while (e < events.size() && events[e].time == now) {
        if (events[e].is_start) {
          active.insert(std::lower_bound(active.begin(), active.end(),
                                         events[e].task_index),
                        events[e].task_index);
        } else {
          active.erase(std::lower_bound(active.begin(), active.end(),
                                        events[e].task_index));
        }
        ++e;
      }
      prev_time = now;
      have_prev = true;
    }
  }

  std::vector<model::Composite> out;
  out.reserve(groups.size());
  for (auto& [key, hosts] : groups) {
    model::Composite comp;
    std::vector<std::string> ids;
    for (std::size_t idx : key.members) {
      ids.push_back(tasks[idx].id());
      comp.member_types.insert(tasks[idx].type());
    }
    comp.member_ids = ids;
    comp.task.set_id(util::join(ids, "+"));
    comp.task.set_type("composite");
    comp.task.set_times(key.begin, key.end);
    model::Configuration cfg;
    cfg.cluster_id = key.cluster_id;
    cfg.hosts = compress_hosts(std::move(hosts));
    comp.task.add_configuration(std::move(cfg));
    out.push_back(std::move(comp));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pre-PR raster path: faithful copies of the per-pixel Framebuffer
// primitives, the glyph renderer and the forwarding RasterCanvas as they
// stood before the span rasterizer and SIMD kernels — every primitive
// decomposes into set_pixel calls (unchecked inside a pre-clipped opaque
// fill, bounds-checked everywhere else). The BM_Raster* rows and the
// cold-export check measure against these.
// ---------------------------------------------------------------------------

void fill_rect(render::Framebuffer& fb, int x, int y, int w, int h,
               color::Color c) {
  if (c.a == 0) return;
  const int x0 = std::max(x, 0);
  const int y0 = std::max(y, 0);
  const int x1 = std::min(x + w, fb.width());
  const int y1 = std::min(y + h, fb.height());
  if (c.a == 255) {
    for (int yy = y0; yy < y1; ++yy) {
      for (int xx = x0; xx < x1; ++xx) fb.set_pixel_unchecked(xx, yy, c);
    }
  } else {
    for (int yy = y0; yy < y1; ++yy) {
      for (int xx = x0; xx < x1; ++xx) fb.set_pixel(xx, yy, c);
    }
  }
}

void draw_hline(render::Framebuffer& fb, int x0, int x1, int y,
                color::Color c) {
  if (x1 < x0) std::swap(x0, x1);
  for (int x = x0; x <= x1; ++x) fb.set_pixel(x, y, c);
}

void draw_vline(render::Framebuffer& fb, int x, int y0, int y1,
                color::Color c) {
  if (y1 < y0) std::swap(y0, y1);
  for (int y = y0; y <= y1; ++y) fb.set_pixel(x, y, c);
}

void draw_rect(render::Framebuffer& fb, int x, int y, int w, int h,
               color::Color c) {
  if (w <= 0 || h <= 0) return;
  draw_hline(fb, x, x + w - 1, y, c);
  draw_hline(fb, x, x + w - 1, y + h - 1, c);
  draw_vline(fb, x, y, y + h - 1, c);
  draw_vline(fb, x + w - 1, y, y + h - 1, c);
}

void draw_line(render::Framebuffer& fb, int x0, int y0, int x1, int y1,
               color::Color c) {
  const int dx = std::abs(x1 - x0);
  const int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    fb.set_pixel(x0, y0, c);
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void hatch_rect(render::Framebuffer& fb, int x, int y, int w, int h,
                int spacing, color::Color c) {
  const int x1 = x + w - 1;
  const int y1 = y + h - 1;
  for (int k = x + y; k <= x1 + y1; k += spacing) {
    for (int yy = std::max(y, k - x1); yy <= std::min(y1, k - x); ++yy) {
      fb.set_pixel(k - yy, yy, c);
    }
  }
}

void draw_text(render::Framebuffer& fb, int x, int y, std::string_view text,
               color::Color c, int scale) {
  int cursor = x;
  for (char ch : text) {
    const auto& glyph = render::glyph_bitmap(ch);
    for (int r = 0; r < render::kGlyphHeight; ++r) {
      for (int col = 0; col < render::kGlyphWidth; ++col) {
        if (glyph[static_cast<std::size_t>(r)] &
            (1u << (render::kGlyphWidth - 1 - col))) {
          fill_rect(fb, cursor + col * scale, y + r * scale, scale, scale, c);
        }
      }
    }
    cursor += (render::kGlyphWidth + 1) * scale;
  }
}

class RasterCanvas final : public render::Canvas {
 public:
  explicit RasterCanvas(render::Framebuffer& fb) : fb_(fb) {}

  int width() const override { return fb_.width(); }
  int height() const override { return fb_.height(); }

  void fill_rect(double x, double y, double w, double h,
                 color::Color c) override {
    const int x0 = px(x);
    const int y0 = px(y);
    legacy::fill_rect(fb_, x0, y0, px(x + w) - x0, px(y + h) - y0, c);
  }
  void stroke_rect(double x, double y, double w, double h,
                   color::Color c) override {
    const int x0 = px(x);
    const int y0 = px(y);
    legacy::draw_rect(fb_, x0, y0, px(x + w) - x0, px(y + h) - y0, c);
  }
  void line(double x0, double y0, double x1, double y1,
            color::Color c) override {
    legacy::draw_line(fb_, px(x0), px(y0), px(x1), px(y1), c);
  }
  void hatch_rect(double x, double y, double w, double h, int spacing,
                  color::Color c) override {
    const int x0 = px(x);
    const int y0 = px(y);
    legacy::hatch_rect(fb_, x0, y0, px(x + w) - x0, px(y + h) - y0, spacing,
                       c);
  }
  void text(double x, double y, std::string_view text, color::Color c,
            int size) override {
    legacy::draw_text(fb_, px(x), px(y), text, c,
                      render::scale_for_font_size(size));
  }
  double text_width(std::string_view text, int size) const override {
    return render::text_width(text, render::scale_for_font_size(size));
  }
  double text_height(int size) const override {
    return render::text_height(render::scale_for_font_size(size));
  }

 private:
  static int px(double v) { return static_cast<int>(std::lround(v)); }

  render::Framebuffer& fb_;
};

/// Pre-PR cold PNG export: layout, serial per-pixel paint, PNG encode.
std::string export_png(const model::Schedule& schedule,
                       const render::RenderOptions& options) {
  const auto layout = render::layout_gantt(schedule, options);
  render::Framebuffer fb(options.style.width, options.style.height);
  RasterCanvas canvas(fb);
  render::paint_gantt(layout, canvas, options.style);
  return render::encode_png(fb);
}

}  // namespace legacy

bool same_composites(const std::vector<model::Composite>& a,
                     const std::vector<model::Composite>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].task.id() != b[i].task.id() ||
        a[i].member_ids != b[i].member_ids ||
        a[i].member_types != b[i].member_types) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Interactive frames. The legacy path is what every view change cost before
// the spatial index / tile cache: a full layout of all tasks plus a full
// repaint. The new path answers pans from cached tiles (warm) and zooms from
// an index-culled layout (cold). Windows are ~0.1% of the makespan — the
// zoom level at which someone actually inspects a fine-grained trace.
// ---------------------------------------------------------------------------

const color::ColorMap& bench_colormap() {
  static const color::ColorMap cmap = color::standard_colormap();
  return cmap;
}

render::GanttStyle frame_style() {
  render::GanttStyle style;
  style.width = 1000;   // 930 pixel columns between the margins
  style.height = 600;
  return style;
}

render::Framebuffer legacy_frame(const model::Schedule& s,
                                 const render::GanttStyle& style) {
  const auto layout = render::layout_gantt(s, bench_colormap(), style, 1, {});
  render::Framebuffer fb(style.width, style.height);
  render::RasterCanvas canvas(fb);
  render::paint_gantt(layout, canvas, style);
  return fb;
}

struct FrameSetup {
  const model::Schedule* schedule;
  const model::TaskIndex* index;
  double begin;   // full-range begin
  double span;    // full-range length
  double len;     // window length (0.1% of the span)
  double step;    // one pixel column in window time units
};

FrameSetup frame_setup(int tasks) {
  const auto& s = frame_schedule(tasks);
  const auto& index = frame_index(tasks);
  const auto range = *s.time_range();
  FrameSetup setup;
  setup.schedule = &s;
  setup.index = &index;
  setup.begin = range.begin;
  setup.span = range.length();
  setup.len = setup.span * 0.001;
  setup.step = setup.len / 930.0;
  return setup;
}

render::TileCache::Request frame_request(const FrameSetup& setup, double t0) {
  render::TileCache::Request req;
  req.schedule = setup.schedule;
  req.colormap = &bench_colormap();
  req.style = frame_style();
  req.style.time_window = model::TimeRange{t0, t0 + setup.len};
  req.index = setup.index;
  req.validated = true;
  return req;
}

render::RenderOptions bench_options(int threads) {
  render::RenderOptions options;
  options.style.width = 1280;
  options.style.height = 720;
  options.style.show_labels = false;
  options.threads = threads;
  return options;
}

/// Shared by the report and BM_ExportPngCold: 1M tasks, 64 hosts, ~192
/// deep overdraw — the schedule whose export cost is dominated by
/// rasterization rather than layout or PNG encoding.
const model::Schedule& dense_schedule() {
  static const model::Schedule s = overdraw_schedule(1000000, 64, 192);
  return s;
}

render::RenderOptions dense_options() {
  auto options = bench_options(1);
  // Composites off: with ~192-deep overlap everywhere, synthesizing them
  // would swamp the raster stage this workload isolates.
  options.style.show_composites = false;
  return options;
}

// ---------------------------------------------------------------------------
// Dependency-edge workload (DESIGN.md §4j): the 1M-task schedule plus 2M
// precedence edges — every per-host chain link, topped up with random
// forward communication edges between nearby tasks. Shared by the report
// block and the BM_Edge* rows.
// ---------------------------------------------------------------------------

constexpr int kEdgeTasks = 1000000;
constexpr std::size_t kEdgeCount = 2000000;

const model::Schedule& edge_schedule() {
  static const model::Schedule s = [] {
    model::Schedule sched = frame_schedule(kEdgeTasks);
    const int n = static_cast<int>(sched.tasks().size());
    // ~1M chain edges: million_schedule runs host h's tasks at indices
    // h, h+4096, ... so i-4096 precedes i on the same host (edges into
    // or out of the interleaved barriers are legal precedences too).
    for (int i = 4096; i < n; ++i) {
      sched.add_dependency(static_cast<std::uint32_t>(i - 4096),
                           static_cast<std::uint32_t>(i), 1.0);
    }
    util::Rng rng(23);
    while (sched.dependencies().size() < kEdgeCount) {
      const int src =
          static_cast<int>(rng.uniform(0.0, static_cast<double>(n - 2)));
      const int hop = 1 + static_cast<int>(rng.uniform(0.0, 999.0));
      const int dst = std::min(src + hop, n - 1);
      sched.add_dependency(static_cast<std::uint32_t>(src),
                           static_cast<std::uint32_t>(dst), 1.0);
    }
    sched.validate();
    return sched;
  }();
  return s;
}

const model::EdgeIndex& edge_index() {
  static const model::EdgeIndex index(edge_schedule(), kBenchThreads);
  return index;
}

const model::TaskIndex& edge_task_index() {
  static const model::TaskIndex index(edge_schedule());
  return index;
}

FrameSetup edge_frame_setup() {
  const auto& s = edge_schedule();
  const auto range = *s.time_range();
  FrameSetup setup;
  setup.schedule = &s;
  setup.index = &edge_task_index();
  setup.begin = range.begin;
  setup.span = range.length();
  setup.len = setup.span * 0.001;
  setup.step = setup.len / 930.0;
  return setup;
}

render::TileCache::Request edge_frame_request(const FrameSetup& setup,
                                              double t0,
                                              render::EdgeMode mode) {
  auto req = frame_request(setup, t0);
  req.style.edges = mode;
  if (mode != render::EdgeMode::kOff) req.edge_index = &edge_index();
  return req;
}

void report() {
  using namespace jedule::bench;
  report_header("scale", "'Jedule can handle big data sets ... more than "
                         "200,000 individual tasks' (Sec. VI)");
#ifndef NDEBUG
  // Debug timings are not comparable to the committed numbers; refuse to
  // emit rows that could be mistaken for them.
  report_row("library_build_type", "debug");
  report_row("report rows and checks",
             "refused (debug build; rerun with a release configuration)");
  report_footer();
  return;
#endif
  report_row("library_build_type", "release");
  const int kTasks = 250000;
  util::Stopwatch watch;
  const auto schedule = big_schedule(kTasks);
  report_row("build 250k-task schedule", fmt(watch.seconds(), 2) + " s");

  watch.reset();
  const auto composites = model::synthesize_composites(schedule);
  const double composite_serial = watch.seconds();
  report_row("composite sweep (1 thread)",
             fmt(composite_serial, 2) + " s (" +
                 std::to_string(composites.size()) + " overlaps)");
  watch.reset();
  const auto composites_mt =
      model::synthesize_composites(schedule, nullptr, kBenchThreads);
  const double composite_parallel = watch.seconds();
  report_row("composite sweep (" + std::to_string(kBenchThreads) + " threads)",
             fmt(composite_parallel, 2) + " s (" +
                 fmt(composite_serial / composite_parallel, 1) + "x)");
  report_check("parallel composite sweep matches serial",
               same_composites(composites_mt, composites));

  watch.reset();
  const auto fb = render::render_raster(schedule, bench_options(1));
  const double paint_serial = watch.seconds();
  report_row("layout + raster paint (1 thread)",
             fmt(paint_serial, 2) + " s");
  watch.reset();
  const auto fb_mt = render::render_raster(schedule,
                                           bench_options(kBenchThreads));
  const double paint_parallel = watch.seconds();
  report_row("layout + raster paint (" + std::to_string(kBenchThreads) +
                 " threads)",
             fmt(paint_parallel, 2) + " s (" +
                 fmt(paint_serial / paint_parallel, 1) + "x)");
  report_check("banded raster paint matches serial",
               fb_mt.pixels() == fb.pixels());

  watch.reset();
  const auto png = render::encode_png(fb);
  const double png_serial = watch.seconds();
  report_row("PNG encode (1 thread)",
             fmt(png_serial, 2) + " s (" + std::to_string(png.size()) +
                 " bytes)");
  watch.reset();
  const auto png_mt = render::encode_png(fb_mt, kBenchThreads);
  const double png_parallel = watch.seconds();
  report_row("PNG encode (" + std::to_string(kBenchThreads) + " threads)",
             fmt(png_parallel, 2) + " s (" +
                 fmt(png_serial / png_parallel, 1) + "x)");
  report_check("parallel PNG encode is byte-identical", png_mt == png);

  // The codec stages in isolation: per-scanline min-SAD filtering, then
  // the chunked dynamic-Huffman deflate over the filtered payload.
  {
    watch.reset();
    const auto scan = render::filter_scanlines(fb, 1);
    const double filter_s = watch.seconds();
    report_row("PNG filter selection (1 thread)",
               fmt(filter_s * 1e3, 1) + " ms (" +
                   std::to_string(scan.size() / 1024 / 1024) + " MiB)");
    watch.reset();
    const auto dyn_serial = render::deflate_compress(
        scan.data(), scan.size(), 1, render::DeflateStrategy::dynamic);
    const double deflate_serial = watch.seconds();
    watch.reset();
    const auto dyn_parallel = render::deflate_compress(
        scan.data(), scan.size(), kBenchThreads,
        render::DeflateStrategy::dynamic);
    const double deflate_parallel = watch.seconds();
    report_row("dynamic deflate on filtered scanlines (1 vs " +
                   std::to_string(kBenchThreads) + " threads)",
               fmt(deflate_serial * 1e3, 1) + " ms vs " +
                   fmt(deflate_parallel * 1e3, 1) + " ms (" +
                   fmt(deflate_serial / deflate_parallel, 1) + "x, " +
                   std::to_string(dyn_serial.size() / 1024) + " KiB)");
    report_check("parallel dynamic deflate is byte-identical",
                 dyn_parallel == dyn_serial);
    if (util::hardware_threads() >= 2) {
      report_check("parallel deflate encode >= 2x serial",
                   deflate_serial / deflate_parallel >= 2.0);
    } else {
      report_row("parallel deflate encode >= 2x serial",
                 "skipped (single-core host)");
    }
  }

  // End-to-end export: the acceptance target for the parallel pipeline is
  // >= 2x on the 250k-task PNG export with 8 threads.
  watch.reset();
  const auto bytes_serial =
      render::render_to_bytes(schedule, bench_options(1), "png");
  const double e2e_serial = watch.seconds();
  report_row("end-to-end PNG export (1 thread)", fmt(e2e_serial, 2) + " s");
  watch.reset();
  const auto bytes_parallel =
      render::render_to_bytes(schedule, bench_options(kBenchThreads), "png");
  const double e2e_parallel = watch.seconds();
  report_row("end-to-end PNG export (" + std::to_string(kBenchThreads) +
                 " threads)",
             fmt(e2e_parallel, 2) + " s (" +
                 fmt(e2e_serial / e2e_parallel, 1) + "x)");
  report_check("parallel export is byte-identical",
               bytes_parallel == bytes_serial);
  if (util::hardware_threads() >= 2) {
    report_check("250k-task PNG export >= 2x with " +
                     std::to_string(kBenchThreads) + " threads",
                 e2e_serial / e2e_parallel >= 2.0);
  } else {
    report_row("250k-task PNG export >= 2x with " +
                   std::to_string(kBenchThreads) + " threads",
               "skipped (single-core host)");
  }

  // Ablation: the three deflate strategies on raw pixels — LZ77 is what
  // keeps chart PNGs small, and per-chunk dynamic Huffman codes shrink the
  // entropy stage further.
  {
    const auto& px = fb.pixels();
    const auto stored = render::zlib_compress(px.data(), px.size(),
                                              render::DeflateStrategy::stored);
    const auto fixed = render::zlib_compress(px.data(), px.size(),
                                             render::DeflateStrategy::fixed);
    const auto dynamic = render::zlib_compress(
        px.data(), px.size(), render::DeflateStrategy::dynamic);
    report_row("zlib on raw pixels: stored vs fixed vs dynamic",
               std::to_string(stored.size() / 1024) + " KiB vs " +
                   std::to_string(fixed.size() / 1024) + " KiB vs " +
                   std::to_string(dynamic.size() / 1024) + " KiB");
    report_check("dynamic-Huffman deflate <= 40% of fixed-Huffman on chart "
                 "pixels",
                 dynamic.size() * 10 <= fixed.size() * 4);
  }

  watch.reset();
  const auto xml = io::write_schedule_xml(schedule);
  report_row("XML write",
             fmt(watch.seconds(), 2) + " s (" +
                 std::to_string(xml.size() / 1024 / 1024) + " MiB)");
  watch.reset();
  const auto back = io::read_schedule_xml(xml);
  report_row("XML parse + validate", fmt(watch.seconds(), 2) + " s");
  report_check("250k tasks round-trip end to end",
               back.tasks().size() == static_cast<std::size_t>(kTasks));

  // Million-task ingest: the full XML -> model -> composite data path. Three
  // rows: the faithful pre-PR path (baseline recursive parse + DOM walk +
  // per-host validate + per-host composite sweep, reconstructed in `legacy`
  // above), the retained DOM reader over today's kernels, and the zero-copy
  // streaming reader. Target: >= 5x vs the pre-PR path, end to end.
  {
    watch.reset();
    const auto& mxml = million_xml();
    report_row("build + write 1M-task/4096-host XML",
               fmt(watch.seconds(), 2) + " s (" +
                   std::to_string(mxml.size() / 1024 / 1024) + " MiB)");

    watch.reset();
    const auto via_legacy = legacy::read_schedule(mxml);
    const auto comp_legacy = legacy::composites(via_legacy);
    const double ingest_legacy = watch.seconds();
    report_row("1M ingest, pre-PR DOM path", fmt(ingest_legacy, 2) + " s");

    watch.reset();
    const auto via_dom = io::read_schedule_xml_dom(mxml);
    const auto comp_dom = model::synthesize_composites(via_dom);
    const double ingest_dom = watch.seconds();
    report_row("1M ingest, DOM reader + new kernels",
               fmt(ingest_dom, 2) + " s (" +
                   fmt(ingest_legacy / ingest_dom, 1) + "x)");

    watch.reset();
    const auto via_pull = io::read_schedule_xml(mxml);
    const auto comp_pull = model::synthesize_composites(via_pull);
    const double ingest_pull = watch.seconds();
    report_row("1M ingest, streaming reader + new kernels",
               fmt(ingest_pull, 2) + " s (" +
                   fmt(ingest_legacy / ingest_pull, 1) + "x)");

    report_check("pre-PR, DOM and streaming readers agree on 1M tasks",
                 via_dom.tasks().size() == via_pull.tasks().size() &&
                     via_legacy.tasks().size() == via_pull.tasks().size() &&
                     io::write_schedule_xml(via_pull) == mxml &&
                     io::write_schedule_xml(via_dom) == mxml &&
                     io::write_schedule_xml(via_legacy) == mxml);
    report_check("1M-task schedules are overlap-free",
                 comp_legacy.empty() && comp_dom.empty() && comp_pull.empty());
    report_check("1M-task ingest >= 5x vs pre-PR DOM path",
                 ingest_legacy / ingest_pull >= 5.0);
  }

  // Parallel chunked ingest (DESIGN.md §4i): the same 1M-task document
  // through the boundary-scan + worker-chunk reader at 1 vs 8 threads,
  // plus a gzip input to show decompression overlapping the parse. The
  // outputs must serialize back to the exact input bytes at every thread
  // count.
  {
    const auto& mxml = million_xml();
    io::IngestOptions opt;
    opt.threads = 1;
    watch.reset();
    io::TextSource serial_src(std::string_view(mxml), nullptr);
    const auto via_serial = io::read_schedule_xml_chunked(
        serial_src, opt, nullptr);
    const double chunked_1t = watch.seconds();
    report_row("1M chunked ingest (1 thread)", fmt(chunked_1t, 2) + " s");

    opt.threads = kBenchThreads;
    io::IngestStats stats;
    watch.reset();
    io::TextSource parallel_src(std::string_view(mxml), nullptr);
    const auto via_parallel =
        io::read_schedule_xml_chunked(parallel_src, opt, &stats);
    const double chunked_8t = watch.seconds();
    report_row("1M chunked ingest (" + std::to_string(kBenchThreads) +
                   " threads)",
               fmt(chunked_8t, 2) + " s (" + fmt(chunked_1t / chunked_8t, 1) +
                   "x, " + std::to_string(stats.chunks) + " chunks)");
    report_check("chunked ingest is byte-identical at every thread count",
                 io::write_schedule_xml(via_serial) == mxml &&
                     io::write_schedule_xml(via_parallel) == mxml);
    if (util::hardware_threads() >= 2) {
      report_check("1M-task chunked ingest >= 3x with " +
                       std::to_string(kBenchThreads) + " threads",
                   chunked_1t / chunked_8t >= 3.0);
    } else {
      report_row("1M-task chunked ingest >= 3x with " +
                     std::to_string(kBenchThreads) + " threads",
                 "skipped (single-core host)");
    }

    const auto zipped = render::gzip_compress(
        reinterpret_cast<const std::uint8_t*>(mxml.data()), mxml.size(),
        render::DeflateStrategy::dynamic, kBenchThreads);
    watch.reset();
    io::TextSource gz_src(
        std::string_view(reinterpret_cast<const char*>(zipped.data()),
                         zipped.size()),
        nullptr);
    const auto via_gz = io::read_schedule_xml_chunked(gz_src, opt, nullptr);
    const double gz_s = watch.seconds();
    report_row("1M chunked ingest from gzip (inflate overlapped)",
               fmt(gz_s, 2) + " s (" +
                   std::to_string(zipped.size() / 1024 / 1024) +
                   " MiB compressed)");
    report_check("gzip-pipelined ingest matches the plain parse",
                 io::write_schedule_xml(via_gz) == mxml);
  }

  // Interactive frames on the 1M-task schedule: full relayout (the pre-PR
  // cost of every view change) vs warm tile-cache pans at a 0.1%-of-makespan
  // window. Target: warm pan >= 10x.
  {
    const auto setup = frame_setup(1000000);
    auto style = frame_style();

    watch.reset();
    const int kLegacyFrames = 3;
    for (int i = 0; i < kLegacyFrames; ++i) {
      const double t0 = setup.begin + i * 8 * setup.step;
      style.time_window = model::TimeRange{t0, t0 + setup.len};
      const auto fb = legacy_frame(*setup.schedule, style);
      if (fb.width() != style.width) throw Error("bad frame");
    }
    const double legacy_ms = watch.seconds() * 1000 / kLegacyFrames;
    report_row("1M-task frame, full relayout", fmt(legacy_ms, 1) + " ms");

    render::TileCache cache;
    (void)cache.render_frame(frame_request(setup, setup.begin));
    const int kWarmFrames = 50;
    watch.reset();
    for (int i = 1; i <= kWarmFrames; ++i) {
      const double t0 = setup.begin + i * 8 * setup.step;
      const auto fb = cache.render_frame(frame_request(setup, t0));
      if (fb.width() != style.width) throw Error("bad frame");
    }
    const double warm_ms = watch.seconds() * 1000 / kWarmFrames;
    report_row("1M-task frame, warm tile-cache pan",
               fmt(warm_ms, 1) + " ms (" + fmt(legacy_ms / warm_ms, 1) + "x)");
    report_check("warm pan >= 10x vs full relayout at 1M tasks",
                 legacy_ms / warm_ms >= 10.0);
  }

  // Raster kernels and overdraw elimination: the reconstructed pre-PR
  // per-pixel path vs the scanline span rasterizer + runtime-dispatched
  // SIMD kernels. Targets: >= 4x on the opaque-fill kernel and >= 2x on
  // the end-to-end cold 1M-task PNG export (soft-skipped on hosts without
  // AVX2/NEON, where only the smaller SSE2/scalar win is available).
  {
    const auto& cpu = util::cpu_features();
    std::string names;
    for (const auto* k : render::kernels::available()) {
      if (!names.empty()) names += ", ";
      names += k->name;
    }
    report_row("raster kernels",
               names + "; active: " + render::kernels::active().name);

    render::Framebuffer fb(1280, 720);
    const color::Color opaque{40, 90, 160, 255};
    const color::Color veil{200, 60, 40, 128};
    const auto time_reps = [](int reps, auto&& fn) {
      fn();  // warm the caches before timing
      util::Stopwatch w;
      for (int i = 0; i < reps; ++i) fn();
      return w.seconds() / reps;
    };

    const double fill_legacy = time_reps(
        40, [&] { legacy::fill_rect(fb, 0, 0, 1280, 720, opaque); });
    const double fill_new =
        time_reps(40, [&] { fb.fill_rect(0, 0, 1280, 720, opaque); });
    const double fill_x = fill_legacy / fill_new;
    report_row("opaque fill 1280x720, per-pixel vs kernel",
               fmt(fill_legacy * 1e3, 2) + " ms vs " +
                   fmt(fill_new * 1e3, 2) + " ms (" + fmt(fill_x, 1) + "x)");

    const double blend_legacy =
        time_reps(40, [&] { legacy::fill_rect(fb, 0, 0, 1280, 720, veil); });
    const double blend_new =
        time_reps(40, [&] { fb.fill_rect(0, 0, 1280, 720, veil); });
    report_row("alpha blend 1280x720, per-pixel vs kernel",
               fmt(blend_legacy * 1e3, 2) + " ms vs " +
                   fmt(blend_new * 1e3, 2) + " ms (" +
                   fmt(blend_legacy / blend_new, 1) + "x)");

    const char* label = "task t63.999999 (computation)";
    const double text_legacy = time_reps(20, [&] {
      for (int i = 0; i < 60; ++i) {
        legacy::draw_text(fb, 8, 8 + (i % 64) * 9, label, color::kBlack, 1);
      }
    });
    const double text_new = time_reps(20, [&] {
      for (int i = 0; i < 60; ++i) {
        render::draw_text(fb, 8, 8 + (i % 64) * 9, label, color::kBlack, 1);
      }
    });
    report_row("60 labels, per-cell vs cached spans",
               fmt(text_legacy * 1e3, 2) + " ms vs " +
                   fmt(text_new * 1e3, 2) + " ms (" +
                   fmt(text_legacy / text_new, 1) + "x)");

    // 256 overlapping rects on one canvas: sequential per-pixel painting
    // vs one span-batch flush resolving the overdraw up front.
    const auto overdraw_rect = [](int i) {
      return std::tuple<int, int, color::Color>(
          (i * 37) % 800, (i * 23) % 600,
          color::Color{static_cast<std::uint8_t>(50 + i % 180),
                       static_cast<std::uint8_t>(80 + i % 120),
                       static_cast<std::uint8_t>(20 + i % 200),
                       static_cast<std::uint8_t>(i % 7 == 0 ? 120 : 255)});
    };
    const double over_legacy = time_reps(20, [&] {
      for (int i = 0; i < 256; ++i) {
        const auto [x, y, c] = overdraw_rect(i);
        legacy::fill_rect(fb, x, y, 400, 100, c);
      }
    });
    const double over_new = time_reps(20, [&] {
      render::SpanBatch batch(fb);
      for (int i = 0; i < 256; ++i) {
        const auto [x, y, c] = overdraw_rect(i);
        batch.add_rect(x, y, 400, 100, c);
      }
      batch.flush();
    });
    report_row("256-rect overdraw, sequential vs span batch",
               fmt(over_legacy * 1e3, 2) + " ms vs " +
                   fmt(over_new * 1e3, 2) + " ms (" +
                   fmt(over_legacy / over_new, 1) + "x)");

    watch.reset();
    const auto& dense = dense_schedule();
    report_row("build 1M-task overdraw schedule",
               fmt(watch.seconds(), 2) + " s (" +
                   std::to_string(dense.tasks().size()) + " tasks)");
    watch.reset();
    const auto png_legacy = legacy::export_png(dense, dense_options());
    const double cold_legacy = watch.seconds();
    report_row("1M-task cold PNG export, per-pixel raster",
               fmt(cold_legacy, 2) + " s");
    watch.reset();
    const auto png_new = render::render_to_bytes(dense, dense_options(), "png");
    const double cold_new = watch.seconds();
    report_row("1M-task cold PNG export, span raster",
               fmt(cold_new, 2) + " s (" + fmt(cold_legacy / cold_new, 1) +
                   "x)");
    report_check("span rasterizer reproduces the per-pixel bytes",
                 png_new == png_legacy);

    // Codec ablation at 1M tasks: the pre-PR IDAT (unfiltered scanlines
    // through fixed-Huffman deflate) vs today's (min-SAD filtered rows
    // through per-chunk dynamic Huffman). The enforced bound is 2x: on
    // this synthetic chart even a per-row oracle filter choice plus a
    // zlib-level-9-depth match search only reaches ~2.8x (EXPERIMENTS.md),
    // so 2x is what the fast 64-probe codec can guarantee.
    {
      const auto fbd = render::render_raster(dense, dense_options());
      const auto w = static_cast<std::size_t>(fbd.width());
      const auto h = static_cast<std::size_t>(fbd.height());
      std::vector<std::uint8_t> unfiltered((w * 3 + 1) * h);
      const auto& px = fbd.pixels();
      for (std::size_t y = 0; y < h; ++y) {
        std::uint8_t* row = unfiltered.data() + y * (w * 3 + 1);
        row[0] = 0;  // filter type None on every scanline
        for (std::size_t x = 0; x < w; ++x) {
          row[1 + x * 3] = px[(y * w + x) * 4];
          row[2 + x * 3] = px[(y * w + x) * 4 + 1];
          row[3 + x * 3] = px[(y * w + x) * 4 + 2];
        }
      }
      const auto old_idat = render::zlib_compress(
          unfiltered.data(), unfiltered.size(),
          render::DeflateStrategy::fixed);
      const auto scan = render::filter_scanlines(fbd, 1);
      const auto new_idat = render::zlib_compress(
          scan.data(), scan.size(), render::DeflateStrategy::dynamic);
      report_row("1M-task IDAT, unfiltered+fixed vs filtered+dynamic",
                 std::to_string(old_idat.size() / 1024) + " KiB vs " +
                     std::to_string(new_idat.size() / 1024) + " KiB (" +
                     fmt(static_cast<double>(old_idat.size()) /
                             static_cast<double>(new_idat.size()), 1) +
                     "x)");
      report_check("1M-task PNG >= 2x smaller than the pre-PR codec",
                   old_idat.size() >= 2 * new_idat.size());
    }
    if (cpu.avx2 || cpu.neon) {
      report_check("opaque-fill kernel >= 4x vs per-pixel", fill_x >= 4.0);
      report_check("1M-task cold PNG export >= 2x vs per-pixel raster",
                   cold_legacy / cold_new >= 2.0);
    } else {
      report_row("opaque-fill kernel >= 4x vs per-pixel",
                 "skipped (no AVX2/NEON)");
      report_row("1M-task cold PNG export >= 2x vs per-pixel raster",
                 "skipped (no AVX2/NEON)");
    }
  }

  // Binary snapshots and O(delta) append at 1M tasks: reopening a trace
  // from its .jbin mapping vs re-ingesting the XML, and growing a live
  // session by 10k events vs the pre-PR alternative — re-ingesting the
  // grown trace (parse + validate + index) from scratch.
  {
    model::Schedule copy = frame_schedule(1000000);
    watch.reset();
    const auto full_entry = engine::make_entry(std::move(copy));
    const double rebuild_s = watch.seconds();
    report_row("1M-task validate+index+hash (full rebuild)",
               fmt(rebuild_s, 2) + " s");

    const std::string path = bench_snapshot_path("bench_scale_report.jbin");
    watch.reset();
    io::save_snapshot(full_entry->arena(), full_entry->index, path);
    const double save_s = watch.seconds();
    report_row("1M-task .jbin snapshot save",
               fmt(save_s, 2) + " s (" +
                   std::to_string(std::filesystem::file_size(path) / 1024 /
                                  1024) +
                   " MiB)");

    watch.reset();
    const auto reopened = engine::load_entry(path);
    const double reopen_s = watch.seconds();
    report_row("1M-task reopen from .jbin (mmap + validate)",
               fmt(reopen_s * 1e3, 1) + " ms");

    watch.reset();
    const auto via_xml = engine::parse_entry(million_xml());
    const double xml_s = watch.seconds();
    report_row("1M-task reopen from XML re-ingest",
               fmt(xml_s, 2) + " s (" + fmt(xml_s / reopen_s, 0) +
                   "x slower)");
    report_check("snapshot reopen is content-identical to XML ingest",
                 reopened->id == via_xml->id &&
                     reopened->id == full_entry->id);
    report_check("1M-task mmap reopen >= 20x vs XML re-ingest",
                 xml_s / reopen_s >= 20.0);

    const auto& base_entry = append_base_entry(1000000);
    const auto& events = append_events(1000000);
    (void)base_entry->arena();  // a live session's arena is materialized
    watch.reset();
    const auto grown = engine::append_entry(base_entry, events);
    const double entry_append_s = watch.seconds();
    report_row("10k-event append_entry (copy-on-append immutable entry)",
               fmt(entry_append_s * 1e3, 1) + " ms (" +
                   fmt(rebuild_s / entry_append_s, 0) +
                   "x vs in-memory rebuild)");
    report_check("appended entry is content-identical to the full build",
                 grown->id == full_entry->id);

    // Steady-state O(delta) path: a live arena that has appended before
    // (column slack, seeded id table), as in a --follow session
    // mid-trace. "Full rebuild" is what a pre-snapshot session had to do
    // to see those 10k events: re-ingest the grown trace end to end
    // (parse + validate + index), timed as xml_s above.
    {
      model::ScheduleArena live(million_schedule(980000, 4096));
      live.validate();
      live.append(
          engine::events_from_tasks(prefix_schedule(1000000), 980000));
      watch.reset();
      live.append(events);
      const model::TaskIndex grown_index(base_entry->index, live, 990000);
      const double append_s = watch.seconds();
      report_row("10k-event in-place append + index extension (live arena)",
                 fmt(append_s * 1e3, 2) + " ms (" +
                     fmt(xml_s / append_s, 0) + "x vs re-ingest, " +
                     fmt(rebuild_s / append_s, 0) + "x vs in-memory rebuild)");
      report_check("in-place append matches the full build's content hash",
                   grown_index.content_hash() == full_entry->content_hash);
      report_check("10k-event append >= 50x vs full rebuild",
                   xml_s / append_s >= 50.0);
    }
    std::filesystem::remove(path);
  }

  // Dependency-edge rendering at 1M tasks / 2M edges (DESIGN.md §4j):
  // a cold windowed frame through the columnar EdgeIndex vs the
  // brute-force scan of every dependency, then the warm tile-cache pan
  // with the edge overlay on vs bar-only. Targets: cold edge frame
  // >= 5x vs brute force; warm pan with edges <= 2x bar-only. Both are
  // algorithmic bounds (O(log n + visible) vs O(m)), so neither is
  // gated on core count.
  {
    watch.reset();
    const auto& es = edge_schedule();
    report_row("build 1M-task/2M-edge schedule",
               fmt(watch.seconds(), 2) + " s (" +
                   std::to_string(es.dependencies().size()) + " edges)");
    watch.reset();
    const auto& eindex = edge_index();
    report_row("2M-edge EdgeIndex build (" + std::to_string(kBenchThreads) +
                   " threads)",
               fmt(watch.seconds(), 2) + " s (" +
                   std::to_string(eindex.heap_bytes() / 1024 / 1024) +
                   " MiB)");

    const auto setup = edge_frame_setup();
    auto style = frame_style();
    style.edges = render::EdgeMode::kAuto;
    const auto time_cold = [&](const model::EdgeIndex* ei) {
      render::LayoutHints hints;
      hints.index = setup.index;
      hints.edge_index = ei;
      hints.assume_validated = true;
      const int kFrames = 5;
      util::Stopwatch w;
      for (int i = 0; i < kFrames; ++i) {
        auto st = style;
        const double t0 = setup.begin + i * 97 * setup.step;
        st.time_window = model::TimeRange{t0, t0 + setup.len};
        const auto lay = render::layout_gantt(*setup.schedule,
                                              bench_colormap(), st, 1, hints);
        if (lay.edge_stats.considered == 0) throw Error("no visible edges");
      }
      return w.seconds() * 1000 / kFrames;
    };
    const double cold_index_ms = time_cold(&eindex);
    const double cold_brute_ms = time_cold(nullptr);
    report_row("cold edge frame, EdgeIndex window query",
               fmt(cold_index_ms, 2) + " ms");
    report_row("cold edge frame, brute-force dependency scan",
               fmt(cold_brute_ms, 2) + " ms (" +
                   fmt(cold_brute_ms / cold_index_ms, 1) + "x slower)");
    report_check("cold 1M-task edge frame >= 5x vs brute-force scan",
                 cold_brute_ms / cold_index_ms >= 5.0);

    const auto pan = [&](render::EdgeMode mode) {
      render::TileCache cache;
      (void)cache.render_frame(edge_frame_request(setup, setup.begin, mode));
      const int kFrames = 30;
      util::Stopwatch w;
      for (int i = 1; i <= kFrames; ++i) {
        const double t0 = setup.begin + i * 8 * setup.step;
        const auto fb = cache.render_frame(edge_frame_request(setup, t0, mode));
        if (fb.width() != style.width) throw Error("bad frame");
      }
      return w.seconds() * 1000 / kFrames;
    };
    const double pan_plain_ms = pan(render::EdgeMode::kOff);
    const double pan_edges_ms = pan(render::EdgeMode::kAuto);
    report_row("1M-task warm pan, bar-only", fmt(pan_plain_ms, 2) + " ms");
    report_row("1M-task warm pan, 2M-edge overlay",
               fmt(pan_edges_ms, 2) + " ms (" +
                   fmt(pan_edges_ms / pan_plain_ms, 2) + "x bar-only)");
    report_check("warm 2M-edge pan <= 2x bar-only",
                 pan_edges_ms <= 2.0 * pan_plain_ms);

    // The exported bytes must not depend on which edge path ran.
    auto options = bench_options(1);
    options.style = style;
    options.style.time_window =
        model::TimeRange{setup.begin + setup.span / 2,
                         setup.begin + setup.span / 2 + setup.len};
    options.task_index = setup.index;
    options.assume_validated = true;
    options.edge_index = &eindex;
    const auto png_index = render::render_to_bytes(es, options, "png");
    options.edge_index = nullptr;
    const auto png_brute = render::render_to_bytes(es, options, "png");
    report_check("edge overlay bytes identical, index vs brute force",
                 png_index == png_brute);
  }

  // `jedule serve` artifact cache on the 250k-task schedule: the first
  // request renders (miss), every identical repeat is served the same
  // immutable byte buffer from the LRU artifact cache (hit).
  {
    engine::RenderService service;
    const auto entry = engine::make_entry(schedule);
    const auto options = bench_options(kBenchThreads);
    watch.reset();
    const auto cold = service.render(entry, options, "png");
    const double cold_s = watch.seconds();
    report_row("250k-task serve render, artifact-cache miss",
               fmt(cold_s, 2) + " s");

    const int kWarm = 100;
    bool identical = true;
    watch.reset();
    for (int i = 0; i < kWarm; ++i) {
      const auto warm = service.render(entry, options, "png");
      identical = identical && warm.cache_hit && *warm.bytes == *cold.bytes;
    }
    const double warm_ms = watch.seconds() * 1000 / kWarm;
    report_row("250k-task serve render, artifact-cache hit",
               fmt(warm_ms, 3) + " ms/req (" +
                   fmt(cold_s * 1000 / warm_ms, 0) + "x)");
    report_check("warm serve renders are byte-identical cache hits",
                 identical);
  }
  report_footer();
}

void BM_Composites(benchmark::State& state) {
  const auto schedule = big_schedule(static_cast<int>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::synthesize_composites(schedule, nullptr, threads));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Composites)
    ->Args({10000, 1})->Args({50000, 1})->Args({200000, 1})
    ->Args({10000, kBenchThreads})->Args({50000, kBenchThreads})
    ->Args({200000, kBenchThreads})
    ->Unit(benchmark::kMillisecond);

void BM_LayoutAndPaint(benchmark::State& state) {
  const auto schedule = big_schedule(static_cast<int>(state.range(0)));
  const auto options = bench_options(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::render_raster(schedule, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LayoutAndPaint)
    ->Args({10000, 1})->Args({50000, 1})->Args({200000, 1})
    ->Args({10000, kBenchThreads})->Args({50000, kBenchThreads})
    ->Args({200000, kBenchThreads})
    ->Unit(benchmark::kMillisecond);

void BM_PngEncode(benchmark::State& state) {
  const auto schedule = big_schedule(50000);
  const auto fb = render::render_raster(schedule, bench_options(1));
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::encode_png(fb, threads));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          fb.width() * fb.height() * 3);
}
BENCHMARK(BM_PngEncode)->Arg(1)->Arg(kBenchThreads)
    ->Unit(benchmark::kMillisecond);

void BM_PngFilter(benchmark::State& state) {
  const auto schedule = big_schedule(50000);
  const auto fb = render::render_raster(schedule, bench_options(1));
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::filter_scanlines(fb, threads));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          fb.width() * fb.height() * 3);
}
BENCHMARK(BM_PngFilter)->Arg(1)->Arg(kBenchThreads)
    ->Unit(benchmark::kMillisecond);

void BM_DeflateDynamic(benchmark::State& state) {
  const auto schedule = big_schedule(50000);
  const auto fb = render::render_raster(schedule, bench_options(1));
  const auto scan = render::filter_scanlines(fb, 1);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::deflate_compress(
        scan.data(), scan.size(), threads,
        render::DeflateStrategy::dynamic));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(scan.size()));
}
BENCHMARK(BM_DeflateDynamic)->Arg(1)->Arg(kBenchThreads)
    ->Unit(benchmark::kMillisecond);

void BM_XmlParse(benchmark::State& state) {
  const auto xml =
      io::write_schedule_xml(big_schedule(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::read_schedule_xml(xml));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_XmlParse)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

// The 1M-task ingest trio recorded in BENCH_scale.json: same document; the
// legacy row runs the reconstructed pre-PR path end to end, the other two
// share today's composite kernel and differ only in the XML -> Schedule path.
void BM_IngestLegacy(benchmark::State& state) {
  const auto& xml = million_xml();
  for (auto _ : state) {
    const auto schedule = legacy::read_schedule(xml);
    benchmark::DoNotOptimize(legacy::composites(schedule));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_IngestLegacy)->Unit(benchmark::kMillisecond);

void BM_IngestDom(benchmark::State& state) {
  const auto& xml = million_xml();
  for (auto _ : state) {
    const auto schedule = io::read_schedule_xml_dom(xml);
    benchmark::DoNotOptimize(model::synthesize_composites(schedule));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_IngestDom)->Unit(benchmark::kMillisecond);

void BM_FrameLegacyFullRelayout(benchmark::State& state) {
  const auto setup = frame_setup(static_cast<int>(state.range(0)));
  auto style = frame_style();
  double t0 = setup.begin;
  for (auto _ : state) {
    t0 = setup.begin + std::fmod(t0 - setup.begin + 8 * setup.step,
                                 setup.span - setup.len);
    style.time_window = model::TimeRange{t0, t0 + setup.len};
    benchmark::DoNotOptimize(legacy_frame(*setup.schedule, style));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FrameLegacyFullRelayout)
    ->Arg(10000)->Arg(200000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_FramePanWarm(benchmark::State& state) {
  const auto setup = frame_setup(static_cast<int>(state.range(0)));
  render::TileCache cache;
  (void)cache.render_frame(frame_request(setup, setup.begin));
  // Pixel-aligned 8-px pans; compute each origin as anchor + k * step so no
  // floating error accumulates and the cache's pixel grid stays reusable.
  std::int64_t k = 0;
  const std::int64_t wrap =
      static_cast<std::int64_t>((setup.span - setup.len) / setup.step);
  for (auto _ : state) {
    k = (k + 8) % std::max<std::int64_t>(wrap, 1);
    const double t0 = setup.begin + static_cast<double>(k) * setup.step;
    benchmark::DoNotOptimize(cache.render_frame(frame_request(setup, t0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  const auto& cs = cache.stats();
  state.counters["tile_hit_rate"] = benchmark::Counter(
      cs.hits + cs.misses
          ? static_cast<double>(cs.hits) /
                static_cast<double>(cs.hits + cs.misses)
          : 0.0);
}
BENCHMARK(BM_FramePanWarm)
    ->Arg(10000)->Arg(200000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_FrameZoomCold(benchmark::State& state) {
  const auto setup = frame_setup(static_cast<int>(state.range(0)));
  render::TileCache cache;
  const double mid = setup.begin + setup.span / 2;
  bool wide = false;
  for (auto _ : state) {
    // Alternating zoom levels: every frame changes the scale, resets the
    // pixel grid and re-rasterizes the visible tiles from the culled layout.
    const double len = wide ? setup.len : setup.len / 2;
    wide = !wide;
    auto req = frame_request(setup, mid);
    req.style.time_window = model::TimeRange{mid, mid + len};
    benchmark::DoNotOptimize(cache.render_frame(req));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FrameZoomCold)
    ->Arg(10000)->Arg(200000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_FrameInspect(benchmark::State& state) {
  const auto setup = frame_setup(static_cast<int>(state.range(0)));
  auto style = frame_style();
  style.time_window =
      model::TimeRange{setup.begin + setup.span / 2,
                       setup.begin + setup.span / 2 + setup.len};
  interactive::Session session(*setup.schedule, bench_colormap(), style);
  (void)session.layout();
  int x = 60;
  for (auto _ : state) {
    x = 60 + (x + 37) % 900;
    benchmark::DoNotOptimize(session.inspect(x, 300));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameInspect)
    ->Arg(10000)->Arg(200000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_IngestPull(benchmark::State& state) {
  const auto& xml = million_xml();
  for (auto _ : state) {
    const auto schedule = io::read_schedule_xml(xml);
    benchmark::DoNotOptimize(model::synthesize_composites(schedule));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_IngestPull)->Unit(benchmark::kMillisecond);

// The chunked parallel reader on the same document; arg = worker threads.
// The 1-thread row is the serial baseline the speedup target measures
// against, and every row parses to the identical schedule.
void BM_IngestParallel(benchmark::State& state) {
  const auto& xml = million_xml();
  io::IngestOptions opt;
  opt.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    io::TextSource src{std::string_view(xml), nullptr};
    benchmark::DoNotOptimize(io::read_schedule_xml_chunked(src, opt, nullptr));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_IngestParallel)
    ->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();

// Raster rows recorded in BENCH_scale.json: arg 0 runs the reconstructed
// pre-PR per-pixel path, arg 1 the span/SIMD path (the label names the
// dispatched kernel variant).
void BM_RasterOpaqueFill(benchmark::State& state) {
  render::Framebuffer fb(1280, 720);
  const color::Color c{40, 90, 160, 255};
  const bool kernel = state.range(0) != 0;
  for (auto _ : state) {
    if (kernel) {
      fb.fill_rect(0, 0, 1280, 720, c);
    } else {
      legacy::fill_rect(fb, 0, 0, 1280, 720, c);
    }
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1280 * 720 * 4);
  state.SetLabel(kernel ? render::kernels::active().name : "per-pixel");
}
BENCHMARK(BM_RasterOpaqueFill)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_RasterAlphaBlend(benchmark::State& state) {
  render::Framebuffer fb(1280, 720);
  const color::Color c{200, 60, 40, 128};
  const bool kernel = state.range(0) != 0;
  for (auto _ : state) {
    if (kernel) {
      fb.fill_rect(0, 0, 1280, 720, c);
    } else {
      legacy::fill_rect(fb, 0, 0, 1280, 720, c);
    }
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1280 * 720 * 4);
  state.SetLabel(kernel ? render::kernels::active().name : "per-pixel");
}
BENCHMARK(BM_RasterAlphaBlend)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_RasterText(benchmark::State& state) {
  render::Framebuffer fb(400, 600);
  const std::string label = "task t63.999999 (computation)";
  const bool cached = state.range(0) != 0;
  for (auto _ : state) {
    for (int i = 0; i < 60; ++i) {
      if (cached) {
        render::draw_text(fb, 8, 8 + i * 9, label, color::kBlack, 1);
      } else {
        legacy::draw_text(fb, 8, 8 + i * 9, label, color::kBlack, 1);
      }
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 60);
  state.SetLabel(cached ? "cached spans" : "per-cell");
}
BENCHMARK(BM_RasterText)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_RasterOverdraw(benchmark::State& state) {
  render::Framebuffer fb(1280, 720);
  const bool span = state.range(0) != 0;
  for (auto _ : state) {
    if (span) {
      render::SpanBatch batch(fb);
      for (int i = 0; i < 256; ++i) {
        batch.add_rect((i * 37) % 800, (i * 23) % 600, 400, 100,
                       color::Color{static_cast<std::uint8_t>(50 + i % 180),
                                    80, 20, 255});
      }
      batch.flush();
    } else {
      for (int i = 0; i < 256; ++i) {
        legacy::fill_rect(fb, (i * 37) % 800, (i * 23) % 600, 400, 100,
                          color::Color{static_cast<std::uint8_t>(50 + i % 180),
                                       80, 20, 255});
      }
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 256);
  state.SetLabel(span ? "span batch" : "sequential");
}
BENCHMARK(BM_RasterOverdraw)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ExportPngCold(benchmark::State& state) {
  const auto& schedule = dense_schedule();
  const auto options = dense_options();
  const bool span = state.range(0) != 0;
  for (auto _ : state) {
    if (span) {
      benchmark::DoNotOptimize(
          render::render_to_bytes(schedule, options, "png"));
    } else {
      benchmark::DoNotOptimize(legacy::export_png(schedule, options));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(schedule.tasks().size()));
  state.SetLabel(span ? "span raster" : "per-pixel raster");
}
BENCHMARK(BM_ExportPngCold)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// `jedule serve` request cost at scale: cold = a fresh RenderService per
// request (artifact-cache miss, the full layout + raster + encode), warm =
// repeats against a pre-warmed service (hit, a lookup plus a buffer
// handout). The gap between the two rows is what the artifact cache buys
// a busy server.
const engine::EntryPtr& serve_entry(int tasks) {
  static std::map<int, engine::EntryPtr> cache;
  auto it = cache.find(tasks);
  if (it == cache.end()) {
    it = cache.emplace(tasks, engine::make_entry(big_schedule(tasks))).first;
  }
  return it->second;
}

void BM_ServeRenderCold(benchmark::State& state) {
  const auto& entry = serve_entry(static_cast<int>(state.range(0)));
  const auto options = bench_options(kBenchThreads);
  for (auto _ : state) {
    engine::RenderService service;
    benchmark::DoNotOptimize(service.render(entry, options, "png"));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel("artifact-cache miss");
}
BENCHMARK(BM_ServeRenderCold)
    ->Arg(200000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_ServeRenderWarm(benchmark::State& state) {
  const auto& entry = serve_entry(static_cast<int>(state.range(0)));
  const auto options = bench_options(kBenchThreads);
  engine::RenderService service;
  (void)service.render(entry, options, "png");  // prime the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.render(entry, options, "png"));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel("artifact-cache hit");
}
BENCHMARK(BM_ServeRenderWarm)
    ->Arg(200000)->Arg(1000000)->Unit(benchmark::kMillisecond);

// Snapshot persistence and the O(delta) append, the rows behind the
// DESIGN.md §4h acceptance numbers: save serializes the columns with their
// CRCs, load is an mmap plus a columnar validation pass (no per-task
// objects), append grows a content-addressed entry by kAppendDelta events.
void BM_SnapshotSave(benchmark::State& state) {
  const auto& entry = arena_entry(static_cast<int>(state.range(0)));
  const std::string path = bench_snapshot_path("bench_scale_save.jbin");
  for (auto _ : state) {
    io::save_snapshot(entry->arena(), entry->index, path);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(std::filesystem::file_size(path)));
  std::filesystem::remove(path);
}
BENCHMARK(BM_SnapshotSave)
    ->Arg(200000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_SnapshotLoad(benchmark::State& state) {
  const auto& entry = arena_entry(static_cast<int>(state.range(0)));
  const std::string path = bench_snapshot_path("bench_scale_load.jbin");
  io::save_snapshot(entry->arena(), entry->index, path);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::load_entry(path));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(std::filesystem::file_size(path)));
  std::filesystem::remove(path);
}
BENCHMARK(BM_SnapshotLoad)
    ->Arg(200000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_AppendDelta(benchmark::State& state) {
  const auto& base = append_base_entry(static_cast<int>(state.range(0)));
  const auto& events = append_events(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::append_entry(base, events));
  }
  state.SetItemsProcessed(state.iterations() * kAppendDelta);
}
BENCHMARK(BM_AppendDelta)
    ->Arg(200000)->Arg(1000000)->Unit(benchmark::kMillisecond);

// Dependency-edge rows recorded in BENCH_scale.json (DESIGN.md §4j), all
// on the 1M-task/2M-edge schedule. Warm: tile-cache pans with the edge
// overlay on vs bar-only (arg 1/0). Cold: a windowed layout answering
// the edge pass from the EdgeIndex vs the brute-force scan of all 2M
// dependencies (arg 1/0).
void BM_EdgeFrameWarm(benchmark::State& state) {
  const bool edges = state.range(0) != 0;
  const auto mode = edges ? render::EdgeMode::kAuto : render::EdgeMode::kOff;
  const auto setup = edge_frame_setup();
  render::TileCache cache;
  (void)cache.render_frame(edge_frame_request(setup, setup.begin, mode));
  std::int64_t k = 0;
  const std::int64_t wrap =
      static_cast<std::int64_t>((setup.span - setup.len) / setup.step);
  for (auto _ : state) {
    k = (k + 8) % std::max<std::int64_t>(wrap, 1);
    const double t0 = setup.begin + static_cast<double>(k) * setup.step;
    benchmark::DoNotOptimize(
        cache.render_frame(edge_frame_request(setup, t0, mode)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEdgeCount));
  state.SetLabel(edges ? "2M-edge overlay" : "bar-only");
}
BENCHMARK(BM_EdgeFrameWarm)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_EdgeFrameCold(benchmark::State& state) {
  const bool use_index = state.range(0) != 0;
  const auto setup = edge_frame_setup();
  render::LayoutHints hints;
  hints.index = setup.index;
  hints.edge_index = use_index ? &edge_index() : nullptr;
  hints.assume_validated = true;
  auto style = frame_style();
  style.edges = render::EdgeMode::kAuto;
  std::int64_t k = 0;
  const std::int64_t wrap =
      static_cast<std::int64_t>((setup.span - setup.len) / setup.step);
  for (auto _ : state) {
    k = (k + 97) % std::max<std::int64_t>(wrap, 1);
    const double t0 = setup.begin + static_cast<double>(k) * setup.step;
    style.time_window = model::TimeRange{t0, t0 + setup.len};
    benchmark::DoNotOptimize(render::layout_gantt(
        *setup.schedule, bench_colormap(), style, 1, hints));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEdgeCount));
  state.SetLabel(use_index ? "EdgeIndex query" : "brute-force scan");
}
BENCHMARK(BM_EdgeFrameCold)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_EdgeHeatAccumulate(benchmark::State& state) {
  // One frame's worth of heat-lane columns: 930 pixel columns x 64 lanes.
  std::vector<float> acc(930 * 64, 0.0f);
  const auto& kernels = render::kernels::active();
  for (auto _ : state) {
    kernels.heat_accum(acc.data(), acc.size(), 1.0f);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(acc.size() * sizeof(float)));
  state.SetLabel(render::kernels::active().name);
}
BENCHMARK(BM_EdgeHeatAccumulate)->Unit(benchmark::kMillisecond);

}  // namespace

JEDULE_BENCH_MAIN(report)
