// Scale bench — the paper's Sec. VI claim that "Jedule can handle big data
// sets required to analyze fine-grained task parallel applications ... more
// than 200,000 individual tasks": composite synthesis, layout, raster
// painting, PNG encoding and XML parsing at growing task counts, each with
// a serial vs multi-threaded comparison (outputs must be byte-identical).

#include "bench_report.hpp"
#include "jedule/io/jedule_xml.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/model/composite.hpp"
#include "jedule/render/export.hpp"
#include "jedule/render/exporter.hpp"
#include "jedule/render/deflate.hpp"
#include "jedule/render/png.hpp"
#include "jedule/util/parallel.hpp"
#include "jedule/util/rng.hpp"
#include "jedule/util/stopwatch.hpp"

namespace {

using namespace jedule;

constexpr int kBenchThreads = 8;

model::Schedule big_schedule(int tasks) {
  // Fine-grained task-pool style trace: 64 "threads", alternating exec and
  // wait intervals, no overlaps (like Figs. 11-12 at scale).
  util::Rng rng(1);
  model::ScheduleBuilder builder;
  const int threads = 64;
  builder.cluster(0, "smp", threads);
  std::vector<double> cursor(threads, 0.0);
  for (int i = 0; i < tasks; ++i) {
    const int t = i % threads;
    const double len = rng.uniform(0.0001, 0.01);
    builder
        .task("t" + std::to_string(t) + "." + std::to_string(i),
              i % 2 ? "computation" : "waiting", cursor[static_cast<std::size_t>(t)],
              cursor[static_cast<std::size_t>(t)] + len)
        .on(0, t, 1);
    cursor[static_cast<std::size_t>(t)] += len;
  }
  return builder.build();
}

bool same_composites(const std::vector<model::Composite>& a,
                     const std::vector<model::Composite>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].task.id() != b[i].task.id() ||
        a[i].member_ids != b[i].member_ids ||
        a[i].member_types != b[i].member_types) {
      return false;
    }
  }
  return true;
}

render::RenderOptions bench_options(int threads) {
  render::RenderOptions options;
  options.style.width = 1280;
  options.style.height = 720;
  options.style.show_labels = false;
  options.threads = threads;
  return options;
}

void report() {
  using namespace jedule::bench;
  report_header("scale", "'Jedule can handle big data sets ... more than "
                         "200,000 individual tasks' (Sec. VI)");
  const int kTasks = 250000;
  util::Stopwatch watch;
  const auto schedule = big_schedule(kTasks);
  report_row("build 250k-task schedule", fmt(watch.seconds(), 2) + " s");

  watch.reset();
  const auto composites = model::synthesize_composites(schedule);
  const double composite_serial = watch.seconds();
  report_row("composite sweep (1 thread)",
             fmt(composite_serial, 2) + " s (" +
                 std::to_string(composites.size()) + " overlaps)");
  watch.reset();
  const auto composites_mt =
      model::synthesize_composites(schedule, nullptr, kBenchThreads);
  const double composite_parallel = watch.seconds();
  report_row("composite sweep (" + std::to_string(kBenchThreads) + " threads)",
             fmt(composite_parallel, 2) + " s (" +
                 fmt(composite_serial / composite_parallel, 1) + "x)");
  report_check("parallel composite sweep matches serial",
               same_composites(composites_mt, composites));

  watch.reset();
  const auto fb = render::render_raster(schedule, bench_options(1));
  const double paint_serial = watch.seconds();
  report_row("layout + raster paint (1 thread)",
             fmt(paint_serial, 2) + " s");
  watch.reset();
  const auto fb_mt = render::render_raster(schedule,
                                           bench_options(kBenchThreads));
  const double paint_parallel = watch.seconds();
  report_row("layout + raster paint (" + std::to_string(kBenchThreads) +
                 " threads)",
             fmt(paint_parallel, 2) + " s (" +
                 fmt(paint_serial / paint_parallel, 1) + "x)");
  report_check("banded raster paint matches serial",
               fb_mt.pixels() == fb.pixels());

  watch.reset();
  const auto png = render::encode_png(fb);
  const double png_serial = watch.seconds();
  report_row("PNG encode (1 thread)",
             fmt(png_serial, 2) + " s (" + std::to_string(png.size()) +
                 " bytes)");
  watch.reset();
  const auto png_mt = render::encode_png(fb_mt, kBenchThreads);
  const double png_parallel = watch.seconds();
  report_row("PNG encode (" + std::to_string(kBenchThreads) + " threads)",
             fmt(png_parallel, 2) + " s (" +
                 fmt(png_serial / png_parallel, 1) + "x)");
  report_check("parallel PNG encode is byte-identical", png_mt == png);

  // End-to-end export: the acceptance target for the parallel pipeline is
  // >= 2x on the 250k-task PNG export with 8 threads.
  watch.reset();
  const auto bytes_serial =
      render::render_to_bytes(schedule, bench_options(1), "png");
  const double e2e_serial = watch.seconds();
  report_row("end-to-end PNG export (1 thread)", fmt(e2e_serial, 2) + " s");
  watch.reset();
  const auto bytes_parallel =
      render::render_to_bytes(schedule, bench_options(kBenchThreads), "png");
  const double e2e_parallel = watch.seconds();
  report_row("end-to-end PNG export (" + std::to_string(kBenchThreads) +
                 " threads)",
             fmt(e2e_parallel, 2) + " s (" +
                 fmt(e2e_serial / e2e_parallel, 1) + "x)");
  report_check("parallel export is byte-identical",
               bytes_parallel == bytes_serial);
  if (util::hardware_threads() >= 2) {
    report_check("250k-task PNG export >= 2x with " +
                     std::to_string(kBenchThreads) + " threads",
                 e2e_serial / e2e_parallel >= 2.0);
  } else {
    report_row("250k-task PNG export >= 2x with " +
                   std::to_string(kBenchThreads) + " threads",
               "skipped (single-core host)");
  }

  // Ablation: the in-tree fixed-Huffman deflate vs stored blocks — the
  // LZ77 stage is what keeps chart PNGs small.
  {
    const auto& px = fb.pixels();
    const auto stored = render::zlib_compress(px.data(), px.size(), false);
    const auto packed = render::zlib_compress(px.data(), px.size(), true);
    report_row("zlib on raw pixels: stored vs fixed-Huffman",
               std::to_string(stored.size() / 1024) + " KiB vs " +
                   std::to_string(packed.size() / 1024) + " KiB (" +
                   fmt(static_cast<double>(stored.size()) /
                           static_cast<double>(packed.size()), 1) +
                   "x)");
  }

  watch.reset();
  const auto xml = io::write_schedule_xml(schedule);
  report_row("XML write",
             fmt(watch.seconds(), 2) + " s (" +
                 std::to_string(xml.size() / 1024 / 1024) + " MiB)");
  watch.reset();
  const auto back = io::read_schedule_xml(xml);
  report_row("XML parse + validate", fmt(watch.seconds(), 2) + " s");
  report_check("250k tasks round-trip end to end",
               back.tasks().size() == static_cast<std::size_t>(kTasks));
  report_footer();
}

void BM_Composites(benchmark::State& state) {
  const auto schedule = big_schedule(static_cast<int>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::synthesize_composites(schedule, nullptr, threads));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Composites)
    ->Args({10000, 1})->Args({50000, 1})->Args({200000, 1})
    ->Args({10000, kBenchThreads})->Args({50000, kBenchThreads})
    ->Args({200000, kBenchThreads})
    ->Unit(benchmark::kMillisecond);

void BM_LayoutAndPaint(benchmark::State& state) {
  const auto schedule = big_schedule(static_cast<int>(state.range(0)));
  const auto options = bench_options(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::render_raster(schedule, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LayoutAndPaint)
    ->Args({10000, 1})->Args({50000, 1})->Args({200000, 1})
    ->Args({10000, kBenchThreads})->Args({50000, kBenchThreads})
    ->Args({200000, kBenchThreads})
    ->Unit(benchmark::kMillisecond);

void BM_PngEncode(benchmark::State& state) {
  const auto schedule = big_schedule(50000);
  const auto fb = render::render_raster(schedule, bench_options(1));
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::encode_png(fb, threads));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          fb.width() * fb.height() * 3);
}
BENCHMARK(BM_PngEncode)->Arg(1)->Arg(kBenchThreads)
    ->Unit(benchmark::kMillisecond);

void BM_XmlParse(benchmark::State& state) {
  const auto xml =
      io::write_schedule_xml(big_schedule(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::read_schedule_xml(xml));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_XmlParse)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

}  // namespace

JEDULE_BENCH_MAIN(report)
