// Fig. 9 — "Jedule output of the schedule of a Montage instance on the
// heterogeneous platform with a greater latency on the backbone link": the
// odd placement disappears, fast clusters are used first, and — the
// paper's key point — the makespan alone would not have revealed the
// difference (140.9 s in both of the paper's runs).

#include "bench_report.hpp"
#include "jedule/dag/montage.hpp"
#include "jedule/sched/heft.hpp"

namespace {

using namespace jedule;

void report() {
  using namespace jedule::bench;
  report_header("Fig. 9",
                "realistic backbone latency removes the anomaly; makespans "
                "stay (almost) equal, so the metric alone misses the issue");
  const auto montage = dag::montage_case_study();
  const auto flat =
      sched::schedule_heft(montage, platform::heterogeneous_case_study(0.0));
  const auto platform = platform::heterogeneous_case_study(5e-2);
  const auto real = sched::schedule_heft(montage, platform);

  report_row("makespan (flat description, Fig. 8)",
             fmt(flat.makespan, 1) + " s");
  report_row("makespan (realistic backbone, Fig. 9)",
             fmt(real.makespan, 1) + " s");
  report_row("free rides flat -> realistic",
             std::to_string(flat.free_ride_nodes.size()) + " -> " +
                 std::to_string(real.free_ride_nodes.size()));
  report_check("anomaly gone under the realistic description",
               real.free_ride_nodes.empty());
  report_check("makespans within 2% (paper: identical 140.9 s)",
               std::abs(flat.makespan - real.makespan) <
                   0.02 * real.makespan);

  // "The two fast clusters (processors 0-1 and 6-7) are chosen first."
  double earliest_fast = 1e300;
  double earliest_slow = 1e300;
  for (int v = 0; v < montage.node_count(); ++v) {
    const double s = real.start[static_cast<std::size_t>(v)];
    if (platform.host_speed(real.host[static_cast<std::size_t>(v)]) > 2.0) {
      earliest_fast = std::min(earliest_fast, s);
    } else {
      earliest_slow = std::min(earliest_slow, s);
    }
  }
  report_check("fast clusters start working first",
               earliest_fast <= earliest_slow);
  report_footer();
}

void BM_HeftMontageBackbone(benchmark::State& state) {
  const auto montage = dag::montage_case_study();
  const auto platform = platform::heterogeneous_case_study(5e-2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::schedule_heft(montage, platform));
  }
}
BENCHMARK(BM_HeftMontageBackbone);

void BM_HeftInsertionVsEndOfQueue(benchmark::State& state) {
  // Ablation: the insertion-based slot search of the original HEFT paper
  // against plain end-of-queue placement.
  const auto montage = dag::montage_case_study();
  const auto platform = platform::heterogeneous_case_study(5e-2);
  sched::HeftOptions options;
  options.use_insertion = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::schedule_heft(montage, platform, options));
  }
}
BENCHMARK(BM_HeftInsertionVsEndOfQueue)->Arg(0)->Arg(1);

}  // namespace

JEDULE_BENCH_MAIN(report)
