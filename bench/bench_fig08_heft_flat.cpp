// Fig. 8 — "Jedule output of the schedule of a Montage instance on the
// heterogeneous platform described by Figure 7": the platform description
// prices inter-cluster routes like intra-cluster ones, and HEFT takes a
// "strange scheduling decision" — a task rides across the backbone although
// a data-local host finished it at exactly the same time. Detected as
// free-ride placements (see sched::HeftResult).

#include "bench_report.hpp"
#include "jedule/dag/montage.hpp"
#include "jedule/sched/heft.hpp"

namespace {

using namespace jedule;

void report() {
  using namespace jedule::bench;
  report_header("Fig. 8",
                "buggy flat-latency description: HEFT's decisions are "
                "EFT-correct but a task moves off-cluster 'for free'");
  const auto montage = dag::montage_case_study();
  const auto platform = platform::heterogeneous_case_study(0.0);
  const auto result = sched::schedule_heft(montage, platform);
  report_row("makespan", fmt(result.makespan, 1) + " s");
  report_row("free-ride placements",
             std::to_string(result.free_ride_nodes.size()));
  for (int v : result.free_ride_nodes) {
    report_row("  anomalous placement",
               montage.node(v).name + " -> processor " +
                   std::to_string(result.host[static_cast<std::size_t>(v)]) +
                   " (cluster " +
                   std::to_string(platform.cluster_of(
                       result.host[static_cast<std::size_t>(v)])) +
                   ")");
  }
  report_check(
      "the anomaly is visible: at least one free ride across the backbone",
      !result.free_ride_nodes.empty());
  report_footer();
}

void BM_HeftMontageFlat(benchmark::State& state) {
  const auto montage = dag::montage_case_study();
  const auto platform = platform::heterogeneous_case_study(0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::schedule_heft(montage, platform));
  }
}
BENCHMARK(BM_HeftMontageFlat);

void BM_HeftLargerInstances(benchmark::State& state) {
  const auto montage = dag::montage_dag(static_cast<int>(state.range(0)));
  const auto platform = platform::heterogeneous_case_study(0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::schedule_heft(montage, platform));
  }
  state.SetItemsProcessed(state.iterations() * montage.node_count());
}
BENCHMARK(BM_HeftLargerInstances)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

JEDULE_BENCH_MAIN(report)
