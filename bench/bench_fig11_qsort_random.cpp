// Fig. 11 — "Quicksort with random 10,000,000 integers" (scaled down by
// default to keep the bench fast; the shape is size-independent): limited
// initial parallelism delays the ramp-up, and short low-utilization phases
// appear during the run.

#include "bench_report.hpp"
#include "jedule/model/stats.hpp"
#include "jedule/taskpool/log_schedule.hpp"
#include "jedule/taskpool/quicksort.hpp"

namespace {

using namespace jedule;
using taskpool::QuicksortOptions;
using taskpool::TaskPool;

constexpr int kThreads = 8;
constexpr std::size_t kElements = 2'000'000;

void report() {
  using namespace jedule::bench;
  report_header("Fig. 11", "parallel Quicksort on random input: ramp-up "
                           "phase, then high but imperfect utilization");
  TaskPool::Options pool;
  pool.threads = kThreads;
  QuicksortOptions qs;
  qs.elements = kElements;
  qs.input = QuicksortOptions::Input::kRandom;
  const auto run = run_parallel_quicksort(pool, qs);
  report_row("elements / threads",
             std::to_string(kElements) + " / " + std::to_string(kThreads));
  report_row("tasks executed", std::to_string(run.tasks));
  report_row("wallclock", fmt(run.log.wallclock, 3) + " s");
  report_check("output is sorted", run.sorted);

  const auto schedule = taskpool::log_to_schedule(run.log);
  const auto stats = model::compute_stats(schedule, {"computation"});
  const double solo =
      model::fraction_of_time_with_busy(schedule, 1, {"computation"});
  report_row("compute utilization", fmt(stats.utilization * 100, 1) + "%");
  report_row("fraction of time with exactly 1 busy thread", fmt(solo, 3));
  report_check("ramp-up visible but short (solo fraction < 0.3)",
               solo < 0.3);
  report_check("a real parallel phase exists (utilization > 40%)",
               stats.utilization > 0.4);
  report_footer();
}

void BM_QuicksortRandom(benchmark::State& state) {
  TaskPool::Options pool;
  pool.threads = static_cast<int>(state.range(0));
  QuicksortOptions qs;
  qs.elements = 1'000'000;
  qs.input = QuicksortOptions::Input::kRandom;
  for (auto _ : state) {
    const auto run = run_parallel_quicksort(pool, qs);
    benchmark::DoNotOptimize(run.sorted);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(qs.elements));
}
BENCHMARK(BM_QuicksortRandom)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_LogToSchedule(benchmark::State& state) {
  TaskPool::Options pool;
  pool.threads = 8;
  QuicksortOptions qs;
  qs.elements = 500'000;
  const auto run = run_parallel_quicksort(pool, qs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(taskpool::log_to_schedule(run.log));
  }
}
BENCHMARK(BM_LogToSchedule);

}  // namespace

JEDULE_BENCH_MAIN(report)
