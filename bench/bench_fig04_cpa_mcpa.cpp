// Fig. 4 — "Jedule output for schedules produced by CPA (left) and MCPA
// (right). MCPA entails a load imbalance problem for this case." The DAG
// has a machine-wide precedence level mixing cheap and expensive tasks;
// MCPA refuses to grow the expensive allocations, leaving large idle holes,
// while CPA exploits the cluster. MCPA2 picks the CPA schedule.

#include "bench_report.hpp"
#include "jedule/dag/generators.hpp"
#include "jedule/model/stats.hpp"
#include "jedule/sched/mtask.hpp"
#include "jedule/util/rng.hpp"

namespace {

using namespace jedule;

constexpr int kProcs = 16;

void report() {
  using namespace jedule::bench;
  report_header("Fig. 4",
                "CPA exploits the cluster; MCPA leaves large idle holes on "
                "this DAG; MCPA2 generates the same schedule as CPA");
  const auto dag = dag::mcpa_pathological_dag(kProcs);
  const auto platform = platform::homogeneous_cluster(kProcs);

  double cpa_makespan = 0;
  double mcpa_makespan = 0;
  double mcpa2_makespan = 0;
  double cpa_util = 0;
  double mcpa_util = 0;
  std::string mcpa2_pick;
  for (const auto algo : {sched::MTaskAlgorithm::kCpa,
                          sched::MTaskAlgorithm::kMcpa,
                          sched::MTaskAlgorithm::kMcpa2}) {
    const auto result = sched::schedule_mtask(dag, platform, algo);
    const auto stats = model::compute_stats(
        sched::mtask_to_schedule(dag, platform, result));
    report_row(result.algorithm + " makespan / utilization / idle",
               fmt(result.makespan) + " / " + fmt(stats.utilization * 100, 1) +
                   "% / " + fmt(stats.idle_time, 1));
    switch (algo) {
      case sched::MTaskAlgorithm::kCpa:
        cpa_makespan = result.makespan;
        cpa_util = stats.utilization;
        break;
      case sched::MTaskAlgorithm::kMcpa:
        mcpa_makespan = result.makespan;
        mcpa_util = stats.utilization;
        break;
      case sched::MTaskAlgorithm::kMcpa2:
        mcpa2_makespan = result.makespan;
        mcpa2_pick = result.algorithm;
        break;
    }
  }
  report_check("MCPA shows the load-imbalance holes (utilization far below "
               "CPA's)",
               mcpa_util < cpa_util / 2);
  report_check("CPA's makespan is at least 2x shorter here",
               cpa_makespan * 2 < mcpa_makespan);
  report_check("MCPA2 generates the same schedule as CPA (paper's outcome)",
               mcpa2_pick == "MCPA2/CPA" && mcpa2_makespan == cpa_makespan);

  // Ablation vs the degenerate strategies (Sec. III.A: mixed-parallel
  // algorithms beat pure task- and pure data-parallelism). Measured on a
  // wide random DAG where both extremes lose.
  {
    util::Rng rng(4);
    dag::LayeredDagOptions o;
    o.levels = 4;
    o.min_width = 6;
    o.max_width = 10;
    o.serial_fraction = 0.08;
    const auto wide = layered_random(o, rng);
    const auto mixed =
        sched::schedule_mtask(wide, platform, sched::MTaskAlgorithm::kMcpa2);
    const auto task_only = sched::schedule_baseline(
        wide, platform, sched::BaselineKind::kTaskParallel);
    const auto data_only = sched::schedule_baseline(
        wide, platform, sched::BaselineKind::kDataParallel);
    report_row("mixed vs task-only vs data-only makespan",
               fmt(mixed.makespan, 1) + " / " + fmt(task_only.makespan, 1) +
                   " / " + fmt(data_only.makespan, 1));
    report_check("mixed-parallel beats both degenerate strategies",
                 mixed.makespan < task_only.makespan &&
                     mixed.makespan < data_only.makespan);
  }
  report_footer();
}

void BM_ScheduleCpaPathological(benchmark::State& state) {
  const auto dag = dag::mcpa_pathological_dag(kProcs);
  const auto platform = platform::homogeneous_cluster(kProcs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::schedule_mtask(dag, platform, sched::MTaskAlgorithm::kCpa));
  }
}
BENCHMARK(BM_ScheduleCpaPathological);

void BM_ScheduleMcpaPathological(benchmark::State& state) {
  const auto dag = dag::mcpa_pathological_dag(kProcs);
  const auto platform = platform::homogeneous_cluster(kProcs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::schedule_mtask(dag, platform, sched::MTaskAlgorithm::kMcpa));
  }
}
BENCHMARK(BM_ScheduleMcpaPathological);

void BM_ScheduleRandomDag(benchmark::State& state) {
  // The paper's evaluation sweeps "several thousand experiments with
  // different types of DAGs"; this measures one scheduling run over a
  // random layered DAG of the given depth.
  util::Rng rng(13);
  dag::LayeredDagOptions o;
  o.levels = static_cast<int>(state.range(0));
  const auto dag = layered_random(o, rng);
  const auto platform = platform::homogeneous_cluster(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::schedule_mtask(dag, platform, sched::MTaskAlgorithm::kMcpa2));
  }
}
BENCHMARK(BM_ScheduleRandomDag)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

JEDULE_BENCH_MAIN(report)
