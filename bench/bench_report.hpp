#pragma once

// Shared reporting helper for the figure-reproduction benches. Every bench
// binary first prints an experiment report — the qualitative paper-vs-
// measured rows collected in EXPERIMENTS.md — and then runs its
// google-benchmark timings.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>
#include <string>

namespace jedule::bench {

inline void report_header(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("EXPERIMENT %s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("--------------------------------------------------------------\n");
}

inline void report_row(const std::string& name, const std::string& value) {
  std::printf("  %-44s %s\n", name.c_str(), value.c_str());
}

inline void report_check(const std::string& name, bool ok) {
  std::printf("  [%s] %s\n", ok ? "OK" : "FAIL", name.c_str());
}

inline void report_footer() {
  std::printf("==============================================================\n\n");
}

inline std::string fmt(double v, int digits = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

/// The build type of the jedule code under test, as NDEBUG sees it.
/// google-benchmark's own `library_build_type` context key describes the
/// *benchmark library* (a distro package may well be a debug build), so
/// every JSON also records `jedule_build_type` for the code actually
/// being timed, and debug builds refuse to run the timing loop at all —
/// previously only the human-readable report() refused, while
/// `--benchmark_out` would still write a plausible-looking JSON.
#ifndef NDEBUG
inline constexpr bool kReleaseTimings = false;
inline constexpr const char* kBuildType = "debug";
#else
inline constexpr bool kReleaseTimings = true;
inline constexpr const char* kBuildType = "release";
#endif

}  // namespace jedule::bench

/// Prints the report, then hands over to google-benchmark. A short default
/// measuring time keeps the full `for b in build/bench/*; do $b; done`
/// sweep quick; pass --benchmark_min_time explicitly to override.
#define JEDULE_BENCH_MAIN(report_fn)                                    \
  int main(int argc, char** argv) {                                     \
    report_fn();                                                        \
    if (!jedule::bench::kReleaseTimings) {                              \
      std::fprintf(stderr,                                              \
                   "bench: refusing to run timings from a debug build " \
                   "(--benchmark_out would record non-comparable "      \
                   "numbers); reconfigure with "                        \
                   "-DCMAKE_BUILD_TYPE=Release\n");                     \
      return 1;                                                         \
    }                                                                   \
    std::vector<char*> args;                                            \
    args.push_back(argv[0]);                                            \
    char default_min_time[] = "--benchmark_min_time=0.05";             \
    args.push_back(default_min_time);                                   \
    for (int i = 1; i < argc; ++i) args.push_back(argv[i]);             \
    int args_count = static_cast<int>(args.size());                     \
    ::benchmark::Initialize(&args_count, args.data());                  \
    if (::benchmark::ReportUnrecognizedArguments(args_count,            \
                                                 args.data())) {        \
      return 1;                                                         \
    }                                                                   \
    ::benchmark::AddCustomContext("jedule_build_type",                  \
                                  jedule::bench::kBuildType);           \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }
