// Fig. 10 — the task-based execution scheme (create_initial_task / get /
// execute / free loop): exercised end-to-end, plus the overhead
// measurements that motivate the section's "low overhead of the task pool
// is an important requirement".

#include <atomic>

#include "bench_report.hpp"
#include "jedule/taskpool/pool.hpp"

namespace {

using namespace jedule;
using taskpool::TaskContext;
using taskpool::TaskPool;

void report() {
  using namespace jedule::bench;
  report_header("Fig. 10", "task-pool execution scheme: initial tasks, "
                           "worker loop, tasks creating tasks");
  TaskPool::Options options;
  options.threads = 4;
  TaskPool pool(options);
  std::atomic<int> executed{0};
  for (int i = 0; i < 8; ++i) {
    pool.create_initial_task([&executed](TaskContext& ctx) {
      ++executed;
      ctx.submit([&executed](TaskContext&) { ++executed; });
    });
  }
  const auto log = pool.run();
  report_row("tasks executed (8 initial + 8 spawned)",
             std::to_string(log.tasks_executed));
  report_row("threads / wallclock",
             std::to_string(log.threads) + " / " + fmt(log.wallclock, 4) +
                 " s");
  report_check("every created task executed exactly once",
               executed.load() == 16 && log.tasks_executed == 16);
  std::size_t logged = 0;
  for (const auto& tl : log.per_thread) logged += tl.exec.size();
  report_check("per-thread logs cover all executions", logged == 16);
  report_footer();
}

void BM_PoolThroughput(benchmark::State& state) {
  // Tasks per second through the pool for empty tasks (pure overhead),
  // central queue vs work stealing.
  const bool stealing = state.range(0) != 0;
  const int tasks = 20000;
  for (auto _ : state) {
    TaskPool::Options options;
    options.threads = 4;
    options.work_stealing = stealing;
    TaskPool pool(options);
    std::atomic<int> sink{0};
    for (int i = 0; i < tasks; ++i) {
      pool.create_initial_task([&sink](TaskContext&) {
        sink.fetch_add(1, std::memory_order_relaxed);
      });
    }
    const auto log = pool.run();
    benchmark::DoNotOptimize(log.tasks_executed);
  }
  state.SetItemsProcessed(state.iterations() * tasks);
  state.SetLabel(stealing ? "work-stealing" : "central-queue");
}
BENCHMARK(BM_PoolThroughput)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_RecursiveFanout(benchmark::State& state) {
  // Tasks spawning tasks (the Quicksort pattern) to the given depth.
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TaskPool::Options options;
    options.threads = 4;
    TaskPool pool(options);
    std::function<void(TaskContext&, int)> fan = [&fan](TaskContext& ctx,
                                                        int d) {
      if (d == 0) return;
      ctx.submit([&fan, d](TaskContext& c) { fan(c, d - 1); });
      ctx.submit([&fan, d](TaskContext& c) { fan(c, d - 1); });
    };
    pool.create_initial_task([&fan, depth](TaskContext& c) { fan(c, depth); });
    const auto log = pool.run();
    benchmark::DoNotOptimize(log.tasks_executed);
  }
  state.SetLabel("2^" + std::to_string(depth + 1) + "-1 tasks");
}
BENCHMARK(BM_RecursiveFanout)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace

JEDULE_BENCH_MAIN(report)
