// Fig. 1 — the Jedule XML task definition: parse the paper's exact example,
// verify every field, and measure parser/writer throughput at schedule
// sizes up to the paper's "hundreds or thousands of schedules" batch use.

#include "bench_report.hpp"
#include "jedule/io/jedule_xml.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/util/rng.hpp"

namespace {

using namespace jedule;

const char kFig1Doc[] = R"(<jedule version="1.0">
  <platform><cluster id="0" name="cluster-0" hosts="8"/></platform>
  <node_infos>
    <node_statistics>
      <node_property name="id" value="1"/>
      <node_property name="type" value="computation"/>
      <node_property name="start_time" value="0.000"/>
      <node_property name="end_time" value="0.310"/>
      <configuration>
        <conf_property name="cluster_id" value="0"/>
        <conf_property name="host_nb" value="8"/>
        <host_lists><hosts start="0" nb="8"/></host_lists>
      </configuration>
    </node_statistics>
  </node_infos>
</jedule>)";

model::Schedule synthetic_schedule(int tasks) {
  util::Rng rng(42);
  model::ScheduleBuilder builder;
  builder.cluster(0, "c0", 64);
  for (int i = 0; i < tasks; ++i) {
    const double start = rng.uniform(0, 1000);
    const int first = static_cast<int>(rng.uniform_int(0, 56));
    builder
        .task(std::to_string(i), i % 3 ? "computation" : "transfer", start,
              start + rng.uniform(0.1, 30))
        .on(0, first, static_cast<int>(rng.uniform_int(1, 8)));
  }
  return builder.build();
}

void report() {
  using namespace jedule::bench;
  report_header("Fig. 1", "XML definition of a task (id 1, computation, "
                          "[0, 0.310], cluster 0, 8 hosts starting at 0)");
  const auto s = io::read_schedule_xml(kFig1Doc);
  const auto& t = s.tasks().at(0);
  report_row("parsed id / type", t.id() + " / " + t.type());
  report_row("parsed interval",
             "[" + fmt(t.start_time()) + ", " + fmt(t.end_time()) + "]");
  report_row("parsed allocation",
             "cluster " + std::to_string(t.configurations()[0].cluster_id) +
                 ", " + std::to_string(t.configurations()[0].host_count()) +
                 " hosts");
  report_check("all Fig. 1 fields round-trip",
               t.id() == "1" && t.type() == "computation" &&
                   t.start_time() == 0.0 && t.end_time() == 0.31 &&
                   t.configurations()[0].host_count() == 8);
  const auto back = io::read_schedule_xml(io::write_schedule_xml(s));
  report_check("write -> parse is lossless", back.tasks().size() == 1);
  report_footer();
}

void BM_ParseScheduleXml(benchmark::State& state) {
  const std::string xml =
      io::write_schedule_xml(synthetic_schedule(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::read_schedule_xml(xml));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_ParseScheduleXml)->Arg(100)->Arg(1000)->Arg(10000);

void BM_WriteScheduleXml(benchmark::State& state) {
  const auto schedule = synthetic_schedule(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::write_schedule_xml(schedule));
  }
}
BENCHMARK(BM_WriteScheduleXml)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

JEDULE_BENCH_MAIN(report)
