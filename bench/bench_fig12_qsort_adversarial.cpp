// Fig. 12 — "Quicksort with inversely sorted integers" and the middle
// element as pivot: the first task swaps every pair of the whole array, so
// "only one processor is busy in almost half the total execution time",
// and mid-run holes appear when memory bandwidth is contended (the NUMA
// effect, reproduced here with the extra_work contention knob).

#include "bench_report.hpp"
#include "jedule/model/stats.hpp"
#include "jedule/taskpool/log_schedule.hpp"
#include "jedule/taskpool/quicksort.hpp"

namespace {

using namespace jedule;
using taskpool::QuicksortOptions;
using taskpool::TaskPool;

constexpr int kThreads = 8;
constexpr std::size_t kElements = 1'000'000;

void report() {
  using namespace jedule::bench;
  report_header("Fig. 12",
                "adversarial input (inversely sorted, middle pivot): one "
                "thread busy for a large fraction of the run");
  TaskPool::Options pool;
  pool.threads = kThreads;
  QuicksortOptions qs;
  qs.elements = kElements;
  qs.input = QuicksortOptions::Input::kReversed;
  const auto run = run_parallel_quicksort(pool, qs);
  report_row("elements / threads",
             std::to_string(kElements) + " / " + std::to_string(kThreads));
  report_row("tasks executed", std::to_string(run.tasks));
  report_row("wallclock", fmt(run.log.wallclock, 3) + " s");
  report_check("output is sorted", run.sorted);

  const auto schedule = taskpool::log_to_schedule(run.log);
  const double solo =
      model::fraction_of_time_with_busy(schedule, 1, {"computation"});
  report_row("fraction of time with exactly 1 busy thread", fmt(solo, 3));
  report_check("pronounced sequential phase (solo fraction > 0.2; paper: "
               "'almost half')",
               solo > 0.2);

  // Compare against the random-input run: the adversarial solo phase must
  // be clearly longer.
  QuicksortOptions random_qs = qs;
  random_qs.input = QuicksortOptions::Input::kRandom;
  random_qs.extra_work = 0;
  const auto random_run = run_parallel_quicksort(pool, random_qs);
  const double random_solo = model::fraction_of_time_with_busy(
      taskpool::log_to_schedule(random_run.log), 1, {"computation"});
  report_row("solo fraction on random input (Fig. 11)", fmt(random_solo, 3));
  report_check("adversarial input shows a much longer sequential head",
               solo > 1.5 * random_solo);
  report_footer();
}

void BM_QuicksortAdversarial(benchmark::State& state) {
  TaskPool::Options pool;
  pool.threads = static_cast<int>(state.range(0));
  QuicksortOptions qs;
  qs.elements = 1'000'000;
  qs.input = QuicksortOptions::Input::kReversed;
  for (auto _ : state) {
    const auto run = run_parallel_quicksort(pool, qs);
    benchmark::DoNotOptimize(run.sorted);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(qs.elements));
}
BENCHMARK(BM_QuicksortAdversarial)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ContentionKnob(benchmark::State& state) {
  // Ablation for the NUMA stand-in: runtime as the per-element extra work
  // grows (the Fig. 12 'bandwidth hole' becomes deeper).
  TaskPool::Options pool;
  pool.threads = 8;
  QuicksortOptions qs;
  qs.elements = 500'000;
  qs.input = QuicksortOptions::Input::kReversed;
  qs.extra_work = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto run = run_parallel_quicksort(pool, qs);
    benchmark::DoNotOptimize(run.sorted);
  }
}
BENCHMARK(BM_ContentionKnob)->Arg(0)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

JEDULE_BENCH_MAIN(report)
