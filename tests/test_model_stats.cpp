#include "jedule/model/stats.hpp"

#include <gtest/gtest.h>

#include "jedule/model/builder.hpp"

namespace jedule::model {
namespace {

Schedule overlap_schedule() {
  // Host 0: a [0,4); host 0 also b [2,6) -> covered union [0,6), area 8.
  // Host 1: idle.
  return ScheduleBuilder()
      .cluster(0, "c", 2)
      .task("a", "compute", 0, 4)
      .on(0, 0, 1)
      .task("b", "io", 2, 6)
      .on(0, 0, 1)
      .build();
}

TEST(Stats, EmptySchedule) {
  Schedule s;
  s.add_cluster(0, "c", 4);
  const auto st = compute_stats(s);
  EXPECT_EQ(st.task_count, 0u);
  EXPECT_DOUBLE_EQ(st.makespan, 0.0);
  EXPECT_DOUBLE_EQ(st.utilization, 0.0);
  EXPECT_DOUBLE_EQ(st.busy_area, 0.0);
}

TEST(Stats, AreaCountsOverlapTwiceCoveredOnce) {
  const auto st = compute_stats(overlap_schedule());
  EXPECT_DOUBLE_EQ(st.busy_area, 8.0);     // 4 + 4
  EXPECT_DOUBLE_EQ(st.covered_time, 6.0);  // union on host 0
  EXPECT_DOUBLE_EQ(st.makespan, 6.0);
  EXPECT_DOUBLE_EQ(st.idle_time, 2 * 6.0 - 6.0);
  EXPECT_DOUBLE_EQ(st.utilization, 0.5);
}

TEST(Stats, PerResourceBusyTimes) {
  const auto st = compute_stats(overlap_schedule());
  ASSERT_EQ(st.busy_by_resource.size(), 2u);
  EXPECT_DOUBLE_EQ(st.busy_by_resource[0], 6.0);
  EXPECT_DOUBLE_EQ(st.busy_by_resource[1], 0.0);
}

TEST(Stats, AreaByType) {
  const auto st = compute_stats(overlap_schedule());
  EXPECT_DOUBLE_EQ(st.area_by_type.at("compute"), 4.0);
  EXPECT_DOUBLE_EQ(st.area_by_type.at("io"), 4.0);
}

TEST(Stats, TypeFilterRestricts) {
  const auto st = compute_stats(overlap_schedule(), {"compute"});
  EXPECT_EQ(st.task_count, 1u);
  EXPECT_DOUBLE_EQ(st.busy_area, 4.0);
  EXPECT_DOUBLE_EQ(st.makespan, 4.0);
}

TEST(Stats, MultiHostTaskArea) {
  const Schedule s = ScheduleBuilder()
                         .cluster(0, "c", 8)
                         .task("m", "compute", 0, 3)
                         .on(0, 0, 8)
                         .build();
  const auto st = compute_stats(s);
  EXPECT_DOUBLE_EQ(st.busy_area, 24.0);
  EXPECT_DOUBLE_EQ(st.utilization, 1.0);
  EXPECT_DOUBLE_EQ(st.idle_time, 0.0);
}

TEST(ConcurrencyProfile, StepsMatchSchedule) {
  // One busy host in [0,4), two in [2,4) -> profile over [0,6).
  const auto profile = concurrency_profile(overlap_schedule(), 6);
  ASSERT_EQ(profile.size(), 6u);
  // Samples at 0.5, 1.5, 2.5, 3.5, 4.5, 5.5; host0 busy throughout [0,6).
  for (int v : profile) EXPECT_EQ(v, 1);
}

TEST(ConcurrencyProfile, CountsDistinctResources) {
  const Schedule s = ScheduleBuilder()
                         .cluster(0, "c", 3)
                         .task("a", "t", 0, 2)
                         .on(0, 0, 2)
                         .task("b", "t", 1, 2)
                         .on(0, 2, 1)
                         .build();
  const auto profile = concurrency_profile(s, 4);  // samples .25 .75 1.25 1.75
  EXPECT_EQ(profile[0], 2);
  EXPECT_EQ(profile[1], 2);
  EXPECT_EQ(profile[2], 3);
  EXPECT_EQ(profile[3], 3);
}

TEST(FractionOfTimeWithBusy, SequentialPhaseDetected) {
  // One host busy alone for [0,5), then both for [5,10).
  const Schedule s = ScheduleBuilder()
                         .cluster(0, "c", 2)
                         .task("solo", "t", 0, 5)
                         .on(0, 0, 1)
                         .task("a", "t", 5, 10)
                         .on(0, 0, 1)
                         .task("b", "t", 5, 10)
                         .on(0, 1, 1)
                         .build();
  EXPECT_NEAR(fraction_of_time_with_busy(s, 1), 0.5, 0.01);
  EXPECT_NEAR(fraction_of_time_with_busy(s, 2), 0.5, 0.01);
  EXPECT_NEAR(fraction_of_time_with_busy(s, 0), 0.0, 0.01);
}

}  // namespace
}  // namespace jedule::model
