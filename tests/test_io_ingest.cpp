#include "jedule/io/ingest.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "jedule/io/csv.hpp"
#include "jedule/io/file.hpp"
#include "jedule/io/jedule_xml.hpp"
#include "jedule/io/registry.hpp"
#include "jedule/io/swf.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/render/deflate.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/inflate.hpp"
#include "jedule/workload/swf_parser.hpp"

namespace jedule::io {
namespace {

// Tiny thresholds so even hand-sized documents exercise the multi-chunk
// parallel path; production defaults would keep all of these serial.
IngestOptions tiny(int threads) {
  IngestOptions opt;
  opt.threads = threads;
  opt.min_parallel_bytes = 1;
  opt.target_chunk_bytes = 64;
  return opt;
}

const int kThreadCounts[] = {1, 2, 8};

std::string gzip(const std::string& text) {
  const auto z = render::gzip_compress(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
  return {reinterpret_cast<const char*>(z.data()), z.size()};
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// A schedule large enough that 64-byte chunks produce many of them, with
// repeated and distinct task types (exercises the chunk-local interner)
// and both contiguous and scattered allocations.
std::string big_xml(int tasks) {
  model::ScheduleBuilder b;
  b.cluster(0, "alpha", 64).cluster(1, "beta", 32);
  b.meta("algorithm", "test").meta("n", std::to_string(tasks));
  for (int i = 0; i < tasks; ++i) {
    const char* type = (i % 3 == 0)   ? "computation"
                       : (i % 3 == 1) ? "transfer"
                                      : "idle";
    b.task("t" + std::to_string(i), type, i * 1.5, i * 1.5 + 1.25)
        .on(i % 2, (i * 7) % 24, 4);
    if (i % 5 == 0) b.property("k" + std::to_string(i % 7), "v&<>\"");
  }
  return write_schedule_xml(b.build());
}

std::string big_csv(int tasks) {
  std::string text =
      "!cluster,0,alpha,64\n"
      "!cluster,1,beta,32\n"
      "!meta,algorithm,test\n"
      "# generated fixture\n"
      "task_id,type,start,end,allocs\n";
  for (int i = 0; i < tasks; ++i) {
    const char* type = (i % 2 != 0) ? "transfer" : "computation";
    text += "t" + std::to_string(i) + "," + type + "," +
            std::to_string(i * 0.5) + "," + std::to_string(i * 0.5 + 0.25) +
            "," + std::to_string(i % 2) + ":" + std::to_string(i % 16) + "-" +
            std::to_string(i % 16 + 3);
    if (i % 4 == 0) text += "|" + std::to_string((i + 1) % 2) + ":0-1";
    text += "\n";
  }
  return text;
}

std::string big_swf(int jobs) {
  std::string text =
      "; Computer: Fixture\n"
      "; MaxProcs: 128\n"
      ";\n";
  for (int i = 0; i < jobs; ++i) {
    text += std::to_string(i + 1) + " " + std::to_string(i * 10) + " 5 30 " +
            std::to_string(1 + i % 8) +
            " 29 -1 4 60 -1 1 100 3 5 1 1 -1 -1\n";
  }
  return text;
}

// --- Differential: chunked output must be byte-identical to serial ------

TEST(IngestDifferential, XmlMatchesSerialAtEveryThreadCount) {
  const std::string text = big_xml(60);
  const std::string serial = write_schedule_xml(read_schedule_xml(text));
  for (int t : kThreadCounts) {
    TextSource src(text);
    IngestStats stats;
    const auto s = read_schedule_xml_chunked(src, tiny(t), &stats);
    EXPECT_EQ(write_schedule_xml(s), serial) << "threads=" << t;
    if (t > 1) {
      EXPECT_TRUE(stats.parallel);
      EXPECT_GT(stats.chunks, 1u);
    }
  }
}

TEST(IngestDifferential, CsvMatchesSerialAtEveryThreadCount) {
  const std::string text = big_csv(80);
  const std::string serial = write_schedule_csv(read_schedule_csv(text));
  for (int t : kThreadCounts) {
    TextSource src(text);
    IngestStats stats;
    const auto s = read_schedule_csv_chunked(src, tiny(t), &stats);
    EXPECT_EQ(write_schedule_csv(s), serial) << "threads=" << t;
    if (t > 1) {
      EXPECT_TRUE(stats.parallel);
    }
  }
}

TEST(IngestDifferential, SwfMatchesSerialAtEveryThreadCount) {
  const std::string text = big_swf(80);
  const std::string serial = write_swf(read_swf(text));
  for (int t : kThreadCounts) {
    TextSource src(text);
    IngestStats stats;
    const auto trace = read_swf_chunked(src, tiny(t), &stats);
    EXPECT_EQ(write_swf(trace), serial) << "threads=" << t;
    if (t > 1) {
      EXPECT_TRUE(stats.parallel);
    }
  }
}

TEST(IngestDifferential, GzipInputMatchesPlainInput) {
  for (const std::string& text : {big_xml(40), big_csv(60)}) {
    TextSource plain(text);
    TextSource zipped(gzip(text));
    EXPECT_TRUE(zipped.gzip());
    EXPECT_EQ(zipped.all(), plain.all());
  }
}

// --- Adversarial chunk-boundary inputs ----------------------------------

TEST(IngestAdversarial, CsvCrlfAndMissingFinalNewline) {
  // CRLF line endings plus a last record with no trailing newline: both
  // land on the trim/short-final-line edge of the boundary scan.
  std::string text = "task_id,type,start,end,allocs\r\n";
  for (int i = 0; i < 30; ++i) {
    text += "c" + std::to_string(i) + ",t,0," + std::to_string(i + 1) +
            ",0:" + std::to_string(i) + "\r\n";
  }
  text += "last,t,0,99,0:31";  // truncated: no newline
  const std::string serial = write_schedule_csv(read_schedule_csv(text));
  for (int t : kThreadCounts) {
    TextSource src(text);
    const auto s = read_schedule_csv_chunked(src, tiny(t), nullptr);
    EXPECT_EQ(write_schedule_csv(s), serial) << "threads=" << t;
  }
}

TEST(IngestAdversarial, CsvDirectiveAfterHeaderFallsBackToSerial) {
  std::string text = big_csv(20);
  text += "!meta,late,directive\n";
  text += "z,t,0,1,0:0\n";
  const std::string serial = write_schedule_csv(read_schedule_csv(text));
  TextSource src(text);
  IngestStats stats;
  const auto s = read_schedule_csv_chunked(src, tiny(8), &stats);
  EXPECT_EQ(write_schedule_csv(s), serial);
  EXPECT_FALSE(stats.parallel);  // bailed to the serial reader
}

TEST(IngestAdversarial, SwfHeaderLineAfterDataFallsBackToSerial) {
  std::string text = big_swf(20);
  text += "; Note: appears-after-data\n";
  text += "99 0 0 1 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1\n";
  const std::string serial = write_swf(read_swf(text));
  TextSource src(text);
  IngestStats stats;
  const auto trace = read_swf_chunked(src, tiny(8), &stats);
  EXPECT_EQ(write_swf(trace), serial);
  EXPECT_FALSE(stats.parallel);
  EXPECT_EQ(trace.header.at("Note"), "appears-after-data");
}

TEST(IngestAdversarial, SwfBlankAndCommentOnlyTail) {
  std::string text = big_swf(10) + "\n\n";
  const std::string serial = write_swf(read_swf(text));
  for (int t : kThreadCounts) {
    TextSource src(text);
    EXPECT_EQ(write_swf(read_swf_chunked(src, tiny(t), nullptr)), serial);
  }
}

TEST(IngestAdversarial, XmlCommentsBetweenRecordsStayIdentical) {
  // Comments (and XML declarations) between records land in the skeleton;
  // whatever the boundary scanner does with them, the parse must agree
  // with the serial reader.
  std::string text = big_xml(30);
  const auto pos = text.find("<node_statistics>");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos, "<!-- interleaved <node_statistics> lookalike -->\n");
  const std::string serial = write_schedule_xml(read_schedule_xml(text));
  for (int t : kThreadCounts) {
    TextSource src(text);
    const auto s = read_schedule_xml_chunked(src, tiny(t), nullptr);
    EXPECT_EQ(write_schedule_xml(s), serial) << "threads=" << t;
  }
}

TEST(IngestAdversarial, ErrorMessagesMatchSerialExactly) {
  // A worker-visible parse error must surface as the *serial* diagnostic:
  // the chunked readers fall back and re-derive it.
  struct Case {
    std::string text;
    model::Schedule (*serial)(std::string_view);
    model::Schedule (*chunked)(TextSource&, const IngestOptions&,
                               IngestStats*);
  };
  std::string bad_xml = big_xml(20);
  const auto v = bad_xml.find("value=\"1.5\"");
  if (v != std::string::npos) bad_xml.replace(v + 7, 3, "zap");
  std::string bad_csv = big_csv(20);
  bad_csv += "broken,t,zero,1,0:0\n";
  const Case cases[] = {
      {bad_xml, read_schedule_xml, read_schedule_xml_chunked},
      {bad_csv, read_schedule_csv, read_schedule_csv_chunked},
  };
  for (const auto& c : cases) {
    std::string serial_msg;
    try {
      c.serial(c.text);
    } catch (const ParseError& e) {
      serial_msg = e.what();
    }
    if (serial_msg.empty()) continue;  // fixture happened to stay valid
    for (int t : kThreadCounts) {
      TextSource src(c.text);
      try {
        c.chunked(src, tiny(t), nullptr);
        FAIL() << "expected ParseError at threads=" << t;
      } catch (const ParseError& e) {
        EXPECT_EQ(std::string(e.what()), serial_msg) << "threads=" << t;
      }
    }
  }
}

TEST(IngestAdversarial, SwfErrorMessagesMatchSerialExactly) {
  std::string text = big_swf(20);
  text += "21 0 0 nope 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1\n";
  std::string serial_msg;
  try {
    read_swf(text);
    FAIL() << "fixture should not parse";
  } catch (const ParseError& e) {
    serial_msg = e.what();
  }
  for (int t : kThreadCounts) {
    TextSource src(text);
    try {
      read_swf_chunked(src, tiny(t), nullptr);
      FAIL() << "expected ParseError at threads=" << t;
    } catch (const ParseError& e) {
      EXPECT_EQ(std::string(e.what()), serial_msg) << "threads=" << t;
    }
  }
}

TEST(IngestAdversarial, LyingIsizeTrailerKeepsSerialError) {
  // Tampering the ISIZE trailer down forces the bounded decode to
  // overflow; the eager fallback then re-derives the exact serial
  // trailer-mismatch diagnostic.
  std::string z = gzip(big_csv(200));
  ASSERT_GT(z.size(), 4u);
  for (int i = 1; i <= 4; ++i) z[z.size() - i] = '\0';
  std::string direct_msg;
  try {
    util::gzip_decompress(reinterpret_cast<const std::uint8_t*>(z.data()),
                          z.size());
    FAIL() << "tampered trailer should not verify";
  } catch (const ParseError& e) {
    direct_msg = e.what();
  }
  TextSource src(z);
  try {
    src.all();
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(std::string(e.what()), direct_msg);
  }
}

TEST(IngestAdversarial, CorruptGzipBodyKeepsSerialError) {
  std::string z = gzip(big_xml(30));
  z[z.size() / 2] ^= 0x5a;  // flip bits mid-stream
  std::string direct_msg;
  try {
    util::gzip_decompress(reinterpret_cast<const std::uint8_t*>(z.data()),
                          z.size());
  } catch (const ParseError& e) {
    direct_msg = e.what();
  }
  ASSERT_FALSE(direct_msg.empty());
  TextSource src(z);
  EXPECT_THROW(
      {
        try {
          src.all();
        } catch (const ParseError& e) {
          EXPECT_EQ(std::string(e.what()), direct_msg);
          throw;
        }
      },
      ParseError);
}

// --- TextSource / LineScanner / ChunkExecutor units ---------------------

TEST(TextSource, PlainInputIsCompleteImmediately) {
  TextSource src(std::string("hello\nworld\n"));
  EXPECT_FALSE(src.gzip());
  const auto v = src.wait_for(1);
  EXPECT_TRUE(v.complete);
  EXPECT_EQ(v.text(), "hello\nworld\n");
  EXPECT_EQ(src.all(), "hello\nworld\n");
}

TEST(TextSource, GzipDecodePublishesFullText) {
  const std::string text = big_csv(300);
  TextSource src(gzip(text));
  EXPECT_TRUE(src.gzip());
  EXPECT_EQ(src.all(), text);
  EXPECT_EQ(src.all(), text);  // idempotent
}

TEST(LineScanner, FindsNewlinesAndSlices) {
  TextSource src(std::string("a\nbb\n\nccc"));
  LineScanner scan(src);
  EXPECT_EQ(scan.find_newline(0), 1u);
  EXPECT_EQ(scan.find_newline(2), 4u);
  EXPECT_EQ(scan.find_newline(5), 5u);
  EXPECT_EQ(scan.find_newline(6), LineScanner::npos);
  EXPECT_TRUE(scan.complete());
  EXPECT_EQ(scan.size(), 9u);
  EXPECT_EQ(scan.slice(2, 4), "bb");
  EXPECT_EQ(scan.slice(6, 9), "ccc");
}

TEST(LineScanner, WorksAcrossGzipPublishSteps) {
  std::string text;
  for (int i = 0; i < 50000; ++i) {
    text += "line" + std::to_string(i) + "\n";
  }
  TextSource src(gzip(text));
  LineScanner scan(src);
  std::size_t pos = 0, lines = 0;
  while (true) {
    const std::size_t nl = scan.find_newline(pos);
    if (nl == LineScanner::npos) break;
    ++lines;
    pos = nl + 1;
  }
  EXPECT_EQ(lines, 50000u);
}

TEST(ChunkExecutor, ReportsLowestIndexError) {
  for (int threads : kThreadCounts) {
    ChunkExecutor exec(threads);
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i) {
      exec.submit([i, &ran] {
        ++ran;
        if (i == 11) throw ParseError("late failure");
        if (i == 5) throw ParseError("early failure");
      });
    }
    try {
      exec.finish();
      FAIL() << "expected ParseError at threads=" << threads;
    } catch (const ParseError& e) {
      EXPECT_STREQ(e.what(), "early failure") << "threads=" << threads;
    }
    EXPECT_FALSE(exec.failed());  // finish() rethrew and reset the state
    EXPECT_GE(ran.load(), 6);
  }
}

TEST(ChunkExecutor, RunsEverythingWithoutErrors) {
  ChunkExecutor exec(4);
  std::atomic<int> sum{0};
  for (int i = 0; i < 100; ++i) {
    exec.submit([i, &sum] { sum += i; });
  }
  exec.finish();
  EXPECT_FALSE(exec.failed());
  EXPECT_EQ(sum.load(), 4950);
}

// --- Registry integration: stats, counters, mapped loads ----------------

TEST(IngestRegistry, ParseScheduleFillsStatsAndCounters) {
  const std::string text = big_csv(80);
  const auto before = ingest_counters()["csv"];
  IngestStats stats;
  const auto s =
      parse_schedule(text, "fixture.csv", "", tiny(2), &stats);
  EXPECT_EQ(s.tasks().size(), 80u);
  EXPECT_EQ(stats.format, "csv");
  EXPECT_EQ(stats.bytes, text.size());
  EXPECT_EQ(stats.threads, 2);
  EXPECT_TRUE(stats.parallel);
  EXPECT_FALSE(stats.gzip);
  EXPECT_FALSE(stats.mapped_input);
  const auto after = ingest_counters()["csv"];
  EXPECT_EQ(after.parses, before.parses + 1);
  EXPECT_EQ(after.parallel_parses, before.parallel_parses + 1);
  EXPECT_GE(after.bytes, before.bytes + text.size());
  const std::string line = ingest_summary(stats);
  EXPECT_NE(line.find("csv"), std::string::npos);
  EXPECT_NE(line.find("thread"), std::string::npos);
}

TEST(IngestRegistry, GzipNameHintStripsExtension) {
  const std::string text = big_xml(30);
  IngestStats stats;
  const auto s = parse_schedule(gzip(text), "fixture.jed.gz", "", tiny(2),
                                &stats);
  EXPECT_EQ(stats.format, "jedule-xml");
  EXPECT_TRUE(stats.gzip);
  EXPECT_EQ(write_schedule_xml(s), write_schedule_xml(read_schedule_xml(text)));
}

TEST(IngestRegistry, LoadScheduleUsesMappedInput) {
  const std::string text = big_csv(50);
  const std::string path = temp_path("jedule_ingest_mapped.csv");
  write_file(path, text);
  IngestStats stats;
  const auto s = load_schedule(path, "", tiny(2), &stats);
  EXPECT_EQ(s.tasks().size(), 50u);
  if (stats.mapped_input) {  // heap fallback is legal but unmapped
    EXPECT_EQ(stats.mapped_bytes, text.size());
  }
  EXPECT_EQ(write_schedule_csv(s), write_schedule_csv(read_schedule_csv(text)));
  std::filesystem::remove(path);
}

TEST(IngestRegistry, LoadScheduleMissingFileKeepsLegacyError) {
  const std::string path = temp_path("jedule_ingest_no_such_file.csv");
  std::string legacy_msg;
  try {
    read_file(path);
  } catch (const IoError& e) {
    legacy_msg = e.what();
  }
  ASSERT_FALSE(legacy_msg.empty());
  try {
    load_schedule(path);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(std::string(e.what()), legacy_msg);
  }
}

TEST(IngestRegistry, SwfRoutesThroughChunkedPath) {
  workload::register_swf_parser();  // idempotent
  const std::string text = big_swf(120);
  IngestStats stats;
  const auto s = parse_schedule(text, "trace.swf", "swf", tiny(8), &stats);
  EXPECT_EQ(stats.format, "swf");
  EXPECT_TRUE(stats.parallel);
  EXPECT_FALSE(s.tasks().empty());
  IngestStats serial_stats;
  const auto serial =
      parse_schedule(text, "trace.swf", "swf", tiny(1), &serial_stats);
  EXPECT_FALSE(serial_stats.parallel);
  EXPECT_EQ(write_schedule_xml(s), write_schedule_xml(serial));
}

TEST(IngestRegistry, ProductionDefaultsKeepSmallInputsSerial) {
  const std::string text = big_csv(40);  // far below min_parallel_bytes
  IngestStats stats;
  IngestOptions opt;
  opt.threads = 8;
  const auto s = parse_schedule(text, "small.csv", "", opt, &stats);
  EXPECT_EQ(s.tasks().size(), 40u);
  EXPECT_FALSE(stats.parallel);
  EXPECT_EQ(stats.chunks, 0u);
}

}  // namespace
}  // namespace jedule::io
