#include "jedule/util/strings.hpp"

#include <gtest/gtest.h>

namespace jedule::util {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\na b\r\n"), "a b");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Trim, EmptyAndAllWhitespace) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\r\n"), "");
}

TEST(Split, PreservesEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Split, SingleField) {
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitWs, CollapsesRuns) {
  EXPECT_EQ(split_ws("  a\t\tb  c \n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
  EXPECT_TRUE(split_ws("").empty());
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"one"}, ","), "one");
  EXPECT_EQ(join({}, ","), "");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("AbC-12z"), "abc-12z");
}

TEST(StartsEndsWith, Basic) {
  EXPECT_TRUE(starts_with("schedule.xml", "sched"));
  EXPECT_FALSE(starts_with("s", "sched"));
  EXPECT_TRUE(ends_with("schedule.xml", ".xml"));
  EXPECT_FALSE(ends_with("xml", "schedule.xml"));
}

TEST(ParseInt, Strict) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_EQ(parse_int("  13  "), 13);
  EXPECT_FALSE(parse_int("12x"));
  EXPECT_FALSE(parse_int(""));
  EXPECT_FALSE(parse_int("1.5"));
  EXPECT_FALSE(parse_int("99999999999999999999999"));
}

TEST(ParseDouble, Strict) {
  EXPECT_DOUBLE_EQ(*parse_double("0.310"), 0.31);
  EXPECT_DOUBLE_EQ(*parse_double("-2"), -2.0);
  EXPECT_DOUBLE_EQ(*parse_double("1e3"), 1000.0);
  EXPECT_FALSE(parse_double("abc"));
  EXPECT_FALSE(parse_double("1.0junk"));
  EXPECT_FALSE(parse_double(""));
}

TEST(FormatFixed, KeepsTrailingZeros) {
  EXPECT_EQ(format_fixed(0.31, 3), "0.310");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-1.25, 2), "-1.25");
}

TEST(XmlEscape, AllFiveEntities) {
  EXPECT_EQ(xml_escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
  EXPECT_EQ(xml_escape("plain"), "plain");
}

// parse/format round trip across magnitudes.
class FormatRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(FormatRoundTrip, ParsesBack) {
  const double v = GetParam();
  const auto parsed = parse_double(format_fixed(v, 6));
  ASSERT_TRUE(parsed);
  EXPECT_NEAR(*parsed, v, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Values, FormatRoundTrip,
                         ::testing::Values(0.0, 0.31, -2.5, 140.9, 86400.0,
                                           1e-4, 123.456789));

}  // namespace
}  // namespace jedule::util
