// Dependency-edge rendering (DESIGN.md §4j): the arrows-vs-heat-lane
// switch, layout identity between the EdgeIndex path and the brute-force
// fallback, and the export byte-identity matrix (every exporter x every
// SIMD kernel variant x several thread counts) with edges enabled.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "jedule/color/colormap.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/model/edge_index.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/render/exporter.hpp"
#include "jedule/render/gantt.hpp"
#include "jedule/render/kernels.hpp"
#include "jedule/render/options.hpp"

namespace jedule::render {
namespace {

/// Four-task pipeline across two clusters: a handful of arrows, one of
/// them crossing clusters.
model::Schedule pipeline_schedule() {
  model::Schedule s = model::ScheduleBuilder()
                          .cluster(0, "c0", 8)
                          .cluster(1, "c1", 8)
                          .task("a", "computation", 0.0, 2.0)
                          .on(0, 0, 4)
                          .task("b", "computation", 2.5, 5.0)
                          .on(0, 4, 4)
                          .task("c", "transfer", 5.0, 6.0)
                          .on(1, 0, 2)
                          .task("d", "computation", 6.5, 9.0)
                          .on(1, 2, 4)
                          .build();
  s.add_dependency(0, 1, 1.0);
  s.add_dependency(1, 2, 2.0);
  s.add_dependency(2, 3, 1.0);
  s.add_dependency(0, 3, 0.5);
  s.validate();
  return s;
}

/// Dense random DAG: enough edges per pixel column to trip the heat-lane
/// budget at a narrow width.
model::Schedule dense_schedule(int n, int m, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> start(0.0, 50.0);
  std::uniform_real_distribution<double> dur(0.5, 6.0);
  std::uniform_int_distribution<int> host(0, 12);

  model::ScheduleBuilder b;
  b.cluster(0, "c0", 16).cluster(1, "c1", 16);
  for (int i = 0; i < n; ++i) {
    const double s0 = start(rng);
    b.task(std::to_string(i), i % 2 ? "computation" : "transfer", s0,
           s0 + dur(rng));
    b.on(i % 2, host(rng), 2);
  }
  model::Schedule s = b.build();
  std::uniform_int_distribution<int> pick(0, n - 1);
  int added = 0;
  while (added < m) {
    int a = pick(rng), c = pick(rng);
    if (a == c) continue;
    if (a > c) std::swap(a, c);
    s.add_dependency(static_cast<std::uint32_t>(a),
                     static_cast<std::uint32_t>(c), 1.0);
    ++added;
  }
  s.validate();
  return s;
}

GanttStyle style_for(EdgeMode mode, int width = 480, int height = 320) {
  GanttStyle style;
  style.width = width;
  style.height = height;
  style.edges = mode;
  return style;
}

GanttLayout layout_with(const model::Schedule& s, const GanttStyle& style,
                        const model::EdgeIndex* index) {
  LayoutHints hints;
  hints.edge_index = index;
  return layout_gantt(s, color::standard_colormap(), style, /*threads=*/1,
                      hints);
}

using ArrowKey = std::tuple<double, double, double, double, bool, bool>;

std::vector<ArrowKey> arrow_keys(const GanttLayout& lay) {
  std::vector<ArrowKey> keys;
  for (const auto& a : lay.edge_arrows) {
    keys.emplace_back(a.x0, a.y0, a.x1, a.y1, a.head, a.critical);
  }
  return keys;
}

void expect_same_edge_layout(const GanttLayout& a, const GanttLayout& b) {
  EXPECT_EQ(arrow_keys(a), arrow_keys(b));
  ASSERT_EQ(a.edge_lanes.size(), b.edge_lanes.size());
  for (std::size_t i = 0; i < a.edge_lanes.size(); ++i) {
    EXPECT_EQ(a.edge_lanes[i].panel_index, b.edge_lanes[i].panel_index);
    EXPECT_DOUBLE_EQ(a.edge_lanes[i].x, b.edge_lanes[i].x);
    EXPECT_DOUBLE_EQ(a.edge_lanes[i].col_w, b.edge_lanes[i].col_w);
    EXPECT_DOUBLE_EQ(a.edge_lanes[i].y, b.edge_lanes[i].y);
    EXPECT_DOUBLE_EQ(a.edge_lanes[i].h, b.edge_lanes[i].h);
    EXPECT_EQ(a.edge_lanes[i].levels, b.edge_lanes[i].levels);
  }
  EXPECT_EQ(a.edge_stats.considered, b.edge_stats.considered);
  EXPECT_EQ(a.edge_stats.arrows, b.edge_stats.arrows);
  EXPECT_EQ(a.edge_stats.critical_arrows, b.edge_stats.critical_arrows);
  EXPECT_EQ(a.edge_stats.heat_panels, b.edge_stats.heat_panels);
}

TEST(RenderEdges, SparseScheduleDrawsArrowsWithCriticalPathFlagged) {
  const auto s = pipeline_schedule();
  const model::EdgeIndex index(s);
  const auto lay = layout_with(s, style_for(EdgeMode::kAuto), &index);
  // b->c and a->d cross clusters, so each is considered in both panels:
  // 1 (a->b) + 2 (b->c) + 1 (c->d) + 2 (a->d) = 6.
  EXPECT_EQ(lay.edge_stats.considered, 6u);
  // An arrow needs both endpoints on rows of the panel's cluster; only
  // a->b (cluster 0) and c->d (cluster 1) qualify, and both lie on the
  // critical path a-b-c-d.
  EXPECT_EQ(lay.edge_stats.arrows, 2u);
  EXPECT_TRUE(lay.edge_lanes.empty());
  EXPECT_EQ(lay.edge_stats.critical_arrows, 2u);
}

TEST(RenderEdges, OffModeAndDepFreeSchedulesDrawNothing) {
  const auto s = pipeline_schedule();
  const model::EdgeIndex index(s);
  const auto lay = layout_with(s, style_for(EdgeMode::kOff), &index);
  EXPECT_TRUE(lay.edge_arrows.empty());
  EXPECT_TRUE(lay.edge_lanes.empty());

  // No dependencies: the default (auto) mode must not change the bytes.
  model::Schedule bare = model::ScheduleBuilder()
                             .cluster(0, "c", 4)
                             .task("t", "computation", 0.0, 1.0)
                             .on(0, 0, 4)
                             .build();
  RenderOptions off;
  off.style = style_for(EdgeMode::kOff);
  RenderOptions def;
  def.style = style_for(EdgeMode::kDefault);
  EXPECT_EQ(render_to_bytes(bare, off, "png"),
            render_to_bytes(bare, def, "png"));
}

TEST(RenderEdges, ForceModeBundlesIntoHeatLanes) {
  const auto s = pipeline_schedule();
  const model::EdgeIndex index(s);
  const auto lay = layout_with(s, style_for(EdgeMode::kForce), &index);
  EXPECT_TRUE(lay.edge_stats.heat_panels > 0);
  EXPECT_FALSE(lay.edge_lanes.empty());
  // The critical path overlays the lanes as arrows even in heat mode.
  EXPECT_EQ(lay.edge_stats.arrows, lay.edge_stats.critical_arrows);
  EXPECT_GT(lay.edge_stats.critical_arrows, 0u);
  for (const auto& lane : lay.edge_lanes) {
    EXPECT_FALSE(lane.levels.empty());
    // Quantization normalizes the densest column to 255.
    EXPECT_EQ(*std::max_element(lane.levels.begin(), lane.levels.end()), 255);
  }
}

TEST(RenderEdges, AutoSwitchesToHeatAboveTheDensityBudget) {
  const auto s = dense_schedule(400, 4000, 5);
  const model::EdgeIndex index(s);
  // 160 px wide at the default budget of 2 arrows per column: 4000 edges
  // can only render as heat lanes.
  const auto lay = layout_with(s, style_for(EdgeMode::kAuto, 160, 200), &index);
  EXPECT_GT(lay.edge_stats.heat_panels, 0u);
  // Wide enough and the same schedule draws individual arrows again.
  GanttStyle wide = style_for(EdgeMode::kAuto, 480, 200);
  wide.edge_density = 1 << 20;
  const auto arrows = layout_with(s, wide, &index);
  EXPECT_EQ(arrows.edge_stats.heat_panels, 0u);
  EXPECT_GT(arrows.edge_stats.arrows, 0u);
}

TEST(RenderEdges, IndexAndBruteForceFallbackProduceIdenticalLayouts) {
  for (unsigned seed : {3u, 8u}) {
    const auto s = dense_schedule(200, 500, seed);
    const model::EdgeIndex index(s);
    for (const EdgeMode mode : {EdgeMode::kAuto, EdgeMode::kForce}) {
      for (const int width : {160, 480}) {
        const GanttStyle style = style_for(mode, width, 240);
        const GanttLayout with_index = layout_with(s, style, &index);
        const GanttLayout brute = layout_with(s, style, nullptr);
        expect_same_edge_layout(with_index, brute);
      }
    }
  }
}

TEST(RenderEdges, WindowedLayoutsOnlyConsiderVisibleEdges) {
  const auto s = dense_schedule(300, 1000, 11);
  const model::EdgeIndex index(s);
  GanttStyle style = style_for(EdgeMode::kAuto, 480, 240);
  const auto full = layout_with(s, style, &index);
  style.time_window = model::TimeRange{10.0, 12.0};
  const auto windowed = layout_with(s, style, &index);
  EXPECT_LT(windowed.edge_stats.considered, full.edge_stats.considered);
  expect_same_edge_layout(windowed, layout_with(s, style, nullptr));
}

TEST(RenderEdges, ExportBytesAreKernelAndThreadAndIndexInvariant) {
  const char* formats[] = {"png", "ppm", "svg", "pdf", "ascii"};
  const auto sparse = pipeline_schedule();
  const auto dense = dense_schedule(120, 1500, 7);
  const model::EdgeIndex sparse_index(sparse);
  const model::EdgeIndex dense_index(dense);

  struct Case {
    const model::Schedule* schedule;
    const model::EdgeIndex* index;
    EdgeMode mode;
  };
  // Arrows on the sparse schedule, heat lanes on the dense one (64 px
  // wide below), and forced heat on the sparse one.
  const Case cases[] = {{&sparse, &sparse_index, EdgeMode::kAuto},
                        {&dense, &dense_index, EdgeMode::kAuto},
                        {&sparse, &sparse_index, EdgeMode::kForce}};

  for (const Case& c : cases) {
    for (const char* format : formats) {
      RenderOptions base;
      base.style = style_for(c.mode, 160, 200);
      base.threads = 1;
      base.edge_index = c.index;
      kernels::override_active(&kernels::scalar());
      const std::string want = render_to_bytes(*c.schedule, base, format);
      for (const kernels::Kernels* k : kernels::available()) {
        kernels::override_active(k);
        for (const int threads : {1, 2, 8}) {
          RenderOptions options = base;
          options.threads = threads;
          EXPECT_EQ(render_to_bytes(*c.schedule, options, format), want)
              << format << " kernel=" << k->name << " threads=" << threads;
        }
        // The brute-force fallback must produce the same bytes too.
        RenderOptions no_index = base;
        no_index.edge_index = nullptr;
        EXPECT_EQ(render_to_bytes(*c.schedule, no_index, format), want)
            << format << " kernel=" << k->name << " (no index)";
      }
      kernels::override_active(nullptr);
    }
  }
}

}  // namespace
}  // namespace jedule::render
