// End-to-end tests of the `jedule` command-line tool (paper Sec. II.D.2's
// batch mode), driving the real binary. The binary path arrives via the
// JEDULE_CLI_PATH compile definition.

#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <string>

#include "jedule/io/file.hpp"
#include "jedule/io/jedule_xml.hpp"
#include "jedule/model/builder.hpp"

namespace {

using namespace jedule;

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CommandResult run_cli(const std::string& args) {
  const std::string command = std::string(JEDULE_CLI_PATH) + " " + args +
                              " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  CommandResult result;
  std::array<char, 4096> buffer;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

// Per-process scratch names: ctest runs each test as its own process, and
// with a fixed name two concurrently running tests would race on the same
// file (one reads while another rewrites it).
std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

std::string make_schedule_file() {
  const auto schedule = model::ScheduleBuilder()
                            .cluster(0, "c0", 8)
                            .meta("algorithm", "clitest")
                            .task("1", "computation", 0.0, 0.31)
                            .on(0, 0, 8)
                            .task("2", "transfer", 0.25, 0.5)
                            .on(0, 2, 4)
                            .build();
  const std::string path = temp_path("cli_schedule.jed");
  io::save_schedule_xml(schedule, path);
  return path;
}

TEST(Cli, NoArgumentsPrintsUsage) {
  const auto r = run_cli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const auto r = run_cli("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(Cli, UnknownFlagRejected) {
  const auto r = run_cli("info " + make_schedule_file() + " --sideways");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unknown flag"), std::string::npos);
}

TEST(Cli, InfoPrintsStatistics) {
  const auto r = run_cli("info " + make_schedule_file());
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("tasks:       2"), std::string::npos);
  EXPECT_NE(r.output.find("makespan:    0.500"), std::string::npos);
  EXPECT_NE(r.output.find("algorithm = clitest"), std::string::npos);
}

TEST(Cli, RenderProducesEachFormat) {
  const std::string schedule = make_schedule_file();
  for (const char* ext : {"png", "ppm", "svg", "pdf"}) {
    const std::string out = temp_path(std::string("cli_out.") + ext);
    const auto r = run_cli("render " + schedule + " --out " + out);
    EXPECT_EQ(r.exit_code, 0) << ext << ": " << r.output;
    const std::string bytes = io::read_file(out);
    EXPECT_GT(bytes.size(), 100u) << ext;
    std::remove(out.c_str());
  }
}

TEST(Cli, RenderOptionsAreApplied) {
  const std::string schedule = make_schedule_file();
  const std::string a = temp_path("cli_a.ppm");
  const std::string b = temp_path("cli_b.ppm");
  ASSERT_EQ(run_cli("render " + schedule + " --out " + a).exit_code, 0);
  ASSERT_EQ(run_cli("render " + schedule + " --out " + b + " --grayscale")
                .exit_code,
            0);
  EXPECT_NE(io::read_file(a), io::read_file(b));

  // Size flags change the header of the PPM.
  const std::string c = temp_path("cli_c.ppm");
  ASSERT_EQ(run_cli("render " + schedule + " --out " + c +
                    " --width 320 --height 200")
                .exit_code,
            0);
  EXPECT_NE(io::read_file(c).find("320 200"), std::string::npos);
  std::remove(a.c_str());
  std::remove(b.c_str());
  std::remove(c.c_str());
}

TEST(Cli, RenderValidatesFlags) {
  const std::string schedule = make_schedule_file();
  EXPECT_EQ(run_cli("render " + schedule).exit_code, 1);  // missing --out
  EXPECT_EQ(run_cli("render " + schedule + " --out x.png --window nope")
                .exit_code,
            1);
  EXPECT_EQ(run_cli("render " + schedule + " --out x.png --width 0")
                .exit_code,
            1);
  EXPECT_EQ(run_cli("render /no/such/file.jed --out x.png").exit_code, 1);
}

TEST(Cli, ConvertRoundTripsThroughCsv) {
  const std::string schedule = make_schedule_file();
  const std::string csv = temp_path("cli_conv.csv");
  const std::string back = temp_path("cli_back.jed");
  ASSERT_EQ(run_cli("convert " + schedule + " --out " + csv).exit_code, 0);
  ASSERT_EQ(run_cli("convert " + csv + " --out " + back).exit_code, 0);
  const auto reloaded = io::load_schedule_xml(back);
  EXPECT_EQ(reloaded.tasks().size(), 2u);
  EXPECT_EQ(reloaded.tasks()[0].id(), "1");
  std::remove(csv.c_str());
  std::remove(back.c_str());
}

TEST(Cli, FormatsListsRegisteredParsers) {
  const auto r = run_cli("formats");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("jedule-xml"), std::string::npos);
  EXPECT_NE(r.output.find("csv"), std::string::npos);
  EXPECT_NE(r.output.find("swf"), std::string::npos);
}

TEST(Cli, ViewExecutesScript) {
  const std::string schedule = make_schedule_file();
  const std::string script = temp_path("cli_script.txt");
  const std::string snap = temp_path("cli_snap.png");
  io::write_file(script,
                 "info\n"
                 "# a comment\n"
                 "zoom 0.1 0.4\n"
                 "inspect 400 200\n"
                 "export " + snap + "\n"
                 "bogus command\n"
                 "quit\n");
  const auto r = run_cli("view " + schedule + " --script " + script);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("2 task(s)"), std::string::npos);
  EXPECT_NE(r.output.find("window [0.1, 0.4]"), std::string::npos);
  EXPECT_NE(r.output.find("wrote " + snap), std::string::npos);
  // Errors inside the loop are reported, not fatal.
  EXPECT_NE(r.output.find("error: unknown command"), std::string::npos);
  EXPECT_GT(io::read_file(snap).size(), 100u);
  std::remove(script.c_str());
  std::remove(snap.c_str());
}

TEST(Cli, RenderReadsSwfViaRegistry) {
  const std::string swf = temp_path("cli_trace.swf");
  io::write_file(swf,
                 "; MaxProcs: 16\n"
                 "1 0 0 100 4 -1 -1 4 -1 -1 1 10 1 1 1 1 -1 -1\n"
                 "2 20 5 50 8 -1 -1 8 -1 -1 1 11 1 1 1 1 -1 -1\n");
  const std::string out = temp_path("cli_trace.png");
  const auto r = run_cli("render " + swf + " --out " + out +
                         " --highlight user=11");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_GT(io::read_file(out).size(), 1000u);
  std::remove(swf.c_str());
  std::remove(out.c_str());
}

TEST(Cli, CustomColormapFile) {
  const std::string schedule = make_schedule_file();
  const std::string cmap = temp_path("cli_cmap.xml");
  io::write_file(cmap, R"(<cmap name="custom">
    <task id="computation">
      <color type="fg" rgb="000000"/><color type="bg" rgb="00ff00"/>
    </task>
  </cmap>)");
  const std::string with = temp_path("cli_with.ppm");
  const std::string without = temp_path("cli_without.ppm");
  ASSERT_EQ(run_cli("render " + schedule + " --out " + without).exit_code, 0);
  ASSERT_EQ(run_cli("render " + schedule + " --out " + with + " --cmap " +
                    cmap)
                .exit_code,
            0);
  EXPECT_NE(io::read_file(with), io::read_file(without));
  std::remove(cmap.c_str());
  std::remove(with.c_str());
  std::remove(without.c_str());
}

TEST(Cli, DemoCatalogAndAsciiOutput) {
  const auto catalog = run_cli("demo");
  EXPECT_EQ(catalog.exit_code, 0);
  EXPECT_NE(catalog.output.find("composite"), std::string::npos);
  EXPECT_NE(catalog.output.find("thunder"), std::string::npos);

  // Without --out the demo prints the ASCII view.
  const auto ascii = run_cli("demo composite");
  EXPECT_EQ(ascii.exit_code, 0);
  EXPECT_NE(ascii.output.find("cluster-0 (8 hosts)"), std::string::npos);
  EXPECT_NE(ascii.output.find("*"), std::string::npos);  // the overlap
  EXPECT_NE(ascii.output.find("legend:"), std::string::npos);
}

TEST(Cli, DemoExportsImagesAndSchedules) {
  const std::string png = temp_path("cli_demo.png");
  EXPECT_EQ(run_cli("demo mcpa --out " + png).exit_code, 0);
  EXPECT_EQ(io::read_file(png).substr(1, 3), "PNG");
  std::remove(png.c_str());

  const std::string jed = temp_path("cli_demo.jed");
  EXPECT_EQ(run_cli("demo cpa --out " + jed).exit_code, 0);
  const auto schedule = io::load_schedule_xml(jed);
  EXPECT_GT(schedule.tasks().size(), 10u);
  EXPECT_EQ(schedule.meta_value("algorithm"), "CPA");
  std::remove(jed.c_str());
}

TEST(Cli, DemoRejectsUnknownName) {
  const auto r = run_cli("demo not-a-demo");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unknown demo"), std::string::npos);
}

TEST(Cli, ProfileChartExport) {
  const std::string schedule = make_schedule_file();
  const std::string out = temp_path("cli_profile.png");
  const auto r = run_cli("profile " + schedule + " --out " + out);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(io::read_file(out).substr(1, 3), "PNG");
  std::remove(out.c_str());
  EXPECT_EQ(run_cli("profile " + schedule).exit_code, 1);  // missing --out
}

TEST(Cli, RenderTypeFilter) {
  const std::string schedule = make_schedule_file();
  const std::string all = temp_path("cli_all.ppm");
  const std::string filtered = temp_path("cli_filtered.ppm");
  ASSERT_EQ(run_cli("render " + schedule + " --out " + all).exit_code, 0);
  ASSERT_EQ(run_cli("render " + schedule + " --out " + filtered +
                    " --types computation")
                .exit_code,
            0);
  EXPECT_NE(io::read_file(all), io::read_file(filtered));
}

}  // namespace
