#include "jedule/xml/xml.hpp"

#include <gtest/gtest.h>

#include "jedule/util/error.hpp"

namespace jedule::xml {
namespace {

TEST(Parse, SimpleElement) {
  const auto doc = parse("<root/>");
  EXPECT_EQ(doc.root->name(), "root");
  EXPECT_TRUE(doc.root->children().empty());
  EXPECT_TRUE(doc.root->text().empty());
}

TEST(Parse, AttributesBothQuoteStyles) {
  const auto doc = parse(R"(<a x="1" y='two'/>)");
  EXPECT_EQ(doc.root->attr("x"), "1");
  EXPECT_EQ(doc.root->attr("y"), "two");
  EXPECT_FALSE(doc.root->attr("z").has_value());
}

TEST(Parse, NestedChildrenInOrder) {
  const auto doc = parse("<a><b/><c/><b/></a>");
  ASSERT_EQ(doc.root->children().size(), 3u);
  EXPECT_EQ(doc.root->children()[0]->name(), "b");
  EXPECT_EQ(doc.root->children()[1]->name(), "c");
  EXPECT_EQ(doc.root->children_named("b").size(), 2u);
  EXPECT_EQ(doc.root->first_child("c")->name(), "c");
  EXPECT_EQ(doc.root->first_child("missing"), nullptr);
}

TEST(Parse, TextContentTrimmed) {
  const auto doc = parse("<a>  hello world  </a>");
  EXPECT_EQ(doc.root->text(), "hello world");
}

TEST(Parse, EntityDecoding) {
  const auto doc = parse("<a t=\"&lt;&amp;&gt;\">&quot;x&apos;</a>");
  EXPECT_EQ(doc.root->attr("t"), "<&>");
  EXPECT_EQ(doc.root->text(), "\"x'");
}

TEST(Parse, NumericCharacterReferences) {
  const auto doc = parse("<a>&#65;&#x42;</a>");
  EXPECT_EQ(doc.root->text(), "AB");
}

TEST(Parse, NumericReferenceUtf8) {
  const auto doc = parse("<a>&#233;</a>");  // e-acute
  EXPECT_EQ(doc.root->text(), "\xC3\xA9");
}

TEST(Parse, CdataIsVerbatim) {
  const auto doc = parse("<a><![CDATA[<not-xml> & stuff]]></a>");
  EXPECT_EQ(doc.root->text(), "<not-xml> & stuff");
}

TEST(Parse, CommentsIgnoredEverywhere) {
  const auto doc = parse(
      "<!-- head --><a><!-- inner --><b/><!-- tail --></a><!-- post -->");
  EXPECT_EQ(doc.root->children().size(), 1u);
}

TEST(Parse, DeclarationAndDoctypeSkipped) {
  const auto doc = parse(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!DOCTYPE jedule SYSTEM \"jedule.dtd\">\n"
      "<jedule/>");
  EXPECT_EQ(doc.root->name(), "jedule");
}

TEST(Parse, SourceLinesTracked) {
  const auto doc = parse("<a>\n  <b/>\n  <c/>\n</a>");
  EXPECT_EQ(doc.root->source_line(), 1);
  EXPECT_EQ(doc.root->children()[0]->source_line(), 2);
  EXPECT_EQ(doc.root->children()[1]->source_line(), 3);
}

TEST(Parse, ErrorsCarryLineNumbers) {
  try {
    parse("<a>\n<b>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

struct BadInput {
  const char* name;
  const char* text;
};

class ParseRejects : public ::testing::TestWithParam<BadInput> {};

TEST_P(ParseRejects, Throws) {
  EXPECT_THROW(parse(GetParam().text), ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParseRejects,
    ::testing::Values(
        BadInput{"empty", ""},
        BadInput{"mismatched_close", "<a></b>"},
        BadInput{"unterminated", "<a><b></b>"},
        BadInput{"trailing_content", "<a/><b/>"},
        BadInput{"duplicate_attr", "<a x='1' x='2'/>"},
        BadInput{"unknown_entity", "<a>&nope;</a>"},
        BadInput{"bad_charref", "<a>&#xZZ;</a>"},
        BadInput{"lt_in_attr", "<a x='<'/>"},
        BadInput{"unterminated_comment", "<!-- oops <a/>"},
        BadInput{"unterminated_cdata", "<a><![CDATA[x</a>"},
        BadInput{"doctype_subset", "<!DOCTYPE a [<!ENTITY x 'y'>]><a/>"},
        BadInput{"unquoted_attr", "<a x=1/>"},
        BadInput{"bare_text", "hello"}),
    [](const auto& info) { return info.param.name; });

TEST(Element, RequireAttrThrowsWithContext) {
  const auto doc = parse("<node/>");
  EXPECT_THROW(doc.root->require_attr("id"), ParseError);
}

TEST(Element, SetAttrReplaces) {
  Element e("x");
  e.set_attr("k", "1");
  e.set_attr("k", "2");
  EXPECT_EQ(e.attr("k"), "2");
  EXPECT_EQ(e.attributes().size(), 1u);
}

TEST(Serialize, RoundTripsStructure) {
  Element root("jedule");
  root.set_attr("version", "1.0");
  auto& meta = root.add_child("meta");
  meta.set_attr("name", "a<b");
  meta.set_attr("value", "\"quoted\"");
  root.add_child("empty");
  auto& text_el = root.add_child("label");
  text_el.set_text("x & y");

  const std::string xml = serialize(root);
  const auto doc = parse(xml);
  EXPECT_EQ(doc.root->name(), "jedule");
  EXPECT_EQ(doc.root->attr("version"), "1.0");
  EXPECT_EQ(doc.root->first_child("meta")->attr("name"), "a<b");
  EXPECT_EQ(doc.root->first_child("meta")->attr("value"), "\"quoted\"");
  EXPECT_EQ(doc.root->first_child("label")->text(), "x & y");
  EXPECT_TRUE(doc.root->first_child("empty")->children().empty());
}

TEST(Serialize, DeterministicOutput) {
  Element root("a");
  root.add_child("b").set_attr("k", "v");
  EXPECT_EQ(serialize(root), serialize(root));
}

TEST(ParseFile, MissingFileThrowsIoError) {
  EXPECT_THROW(parse_file("/nonexistent/definitely_not_here.xml"), IoError);
}

}  // namespace
}  // namespace jedule::xml
