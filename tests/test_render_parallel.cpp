// Determinism of the multithreaded render/export pipeline: every stage —
// composite sweep, banded rasterization, deflate/zlib, PNG framing — must
// produce byte-identical output for every thread count. Golden-image style
// checks run on the paper's Fig. 3 schedule and on the synthetic Fig. 13
// Thunder-day workload.

#include <gtest/gtest.h>

#include <cstdlib>

#include "jedule/model/builder.hpp"
#include "jedule/model/composite.hpp"
#include "jedule/render/deflate.hpp"
#include "jedule/render/exporter.hpp"
#include "jedule/render/export.hpp"
#include "jedule/util/inflate.hpp"
#include "jedule/render/png.hpp"
#include "jedule/util/parallel.hpp"
#include "jedule/util/rng.hpp"
#include "jedule/workload/thunder.hpp"
#include "jedule/workload/trace_schedule.hpp"

namespace jedule::render {
namespace {

const int kThreadCounts[] = {2, 8};

// Paper Fig. 3: an 8-host cluster where a 4-processor transfer overlaps the
// tail of an 8-processor computation, producing one composite task.
model::Schedule fig3_schedule() {
  return model::ScheduleBuilder()
      .cluster(0, "cluster-0", 8)
      .task("1", "computation", 0.0, 0.31)
      .on(0, 0, 8)
      .task("2", "transfer", 0.25, 0.50)
      .on(0, 2, 4)
      .build();
}

// Paper Fig. 13: the synthetic LLNL Thunder day (834 jobs, 1024 nodes).
model::Schedule fig13_schedule() {
  const auto trace = workload::generate_thunder_day();
  return workload::trace_to_schedule(trace).schedule;
}

RenderOptions options_with_threads(int threads, int width = 640,
                                   int height = 400) {
  RenderOptions options;
  options.style.width = width;
  options.style.height = height;
  options.threads = threads;
  return options;
}

TEST(ParallelRender, Fig3PngAndPpmAreThreadCountInvariant) {
  const auto schedule = fig3_schedule();
  const std::string png1 =
      render_to_bytes(schedule, options_with_threads(1), "png");
  const std::string ppm1 =
      render_to_bytes(schedule, options_with_threads(1), "ppm");
  for (int threads : kThreadCounts) {
    EXPECT_EQ(render_to_bytes(schedule, options_with_threads(threads), "png"),
              png1)
        << threads << " threads";
    EXPECT_EQ(render_to_bytes(schedule, options_with_threads(threads), "ppm"),
              ppm1)
        << threads << " threads";
  }
}

TEST(ParallelRender, Fig13ThunderDayIsThreadCountInvariant) {
  const auto schedule = fig13_schedule();
  auto options = options_with_threads(1, 960, 540);
  options.style.show_labels = false;
  options.style.show_composites = false;
  const std::string png1 = render_to_bytes(schedule, options, "png");
  for (int threads : kThreadCounts) {
    options.threads = threads;
    EXPECT_EQ(render_to_bytes(schedule, options, "png"), png1)
        << threads << " threads";
  }
}

TEST(ParallelRender, BandedRasterMatchesSerialPixels) {
  const auto schedule = fig3_schedule();
  const auto serial = render_raster(schedule, options_with_threads(1));
  for (int threads : kThreadCounts) {
    const auto banded =
        render_raster(schedule, options_with_threads(threads));
    ASSERT_EQ(banded.width(), serial.width());
    ASSERT_EQ(banded.height(), serial.height());
    EXPECT_EQ(banded.pixels(), serial.pixels()) << threads << " threads";
  }
  // More workers than pixel rows clamps to one band per row.
  const auto tall =
      render_raster(schedule, options_with_threads(500, 160, 120));
  const auto tall1 = render_raster(schedule, options_with_threads(1, 160, 120));
  EXPECT_EQ(tall.pixels(), tall1.pixels());
}

TEST(ParallelRender, EncodePngIsThreadCountInvariant) {
  const auto fb = render_raster(fig3_schedule(), options_with_threads(1));
  const std::string serial = encode_png(fb, 1);
  for (int threads : kThreadCounts) {
    EXPECT_EQ(encode_png(fb, threads), serial) << threads << " threads";
  }
  const auto decoded = decode_png(serial);
  EXPECT_EQ(decoded.width(), fb.width());
  EXPECT_EQ(decoded.height(), fb.height());
}

std::vector<std::uint8_t> mixed_test_data(std::size_t size) {
  // Compressible runs interleaved with noise, spanning several 256 KiB
  // deflate chunks so the parallel path is actually exercised.
  util::Rng rng(7);
  std::vector<std::uint8_t> data(size);
  std::size_t i = 0;
  while (i < size) {
    const std::size_t run = std::min<std::size_t>(
        size - i, static_cast<std::size_t>(1 + rng.uniform_int(0, 600)));
    if (rng.uniform_int(0, 3) == 0) {
      for (std::size_t k = 0; k < run; ++k) {
        data[i + k] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
    } else {
      const auto byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      for (std::size_t k = 0; k < run; ++k) data[i + k] = byte;
    }
    i += run;
  }
  return data;
}

TEST(ParallelDeflate, MultiChunkStreamsAreThreadCountInvariant) {
  const auto data = mixed_test_data((1u << 18) * 3 + 12345);
  const auto serial = deflate_compress(data.data(), data.size(), 1);
  const auto zserial =
      zlib_compress(data.data(), data.size(), DeflateStrategy::dynamic, 1);
  for (int threads : kThreadCounts) {
    EXPECT_EQ(deflate_compress(data.data(), data.size(), threads), serial)
        << threads << " threads";
    EXPECT_EQ(zlib_compress(data.data(), data.size(),
                            DeflateStrategy::dynamic, threads),
              zserial)
        << threads << " threads";
  }
  // And the stitched stream still decodes to the input.
  EXPECT_EQ(util::inflate_decompress(serial.data(), serial.size()), data);
  EXPECT_EQ(util::zlib_decompress(zserial.data(), zserial.size()), data);
}

TEST(ParallelDeflate, ChecksumCombineMatchesDirect) {
  const auto data = mixed_test_data(100000);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{517},
                            data.size() / 2, data.size() - 1, data.size()}) {
    const auto* head = data.data();
    const auto* tail = data.data() + split;
    const std::size_t tail_len = data.size() - split;
    EXPECT_EQ(adler32_combine(adler32(head, split), adler32(tail, tail_len),
                              tail_len),
              adler32(data.data(), data.size()))
        << "split " << split;
    EXPECT_EQ(crc32_combine(crc32(head, split), crc32(tail, tail_len),
                            tail_len),
              crc32(data.data(), data.size()))
        << "split " << split;
  }
}

TEST(ParallelDeflate, Crc32ParallelMatchesSerial) {
  const auto data = mixed_test_data((1u << 18) * 2 + 999);
  const auto expected = crc32(data.data(), data.size());
  for (int threads : {1, 2, 8}) {
    EXPECT_EQ(crc32_parallel(data.data(), data.size(), threads), expected)
        << threads << " threads";
  }
}

TEST(ParallelComposite, SweepIsThreadCountInvariant) {
  // Several clusters with overlapping multi-host tasks → multiple resources
  // per shard and composites crossing host boundaries.
  model::ScheduleBuilder builder;
  util::Rng rng(3);
  for (int c = 0; c < 4; ++c) builder.cluster(c, "c" + std::to_string(c), 16);
  int id = 0;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 40; ++i) {
      const double start = rng.uniform(0.0, 8.0);
      const int first = static_cast<int>(rng.uniform_int(0, 12));
      builder
          .task(std::to_string(id++), i % 2 ? "computation" : "transfer",
                start, start + rng.uniform(0.5, 3.0))
          .on(c, first, 1 + static_cast<int>(rng.uniform_int(0, 3)));
    }
  }
  const auto schedule = builder.build();
  const auto serial = model::synthesize_composites(schedule);
  ASSERT_FALSE(serial.empty());
  for (int threads : kThreadCounts) {
    const auto parallel =
        model::synthesize_composites(schedule, nullptr, threads);
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].task.id(), serial[i].task.id());
      EXPECT_EQ(parallel[i].member_ids, serial[i].member_ids);
      EXPECT_EQ(parallel[i].member_types, serial[i].member_types);
      EXPECT_DOUBLE_EQ(parallel[i].task.start_time(),
                       serial[i].task.start_time());
      EXPECT_DOUBLE_EQ(parallel[i].task.end_time(), serial[i].task.end_time());
    }
  }
}

TEST(ParallelFor, CoversEveryIndexOnceAndPropagatesExceptions) {
  std::vector<int> hits(1000, 0);
  util::parallel_for(hits.size(), 8,
                     [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);

  EXPECT_THROW(util::parallel_for(64, 4,
                                  [](std::size_t i) {
                                    if (i == 17) throw std::runtime_error("x");
                                  }),
               std::runtime_error);
}

TEST(ParallelFor, ThreadResolutionHonorsEnvironment) {
  ASSERT_GE(util::hardware_threads(), 1);
  EXPECT_EQ(util::resolve_threads(5), 5);
  ::setenv("JEDULE_THREADS", "3", 1);
  EXPECT_EQ(util::resolve_threads(0), 3);
  ::setenv("JEDULE_THREADS", "garbage", 1);
  EXPECT_EQ(util::resolve_threads(0), util::hardware_threads());
  ::unsetenv("JEDULE_THREADS");
  EXPECT_EQ(util::resolve_threads(0), util::hardware_threads());
  EXPECT_EQ(util::resolve_threads(-2), util::hardware_threads());
}

}  // namespace
}  // namespace jedule::render
