#include "jedule/render/tile_cache.hpp"

#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

#include "jedule/color/colormap.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/model/task_index.hpp"

namespace jedule::render {
namespace {

// Style geometry note: with width=1000 the panels span x in [56, 986), so
// the pixel grid has exactly 930 columns. A window of length 930 makes
// 1 pixel == 1 time unit, so pans by whole numbers land on pixel columns
// and must be pure cache hits.
constexpr double kCols = 930.0;

model::Schedule demo_schedule(int n = 200, unsigned seed = 42) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> start(0.0, 2 * kCols);
  std::uniform_real_distribution<double> dur(5.0, 120.0);
  std::uniform_int_distribution<int> host(0, 6);
  std::uniform_int_distribution<int> span(1, 2);
  model::ScheduleBuilder b;
  b.cluster(0, "c0", 8);
  for (int i = 0; i < n; ++i) {
    const double s = start(rng);
    b.task(std::to_string(i), i % 2 ? "computation" : "transfer", s,
           s + dur(rng));
    b.on(0, host(rng), span(rng));
  }
  return b.build();
}

GanttStyle base_style() {
  GanttStyle style;
  style.width = 1000;
  style.height = 400;
  return style;
}

TileCache::Request request(const model::Schedule& s,
                           const color::ColorMap& cmap,
                           const model::TaskIndex& index,
                           const GanttStyle& style, double t0, double t1) {
  TileCache::Request req;
  req.schedule = &s;
  req.colormap = &cmap;
  req.style = style;
  req.style.time_window = model::TimeRange{t0, t1};
  req.index = &index;
  req.validated = true;
  return req;
}

TEST(TileCache, ColdFrameMissesThenRepeatHits) {
  const auto s = demo_schedule();
  const auto cmap = color::standard_colormap();
  const model::TaskIndex index(s);
  TileCache cache;
  const auto f1 =
      cache.render_frame(request(s, cmap, index, base_style(), 0, kCols));
  EXPECT_GT(cache.last_frame().tiles_missed, 0u);
  EXPECT_EQ(cache.last_frame().tiles_hit, 0u);
  const auto f2 =
      cache.render_frame(request(s, cmap, index, base_style(), 0, kCols));
  EXPECT_EQ(cache.last_frame().tiles_missed, 0u);
  EXPECT_EQ(cache.last_frame().tiles_hit, cache.last_frame().tiles_total);
  EXPECT_EQ(f1, f2);
}

TEST(TileCache, PixelAlignedPanReusesTilesAndMatchesColdRender) {
  const auto s = demo_schedule();
  const auto cmap = color::standard_colormap();
  const model::TaskIndex index(s);
  TileCache cache;
  (void)cache.render_frame(request(s, cmap, index, base_style(), 0, kCols));

  // Pan right by 96 px: interior tiles stay valid, only the exposed strip
  // re-rasterizes.
  const auto warm =
      cache.render_frame(request(s, cmap, index, base_style(), 96, 96 + kCols));
  EXPECT_GT(cache.last_frame().tiles_hit, 0u);
  EXPECT_LT(cache.last_frame().tiles_missed, cache.last_frame().tiles_total);

  // Byte-identity: clear() drops tiles but keeps the pixel grid, so the
  // re-render is a cold frame of the *same* grid.
  cache.clear();
  const auto cold =
      cache.render_frame(request(s, cmap, index, base_style(), 96, 96 + kCols));
  EXPECT_EQ(cache.last_frame().tiles_hit, 0u);
  EXPECT_EQ(warm, cold);
}

TEST(TileCache, ManySmallPansStayByteIdentical) {
  const auto s = demo_schedule();
  const auto cmap = color::standard_colormap();
  const model::TaskIndex index(s);
  TileCache cache;
  double t0 = 0;
  (void)cache.render_frame(request(s, cmap, index, base_style(), t0, t0 + kCols));
  for (int step = 0; step < 8; ++step) {
    t0 += 17;  // deliberately not a multiple of the tile width
    const auto warm =
        cache.render_frame(request(s, cmap, index, base_style(), t0, t0 + kCols));
    TileCache fresh;
    const auto ref_warmup =
        fresh.render_frame(request(s, cmap, index, base_style(), 0, kCols));
    (void)ref_warmup;  // anchor the fresh cache's grid at the same origin
    const auto ref =
        fresh.render_frame(request(s, cmap, index, base_style(), t0, t0 + kCols));
    ASSERT_EQ(warm, ref) << "pan step " << step;
  }
}

TEST(TileCache, ZoomResetsGridAndStillMatchesColdRender) {
  const auto s = demo_schedule();
  const auto cmap = color::standard_colormap();
  const model::TaskIndex index(s);
  TileCache cache;
  (void)cache.render_frame(request(s, cmap, index, base_style(), 0, kCols));
  const auto zoomed =
      cache.render_frame(request(s, cmap, index, base_style(), 0, kCols / 2));
  EXPECT_GT(cache.last_frame().invalidations, 0u);
  EXPECT_EQ(cache.last_frame().tiles_hit, 0u);

  cache.clear();
  const auto cold =
      cache.render_frame(request(s, cmap, index, base_style(), 0, kCols / 2));
  EXPECT_EQ(zoomed, cold);
}

TEST(TileCache, ContentChangeInvalidates) {
  const auto a = demo_schedule(100, 1);
  const auto b = demo_schedule(100, 2);
  const auto cmap = color::standard_colormap();
  const model::TaskIndex ia(a), ib(b);
  TileCache cache;
  (void)cache.render_frame(request(a, cmap, ia, base_style(), 0, kCols));
  (void)cache.render_frame(request(b, cmap, ib, base_style(), 0, kCols));
  EXPECT_GT(cache.last_frame().invalidations, 0u);
  EXPECT_EQ(cache.last_frame().tiles_hit, 0u);
}

TEST(TileCache, StyleChangeInvalidates) {
  const auto s = demo_schedule();
  const auto cmap = color::standard_colormap();
  const model::TaskIndex index(s);
  TileCache cache;
  (void)cache.render_frame(request(s, cmap, index, base_style(), 0, kCols));
  auto style = base_style();
  style.show_grid = false;
  (void)cache.render_frame(request(s, cmap, index, style, 0, kCols));
  EXPECT_EQ(cache.last_frame().tiles_hit, 0u);
}

TEST(TileCache, LruEvictionIsBoundedAndCounted) {
  const auto s = demo_schedule();
  const auto cmap = color::standard_colormap();
  const model::TaskIndex index(s);
  TileCache::Options opt;
  opt.tile_width = 128;
  opt.max_tiles = 4;  // a 930-px frame needs 8-9 tiles
  TileCache cache(opt);
  double t0 = 0;
  for (int i = 0; i < 6; ++i) {
    (void)cache.render_frame(request(s, cmap, index, base_style(), t0, t0 + kCols));
    t0 += 256;
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  // Never below what a single frame needs, never unboundedly above it.
  EXPECT_LE(cache.tile_count(), cache.last_frame().tiles_total);
}

TEST(TileCache, HatchedCompositesBypassTheCache) {
  const auto s = demo_schedule();
  const auto cmap = color::standard_colormap();
  const model::TaskIndex index(s);
  TileCache cache;
  auto style = base_style();
  style.hatch_composites = true;
  (void)cache.render_frame(request(s, cmap, index, style, 0, kCols));
  EXPECT_FALSE(cache.last_frame().cached);
  EXPECT_EQ(cache.tile_count(), 0u);
}

TEST(TileCache, ConcurrentCachesShareOneIndex) {
  // The index is immutable and shared read-only; each thread owns its
  // cache. Run under -L tsan to prove the sharing is race-free.
  const auto s = demo_schedule(400, 3);
  const auto cmap = color::standard_colormap();
  const model::TaskIndex index(s);
  std::vector<std::thread> workers;
  std::vector<int> ok(4, 0);
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      TileCache::Options opt;
      opt.threads = 2;
      TileCache cache(opt);
      double t0 = 40.0 * w;
      for (int i = 0; i < 5; ++i) {
        const auto fb =
            cache.render_frame(request(s, cmap, index, base_style(), t0, t0 + kCols));
        if (fb.width() == 1000) ++ok[w];
        t0 += 31;
      }
    });
  }
  for (auto& t : workers) t.join();
  for (int w = 0; w < 4; ++w) EXPECT_EQ(ok[w], 5);
}

}  // namespace
}  // namespace jedule::render
