#include "jedule/render/framebuffer.hpp"

#include <gtest/gtest.h>

#include <climits>

namespace jedule::render {
namespace {

TEST(Framebuffer, StartsWithBackground) {
  const Framebuffer fb(4, 3, Color{9, 8, 7, 255});
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_EQ(fb.pixel(x, y), (Color{9, 8, 7, 255}));
    }
  }
}

TEST(Framebuffer, SetPixelClipsSilently) {
  Framebuffer fb(4, 4);
  fb.set_pixel(-1, 0, color::kBlack);
  fb.set_pixel(0, -1, color::kBlack);
  fb.set_pixel(4, 0, color::kBlack);
  fb.set_pixel(0, 4, color::kBlack);  // none of these may crash
  EXPECT_EQ(fb.pixel(0, 0), color::kWhite);
}

TEST(Framebuffer, AlphaBlending) {
  Framebuffer fb(2, 1, color::kBlack);
  fb.set_pixel(0, 0, Color{255, 255, 255, 128});
  EXPECT_NEAR(fb.pixel(0, 0).r, 128, 1);
  fb.set_pixel(1, 0, Color{255, 0, 0, 0});  // fully transparent: no-op
  EXPECT_EQ(fb.pixel(1, 0), color::kBlack);
}

TEST(FillRect, ExactCoverageAndClipping) {
  Framebuffer fb(8, 8);
  fb.fill_rect(2, 3, 3, 2, color::kBlack);
  int black = 0;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      if (fb.pixel(x, y) == color::kBlack) ++black;
    }
  }
  EXPECT_EQ(black, 6);
  EXPECT_EQ(fb.pixel(2, 3), color::kBlack);
  EXPECT_EQ(fb.pixel(4, 4), color::kBlack);
  EXPECT_EQ(fb.pixel(5, 4), color::kWhite);

  // Partially off-screen rectangles clip instead of crashing: covers
  // y in [-1, 2), so row 0 and 1 on-canvas.
  fb.fill_rect(-5, -1, 100, 3, Color{1, 1, 1, 255});
  EXPECT_EQ(fb.pixel(0, 0), (Color{1, 1, 1, 255}));
  EXPECT_EQ(fb.pixel(7, 1), (Color{1, 1, 1, 255}));
  EXPECT_EQ(fb.pixel(0, 2), color::kWhite);
}

TEST(DrawRect, OutlineOnly) {
  Framebuffer fb(6, 6);
  fb.draw_rect(1, 1, 4, 4, color::kBlack);
  EXPECT_EQ(fb.pixel(1, 1), color::kBlack);
  EXPECT_EQ(fb.pixel(4, 4), color::kBlack);
  EXPECT_EQ(fb.pixel(2, 2), color::kWhite);  // interior untouched
}

TEST(Lines, HorizontalVerticalAnyOrder) {
  Framebuffer fb(5, 5);
  fb.draw_hline(3, 1, 2, color::kBlack);  // reversed endpoints
  EXPECT_EQ(fb.pixel(1, 2), color::kBlack);
  EXPECT_EQ(fb.pixel(3, 2), color::kBlack);
  fb.draw_vline(0, 4, 2, color::kBlack);
  EXPECT_EQ(fb.pixel(0, 3), color::kBlack);
}

TEST(DrawLine, DiagonalEndpoints) {
  Framebuffer fb(10, 10);
  fb.draw_line(0, 0, 9, 9, color::kBlack);
  EXPECT_EQ(fb.pixel(0, 0), color::kBlack);
  EXPECT_EQ(fb.pixel(9, 9), color::kBlack);
  EXPECT_EQ(fb.pixel(5, 5), color::kBlack);
}

TEST(HatchRect, StaysInsideRectangle) {
  Framebuffer fb(12, 12);
  fb.hatch_rect(3, 3, 5, 5, 3, color::kBlack);
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 12; ++x) {
      const bool inside = x >= 3 && x < 8 && y >= 3 && y < 8;
      if (!inside) {
        EXPECT_EQ(fb.pixel(x, y), color::kWhite) << x << "," << y;
      }
    }
  }
  // And actually drew something.
  int black = 0;
  for (int y = 3; y < 8; ++y) {
    for (int x = 3; x < 8; ++x) {
      if (fb.pixel(x, y) == color::kBlack) ++black;
    }
  }
  EXPECT_GT(black, 0);
}

// Regression: x + w / y + h used to overflow int for near-INT_MAX extents;
// the clip now happens in 64-bit, so these fill to the canvas edge.
TEST(FillRect, NearIntMaxExtentsClampInsteadOfOverflowing) {
  Framebuffer fb(20, 10);
  fb.fill_rect(5, 4, INT_MAX, INT_MAX, color::kBlack);
  EXPECT_EQ(fb.pixel(5, 4), color::kBlack);
  EXPECT_EQ(fb.pixel(19, 9), color::kBlack);
  EXPECT_EQ(fb.pixel(4, 4), color::kWhite);
  EXPECT_EQ(fb.pixel(5, 3), color::kWhite);

  Framebuffer whole(20, 10);
  whole.fill_rect(-10, -10, INT_MAX, INT_MAX, color::kBlack);
  for (int y = 0; y < 10; ++y) {
    for (int x = 0; x < 20; ++x) {
      EXPECT_EQ(whole.pixel(x, y), color::kBlack) << x << "," << y;
    }
  }

  // Entirely to the right of a canvas whose width the sum overflows past.
  Framebuffer off(20, 10);
  off.fill_rect(INT_MAX - 3, 0, INT_MAX, INT_MAX, color::kBlack);
  EXPECT_EQ(off.pixel(19, 0), color::kWhite);
}

TEST(DrawRect, NearIntMaxExtentsDrawTheVisibleEdges) {
  Framebuffer fb(20, 10);
  fb.draw_rect(2, 3, INT_MAX, INT_MAX, color::kBlack);
  // Far edges land off-canvas; the top and left edges clip to the canvas.
  EXPECT_EQ(fb.pixel(2, 3), color::kBlack);
  EXPECT_EQ(fb.pixel(19, 3), color::kBlack);  // top edge
  EXPECT_EQ(fb.pixel(2, 9), color::kBlack);   // left edge
  EXPECT_EQ(fb.pixel(3, 4), color::kWhite);   // interior untouched
}

// Off-canvas lines are rejected up front (they used to walk every
// coordinate through bounds-checked set_pixel) and partially visible
// lines clip to the same pixels as before.
TEST(Lines, ClipOnceUpFront) {
  Framebuffer fb(20, 10);
  const Framebuffer before = fb;
  fb.draw_hline(INT_MIN, INT_MAX, -1, color::kBlack);
  fb.draw_hline(INT_MIN, INT_MAX, 10, color::kBlack);
  fb.draw_vline(-1, INT_MIN, INT_MAX, color::kBlack);
  fb.draw_vline(20, INT_MIN, INT_MAX, color::kBlack);
  fb.draw_line(-100, -5, -3, -50, color::kBlack);
  fb.draw_line(25, 0, 100, 9, color::kBlack);
  EXPECT_TRUE(fb == before);

  fb.draw_hline(-100, 100, 5, color::kBlack);
  for (int x = 0; x < 20; ++x) EXPECT_EQ(fb.pixel(x, 5), color::kBlack);
  fb.draw_vline(7, -100, 100, color::kBlack);
  for (int y = 0; y < 10; ++y) EXPECT_EQ(fb.pixel(7, y), color::kBlack);
}

TEST(Lines, AxisAlignedDrawLineMatchesHlineVline) {
  Framebuffer via_line(20, 10);
  Framebuffer via_span(20, 10);
  const Color veil{30, 60, 90, 140};  // translucent: blend count matters
  via_line.draw_line(-5, 4, 30, 4, veil);
  via_span.draw_hline(-5, 30, 4, veil);
  EXPECT_TRUE(via_line == via_span);
  via_line.draw_line(3, 100, 3, -2, veil);
  via_span.draw_vline(3, 100, -2, veil);
  EXPECT_TRUE(via_line == via_span);
}

TEST(Framebuffer, EqualityComparesPixels) {
  Framebuffer a(3, 3);
  Framebuffer b(3, 3);
  EXPECT_TRUE(a == b);
  b.set_pixel(1, 1, color::kBlack);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace jedule::render
