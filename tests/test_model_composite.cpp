#include "jedule/model/composite.hpp"

#include <gtest/gtest.h>

#include <set>

#include "jedule/model/builder.hpp"
#include "jedule/model/task_index.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::model {
namespace {

Schedule overlap_pair() {
  // Paper Fig. 3 scenario: computation on hosts 0-7, transfer on 2-5
  // overlapping its tail.
  return ScheduleBuilder()
      .cluster(0, "c", 8)
      .task("1", "computation", 0.0, 0.31)
      .on(0, 0, 8)
      .task("2", "transfer", 0.25, 0.50)
      .on(0, 2, 4)
      .build();
}

TEST(Composite, NoOverlapNoComposites) {
  const Schedule s = ScheduleBuilder()
                         .cluster(0, "c", 2)
                         .task("1", "t", 0, 1)
                         .on(0, 0, 1)
                         .task("2", "t", 0, 1)
                         .on(0, 1, 1)
                         .build();
  EXPECT_TRUE(synthesize_composites(s).empty());
  EXPECT_FALSE(has_resource_conflicts(s));
}

TEST(Composite, TouchingIntervalsDoNotOverlap) {
  const Schedule s = ScheduleBuilder()
                         .cluster(0, "c", 1)
                         .task("1", "t", 0, 1)
                         .on(0, 0, 1)
                         .task("2", "t", 1, 2)
                         .on(0, 0, 1)
                         .build();
  EXPECT_TRUE(synthesize_composites(s).empty());
}

TEST(Composite, PairOverlapGeometry) {
  const auto composites = synthesize_composites(overlap_pair());
  ASSERT_EQ(composites.size(), 1u);
  const Composite& c = composites[0];
  EXPECT_EQ(c.task.id(), "1+2");
  EXPECT_EQ(c.task.type(), "composite");
  EXPECT_DOUBLE_EQ(c.task.start_time(), 0.25);
  EXPECT_DOUBLE_EQ(c.task.end_time(), 0.31);
  ASSERT_EQ(c.task.configurations().size(), 1u);
  const auto& cfg = c.task.configurations()[0];
  ASSERT_EQ(cfg.hosts.size(), 1u);
  EXPECT_EQ(cfg.hosts[0], (HostRange{2, 4}));
  EXPECT_EQ(c.member_ids, (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(c.member_types,
            (std::set<std::string>{"computation", "transfer"}));
}

TEST(Composite, ThreeWayOverlapSplitsByMemberSet) {
  // a: [0,10), b: [4,6), c: [5,8) on one host -> member sets change at
  // 4, 5, 6, 8.
  const Schedule s = ScheduleBuilder()
                         .cluster(0, "c", 1)
                         .task("a", "t", 0, 10)
                         .on(0, 0, 1)
                         .task("b", "t", 4, 6)
                         .on(0, 0, 1)
                         .task("c", "t", 5, 8)
                         .on(0, 0, 1)
                         .build();
  auto composites = synthesize_composites(s);
  ASSERT_EQ(composites.size(), 3u);
  std::map<std::string, std::pair<double, double>> by_id;
  for (const auto& comp : composites) {
    by_id[comp.task.id()] = {comp.task.start_time(), comp.task.end_time()};
  }
  EXPECT_EQ(by_id.at("a+b"), (std::pair<double, double>{4, 5}));
  EXPECT_EQ(by_id.at("a+b+c"), (std::pair<double, double>{5, 6}));
  EXPECT_EQ(by_id.at("a+c"), (std::pair<double, double>{6, 8}));
}

TEST(Composite, AdjacentHostsMergeIntoRanges) {
  const Schedule s = ScheduleBuilder()
                         .cluster(0, "c", 4)
                         .task("1", "t", 0, 2)
                         .on(0, 0, 4)
                         .task("2", "t", 1, 3)
                         .on(0, 1, 2)
                         .build();
  const auto composites = synthesize_composites(s);
  ASSERT_EQ(composites.size(), 1u);
  const auto& cfg = composites[0].task.configurations()[0];
  ASSERT_EQ(cfg.hosts.size(), 1u);
  EXPECT_EQ(cfg.hosts[0], (HostRange{1, 2}));
}

TEST(Composite, DisjointHostGroupsStaySeparate) {
  // Overlap on hosts 0 and 2 but not 1 -> one composite with two ranges.
  const Schedule s = ScheduleBuilder()
                         .cluster(0, "c", 3)
                         .task("1", "t", 0, 2)
                         .hosts(0, {0, 2})
                         .task("2", "t", 1, 3)
                         .hosts(0, {0, 2})
                         .build();
  const auto composites = synthesize_composites(s);
  ASSERT_EQ(composites.size(), 1u);
  const auto& cfg = composites[0].task.configurations()[0];
  ASSERT_EQ(cfg.hosts.size(), 2u);
  EXPECT_EQ(cfg.hosts[0], (HostRange{0, 1}));
  EXPECT_EQ(cfg.hosts[1], (HostRange{2, 1}));
}

TEST(Composite, ClustersNeverMerge) {
  // Identical overlaps in two clusters stay two composite tasks.
  const Schedule s = ScheduleBuilder()
                         .cluster(0, "c0", 1)
                         .cluster(1, "c1", 1)
                         .task("1", "t", 0, 2)
                         .on(0, 0, 1)
                         .on(1, 0, 1)
                         .task("2", "t", 1, 3)
                         .on(0, 0, 1)
                         .on(1, 0, 1)
                         .build();
  EXPECT_EQ(synthesize_composites(s).size(), 2u);
}

TEST(Composite, ZeroDurationTasksIgnored) {
  const Schedule s = ScheduleBuilder()
                         .cluster(0, "c", 1)
                         .task("1", "t", 0, 2)
                         .on(0, 0, 1)
                         .task("marker", "t", 1, 1)
                         .on(0, 0, 1)
                         .build();
  EXPECT_TRUE(synthesize_composites(s).empty());
}

TEST(Composite, FilterSelectsParticipants) {
  const Schedule s = overlap_pair();
  const auto only_compute = synthesize_composites(
      s, [](const Task& t) { return t.type() == "computation"; });
  EXPECT_TRUE(only_compute.empty());
  EXPECT_FALSE(has_resource_conflicts(
      s, [](const Task& t) { return t.type() == "computation"; }));
  EXPECT_TRUE(has_resource_conflicts(s));
}

TEST(WithComposites, AppendsValidTasksWithProperties) {
  const Schedule s = with_composites(overlap_pair());
  EXPECT_EQ(s.tasks().size(), 3u);
  const Task* comp = s.find_task("1+2");
  ASSERT_NE(comp, nullptr);
  EXPECT_EQ(comp->property("members"), "1,2");
  EXPECT_EQ(comp->property("member_types"), "computation,transfer");
  EXPECT_NO_THROW(s.validate());
}

TEST(WithComposites, DisambiguatesRepeatedMemberSets) {
  // The same pair overlaps twice in disjoint time windows -> two composite
  // tasks whose natural ids collide; validate() requires uniqueness.
  const Schedule s = with_composites(ScheduleBuilder()
                                         .cluster(0, "c", 1)
                                         .task("1", "t", 0, 2)
                                         .on(0, 0, 1)
                                         .task("2", "t", 1, 4)
                                         .on(0, 0, 1)
                                         .task("3", "t", 3, 6)
                                         .on(0, 0, 1)
                                         .build());
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.tasks().size(), 5u);  // 3 tasks + 2 composites
}

// Property test: on random single-cluster schedules, composites cover
// exactly the multi-occupied instants (checked by dense sampling).
class CompositeProperty : public ::testing::TestWithParam<int> {};

TEST_P(CompositeProperty, CoversExactlyMultiOccupiedRegions) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int hosts = 6;
  ScheduleBuilder builder;
  builder.cluster(0, "c", hosts);
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    const double start = rng.uniform(0, 50);
    const double len = rng.uniform(1, 20);
    const int first = static_cast<int>(rng.uniform_int(0, hosts - 1));
    const int count =
        static_cast<int>(rng.uniform_int(1, hosts - first));
    builder.task("t" + std::to_string(i), "w", start, start + len)
        .on(0, first, count);
  }
  const Schedule s = builder.build();
  const auto composites = synthesize_composites(s);

  // Composites never overlap each other on any resource.
  {
    Schedule comp_only;
    comp_only.add_cluster(0, "c", hosts);
    int k = 0;
    for (const auto& comp : composites) {
      Task t = comp.task;
      t.set_id("comp" + std::to_string(k++));
      comp_only.add_task(std::move(t));
    }
    EXPECT_FALSE(has_resource_conflicts(comp_only));
  }

  // Dense sampling: composite coverage == (occupancy >= 2).
  for (double t = 0.25; t < 75.0; t += 1.37) {
    for (int h = 0; h < hosts; ++h) {
      int occupancy = 0;
      for (const auto& task : s.tasks()) {
        if (t < task.start_time() || t >= task.end_time()) continue;
        for (const auto& cfg : task.configurations()) {
          for (const auto& r : cfg.hosts) {
            if (h >= r.start && h < r.start + r.nb) ++occupancy;
          }
        }
      }
      int covered = 0;
      for (const auto& comp : composites) {
        if (t < comp.task.start_time() || t >= comp.task.end_time()) continue;
        for (const auto& cfg : comp.task.configurations()) {
          for (const auto& r : cfg.hosts) {
            if (h >= r.start && h < r.start + r.nb) ++covered;
          }
        }
      }
      EXPECT_EQ(covered, occupancy >= 2 ? 1 : 0)
          << "at t=" << t << " host=" << h << " occupancy=" << occupancy;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompositeProperty, ::testing::Range(1, 9));

// Differential: append_composites over any split/threads/filter must be
// indistinguishable from resweeping the whole schedule — the acceptance
// bar for the O(delta) live-trace path.
void expect_same_composites(const std::vector<Composite>& got,
                            const std::vector<Composite>& want,
                            const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const Composite& g = got[i];
    const Composite& w = want[i];
    EXPECT_EQ(g.task.id(), w.task.id()) << label << " #" << i;
    EXPECT_EQ(g.task.start_time(), w.task.start_time()) << label << " #" << i;
    EXPECT_EQ(g.task.end_time(), w.task.end_time()) << label << " #" << i;
    EXPECT_EQ(g.task.configurations().size(), w.task.configurations().size())
        << label << " #" << i;
    for (std::size_t c = 0;
         c < g.task.configurations().size() &&
         c < w.task.configurations().size();
         ++c) {
      EXPECT_EQ(g.task.configurations()[c].hosts,
                w.task.configurations()[c].hosts)
          << label << " #" << i;
    }
    EXPECT_EQ(g.member_ids, w.member_ids) << label << " #" << i;
    EXPECT_EQ(g.member_types, w.member_types) << label << " #" << i;
    EXPECT_EQ(g.member_indices, w.member_indices) << label << " #" << i;
  }
}

class CompositeAppend : public ::testing::TestWithParam<int> {};

TEST_P(CompositeAppend, ExtensionMatchesFullResweep) {
  util::Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
  const int hosts = 6;
  const int n = 24;
  struct Spec {
    std::string id, type;
    double start, end;
    int first, count;
  };
  std::vector<Spec> specs;
  for (int i = 0; i < n; ++i) {
    Spec s;
    s.id = "t" + std::to_string(i);
    s.type = i % 3 ? "computation" : "transfer";
    s.start = rng.uniform(0, 50);
    s.end = s.start + rng.uniform(1, 20);
    s.first = static_cast<int>(rng.uniform_int(0, hosts - 1));
    s.count = static_cast<int>(rng.uniform_int(1, hosts - s.first));
    specs.push_back(std::move(s));
  }
  auto build = [&](std::size_t count) {
    ScheduleBuilder builder;
    builder.cluster(0, "c", hosts);
    for (std::size_t i = 0; i < count; ++i) {
      builder.task(specs[i].id, specs[i].type, specs[i].start, specs[i].end)
          .on(0, specs[i].first, specs[i].count);
    }
    return builder.build();
  };

  const Schedule full = build(n);
  const TaskIndex index(full);
  const auto compute_only = [](const Task& t) {
    return t.type() == "computation";
  };

  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{8},
                            std::size_t{16}, std::size_t{23},
                            std::size_t{24}}) {
    const Schedule prefix = build(split);
    for (int threads : {1, 3}) {
      const std::string label = "split=" + std::to_string(split) +
                                " threads=" + std::to_string(threads);
      expect_same_composites(
          append_composites(full, index,
                            synthesize_composites(prefix, nullptr, threads),
                            split, nullptr, threads),
          synthesize_composites(full, nullptr, threads), label);
      // Same under a participation filter (the predicate the schedulers
      // use must thread through the cut logic unchanged).
      expect_same_composites(
          append_composites(full, index,
                            synthesize_composites(prefix, compute_only),
                            split, compute_only),
          synthesize_composites(full, compute_only), label + " filtered");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompositeAppend, ::testing::Range(1, 7));

}  // namespace
}  // namespace jedule::model
