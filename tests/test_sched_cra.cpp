#include "jedule/sched/cra.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "jedule/dag/generators.hpp"
#include "jedule/model/composite.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::sched {
namespace {

std::vector<dag::Dag> four_apps(std::uint64_t seed = 5) {
  util::Rng rng(seed);
  std::vector<dag::Dag> apps;
  apps.push_back(dag::fork_join_dag(3, 5, rng));
  apps.push_back(dag::long_dag(8, rng));
  apps.push_back(dag::wide_dag(6, rng));
  dag::LayeredDagOptions o;
  o.levels = 4;
  apps.push_back(layered_random(o, rng));
  return apps;
}

TEST(CraShares, SumToOne) {
  const auto apps = four_apps();
  for (const auto metric :
       {ShareMetric::kWork, ShareMetric::kWidth, ShareMetric::kEqual}) {
    for (double mu : {0.0, 0.3, 1.0}) {
      const auto beta = cra_shares(apps, metric, mu);
      EXPECT_NEAR(std::accumulate(beta.begin(), beta.end(), 0.0), 1.0, 1e-9);
      for (double b : beta) EXPECT_GT(b, 0.0);
    }
  }
}

TEST(CraShares, MuOneIsEqualSplit) {
  const auto apps = four_apps();
  const auto beta = cra_shares(apps, ShareMetric::kWork, 1.0);
  for (double b : beta) EXPECT_NEAR(b, 0.25, 1e-9);
}

TEST(CraShares, MuZeroIsPurelyProportional) {
  const auto apps = four_apps();
  double total_work = 0;
  std::vector<double> work;
  for (const auto& app : apps) {
    double w = 0;
    for (const auto& n : app.nodes()) w += n.work;
    work.push_back(w);
    total_work += w;
  }
  const auto beta = cra_shares(apps, ShareMetric::kWork, 0.0);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    EXPECT_NEAR(beta[i], work[i] / total_work, 1e-9);
  }
}

TEST(CraShares, WidthMetricUsesDagWidth) {
  const auto apps = four_apps();
  const auto beta = cra_shares(apps, ShareMetric::kWidth, 0.0);
  double total = 0;
  for (const auto& app : apps) total += app.width();
  for (std::size_t i = 0; i < apps.size(); ++i) {
    EXPECT_NEAR(beta[i], apps[i].width() / total, 1e-9);
  }
}

TEST(CraShares, Validation) {
  EXPECT_THROW(cra_shares({}, ShareMetric::kWork, 0.5), ArgumentError);
  EXPECT_THROW(cra_shares(four_apps(), ShareMetric::kWork, 1.5),
               ArgumentError);
}

TEST(ScheduleMultiDag, BlocksAreDisjointAndCoverTheCluster) {
  const auto apps = four_apps();
  const auto platform = platform::homogeneous_cluster(20);
  const auto result = schedule_multi_dag(apps, platform, {});

  ASSERT_EQ(result.apps.size(), 4u);
  std::set<int> used;
  int total = 0;
  for (const auto& app : result.apps) {
    EXPECT_GE(app.host_count, 1);
    for (int h = app.first_host; h < app.first_host + app.host_count; ++h) {
      EXPECT_TRUE(used.insert(h).second) << "host " << h << " shared";
    }
    total += app.host_count;
  }
  EXPECT_EQ(total, 20);
}

TEST(ScheduleMultiDag, ResourceConstraintsRespected) {
  // The Fig. 5 visual check, as an assertion: every task of app i stays
  // within app i's processor block.
  const auto apps = four_apps();
  const auto platform = platform::homogeneous_cluster(20);
  const auto result = schedule_multi_dag(apps, platform, {});

  for (const auto& task : result.schedule.tasks()) {
    const auto app_prop = task.property("app");
    ASSERT_TRUE(app_prop.has_value());
    const auto& app =
        result.apps[static_cast<std::size_t>(std::stoi(std::string(*app_prop)))];
    for (const auto& cfg : task.configurations()) {
      for (int h : cfg.host_list()) {
        EXPECT_GE(h, app.first_host);
        EXPECT_LT(h, app.first_host + app.host_count);
      }
    }
  }
  EXPECT_FALSE(model::has_resource_conflicts(result.schedule));
}

TEST(ScheduleMultiDag, StretchIsAtLeastOne) {
  // A share of the cluster can never beat having it dedicated.
  const auto apps = four_apps();
  const auto platform = platform::homogeneous_cluster(20);
  const auto result = schedule_multi_dag(apps, platform, {});
  for (const auto& app : result.apps) {
    EXPECT_GE(app.stretch, 1.0 - 1e-9);
    EXPECT_GT(app.dedicated, 0.0);
  }
  EXPECT_GE(result.max_stretch, 1.0 - 1e-9);
}

TEST(ScheduleMultiDag, TooManyAppsRejected) {
  util::Rng rng(1);
  std::vector<dag::Dag> apps;
  for (int i = 0; i < 5; ++i) apps.push_back(dag::serial_dag(2, rng));
  const auto platform = platform::homogeneous_cluster(4);
  EXPECT_THROW(schedule_multi_dag(apps, platform, {}), ArgumentError);
}

TEST(ScheduleMultiDag, MultiClusterRejected) {
  EXPECT_THROW(schedule_multi_dag(four_apps(),
                                  platform::heterogeneous_case_study(0.05),
                                  {}),
               ArgumentError);
}

TEST(ScheduleMultiDag, BackfillNeverDelaysAndReducesIdle) {
  const auto apps = four_apps();
  const auto platform = platform::homogeneous_cluster(20);

  CraOptions plain;
  const auto before = schedule_multi_dag(apps, platform, plain);
  CraOptions with;
  with.backfill = true;
  const auto after = schedule_multi_dag(apps, platform, with);

  EXPECT_LE(after.overall_makespan, before.overall_makespan + 1e-9);
  EXPECT_LE(after.idle_after_backfill, after.idle_before_backfill + 1e-9);
  EXPECT_DOUBLE_EQ(before.idle_after_backfill, before.idle_before_backfill);

  // "A comparison of the Jedule outputs with and without backfilling
  // allows for a check that no task is delayed by this step."
  for (const auto& task : after.schedule.tasks()) {
    const auto* original = before.schedule.find_task(task.id());
    ASSERT_NE(original, nullptr) << task.id();
    EXPECT_LE(task.start_time(), original->start_time() + 1e-9)
        << task.id() << " was delayed";
    EXPECT_NEAR(task.duration(), original->duration(), 1e-9);
  }
  EXPECT_FALSE(model::has_resource_conflicts(after.schedule));
}

TEST(ScheduleMultiDag, McpaInnerAlgorithmWorksToo) {
  const auto apps = four_apps();
  const auto platform = platform::homogeneous_cluster(20);
  CraOptions options;
  options.inner = MTaskAlgorithm::kMcpa;
  const auto result = schedule_multi_dag(apps, platform, options);
  EXPECT_GT(result.overall_makespan, 0.0);
  EXPECT_FALSE(model::has_resource_conflicts(result.schedule));
}

TEST(ScheduleMultiDag, MetaDescribesRun) {
  const auto apps = four_apps();
  const auto platform = platform::homogeneous_cluster(20);
  CraOptions options;
  options.metric = ShareMetric::kWidth;
  const auto result = schedule_multi_dag(apps, platform, options);
  EXPECT_EQ(result.schedule.meta_value("algorithm"), "CRA_WIDTH");
  EXPECT_EQ(result.schedule.meta_value("apps"), "4");
}

TEST(ShareMetricName, Strings) {
  EXPECT_STREQ(share_metric_name(ShareMetric::kWork), "CRA_WORK");
  EXPECT_STREQ(share_metric_name(ShareMetric::kWidth), "CRA_WIDTH");
  EXPECT_STREQ(share_metric_name(ShareMetric::kEqual), "CRA_EQUAL");
}

}  // namespace
}  // namespace jedule::sched
