#include "jedule/color/color.hpp"

#include <gtest/gtest.h>

#include <set>

#include "jedule/util/error.hpp"

namespace jedule::color {
namespace {

TEST(ParseColor, PaperStyleHexValues) {
  // Exact values from the paper's Fig. 2 colormap.
  EXPECT_EQ(parse_color("FFFFFF"), (Color{255, 255, 255, 255}));
  EXPECT_EQ(parse_color("0000FF"), (Color{0, 0, 255, 255}));
  EXPECT_EQ(parse_color("f10000"), (Color{241, 0, 0, 255}));
  EXPECT_EQ(parse_color("ff6200"), (Color{255, 98, 0, 255}));
}

TEST(ParseColor, HashPrefixAndAlpha) {
  EXPECT_EQ(parse_color("#102030"), (Color{16, 32, 48, 255}));
  EXPECT_EQ(parse_color("10203040"), (Color{16, 32, 48, 64}));
  EXPECT_EQ(parse_color("#10203040"), (Color{16, 32, 48, 64}));
}

TEST(ParseColor, RejectsMalformed) {
  EXPECT_THROW(parse_color(""), ParseError);
  EXPECT_THROW(parse_color("FFF"), ParseError);
  EXPECT_THROW(parse_color("GGGGGG"), ParseError);
  EXPECT_THROW(parse_color("1234567"), ParseError);
}

TEST(ToHex, RoundTrips) {
  for (const char* s : {"000000", "ff6200", "0a0b0c", "ffffff"}) {
    EXPECT_EQ(to_hex(parse_color(s)), s);
  }
  EXPECT_EQ(to_hex(Color{1, 2, 3, 128}), "01020380");
}

TEST(Luminance, OrdersIntuitively) {
  EXPECT_EQ(luminance(kBlack), 0);
  EXPECT_EQ(luminance(kWhite), 255);
  EXPECT_GT(luminance(Color{0, 255, 0, 255}),
            luminance(Color{0, 0, 255, 255}));  // green brighter than blue
}

TEST(ToGray, ProducesGrayOfEqualLuma) {
  const Color c = parse_color("ff6200");
  const Color g = to_gray(c);
  EXPECT_EQ(g.r, g.g);
  EXPECT_EQ(g.g, g.b);
  EXPECT_EQ(g.r, luminance(c));
  EXPECT_EQ(g.a, c.a);
}

TEST(Lerp, EndpointsAndMidpoint) {
  EXPECT_EQ(lerp(kBlack, kWhite, 0.0), kBlack);
  EXPECT_EQ(lerp(kBlack, kWhite, 1.0), kWhite);
  const Color mid = lerp(kBlack, kWhite, 0.5);
  EXPECT_NEAR(mid.r, 128, 1);
  // t clamped.
  EXPECT_EQ(lerp(kBlack, kWhite, -3.0), kBlack);
  EXPECT_EQ(lerp(kBlack, kWhite, 9.0), kWhite);
}

TEST(BlendOver, OpaqueAndTransparent) {
  const Color dst{10, 20, 30, 255};
  EXPECT_EQ(blend_over(dst, Color{1, 2, 3, 255}), (Color{1, 2, 3, 255}));
  EXPECT_EQ(blend_over(dst, Color{1, 2, 3, 0}), dst);
  const Color half = blend_over(kBlack, Color{255, 255, 255, 128});
  EXPECT_NEAR(half.r, 128, 1);
  EXPECT_EQ(half.a, 255);
}

TEST(FromHsv, PrimaryCorners) {
  EXPECT_EQ(from_hsv(0, 1, 1), (Color{255, 0, 0, 255}));
  EXPECT_EQ(from_hsv(120, 1, 1), (Color{0, 255, 0, 255}));
  EXPECT_EQ(from_hsv(240, 1, 1), (Color{0, 0, 255, 255}));
  EXPECT_EQ(from_hsv(0, 0, 1), kWhite);
  EXPECT_EQ(from_hsv(0, 0, 0), kBlack);
}

TEST(FromHsv, WrapsHue) {
  EXPECT_EQ(from_hsv(360, 1, 1), from_hsv(0, 1, 1));
  EXPECT_EQ(from_hsv(-120, 1, 1), from_hsv(240, 1, 1));
}

TEST(PaletteColor, DeterministicAndDistinct) {
  EXPECT_EQ(palette_color(5), palette_color(5));
  std::set<std::string> seen;
  for (std::size_t i = 0; i < 24; ++i) {
    seen.insert(to_hex(palette_color(i)));
  }
  EXPECT_EQ(seen.size(), 24u);  // first 24 palette entries all differ
}

TEST(ContrastColor, PicksReadableText) {
  EXPECT_EQ(contrast_color(kWhite), kBlack);
  EXPECT_EQ(contrast_color(kBlack), kWhite);
  EXPECT_EQ(contrast_color(parse_color("0000FF")), kWhite);  // blue -> white
}

}  // namespace
}  // namespace jedule::color
