#include "jedule/sim/dag_execution.hpp"

#include <gtest/gtest.h>

#include "jedule/model/composite.hpp"
#include "jedule/dag/generators.hpp"
#include "jedule/sim/engine.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::sim {
namespace {

using dag::Dag;
using platform::Platform;

// -- engine ---------------------------------------------------------------

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> fired;
  e.schedule_at(3.0, [&] { fired.push_back(3); });
  e.schedule_at(1.0, [&] { fired.push_back(1); });
  e.schedule_at(2.0, [&] { fired.push_back(2); });
  e.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.processed(), 3u);
}

TEST(Engine, TiesRunInInsertionOrder) {
  Engine e;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(1.0, [&fired, i] { fired.push_back(i); });
  }
  e.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ReentrantScheduling) {
  Engine e;
  std::vector<double> times;
  e.schedule_at(1.0, [&] {
    times.push_back(e.now());
    e.schedule_in(2.0, [&] { times.push_back(e.now()); });
  });
  e.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0}));
}

TEST(Engine, RejectsPastEvents) {
  Engine e;
  e.schedule_at(5.0, [&] {
    EXPECT_THROW(e.schedule_at(1.0, [] {}), ArgumentError);
  });
  e.run();
}

// -- dag execution ----------------------------------------------------------

Dag chain3() {
  Dag d("chain");
  const int a = d.add_node("a", 10.0);
  const int b = d.add_node("b", 20.0);
  const int c = d.add_node("c", 10.0);
  d.add_edge(a, b, 100.0);
  d.add_edge(b, c, 0.0);
  return d;
}

Mapping map_all_to(const Dag&, std::vector<std::vector<int>> hosts) {
  Mapping m;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    m.items.push_back(
        Mapping::Item{std::move(hosts[i]), static_cast<double>(i)});
  }
  return m;
}

TEST(SimulateDag, ChainOnOneHostHasNoTransfers) {
  const Dag d = chain3();
  const Platform p = platform::homogeneous_cluster(2, 1.0, {1e-3, 100.0});
  const auto r = simulate_dag(d, p, map_all_to(d, {{0}, {0}, {0}}));
  EXPECT_DOUBLE_EQ(r.start[0], 0.0);
  EXPECT_DOUBLE_EQ(r.finish[0], 10.0);
  EXPECT_DOUBLE_EQ(r.start[1], 10.0);
  EXPECT_DOUBLE_EQ(r.finish[1], 30.0);
  EXPECT_DOUBLE_EQ(r.makespan, 40.0);
  EXPECT_TRUE(r.transfers.empty());
}

TEST(SimulateDag, CrossHostChainPaysLinkCosts) {
  const Dag d = chain3();
  const Platform p = platform::homogeneous_cluster(2, 1.0, {1e-3, 100.0});
  const auto r = simulate_dag(d, p, map_all_to(d, {{0}, {1}, {0}}));
  // a finishes at 10; transfer of 100 MB at 100 MB/s + 2 ms latency.
  EXPECT_DOUBLE_EQ(r.start[1], 10.0 + 2e-3 + 1.0);
  ASSERT_EQ(r.transfers.size(), 2u);  // a->b and b->c (0 MB still has lat)
  EXPECT_EQ(r.transfers[0].src_host, 0);
  EXPECT_EQ(r.transfers[0].dst_host, 1);
  EXPECT_DOUBLE_EQ(r.transfers[0].start, 10.0);
  EXPECT_DOUBLE_EQ(r.transfers[0].end, r.start[1]);
}

TEST(SimulateDag, MultiprocTaskPacedBySlowestHost) {
  Dag d;
  d.add_node("m", 100.0);  // p=2 across clusters of different speed
  Platform p;
  platform::ClusterSpec fast{0, "f", 1, 2.0, {}};
  platform::ClusterSpec slow{1, "s", 1, 1.0, {}};
  p.add_cluster(fast);
  p.add_cluster(slow);
  const auto r = simulate_dag(d, p, map_all_to(d, {{0, 1}}));
  EXPECT_DOUBLE_EQ(r.finish[0], 100.0 / 2.0 / 1.0);  // speed 1.0 paces
}

TEST(SimulateDag, HostExclusivityEnforced) {
  // Two independent tasks on one host must serialize.
  Dag d;
  d.add_node("x", 10.0);
  d.add_node("y", 10.0);
  const Platform p = platform::homogeneous_cluster(1);
  const auto r = simulate_dag(d, p, map_all_to(d, {{0}, {0}}));
  EXPECT_DOUBLE_EQ(r.makespan, 20.0);
  EXPECT_TRUE(r.finish[0] <= r.start[1] || r.finish[1] <= r.start[0]);
}

TEST(SimulateDag, PriorityBreaksContention) {
  Dag d;
  d.add_node("x", 10.0);
  d.add_node("y", 10.0);
  const Platform p = platform::homogeneous_cluster(1);
  Mapping m = map_all_to(d, {{0}, {0}});
  m.items[0].priority = 2.0;
  m.items[1].priority = 1.0;  // y should go first
  const auto r = simulate_dag(d, p, m);
  EXPECT_DOUBLE_EQ(r.start[1], 0.0);
  EXPECT_DOUBLE_EQ(r.start[0], 10.0);
}

TEST(SimulateDag, MappingValidation) {
  const Dag d = chain3();
  const Platform p = platform::homogeneous_cluster(2);
  EXPECT_THROW(simulate_dag(d, p, Mapping{}), ValidationError);
  EXPECT_THROW(simulate_dag(d, p, map_all_to(d, {{0}, {}, {0}})),
               ValidationError);
  EXPECT_THROW(simulate_dag(d, p, map_all_to(d, {{0}, {9}, {0}})),
               ValidationError);
  EXPECT_THROW(simulate_dag(d, p, map_all_to(d, {{0}, {1, 1}, {0}})),
               ValidationError);
}

TEST(SimulateDag, RandomFeasibility) {
  // Random layered DAGs on random mappings: the simulated schedule never
  // double-books a host and always respects precedence + transfer delays.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng rng(seed);
    dag::LayeredDagOptions o;
    o.levels = 5;
    const Dag d = layered_random(o, rng);
    const Platform p = platform::homogeneous_cluster(6, 1.0, {1e-4, 1000.0});
    Mapping m;
    for (int v = 0; v < d.node_count(); ++v) {
      const int first = static_cast<int>(rng.uniform_int(0, 5));
      const int count =
          static_cast<int>(rng.uniform_int(1, 6 - first));
      std::vector<int> hosts;
      for (int h = first; h < first + count; ++h) hosts.push_back(h);
      m.items.push_back(Mapping::Item{hosts, rng.uniform()});
    }
    const auto r = simulate_dag(d, p, m);

    for (const auto& e : d.edges()) {
      EXPECT_GE(r.start[static_cast<std::size_t>(e.dst)],
                r.finish[static_cast<std::size_t>(e.src)] - 1e-9);
    }

    // No host runs two computations at once: check via the composite sweep
    // over the converted schedule (transfers excluded).
    ToScheduleOptions opts;
    opts.include_transfers = false;
    const auto schedule = to_schedule(d, p, m, r, opts);
    EXPECT_FALSE(model::has_resource_conflicts(schedule)) << "seed " << seed;
  }
}

TEST(ToSchedule, ProducesValidJeduleView) {
  const Dag d = chain3();
  const Platform p = platform::homogeneous_cluster(2, 1.0, {1e-3, 100.0});
  const Mapping m = map_all_to(d, {{0}, {1}, {0}});
  const auto r = simulate_dag(d, p, m);
  const auto s = to_schedule(d, p, m, r);
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.clusters().size(), 1u);
  // 3 computations + 2 transfers.
  EXPECT_EQ(s.tasks().size(), 5u);
  const auto* a = s.find_task("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->type(), "computation");
  int transfers = 0;
  for (const auto& t : s.tasks()) {
    if (t.type() == "transfer") {
      ++transfers;
      EXPECT_EQ(t.total_hosts(), 2);  // spans src and dst host rows
    }
  }
  EXPECT_EQ(transfers, 2);
}

TEST(ToSchedule, PrefixAndTypeOverride) {
  const Dag d = chain3();
  const Platform p = platform::homogeneous_cluster(2);
  const Mapping m = map_all_to(d, {{0}, {1}, {0}});
  const auto r = simulate_dag(d, p, m, SimOptions{.record_transfers = false});
  ToScheduleOptions o;
  o.id_prefix = "app1.";
  o.type_override = "app1";
  o.include_transfers = false;
  const auto s = to_schedule(d, p, m, r, o);
  EXPECT_NE(s.find_task("app1.a"), nullptr);
  EXPECT_EQ(s.find_task("app1.a")->type(), "app1");
}

TEST(ToSchedule, ScatteredHostsBecomeRanges) {
  Dag d;
  d.add_node("m", 10.0);
  const Platform p = platform::homogeneous_cluster(8);
  const Mapping m = map_all_to(d, {{0, 1, 2, 6}});
  const auto r = simulate_dag(d, p, m);
  const auto s = to_schedule(d, p, m, r);
  const auto& cfg = s.tasks()[0].configurations();
  ASSERT_EQ(cfg.size(), 1u);
  ASSERT_EQ(cfg[0].hosts.size(), 2u);
  EXPECT_EQ(cfg[0].hosts[0], (model::HostRange{0, 3}));
  EXPECT_EQ(cfg[0].hosts[1], (model::HostRange{6, 1}));
}

}  // namespace
}  // namespace jedule::sim
