// Structured fuzz of util::inflate's dynamic-Huffman header validation:
// hand-built DEFLATE headers with oversubscribed / incomplete code-length
// tables, repeats before the first code, and repeats running past the
// table end must all be rejected with ParseError — never decoded into
// garbage or allowed to run off a buffer (run under the san preset).

#include "jedule/util/inflate.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "jedule/render/deflate.hpp"
#include "jedule/util/error.hpp"

namespace jedule::util {
namespace {

// LSB-first bit sink matching the DEFLATE bit order.
struct BitSink {
  std::vector<std::uint8_t> bytes;
  int bit = 0;

  void put(std::uint32_t value, int count) {
    for (int i = 0; i < count; ++i) {
      if (bit == 0) bytes.push_back(0);
      if ((value >> i) & 1) {
        bytes.back() |= static_cast<std::uint8_t>(1u << bit);
      }
      bit = (bit + 1) % 8;
    }
  }
};

// RFC 1951 §3.2.7 transmission order of the code-length code lengths.
constexpr int kClOrder[19] = {16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                              11, 4,  12, 3, 13, 2, 14, 1, 15};

// Emits a final dynamic-block header: hlit/hdist/hclen followed by the
// 3-bit code-length lengths given per symbol (index = CL symbol 0..18).
BitSink dynamic_header(int hlit, int hdist, const int cl_lengths[19]) {
  BitSink b;
  b.put(1, 1);  // BFINAL
  b.put(2, 2);  // BTYPE = dynamic
  b.put(static_cast<std::uint32_t>(hlit - 257), 5);
  b.put(static_cast<std::uint32_t>(hdist - 1), 5);
  b.put(19 - 4, 4);  // hclen: send all 19 entries
  for (int i = 0; i < 19; ++i) {
    b.put(static_cast<std::uint32_t>(cl_lengths[kClOrder[i]]), 3);
  }
  return b;
}

void expect_rejected(const BitSink& b, const char* what) {
  EXPECT_THROW(inflate_decompress(b.bytes.data(), b.bytes.size()),
               ParseError)
      << what;
}

// A complete 1-bit code-length table over {0, 1}: "0" emits length 0,
// "1" emits length 1. Enough to write arbitrary sparse length tables.
void binary_cl_table(int out[19]) {
  for (int i = 0; i < 19; ++i) out[i] = 0;
  out[0] = 1;
  out[1] = 1;
}

TEST(InflateHardening, RejectsTooManyLiteralCodes) {
  int cl[19];
  binary_cl_table(cl);
  for (int hlit : {287, 288}) {  // 5-bit field reaches 288; max legal is 286
    BitSink b = dynamic_header(hlit, 1, cl);
    b.put(0xFFFFFFFF, 24);  // whatever follows, the header already failed
    expect_rejected(b, "hlit");
  }
}

TEST(InflateHardening, RejectsTooManyDistanceCodes) {
  int cl[19];
  binary_cl_table(cl);
  for (int hdist : {31, 32}) {  // max legal is 30
    BitSink b = dynamic_header(257, hdist, cl);
    b.put(0xFFFFFFFF, 24);
    expect_rejected(b, "hdist");
  }
}

TEST(InflateHardening, RejectsOversubscribedCodeLengthTable) {
  // Three 1-bit code-length codes: 3 * 2^-1 > 1 violates Kraft.
  int cl[19] = {0};
  cl[0] = cl[1] = cl[2] = 1;
  BitSink b = dynamic_header(257, 1, cl);
  b.put(0xFFFFFFFF, 24);
  expect_rejected(b, "oversubscribed CL table");
}

TEST(InflateHardening, RejectsIncompleteCodeLengthTable) {
  // A single 2-bit code leaves three quarters of the code space
  // undecodable; the CL table must be exactly complete.
  int cl[19] = {0};
  cl[0] = 2;
  BitSink b = dynamic_header(257, 1, cl);
  b.put(0xFFFFFFFF, 24);
  expect_rejected(b, "incomplete CL table");
}

TEST(InflateHardening, RejectsRepeatBeforeFirstCode) {
  // CL symbol 16 (copy previous) as the very first length entry.
  int cl[19] = {0};
  cl[16] = 1;
  cl[0] = 1;
  BitSink b = dynamic_header(257, 1, cl);
  b.put(1, 1);  // decode sym 16 ("1" in the canonical {0, 16} tree)
  b.put(0, 2);  // repeat count 3
  expect_rejected(b, "repeat before first code");
}

TEST(InflateHardening, RejectsRepeatPastTableEnd) {
  // Fill hlit + hdist = 258 entries, then zero-repeat 11 more via sym 18.
  int cl[19] = {0};
  cl[1] = 1;   // "0" -> length 1
  cl[18] = 1;  // "1" -> zero-run
  BitSink b = dynamic_header(257, 1, cl);
  for (int i = 0; i < 256; ++i) b.put(0, 1);  // 256 length-1 entries
  b.put(1, 1);  // sym 18
  b.put(0, 7);  // run of 11 zeros: 256 + 11 > 258
  expect_rejected(b, "repeat past end");
}

TEST(InflateHardening, RejectsOversubscribedLiteralTable) {
  // 258 literal/length codes all claiming length 1.
  int cl[19];
  binary_cl_table(cl);
  BitSink b = dynamic_header(257, 1, cl);
  for (int i = 0; i < 258; ++i) b.put(1, 1);  // "1" -> length 1
  expect_rejected(b, "oversubscribed literal table");
}

TEST(InflateHardening, RejectsIncompleteLiteralTableWithTwoCodes) {
  // Two 2-bit codes and nothing else: half the literal code space cannot
  // decode, and with more than one code in use that is malformed.
  int cl[19] = {0};
  cl[0] = 1;  // "0" -> length 0
  cl[2] = 1;  // "1" -> length 2
  BitSink b = dynamic_header(257, 1, cl);
  b.put(1, 1);                                // sym 0: length 2
  b.put(1, 1);                                // sym 1: length 2
  for (int i = 0; i < 255; ++i) b.put(0, 1);  // rest of hlit zero
  b.put(0, 1);                                // hdist entry zero
  expect_rejected(b, "incomplete literal table");
}

TEST(InflateHardening, RejectsIncompleteDistanceTableWithTwoCodes) {
  int cl[19] = {0};
  cl[0] = 1;  // "0" -> length 0
  cl[3] = 1;  // "1" -> length 3
  BitSink b = dynamic_header(257, 2, cl);
  b.put(1, 1);                                // literal 0: length 3 (times 8
  for (int i = 0; i < 7; ++i) b.put(1, 1);    //  -> exactly complete litlen)
  for (int i = 0; i < 249; ++i) b.put(0, 1);  // rest of hlit zero
  b.put(1, 1);                                // dist 0: length 3
  b.put(1, 1);                                // dist 1: length 3 (incomplete)
  expect_rejected(b, "incomplete distance table");
}

TEST(InflateHardening, AcceptsSingleCodeAndEmptyDistanceTables) {
  // The two degenerate-but-legal shapes real encoders emit: a matchless
  // stream (hdist = 1, the single distance length zero) and a one-distance
  // stream. Our encoder produces the former for incompressible chunks.
  const std::vector<std::uint8_t> no_matches = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto packed = render::deflate_compress(
      no_matches.data(), no_matches.size(), 1,
      render::DeflateStrategy::dynamic);
  EXPECT_EQ(inflate_decompress(packed.data(), packed.size()), no_matches);

  std::vector<std::uint8_t> one_distance(64, 42);  // single run, dist 1
  const auto packed2 = render::deflate_compress(
      one_distance.data(), one_distance.size(), 1,
      render::DeflateStrategy::dynamic);
  EXPECT_EQ(inflate_decompress(packed2.data(), packed2.size()),
            one_distance);
}

TEST(InflateHardening, TruncatedDynamicHeaderThrows) {
  int cl[19];
  binary_cl_table(cl);
  const BitSink full = dynamic_header(257, 1, cl);
  for (std::size_t n = 0; n < full.bytes.size(); ++n) {
    EXPECT_THROW(inflate_decompress(full.bytes.data(), n), ParseError)
        << "prefix " << n;
  }
}

}  // namespace
}  // namespace jedule::util
