#include "jedule/platform/platform.hpp"

#include <gtest/gtest.h>

#include "jedule/util/error.hpp"

namespace jedule::platform {
namespace {

Platform two_clusters() {
  Platform p;
  ClusterSpec a;
  a.id = 0;
  a.name = "a";
  a.hosts = 4;
  a.host_speed = 2.0;
  a.link = {1e-3, 100.0};
  p.add_cluster(a);
  ClusterSpec b;
  b.id = 1;
  b.name = "b";
  b.hosts = 2;
  b.host_speed = 1.0;
  b.link = {2e-3, 50.0};
  p.add_cluster(b);
  p.set_backbone({1e-2, 80.0});
  return p;
}

TEST(Platform, GlobalHostIndexing) {
  const Platform p = two_clusters();
  EXPECT_EQ(p.total_hosts(), 6);
  EXPECT_EQ(p.cluster_of(0), 0);
  EXPECT_EQ(p.cluster_of(3), 0);
  EXPECT_EQ(p.cluster_of(4), 1);
  EXPECT_EQ(p.cluster_of(5), 1);
  EXPECT_EQ(p.local_index(5), 1);
  EXPECT_EQ(p.first_host(1), 4);
  EXPECT_DOUBLE_EQ(p.host_speed(0), 2.0);
  EXPECT_DOUBLE_EQ(p.host_speed(5), 1.0);
}

TEST(Platform, Validation) {
  Platform p;
  ClusterSpec bad;
  bad.hosts = 0;
  EXPECT_THROW(p.add_cluster(bad), ValidationError);
  bad.hosts = 2;
  bad.host_speed = 0;
  EXPECT_THROW(p.add_cluster(bad), ValidationError);
  bad.host_speed = 1;
  p.add_cluster(bad);
  EXPECT_THROW(p.add_cluster(bad), ValidationError);  // duplicate id
  EXPECT_THROW(p.cluster(9), ValidationError);
}

TEST(CommTime, SameHostIsFree) {
  const Platform p = two_clusters();
  EXPECT_DOUBLE_EQ(p.comm_time(2, 2, 100.0), 0.0);
}

TEST(CommTime, IntraCluster) {
  const Platform p = two_clusters();
  // 2 link latencies + size / link bandwidth.
  EXPECT_DOUBLE_EQ(p.comm_time(0, 1, 10.0), 2e-3 + 10.0 / 100.0);
  EXPECT_DOUBLE_EQ(p.comm_time(4, 5, 10.0), 4e-3 + 10.0 / 50.0);
}

TEST(CommTime, InterClusterUsesBackboneAndBottleneck) {
  const Platform p = two_clusters();
  // src link lat + dst link lat + backbone lat; bottleneck bw = min(100,
  // 50, 80) = 50.
  EXPECT_DOUBLE_EQ(p.comm_time(0, 4, 10.0), 1e-3 + 2e-3 + 1e-2 + 10.0 / 50.0);
  EXPECT_DOUBLE_EQ(p.comm_time(4, 0, 0.0), 1e-3 + 2e-3 + 1e-2);
}

TEST(CommTime, LatencyOnlyForZeroBytes) {
  const Platform p = two_clusters();
  EXPECT_DOUBLE_EQ(p.comm_time(0, 1, 0.0), 2e-3);
}

TEST(Averages, ReasonableBounds) {
  const Platform p = two_clusters();
  const double lat = p.average_latency();
  EXPECT_GT(lat, 2e-3);   // at least the cheapest pair
  EXPECT_LT(lat, 13e-3);  // at most the priciest
  const double bw = p.average_bandwidth();
  EXPECT_GT(bw, 50.0);
  EXPECT_LT(bw, 100.0);
}

TEST(HomogeneousCluster, Factory) {
  const Platform p = homogeneous_cluster(16, 2.5);
  EXPECT_EQ(p.total_hosts(), 16);
  EXPECT_EQ(p.clusters().size(), 1u);
  EXPECT_DOUBLE_EQ(p.host_speed(7), 2.5);
}

TEST(CaseStudyPlatform, MatchesPaperFigure7) {
  const Platform p = heterogeneous_case_study(5e-2);
  ASSERT_EQ(p.clusters().size(), 4u);
  EXPECT_EQ(p.total_hosts(), 12);
  // "Two of them comprise four processors running at 1.65 Gflop/s, while
  // the two other clusters only have two processors running twice as fast."
  int fast_clusters = 0;
  int slow_clusters = 0;
  for (const auto& c : p.clusters()) {
    if (c.host_speed == 3.3) {
      ++fast_clusters;
      EXPECT_EQ(c.hosts, 2);
    } else {
      EXPECT_DOUBLE_EQ(c.host_speed, 1.65);
      EXPECT_EQ(c.hosts, 4);
      ++slow_clusters;
    }
  }
  EXPECT_EQ(fast_clusters, 2);
  EXPECT_EQ(slow_clusters, 2);
  // The fast clusters hold hosts 0-1 and 6-7 (Sec. V.B's "processors 0-1
  // and 6-7").
  EXPECT_DOUBLE_EQ(p.host_speed(0), 3.3);
  EXPECT_DOUBLE_EQ(p.host_speed(1), 3.3);
  EXPECT_DOUBLE_EQ(p.host_speed(6), 3.3);
  EXPECT_DOUBLE_EQ(p.host_speed(7), 3.3);
  EXPECT_DOUBLE_EQ(p.host_speed(2), 1.65);
  EXPECT_DOUBLE_EQ(p.host_speed(8), 1.65);
  EXPECT_DOUBLE_EQ(p.backbone().latency, 5e-2);
}

TEST(CaseStudyPlatform, FlatVsRealisticBackbone) {
  const Platform flat = heterogeneous_case_study(0.0);
  const Platform real = heterogeneous_case_study(5e-2);
  // Flat description: crossing the backbone costs the same as staying
  // inside a cluster (the Fig. 8 bug).
  EXPECT_DOUBLE_EQ(flat.comm_time(2, 3, 1.0), flat.comm_time(2, 8, 1.0));
  EXPECT_GT(real.comm_time(2, 8, 1.0), real.comm_time(2, 3, 1.0) + 0.04);
}

TEST(Describe, MentionsAllClusters) {
  const std::string desc = heterogeneous_case_study(0.05).describe();
  EXPECT_NE(desc.find("cluster-0"), std::string::npos);
  EXPECT_NE(desc.find("cluster-3"), std::string::npos);
  EXPECT_NE(desc.find("backbone"), std::string::npos);
}

}  // namespace
}  // namespace jedule::platform
