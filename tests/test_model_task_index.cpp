#include "jedule/model/task_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "jedule/model/builder.hpp"
#include "jedule/model/schedule.hpp"

namespace jedule::model {
namespace {

/// Deterministic random schedule: `n` tasks over two clusters, a mix of
/// contiguous and scattered allocations, some zero-duration tasks.
Schedule random_schedule(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> start(0.0, 100.0);
  std::uniform_real_distribution<double> dur(0.0, 8.0);
  std::uniform_int_distribution<int> host(0, 12);
  std::uniform_int_distribution<int> span(1, 4);
  std::uniform_int_distribution<int> coin(0, 3);

  ScheduleBuilder b;
  b.cluster(0, "c0", 16).cluster(1, "c1", 16);
  for (int i = 0; i < n; ++i) {
    const double s = start(rng);
    const double e = coin(rng) == 0 ? s : s + dur(rng);  // some zero-length
    b.task(std::to_string(i), i % 2 ? "computation" : "transfer", s, e);
    const int h = host(rng);
    b.on(i % 2, h, span(rng));
    if (coin(rng) == 0) {
      // Multi-cluster task with a second (scattered) allocation; the two
      // hosts must be distinct for the schedule to validate.
      const int h2 = host(rng);
      b.hosts((i + 1) % 2, {h2, (h2 + 5) % 13});
    }
  }
  return b.build();
}

/// Brute-force reference: every (configuration x host range) whose closed
/// interval intersects [t0, t1].
std::vector<TaskIndex::Entry> brute_query(const Schedule& s, int cluster_id,
                                          double t0, double t1) {
  std::vector<TaskIndex::Entry> out;
  for (std::size_t i = 0; i < s.tasks().size(); ++i) {
    const Task& t = s.tasks()[i];
    if (t.start_time() > t1 || t.end_time() < t0) continue;
    for (const auto& cfg : t.configurations()) {
      if (cfg.cluster_id != cluster_id) continue;
      for (const auto& hr : cfg.hosts) {
        out.push_back({t.start_time(), t.end_time(), hr.start,
                       hr.start + hr.nb - 1,
                       static_cast<std::uint32_t>(i)});
      }
    }
  }
  return out;
}

std::multiset<std::tuple<double, double, int, int, std::uint32_t>> key_set(
    const std::vector<TaskIndex::Entry>& entries) {
  std::multiset<std::tuple<double, double, int, int, std::uint32_t>> keys;
  for (const auto& e : entries) {
    keys.insert({e.begin, e.end, e.host_start, e.host_end, e.task});
  }
  return keys;
}

TEST(TaskIndex, QueryMatchesBruteForce) {
  const Schedule s = random_schedule(400, 7);
  const TaskIndex index(s);
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> point(-10.0, 120.0);
  for (int cluster = 0; cluster <= 1; ++cluster) {
    for (int trial = 0; trial < 50; ++trial) {
      double t0 = point(rng), t1 = point(rng);
      if (t1 < t0) std::swap(t0, t1);
      std::vector<TaskIndex::Entry> got;
      index.query(cluster, t0, t1,
                  [&](const TaskIndex::Entry& e) { got.push_back(e); });
      EXPECT_EQ(key_set(got), key_set(brute_query(s, cluster, t0, t1)))
          << "cluster " << cluster << " window [" << t0 << ", " << t1 << "]";
    }
  }
}

TEST(TaskIndex, ZeroDurationAndEdgeTouchingTasksAreReported) {
  const Schedule s = ScheduleBuilder()
                         .cluster(0, "c", 4)
                         .task("z", "t", 5.0, 5.0)
                         .on(0, 0, 1)
                         .task("edge", "t", 0.0, 2.0)
                         .on(0, 1, 1)
                         .build();
  const TaskIndex index(s);
  std::vector<std::uint32_t> tasks;
  // Window starting exactly at the zero-duration instant.
  index.collect_tasks(0, 5.0, 9.0, &tasks);
  EXPECT_EQ(tasks, (std::vector<std::uint32_t>{0}));
  tasks.clear();
  // Window whose begin touches the end of "edge" exactly.
  index.collect_tasks(0, 2.0, 3.0, &tasks);
  EXPECT_EQ(tasks, (std::vector<std::uint32_t>{1}));
}

TEST(TaskIndex, CollectTasksIsSortedAndUnique) {
  const Schedule s = random_schedule(300, 3);
  const TaskIndex index(s);
  std::vector<std::uint32_t> tasks;
  index.collect_tasks(0, 0.0, 200.0, &tasks);
  index.collect_tasks(1, 0.0, 200.0, &tasks);
  std::vector<std::uint32_t> sorted = tasks;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  // Each per-cluster call appends a sorted, duplicate-free run even for
  // tasks with several host ranges.
  std::vector<std::uint32_t> merged = tasks;
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  EXPECT_EQ(merged.size(), s.tasks().size());
}

TEST(TaskIndex, CountUptoStopsEarlyButIsExactBelowLimit) {
  const Schedule s = random_schedule(200, 5);
  const TaskIndex index(s);
  const auto all = brute_query(s, 0, 0.0, 200.0);
  EXPECT_EQ(index.count_upto(0, 0.0, 200.0, 100000), all.size());
  EXPECT_EQ(index.count_upto(0, 0.0, 200.0, 5), 5u);
  EXPECT_EQ(index.count_upto(0, 1e9, 2e9, 5), 0u);
}

TEST(TaskIndex, TopmostAtPicksHighestTaskIndex) {
  // Two overlapping tasks on the same host: the later-added one paints on
  // top, so the point query must return it.
  const Schedule s = ScheduleBuilder()
                         .cluster(0, "c", 4)
                         .task("under", "t", 0.0, 10.0)
                         .on(0, 0, 4)
                         .task("over", "t", 2.0, 6.0)
                         .on(0, 1, 2)
                         .build();
  const TaskIndex index(s);
  const auto* top = index.topmost_at(0, 4.0, 1);
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->task, 1u);
  const auto* under = index.topmost_at(0, 4.0, 0);
  ASSERT_NE(under, nullptr);
  EXPECT_EQ(under->task, 0u);
  EXPECT_EQ(index.topmost_at(0, 11.0, 0), nullptr);
  // Host 3 is covered only by "under" (hosts 0-3).
  const auto* host3 = index.topmost_at(0, 4.0, 3);
  ASSERT_NE(host3, nullptr);
  EXPECT_EQ(host3->task, 0u);
}

TEST(TaskIndex, TimeRangeAndCounts) {
  const Schedule s = random_schedule(100, 9);
  const TaskIndex index(s);
  EXPECT_EQ(index.task_count(), s.tasks().size());
  ASSERT_TRUE(index.time_range().has_value());
  auto range = *s.time_range();
  EXPECT_DOUBLE_EQ(index.time_range()->begin, range.begin);
  EXPECT_DOUBLE_EQ(index.time_range()->end, range.end);
  EXPECT_EQ(index.entry_count(0) + index.entry_count(1),
            brute_query(s, 0, -1e18, 1e18).size() +
                brute_query(s, 1, -1e18, 1e18).size());
}

TEST(TaskIndex, ContentHashDetectsChanges) {
  const Schedule a = random_schedule(50, 1);
  const Schedule b = random_schedule(50, 1);
  EXPECT_EQ(TaskIndex(a).content_hash(), TaskIndex(b).content_hash());
  EXPECT_EQ(TaskIndex(a).content_hash(), TaskIndex::hash_schedule(a));

  Schedule c = random_schedule(50, 1);
  Task extra("extra", "t", 0.0, 1.0);
  extra.allocate(0, 0, 1);
  c.add_task(std::move(extra));
  EXPECT_NE(TaskIndex(a).content_hash(), TaskIndex::hash_schedule(c));

  const Schedule d = random_schedule(50, 2);  // different seed
  EXPECT_NE(TaskIndex(a).content_hash(), TaskIndex(d).content_hash());
}

TEST(TaskIndex, EmptyScheduleIsWellFormed) {
  Schedule s;
  s.add_cluster(0, "c", 2);
  const TaskIndex index(s);
  EXPECT_EQ(index.task_count(), 0u);
  EXPECT_FALSE(index.time_range().has_value());
  EXPECT_EQ(index.count_upto(0, 0, 1, 10), 0u);
  EXPECT_EQ(index.topmost_at(0, 0, 0), nullptr);
  std::vector<std::uint32_t> tasks;
  index.collect_tasks(0, 0, 1, &tasks);
  EXPECT_TRUE(tasks.empty());
}

}  // namespace
}  // namespace jedule::model
