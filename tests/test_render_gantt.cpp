#include "jedule/render/gantt.hpp"

#include <gtest/gtest.h>

#include <set>

#include "jedule/model/builder.hpp"
#include "jedule/render/export.hpp"
#include "jedule/render/exporter.hpp"
#include "jedule/render/pdf.hpp"
#include "jedule/render/png.hpp"
#include "jedule/render/raster_canvas.hpp"
#include "jedule/render/svg.hpp"
#include "jedule/util/inflate.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::render {
namespace {

using model::Schedule;
using model::ScheduleBuilder;
using model::TimeRange;
using model::ViewMode;

Schedule demo_schedule() {
  return ScheduleBuilder()
      .cluster(0, "c0", 8)
      .cluster(1, "c1", 4)
      .meta("algorithm", "demo")
      .task("1", "computation", 0.0, 4.0)
      .on(0, 0, 8)
      .task("2", "transfer", 3.0, 6.0)
      .on(0, 2, 4)
      .task("3", "computation", 8.0, 10.0)
      .on(1, 0, 4)
      .task("u", "job", 1.0, 2.0)
      .on(1, 1, 2)
      .property("user", "6447")
      .build();
}

GanttStyle default_style() {
  GanttStyle style;
  style.width = 800;
  style.height = 500;
  return style;
}

TEST(Layout, OnePanelPerCluster) {
  const auto layout =
      layout_gantt(demo_schedule(), color::standard_colormap(),
                   default_style());
  ASSERT_EQ(layout.panels.size(), 2u);
  EXPECT_EQ(layout.panels[0].cluster_id, 0);
  EXPECT_EQ(layout.panels[1].cluster_id, 1);
  EXPECT_GT(layout.panels[1].y, layout.panels[0].y + layout.panels[0].h);
  // Heights proportional to host counts (8 vs 4).
  EXPECT_NEAR(layout.panels[0].h / layout.panels[1].h, 2.0, 0.05);
}

TEST(Layout, ClusterFilterSelectsAndOrders) {
  GanttStyle style = default_style();
  style.cluster_filter = {1};
  const auto layout =
      layout_gantt(demo_schedule(), color::standard_colormap(), style);
  ASSERT_EQ(layout.panels.size(), 1u);
  EXPECT_EQ(layout.panels[0].cluster_id, 1);
  style.cluster_filter = {7};
  EXPECT_THROW(
      layout_gantt(demo_schedule(), color::standard_colormap(), style),
      ValidationError);
}

TEST(Layout, ScaledVsAlignedRanges) {
  GanttStyle style = default_style();
  style.view_mode = ViewMode::kScaled;
  const auto scaled =
      layout_gantt(demo_schedule(), color::standard_colormap(), style);
  EXPECT_DOUBLE_EQ(scaled.panels[0].time_range.end, 6.0);   // local to c0
  EXPECT_DOUBLE_EQ(scaled.panels[1].time_range.end, 10.0);

  style.view_mode = ViewMode::kAligned;
  const auto aligned =
      layout_gantt(demo_schedule(), color::standard_colormap(), style);
  EXPECT_DOUBLE_EQ(aligned.panels[0].time_range.begin, 0.0);
  EXPECT_DOUBLE_EQ(aligned.panels[0].time_range.end, 10.0);
  EXPECT_EQ(aligned.panels[0].time_range, aligned.panels[1].time_range);
}

TEST(Layout, BoxGeometryTracksTimeAndHosts) {
  const auto layout =
      layout_gantt(demo_schedule(), color::standard_colormap(),
                   default_style());
  const auto& panel = layout.panels[0];
  // Find task 1's box (hosts 0-7 of c0, time 0..4).
  const TaskBox* box = nullptr;
  for (const auto& b : layout.boxes) {
    if (!b.composite && b.label == "1") box = &b;
  }
  ASSERT_NE(box, nullptr);
  EXPECT_DOUBLE_EQ(box->x, panel.x_of_time(0.0));
  EXPECT_DOUBLE_EQ(box->x + box->w, panel.x_of_time(4.0));
  EXPECT_DOUBLE_EQ(box->y, panel.y);
  EXPECT_DOUBLE_EQ(box->h, panel.h);  // all 8 hosts
}

TEST(Layout, CompositesAppendedAfterTasks) {
  const auto layout =
      layout_gantt(demo_schedule(), color::standard_colormap(),
                   default_style());
  // Task 1 and 2 overlap on c0 hosts 2-5 during [3,4).
  bool found = false;
  for (const auto& b : layout.boxes) {
    if (b.composite) {
      found = true;
      EXPECT_EQ(layout.tasks[b.task_index].type(), "composite");
    }
  }
  EXPECT_TRUE(found);
  EXPECT_LT(layout.composite_begin, layout.tasks.size());
}

TEST(Layout, ShowCompositesOffSkipsSynthesis) {
  GanttStyle style = default_style();
  style.show_composites = false;
  const auto layout =
      layout_gantt(demo_schedule(), color::standard_colormap(), style);
  EXPECT_EQ(layout.composite_begin, layout.tasks.size());
}

TEST(Layout, TimeWindowClipsBoxes) {
  GanttStyle style = default_style();
  style.time_window = TimeRange{3.5, 9.0};
  const auto layout =
      layout_gantt(demo_schedule(), color::standard_colormap(), style);
  for (const auto& b : layout.boxes) {
    const auto* panel = panel_at(layout, b.x + b.w / 2, b.y + b.h / 2);
    ASSERT_NE(panel, nullptr);
    EXPECT_GE(b.x, panel->x - 0.5);
    EXPECT_LE(b.x + b.w, panel->x + panel->w + 0.5);
  }
  // Task "u" ([1,2)) lies outside the window -> no box for it.
  for (const auto& b : layout.boxes) EXPECT_NE(b.label, "u");
}

TEST(Layout, EmptyTimeWindowRejected) {
  GanttStyle style = default_style();
  style.time_window = TimeRange{5.0, 5.0};
  EXPECT_THROW(
      layout_gantt(demo_schedule(), color::standard_colormap(), style),
      ArgumentError);
}

TEST(Layout, HighlightOverridesColors) {
  GanttStyle style = default_style();
  style.highlight_key = "user";
  style.highlight_value = "6447";
  const auto layout =
      layout_gantt(demo_schedule(), color::standard_colormap(), style);
  bool highlighted = false;
  for (const auto& b : layout.boxes) {
    if (b.label == "u") {
      highlighted = b.highlighted;
      EXPECT_EQ(b.style.background, style.highlight_bg);
    } else if (!b.composite) {
      EXPECT_FALSE(b.highlighted);
    }
  }
  EXPECT_TRUE(highlighted);
}

TEST(Layout, TooSmallCanvasRejected) {
  GanttStyle style = default_style();
  style.height = 40;
  EXPECT_THROW(
      layout_gantt(demo_schedule(), color::standard_colormap(), style),
      ArgumentError);
}

TEST(HitTest, EveryBoxCenterResolvesToItsTask) {
  const auto layout =
      layout_gantt(demo_schedule(), color::standard_colormap(),
                   default_style());
  for (const auto& b : layout.boxes) {
    const TaskBox* hit = hit_test(layout, b.x + b.w / 2, b.y + b.h / 2);
    ASSERT_NE(hit, nullptr);
    // Composites are drawn on top, so hitting a member region may return
    // the composite; in that case the member id must appear in its label.
    if (hit != &b) {
      EXPECT_TRUE(hit->composite);
      EXPECT_NE(hit->label.find(b.label), std::string::npos)
          << hit->label << " vs " << b.label;
    }
  }
}

TEST(HitTest, MissesOutsidePanels) {
  const auto layout =
      layout_gantt(demo_schedule(), color::standard_colormap(),
                   default_style());
  EXPECT_EQ(hit_test(layout, 1, 1), nullptr);
  EXPECT_EQ(panel_at(layout, 1, 1), nullptr);
}

TEST(NiceTicks, CoverRangeWithRoundSteps) {
  const auto ticks = nice_ticks(TimeRange{0.0, 0.5}, 8);
  ASSERT_GE(ticks.size(), 4u);
  EXPECT_DOUBLE_EQ(ticks.front(), 0.0);
  EXPECT_NEAR(ticks.back(), 0.5, 1e-9);
  const double step = ticks[1] - ticks[0];
  for (std::size_t i = 1; i < ticks.size(); ++i) {
    EXPECT_NEAR(ticks[i] - ticks[i - 1], step, 1e-9);
  }
}

TEST(NiceTicks, NonZeroOrigin) {
  const auto ticks = nice_ticks(TimeRange{40000, 70000}, 6);
  EXPECT_GE(ticks.front(), 40000);
  EXPECT_LE(ticks.back(), 70000 + 1e-6);
  EXPECT_GE(ticks.size(), 3u);
}

TEST(NiceTicks, DegenerateRange) {
  const auto ticks = nice_ticks(TimeRange{5, 5}, 8);
  ASSERT_EQ(ticks.size(), 1u);
  EXPECT_DOUBLE_EQ(ticks[0], 5.0);
}

TEST(Paint, RasterIsDeterministic) {
  const auto schedule = demo_schedule();
  RenderOptions options;
  options.style = default_style();
  options.threads = 1;
  const Framebuffer a = render_raster(schedule, options);
  const Framebuffer b = render_raster(schedule, options);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(encode_png(a), encode_png(b));
}

TEST(Paint, TaskPixelsHaveTaskColors) {
  const auto schedule = demo_schedule();
  const auto cmap = color::standard_colormap();
  const auto style = default_style();
  const auto layout = layout_gantt(schedule, cmap, style);
  RenderOptions options;
  options.style = style;
  options.threads = 1;
  const Framebuffer fb = render_raster(schedule, options);
  // Probe a pixel inside task 1 away from labels/borders/composites.
  for (const auto& b : layout.boxes) {
    if (b.label == "1" && !b.composite) {
      const int x = static_cast<int>(b.x + 8);
      const int y = static_cast<int>(b.y + 4);
      EXPECT_EQ(fb.pixel(x, y), cmap.style_for("computation").background);
    }
  }
}

TEST(Export, SvgContainsRectsAndText) {
  const auto layout = layout_gantt(demo_schedule(),
                                   color::standard_colormap(),
                                   default_style());
  SvgCanvas canvas(800, 500);
  paint_gantt(layout, canvas, default_style());
  const std::string svg = canvas.finish();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("<text"), std::string::npos);
  EXPECT_NE(svg.find("c0 (8 hosts)"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Export, PdfIsStructurallySound) {
  const auto layout = layout_gantt(demo_schedule(),
                                   color::standard_colormap(),
                                   default_style());
  PdfCanvas canvas(800, 500);
  paint_gantt(layout, canvas, default_style());
  const std::string pdf = canvas.finish();
  EXPECT_EQ(pdf.substr(0, 8), "%PDF-1.4");
  EXPECT_NE(pdf.find("/Type /Page"), std::string::npos);
  EXPECT_NE(pdf.find("xref"), std::string::npos);
  EXPECT_NE(pdf.find("%%EOF"), std::string::npos);
  // The page content stream is /FlateDecode-compressed; inflate it to
  // check the operators.
  const auto len_pos = pdf.find("/Length ");
  ASSERT_NE(len_pos, std::string::npos);
  const auto len_end = pdf.find(' ', len_pos + 8);
  const int length =
      std::stoi(pdf.substr(len_pos + 8, len_end - len_pos - 8));
  const auto stream_pos = pdf.find("stream\n", len_pos) + 7;
  const auto raw = util::zlib_decompress(
      reinterpret_cast<const std::uint8_t*>(pdf.data() + stream_pos),
      static_cast<std::size_t>(length));
  const std::string content(reinterpret_cast<const char*>(raw.data()),
                            raw.size());
  EXPECT_NE(content.find(" re f"), std::string::npos);  // filled rects
  EXPECT_NE(content.find("Tj ET"), std::string::npos);  // text
}

TEST(Export, FormatFromExtension) {
  const auto& registry = ExporterRegistry::instance();
  auto name_for = [&](const std::string& path) {
    const Exporter* e = registry.find_for_path(path);
    return e ? e->name() : std::string("<none>");
  };
  EXPECT_EQ(name_for("x.png"), "png");
  EXPECT_EQ(name_for("x.PNG"), "png");
  EXPECT_EQ(name_for("x.PPM"), "ppm");
  EXPECT_EQ(name_for("a/b.svg"), "svg");
  EXPECT_EQ(name_for("a/b.Svg"), "svg");
  EXPECT_EQ(name_for("x.pdf"), "pdf");
  EXPECT_EQ(registry.find_for_path("x.jpeg"), nullptr);
}

TEST(Export, BytesForAllFormats) {
  const auto schedule = demo_schedule();
  RenderOptions options;
  options.style = default_style();
  options.threads = 1;
  for (const char* format : {"png", "ppm", "svg", "pdf"}) {
    const std::string bytes = render_to_bytes(schedule, options, format);
    EXPECT_GT(bytes.size(), 100u) << format;
  }
  EXPECT_THROW(render_to_bytes(schedule, options, "jpeg"), ArgumentError);
}

TEST(Layout, CrossClusterTaskGetsOneBoxPerPanel) {
  // Paper Sec. II.C.1: "tasks may span different clusters. This is useful
  // if a communication task transfers data between tasks on different
  // clusters" — one rectangle must appear in each involved panel.
  const auto schedule = model::ScheduleBuilder()
                            .cluster(0, "a", 4)
                            .cluster(1, "b", 4)
                            .task("x", "transfer", 0.0, 1.0)
                            .on(0, 3, 1)
                            .on(1, 0, 1)
                            .build();
  const auto layout = layout_gantt(schedule, color::standard_colormap(),
                                   default_style());
  std::set<int> panels_with_x;
  for (const auto& box : layout.boxes) {
    if (box.label == "x") panels_with_x.insert(box.cluster_id);
  }
  EXPECT_EQ(panels_with_x, (std::set<int>{0, 1}));
}

TEST(Paint, HatchedCompositesDifferFromPlain) {
  const auto schedule = demo_schedule();
  RenderOptions plain;
  plain.style = default_style();
  plain.threads = 1;
  RenderOptions hatched = plain;
  hatched.style.hatch_composites = true;
  EXPECT_FALSE(render_raster(schedule, plain) ==
               render_raster(schedule, hatched));
}

TEST(Paint, ThinRowsSkipGridAndLabels) {
  // 1024 hosts in a 500px panel: rows are sub-pixel; must not crash and
  // must stay deterministic.
  util::Rng rng(3);
  ScheduleBuilder builder;
  builder.cluster(0, "big", 1024);
  for (int i = 0; i < 200; ++i) {
    const int first = static_cast<int>(rng.uniform_int(0, 1000));
    const int nb = static_cast<int>(rng.uniform_int(1, 23));
    const double s = rng.uniform(0, 100);
    builder.task("j" + std::to_string(i), "job", s, s + rng.uniform(1, 20))
        .on(0, first, nb);
  }
  const auto schedule = builder.build();
  RenderOptions options;
  options.style = default_style();
  options.threads = 1;
  const Framebuffer a = render_raster(schedule, options);
  const Framebuffer b = render_raster(schedule, options);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace jedule::render
