#include "jedule/render/font.hpp"

#include <gtest/gtest.h>

#include <set>

namespace jedule::render {
namespace {

TEST(Glyphs, AllPrintableAsciiInBounds) {
  for (int c = 32; c <= 126; ++c) {
    const auto& glyph = glyph_bitmap(static_cast<char>(c));
    for (const auto row : glyph) {
      EXPECT_EQ(row & ~0x1F, 0) << "stray bits in glyph " << c;
    }
  }
}

TEST(Glyphs, VisibleCharactersAreNonEmpty) {
  for (int c = 33; c <= 126; ++c) {
    const auto& glyph = glyph_bitmap(static_cast<char>(c));
    int bits = 0;
    for (const auto row : glyph) bits += __builtin_popcount(row);
    EXPECT_GT(bits, 0) << "blank glyph for '" << static_cast<char>(c) << "'";
  }
}

TEST(Glyphs, SpaceIsBlank) {
  const auto& glyph = glyph_bitmap(' ');
  for (const auto row : glyph) EXPECT_EQ(row, 0);
}

TEST(Glyphs, DigitsAreDistinct) {
  std::set<std::array<std::uint8_t, kGlyphHeight>> seen;
  for (char c = '0'; c <= '9'; ++c) seen.insert(glyph_bitmap(c));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Glyphs, LettersAreDistinct) {
  std::set<std::array<std::uint8_t, kGlyphHeight>> seen;
  for (char c = 'A'; c <= 'Z'; ++c) seen.insert(glyph_bitmap(c));
  for (char c = 'a'; c <= 'z'; ++c) seen.insert(glyph_bitmap(c));
  EXPECT_EQ(seen.size(), 52u);
}

TEST(Glyphs, OutOfRangeGetsTofu) {
  const auto& tofu = glyph_bitmap(static_cast<char>(200));
  EXPECT_EQ(tofu, glyph_bitmap(static_cast<char>(5)));
  int bits = 0;
  for (const auto row : tofu) bits += __builtin_popcount(row);
  EXPECT_GT(bits, 10);  // a box, not blank
}

TEST(Scale, MapsFontSizesToIntegers) {
  EXPECT_EQ(scale_for_font_size(8), 1);
  EXPECT_EQ(scale_for_font_size(11), 1);
  EXPECT_EQ(scale_for_font_size(13), 2);
  EXPECT_EQ(scale_for_font_size(16), 2);
  EXPECT_EQ(scale_for_font_size(24), 3);
  EXPECT_EQ(scale_for_font_size(1), 1);  // never zero
}

TEST(TextMetrics, WidthAndHeight) {
  EXPECT_EQ(text_width("", 1), 0);
  EXPECT_EQ(text_width("a", 1), 5);
  EXPECT_EQ(text_width("ab", 1), 11);  // 5 + 1 gap + 5
  EXPECT_EQ(text_width("ab", 2), 22);
  EXPECT_EQ(text_height(1), 7);
  EXPECT_EQ(text_height(3), 21);
}

TEST(DrawText, WritesInsideItsBox) {
  Framebuffer fb(40, 12);
  draw_text(fb, 2, 2, "Hi", color::kBlack, 1);
  int black = 0;
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 40; ++x) {
      if (fb.pixel(x, y) == color::kBlack) {
        ++black;
        EXPECT_GE(x, 2);
        EXPECT_LT(x, 2 + text_width("Hi", 1));
        EXPECT_GE(y, 2);
        EXPECT_LT(y, 2 + text_height(1));
      }
    }
  }
  EXPECT_GT(black, 8);
}

TEST(DrawText, ScaleMagnifiesPixelCount) {
  Framebuffer small(30, 10);
  Framebuffer big(60, 20);
  draw_text(small, 0, 0, "A", color::kBlack, 1);
  draw_text(big, 0, 0, "A", color::kBlack, 2);
  auto count = [](const Framebuffer& fb) {
    int n = 0;
    for (int y = 0; y < fb.height(); ++y) {
      for (int x = 0; x < fb.width(); ++x) {
        if (fb.pixel(x, y) == color::kBlack) ++n;
      }
    }
    return n;
  };
  EXPECT_EQ(count(big), 4 * count(small));
}

TEST(DrawTextCentered, CentersHorizontally) {
  Framebuffer fb(101, 21);
  draw_text_centered(fb, 0, 0, 101, 21, "|", color::kBlack, 1);
  // The '|' glyph column should land near the middle.
  int min_x = 1000;
  int max_x = -1;
  for (int y = 0; y < 21; ++y) {
    for (int x = 0; x < 101; ++x) {
      if (fb.pixel(x, y) == color::kBlack) {
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
      }
    }
  }
  EXPECT_NEAR((min_x + max_x) / 2, 50, 2);
}

// Clipping at negative origins: the visible part must match the same text
// drawn fully on-canvas, pixel for pixel, shifted by the offset.
TEST(DrawTextCentered, ClipsAtNegativeOrigins) {
  // A box hanging past the top-left corner centers the text at negative
  // coordinates; only the overlap with the canvas may be painted.
  Framebuffer clipped(30, 10);
  draw_text_centered(clipped, -15, -6, 40, 18, "Wg", color::kBlack, 2);

  // Reference: same call on a canvas large enough to hold everything,
  // shifted so the geometry is identical but unclipped.
  const int sx = 20;
  const int sy = 12;
  Framebuffer full(30 + sx, 10 + sy);
  draw_text_centered(full, -15 + sx, -6 + sy, 40, 18, "Wg", color::kBlack, 2);

  int painted = 0;
  for (int y = 0; y < 10; ++y) {
    for (int x = 0; x < 30; ++x) {
      EXPECT_EQ(clipped.pixel(x, y), full.pixel(x + sx, y + sy))
          << x << "," << y;
      if (clipped.pixel(x, y) == color::kBlack) ++painted;
    }
  }
  EXPECT_GT(painted, 0);  // the clip must not swallow the visible part
}

TEST(DrawText, FullyOffCanvasIsANoOp) {
  Framebuffer fb(20, 8);
  const Framebuffer before = fb;
  draw_text(fb, -500, 2, "hello", color::kBlack, 1);
  draw_text(fb, 2, -500, "hello", color::kBlack, 3);
  EXPECT_TRUE(fb == before);
}

// The span cache must not conflate labels; different strings with shared
// prefixes stay distinct, and repeated draws are stable.
TEST(DrawText, RepeatedAndPrefixedLabelsRenderIndependently) {
  Framebuffer a1(80, 10);
  Framebuffer a2(80, 10);
  Framebuffer b(80, 10);
  draw_text(a1, 1, 1, "task", color::kBlack, 1);
  draw_text(a2, 1, 1, "task", color::kBlack, 1);
  draw_text(b, 1, 1, "tasks", color::kBlack, 1);
  EXPECT_TRUE(a1 == a2);
  EXPECT_FALSE(a1 == b);
}

}  // namespace
}  // namespace jedule::render
