#include "jedule/render/font.hpp"

#include <gtest/gtest.h>

#include <set>

namespace jedule::render {
namespace {

TEST(Glyphs, AllPrintableAsciiInBounds) {
  for (int c = 32; c <= 126; ++c) {
    const auto& glyph = glyph_bitmap(static_cast<char>(c));
    for (const auto row : glyph) {
      EXPECT_EQ(row & ~0x1F, 0) << "stray bits in glyph " << c;
    }
  }
}

TEST(Glyphs, VisibleCharactersAreNonEmpty) {
  for (int c = 33; c <= 126; ++c) {
    const auto& glyph = glyph_bitmap(static_cast<char>(c));
    int bits = 0;
    for (const auto row : glyph) bits += __builtin_popcount(row);
    EXPECT_GT(bits, 0) << "blank glyph for '" << static_cast<char>(c) << "'";
  }
}

TEST(Glyphs, SpaceIsBlank) {
  const auto& glyph = glyph_bitmap(' ');
  for (const auto row : glyph) EXPECT_EQ(row, 0);
}

TEST(Glyphs, DigitsAreDistinct) {
  std::set<std::array<std::uint8_t, kGlyphHeight>> seen;
  for (char c = '0'; c <= '9'; ++c) seen.insert(glyph_bitmap(c));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Glyphs, LettersAreDistinct) {
  std::set<std::array<std::uint8_t, kGlyphHeight>> seen;
  for (char c = 'A'; c <= 'Z'; ++c) seen.insert(glyph_bitmap(c));
  for (char c = 'a'; c <= 'z'; ++c) seen.insert(glyph_bitmap(c));
  EXPECT_EQ(seen.size(), 52u);
}

TEST(Glyphs, OutOfRangeGetsTofu) {
  const auto& tofu = glyph_bitmap(static_cast<char>(200));
  EXPECT_EQ(tofu, glyph_bitmap(static_cast<char>(5)));
  int bits = 0;
  for (const auto row : tofu) bits += __builtin_popcount(row);
  EXPECT_GT(bits, 10);  // a box, not blank
}

TEST(Scale, MapsFontSizesToIntegers) {
  EXPECT_EQ(scale_for_font_size(8), 1);
  EXPECT_EQ(scale_for_font_size(11), 1);
  EXPECT_EQ(scale_for_font_size(13), 2);
  EXPECT_EQ(scale_for_font_size(16), 2);
  EXPECT_EQ(scale_for_font_size(24), 3);
  EXPECT_EQ(scale_for_font_size(1), 1);  // never zero
}

TEST(TextMetrics, WidthAndHeight) {
  EXPECT_EQ(text_width("", 1), 0);
  EXPECT_EQ(text_width("a", 1), 5);
  EXPECT_EQ(text_width("ab", 1), 11);  // 5 + 1 gap + 5
  EXPECT_EQ(text_width("ab", 2), 22);
  EXPECT_EQ(text_height(1), 7);
  EXPECT_EQ(text_height(3), 21);
}

TEST(DrawText, WritesInsideItsBox) {
  Framebuffer fb(40, 12);
  draw_text(fb, 2, 2, "Hi", color::kBlack, 1);
  int black = 0;
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 40; ++x) {
      if (fb.pixel(x, y) == color::kBlack) {
        ++black;
        EXPECT_GE(x, 2);
        EXPECT_LT(x, 2 + text_width("Hi", 1));
        EXPECT_GE(y, 2);
        EXPECT_LT(y, 2 + text_height(1));
      }
    }
  }
  EXPECT_GT(black, 8);
}

TEST(DrawText, ScaleMagnifiesPixelCount) {
  Framebuffer small(30, 10);
  Framebuffer big(60, 20);
  draw_text(small, 0, 0, "A", color::kBlack, 1);
  draw_text(big, 0, 0, "A", color::kBlack, 2);
  auto count = [](const Framebuffer& fb) {
    int n = 0;
    for (int y = 0; y < fb.height(); ++y) {
      for (int x = 0; x < fb.width(); ++x) {
        if (fb.pixel(x, y) == color::kBlack) ++n;
      }
    }
    return n;
  };
  EXPECT_EQ(count(big), 4 * count(small));
}

TEST(DrawTextCentered, CentersHorizontally) {
  Framebuffer fb(101, 21);
  draw_text_centered(fb, 0, 0, 101, 21, "|", color::kBlack, 1);
  // The '|' glyph column should land near the middle.
  int min_x = 1000;
  int max_x = -1;
  for (int y = 0; y < 21; ++y) {
    for (int x = 0; x < 101; ++x) {
      if (fb.pixel(x, y) == color::kBlack) {
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
      }
    }
  }
  EXPECT_NEAR((min_x + max_x) / 2, 50, 2);
}

}  // namespace
}  // namespace jedule::render
