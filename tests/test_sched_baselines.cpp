#include <gtest/gtest.h>

#include "jedule/dag/generators.hpp"
#include "jedule/model/composite.hpp"
#include "jedule/sched/mtask.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::sched {
namespace {

using dag::Dag;

TEST(Baselines, TaskParallelUsesOneProcPerTask) {
  util::Rng rng(1);
  const Dag d = dag::fork_join_dag(2, 6, rng);
  const auto platform = platform::homogeneous_cluster(8);
  const auto r = schedule_baseline(d, platform, BaselineKind::kTaskParallel);
  EXPECT_EQ(r.algorithm, "TASK-PARALLEL");
  for (int p : r.allocation.procs) EXPECT_EQ(p, 1);
  for (const auto& item : r.mapping.mapping.items) {
    EXPECT_EQ(item.hosts.size(), 1u);
  }
}

TEST(Baselines, DataParallelUsesWholeMachineSerially) {
  util::Rng rng(2);
  const Dag d = dag::fork_join_dag(2, 6, rng);
  const auto platform = platform::homogeneous_cluster(8);
  const auto r = schedule_baseline(d, platform, BaselineKind::kDataParallel);
  EXPECT_EQ(r.algorithm, "DATA-PARALLEL");
  for (int p : r.allocation.procs) EXPECT_EQ(p, 8);
  // All tasks serialized: makespan equals the sum of all task times.
  double total = 0;
  for (double t : r.allocation.times) total += t;
  EXPECT_NEAR(r.makespan, total, 1e-6);
}

TEST(Baselines, ProduceFeasibleSchedules) {
  util::Rng rng(3);
  dag::LayeredDagOptions o;
  o.levels = 5;
  const Dag d = layered_random(o, rng);
  const auto platform = platform::homogeneous_cluster(8);
  for (auto kind : {BaselineKind::kTaskParallel, BaselineKind::kDataParallel}) {
    const auto r = schedule_baseline(d, platform, kind);
    const auto s = mtask_to_schedule(d, platform, r);
    EXPECT_NO_THROW(s.validate());
    EXPECT_FALSE(model::has_resource_conflicts(s));
  }
}

TEST(Baselines, MixedParallelBeatsBothOnForkJoin) {
  // The motivating claim (Sec. III.A): mixed-parallel scheduling reduces
  // completion time versus pure task- or pure data-parallelism. A fork-
  // join DAG wider than the machine with moderately scalable tasks is the
  // textbook case where both extremes lose.
  util::Rng rng(4);
  dag::LayeredDagOptions o;
  o.levels = 4;
  o.min_width = 6;
  o.max_width = 10;
  o.serial_fraction = 0.08;  // data-parallel hurts: imperfect speedup
  const Dag d = layered_random(o, rng);
  const auto platform = platform::homogeneous_cluster(16);

  const auto cpa = schedule_mtask(d, platform, MTaskAlgorithm::kMcpa2);
  const auto task_only =
      schedule_baseline(d, platform, BaselineKind::kTaskParallel);
  const auto data_only =
      schedule_baseline(d, platform, BaselineKind::kDataParallel);

  EXPECT_LT(cpa.makespan, task_only.makespan);
  EXPECT_LT(cpa.makespan, data_only.makespan);
}

}  // namespace
}  // namespace jedule::sched
