// GapTimeline (the O(log) free-gap tree behind HEFT and backfill) checked
// against a straight reimplementation of the linear busy-interval scans it
// replaced. The reference is intentionally the *old* code, so any semantic
// drift — especially around zero-length tasks, touching intervals, and
// duplicate reservations — shows up as a mismatch.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "jedule/sched/gaps.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::sched {
namespace {

/// The multiset-based timeline conservative_backfill used before the gap
/// tree, verbatim.
class ReferenceTimeline {
 public:
  bool is_free(double t0, double t1) const {
    for (const auto& [b, e] : busy_) {
      if (b >= t1) break;
      if (e > t0) return false;
    }
    return true;
  }

  double earliest_fit(double ready, double len) const {
    double t = ready;
    for (const auto& [b, e] : busy_) {
      if (b >= t + len) break;
      if (e > t) t = e;
    }
    return t;
  }

  void occupy(double t0, double t1) { busy_.emplace(t0, t1); }

  void release(double t0, double t1) {
    const auto it = busy_.find({t0, t1});
    ASSERT_TRUE(it != busy_.end());
    busy_.erase(it);
  }

  double last_end() const {
    double m = -1e300;
    for (const auto& [b, e] : busy_) m = std::max(m, e);
    return busy_.empty() ? m : m;
  }

  bool empty() const { return busy_.empty(); }

 private:
  std::multiset<std::pair<double, double>> busy_;
};

TEST(GapTimeline, EmptyTimelineIsAllFree) {
  GapTimeline tl;
  EXPECT_TRUE(tl.is_free(0, 100));
  EXPECT_TRUE(tl.is_free(-5, -5));
  EXPECT_EQ(tl.earliest_fit(3.5, 10), 3.5);
  EXPECT_EQ(tl.earliest_fit(0, 0), 0);
}

TEST(GapTimeline, InsertionFindsGaps) {
  GapTimeline tl;
  tl.occupy(0, 10);
  tl.occupy(20, 30);
  EXPECT_EQ(tl.earliest_fit(0, 5), 10);    // fits in [10, 20)
  EXPECT_EQ(tl.earliest_fit(0, 10), 10);   // exactly fills the hole
  EXPECT_EQ(tl.earliest_fit(0, 11), 30);   // too big, goes after the end
  EXPECT_EQ(tl.earliest_fit(12, 5), 12);   // mid-gap start is honored
  EXPECT_EQ(tl.earliest_fit(12, 9), 30);   // not enough room left at 12
  EXPECT_FALSE(tl.is_free(5, 6));
  EXPECT_TRUE(tl.is_free(10, 20));
  EXPECT_EQ(tl.last_end(), 30);
}

TEST(GapTimeline, TouchingIntervalsLeaveAnUncrossableMarker) {
  GapTimeline tl;
  tl.occupy(0, 5);
  tl.occupy(5, 9);
  // [0,5) and [5,9) touch at 5: a later task cannot straddle it, but after
  // releasing one side the other's boundary remains exact.
  EXPECT_EQ(tl.earliest_fit(0, 1), 9);
  EXPECT_TRUE(tl.is_free(9, 12));
  tl.release(0, 5);
  EXPECT_EQ(tl.earliest_fit(0, 5), 0);
  EXPECT_EQ(tl.earliest_fit(0, 6), 9);
  tl.release(5, 9);
  EXPECT_EQ(tl.earliest_fit(0, 100), 0);
}

TEST(GapTimeline, ZeroLengthBusyBlocksOnlyStrictInterior) {
  GapTimeline tl;
  tl.occupy(5, 5);
  EXPECT_TRUE(tl.is_free(0, 5));    // ends exactly at the point
  EXPECT_TRUE(tl.is_free(5, 9));    // starts exactly at the point
  EXPECT_FALSE(tl.is_free(4, 6));   // strictly contains it
  EXPECT_TRUE(tl.is_free(5, 5));
  EXPECT_EQ(tl.earliest_fit(0, 3), 0);
  EXPECT_EQ(tl.earliest_fit(3, 3), 5);  // cannot straddle the point
  tl.occupy(5, 5);                      // refcounted duplicate
  tl.release(5, 5);
  EXPECT_FALSE(tl.is_free(4, 6));
  tl.release(5, 5);
  EXPECT_TRUE(tl.is_free(4, 6));
}

TEST(GapTimeline, DuplicateIdenticalIntervalsAreRefcounted) {
  GapTimeline tl;
  tl.occupy(2, 8);
  tl.occupy(2, 8);
  tl.release(2, 8);
  EXPECT_FALSE(tl.is_free(2, 8));
  EXPECT_EQ(tl.earliest_fit(0, 4), 8);
  tl.release(2, 8);
  EXPECT_TRUE(tl.is_free(2, 8));
}

TEST(GapTimeline, RandomizedAgainstLinearReference) {
  util::Rng rng(20260806);
  for (int run = 0; run < 50; ++run) {
    GapTimeline tl;
    ReferenceTimeline ref;
    // Held (occupied) intervals we may later release. Times are drawn from
    // a small integer grid to force touching boundaries, duplicates and
    // zero-length intervals with high probability.
    std::vector<std::pair<double, double>> held;
    for (int step = 0; step < 400; ++step) {
      const auto t0 = static_cast<double>(rng.uniform_int(0, 60));
      const auto len = static_cast<double>(rng.uniform_int(0, 8));
      switch (rng.uniform_int(0, 3)) {
        case 0: {  // occupy the earliest fit (what the schedulers do)
          const double at = ref.earliest_fit(t0, len);
          ASSERT_EQ(at, tl.earliest_fit(t0, len)) << "run " << run;
          ref.occupy(at, at + len);
          tl.occupy(at, at + len);
          held.emplace_back(at, at + len);
          break;
        }
        case 1: {  // release a random held interval
          if (held.empty()) break;
          const auto i = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(held.size()) - 1));
          ref.release(held[i].first, held[i].second);
          tl.release(held[i].first, held[i].second);
          held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
        case 2: {  // free query
          ASSERT_EQ(ref.is_free(t0, t0 + len), tl.is_free(t0, t0 + len))
              << "run " << run << " [" << t0 << ", " << t0 + len << ")";
          break;
        }
        default: {  // fit query only
          ASSERT_EQ(ref.earliest_fit(t0, len), tl.earliest_fit(t0, len))
              << "run " << run << " ready " << t0 << " len " << len;
          break;
        }
      }
    }
    // Drain and confirm the timeline ends up all-free again.
    for (const auto& [b, e] : held) {
      ref.release(b, e);
      tl.release(b, e);
    }
    EXPECT_TRUE(tl.is_free(-1e9, 1e9));
    EXPECT_EQ(tl.earliest_fit(0, 1e6), 0);
  }
}

TEST(GapTimeline, AppendOnlyLastEndTracksMaximum) {
  GapTimeline tl;
  EXPECT_LT(tl.last_end(), -1e300);  // -infinity before any occupation
  tl.occupy(0, 4);
  tl.occupy(10, 12);
  tl.occupy(4, 7);
  EXPECT_EQ(tl.last_end(), 12);
}

}  // namespace
}  // namespace jedule::sched
