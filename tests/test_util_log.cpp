#include "jedule/util/log.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "jedule/util/stopwatch.hpp"

namespace jedule::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelThresholdIsGlobal) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST(Log, StreamMacroCompilesAndEmits) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);  // silent during tests
  JED_DEBUG() << "value " << 42;
  JED_INFO() << "info";
  JED_WARN() << "warn";
  JED_ERROR() << "error";
  // Nothing to assert beyond "did not crash": output goes to stderr.
  SUCCEED();
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = watch.seconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  watch.reset();
  EXPECT_LT(watch.seconds(), 0.015);
}

}  // namespace
}  // namespace jedule::util
