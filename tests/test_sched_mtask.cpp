#include "jedule/sched/mtask.hpp"

#include <gtest/gtest.h>

#include "jedule/dag/generators.hpp"
#include "jedule/model/composite.hpp"
#include "jedule/model/stats.hpp"
#include "jedule/sched/mapping.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::sched {
namespace {

using dag::Dag;

TEST(BottomLevels, ChainSumsBelow) {
  Dag d;
  const int a = d.add_node("a", 1.0);
  const int b = d.add_node("b", 1.0);
  const int c = d.add_node("c", 1.0);
  d.add_edge(a, b);
  d.add_edge(b, c);
  const auto bl = bottom_levels(d, {2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(bl[static_cast<std::size_t>(c)], 4.0);
  EXPECT_DOUBLE_EQ(bl[static_cast<std::size_t>(b)], 7.0);
  EXPECT_DOUBLE_EQ(bl[static_cast<std::size_t>(a)], 9.0);
}

TEST(MapAllocations, RejectsOversizedAllocation) {
  Dag d;
  d.add_node("a", 1.0);
  const auto p = platform::homogeneous_cluster(4);
  EXPECT_THROW(map_allocations(d, p, {0, 1}, {3}), ValidationError);
  EXPECT_THROW(map_allocations(d, p, {0, 1}, {0}), ValidationError);
}

TEST(MapAllocations, ProducesFeasibleSchedules) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng rng(seed);
    dag::LayeredDagOptions o;
    o.levels = 5;
    const Dag d = layered_random(o, rng);
    const auto platform = platform::homogeneous_cluster(8);
    const auto alloc = cpa_allocate(d, 8);
    std::vector<int> pool{0, 1, 2, 3, 4, 5, 6, 7};
    const auto mapped = map_allocations(d, platform, pool, alloc.procs);

    // Estimates respect precedence and allocation sizes.
    for (const auto& e : d.edges()) {
      EXPECT_GE(mapped.est_start[static_cast<std::size_t>(e.dst)],
                mapped.est_finish[static_cast<std::size_t>(e.src)] - 1e-9);
    }
    for (int v = 0; v < d.node_count(); ++v) {
      EXPECT_EQ(static_cast<int>(
                    mapped.mapping.items[static_cast<std::size_t>(v)]
                        .hosts.size()),
                alloc.procs[static_cast<std::size_t>(v)]);
    }
    // Simulated execution double-books nothing.
    const auto sim = sim::simulate_dag(d, platform, mapped.mapping);
    sim::ToScheduleOptions so;
    so.include_transfers = false;
    const auto schedule =
        sim::to_schedule(d, platform, mapped.mapping, sim, so);
    EXPECT_FALSE(model::has_resource_conflicts(schedule)) << "seed " << seed;
  }
}

TEST(ScheduleMtask, RequiresSingleCluster) {
  util::Rng rng(1);
  const Dag d = dag::serial_dag(3, rng);
  const auto p = platform::heterogeneous_case_study(0.05);
  EXPECT_THROW(schedule_mtask(d, p, MTaskAlgorithm::kCpa), ArgumentError);
}

TEST(ScheduleMtask, Fig4StoryEndToEnd) {
  const int P = 16;
  const Dag d = dag::mcpa_pathological_dag(P);
  const auto platform = platform::homogeneous_cluster(P);

  const auto cpa = schedule_mtask(d, platform, MTaskAlgorithm::kCpa);
  const auto mcpa = schedule_mtask(d, platform, MTaskAlgorithm::kMcpa);
  const auto mcpa2 = schedule_mtask(d, platform, MTaskAlgorithm::kMcpa2);

  // "one can observe that the CPA algorithm exploits the computational
  // resources of the cluster better than MCPA ... the schedule contains
  // large holes" -> MCPA's makespan and idle time are far worse.
  EXPECT_LT(cpa.makespan * 2, mcpa.makespan);

  const auto cpa_stats =
      model::compute_stats(mtask_to_schedule(d, platform, cpa));
  const auto mcpa_stats =
      model::compute_stats(mtask_to_schedule(d, platform, mcpa));
  EXPECT_GT(mcpa_stats.idle_time, 5 * cpa_stats.idle_time);
  EXPECT_GT(cpa_stats.utilization, 0.6);
  EXPECT_LT(mcpa_stats.utilization, 0.3);

  // "For the example shown in Figure 4 the poly-algorithm MCPA2 generates
  // the same schedule as CPA."
  EXPECT_EQ(mcpa2.algorithm, "MCPA2/CPA");
  EXPECT_DOUBLE_EQ(mcpa2.makespan, cpa.makespan);
}

TEST(ScheduleMtask, Mcpa2NeverWorseThanEither) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    dag::LayeredDagOptions o;
    o.levels = 4;
    const Dag d = layered_random(o, rng);
    const auto platform = platform::homogeneous_cluster(8);
    const auto cpa = schedule_mtask(d, platform, MTaskAlgorithm::kCpa);
    const auto mcpa = schedule_mtask(d, platform, MTaskAlgorithm::kMcpa);
    const auto mcpa2 = schedule_mtask(d, platform, MTaskAlgorithm::kMcpa2);
    EXPECT_LE(mcpa2.makespan, cpa.makespan + 1e-9);
    EXPECT_LE(mcpa2.makespan, mcpa.makespan + 1e-9);
  }
}

TEST(MtaskToSchedule, CarriesMetaAndValidates) {
  const Dag d = dag::mcpa_pathological_dag(8);
  const auto platform = platform::homogeneous_cluster(8);
  const auto result = schedule_mtask(d, platform, MTaskAlgorithm::kCpa);
  const auto s = mtask_to_schedule(d, platform, result);
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.meta_value("algorithm"), "CPA");
  EXPECT_TRUE(s.meta_value("makespan").has_value());
  EXPECT_TRUE(s.meta_value("t_cp").has_value());
  EXPECT_EQ(s.tasks().size(), static_cast<std::size_t>(d.node_count()));
}

TEST(AlgorithmName, Strings) {
  EXPECT_STREQ(algorithm_name(MTaskAlgorithm::kCpa), "CPA");
  EXPECT_STREQ(algorithm_name(MTaskAlgorithm::kMcpa), "MCPA");
  EXPECT_STREQ(algorithm_name(MTaskAlgorithm::kMcpa2), "MCPA2");
}

}  // namespace
}  // namespace jedule::sched
