#include "jedule/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "jedule/util/error.hpp"

namespace jedule::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(UniformInt, StaysInClosedRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(UniformInt, HitsAllValuesOfSmallRange) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 3));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(UniformInt, DegenerateRange) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Uniform, HalfOpenUnit) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Uniform, MeanIsCentered) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.05);
}

TEST(Exponential, PositiveWithRequestedMean) {
  Rng rng(8);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(3.0);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Normal, MeanAndSpread) {
  Rng rng(9);
  double sum = 0;
  double sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.15);
}

TEST(Lognormal, AlwaysPositive) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Bernoulli, Extremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Bernoulli, RoughFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(WeightedIndex, ZeroWeightNeverPicked) {
  Rng rng(13);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(rng.weighted_index(weights), 1u);
  }
}

TEST(WeightedIndex, ProportionalFrequencies) {
  Rng rng(14);
  const std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.weighted_index(weights) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(Shuffle, IsAPermutation) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Shuffle, ActuallyShuffles) {
  Rng rng(16);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto before = v;
  rng.shuffle(v);
  EXPECT_NE(v, before);
}

}  // namespace
}  // namespace jedule::util
