// engine layer: content-hash-addressed ScheduleStore (dedup, LRU
// eviction, thread-safe handout of immutable entries) and RenderService
// (artifact cache keyed by content x options, single-flight collapse of
// concurrent identical renders, windowed tiles). The concurrency cases
// run under the tsan ctest configuration.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <filesystem>

#include "jedule/engine/events.hpp"
#include "jedule/engine/options.hpp"
#include "jedule/engine/render_service.hpp"
#include "jedule/engine/session_state.hpp"
#include "jedule/engine/store.hpp"
#include "jedule/io/jedule_xml.hpp"
#include "jedule/io/snapshot.hpp"
#include "jedule/util/inflate.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/render/deflate.hpp"
#include "jedule/render/exporter.hpp"
#include "jedule/util/checksum.hpp"
#include "jedule/util/error.hpp"

namespace jedule::engine {
namespace {

model::Schedule sample_schedule(int tasks = 8, double shift = 0.0) {
  model::ScheduleBuilder builder;
  builder.cluster(0, "c0", 8).cluster(1, "c1", 4);
  for (int i = 0; i < tasks; ++i) {
    const double start = shift + i;
    builder
        .task(std::to_string(i), i % 2 ? "computation" : "transfer", start,
              start + 1.5)
        .on(i % 2, i % 3, 2);
  }
  return builder.build();
}

render::RenderOptions small_options() {
  render::RenderOptions options;
  options.style.width = 200;
  options.style.height = 120;
  options.style.show_labels = false;
  options.threads = 1;
  return options;
}

TEST(ScheduleEntry, HashedValidatedAndIndexed) {
  const EntryPtr entry = make_entry(sample_schedule(), "mem");
  EXPECT_EQ(entry->content_hash, entry->index.content_hash());
  EXPECT_EQ(entry->id.size(), 16u);
  EXPECT_EQ(entry->id.find_first_not_of("0123456789abcdef"),
            std::string::npos);
  EXPECT_EQ(entry->source, "mem");
  EXPECT_DOUBLE_EQ(entry->full_range.begin, 0.0);

  // Identical content hashes identically regardless of the source label;
  // different content does not.
  EXPECT_EQ(make_entry(sample_schedule(), "other")->id, entry->id);
  EXPECT_NE(make_entry(sample_schedule(8, 1.0), "mem")->id, entry->id);
}

TEST(ScheduleEntry, InvalidScheduleRejected) {
  model::Schedule bad;
  bad.add_cluster(0, "c", 2);
  model::Task t("x", "job", 0, 1);
  t.allocate(0, 5, 4);  // hosts 5..8 on a 2-host cluster
  bad.add_task(std::move(t));
  EXPECT_THROW(make_entry(std::move(bad)), ValidationError);
}

TEST(ScheduleEntry, ParseEntrySniffsGzip) {
  const std::string xml = io::write_schedule_xml(sample_schedule());
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(xml.data());
  // Minimal RFC 1952 member around our own deflate stream.
  std::string gz = {'\x1f', '\x8b', 8, 0, 0, 0, 0, 0, 0, '\xff'};
  const auto body = render::deflate_compress(bytes, xml.size());
  gz.append(body.begin(), body.end());
  for (std::uint32_t v : {util::crc32(bytes, xml.size()),
                          static_cast<std::uint32_t>(xml.size())}) {
    for (int i = 0; i < 4; ++i) {
      gz.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  const EntryPtr plain = parse_entry(xml, "trace.jed");
  const EntryPtr zipped = parse_entry(gz, "trace.jed.gz");
  EXPECT_EQ(plain->id, zipped->id);
  EXPECT_EQ(zipped->schedule().tasks().size(), 8u);
}

TEST(ScheduleStore, DeduplicatesByContentHash) {
  ScheduleStore store;
  const auto first = store.put(make_entry(sample_schedule(), "a"));
  EXPECT_FALSE(first.deduplicated);
  const auto again = store.put(make_entry(sample_schedule(), "b"));
  EXPECT_TRUE(again.deduplicated);
  // The original entry object is handed back, not the re-upload.
  EXPECT_EQ(again.entry.get(), first.entry.get());
  EXPECT_EQ(again.entry->source, "a");

  const auto stats = store.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.puts, 2u);
  EXPECT_EQ(stats.dedup_hits, 1u);
}

TEST(ScheduleStore, FindEraseList) {
  ScheduleStore store;
  const auto put = store.put(make_entry(sample_schedule(), "a"));
  EXPECT_EQ(store.find(put.entry->id).get(), put.entry.get());
  EXPECT_EQ(store.find("0000000000000000"), nullptr);
  EXPECT_EQ(store.list().size(), 1u);
  EXPECT_TRUE(store.erase(put.entry->id));
  EXPECT_FALSE(store.erase(put.entry->id));
  EXPECT_EQ(store.list().size(), 0u);
  EXPECT_EQ(store.stats().lookup_misses, 1u);
}

TEST(ScheduleStore, EvictsLeastRecentlyUsed) {
  ScheduleStore::Options opt;
  opt.max_entries = 2;
  ScheduleStore store(opt);
  const auto a = store.put(make_entry(sample_schedule(4, 0), "a")).entry;
  const auto b = store.put(make_entry(sample_schedule(4, 100), "b")).entry;
  // Touch a so b becomes the LRU victim.
  ASSERT_NE(store.find(a->id), nullptr);
  const auto c = store.put(make_entry(sample_schedule(4, 200), "c")).entry;

  EXPECT_EQ(store.find(b->id), nullptr);
  EXPECT_NE(store.find(a->id), nullptr);
  EXPECT_NE(store.find(c->id), nullptr);
  EXPECT_EQ(store.stats().evictions, 1u);
  // The evicted entry stays usable through outstanding references.
  EXPECT_EQ(b->schedule().tasks().size(), 4u);
}

TEST(ScheduleStore, TaskBudgetEvictsButAdmitsOversizedEntry) {
  ScheduleStore::Options opt;
  opt.max_tasks = 10;
  ScheduleStore store(opt);
  store.put(make_entry(sample_schedule(8, 0), "a"));
  store.put(make_entry(sample_schedule(8, 100), "b"));  // 16 > 10: evict a
  EXPECT_EQ(store.stats().entries, 1u);
  EXPECT_EQ(store.stats().tasks, 8u);

  ScheduleStore store2(opt);
  const auto big = store2.put(make_entry(sample_schedule(50, 0), "big"));
  // A single over-budget entry is still admitted.
  EXPECT_EQ(store2.stats().entries, 1u);
  EXPECT_EQ(big.entry->schedule().tasks().size(), 50u);
}

TEST(RenderService, CachesByContentAndOptions) {
  RenderService service;
  const EntryPtr entry = make_entry(sample_schedule());

  const auto first = service.render(entry, small_options(), "png");
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.media_type, "image/png");
  const auto second = service.render(entry, small_options(), "png");
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(*first.bytes, *second.bytes);

  // A different format or option digest is a different artifact.
  EXPECT_FALSE(service.render(entry, small_options(), "svg").cache_hit);
  auto wider = small_options();
  wider.style.width = 300;
  EXPECT_FALSE(service.render(entry, wider, "png").cache_hit);

  const auto stats = service.stats();
  EXPECT_EQ(stats.artifact_hits, 1u);
  EXPECT_EQ(stats.artifact_misses, 3u);
  EXPECT_EQ(stats.artifact_entries, 3u);
  EXPECT_GT(stats.artifact_bytes, 0u);

  EXPECT_THROW(service.render(entry, small_options(), "jpeg"), ArgumentError);
}

TEST(RenderService, ThreadCountStaysOutOfTheCacheKey) {
  RenderService service;
  const EntryPtr entry = make_entry(sample_schedule());
  auto options = small_options();
  options.threads = 1;
  const auto serial = service.render(entry, options, "png");
  options.threads = 4;
  const auto parallel = service.render(entry, options, "png");
  EXPECT_TRUE(parallel.cache_hit);  // same digest: renders are byte-identical
  EXPECT_EQ(*serial.bytes, *parallel.bytes);
}

TEST(RenderService, GzipEncodingCachesCompressedBytesOnce) {
  RenderService service;
  const EntryPtr entry = make_entry(sample_schedule());

  const auto packed = service.render(entry, small_options(), "svg",
                                     RenderService::Encoding::gzip);
  EXPECT_FALSE(packed.cache_hit);
  EXPECT_EQ(packed.encoding, RenderService::Encoding::gzip);
  EXPECT_EQ(packed.media_type, "image/svg+xml");

  // The identity render was produced (and cached) on the way: fetching it
  // is a hit, its bytes are the decompressed gzip body, and raw_size on
  // the compressed artifact reports the identity size.
  const auto identity = service.render(entry, small_options(), "svg");
  EXPECT_TRUE(identity.cache_hit);
  EXPECT_EQ(identity.raw_size, identity.bytes->size());
  EXPECT_EQ(packed.raw_size, identity.bytes->size());
  EXPECT_LT(packed.bytes->size(), identity.bytes->size());
  const auto raw = util::gzip_decompress(
      reinterpret_cast<const std::uint8_t*>(packed.bytes->data()),
      packed.bytes->size());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(raw.data()),
                        raw.size()),
            *identity.bytes);

  // Repeat negotiated requests never recompress.
  const auto again = service.render(entry, small_options(), "svg",
                                    RenderService::Encoding::gzip);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(*again.bytes, *packed.bytes);
  const auto stats = service.stats();
  EXPECT_EQ(stats.artifact_misses, 2u);  // identity + gzip, each once
  EXPECT_EQ(stats.artifact_hits, 2u);
}

TEST(RenderService, EvictsArtifactsOverBudget) {
  RenderService::Options opt;
  opt.artifact_entries = 2;
  RenderService service(opt);
  const EntryPtr entry = make_entry(sample_schedule());
  auto options = small_options();
  for (int w = 160; w < 165; ++w) {
    options.style.width = w;
    service.render(entry, options, "ppm");
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.artifact_entries, 2u);
  EXPECT_EQ(stats.artifact_evictions, 3u);
}

TEST(RenderService, TilesSliceTheTimeAxis) {
  RenderService service;
  const EntryPtr entry = make_entry(sample_schedule());

  const auto whole = service.render_tile(entry, 0, -1, 0, small_options());
  EXPECT_FALSE(whole.cache_hit);
  EXPECT_EQ(whole.media_type, "image/png");
  EXPECT_GT(whole.bytes->size(), 0u);
  EXPECT_TRUE(service.render_tile(entry, 0, -1, 0, small_options()).cache_hit);

  // Adjacent tiles at one zoom level are distinct artifacts...
  const auto left = service.render_tile(entry, 0, -1, 2, small_options());
  const auto right = service.render_tile(entry, 1, -1, 2, small_options());
  EXPECT_FALSE(left.cache_hit);
  EXPECT_FALSE(right.cache_hit);
  EXPECT_NE(*left.bytes, *right.bytes);
  // ...and a per-cluster row differs from the all-clusters tile.
  const auto row = service.render_tile(entry, 0, 1, 2, small_options());
  EXPECT_NE(*row.bytes, *left.bytes);

  EXPECT_THROW(service.render_tile(entry, 0, -1, 31, small_options()),
               ArgumentError);
  EXPECT_THROW(service.render_tile(entry, 4, -1, 2, small_options()),
               ArgumentError);
  EXPECT_THROW(service.render_tile(entry, 0, 99, 2, small_options()),
               ArgumentError);
}

TEST(RenderService, ConcurrentIdenticalRendersCollapseSingleFlight) {
  RenderService service;
  const EntryPtr entry = make_entry(sample_schedule(64));
  constexpr int kClients = 8;

  std::vector<std::string> bodies(kClients);
  std::atomic<int> hits{0};
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        const auto artifact = service.render(entry, small_options(), "png");
        bodies[static_cast<std::size_t>(i)] = *artifact.bytes;
        if (artifact.cache_hit) hits.fetch_add(1);
      });
    }
    for (auto& t : clients) t.join();
  }

  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(bodies[static_cast<std::size_t>(i)], bodies[0]);
  }
  // Exactly one client rendered; everyone else was served from the cache.
  EXPECT_EQ(hits.load(), kClients - 1);
  const auto stats = service.stats();
  EXPECT_EQ(stats.artifact_misses, 1u);
  EXPECT_EQ(stats.artifact_hits, static_cast<std::uint64_t>(kClients - 1));
}

TEST(RenderService, ConcurrentUploadAndRenderAcrossEntries) {
  // Threads race puts, lookups and renders on a shared store + service;
  // byte-identity per schedule must survive the interleaving.
  ScheduleStore store;
  RenderService service;
  constexpr int kSchedules = 4;
  constexpr int kThreads = 8;

  std::vector<std::string> reference(kSchedules);
  for (int s = 0; s < kSchedules; ++s) {
    const EntryPtr entry = make_entry(sample_schedule(16, 10.0 * s));
    reference[static_cast<std::size_t>(s)] =
        *service.render(entry, small_options(), "ppm").bytes;
  }

  std::atomic<int> mismatches{0};
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        for (int round = 0; round < 6; ++round) {
          const int s = (w + round) % kSchedules;
          const auto put =
              store.put(make_entry(sample_schedule(16, 10.0 * s)));
          const auto artifact =
              service.render(put.entry, small_options(), "ppm");
          if (*artifact.bytes != reference[static_cast<std::size_t>(s)]) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : workers) t.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(store.stats().entries, static_cast<std::size_t>(kSchedules));
  EXPECT_GE(store.stats().dedup_hits, 1u);
}

TEST(ScheduleEntry, AppendedEntryMatchesFreshIngestOnEveryExporter) {
  // The acceptance bar for O(delta) append: an entry grown via
  // append_entry must be indistinguishable — id, hashes, and every
  // exporter's bytes at any thread count — from a fresh ingest of the
  // same final schedule.
  const EntryPtr base = make_entry(sample_schedule(16), "base");
  const EntryPtr fresh = make_entry(sample_schedule(24), "fresh");
  // Force the base's composites so the grown entry takes the
  // append_composites extension path rather than a full resweep.
  base->composites();

  const auto events = events_from_tasks(fresh->schedule(), 16);
  ASSERT_EQ(events.size(), 8u);
  const EntryPtr grown = append_entry(base, events);

  EXPECT_EQ(grown->id, fresh->id);
  EXPECT_EQ(grown->content_hash, fresh->content_hash);
  EXPECT_EQ(grown->task_count(), fresh->task_count());
  EXPECT_EQ(io::write_schedule_xml(grown->schedule()),
            io::write_schedule_xml(fresh->schedule()));

  const auto names = render::ExporterRegistry::instance().exporter_names();
  ASSERT_GE(names.size(), 5u);
  for (const std::string& format : names) {
    for (int threads : {1, 4}) {
      auto render_with = [&](const EntryPtr& entry) {
        render::RenderOptions options = small_options();
        options.threads = threads;
        options.style.show_composites = true;
        options.task_index = &entry->index;
        options.assume_validated = true;
        const auto composites = entry->composites(threads);
        options.composites = composites.get();
        return render::render_to_bytes(entry->schedule(), options, format);
      };
      EXPECT_EQ(render_with(grown), render_with(fresh))
          << format << " threads=" << threads;
    }
  }
}

TEST(ScheduleEntry, SnapshotEntryStaysMappedUntilRendered) {
  const EntryPtr source = make_entry(sample_schedule(64), "mem");
  const std::string path =
      (std::filesystem::temp_directory_path() / "jedule_store_entry.jbin")
          .string();
  io::save_snapshot(source->arena(), source->index, path);

  const EntryPtr loaded = load_entry(path);
  EXPECT_EQ(loaded->id, source->id);
  EXPECT_EQ(loaded->content_hash, source->content_hash);
  EXPECT_EQ(loaded->task_count(), 64u);
  EXPECT_EQ(loaded->cluster_count(), 2u);

  // Before anything renders, the entry serves straight off the mapping.
  const auto cold = loaded->resident();
  EXPECT_GT(cold.mmap_bytes, 0u);

  // Forcing the AoS materialization moves bytes onto the heap but keeps
  // the mapped columns (and their identity) intact.
  EXPECT_EQ(io::write_schedule_xml(loaded->schedule()),
            io::write_schedule_xml(source->schedule()));
  const auto warm = loaded->resident();
  EXPECT_EQ(warm.mmap_bytes, cold.mmap_bytes);
  EXPECT_GT(warm.heap_bytes, cold.heap_bytes);

  // Store stats split resident bytes by backing, so /stats can report
  // how much of the fleet is still zero-copy.
  ScheduleStore store;
  store.put(loaded);
  store.put(make_entry(sample_schedule(8, 500.0), "heap-only"));
  const auto stats = store.stats();
  EXPECT_GE(stats.resident_mmap_bytes, cold.mmap_bytes);
  EXPECT_GT(stats.resident_heap_bytes, 0u);
  std::filesystem::remove(path);
}

TEST(SessionState, ViewsShareOneEntry) {
  const EntryPtr entry = make_entry(sample_schedule());
  SessionState a(entry, color::standard_colormap(), {});
  SessionState b(entry, color::standard_colormap(), {});
  EXPECT_EQ(&a.schedule(), &b.schedule());
  EXPECT_EQ(&a.index(), &b.index());

  a.zoom_to_time(1.0, 3.0);
  EXPECT_TRUE(a.style().time_window.has_value());
  EXPECT_FALSE(b.style().time_window.has_value());  // views are independent

  // The view outlives the store dropping its reference.
  ScheduleStore::Options opt;
  opt.max_entries = 1;
  ScheduleStore store(opt);
  store.put(entry);
  store.put(make_entry(sample_schedule(4, 500.0)));
  EXPECT_EQ(store.find(entry->id), nullptr);
  EXPECT_GT(a.frame().width(), 0);
}

TEST(Options, SharedParserMatchesCliAndHttpSpelling) {
  const std::map<std::string, std::string> query = {
      {"width", "320"},   {"height", "200"},      {"aligned", ""},
      {"window", "1:42"}, {"lod", "force"},       {"grayscale", "true"},
      {"threads", "2"},   {"highlight", "user=6447"}};
  auto get = [&query](const std::string& key) -> std::optional<std::string> {
    auto it = query.find(key);
    if (it == query.end()) return std::nullopt;
    return it->second;
  };
  const render::RenderOptions options = render_options_from(get, false);
  EXPECT_EQ(options.style.width, 320);
  EXPECT_EQ(options.style.height, 200);
  EXPECT_EQ(options.style.view_mode, model::ViewMode::kAligned);
  ASSERT_TRUE(options.style.time_window.has_value());
  EXPECT_DOUBLE_EQ(options.style.time_window->end, 42.0);
  EXPECT_EQ(options.style.lod, render::LodMode::kForce);
  EXPECT_EQ(options.style.highlight_key, "user");
  EXPECT_EQ(options.threads, 2);

  auto bad = [](const std::string& key) -> std::optional<std::string> {
    if (key == "width") return "zero";
    return std::nullopt;
  };
  EXPECT_THROW(render_options_from(bad), ArgumentError);
  auto cmap = [](const std::string& key) -> std::optional<std::string> {
    if (key == "cmap") return "/etc/passwd";
    return std::nullopt;
  };
  // The HTTP frontend must not turn a query param into a file read.
  EXPECT_THROW(render_options_from(cmap, false), ArgumentError);
  EXPECT_EQ(parse_lod_mode("auto"), render::LodMode::kAuto);
  EXPECT_THROW(parse_lod_mode("sometimes"), ArgumentError);
}

}  // namespace
}  // namespace jedule::engine
