// Differential suite for model::EdgeIndex (DESIGN.md §4j): window queries
// against a brute-force oracle over random dependency DAGs, the O(delta)
// extension constructor against a from-scratch build, the snapshot
// round-trip (including the mmap path), and the critical-path DP against
// dag::Dag on the same edges.

#include "jedule/model/edge_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <random>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "jedule/dag/dag.hpp"
#include "jedule/io/snapshot.hpp"
#include "jedule/model/arena.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/model/task_index.hpp"

namespace jedule::model {
namespace {

/// Deterministic random schedule over two clusters with `m` forward
/// dependency edges; some tasks allocate on both clusters, so edges cross
/// clusters and are indexed in each.
Schedule random_dag_schedule(int n, int m, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> start(0.0, 100.0);
  std::uniform_real_distribution<double> dur(0.0, 8.0);
  std::uniform_int_distribution<int> host(0, 12);
  std::uniform_int_distribution<int> span(1, 4);
  std::uniform_int_distribution<int> coin(0, 3);

  ScheduleBuilder b;
  b.cluster(0, "c0", 16).cluster(1, "c1", 16);
  for (int i = 0; i < n; ++i) {
    const double s = start(rng);
    const double e = coin(rng) == 0 ? s : s + dur(rng);
    b.task(std::to_string(i), i % 2 ? "computation" : "transfer", s, e);
    b.on(i % 2, host(rng), span(rng));
    if (coin(rng) == 0) {
      const int h2 = host(rng);
      b.hosts((i + 1) % 2, {h2, (h2 + 5) % 13});
    }
  }
  Schedule s = b.build();

  std::uniform_int_distribution<int> pick(0, n - 1);
  std::uniform_real_distribution<double> data(0.0, 64.0);
  std::set<std::pair<int, int>> used;
  while (static_cast<int>(used.size()) < m) {
    int a = pick(rng), c = pick(rng);
    if (a == c) continue;
    if (a > c) std::swap(a, c);
    if (!used.insert({a, c}).second) continue;
    s.add_dependency(static_cast<std::uint32_t>(a),
                     static_cast<std::uint32_t>(c), data(rng));
  }
  s.validate();
  return s;
}

/// Brute-force oracle mirroring emit_entries: one entry per (edge x
/// cluster containing either endpoint), interval [min(src end, dst start),
/// max(src end, dst start)], representative host = first host of the
/// endpoint's first configuration in the cluster (-1 when absent).
std::vector<EdgeIndex::Entry> brute_entries(const Schedule& s,
                                            int cluster_id) {
  auto rep_host = [&](std::uint32_t task) -> std::int32_t {
    for (const auto& cfg : s.tasks()[task].configurations()) {
      if (cfg.cluster_id == cluster_id) return cfg.hosts.front().start;
    }
    return -1;
  };
  auto in_cluster = [&](std::uint32_t task) {
    for (const auto& cfg : s.tasks()[task].configurations()) {
      if (cfg.cluster_id == cluster_id) return true;
    }
    return false;
  };
  std::vector<EdgeIndex::Entry> out;
  for (const Dependency& d : s.dependencies()) {
    if (!in_cluster(d.src) && !in_cluster(d.dst)) continue;
    EdgeIndex::Entry e;
    e.begin = std::min(s.tasks()[d.src].end_time(),
                       s.tasks()[d.dst].start_time());
    e.end = std::max(s.tasks()[d.src].end_time(),
                     s.tasks()[d.dst].start_time());
    e.src = d.src;
    e.dst = d.dst;
    e.src_host = rep_host(d.src);
    e.dst_host = rep_host(d.dst);
    out.push_back(e);
  }
  return out;
}

using Key = std::tuple<double, double, std::int32_t, std::int32_t,
                       std::uint32_t, std::uint32_t>;

std::multiset<Key> key_set(const std::vector<EdgeIndex::Entry>& entries) {
  std::multiset<Key> keys;
  for (const auto& e : entries) {
    keys.insert({e.begin, e.end, e.src_host, e.dst_host, e.src, e.dst});
  }
  return keys;
}

std::vector<EdgeIndex::Entry> collect(const EdgeIndex& index, int cluster,
                                      double t0, double t1) {
  std::vector<EdgeIndex::Entry> got;
  index.query(cluster, t0, t1,
              [&](const EdgeIndex::Entry& e) { got.push_back(e); });
  return got;
}

std::vector<EdgeIndex::Entry> brute_window(const Schedule& s, int cluster,
                                           double t0, double t1) {
  std::vector<EdgeIndex::Entry> out;
  for (const auto& e : brute_entries(s, cluster)) {
    if (e.begin > t1 || e.end < t0) continue;
    out.push_back(e);
  }
  return out;
}

TEST(EdgeIndex, QueryMatchesBruteForce) {
  const Schedule s = random_dag_schedule(300, 600, 7);
  const EdgeIndex index(s);
  EXPECT_EQ(index.edge_count(), s.dependencies().size());
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> point(-10.0, 130.0);
  for (int cluster = 0; cluster <= 1; ++cluster) {
    for (int trial = 0; trial < 60; ++trial) {
      double t0 = point(rng), t1 = point(rng);
      if (t1 < t0) std::swap(t0, t1);
      EXPECT_EQ(key_set(collect(index, cluster, t0, t1)),
                key_set(brute_window(s, cluster, t0, t1)))
          << "cluster " << cluster << " window [" << t0 << ", " << t1 << "]";
    }
  }
}

TEST(EdgeIndex, ThreadCountDoesNotChangeTheIndex) {
  const Schedule s = random_dag_schedule(200, 400, 3);
  const EdgeIndex serial(s, 1);
  const EdgeIndex parallel(s, 8);
  EXPECT_EQ(serial.content_hash(), parallel.content_hash());
  const auto a = serial.flatten();
  const auto b = parallel.flatten();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].cluster_id, b[c].cluster_id);
    EXPECT_EQ(key_set(a[c].entries), key_set(b[c].entries));
    EXPECT_EQ(a[c].max_end, b[c].max_end);
  }
  EXPECT_EQ(serial.critical_path(), parallel.critical_path());
}

TEST(EdgeIndex, CountUptoStopsEarlyButIsExactBelowLimit) {
  const Schedule s = random_dag_schedule(150, 300, 5);
  const EdgeIndex index(s);
  const auto all = brute_window(s, 0, -1e18, 1e18);
  EXPECT_EQ(index.count_upto(0, -1e18, 1e18, 100000), all.size());
  EXPECT_EQ(index.count_upto(0, -1e18, 1e18, 5), 5u);
  EXPECT_EQ(index.count_upto(0, 1e9, 2e9, 5), 0u);
}

TEST(EdgeIndex, CriticalPathMatchesDag) {
  for (unsigned seed : {1u, 2u, 9u}) {
    const Schedule s = random_dag_schedule(120, 240, seed);
    dag::Dag d;
    std::vector<double> times;
    for (const auto& t : s.tasks()) {
      d.add_node(t.id(), /*work=*/1.0);
      times.push_back(t.duration());
    }
    for (const auto& dep : s.dependencies()) {
      d.add_edge(static_cast<int>(dep.src), static_cast<int>(dep.dst),
                 dep.data);
    }
    const EdgeIndex index(s);
    EXPECT_DOUBLE_EQ(index.critical_path_time(), d.critical_path_time(times))
        << "seed " << seed;
    const std::vector<int> want = d.critical_path(times);
    const std::vector<std::uint32_t>& got = index.critical_path();
    ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], static_cast<std::uint32_t>(want[i]));
    }
  }
}

TEST(EdgeIndex, ExtensionMatchesFullRebuild) {
  // Build the first half, append the second half through the arena (the
  // engine's O(delta) follow path), and extend the index; every observable
  // must match an index built from scratch over the final arena.
  const Schedule full = random_dag_schedule(200, 400, 13);
  const std::size_t half = 100;

  Schedule prefix;
  for (const auto& c : full.clusters()) {
    prefix.add_cluster(c.id, c.name, c.hosts);
  }
  for (std::size_t i = 0; i < half; ++i) prefix.add_task(full.tasks()[i]);
  for (const auto& d : full.dependencies()) {
    if (d.dst < half) prefix.add_dependency(d.src, d.dst, d.data);
  }
  prefix.validate();

  ScheduleArena arena(prefix);
  const EdgeIndex base(arena);

  std::vector<ScheduleArena::Event> events;
  for (std::size_t i = half; i < full.tasks().size(); ++i) {
    const Task& t = full.tasks()[i];
    ScheduleArena::Event ev;
    ev.id = t.id();
    ev.type = t.type();
    ev.start = t.start_time();
    ev.end = t.end_time();
    ev.cluster_id = t.configurations().front().cluster_id;
    ev.host_start = t.configurations().front().hosts.front().start;
    ev.host_nb = t.configurations().front().hosts.front().nb;
    for (const auto& d : full.dependencies()) {
      if (d.dst == i) {
        ev.deps.emplace_back(full.tasks()[d.src].id(), d.data);
      }
    }
    events.push_back(std::move(ev));
  }
  arena.append(events);
  const EdgeIndex extended(base, arena, half);
  const EdgeIndex scratch(arena);

  EXPECT_EQ(extended.edge_count(), scratch.edge_count());
  EXPECT_EQ(extended.content_hash(), scratch.content_hash());
  EXPECT_EQ(extended.critical_path(), scratch.critical_path());
  EXPECT_DOUBLE_EQ(extended.critical_path_time(),
                   scratch.critical_path_time());
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> point(-5.0, 120.0);
  for (int cluster = 0; cluster <= 1; ++cluster) {
    EXPECT_GE(extended.segment_count(cluster), 1u);
    for (int trial = 0; trial < 40; ++trial) {
      double t0 = point(rng), t1 = point(rng);
      if (t1 < t0) std::swap(t0, t1);
      EXPECT_EQ(key_set(collect(extended, cluster, t0, t1)),
                key_set(collect(scratch, cluster, t0, t1)))
          << "cluster " << cluster << " window [" << t0 << ", " << t1 << "]";
    }
  }
}

TEST(EdgeIndex, SnapshotRoundTripPreservesEdges) {
  const Schedule s = random_dag_schedule(150, 300, 21);
  const ScheduleArena arena(s);
  const TaskIndex tasks(s);
  const EdgeIndex edges(arena);

  const std::string path =
      testing::TempDir() + "edge_index_roundtrip.jbin";
  io::save_snapshot(arena, tasks, path, &edges);
  const io::Snapshot loaded = io::load_snapshot(path);

  EXPECT_EQ(loaded.edges.edge_count(), edges.edge_count());
  EXPECT_EQ(loaded.edges.content_hash(), edges.content_hash());
  EXPECT_EQ(loaded.edges.critical_path(), edges.critical_path());
  EXPECT_DOUBLE_EQ(loaded.edges.critical_path_time(),
                   edges.critical_path_time());
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> point(-5.0, 120.0);
  for (int cluster = 0; cluster <= 1; ++cluster) {
    for (int trial = 0; trial < 40; ++trial) {
      double t0 = point(rng), t1 = point(rng);
      if (t1 < t0) std::swap(t0, t1);
      EXPECT_EQ(key_set(collect(loaded.edges, cluster, t0, t1)),
                key_set(collect(edges, cluster, t0, t1)))
          << "cluster " << cluster << " window [" << t0 << ", " << t1 << "]";
    }
  }
  std::remove(path.c_str());
}

TEST(EdgeIndex, EdgeFreeSnapshotBytesAreUnchangedByTheEdgeSections) {
  // A schedule without dependencies must serialize to the same bytes
  // whether or not an (empty) EdgeIndex is offered — old snapshot files
  // and their readers stay compatible.
  const Schedule s = random_dag_schedule(50, 0, 29);
  const ScheduleArena arena(s);
  const TaskIndex tasks(s);
  const EdgeIndex edges(arena);
  EXPECT_TRUE(edges.empty());
  EXPECT_EQ(io::serialize_snapshot(arena, tasks, nullptr),
            io::serialize_snapshot(arena, tasks, &edges));
}

TEST(EdgeIndex, EmptyScheduleIsWellFormed) {
  Schedule s;
  s.add_cluster(0, "c", 2);
  const EdgeIndex index(s);
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.edge_count(), 0u);
  EXPECT_TRUE(index.critical_path().empty());
  EXPECT_DOUBLE_EQ(index.critical_path_time(), 0.0);
  EXPECT_EQ(index.count_upto(0, 0, 1, 10), 0u);
  EXPECT_EQ(index.content_hash(), 0u);
}

}  // namespace
}  // namespace jedule::model
