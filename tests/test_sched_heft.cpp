#include "jedule/sched/heft.hpp"

#include <gtest/gtest.h>

#include "jedule/dag/generators.hpp"
#include "jedule/dag/montage.hpp"
#include "jedule/model/composite.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::sched {
namespace {

using dag::Dag;
using platform::Platform;

TEST(Heft, UpwardRanksDecreaseAlongEdges) {
  const Dag d = dag::montage_dag(5);
  const Platform p = platform::heterogeneous_case_study(0.05);
  const auto r = schedule_heft(d, p);
  for (const auto& e : d.edges()) {
    EXPECT_GT(r.upward_rank[static_cast<std::size_t>(e.src)],
              r.upward_rank[static_cast<std::size_t>(e.dst)]);
  }
}

TEST(Heft, SingleTaskPicksFastestHost) {
  Dag d;
  d.add_node("only", 10.0);
  const Platform p = platform::heterogeneous_case_study(0.05);
  const auto r = schedule_heft(d, p);
  EXPECT_DOUBLE_EQ(p.host_speed(r.host[0]), 3.3);
  EXPECT_DOUBLE_EQ(r.makespan, 10.0 / 3.3);
}

TEST(Heft, RespectsPrecedenceWithCommDelays) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    dag::LayeredDagOptions o;
    o.levels = 4;
    const Dag d = layered_random(o, rng);
    const Platform p = platform::heterogeneous_case_study(0.02);
    const auto r = schedule_heft(d, p);
    for (const auto& e : d.edges()) {
      const double comm = p.comm_time(r.host[static_cast<std::size_t>(e.src)],
                                      r.host[static_cast<std::size_t>(e.dst)],
                                      e.data);
      EXPECT_GE(r.start[static_cast<std::size_t>(e.dst)] + 1e-9,
                r.finish[static_cast<std::size_t>(e.src)] + comm)
          << "seed " << seed;
    }
  }
}

TEST(Heft, NoHostRunsTwoTasksAtOnce) {
  util::Rng rng(7);
  dag::LayeredDagOptions o;
  o.levels = 6;
  o.max_width = 8;
  const Dag d = layered_random(o, rng);
  const Platform p = platform::heterogeneous_case_study(0.02);
  const auto r = schedule_heft(d, p);
  const auto s = heft_to_schedule(d, p, r, /*include_transfers=*/false);
  EXPECT_FALSE(model::has_resource_conflicts(s));
}

TEST(Heft, InsertionNeverHurtsMakespan) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng rng(seed);
    dag::LayeredDagOptions o;
    o.levels = 5;
    const Dag d = layered_random(o, rng);
    const Platform p = platform::heterogeneous_case_study(0.02);
    HeftOptions with;
    with.use_insertion = true;
    HeftOptions without;
    without.use_insertion = false;
    EXPECT_LE(schedule_heft(d, p, with).makespan,
              schedule_heft(d, p, without).makespan + 1e-9)
        << "seed " << seed;
  }
}

TEST(Heft, Figure8And9Story) {
  // The Sec. V case study: under the buggy flat-latency platform
  // description HEFT takes at least one "free ride" across the backbone
  // (the odd placement Jedule exposed); with the realistic backbone the
  // anomaly disappears, while the makespan stays essentially the same
  // (the paper's metric-alone-would-miss-it point: 140.9 s in both).
  const Dag montage = dag::montage_case_study();
  const auto flat = schedule_heft(montage,
                                  platform::heterogeneous_case_study(0.0));
  const auto real = schedule_heft(montage,
                                  platform::heterogeneous_case_study(0.05));
  EXPECT_GE(flat.free_ride_nodes.size(), 1u);
  EXPECT_EQ(real.free_ride_nodes.size(), 0u);
  EXPECT_NEAR(flat.makespan, real.makespan, 0.02 * real.makespan);
}

TEST(Heft, FastClustersPreferredOnCaseStudyPlatform) {
  // "The two fast clusters (processors 0-1 and 6-7) are chosen first."
  const Dag montage = dag::montage_case_study();
  const Platform p = platform::heterogeneous_case_study(0.05);
  const auto r = schedule_heft(montage, p);
  double fast_busy = 0;
  double slow_busy = 0;
  for (int v = 0; v < montage.node_count(); ++v) {
    const double len = r.finish[static_cast<std::size_t>(v)] -
                       r.start[static_cast<std::size_t>(v)];
    if (p.host_speed(r.host[static_cast<std::size_t>(v)]) > 2.0) {
      fast_busy += len;
    } else {
      slow_busy += len;
    }
  }
  // 4 fast hosts vs 8 slow hosts: the fast ones still carry comparable
  // work because HEFT fills them first.
  EXPECT_GT(fast_busy, slow_busy * 0.8);
}

TEST(HeftToSchedule, TransfersMatchPlacement) {
  const Dag d = dag::montage_dag(4);
  const Platform p = platform::heterogeneous_case_study(0.05);
  const auto r = schedule_heft(d, p);
  const auto s = heft_to_schedule(d, p, r, /*include_transfers=*/true);
  EXPECT_NO_THROW(s.validate());
  int transfers = 0;
  for (const auto& t : s.tasks()) {
    if (t.type() == "transfer") ++transfers;
  }
  int cross_host_edges = 0;
  for (const auto& e : d.edges()) {
    if (r.host[static_cast<std::size_t>(e.src)] !=
        r.host[static_cast<std::size_t>(e.dst)]) {
      ++cross_host_edges;
    }
  }
  EXPECT_EQ(transfers, cross_host_edges);
  EXPECT_EQ(s.meta_value("algorithm"), "HEFT");
}

TEST(Heft, DeterministicAcrossRuns) {
  const Dag d = dag::montage_case_study();
  const Platform p = platform::heterogeneous_case_study(0.05);
  const auto a = schedule_heft(d, p);
  const auto b = schedule_heft(d, p);
  EXPECT_EQ(a.host, b.host);
  EXPECT_EQ(a.start, b.start);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

}  // namespace
}  // namespace jedule::sched
