#include "jedule/io/jedule_xml.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "jedule/model/builder.hpp"
#include "jedule/util/error.hpp"

namespace jedule::io {
namespace {

// The task definition of paper Fig. 1, embedded in a complete document.
const char kFig1[] = R"(<?xml version="1.0"?>
<jedule version="1.0">
  <jedule_meta>
    <meta name="mindelta" value="-2"/>
    <meta name="maxdelta" value="2"/>
    <meta name="sort" value="comm"/>
  </jedule_meta>
  <platform>
    <cluster id="0" name="cluster-0" hosts="8"/>
  </platform>
  <node_infos>
    <node_statistics>
      <node_property name="id" value="1"/>
      <node_property name="type" value="computation"/>
      <node_property name="start_time" value="0.000"/>
      <node_property name="end_time" value="0.310"/>
      <configuration>
        <conf_property name="cluster_id" value="0"/>
        <conf_property name="host_nb" value="8"/>
        <host_lists>
          <hosts start="0" nb="8"/>
        </host_lists>
      </configuration>
    </node_statistics>
  </node_infos>
</jedule>
)";

TEST(ReadJeduleXml, ParsesPaperFigure1) {
  const auto s = read_schedule_xml(kFig1);
  ASSERT_EQ(s.clusters().size(), 1u);
  EXPECT_EQ(s.clusters()[0].name, "cluster-0");
  EXPECT_EQ(s.clusters()[0].hosts, 8);
  ASSERT_EQ(s.tasks().size(), 1u);
  const auto& t = s.tasks()[0];
  EXPECT_EQ(t.id(), "1");
  EXPECT_EQ(t.type(), "computation");
  EXPECT_DOUBLE_EQ(t.start_time(), 0.0);
  EXPECT_DOUBLE_EQ(t.end_time(), 0.31);
  ASSERT_EQ(t.configurations().size(), 1u);
  EXPECT_EQ(t.configurations()[0].cluster_id, 0);
  EXPECT_EQ(t.configurations()[0].host_count(), 8);
  EXPECT_EQ(s.meta_value("mindelta"), "-2");
  EXPECT_EQ(s.meta_value("sort"), "comm");
}

model::Schedule rich_schedule() {
  return model::ScheduleBuilder()
      .cluster(0, "alpha", 4)
      .cluster(3, "beta", 2)
      .meta("algorithm", "HEFT")
      .meta("note", "a <tricky> & \"quoted\" value")
      .task("1", "computation", 0.0, 0.31)
      .on(0, 0, 4)
      .property("user", "6447")
      .task("x-7", "transfer", 0.25, 0.5)
      .hosts(0, {1, 3})
      .on(3, 0, 2)  // spans clusters (Fig. 1 caption's case)
      .build();
}

TEST(WriteJeduleXml, RoundTripsPrecedences) {
  model::Schedule orig = rich_schedule();
  orig.add_dependency(0, 1, 12.5);
  orig.validate();
  const std::string xml = write_schedule_xml(orig);
  EXPECT_NE(xml.find("<precedences>"), std::string::npos);
  EXPECT_NE(xml.find("<precedence"), std::string::npos);
  // Both the pull parser and the DOM fallback must restore the edge list.
  EXPECT_EQ(read_schedule_xml(xml).dependencies(), orig.dependencies());
  EXPECT_EQ(read_schedule_xml_dom(xml).dependencies(), orig.dependencies());
  // Dependency-free schedules keep emitting the pre-edge document shape.
  const model::Schedule bare = rich_schedule();
  EXPECT_EQ(write_schedule_xml(bare).find("<precedences>"),
            std::string::npos);
}

TEST(WriteJeduleXml, RoundTripsEverything) {
  const model::Schedule orig = rich_schedule();
  const model::Schedule back = read_schedule_xml(write_schedule_xml(orig));

  ASSERT_EQ(back.clusters().size(), orig.clusters().size());
  for (std::size_t i = 0; i < orig.clusters().size(); ++i) {
    EXPECT_EQ(back.clusters()[i], orig.clusters()[i]);
  }
  EXPECT_EQ(back.meta(), orig.meta());
  ASSERT_EQ(back.tasks().size(), orig.tasks().size());
  for (std::size_t i = 0; i < orig.tasks().size(); ++i) {
    const auto& a = orig.tasks()[i];
    const auto& b = back.tasks()[i];
    EXPECT_EQ(b.id(), a.id());
    EXPECT_EQ(b.type(), a.type());
    EXPECT_DOUBLE_EQ(b.start_time(), a.start_time());
    EXPECT_DOUBLE_EQ(b.end_time(), a.end_time());
    EXPECT_EQ(b.configurations(), a.configurations());
    EXPECT_EQ(b.properties(), a.properties());
  }
}

TEST(WriteJeduleXml, NonMillisecondTimesSurvive) {
  const double t = 1.0 / 3.0;
  model::Schedule s = model::ScheduleBuilder()
                          .cluster(0, "c", 1)
                          .task("1", "t", t, 2 * t)
                          .on(0, 0, 1)
                          .build();
  const auto back = read_schedule_xml(write_schedule_xml(s));
  EXPECT_DOUBLE_EQ(back.tasks()[0].start_time(), t);
  EXPECT_DOUBLE_EQ(back.tasks()[0].end_time(), 2 * t);
}

TEST(SaveLoad, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/jed_roundtrip.jed";
  save_schedule_xml(rich_schedule(), path);
  const auto back = load_schedule_xml(path);
  EXPECT_EQ(back.tasks().size(), 2u);
  std::remove(path.c_str());
}

TEST(ReadJeduleXml, RejectsMissingPlatform) {
  EXPECT_THROW(read_schedule_xml("<jedule><node_infos/></jedule>"),
               ParseError);
}

TEST(ReadJeduleXml, RejectsWrongRoot) {
  EXPECT_THROW(read_schedule_xml("<schedule/>"), ParseError);
}

TEST(ReadJeduleXml, RejectsHostNbMismatch) {
  const char* bad = R"(<jedule>
    <platform><cluster id="0" hosts="8"/></platform>
    <node_infos><node_statistics>
      <node_property name="id" value="1"/>
      <node_property name="type" value="t"/>
      <node_property name="start_time" value="0"/>
      <node_property name="end_time" value="1"/>
      <configuration>
        <conf_property name="cluster_id" value="0"/>
        <conf_property name="host_nb" value="4"/>
        <host_lists><hosts start="0" nb="8"/></host_lists>
      </configuration>
    </node_statistics></node_infos></jedule>)";
  EXPECT_THROW(read_schedule_xml(bad), ParseError);
}

TEST(ReadJeduleXml, RejectsMissingRequiredNodeProperty) {
  const char* bad = R"(<jedule>
    <platform><cluster id="0" hosts="2"/></platform>
    <node_infos><node_statistics>
      <node_property name="id" value="1"/>
      <node_property name="start_time" value="0"/>
      <node_property name="end_time" value="1"/>
      <configuration>
        <conf_property name="cluster_id" value="0"/>
        <host_lists><hosts start="0" nb="1"/></host_lists>
      </configuration>
    </node_statistics></node_infos></jedule>)";
  EXPECT_THROW(read_schedule_xml(bad), ParseError);
}

TEST(ReadJeduleXml, ExtraNodePropertiesBecomeTaskProperties) {
  const char* text = R"(<jedule>
    <platform><cluster id="0" hosts="2"/></platform>
    <node_infos><node_statistics>
      <node_property name="id" value="1"/>
      <node_property name="type" value="job"/>
      <node_property name="start_time" value="0"/>
      <node_property name="end_time" value="1"/>
      <node_property name="user" value="6447"/>
      <configuration>
        <conf_property name="cluster_id" value="0"/>
        <host_lists><hosts start="0" nb="1"/></host_lists>
      </configuration>
    </node_statistics></node_infos></jedule>)";
  const auto s = read_schedule_xml(text);
  EXPECT_EQ(s.tasks()[0].property("user"), "6447");
}

TEST(ReadJeduleXml, ValidatesSemantics) {
  // Well-formed XML whose host range exceeds the cluster: the semantic
  // validator must reject it.
  const char* bad = R"(<jedule>
    <platform><cluster id="0" hosts="2"/></platform>
    <node_infos><node_statistics>
      <node_property name="id" value="1"/>
      <node_property name="type" value="t"/>
      <node_property name="start_time" value="0"/>
      <node_property name="end_time" value="1"/>
      <configuration>
        <conf_property name="cluster_id" value="0"/>
        <host_lists><hosts start="0" nb="5"/></host_lists>
      </configuration>
    </node_statistics></node_infos></jedule>)";
  EXPECT_THROW(read_schedule_xml(bad), ValidationError);
}

}  // namespace
}  // namespace jedule::io
