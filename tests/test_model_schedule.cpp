#include "jedule/model/schedule.hpp"

#include <gtest/gtest.h>

#include "jedule/model/builder.hpp"
#include "jedule/util/error.hpp"

namespace jedule::model {
namespace {

Schedule two_cluster_schedule() {
  return ScheduleBuilder()
      .cluster(0, "c0", 4)
      .cluster(1, "c1", 2)
      .task("a", "computation", 0.0, 2.0)
      .on(0, 0, 4)
      .task("b", "computation", 1.0, 3.0)
      .on(1, 0, 2)
      .task("x", "transfer", 2.0, 2.5)
      .on(0, 3, 1)
      .on(1, 0, 1)  // spans clusters
      .build();
}

TEST(Configuration, HostCountAndList) {
  Configuration cfg;
  cfg.cluster_id = 0;
  cfg.hosts = {{0, 2}, {5, 3}};
  EXPECT_EQ(cfg.host_count(), 5);
  EXPECT_EQ(cfg.host_list(), (std::vector<int>{0, 1, 5, 6, 7}));
}

TEST(Task, ConvenienceAllocate) {
  Task t("1", "computation", 0, 1);
  t.allocate(2, 4, 8);
  ASSERT_EQ(t.configurations().size(), 1u);
  EXPECT_EQ(t.configurations()[0].cluster_id, 2);
  EXPECT_EQ(t.total_hosts(), 8);
  EXPECT_DOUBLE_EQ(t.duration(), 1.0);
}

TEST(Task, PropertiesUpsert) {
  Task t;
  t.set_property("user", "1");
  t.set_property("user", "2");
  EXPECT_EQ(t.property("user"), "2");
  EXPECT_FALSE(t.property("missing").has_value());
  EXPECT_EQ(t.properties().size(), 1u);
}

TEST(Schedule, DuplicateClusterIdRejected) {
  Schedule s;
  s.add_cluster(0, "a", 4);
  EXPECT_THROW(s.add_cluster(0, "b", 2), ValidationError);
}

TEST(Schedule, NonPositiveClusterRejected) {
  Schedule s;
  EXPECT_THROW(s.add_cluster(0, "a", 0), ValidationError);
}

TEST(Schedule, GlobalResourceIndexStacksClusters) {
  const Schedule s = two_cluster_schedule();
  EXPECT_EQ(s.total_hosts(), 6);
  EXPECT_EQ(s.global_resource_index(0, 0), 0);
  EXPECT_EQ(s.global_resource_index(0, 3), 3);
  EXPECT_EQ(s.global_resource_index(1, 0), 4);
  EXPECT_EQ(s.global_resource_index(1, 1), 5);
  EXPECT_THROW(s.global_resource_index(9, 0), ValidationError);
}

TEST(Schedule, FindTask) {
  const Schedule s = two_cluster_schedule();
  ASSERT_NE(s.find_task("x"), nullptr);
  EXPECT_EQ(s.find_task("x")->type(), "transfer");
  EXPECT_EQ(s.find_task("nope"), nullptr);
}

TEST(Schedule, MetaPreservesOrderAndUpserts) {
  Schedule s;
  s.set_meta("b", "1");
  s.set_meta("a", "2");
  s.set_meta("b", "3");
  ASSERT_EQ(s.meta().size(), 2u);
  EXPECT_EQ(s.meta()[0].first, "b");
  EXPECT_EQ(s.meta()[0].second, "3");
  EXPECT_EQ(s.meta_value("a"), "2");
}

TEST(Schedule, GlobalTimeRange) {
  const Schedule s = two_cluster_schedule();
  const auto r = s.time_range();
  ASSERT_TRUE(r);
  EXPECT_DOUBLE_EQ(r->begin, 0.0);
  EXPECT_DOUBLE_EQ(r->end, 3.0);
  EXPECT_FALSE(Schedule().time_range().has_value());
}

TEST(Schedule, ClusterLocalTimeRanges) {
  const Schedule s = two_cluster_schedule();
  const auto r0 = s.cluster_time_range(0);
  ASSERT_TRUE(r0);
  EXPECT_DOUBLE_EQ(r0->begin, 0.0);
  EXPECT_DOUBLE_EQ(r0->end, 2.5);  // task a and the transfer
  const auto r1 = s.cluster_time_range(1);
  ASSERT_TRUE(r1);
  EXPECT_DOUBLE_EQ(r1->begin, 1.0);
  EXPECT_DOUBLE_EQ(r1->end, 3.0);
}

TEST(Schedule, ViewModesDifferPerCluster) {
  const Schedule s = two_cluster_schedule();
  const auto scaled = s.view_time_range(0, ViewMode::kScaled);
  const auto aligned = s.view_time_range(0, ViewMode::kAligned);
  EXPECT_DOUBLE_EQ(scaled->end, 2.5);   // local maximum
  EXPECT_DOUBLE_EQ(aligned->end, 3.0);  // global maximum
}

TEST(Schedule, TasksInClusterIncludesSpanningTasks) {
  const Schedule s = two_cluster_schedule();
  EXPECT_EQ(s.tasks_in_cluster(0).size(), 2u);  // a and x
  EXPECT_EQ(s.tasks_in_cluster(1).size(), 2u);  // b and x
}

// -- validation branch coverage ----------------------------------------

TEST(Validate, RequiresCluster) {
  Schedule s;
  EXPECT_THROW(s.validate(), ValidationError);
}

TEST(Validate, DuplicateTaskIds) {
  Schedule s;
  s.add_cluster(0, "c", 2);
  Task a("same", "t", 0, 1);
  a.allocate(0, 0, 1);
  Task b("same", "t", 1, 2);
  b.allocate(0, 1, 1);
  s.add_task(a);
  s.add_task(b);
  EXPECT_THROW(s.validate(), ValidationError);
}

TEST(Validate, EndBeforeStart) {
  Schedule s;
  s.add_cluster(0, "c", 2);
  Task t("1", "t", 2, 1);
  t.allocate(0, 0, 1);
  s.add_task(t);
  EXPECT_THROW(s.validate(), ValidationError);
}

TEST(Validate, TaskWithoutConfiguration) {
  Schedule s;
  s.add_cluster(0, "c", 2);
  s.add_task(Task("1", "t", 0, 1));
  EXPECT_THROW(s.validate(), ValidationError);
}

TEST(Validate, UnknownClusterReference) {
  Schedule s;
  s.add_cluster(0, "c", 2);
  Task t("1", "t", 0, 1);
  t.allocate(7, 0, 1);
  s.add_task(t);
  EXPECT_THROW(s.validate(), ValidationError);
}

TEST(Validate, HostRangeOutOfBounds) {
  Schedule s;
  s.add_cluster(0, "c", 2);
  Task t("1", "t", 0, 1);
  t.allocate(0, 1, 2);  // hosts 1-2, cluster only has 0-1
  s.add_task(t);
  EXPECT_THROW(s.validate(), ValidationError);
}

TEST(Validate, DuplicateHostWithinConfiguration) {
  Schedule s;
  s.add_cluster(0, "c", 4);
  Task t("1", "t", 0, 1);
  Configuration cfg;
  cfg.cluster_id = 0;
  cfg.hosts = {{0, 2}, {1, 1}};  // host 1 twice
  t.add_configuration(cfg);
  s.add_task(t);
  EXPECT_THROW(s.validate(), ValidationError);
}

TEST(Validate, ZeroDurationTaskIsLegal) {
  Schedule s;
  s.add_cluster(0, "c", 1);
  Task t("1", "t", 1, 1);
  t.allocate(0, 0, 1);
  s.add_task(t);
  EXPECT_NO_THROW(s.validate());
}

// -- builder ------------------------------------------------------------

TEST(Builder, HostsCompressesRuns) {
  const Schedule s = ScheduleBuilder()
                         .cluster(0, "c", 8)
                         .task("1", "t", 0, 1)
                         .hosts(0, {3, 1, 2, 6})
                         .build();
  const auto& cfg = s.tasks()[0].configurations()[0];
  ASSERT_EQ(cfg.hosts.size(), 2u);
  EXPECT_EQ(cfg.hosts[0], (HostRange{1, 3}));
  EXPECT_EQ(cfg.hosts[1], (HostRange{6, 1}));
}

TEST(Builder, RejectsMisuse) {
  EXPECT_THROW(ScheduleBuilder().on(0, 0, 1), ArgumentError);
  EXPECT_THROW(ScheduleBuilder().hosts(0, {1}), ArgumentError);
  EXPECT_THROW(ScheduleBuilder().property("k", "v"), ArgumentError);
  EXPECT_THROW(ScheduleBuilder()
                   .cluster(0, "c", 2)
                   .task("1", "t", 0, 1)
                   .hosts(0, {}),
               ArgumentError);
}

TEST(Builder, ValidatesOnBuild) {
  EXPECT_THROW(ScheduleBuilder()
                   .cluster(0, "c", 2)
                   .task("1", "t", 0, 1)
                   .on(0, 5, 1)
                   .build(),
               ValidationError);
}

}  // namespace
}  // namespace jedule::model
