#include "jedule/color/colormap.hpp"

#include <gtest/gtest.h>

namespace jedule::color {
namespace {

TEST(ColorMap, StyleForExplicitType) {
  ColorMap map;
  map.set_style("io", TaskStyle{kBlack, parse_color("00ff00")});
  EXPECT_EQ(map.style_for("io").background, parse_color("00ff00"));
}

TEST(ColorMap, SetStyleOverwrites) {
  ColorMap map;
  map.set_style("t", TaskStyle{kBlack, kWhite});
  map.set_style("t", TaskStyle{kWhite, kBlack});
  EXPECT_EQ(map.style_for("t").background, kBlack);
  EXPECT_EQ(map.styles().size(), 1u);
}

TEST(ColorMap, UnknownTypeGetsStableAutoColor) {
  ColorMap map;
  const TaskStyle a = map.style_for("never-declared");
  const TaskStyle b = map.style_for("never-declared");
  EXPECT_EQ(a, b);
  // Different unknown types should (in general) get different colors.
  EXPECT_NE(map.style_for("alpha").background,
            map.style_for("beta").background);
}

TEST(ColorMap, CompositeExactRuleWins) {
  ColorMap map = standard_colormap();
  const TaskStyle s = map.composite_style({"computation", "transfer"});
  EXPECT_EQ(s.background, parse_color("ff6200"));  // Fig. 2's orange
  EXPECT_EQ(s.foreground, parse_color("FFFFFF"));
}

TEST(ColorMap, CompositeFallbackAveragesMembers) {
  ColorMap map;
  map.set_style("a", TaskStyle{kBlack, Color{200, 0, 0, 255}});
  map.set_style("b", TaskStyle{kBlack, Color{0, 100, 0, 255}});
  const TaskStyle s = map.composite_style({"a", "b"});
  EXPECT_EQ(s.background, (Color{100, 50, 0, 255}));
}

TEST(ColorMap, CompositeRuleMatchingIsExactSet) {
  ColorMap map = standard_colormap();
  // A third member means the {computation, transfer} rule must NOT match.
  const TaskStyle s =
      map.composite_style({"computation", "transfer", "io"});
  EXPECT_NE(s.background, parse_color("ff6200"));
}

TEST(ColorMap, ConfigTypedAccessorsWithDefaults) {
  ColorMap map;
  EXPECT_EQ(map.font_size_label(), 13);
  EXPECT_EQ(map.min_font_size_label(), 11);
  EXPECT_EQ(map.font_size_axes(), 12);
  map.set_config("font_size_label", "20");
  EXPECT_EQ(map.font_size_label(), 20);
  map.set_config("font_size_axes", "junk");  // unparsable -> default
  EXPECT_EQ(map.font_size_axes(), 12);
}

TEST(ColorMap, GrayscaleCollapsesEverything) {
  const ColorMap gray = standard_colormap().grayscale();
  for (const auto& [type, style] : gray.styles()) {
    EXPECT_EQ(style.background.r, style.background.g) << type;
    EXPECT_EQ(style.background.g, style.background.b) << type;
    EXPECT_EQ(style.foreground.r, style.foreground.g) << type;
  }
  for (const auto& rule : gray.composite_rules()) {
    EXPECT_EQ(rule.style.background.r, rule.style.background.b);
  }
}

TEST(ColorMap, GrayscalePreservesStructure) {
  const ColorMap orig = standard_colormap();
  const ColorMap gray = orig.grayscale();
  EXPECT_EQ(gray.name(), orig.name());
  EXPECT_EQ(gray.styles().size(), orig.styles().size());
  EXPECT_EQ(gray.composite_rules().size(), orig.composite_rules().size());
  EXPECT_EQ(gray.font_size_label(), orig.font_size_label());
}

TEST(StandardColormap, MatchesPaperFigure2) {
  const ColorMap map = standard_colormap();
  EXPECT_TRUE(map.has_style("computation"));
  EXPECT_TRUE(map.has_style("transfer"));
  EXPECT_EQ(map.style_for("computation").background, parse_color("0000FF"));
  EXPECT_EQ(map.style_for("computation").foreground, parse_color("FFFFFF"));
  EXPECT_EQ(map.style_for("transfer").background, parse_color("f10000"));
  EXPECT_EQ(map.min_font_size_label(), 11);
  EXPECT_EQ(map.font_size_label(), 13);
  EXPECT_EQ(map.font_size_axes(), 12);
}

}  // namespace
}  // namespace jedule::color
