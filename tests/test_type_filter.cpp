// Task-type filtering across the stack: layout, interactive session, CLI
// style plumbing (paper Sec. II.B: "A user might only be interested in a
// certain task type"; conclusions: "filtering").

#include <gtest/gtest.h>

#include "jedule/interactive/session.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/render/gantt.hpp"

namespace jedule::render {
namespace {

model::Schedule mixed_schedule() {
  return model::ScheduleBuilder()
      .cluster(0, "c", 4)
      .task("c1", "computation", 0, 4)
      .on(0, 0, 4)
      .task("x1", "transfer", 3, 6)
      .on(0, 1, 2)
      .task("io1", "io", 5, 7)
      .on(0, 0, 1)
      .build();
}

GanttStyle style_with_types(std::vector<std::string> types) {
  GanttStyle style;
  style.width = 600;
  style.height = 400;
  style.type_filter = std::move(types);
  return style;
}

TEST(TypeFilter, LayoutShowsOnlySelectedTypes) {
  const auto layout = layout_gantt(mixed_schedule(),
                                   color::standard_colormap(),
                                   style_with_types({"computation"}));
  for (const auto& box : layout.boxes) {
    EXPECT_EQ(layout.tasks[box.task_index].type(), "computation");
  }
  EXPECT_EQ(layout.composite_begin, layout.tasks.size());  // no overlaps left
}

TEST(TypeFilter, CompositesComeFromFilteredTasksOnly) {
  // computation+transfer overlap on hosts 1-2 during [3,4); filtering to
  // those two types keeps the composite, filtering transfer out drops it.
  const auto both = layout_gantt(mixed_schedule(),
                                 color::standard_colormap(),
                                 style_with_types({"computation", "transfer"}));
  EXPECT_LT(both.composite_begin, both.tasks.size());

  const auto one = layout_gantt(mixed_schedule(),
                                color::standard_colormap(),
                                style_with_types({"computation", "io"}));
  EXPECT_EQ(one.composite_begin, one.tasks.size());
}

TEST(TypeFilter, EmptyFilterShowsEverything) {
  const auto layout = layout_gantt(mixed_schedule(),
                                   color::standard_colormap(),
                                   style_with_types({}));
  // 3 tasks (4 boxes counting composite pieces).
  std::size_t plain = 0;
  for (const auto& box : layout.boxes) {
    if (!box.composite) ++plain;
  }
  EXPECT_EQ(plain, 3u);
}

TEST(TypeFilter, SessionCommand) {
  interactive::Session session(mixed_schedule(), color::standard_colormap());
  EXPECT_EQ(session.execute("types computation,io"),
            "showing 2 task type(s)");
  const std::string ascii = session.execute("ascii");
  EXPECT_EQ(ascii.find("=transfer"), std::string::npos);
  EXPECT_NE(ascii.find("=computation"), std::string::npos);
  EXPECT_EQ(session.execute("types all"), "showing all task types");
  EXPECT_NE(session.execute("ascii").find("=transfer"), std::string::npos);
}

}  // namespace
}  // namespace jedule::render
