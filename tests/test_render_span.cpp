// The span batch must be a pure optimization: flushing a queue of
// fills/outlines produces exactly the bytes of painting them one by one
// through Framebuffer, for any mix of opaque and translucent colors,
// overdraw depth, clipping, and flush interleaving. On top of that, the
// whole export pipeline must be byte-identical across kernel variants and
// thread counts.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "jedule/model/builder.hpp"
#include "jedule/render/export.hpp"
#include "jedule/render/exporter.hpp"
#include "jedule/render/framebuffer.hpp"
#include "jedule/render/kernels.hpp"
#include "jedule/render/span.hpp"
#include "jedule/util/rng.hpp"
#include "jedule/workload/thunder.hpp"
#include "jedule/workload/trace_schedule.hpp"

namespace jedule::render {
namespace {

using color::Color;

Color random_color(util::Rng& rng, int alpha) {
  return Color{static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
               static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
               static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
               static_cast<std::uint8_t>(alpha)};
}

// One random primitive applied to both the batch and the direct path.
void random_op(util::Rng& rng, SpanBatch& batch, Framebuffer& direct) {
  // Geometry hangs past every edge so clipping is exercised constantly.
  const int x = static_cast<int>(rng.uniform_int(-20, 70));
  const int y = static_cast<int>(rng.uniform_int(-20, 60));
  const int w = static_cast<int>(rng.uniform_int(-2, 50));
  const int h = static_cast<int>(rng.uniform_int(-2, 40));
  const int kind = static_cast<int>(rng.uniform_int(0, 3));
  // Bias toward opaque (the dominant real-world case) but keep plenty of
  // translucent ops, including a == 0 no-ops.
  const int a = kind == 0 ? 255 : static_cast<int>(rng.uniform_int(0, 255));
  const Color c = random_color(rng, a);
  if (kind == 3) {
    batch.add_outline(x, y, w, h, c);
    direct.draw_rect(x, y, w, h, c);
  } else {
    batch.add_rect(x, y, w, h, c);
    direct.fill_rect(x, y, w, h, c);
  }
}

TEST(SpanBatch, FuzzMatchesSequentialPainting) {
  util::Rng rng(99);
  for (int round = 0; round < 60; ++round) {
    Framebuffer batched(64, 48);
    Framebuffer direct(64, 48);
    SpanBatch batch(batched);
    const int ops = 1 + static_cast<int>(rng.uniform_int(0, 120));
    for (int i = 0; i < ops; ++i) {
      random_op(rng, batch, direct);
      // Random intermediate flushes: any prefix is a valid sequence point.
      if (rng.uniform_int(0, 20) == 0) batch.flush();
    }
    batch.flush();
    ASSERT_EQ(batched.pixels(), direct.pixels()) << "round " << round;
  }
}

// Force the dense-row occlusion path (>= 16 ops on one scanline) with
// heavy overdraw of mixed opaque/translucent rects.
TEST(SpanBatch, DenseOverdrawRowMatchesSequentialPainting) {
  util::Rng rng(7);
  Framebuffer batched(200, 8);
  Framebuffer direct(200, 8);
  SpanBatch batch(batched);
  for (int i = 0; i < 120; ++i) {
    const int x = static_cast<int>(rng.uniform_int(-10, 190));
    const int w = 1 + static_cast<int>(rng.uniform_int(0, 60));
    const int a = i % 3 == 0 ? static_cast<int>(rng.uniform_int(1, 254)) : 255;
    const Color c = random_color(rng, a);
    batch.add_rect(x, 0, w, 8, c);
    direct.fill_rect(x, 0, w, 8, c);
  }
  batch.flush();
  EXPECT_EQ(batched.pixels(), direct.pixels());
}

// Translucent outlines double-blend their corners on the sequential path
// (hline + vline both touch them); the batch must reproduce that.
TEST(SpanBatch, TranslucentOutlineCornersDoubleBlend) {
  const Color outline{0, 0, 0, 90};
  for (auto [w, h] : {std::pair<int, int>{10, 6}, {1, 6}, {10, 1}, {1, 1},
                      {2, 2}}) {
    Framebuffer batched(16, 12);
    Framebuffer direct(16, 12);
    SpanBatch batch(batched);
    batch.add_outline(3, 2, w, h, outline);
    batch.flush();
    direct.draw_rect(3, 2, w, h, outline);
    EXPECT_EQ(batched.pixels(), direct.pixels()) << w << "x" << h;
  }
}

// An opaque rect painted over a translucent one (and vice versa) across
// the occlusion threshold: the later op must win / blend exactly as the
// sequential order dictates.
TEST(SpanBatch, PaintOrderIsPreservedAcrossThresholds) {
  for (int extra : {0, 30}) {  // 0 → forward path, 30 → occlusion path
    Framebuffer batched(120, 4);
    Framebuffer direct(120, 4);
    SpanBatch batch(batched);
    const Color red{200, 40, 40, 255};
    const Color veil{20, 20, 220, 120};
    batch.add_rect(10, 0, 60, 4, veil);
    direct.fill_rect(10, 0, 60, 4, veil);
    batch.add_rect(30, 0, 60, 4, red);
    direct.fill_rect(30, 0, 60, 4, red);
    batch.add_rect(50, 0, 60, 4, veil);
    direct.fill_rect(50, 0, 60, 4, veil);
    for (int i = 0; i < extra; ++i) {
      batch.add_rect(i, 0, 2, 4, red);
      direct.fill_rect(i, 0, 2, 4, red);
    }
    batch.flush();
    EXPECT_EQ(batched.pixels(), direct.pixels()) << "extra=" << extra;
  }
}

// --- exporter identity across kernels and thread counts -----------------

model::Schedule fig3_schedule() {
  return model::ScheduleBuilder()
      .cluster(0, "cluster-0", 8)
      .task("1", "computation", 0.0, 0.31)
      .on(0, 0, 8)
      .task("2", "transfer", 0.25, 0.50)
      .on(0, 2, 4)
      .build();
}

model::Schedule fig13_schedule() {
  const auto trace = workload::generate_thunder_day();
  return workload::trace_to_schedule(trace).schedule;
}

const char* const kFormats[] = {"png", "ppm", "svg", "svgz", "pdf",
                                "ascii"};

// Every exporter must produce byte-identical output whichever kernel
// variant paints and however many threads rasterize.
TEST(SpanBatch, ExportersAreKernelAndThreadCountInvariant) {
  struct Case {
    model::Schedule schedule;
    RenderOptions options;
  };
  std::vector<Case> cases;
  {
    Case fig3{fig3_schedule(), {}};
    fig3.options.style.width = 640;
    fig3.options.style.height = 400;
    cases.push_back(std::move(fig3));
    Case fig13{fig13_schedule(), {}};
    fig13.options.style.width = 800;
    fig13.options.style.height = 480;
    fig13.options.style.show_labels = false;
    fig13.options.style.show_composites = false;
    cases.push_back(std::move(fig13));
  }
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    auto& c = cases[ci];
    for (const char* format : kFormats) {
      std::string reference;
      for (const kernels::Kernels* k : kernels::available()) {
        kernels::override_active(k);
        for (int threads : {1, 8}) {
          c.options.threads = threads;
          const std::string bytes =
              render_to_bytes(c.schedule, c.options, format);
          if (reference.empty()) {
            reference = bytes;
            ASSERT_FALSE(reference.empty());
          } else {
            EXPECT_EQ(bytes, reference)
                << "case " << ci << " " << format << " kernel " << k->name
                << " threads " << threads;
          }
        }
      }
      kernels::override_active(nullptr);
    }
  }
}

}  // namespace
}  // namespace jedule::render
