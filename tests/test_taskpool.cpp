#include "jedule/taskpool/pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "jedule/model/composite.hpp"
#include "jedule/model/stats.hpp"
#include "jedule/taskpool/log_schedule.hpp"
#include "jedule/taskpool/quicksort.hpp"

namespace jedule::taskpool {
namespace {

TEST(TaskPool, RunsAllInitialTasks) {
  for (bool stealing : {false, true}) {
    TaskPool::Options options;
    options.threads = 4;
    options.work_stealing = stealing;
    TaskPool pool(options);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) {
      pool.create_initial_task([&count](TaskContext&) { ++count; });
    }
    const RunLog log = pool.run();
    EXPECT_EQ(count.load(), 100);
    EXPECT_EQ(log.tasks_executed, 100);
    EXPECT_EQ(log.threads, 4);
  }
}

TEST(TaskPool, RecursiveSpawningCompletes) {
  for (bool stealing : {false, true}) {
    TaskPool::Options options;
    options.threads = 4;
    options.work_stealing = stealing;
    TaskPool pool(options);
    std::atomic<int> leaves{0};
    // Binary fan-out of depth 6: 2^6 = 64 leaves.
    std::function<void(TaskContext&, int)> fan = [&](TaskContext& ctx,
                                                     int depth) {
      if (depth == 0) {
        ++leaves;
        return;
      }
      ctx.submit([&fan, depth](TaskContext& c) { fan(c, depth - 1); });
      ctx.submit([&fan, depth](TaskContext& c) { fan(c, depth - 1); });
    };
    pool.create_initial_task([&fan](TaskContext& c) { fan(c, 6); });
    const RunLog log = pool.run();
    EXPECT_EQ(leaves.load(), 64);
    EXPECT_EQ(log.tasks_executed, 127);  // full binary tree of tasks
  }
}

TEST(TaskPool, SingleThreadWorks) {
  TaskPool::Options options;
  options.threads = 1;
  TaskPool pool(options);
  std::atomic<int> count{0};
  pool.create_initial_task([&count](TaskContext& ctx) {
    ++count;
    ctx.submit([&count](TaskContext&) { ++count; });
  });
  const RunLog log = pool.run();
  EXPECT_EQ(count.load(), 2);
  EXPECT_DOUBLE_EQ(log.per_thread.size(), 1);
}

TEST(TaskPool, ThreadIndexIsInRange) {
  TaskPool::Options options;
  options.threads = 3;
  TaskPool pool(options);
  std::atomic<bool> ok{true};
  for (int i = 0; i < 50; ++i) {
    pool.create_initial_task([&ok](TaskContext& ctx) {
      if (ctx.thread_index() < 0 || ctx.thread_index() >= 3) ok = false;
      if (ctx.task_id() < 0) ok = false;
    });
  }
  pool.run();
  EXPECT_TRUE(ok.load());
}

TEST(TaskPool, LogIntervalsAreWellFormed) {
  TaskPool::Options options;
  options.threads = 4;
  TaskPool pool(options);
  for (int i = 0; i < 200; ++i) {
    pool.create_initial_task([](TaskContext&) {
      volatile int sink = 0;
      for (int k = 0; k < 2000; ++k) sink = sink + k;
    });
  }
  const RunLog log = pool.run();
  ASSERT_EQ(log.per_thread.size(), 4u);
  std::int64_t exec_count = 0;
  for (const auto& tl : log.per_thread) {
    // Exec intervals: ordered, non-overlapping, within [0, wallclock].
    double prev_end = 0;
    for (const auto& iv : tl.exec) {
      EXPECT_GE(iv.start, prev_end - 1e-9);
      EXPECT_GE(iv.end, iv.start);
      EXPECT_GE(iv.start, 0.0);
      EXPECT_LE(iv.end, log.wallclock + 1e-6);
      EXPECT_GE(iv.task_id, 0);
      prev_end = iv.end;
      ++exec_count;
    }
    for (const auto& iv : tl.wait) {
      EXPECT_GE(iv.end, iv.start);
      EXPECT_EQ(iv.task_id, -1);
    }
  }
  EXPECT_EQ(exec_count, 200);
}

TEST(TaskPool, MinLoggedIntervalFilters) {
  TaskPool::Options options;
  options.threads = 2;
  options.min_logged_interval = 3600.0;  // absurd: drop everything
  TaskPool pool(options);
  for (int i = 0; i < 10; ++i) {
    pool.create_initial_task([](TaskContext&) {});
  }
  const RunLog log = pool.run();
  EXPECT_EQ(log.tasks_executed, 10);  // executed but not logged
  for (const auto& tl : log.per_thread) {
    EXPECT_TRUE(tl.exec.empty());
    EXPECT_TRUE(tl.wait.empty());
  }
}

// -- quicksort --------------------------------------------------------------

class QuicksortInputs
    : public ::testing::TestWithParam<QuicksortOptions::Input> {};

TEST_P(QuicksortInputs, SortsCorrectly) {
  TaskPool::Options pool;
  pool.threads = 4;
  QuicksortOptions qs;
  qs.elements = 200000;
  qs.sequential_cutoff = 4096;
  qs.input = GetParam();
  const auto run = run_parallel_quicksort(pool, qs);
  EXPECT_TRUE(run.sorted);
  EXPECT_GT(run.tasks, 10);  // actually decomposed into tasks
  EXPECT_EQ(run.elements, qs.elements);
}

INSTANTIATE_TEST_SUITE_P(Both, QuicksortInputs,
                         ::testing::Values(QuicksortOptions::Input::kRandom,
                                           QuicksortOptions::Input::kReversed));

TEST(Quicksort, WorkStealingModeSortsToo) {
  TaskPool::Options pool;
  pool.threads = 4;
  pool.work_stealing = true;
  QuicksortOptions qs;
  qs.elements = 100000;
  const auto run = run_parallel_quicksort(pool, qs);
  EXPECT_TRUE(run.sorted);
}

TEST(Quicksort, AdversarialInputHasLongSequentialPhase) {
  // Fig. 12: inversely sorted input + middle pivot keeps one thread busy
  // for a large fraction of the run while the others wait. Wall-clock
  // based, so a loaded machine can depress one measurement — take the
  // best of a few runs before judging.
  TaskPool::Options pool;
  pool.threads = 8;
  QuicksortOptions qs;
  qs.elements = 1 << 20;
  qs.input = QuicksortOptions::Input::kReversed;

  double best_solo = 0;
  for (int attempt = 0; attempt < 3 && best_solo <= 0.15; ++attempt) {
    const auto run = run_parallel_quicksort(pool, qs);
    ASSERT_TRUE(run.sorted);
    const auto schedule = log_to_schedule(run.log);
    best_solo = std::max(
        best_solo,
        model::fraction_of_time_with_busy(schedule, 1, {"computation"}));
  }
  EXPECT_GT(best_solo, 0.15);  // a pronounced sequential head
}

// -- log -> schedule ---------------------------------------------------------

TEST(LogToSchedule, OneHostPerThread) {
  TaskPool::Options options;
  options.threads = 3;
  TaskPool pool(options);
  for (int i = 0; i < 30; ++i) {
    pool.create_initial_task([](TaskContext&) {
      volatile int sink = 0;
      for (int k = 0; k < 1000; ++k) sink = sink + k;
    });
  }
  const RunLog log = pool.run();
  const auto schedule = log_to_schedule(log);
  EXPECT_NO_THROW(schedule.validate());
  EXPECT_EQ(schedule.total_hosts(), 3);
  EXPECT_EQ(schedule.meta_value("threads"), "3");
  EXPECT_EQ(schedule.meta_value("tasks"), "30");

  // Exec and wait tasks of one thread never overlap each other.
  EXPECT_FALSE(model::has_resource_conflicts(schedule));

  // Every exec interval appears as a computation task.
  std::size_t exec_tasks = 0;
  for (const auto& t : schedule.tasks()) {
    if (t.type() == "computation") ++exec_tasks;
  }
  std::size_t expected = 0;
  for (const auto& tl : log.per_thread) expected += tl.exec.size();
  EXPECT_EQ(exec_tasks, expected);
}

TEST(LogToSchedule, MergeGapCoalesces) {
  RunLog log;
  log.threads = 1;
  log.wallclock = 10;
  log.tasks_executed = 3;
  log.per_thread.resize(1);
  log.per_thread[0].exec = {{0.0, 1.0, 1}, {1.05, 2.0, 2}, {5.0, 6.0, 3}};
  LogScheduleOptions options;
  options.merge_gap = 0.2;
  options.include_waits = false;
  const auto schedule = log_to_schedule(log, options);
  EXPECT_EQ(schedule.tasks().size(), 2u);  // first two merged
}

TEST(LogToSchedule, WaitsCanBeExcluded) {
  RunLog log;
  log.threads = 1;
  log.wallclock = 3;
  log.per_thread.resize(1);
  log.per_thread[0].exec = {{1.0, 2.0, 1}};
  log.per_thread[0].wait = {{0.0, 1.0, -1}, {2.0, 3.0, -1}};
  LogScheduleOptions with;
  EXPECT_EQ(log_to_schedule(log, with).tasks().size(), 3u);
  LogScheduleOptions without;
  without.include_waits = false;
  EXPECT_EQ(log_to_schedule(log, without).tasks().size(), 1u);
}

}  // namespace
}  // namespace jedule::taskpool
