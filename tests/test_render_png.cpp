#include "jedule/render/png.hpp"

#include <gtest/gtest.h>

#include "jedule/util/error.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::render {
namespace {

Framebuffer noise_image(int w, int h, std::uint64_t seed) {
  Framebuffer fb(w, h);
  util::Rng rng(seed);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      fb.set_pixel_unchecked(
          x, y,
          Color{static_cast<std::uint8_t>(rng() & 0xFF),
                static_cast<std::uint8_t>(rng() & 0xFF),
                static_cast<std::uint8_t>(rng() & 0xFF), 255});
    }
  }
  return fb;
}

TEST(Png, SignatureAndChunks) {
  const std::string bytes = encode_png(Framebuffer(4, 3));
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 8), std::string("\x89PNG\r\n\x1a\n", 8));
  EXPECT_NE(bytes.find("IHDR"), std::string::npos);
  EXPECT_NE(bytes.find("IDAT"), std::string::npos);
  EXPECT_NE(bytes.find("IEND"), std::string::npos);
}

TEST(Png, RoundTripsPixelExact) {
  const Framebuffer fb = noise_image(37, 23, 1);
  const Framebuffer back = decode_png(encode_png(fb));
  EXPECT_EQ(back, fb);
}

TEST(Png, RoundTripsFlatImage) {
  Framebuffer fb(64, 48, Color{10, 130, 200, 255});
  fb.fill_rect(8, 8, 20, 20, Color{255, 98, 0, 255});
  const Framebuffer back = decode_png(encode_png(fb));
  EXPECT_EQ(back, fb);
}

TEST(Png, Deterministic) {
  const Framebuffer fb = noise_image(50, 40, 2);
  EXPECT_EQ(encode_png(fb), encode_png(fb));
}

TEST(Png, OnePixelImage) {
  Framebuffer fb(1, 1, Color{1, 2, 3, 255});
  const Framebuffer back = decode_png(encode_png(fb));
  EXPECT_EQ(back.pixel(0, 0), (Color{1, 2, 3, 255}));
}

TEST(Png, FlatImageCompressesWell) {
  const Framebuffer fb(800, 600);  // all white
  const std::string bytes = encode_png(fb);
  // Raw would be 800*600*3 = 1.44 MB; runs must collapse dramatically.
  EXPECT_LT(bytes.size(), 30000u);
}

TEST(DecodePng, RejectsBadSignature) {
  EXPECT_THROW(decode_png("not a png at all"), ParseError);
}

TEST(DecodePng, RejectsTruncatedFile) {
  const std::string bytes = encode_png(Framebuffer(16, 16));
  EXPECT_THROW(decode_png(bytes.substr(0, bytes.size() / 2)), ParseError);
}

class PngSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PngSizes, RoundTrips) {
  const auto [w, h] = GetParam();
  const Framebuffer fb = noise_image(w, h, static_cast<std::uint64_t>(w * h));
  EXPECT_EQ(decode_png(encode_png(fb)), fb);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PngSizes,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 1},
                                           std::pair{1, 2}, std::pair{13, 7},
                                           std::pair{256, 1},
                                           std::pair{1, 256},
                                           std::pair{320, 200}));

}  // namespace
}  // namespace jedule::render
