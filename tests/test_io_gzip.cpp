// Gzip-compressed schedule loading: util::gzip_decompress on hand-built
// RFC 1952 containers, and io::load_schedule's transparent decompression
// (suffix stripping for format sniffing, magic-byte detection for renamed
// files, and clean errors on corruption).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "jedule/io/file.hpp"
#include "jedule/io/jedule_xml.hpp"
#include "jedule/io/registry.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/render/deflate.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/inflate.hpp"

namespace jedule {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

void append_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

/// Minimal single-member gzip container around our own deflate stream.
std::vector<std::uint8_t> gzip_wrap(const std::string& content,
                                    std::uint8_t flg = 0,
                                    const std::string& name = "") {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(content.data());
  std::vector<std::uint8_t> out = {0x1f, 0x8b, 8, flg, 0, 0, 0, 0, 0, 255};
  if (flg & 8) {  // FNAME
    for (char c : name) out.push_back(static_cast<std::uint8_t>(c));
    out.push_back(0);
  }
  const auto body = render::deflate_compress(bytes, content.size());
  out.insert(out.end(), body.begin(), body.end());
  append_le32(out, util::crc32(bytes, content.size()));
  append_le32(out, static_cast<std::uint32_t>(content.size()));
  return out;
}

std::string to_string(const std::vector<std::uint8_t>& v) {
  return std::string(v.begin(), v.end());
}

model::Schedule sample_schedule() {
  return model::ScheduleBuilder()
      .cluster(0, "c0", 8)
      .meta("algorithm", "gziptest")
      .task("1", "computation", 0.0, 0.31)
      .on(0, 0, 8)
      .task("2", "transfer", 0.25, 0.5)
      .on(0, 2, 4)
      .build();
}

TEST(GzipDecompress, RoundTripsPlainAndFlaggedHeaders) {
  const std::string payload = "hello gzip payload, hello gzip payload";
  for (const std::uint8_t flg : {std::uint8_t{0}, std::uint8_t{8}}) {
    const auto gz = gzip_wrap(payload, flg, "member.txt");
    const auto back = util::gzip_decompress(gz.data(), gz.size());
    EXPECT_EQ(std::string(back.begin(), back.end()), payload);
  }
}

TEST(GzipDecompress, RejectsCorruption) {
  const std::string payload = "payload under test";
  auto gz = gzip_wrap(payload);
  // Magic.
  auto bad = gz;
  bad[0] = 0x1e;
  EXPECT_THROW(util::gzip_decompress(bad.data(), bad.size()), ParseError);
  // Unsupported method.
  bad = gz;
  bad[2] = 7;
  EXPECT_THROW(util::gzip_decompress(bad.data(), bad.size()), ParseError);
  // Reserved flag bits.
  bad = gz;
  bad[3] = 0x80;
  EXPECT_THROW(util::gzip_decompress(bad.data(), bad.size()), ParseError);
  // CRC-32 mismatch.
  bad = gz;
  bad[bad.size() - 8] ^= 0xff;
  EXPECT_THROW(util::gzip_decompress(bad.data(), bad.size()), ParseError);
  // Size mismatch.
  bad = gz;
  bad[bad.size() - 4] ^= 0xff;
  EXPECT_THROW(util::gzip_decompress(bad.data(), bad.size()), ParseError);
  // Truncation anywhere in the stream.
  EXPECT_THROW(util::gzip_decompress(gz.data(), 9), ParseError);
  EXPECT_THROW(util::gzip_decompress(gz.data(), gz.size() - 5), ParseError);
}

TEST(GzipSniff, DetectsMagicBytes) {
  EXPECT_TRUE(util::looks_like_gzip("\x1f\x8b\x08rest"));
  EXPECT_FALSE(util::looks_like_gzip("<jedule>"));
  EXPECT_FALSE(util::looks_like_gzip("\x1f"));
  EXPECT_FALSE(util::looks_like_gzip(""));
}

TEST(LoadSchedule, ReadsGzippedJeduleXmlBySuffix) {
  const auto schedule = sample_schedule();
  const std::string xml = io::write_schedule_xml(schedule);
  const std::string path = temp_path("schedule.jed.gz");
  io::write_file(path, to_string(gzip_wrap(xml)));

  const auto loaded = io::load_schedule(path);
  EXPECT_EQ(io::write_schedule_xml(loaded), xml);
}

TEST(LoadSchedule, DetectsGzipByMagicDespiteForeignName) {
  const std::string xml = io::write_schedule_xml(sample_schedule());
  // No .gz suffix at all: the magic bytes alone must trigger inflation,
  // and the inner format is still sniffed from the remaining name.
  const std::string path = temp_path("renamed_schedule.jed");
  io::write_file(path, to_string(gzip_wrap(xml)));
  const auto loaded = io::load_schedule(path);
  EXPECT_EQ(io::write_schedule_xml(loaded), xml);
}

TEST(LoadSchedule, GzippedCsvSniffsInnerFormat) {
  const std::string csv =
      "!cluster,0,c,8\n"
      "task_id,type,start,end,allocs\n"
      "1,computation,0.0,0.31,0:0-7\n";
  const std::string path = temp_path("schedule.csv.gz");
  io::write_file(path, to_string(gzip_wrap(csv)));
  const auto loaded = io::load_schedule(path);
  ASSERT_EQ(loaded.tasks().size(), 1u);
  EXPECT_EQ(loaded.tasks()[0].type(), "computation");
}

TEST(LoadSchedule, CorruptGzipReportsParseError) {
  const std::string xml = io::write_schedule_xml(sample_schedule());
  auto gz = gzip_wrap(xml);
  gz[gz.size() - 6] ^= 0x55;  // break the CRC
  const std::string path = temp_path("corrupt.jed.gz");
  io::write_file(path, to_string(gz));
  EXPECT_THROW(io::load_schedule(path), ParseError);
}

}  // namespace
}  // namespace jedule
