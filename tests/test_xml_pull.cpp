// Unit tests of the zero-copy XML pull parser (xml::PullParser): event
// sequences, in-situ vs decoded views, line numbers, skip_element, and
// error parity with the document-level contract pinned in test_xml.cpp.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "jedule/util/error.hpp"
#include "jedule/xml/pull.hpp"

namespace jedule::xml {
namespace {

using Event = PullParser::Event;

/// Flattened trace of the whole document: "+name", "-name", "'text".
std::vector<std::string> trace(const std::string& doc) {
  PullParser p(doc);
  std::vector<std::string> out;
  for (;;) {
    switch (p.next()) {
      case Event::kStartElement:
        out.push_back("+" + std::string(p.name()));
        break;
      case Event::kEndElement:
        out.push_back("-" + std::string(p.name()));
        break;
      case Event::kText:
        out.push_back("'" + std::string(p.text()));
        break;
      case Event::kEndDocument:
        return out;
    }
  }
}

TEST(PullParser, EmitsNestedEventSequence) {
  const auto t = trace("<a><b>x</b><c/></a>");
  ASSERT_EQ(t.size(), 7u);
  EXPECT_EQ(t[0], "+a");
  EXPECT_EQ(t[1], "+b");
  EXPECT_EQ(t[2], "'x");
  EXPECT_EQ(t[3], "-b");
  EXPECT_EQ(t[4], "+c");
  EXPECT_EQ(t[5], "-c");
  EXPECT_EQ(t[6], "-a");
}

TEST(PullParser, AttributesAreZeroCopyWhenPlain) {
  const std::string doc = R"(<e one="1" two="a&amp;b"/>)";
  PullParser p(doc);
  ASSERT_EQ(p.next(), Event::kStartElement);
  ASSERT_EQ(p.attributes().size(), 2u);
  EXPECT_EQ(p.attributes()[0].name, "one");
  EXPECT_EQ(p.attributes()[0].value, "1");
  // The undecorated value is served from the input buffer itself.
  EXPECT_GE(p.attributes()[0].value.data(), doc.data());
  EXPECT_LT(p.attributes()[0].value.data(), doc.data() + doc.size());
  EXPECT_EQ(p.attributes()[1].value, "a&b");
  EXPECT_EQ(*p.attr("two"), "a&b");
  EXPECT_FALSE(p.attr("three").has_value());
}

TEST(PullParser, TextRunsSplitAroundChildren) {
  const auto t = trace("<a> x <b/> y </a>");
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t[1], "' x ");  // whitespace is preserved at the pull level
  EXPECT_EQ(t[4], "' y ");
}

TEST(PullParser, DecodesEntitiesCharRefsAndCdata) {
  const auto t = trace("<a>&lt;&#65;&#x42;&amp;<![CDATA[<raw&>]]>z</a>");
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[1], "'<AB&");
  EXPECT_EQ(t[2], "'<raw&>");
  EXPECT_EQ(t[3], "'z");
}

TEST(PullParser, TracksElementStartLines) {
  PullParser p("<a>\n  <b\n     x=\"1\"/>\n</a>");
  ASSERT_EQ(p.next(), Event::kStartElement);
  EXPECT_EQ(p.line(), 1);
  ASSERT_EQ(p.next(), Event::kText);
  ASSERT_EQ(p.next(), Event::kStartElement);
  EXPECT_EQ(p.name(), "b");
  EXPECT_EQ(p.line(), 2);  // the line of '<b', not of its attributes
  ASSERT_EQ(p.next(), Event::kEndElement);
  ASSERT_EQ(p.next(), Event::kText);
  ASSERT_EQ(p.next(), Event::kEndElement);
  EXPECT_EQ(p.next(), Event::kEndDocument);
}

TEST(PullParser, SkipElementConsumesWholeSubtree) {
  PullParser p("<a><skip><deep><er/>text</deep></skip><next/></a>");
  ASSERT_EQ(p.next(), Event::kStartElement);  // a
  ASSERT_EQ(p.next(), Event::kStartElement);  // skip
  p.skip_element();
  ASSERT_EQ(p.next(), Event::kStartElement);
  EXPECT_EQ(p.name(), "next");
}

TEST(PullParser, RequireAttrThrowsWithElementLine) {
  PullParser p("<a>\n<b/>\n</a>");
  p.next();
  p.next();
  ASSERT_EQ(p.next(), Event::kStartElement);
  try {
    p.require_attr("id");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("missing attribute 'id'"),
              std::string::npos);
  }
}

TEST(PullParser, RejectsMalformedDocuments) {
  EXPECT_THROW(trace("<a><b></a></b>"), ParseError);
  EXPECT_THROW(trace("<a>"), ParseError);
  EXPECT_THROW(trace("<a/><b/>"), ParseError);
  EXPECT_THROW(trace("<a x=\"1\" x=\"2\"/>"), ParseError);
  EXPECT_THROW(trace("<a>&unknown;</a>"), ParseError);
  EXPECT_THROW(trace("text only"), ParseError);
  EXPECT_THROW(trace(""), ParseError);
}

TEST(PullParser, SelfClosingRootYieldsStartEndDocument) {
  PullParser p("<only/>");
  EXPECT_EQ(p.next(), Event::kStartElement);
  EXPECT_EQ(p.next(), Event::kEndElement);
  EXPECT_EQ(p.name(), "only");
  EXPECT_EQ(p.next(), Event::kEndDocument);
}

}  // namespace
}  // namespace jedule::xml
