// Viewport culling, LOD and degenerate-window behavior:
//  - the culled layout (hints.index + time window) paints byte-identically
//    to the full layout, composites included;
//  - LodMode::kDefault stays off on the export path, engages only past the
//    density threshold (or kForce) on the interactive path;
//  - Session view operations clamp degenerate input (zero/denormal zoom,
//    pans past the bounds, reversed zoom rectangles) instead of producing
//    NaN geometry or throwing;
//  - index-based Session::inspect answers exactly like hit_test on a full
//    layout.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>

#include "jedule/color/colormap.hpp"
#include "jedule/interactive/session.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/model/task_index.hpp"
#include "jedule/render/framebuffer.hpp"
#include "jedule/render/gantt.hpp"
#include "jedule/render/raster_canvas.hpp"
#include "jedule/util/error.hpp"

namespace jedule {
namespace {

using interactive::Session;
using model::Schedule;
using model::ScheduleBuilder;
using model::TaskIndex;
using render::Framebuffer;
using render::GanttStyle;
using render::LodMode;

Schedule overlap_schedule(int n = 250, unsigned seed = 17) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> start(0.0, 90.0);
  std::uniform_real_distribution<double> dur(1.0, 15.0);
  std::uniform_int_distribution<int> host(0, 10);
  std::uniform_int_distribution<int> span(1, 5);
  ScheduleBuilder b;
  b.cluster(0, "c0", 16).cluster(1, "c1", 16);  // host + span <= 15
  for (int i = 0; i < n; ++i) {
    const double s = start(rng);
    b.task(std::to_string(i), i % 3 ? "computation" : "transfer", s,
           s + dur(rng));
    b.on(i % 2, host(rng), span(rng));
  }
  return b.build();
}

Framebuffer render_layout(const Schedule& s, const GanttStyle& style,
                          const TaskIndex* index) {
  render::LayoutHints hints;
  hints.index = index;
  const auto layout =
      render::layout_gantt(s, color::standard_colormap(), style, 1, hints);
  Framebuffer fb(style.width, style.height);
  render::RasterCanvas canvas(fb);
  render::paint_gantt(layout, canvas, style);
  return fb;
}

TEST(ViewportCulling, CulledRenderIsByteIdenticalToFull) {
  const Schedule s = overlap_schedule();
  const TaskIndex index(s);
  GanttStyle style;
  style.width = 900;
  style.height = 500;
  for (auto [t0, t1] : {std::pair<double, double>{10, 40},
                        {0, 100},
                        {37.5, 38.5},
                        {95, 120}}) {
    style.time_window = model::TimeRange{t0, t1};
    const Framebuffer culled = render_layout(s, style, &index);
    const Framebuffer full = render_layout(s, style, nullptr);
    EXPECT_EQ(culled, full) << "window [" << t0 << ", " << t1 << "]";
  }
}

TEST(ViewportCulling, CulledLayoutIsSmallerAndMarked) {
  const Schedule s = overlap_schedule();
  const TaskIndex index(s);
  GanttStyle style;
  style.time_window = model::TimeRange{37.5, 38.5};
  render::LayoutHints hints;
  hints.index = &index;
  const auto culled =
      render::layout_gantt(s, color::standard_colormap(), style, 1, hints);
  const auto full =
      render::layout_gantt(s, color::standard_colormap(), style, 1, {});
  EXPECT_TRUE(culled.culled);
  EXPECT_FALSE(full.culled);
  EXPECT_LT(culled.tasks.size(), full.tasks.size());
}

TEST(Lod, DefaultModeStaysOffOnTheExportPath) {
  // Dense enough that kAuto would engage: if kDefault leaked to kAuto on
  // exports, the bytes would change.
  const Schedule s = overlap_schedule(3000, 5);
  const TaskIndex index(s);
  GanttStyle style;
  style.width = 320;  // ~250 pixel columns for ~3000 entries
  style.height = 400;
  style.time_window = model::TimeRange{0, 105};
  GanttStyle off = style;
  off.lod = LodMode::kOff;
  EXPECT_EQ(render_layout(s, style, &index), render_layout(s, off, &index));
}

TEST(Lod, AutoEngagesOnlyPastTheDensityThreshold) {
  const auto cmap = color::standard_colormap();
  render::LayoutHints hints;
  hints.interactive = true;  // kDefault -> kAuto

  // Sparse: a handful of tasks never collapse.
  const Schedule sparse = overlap_schedule(20, 2);
  GanttStyle style;
  style.width = 320;
  style.height = 400;
  auto lay = render::layout_gantt(sparse, cmap, style, 1, hints);
  for (auto v : lay.panel_lod) EXPECT_EQ(v, 0);

  // Dense: thousands of entries over ~250 columns exceed lod_density.
  const Schedule dense = overlap_schedule(3000, 5);
  lay = render::layout_gantt(dense, cmap, style, 1, hints);
  bool any_lod = false;
  for (auto v : lay.panel_lod) any_lod = any_lod || v != 0;
  EXPECT_TRUE(any_lod);
  bool any_bin = false;
  for (const auto& b : lay.boxes) any_bin = any_bin || b.lod_bin;
  EXPECT_TRUE(any_bin);
}

TEST(Lod, ForceBinsEvenSparseSchedules) {
  GanttStyle style;
  style.lod = LodMode::kForce;
  const Schedule s = overlap_schedule(20, 2);
  const auto lay =
      render::layout_gantt(s, color::standard_colormap(), style, 1, {});
  for (auto v : lay.panel_lod) EXPECT_EQ(v, 1);
  bool any_exact = false;
  for (const auto& b : lay.boxes) any_exact = any_exact || !b.lod_bin;
  EXPECT_FALSE(any_exact);
  // Bins are transparent to hit_test.
  for (const auto& b : lay.boxes) {
    EXPECT_EQ(render::hit_test(lay, b.x + b.w / 2, b.y + b.h / 2), nullptr);
  }
}

Session make_session(int tasks = 60) {
  GanttStyle style;
  style.width = 800;
  style.height = 480;
  return Session(overlap_schedule(tasks, 9), color::standard_colormap(),
                 style);
}

bool window_is_sane(const Session& s) {
  if (!s.style().time_window) return false;
  const auto w = *s.style().time_window;
  return std::isfinite(w.begin) && std::isfinite(w.end) && w.length() > 0;
}

TEST(DegenerateWindows, ExtremeZoomFactorsClampInsteadOfCollapsing) {
  Session s = make_session();
  s.zoom(1e308);  // denormal-length window would divide to ~0
  EXPECT_TRUE(window_is_sane(s));
  for (int i = 0; i < 50; ++i) s.zoom(1e6);
  EXPECT_TRUE(window_is_sane(s));
  for (int i = 0; i < 50; ++i) s.zoom(1e-6);  // zoom out just as far
  EXPECT_TRUE(window_is_sane(s));
  s.zoom(std::numeric_limits<double>::denorm_min());
  EXPECT_TRUE(window_is_sane(s));
  s.zoom(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(window_is_sane(s));
  // The contract from the original API is kept: non-positive throws.
  EXPECT_THROW(s.zoom(0.0), ArgumentError);
  EXPECT_THROW(s.zoom(-3.0), ArgumentError);
  EXPECT_THROW(s.zoom(std::nan("")), ArgumentError);
}

TEST(DegenerateWindows, PanPastTheBoundsSlidesAlongThem) {
  Session s = make_session();
  s.zoom_to_time(10, 20);
  s.pan(1e9);
  EXPECT_TRUE(window_is_sane(s));
  // The window still touches the schedule's range (to rounding: the clamp
  // computes begin = range.begin - len, and begin + len can land one ulp
  // shy of range.begin).
  const auto range = *s.schedule().time_range();
  const double tol = 1e-9 * range.length();
  EXPECT_LE(s.style().time_window->begin, range.end + tol);
  s.pan(-1e9);
  EXPECT_TRUE(window_is_sane(s));
  EXPECT_GE(s.style().time_window->end, range.begin - tol);
  s.pan(1e308);  // begin+dt would overflow to +inf
  EXPECT_TRUE(window_is_sane(s));
  EXPECT_THROW(s.pan(std::nan("")), ArgumentError);
}

TEST(DegenerateWindows, ZoomToPixelsClampsReversedAndOffPanelSelections) {
  Session s = make_session();
  const auto panel = s.layout().panels.front();
  // Reversed rectangle: swapped, not thrown.
  s.zoom_to_pixels(panel.x + panel.w * 0.75, panel.x + panel.w * 0.25);
  EXPECT_TRUE(window_is_sane(s));
  const auto w1 = *s.style().time_window;
  EXPECT_GT(w1.length(), 0);
  // Both pixels off-panel on the same side: empty selection, minimal span.
  s.reset_view();
  s.zoom_to_pixels(-500, -400);
  EXPECT_TRUE(window_is_sane(s));
  // Same pixel twice.
  s.reset_view();
  s.zoom_to_pixels(panel.x + 10, panel.x + 10);
  EXPECT_TRUE(window_is_sane(s));
  EXPECT_THROW(s.zoom_to_pixels(std::nan(""), 10), ArgumentError);
}

TEST(DegenerateWindows, ZoomToTimeSwapsAndExpands) {
  Session s = make_session();
  s.zoom_to_time(40, 15);  // reversed: swaps
  EXPECT_DOUBLE_EQ(s.style().time_window->begin, 15);
  EXPECT_DOUBLE_EQ(s.style().time_window->end, 40);
  s.zoom_to_time(30, 30);  // empty: expands to a minimal span
  EXPECT_TRUE(window_is_sane(s));
  EXPECT_THROW(s.zoom_to_time(0, std::numeric_limits<double>::infinity()),
               ArgumentError);
}

TEST(DegenerateWindows, WindowCommandEchoesTheClampedResult) {
  Session s = make_session();
  const std::string out = s.execute("window 40 15");
  EXPECT_EQ(out, "window [15.000, 40.000]");
  // Frames render fine on every degenerate view above.
  s.execute("window 30 30");
  const auto& fb = s.frame();
  EXPECT_EQ(fb.width(), 800);
  EXPECT_EQ(fb.height(), 480);
}

TEST(InspectIndexed, MatchesHitTestOnTheFullLayout) {
  GanttStyle style;
  style.width = 800;
  style.height = 480;
  style.lod = LodMode::kOff;
  style.time_window = model::TimeRange{20, 60};
  const Schedule schedule = overlap_schedule(120, 4);
  Session session(schedule, color::standard_colormap(), style);

  // Reference: hit_test over the full (uncull ed, unindexed) layout.
  const auto full =
      render::layout_gantt(schedule, color::standard_colormap(), style, 1, {});
  int hits = 0;
  for (int x = 0; x < style.width; x += 7) {
    for (int y = 0; y < style.height; y += 11) {
      const auto* box = render::hit_test(full, x, y);
      const std::string got = session.inspect(x, y);
      if (box == nullptr) {
        EXPECT_EQ(got.rfind("no task at", 0), 0u) << "(" << x << "," << y << ")";
      } else {
        ++hits;
        const std::string want =
            "task " + full.tasks[box->task_index].id() + ":";
        EXPECT_EQ(got.rfind(want, 0), 0u)
            << "(" << x << "," << y << ") got: " << got;
      }
    }
  }
  EXPECT_GT(hits, 50);  // the sample grid actually covered tasks
}

TEST(InspectIndexed, ResolvesTasksUnderLodBins) {
  // With kForce there are no exact boxes, yet inspect still answers via
  // the index's point query.
  GanttStyle style;
  style.width = 800;
  style.height = 480;
  style.lod = LodMode::kForce;
  const Schedule schedule = overlap_schedule(120, 4);
  Session session(schedule, color::standard_colormap(), style);
  int found = 0;
  for (int x = 60; x < 780; x += 24) {
    for (int y = 40; y < 460; y += 24) {
      if (session.inspect(x, y).rfind("task ", 0) == 0) ++found;
    }
  }
  EXPECT_GT(found, 0);
}

}  // namespace
}  // namespace jedule
