#include "jedule/io/swf.hpp"

#include <gtest/gtest.h>

#include "jedule/util/error.hpp"

namespace jedule::io {
namespace {

const char kSample[] =
    "; Computer: LLNL Thunder\n"
    "; MaxNodes: 1024\n"
    "; MaxProcs: 4096\n"
    "; UnixStartTime: 1170000000\n"
    ";\n"
    "1 0 10 300 16 280.5 -1 16 600 -1 1 6447 3 5 1 1 -1 -1\n"
    "2 30 0 50 1 49 -1 1 100 -1 0 6400 3 7 1 1 -1 -1\n";

TEST(ReadSwf, HeaderMetadata) {
  const auto trace = read_swf(kSample);
  EXPECT_EQ(trace.header.at("Computer"), "LLNL Thunder");
  EXPECT_EQ(trace.header.at("MaxNodes"), "1024");
  EXPECT_EQ(trace.max_procs(), 4096);  // MaxProcs preferred over MaxNodes
}

TEST(ReadSwf, JobFields) {
  const auto trace = read_swf(kSample);
  ASSERT_EQ(trace.jobs.size(), 2u);
  const SwfJob& j = trace.jobs[0];
  EXPECT_EQ(j.job_id, 1);
  EXPECT_DOUBLE_EQ(j.submit_time, 0);
  EXPECT_DOUBLE_EQ(j.wait_time, 10);
  EXPECT_DOUBLE_EQ(j.run_time, 300);
  EXPECT_EQ(j.allocated_procs, 16);
  EXPECT_DOUBLE_EQ(j.avg_cpu_time, 280.5);
  EXPECT_EQ(j.requested_procs, 16);
  EXPECT_EQ(j.status, 1);
  EXPECT_EQ(j.user_id, 6447);
  EXPECT_EQ(j.group_id, 3);
  EXPECT_DOUBLE_EQ(j.start_time(), 10);
  EXPECT_DOUBLE_EQ(j.end_time(), 310);
}

TEST(ReadSwf, MaxProcsFallsBackToJobs) {
  SwfTrace trace = read_swf("7 0 0 10 64 -1 -1 64 -1 -1 1 1 1 1 1 1 -1 -1\n");
  EXPECT_EQ(trace.max_procs(), 64);
}

TEST(ReadSwf, RejectsShortLines) {
  EXPECT_THROW(read_swf("1 2 3\n"), ParseError);
}

TEST(ReadSwf, RejectsNonNumericFields) {
  EXPECT_THROW(read_swf("x 0 0 10 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1\n"),
               ParseError);
}

TEST(WriteSwf, RoundTrips) {
  const auto orig = read_swf(kSample);
  const auto back = read_swf(write_swf(orig));
  ASSERT_EQ(back.jobs.size(), orig.jobs.size());
  for (std::size_t i = 0; i < orig.jobs.size(); ++i) {
    EXPECT_EQ(back.jobs[i].job_id, orig.jobs[i].job_id);
    EXPECT_DOUBLE_EQ(back.jobs[i].submit_time, orig.jobs[i].submit_time);
    EXPECT_DOUBLE_EQ(back.jobs[i].run_time, orig.jobs[i].run_time);
    EXPECT_EQ(back.jobs[i].allocated_procs, orig.jobs[i].allocated_procs);
    EXPECT_EQ(back.jobs[i].user_id, orig.jobs[i].user_id);
    EXPECT_DOUBLE_EQ(back.jobs[i].avg_cpu_time, orig.jobs[i].avg_cpu_time);
  }
  EXPECT_EQ(back.header.at("MaxNodes"), "1024");
}

TEST(ReadSwf, EmptyTraceIsFine) {
  const auto trace = read_swf("; MaxProcs: 8\n");
  EXPECT_TRUE(trace.jobs.empty());
  EXPECT_EQ(trace.max_procs(), 8);
}

}  // namespace
}  // namespace jedule::io
