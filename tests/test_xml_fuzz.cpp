// Robustness fuzzing of the XML parser and the schedule/colormap readers:
// randomly mutated documents must either parse or throw a jedule exception
// — never crash, hang, or corrupt memory. (Run under ASan in CI-like
// setups for full value; the invariant holds either way.)

#include <gtest/gtest.h>

#include "jedule/io/colormap_xml.hpp"
#include "jedule/io/csv.hpp"
#include "jedule/io/jedule_xml.hpp"
#include "jedule/io/swf.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/rng.hpp"
#include "jedule/xml/xml.hpp"

namespace jedule {
namespace {

const char kSeedDoc[] = R"(<jedule version="1.0">
  <jedule_meta><meta name="alg" value="CPA"/></jedule_meta>
  <platform><cluster id="0" name="c" hosts="8"/></platform>
  <node_infos>
    <node_statistics>
      <node_property name="id" value="1"/>
      <node_property name="type" value="computation"/>
      <node_property name="start_time" value="0.0"/>
      <node_property name="end_time" value="0.31"/>
      <configuration>
        <conf_property name="cluster_id" value="0"/>
        <host_lists><hosts start="0" nb="8"/></host_lists>
      </configuration>
    </node_statistics>
  </node_infos>
</jedule>)";

std::string mutate(std::string doc, util::Rng& rng) {
  const int edits = static_cast<int>(rng.uniform_int(1, 6));
  for (int e = 0; e < edits && !doc.empty(); ++e) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(doc.size()) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0:  // flip a character
        doc[pos] = static_cast<char>(rng.uniform_int(32, 126));
        break;
      case 1:  // delete a span
        doc.erase(pos, static_cast<std::size_t>(rng.uniform_int(1, 8)));
        break;
      case 2:  // duplicate a span
        doc.insert(pos, doc.substr(pos, static_cast<std::size_t>(
                                            rng.uniform_int(1, 12))));
        break;
      default:  // inject syntax characters
        doc.insert(pos, std::string(1, "<>&\"'/="[rng.uniform_int(0, 6)]));
        break;
    }
  }
  return doc;
}

class XmlFuzz : public ::testing::TestWithParam<int> {};

TEST_P(XmlFuzz, NeverCrashes) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int round = 0; round < 300; ++round) {
    const std::string doc = mutate(kSeedDoc, rng);
    try {
      const auto parsed = xml::parse(doc);
      // If the XML layer accepted it, the schedule reader must still
      // either accept or throw cleanly.
      try {
        io::read_schedule_xml(doc);
      } catch (const Error&) {
      }
    } catch (const Error&) {
      // Clean rejection is the expected outcome for most mutants.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzz, ::testing::Range(1, 6));

TEST(ColormapFuzz, NeverCrashes) {
  const char* seed = R"(<cmap name="m">
    <conf name="fontsize_label" value="13"/>
    <task id="t"><color type="fg" rgb="FFFFFF"/></task>
    <composite><task id="t"/><color type="bg" rgb="ff6200"/></composite>
  </cmap>)";
  util::Rng rng(99);
  for (int round = 0; round < 500; ++round) {
    const std::string doc = mutate(seed, rng);
    try {
      io::read_colormap_xml(doc);
    } catch (const Error&) {
    }
  }
}

TEST(CsvFuzz, NeverCrashes) {
  const char* seed =
      "!cluster,0,c,8\n"
      "task_id,type,start,end,allocs\n"
      "1,computation,0.0,0.31,0:0-7\n";
  util::Rng rng(123);
  for (int round = 0; round < 500; ++round) {
    const std::string doc = mutate(seed, rng);
    try {
      io::read_schedule_csv(doc);
    } catch (const Error&) {
    }
  }
}

TEST(SwfFuzz, NeverCrashes) {
  const char* seed =
      "; MaxProcs: 16\n"
      "1 0 10 300 16 280.5 -1 16 600 -1 1 6447 3 5 1 1 -1 -1\n";
  util::Rng rng(321);
  for (int round = 0; round < 500; ++round) {
    const std::string doc = mutate(seed, rng);
    try {
      io::read_swf(doc);
    } catch (const Error&) {
    }
  }
}

}  // namespace
}  // namespace jedule
