// Robustness fuzzing of the XML parser and the schedule/colormap readers:
// randomly mutated documents must either parse or throw a jedule exception
// — never crash, hang, or corrupt memory. (Run under ASan in CI-like
// setups for full value; the invariant holds either way.)

#include <gtest/gtest.h>

#include <optional>

#include "jedule/io/colormap_xml.hpp"
#include "jedule/io/csv.hpp"
#include "jedule/io/jedule_xml.hpp"
#include "jedule/io/swf.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/rng.hpp"
#include "jedule/xml/xml.hpp"

namespace jedule {
namespace {

const char kSeedDoc[] = R"(<jedule version="1.0">
  <jedule_meta><meta name="alg" value="CPA"/></jedule_meta>
  <platform><cluster id="0" name="c" hosts="8"/></platform>
  <node_infos>
    <node_statistics>
      <node_property name="id" value="1"/>
      <node_property name="type" value="computation"/>
      <node_property name="start_time" value="0.0"/>
      <node_property name="end_time" value="0.31"/>
      <configuration>
        <conf_property name="cluster_id" value="0"/>
        <host_lists><hosts start="0" nb="8"/></host_lists>
      </configuration>
    </node_statistics>
  </node_infos>
</jedule>)";

std::string mutate(std::string doc, util::Rng& rng) {
  const int edits = static_cast<int>(rng.uniform_int(1, 6));
  for (int e = 0; e < edits && !doc.empty(); ++e) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(doc.size()) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0:  // flip a character
        doc[pos] = static_cast<char>(rng.uniform_int(32, 126));
        break;
      case 1:  // delete a span
        doc.erase(pos, static_cast<std::size_t>(rng.uniform_int(1, 8)));
        break;
      case 2:  // duplicate a span
        doc.insert(pos, doc.substr(pos, static_cast<std::size_t>(
                                            rng.uniform_int(1, 12))));
        break;
      default:  // inject syntax characters
        doc.insert(pos, std::string(1, "<>&\"'/="[rng.uniform_int(0, 6)]));
        break;
    }
  }
  return doc;
}

class XmlFuzz : public ::testing::TestWithParam<int> {};

TEST_P(XmlFuzz, NeverCrashes) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int round = 0; round < 300; ++round) {
    const std::string doc = mutate(kSeedDoc, rng);
    try {
      const auto parsed = xml::parse(doc);
      // If the XML layer accepted it, the schedule reader must still
      // either accept or throw cleanly.
      try {
        io::read_schedule_xml(doc);
      } catch (const Error&) {
      }
    } catch (const Error&) {
      // Clean rejection is the expected outcome for most mutants.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzz, ::testing::Range(1, 6));

// ---------------------------------------------------------------------------
// Differential fuzzing: the pull-based xml::parse must accept exactly the
// documents the original recursive parser accepts, build the same tree, and
// reject with the same message and line.

void expect_same_tree(const xml::Element& a, const xml::Element& b) {
  ASSERT_EQ(a.name(), b.name());
  EXPECT_EQ(a.text(), b.text()) << "in <" << a.name() << ">";
  EXPECT_EQ(a.source_line(), b.source_line()) << "in <" << a.name() << ">";
  ASSERT_EQ(a.attributes().size(), b.attributes().size())
      << "in <" << a.name() << ">";
  for (std::size_t i = 0; i < a.attributes().size(); ++i) {
    EXPECT_EQ(a.attributes()[i].name, b.attributes()[i].name);
    EXPECT_EQ(a.attributes()[i].value, b.attributes()[i].value);
  }
  ASSERT_EQ(a.children().size(), b.children().size())
      << "in <" << a.name() << ">";
  for (std::size_t i = 0; i < a.children().size(); ++i) {
    expect_same_tree(*a.children()[i], *b.children()[i]);
  }
}

// A seed exercising the decoder edge cases: entities, character references,
// CDATA, comments, mixed whitespace, and attribute values needing both the
// zero-copy fast path and the decoding slow path.
const char kEdgeSeedDoc[] = R"(<?xml version="1.0" encoding="UTF-8"?>
<root a="plain" b="a&amp;b" c="&#65;&#x42;c" d="q&quot;q&apos;">
  <!-- comment -->
  <t1>text &amp; more &lt;raw&gt; &#xE9;</t1>
  <t2><![CDATA[verbatim <&> ]]]> tail]]></t2>
  <t3>  spaced  <inner/>  out  </t3>
  <empty/>
</root>)";

void check_parse_equivalence(const std::string& doc) {
  std::optional<xml::Document> ref;
  std::string ref_error;
  long ref_line = -1;
  try {
    ref = xml::baseline_parse(doc);
  } catch (const ParseError& e) {
    ref_error = e.what();
    ref_line = e.line();
  }
  try {
    const auto got = xml::parse(doc);
    ASSERT_TRUE(ref.has_value())
        << "pull parser accepted what the baseline rejects: " << ref_error;
    expect_same_tree(*ref->root, *got.root);
  } catch (const ParseError& e) {
    ASSERT_FALSE(ref.has_value())
        << "pull parser rejected an accepted document: " << e.what();
    EXPECT_EQ(ref_error, e.what());
    EXPECT_EQ(ref_line, e.line());
  }
}

class XmlDifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(XmlDifferentialFuzz, PullMatchesBaseline) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  for (int round = 0; round < 300; ++round) {
    const char* seed = round % 2 == 0 ? kSeedDoc : kEdgeSeedDoc;
    check_parse_equivalence(mutate(seed, rng));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlDifferentialFuzz, ::testing::Range(1, 6));

TEST(XmlDifferentialFuzz, SeedsThemselvesAgree) {
  check_parse_equivalence(kSeedDoc);
  check_parse_equivalence(kEdgeSeedDoc);
}

// The streaming schedule reader accepts exactly the same documents as the
// retained DOM-walking reference, producing an identical Schedule (compared
// via the canonical serialization). Error messages may differ — the DOM
// reader's checking order was never part of the contract — but acceptance
// must not.
TEST(ScheduleReaderFuzz, StreamingMatchesDom) {
  util::Rng rng(2718);
  for (int round = 0; round < 400; ++round) {
    const std::string doc = mutate(kSeedDoc, rng);
    std::optional<model::Schedule> ref;
    try {
      ref = io::read_schedule_xml_dom(doc);
    } catch (const Error&) {
    }
    try {
      const auto got = io::read_schedule_xml(doc);
      ASSERT_TRUE(ref.has_value())
          << "streaming reader accepted what the DOM reader rejects";
      EXPECT_EQ(io::write_schedule_xml(*ref), io::write_schedule_xml(got));
    } catch (const Error&) {
      EXPECT_FALSE(ref.has_value())
          << "streaming reader rejected what the DOM reader accepts";
    }
  }
}

TEST(ColormapFuzz, NeverCrashes) {
  const char* seed = R"(<cmap name="m">
    <conf name="fontsize_label" value="13"/>
    <task id="t"><color type="fg" rgb="FFFFFF"/></task>
    <composite><task id="t"/><color type="bg" rgb="ff6200"/></composite>
  </cmap>)";
  util::Rng rng(99);
  for (int round = 0; round < 500; ++round) {
    const std::string doc = mutate(seed, rng);
    try {
      io::read_colormap_xml(doc);
    } catch (const Error&) {
    }
  }
}

TEST(CsvFuzz, NeverCrashes) {
  const char* seed =
      "!cluster,0,c,8\n"
      "task_id,type,start,end,allocs\n"
      "1,computation,0.0,0.31,0:0-7\n";
  util::Rng rng(123);
  for (int round = 0; round < 500; ++round) {
    const std::string doc = mutate(seed, rng);
    try {
      io::read_schedule_csv(doc);
    } catch (const Error&) {
    }
  }
}

TEST(SwfFuzz, NeverCrashes) {
  const char* seed =
      "; MaxProcs: 16\n"
      "1 0 10 300 16 280.5 -1 16 600 -1 1 6447 3 5 1 1 -1 -1\n";
  util::Rng rng(321);
  for (int round = 0; round < 500; ++round) {
    const std::string doc = mutate(seed, rng);
    try {
      io::read_swf(doc);
    } catch (const Error&) {
    }
  }
}

}  // namespace
}  // namespace jedule
