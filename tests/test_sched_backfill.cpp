#include "jedule/sched/backfill.hpp"

#include <gtest/gtest.h>

#include "jedule/util/rng.hpp"

namespace jedule::sched {
namespace {

PlacedTask make(std::vector<int> hosts, double start, double finish) {
  PlacedTask t;
  t.hosts = std::move(hosts);
  t.start = start;
  t.finish = finish;
  return t;
}

TEST(Backfill, SqueezesOntoOwnHosts) {
  // Host 0 busy [0,1); task at [5,6) on host 0 with no deps can move to 1.
  std::vector<PlacedTask> tasks = {make({0}, 0, 1), make({0}, 5, 6)};
  const auto r = conservative_backfill(tasks, 1, {{}, {}});
  EXPECT_EQ(r.moved, 1);
  EXPECT_DOUBLE_EQ(r.tasks[1].start, 1.0);
  EXPECT_DOUBLE_EQ(r.tasks[1].finish, 2.0);
}

TEST(Backfill, MovesToOtherFreeHosts) {
  // Host 0 busy [0,10); host 1 idle: the late task jumps hosts.
  std::vector<PlacedTask> tasks = {make({0}, 0, 10), make({0}, 10, 11)};
  const auto r = conservative_backfill(tasks, 2, {{}, {}});
  EXPECT_EQ(r.moved, 1);
  EXPECT_DOUBLE_EQ(r.tasks[1].start, 0.0);
  EXPECT_EQ(r.tasks[1].hosts, (std::vector<int>{1}));
}

TEST(Backfill, RespectsDependencies) {
  // Task 1 depends on task 0 (finishes at 4): cannot start before 4 even
  // though host 1 is idle from 0.
  std::vector<PlacedTask> tasks = {make({0}, 0, 4), make({0}, 9, 10)};
  const auto r = conservative_backfill(tasks, 2, {{}, {0}});
  EXPECT_DOUBLE_EQ(r.tasks[1].start, 4.0);
}

TEST(Backfill, DependencyDelayHonored) {
  std::vector<PlacedTask> tasks = {make({0}, 0, 4), make({1}, 9, 10)};
  const auto r =
      conservative_backfill(tasks, 2, {{}, {0}}, {{}, {1.5}});
  EXPECT_DOUBLE_EQ(r.tasks[1].start, 5.5);
}

TEST(Backfill, KeepsAllocationSize) {
  std::vector<PlacedTask> tasks = {make({0, 1}, 0, 5),
                                   make({0, 1}, 8, 9)};
  const auto r = conservative_backfill(tasks, 4, {{}, {}});
  EXPECT_EQ(r.tasks[1].hosts.size(), 2u);
  EXPECT_DOUBLE_EQ(r.tasks[1].start, 0.0);  // hosts 2,3 are free
}

TEST(Backfill, NothingMovesInATightSchedule) {
  std::vector<PlacedTask> tasks = {make({0}, 0, 2), make({0}, 2, 4),
                                   make({0}, 4, 6)};
  const auto r =
      conservative_backfill(tasks, 1, {{}, {0}, {1}});
  EXPECT_EQ(r.moved, 0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.tasks[i].start, tasks[i].start);
  }
}

TEST(Backfill, NeverDelaysAndNeverOverlaps_Property) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed);
    const int hosts = 6;
    const int n = 25;

    // Build a random feasible schedule: tasks placed back-to-back on
    // random host blocks, with random chain dependencies.
    std::vector<double> free_at(hosts, 0.0);
    std::vector<PlacedTask> tasks;
    std::vector<std::vector<int>> deps(n);
    for (int i = 0; i < n; ++i) {
      const int first = static_cast<int>(rng.uniform_int(0, hosts - 1));
      const int count =
          static_cast<int>(rng.uniform_int(1, hosts - first));
      std::vector<int> chosen;
      double start = 0;
      for (int h = first; h < first + count; ++h) {
        chosen.push_back(h);
        start = std::max(start, free_at[static_cast<std::size_t>(h)]);
      }
      if (i > 0 && rng.bernoulli(0.5)) {
        const int dep = static_cast<int>(rng.uniform_int(0, i - 1));
        deps[static_cast<std::size_t>(i)].push_back(dep);
        start = std::max(start, tasks[static_cast<std::size_t>(dep)].finish);
      }
      start += rng.uniform(0, 5);  // artificial idle gaps to reclaim
      const double len = rng.uniform(1, 6);
      for (int h : chosen) {
        free_at[static_cast<std::size_t>(h)] = start + len;
      }
      tasks.push_back(make(chosen, start, start + len));
    }

    const auto r = conservative_backfill(tasks, hosts, deps);

    for (int i = 0; i < n; ++i) {
      const auto& moved = r.tasks[static_cast<std::size_t>(i)];
      const auto& orig = tasks[static_cast<std::size_t>(i)];
      EXPECT_LE(moved.start, orig.start + 1e-9) << "task delayed, seed "
                                                << seed;
      EXPECT_NEAR(moved.finish - moved.start, orig.finish - orig.start, 1e-9);
      EXPECT_EQ(moved.hosts.size(), orig.hosts.size());
      for (int dep : deps[static_cast<std::size_t>(i)]) {
        EXPECT_GE(moved.start + 1e-9,
                  r.tasks[static_cast<std::size_t>(dep)].finish);
      }
    }

    // No overlap on any host.
    for (int h = 0; h < hosts; ++h) {
      std::vector<std::pair<double, double>> busy;
      for (const auto& t : r.tasks) {
        for (int th : t.hosts) {
          if (th == h) busy.emplace_back(t.start, t.finish);
        }
      }
      std::sort(busy.begin(), busy.end());
      for (std::size_t i = 1; i < busy.size(); ++i) {
        EXPECT_LE(busy[i - 1].second, busy[i].first + 1e-9)
            << "overlap on host " << h << ", seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace jedule::sched
