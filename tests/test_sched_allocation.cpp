#include "jedule/sched/allocation.hpp"

#include <gtest/gtest.h>

#include <map>

#include "jedule/dag/generators.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::sched {
namespace {

using dag::Dag;

TEST(CpaAllocate, ChainGetsParallelism) {
  // A single long chain IS the critical path; T_A is tiny, so CPA grows
  // allocations until growth stops paying (or saturates).
  util::Rng rng(1);
  const Dag d = dag::serial_dag(4, rng);
  const auto r = cpa_allocate(d, 8);
  for (int v = 0; v < d.node_count(); ++v) {
    EXPECT_GE(r.procs[static_cast<std::size_t>(v)], 1);
    EXPECT_LE(r.procs[static_cast<std::size_t>(v)], 8);
  }
  // With near-linear speedup the loop should push well past 1 proc.
  int total = 0;
  for (int p : r.procs) total += p;
  EXPECT_GT(total, d.node_count());
}

TEST(CpaAllocate, TimesMatchAllocations) {
  util::Rng rng(2);
  dag::LayeredDagOptions o;
  const Dag d = layered_random(o, rng);
  const auto r = cpa_allocate(d, 16);
  for (int v = 0; v < d.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(r.times[static_cast<std::size_t>(v)],
                     d.node(v).exec_time(r.procs[static_cast<std::size_t>(v)]));
  }
  EXPECT_DOUBLE_EQ(r.t_cp, d.critical_path_time(r.times));
  EXPECT_DOUBLE_EQ(r.t_a, d.average_area(r.times, r.procs, 16));
}

TEST(CpaAllocate, StopsWhenBalanced) {
  util::Rng rng(3);
  dag::LayeredDagOptions o;
  o.levels = 6;
  const Dag d = layered_random(o, rng);
  const auto r = cpa_allocate(d, 32);
  // Terminated: either balanced or no critical node can grow.
  if (r.t_cp > r.t_a) {
    const auto path = d.critical_path(r.times);
    for (int v : path) {
      const int p = r.procs[static_cast<std::size_t>(v)];
      if (p < 32) {
        const double gain = r.times[static_cast<std::size_t>(v)] -
                            d.node(v).exec_time(p + 1);
        EXPECT_LE(gain, 0.0) << "node " << v << " could still grow";
      }
    }
  }
}

TEST(McpaAllocate, LevelCapRespected) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed);
    dag::LayeredDagOptions o;
    o.levels = 5;
    o.min_width = 2;
    o.max_width = 8;
    const Dag d = layered_random(o, rng);
    const int P = 12;
    const auto r = mcpa_allocate(d, P);
    const auto levels = d.precedence_levels();
    std::map<int, int> level_total;
    for (int v = 0; v < d.node_count(); ++v) {
      level_total[levels[static_cast<std::size_t>(v)]] +=
          r.procs[static_cast<std::size_t>(v)];
    }
    for (const auto& [level, total] : level_total) {
      EXPECT_LE(total, std::max(P, d.width()))
          << "level " << level << " over-allocated (seed " << seed << ")";
    }
  }
}

TEST(Allocate, PathologicalDagShowsTheFig4Split) {
  // The Fig. 4 trigger: CPA lets the two heavy tasks of the wide level
  // grow; MCPA cannot (the level already uses all processors).
  const int P = 16;
  const Dag d = dag::mcpa_pathological_dag(P);
  const auto cpa = cpa_allocate(d, P);
  const auto mcpa = mcpa_allocate(d, P);

  int cpa_heavy_procs = 0;
  int mcpa_heavy_procs = 0;
  int heavy_tasks = 0;
  for (int v = 0; v < d.node_count(); ++v) {
    if (d.node(v).work > 100.0) {
      ++heavy_tasks;
      cpa_heavy_procs += cpa.procs[static_cast<std::size_t>(v)];
      mcpa_heavy_procs += mcpa.procs[static_cast<std::size_t>(v)];
    }
  }
  ASSERT_EQ(heavy_tasks, 2);
  EXPECT_GT(cpa_heavy_procs, 2 * 3);   // heavy tasks grew under CPA
  EXPECT_EQ(mcpa_heavy_procs, 2);      // stuck at one processor each
  // And CPA's critical path is therefore far shorter.
  EXPECT_LT(cpa.t_cp, mcpa.t_cp / 2);
}

TEST(Allocate, SingleProcessorMachine) {
  util::Rng rng(4);
  const Dag d = dag::serial_dag(3, rng);
  const auto r = cpa_allocate(d, 1);
  for (int p : r.procs) EXPECT_EQ(p, 1);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Allocate, IterationCapIsHonored) {
  util::Rng rng(5);
  const Dag d = dag::serial_dag(6, rng);
  AllocationOptions o;
  o.total_procs = 64;
  o.max_iterations = 3;
  const auto r = allocate(d, o);
  EXPECT_LE(r.iterations, 3);
}

}  // namespace
}  // namespace jedule::sched
