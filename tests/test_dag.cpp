#include "jedule/dag/dag.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "jedule/dag/dot.hpp"
#include "jedule/dag/generators.hpp"
#include "jedule/dag/montage.hpp"
#include "jedule/util/error.hpp"

namespace jedule::dag {
namespace {

Dag diamond() {
  Dag d("diamond");
  const int a = d.add_node("a", 10.0);
  const int b = d.add_node("b", 20.0);
  const int c = d.add_node("c", 5.0);
  const int e = d.add_node("e", 10.0);
  d.add_edge(a, b, 1.0);
  d.add_edge(a, c, 2.0);
  d.add_edge(b, e, 3.0);
  d.add_edge(c, e, 4.0);
  return d;
}

TEST(Node, ExecTimeAmdahl) {
  Node n;
  n.work = 100.0;
  n.serial_fraction = 0.2;
  EXPECT_DOUBLE_EQ(n.exec_time(1), 100.0);
  EXPECT_DOUBLE_EQ(n.exec_time(4), 100.0 * (0.2 + 0.8 / 4));
  EXPECT_DOUBLE_EQ(n.exec_time(1, 2.0), 50.0);  // speed scales
}

TEST(Node, ExecTimeMonotoneUntilOverheadDominates) {
  Node n;
  n.work = 100.0;
  n.serial_fraction = 0.05;
  n.overhead_per_proc = 0.01;
  for (int p = 1; p < 32; ++p) {
    EXPECT_LT(n.exec_time(p + 1), n.exec_time(p)) << p;
  }
}

TEST(Dag, ValidationOnConstruction) {
  Dag d;
  EXPECT_THROW(d.add_node("bad", 0.0), ValidationError);
  EXPECT_THROW(d.add_node("bad", -1.0), ValidationError);
  Node n;
  n.work = 1;
  n.serial_fraction = 1.5;
  EXPECT_THROW(d.add_node(n), ValidationError);
  const int a = d.add_node("a", 1.0);
  EXPECT_THROW(d.add_edge(a, a), ValidationError);
  EXPECT_THROW(d.add_edge(a, 99), ValidationError);
  EXPECT_THROW(d.add_edge(a, 0, -1.0), ValidationError);
}

TEST(Dag, AdjacencyAndEdgeData) {
  const Dag d = diamond();
  EXPECT_EQ(d.successors(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(d.predecessors(3), (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(d.edge_data(2, 3), 4.0);
  EXPECT_DOUBLE_EQ(d.edge_data(0, 3), 0.0);
  EXPECT_EQ(d.sources(), (std::vector<int>{0}));
  EXPECT_EQ(d.sinks(), (std::vector<int>{3}));
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  const Dag d = diamond();
  const auto order = d.topological_order();
  std::map<int, std::size_t> pos;
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& e : d.edges()) EXPECT_LT(pos[e.src], pos[e.dst]);
}

TEST(Dag, CycleDetected) {
  Dag d;
  const int a = d.add_node("a", 1.0);
  const int b = d.add_node("b", 1.0);
  d.add_edge(a, b);
  d.add_edge(b, a);
  EXPECT_THROW(d.topological_order(), ValidationError);
}

TEST(Dag, PrecedenceLevelsAreLongestHopCounts) {
  const Dag d = diamond();
  const auto levels = d.precedence_levels();
  EXPECT_EQ(levels, (std::vector<int>{0, 1, 1, 2}));
}

TEST(Dag, CriticalPathTimeAndPath) {
  const Dag d = diamond();
  const std::vector<double> times{10, 20, 5, 10};
  EXPECT_DOUBLE_EQ(d.critical_path_time(times), 40.0);  // a-b-e
  EXPECT_EQ(d.critical_path(times), (std::vector<int>{0, 1, 3}));
}

TEST(Dag, CriticalPathTieBreaksAreDeterministic) {
  // Both branches of the diamond finish at the same time: the DP only
  // replaces its choice on a strictly greater finish, so the first
  // predecessor in topological order wins — always branch b here.
  const Dag d = diamond();
  const std::vector<double> times{10, 20, 20, 10};
  EXPECT_DOUBLE_EQ(d.critical_path_time(times), 40.0);
  EXPECT_EQ(d.critical_path(times), (std::vector<int>{0, 1, 3}));
  // Two sinks tying on finish time: the earlier node keeps the path.
  Dag two;
  two.add_node("a", 1.0);
  two.add_node("b", 1.0);
  EXPECT_EQ(two.critical_path({5.0, 5.0}), (std::vector<int>{0}));
}

TEST(Dag, CriticalPathSingleNode) {
  Dag d;
  d.add_node("only", 1.0);
  EXPECT_DOUBLE_EQ(d.critical_path_time({7.5}), 7.5);
  EXPECT_EQ(d.critical_path({7.5}), (std::vector<int>{0}));
}

TEST(Dag, CriticalPathOnDisconnectedComponents) {
  // Two chains with no edges between them: the longer chain is the
  // critical path and the other component never contributes.
  Dag d;
  d.add_node("a0", 1.0);
  d.add_node("a1", 1.0);
  d.add_node("b0", 1.0);
  d.add_node("b1", 1.0);
  d.add_node("b2", 1.0);
  d.add_edge(0, 1);
  d.add_edge(2, 3);
  d.add_edge(3, 4);
  const std::vector<double> times{4.0, 4.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(d.critical_path_time(times), 9.0);
  EXPECT_EQ(d.critical_path(times), (std::vector<int>{2, 3, 4}));
  // An isolated node with the globally largest time is a one-node path.
  Dag iso;
  iso.add_node("big", 1.0);
  iso.add_node("c0", 1.0);
  iso.add_node("c1", 1.0);
  iso.add_edge(1, 2);
  EXPECT_EQ(iso.critical_path({10.0, 2.0, 3.0}), (std::vector<int>{0}));
  EXPECT_DOUBLE_EQ(iso.critical_path_time({10.0, 2.0, 3.0}), 10.0);
}

TEST(Dag, AverageAreaAndWork) {
  const Dag d = diamond();
  const std::vector<double> times{10, 20, 5, 10};
  const std::vector<int> allocs{1, 2, 1, 4};
  EXPECT_DOUBLE_EQ(d.total_work(times, allocs), 10 + 40 + 5 + 40);
  EXPECT_DOUBLE_EQ(d.average_area(times, allocs, 10), 9.5);
}

TEST(Dag, Width) {
  EXPECT_EQ(diamond().width(), 2);
  util::Rng rng(1);
  EXPECT_EQ(serial_dag(5, rng).width(), 1);
}

// -- generators ----------------------------------------------------------

TEST(Generators, LayeredRandomIsConnectedAcyclic) {
  util::Rng rng(11);
  LayeredDagOptions o;
  o.levels = 6;
  o.min_width = 2;
  o.max_width = 5;
  const Dag d = layered_random(o, rng);
  EXPECT_NO_THROW(d.topological_order());
  // Every non-source node keeps at least one predecessor.
  const auto levels = d.precedence_levels();
  for (int v = 0; v < d.node_count(); ++v) {
    if (levels[static_cast<std::size_t>(v)] > 0) {
      EXPECT_FALSE(d.predecessors(v).empty());
    }
  }
  EXPECT_GE(d.node_count(), 6 * 2);
  EXPECT_LE(d.node_count(), 6 * 5);
}

TEST(Generators, Deterministic) {
  util::Rng rng1(7);
  util::Rng rng2(7);
  LayeredDagOptions o;
  const Dag a = layered_random(o, rng1);
  const Dag b = layered_random(o, rng2);
  ASSERT_EQ(a.node_count(), b.node_count());
  for (int v = 0; v < a.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(a.node(v).work, b.node(v).work);
  }
  EXPECT_EQ(a.edges().size(), b.edges().size());
}

TEST(Generators, SerialDagIsAChain) {
  util::Rng rng(2);
  const Dag d = serial_dag(7, rng);
  EXPECT_EQ(d.node_count(), 7);
  EXPECT_EQ(d.edges().size(), 6u);
  EXPECT_EQ(d.width(), 1);
}

TEST(Generators, ForkJoinShape) {
  util::Rng rng(3);
  const Dag d = fork_join_dag(2, 4, rng);
  EXPECT_EQ(d.node_count(), 1 + 2 * (4 + 1));
  EXPECT_EQ(d.width(), 4);
  EXPECT_EQ(d.sources().size(), 1u);
  EXPECT_EQ(d.sinks().size(), 1u);
}

TEST(Generators, McpaPathologyShape) {
  const Dag d = mcpa_pathological_dag(16);
  EXPECT_EQ(d.width(), 16);  // level as wide as the machine
  // Exactly two heavy tasks in the wide level.
  int heavy = 0;
  for (const auto& n : d.nodes()) {
    if (n.work > 100.0) ++heavy;
  }
  EXPECT_EQ(heavy, 2);
}

// -- montage --------------------------------------------------------------

TEST(Montage, NodeCountFormula) {
  for (int k : {2, 4, 9, 12}) {
    EXPECT_EQ(montage_dag(k).node_count(), 5 * k + 3) << k;
  }
  EXPECT_EQ(montage_case_study().node_count(), 48);
}

TEST(Montage, StageCounts) {
  const Dag d = montage_dag(9);
  std::map<std::string, int> by_type;
  for (const auto& n : d.nodes()) ++by_type[n.type];
  EXPECT_EQ(by_type["mProject"], 9);
  EXPECT_EQ(by_type["mDiffFit"], 24);
  EXPECT_EQ(by_type["mConcatFit"], 1);
  EXPECT_EQ(by_type["mBgModel"], 1);
  EXPECT_EQ(by_type["mBackground"], 9);
  EXPECT_EQ(by_type["mImgtbl"], 1);
  EXPECT_EQ(by_type["mAdd"], 1);
  EXPECT_EQ(by_type["mShrink"], 1);
  EXPECT_EQ(by_type["mJPEG"], 1);
}

TEST(Montage, StructureIsValidPipeline) {
  const Dag d = montage_dag(5);
  EXPECT_NO_THROW(d.topological_order());
  // mProjects are the only sources; mJPEG the only sink.
  for (int v : d.sources()) EXPECT_EQ(d.node(v).type, "mProject");
  const auto sinks = d.sinks();
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(d.node(sinks[0]).type, "mJPEG");
  // Every mDiffFit has exactly two mProject parents.
  for (const auto& n : d.nodes()) {
    if (n.type == "mDiffFit") {
      const auto& preds = d.predecessors(n.id);
      ASSERT_EQ(preds.size(), 2u);
      for (int p : preds) EXPECT_EQ(d.node(p).type, "mProject");
    }
    if (n.type == "mBackground") {
      EXPECT_EQ(d.predecessors(n.id).size(), 2u);  // mBgModel + own mProject
    }
  }
}

TEST(Montage, RejectsTooFewImages) {
  EXPECT_THROW(montage_dag(1), Error);
}

// -- dot export -------------------------------------------------------------

TEST(Dot, ContainsNodesEdgesAndTypeColors) {
  const Dag d = montage_dag(3);
  const std::string dot = to_dot(d);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("mProject_0"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
  // Same type -> same color; different types -> different colors (paper
  // Fig. 6 caption).
  auto color_of = [&dot](const std::string& label) {
    const auto pos = dot.find("label=\"" + label + "\"");
    EXPECT_NE(pos, std::string::npos) << label;
    const auto c = dot.find("fillcolor=\"", pos);
    return dot.substr(c + 11, 7);
  };
  EXPECT_EQ(color_of("mProject_0"), color_of("mProject_1"));
  EXPECT_NE(color_of("mProject_0"), color_of("mAdd"));
}

}  // namespace
}  // namespace jedule::dag
