// Differential fuzz of the SIMD raster kernels: every variant the host can
// run must be bit-exact with the scalar reference, and the scalar blend
// must be bit-exact with color::blend_over — the two invariants that make
// kernel dispatch invisible in output bytes (DESIGN.md §4e).

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string_view>
#include <vector>

#include "jedule/color/color.hpp"
#include "jedule/render/kernels.hpp"
#include "jedule/util/cpu.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::render {
namespace {

using color::Color;

std::vector<std::uint8_t> random_row(util::Rng& rng, std::size_t npx) {
  std::vector<std::uint8_t> row(npx * 4);
  for (auto& b : row) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return row;
}

Color random_color(util::Rng& rng, int alpha) {
  return Color{static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
               static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
               static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
               static_cast<std::uint8_t>(alpha)};
}

TEST(RasterKernels, ScalarIsAlwaysAvailableAndFirst) {
  const auto& list = kernels::available();
  ASSERT_FALSE(list.empty());
  EXPECT_EQ(list.front(), &kernels::scalar());
  EXPECT_STREQ(kernels::scalar().name, "scalar");
#if defined(__x86_64__)
  EXPECT_TRUE(util::cpu_features().sse2);
#endif
#if defined(__aarch64__)
  EXPECT_TRUE(util::cpu_features().neon);
#endif
}

TEST(RasterKernels, FindAndOverride) {
  EXPECT_EQ(kernels::find("scalar"), &kernels::scalar());
  EXPECT_EQ(kernels::find("no-such-kernel"), nullptr);
  kernels::override_active(&kernels::scalar());
  EXPECT_EQ(&kernels::active(), &kernels::scalar());
  kernels::override_active(nullptr);
  if (const char* env = std::getenv("JEDULE_SIMD")) {
    // The *_scalar_env CTest configuration pins dispatch to scalar.
    if (std::string_view(env) == "scalar") {
      EXPECT_EQ(&kernels::active(), &kernels::scalar());
    }
  } else {
    EXPECT_EQ(&kernels::active(), kernels::available().back());
  }
}

// The scalar blend is the reference for the SIMD variants, so it must
// itself match blend_over exactly — for every alpha, including the 0 and
// 255 ends the callers usually special-case.
TEST(RasterKernels, ScalarBlendMatchesBlendOverForEveryAlpha) {
  util::Rng rng(11);
  for (int a = 0; a <= 255; ++a) {
    const Color c = random_color(rng, a);
    auto row = random_row(rng, 64);
    const auto before = row;
    kernels::scalar().blend_row(row.data(), 64, c);
    for (std::size_t i = 0; i < 64; ++i) {
      const Color dst{before[i * 4], before[i * 4 + 1], before[i * 4 + 2],
                      before[i * 4 + 3]};
      const Color want = color::blend_over(dst, c);
      EXPECT_EQ(row[i * 4 + 0], want.r) << "a=" << a << " px=" << i;
      EXPECT_EQ(row[i * 4 + 1], want.g);
      EXPECT_EQ(row[i * 4 + 2], want.b);
      EXPECT_EQ(row[i * 4 + 3], 255);
    }
  }
}

// Ragged widths 0..67 cross the 4-pixel SSE2 and 8-pixel AVX2/NEON lane
// boundaries several times over, with tails of every phase.
TEST(RasterKernels, FillRowVariantsMatchScalar) {
  util::Rng rng(22);
  for (const kernels::Kernels* k : kernels::available()) {
    for (std::size_t npx = 0; npx <= 67; ++npx) {
      const Color c = random_color(rng, 255);
      auto expect = random_row(rng, npx + 8);
      auto got = expect;
      kernels::scalar().fill_row(expect.data() + 4, npx, c);
      k->fill_row(got.data() + 4, npx, c);
      EXPECT_EQ(got, expect) << k->name << " npx=" << npx;
    }
  }
}

TEST(RasterKernels, BlendRowVariantsMatchScalarForEveryAlpha) {
  util::Rng rng(33);
  for (const kernels::Kernels* k : kernels::available()) {
    for (int a = 0; a <= 255; ++a) {
      const std::size_t npx = static_cast<std::size_t>(rng.uniform_int(0, 67));
      const Color c = random_color(rng, a);
      auto expect = random_row(rng, npx + 8);
      auto got = expect;
      kernels::scalar().blend_row(expect.data() + 4, npx, c);
      k->blend_row(got.data() + 4, npx, c);
      EXPECT_EQ(got, expect) << k->name << " a=" << a << " npx=" << npx;
    }
  }
}

TEST(RasterKernels, CopyRowVariantsMatchScalar) {
  util::Rng rng(44);
  for (const kernels::Kernels* k : kernels::available()) {
    for (std::size_t npx = 0; npx <= 67; ++npx) {
      const auto src = random_row(rng, npx);
      auto expect = random_row(rng, npx + 8);
      auto got = expect;
      kernels::scalar().copy_row(expect.data() + 4, src.data(), npx);
      k->copy_row(got.data() + 4, src.data(), npx);
      EXPECT_EQ(got, expect) << k->name << " npx=" << npx;
    }
  }
}

// Long rows exercise the unrolled main loops well past one vector width.
TEST(RasterKernels, LongRowsMatchScalar) {
  util::Rng rng(55);
  const std::size_t npx = 1021;  // prime: every lane phase shows up
  for (const kernels::Kernels* k : kernels::available()) {
    for (int a : {1, 90, 254, 255}) {
      const Color c = random_color(rng, a);
      auto expect = random_row(rng, npx);
      auto got = expect;
      if (a == 255) {
        kernels::scalar().fill_row(expect.data(), npx, c);
        k->fill_row(got.data(), npx, c);
      } else {
        kernels::scalar().blend_row(expect.data(), npx, c);
        k->blend_row(got.data(), npx, c);
      }
      EXPECT_EQ(got, expect) << k->name << " a=" << a;
    }
  }
}

}  // namespace
}  // namespace jedule::render
