// Differential fuzz of the SIMD raster kernels: every variant the host can
// run must be bit-exact with the scalar reference, and the scalar blend
// must be bit-exact with color::blend_over — the two invariants that make
// kernel dispatch invisible in output bytes (DESIGN.md §4e).

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <limits>
#include <string_view>
#include <vector>

#include "jedule/color/color.hpp"
#include "jedule/render/kernels.hpp"
#include "jedule/util/cpu.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::render {
namespace {

using color::Color;

std::vector<std::uint8_t> random_row(util::Rng& rng, std::size_t npx) {
  std::vector<std::uint8_t> row(npx * 4);
  for (auto& b : row) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return row;
}

Color random_color(util::Rng& rng, int alpha) {
  return Color{static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
               static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
               static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
               static_cast<std::uint8_t>(alpha)};
}

TEST(RasterKernels, ScalarIsAlwaysAvailableAndFirst) {
  const auto& list = kernels::available();
  ASSERT_FALSE(list.empty());
  EXPECT_EQ(list.front(), &kernels::scalar());
  EXPECT_STREQ(kernels::scalar().name, "scalar");
#if defined(__x86_64__)
  EXPECT_TRUE(util::cpu_features().sse2);
#endif
#if defined(__aarch64__)
  EXPECT_TRUE(util::cpu_features().neon);
#endif
}

TEST(RasterKernels, FindAndOverride) {
  EXPECT_EQ(kernels::find("scalar"), &kernels::scalar());
  EXPECT_EQ(kernels::find("no-such-kernel"), nullptr);
  kernels::override_active(&kernels::scalar());
  EXPECT_EQ(&kernels::active(), &kernels::scalar());
  kernels::override_active(nullptr);
  if (const char* env = std::getenv("JEDULE_SIMD")) {
    // The *_scalar_env CTest configuration pins dispatch to scalar.
    if (std::string_view(env) == "scalar") {
      EXPECT_EQ(&kernels::active(), &kernels::scalar());
    }
  } else {
    EXPECT_EQ(&kernels::active(), kernels::available().back());
  }
}

// The scalar blend is the reference for the SIMD variants, so it must
// itself match blend_over exactly — for every alpha, including the 0 and
// 255 ends the callers usually special-case.
TEST(RasterKernels, ScalarBlendMatchesBlendOverForEveryAlpha) {
  util::Rng rng(11);
  for (int a = 0; a <= 255; ++a) {
    const Color c = random_color(rng, a);
    auto row = random_row(rng, 64);
    const auto before = row;
    kernels::scalar().blend_row(row.data(), 64, c);
    for (std::size_t i = 0; i < 64; ++i) {
      const Color dst{before[i * 4], before[i * 4 + 1], before[i * 4 + 2],
                      before[i * 4 + 3]};
      const Color want = color::blend_over(dst, c);
      EXPECT_EQ(row[i * 4 + 0], want.r) << "a=" << a << " px=" << i;
      EXPECT_EQ(row[i * 4 + 1], want.g);
      EXPECT_EQ(row[i * 4 + 2], want.b);
      EXPECT_EQ(row[i * 4 + 3], 255);
    }
  }
}

// Ragged widths 0..67 cross the 4-pixel SSE2 and 8-pixel AVX2/NEON lane
// boundaries several times over, with tails of every phase.
TEST(RasterKernels, FillRowVariantsMatchScalar) {
  util::Rng rng(22);
  for (const kernels::Kernels* k : kernels::available()) {
    for (std::size_t npx = 0; npx <= 67; ++npx) {
      const Color c = random_color(rng, 255);
      auto expect = random_row(rng, npx + 8);
      auto got = expect;
      kernels::scalar().fill_row(expect.data() + 4, npx, c);
      k->fill_row(got.data() + 4, npx, c);
      EXPECT_EQ(got, expect) << k->name << " npx=" << npx;
    }
  }
}

TEST(RasterKernels, BlendRowVariantsMatchScalarForEveryAlpha) {
  util::Rng rng(33);
  for (const kernels::Kernels* k : kernels::available()) {
    for (int a = 0; a <= 255; ++a) {
      const std::size_t npx = static_cast<std::size_t>(rng.uniform_int(0, 67));
      const Color c = random_color(rng, a);
      auto expect = random_row(rng, npx + 8);
      auto got = expect;
      kernels::scalar().blend_row(expect.data() + 4, npx, c);
      k->blend_row(got.data() + 4, npx, c);
      EXPECT_EQ(got, expect) << k->name << " a=" << a << " npx=" << npx;
    }
  }
}

TEST(RasterKernels, CopyRowVariantsMatchScalar) {
  util::Rng rng(44);
  for (const kernels::Kernels* k : kernels::available()) {
    for (std::size_t npx = 0; npx <= 67; ++npx) {
      const auto src = random_row(rng, npx);
      auto expect = random_row(rng, npx + 8);
      auto got = expect;
      kernels::scalar().copy_row(expect.data() + 4, src.data(), npx);
      k->copy_row(got.data() + 4, src.data(), npx);
      EXPECT_EQ(got, expect) << k->name << " npx=" << npx;
    }
  }
}

// Long rows exercise the unrolled main loops well past one vector width.
TEST(RasterKernels, LongRowsMatchScalar) {
  util::Rng rng(55);
  const std::size_t npx = 1021;  // prime: every lane phase shows up
  for (const kernels::Kernels* k : kernels::available()) {
    for (int a : {1, 90, 254, 255}) {
      const Color c = random_color(rng, a);
      auto expect = random_row(rng, npx);
      auto got = expect;
      if (a == 255) {
        kernels::scalar().fill_row(expect.data(), npx, c);
        k->fill_row(got.data(), npx, c);
      } else {
        kernels::scalar().blend_row(expect.data(), npx, c);
        k->blend_row(got.data(), npx, c);
      }
      EXPECT_EQ(got, expect) << k->name << " a=" << a;
    }
  }
}

// --- PNG filter kernels (DESIGN.md §4g) --------------------------------

std::vector<std::uint8_t> random_bytes(util::Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return v;
}

// Every variant must produce the scalar reference's bytes for all five
// filter types over ragged row lengths (the min-SAD choice in the encoder
// relies on this being exact).
TEST(RasterKernels, PngFilterRowVariantsMatchScalar) {
  util::Rng rng(66);
  const std::size_t bpp = 3;
  for (const kernels::Kernels* k : kernels::available()) {
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                          std::size_t{3}, std::size_t{4}, std::size_t{15},
                          std::size_t{16}, std::size_t{17}, std::size_t{31},
                          std::size_t{33}, std::size_t{48}, std::size_t{67},
                          std::size_t{3 * 1021}}) {
      const auto cur = random_bytes(rng, n);
      const auto prev = random_bytes(rng, n);
      for (int type = 0; type <= 4; ++type) {
        std::vector<std::uint8_t> expect(n + 8, 0xAB);
        std::vector<std::uint8_t> got(n + 8, 0xAB);
        kernels::scalar().png_filter_row(type, expect.data(), cur.data(),
                                         prev.data(), n, bpp);
        k->png_filter_row(type, got.data(), cur.data(), prev.data(), n, bpp);
        EXPECT_EQ(got, expect)
            << k->name << " type=" << type << " n=" << n;
      }
    }
  }
}

TEST(RasterKernels, PngUnfilterRowVariantsMatchScalar) {
  util::Rng rng(77);
  const std::size_t bpp = 3;
  for (const kernels::Kernels* k : kernels::available()) {
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          std::size_t{16}, std::size_t{17}, std::size_t{33},
                          std::size_t{67}, std::size_t{3 * 1021}}) {
      const auto filtered = random_bytes(rng, n);
      const auto prev = random_bytes(rng, n);
      for (int type = 0; type <= 4; ++type) {
        auto expect = filtered;
        auto got = filtered;
        kernels::scalar().png_unfilter_row(type, expect.data(), prev.data(),
                                           n, bpp);
        k->png_unfilter_row(type, got.data(), prev.data(), n, bpp);
        EXPECT_EQ(got, expect)
            << k->name << " type=" << type << " n=" << n;
      }
    }
  }
}

// filter then unfilter is the identity for every type and variant pair --
// the decoder may dispatch a different kernel than the encoder did.
TEST(RasterKernels, PngFilterUnfilterRoundTrips) {
  util::Rng rng(88);
  const std::size_t bpp = 3;
  const std::size_t n = 3 * 257;
  const auto cur = random_bytes(rng, n);
  const auto prev = random_bytes(rng, n);
  for (const kernels::Kernels* enc : kernels::available()) {
    for (const kernels::Kernels* dec : kernels::available()) {
      for (int type = 0; type <= 4; ++type) {
        std::vector<std::uint8_t> filtered(n);
        enc->png_filter_row(type, filtered.data(), cur.data(), prev.data(),
                            n, bpp);
        dec->png_unfilter_row(type, filtered.data(), prev.data(), n, bpp);
        EXPECT_EQ(filtered, cur)
            << enc->name << " -> " << dec->name << " type=" << type;
      }
    }
  }
}

TEST(RasterKernels, PngSadVariantsMatchScalar) {
  util::Rng rng(99);
  for (const kernels::Kernels* k : kernels::available()) {
    for (std::size_t n = 0; n <= 67; ++n) {
      const auto data = random_bytes(rng, n);
      EXPECT_EQ(k->png_sad(data.data(), n),
                kernels::scalar().png_sad(data.data(), n))
          << k->name << " n=" << n;
    }
    // Long rows and extreme values (0x80 scores 128, 0xFF scores 1).
    std::vector<std::uint8_t> extremes(4099, 0x80);
    for (std::size_t i = 0; i < extremes.size(); i += 3) extremes[i] = 0xFF;
    EXPECT_EQ(k->png_sad(extremes.data(), extremes.size()),
              kernels::scalar().png_sad(extremes.data(), extremes.size()))
        << k->name;
  }
}

TEST(RasterKernels, MinMaxF64VariantsMatchScalar) {
  util::Rng rng(123);
  for (const kernels::Kernels* k : kernels::available()) {
    for (std::size_t n = 1; n <= 67; ++n) {
      std::vector<double> a(n), b(n);
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.uniform(-1e6, 1e6);
        b[i] = a[i] + rng.uniform(0.0, 1e3);
      }
      double lo_k = 0, hi_k = 0, lo_s = 0, hi_s = 0;
      k->minmax_f64(a.data(), b.data(), n, &lo_k, &hi_k);
      kernels::scalar().minmax_f64(a.data(), b.data(), n, &lo_s, &hi_s);
      EXPECT_EQ(lo_k, lo_s) << k->name << " n=" << n;
      EXPECT_EQ(hi_k, hi_s) << k->name << " n=" << n;
    }
    // Extremes at every lane position of a long run.
    std::vector<double> a(4099, 1.0), b(4099, 2.0);
    for (std::size_t pos = 0; pos < a.size(); pos += 257) {
      a[pos] = -1e18;
      b[pos] = 1e18;
      double lo_k = 0, hi_k = 0, lo_s = 0, hi_s = 0;
      k->minmax_f64(a.data(), b.data(), a.size(), &lo_k, &hi_k);
      kernels::scalar().minmax_f64(a.data(), b.data(), a.size(), &lo_s,
                                   &hi_s);
      EXPECT_EQ(lo_k, lo_s) << k->name << " pos=" << pos;
      EXPECT_EQ(hi_k, hi_s) << k->name << " pos=" << pos;
      a[pos] = 1.0;
      b[pos] = 2.0;
    }
  }
}

TEST(RasterKernels, FirstViolationVariantsMatchScalar) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const kernels::Kernels* k : kernels::available()) {
    // Clean columns: no violation at any length.
    for (std::size_t n = 0; n <= 67; ++n) {
      std::vector<double> start(n), end(n);
      for (std::size_t i = 0; i < n; ++i) {
        start[i] = static_cast<double>(i);
        end[i] = static_cast<double>(i) + 0.5;
      }
      EXPECT_EQ(k->first_violation(start.data(), end.data(), n), n)
          << k->name << " n=" << n;
    }
    // A violation planted at every position of a lane-straddling run,
    // both as end<start and as NaN (which the >= comparison must catch).
    const std::size_t n = 67;
    for (std::size_t pos = 0; pos < n; ++pos) {
      std::vector<double> start(n, 1.0), end(n, 2.0);
      end[pos] = 0.5;
      EXPECT_EQ(k->first_violation(start.data(), end.data(), n), pos)
          << k->name << " pos=" << pos;
      end[pos] = nan;
      EXPECT_EQ(k->first_violation(start.data(), end.data(), n), pos)
          << k->name << " nan end pos=" << pos;
      end[pos] = 2.0;
      start[pos] = nan;
      EXPECT_EQ(k->first_violation(start.data(), end.data(), n), pos)
          << k->name << " nan start pos=" << pos;
    }
    // Two violations: the *first* index must win in every variant.
    std::vector<double> start(40, 0.0), end(40, 1.0);
    end[7] = -1.0;
    end[31] = -1.0;
    EXPECT_EQ(k->first_violation(start.data(), end.data(), 40), 7u)
        << k->name;
  }
}

TEST(RasterKernels, HeatAccumVariantsMatchScalar) {
  util::Rng rng(41);
  for (const kernels::Kernels* k : kernels::available()) {
    // Lengths straddling every lane boundary, random increments on random
    // starting contents: element-wise f32 adds must be bit-exact.
    for (std::size_t n = 0; n <= 67; ++n) {
      std::vector<float> a(n), b(n);
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = b[i] = static_cast<float>(rng.uniform(0.0, 1e6));
      }
      const float v = static_cast<float>(rng.uniform(0.0, 16.0));
      kernels::scalar().heat_accum(a.data(), n, v);
      k->heat_accum(b.data(), n, v);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(a[i], b[i]) << k->name << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(RasterKernels, HeatQuantizeVariantsMatchScalar) {
  util::Rng rng(43);
  for (const kernels::Kernels* k : kernels::available()) {
    for (std::size_t n = 0; n <= 67; ++n) {
      std::vector<float> acc(n);
      for (std::size_t i = 0; i < n; ++i) {
        acc[i] = static_cast<float>(rng.uniform(0.0, 300.0));
      }
      // Include the saturating end of the scale and an exact-integer edge.
      if (n > 0) acc[0] = 255.0f;
      if (n > 1) acc[1] = 1e9f;
      for (const float scale : {1.0f, 0.37f, 255.0f / 3.0f}) {
        std::vector<std::uint8_t> a(n, 0xAA), b(n, 0x55);
        kernels::scalar().heat_quantize(acc.data(), n, scale, a.data());
        k->heat_quantize(acc.data(), n, scale, b.data());
        EXPECT_EQ(a, b) << k->name << " n=" << n << " scale=" << scale;
      }
    }
  }
}

TEST(RasterKernels, HeatQuantizeRoundsHalfUpAndSaturates) {
  const float acc[] = {0.0f, 0.49f, 0.5f, 1.49f, 254.49f, 254.5f, 1e9f};
  std::uint8_t out[7] = {};
  kernels::scalar().heat_quantize(acc, 7, 1.0f, out);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 1);
  EXPECT_EQ(out[3], 1);
  EXPECT_EQ(out[4], 254);
  EXPECT_EQ(out[5], 255);
  EXPECT_EQ(out[6], 255);
}

}  // namespace
}  // namespace jedule::render
