#include "jedule/io/csv.hpp"

#include <gtest/gtest.h>

#include "jedule/model/builder.hpp"
#include "jedule/util/error.hpp"

namespace jedule::io {
namespace {

TEST(ReadCsv, BasicDocument) {
  const char* text =
      "!cluster,0,main,8\n"
      "!meta,algorithm,CPA\n"
      "task_id,type,start,end,allocs\n"
      "1,computation,0.0,0.31,0:0-7\n"
      "2,transfer,0.31,0.5,0:0-3;6\n";
  const auto s = read_schedule_csv(text);
  EXPECT_EQ(s.clusters()[0].hosts, 8);
  EXPECT_EQ(s.meta_value("algorithm"), "CPA");
  ASSERT_EQ(s.tasks().size(), 2u);
  const auto& t2 = s.tasks()[1];
  ASSERT_EQ(t2.configurations().size(), 1u);
  EXPECT_EQ(t2.configurations()[0].host_list(),
            (std::vector<int>{0, 1, 2, 3, 6}));
}

TEST(ReadCsv, InfersClusterFromHosts) {
  const char* text =
      "task_id,type,start,end,allocs\n"
      "1,t,0,1,0:5\n";
  const auto s = read_schedule_csv(text);
  EXPECT_EQ(s.clusters()[0].hosts, 6);  // max host 5 -> size 6
}

TEST(ReadCsv, MultipleConfigurations) {
  const char* text =
      "!cluster,0,a,4\n"
      "!cluster,1,b,4\n"
      "task_id,type,start,end,allocs\n"
      "x,transfer,0,1,0:3|1:0-1\n";
  const auto s = read_schedule_csv(text);
  ASSERT_EQ(s.tasks()[0].configurations().size(), 2u);
  EXPECT_EQ(s.tasks()[0].configurations()[1].cluster_id, 1);
  EXPECT_EQ(s.tasks()[0].total_hosts(), 3);
}

TEST(ReadCsv, CommentsAndBlankLinesIgnored) {
  const char* text =
      "# a comment\n"
      "\n"
      "task_id,type,start,end,allocs\n"
      "1,t,0,1,0:0\n";
  EXPECT_EQ(read_schedule_csv(text).tasks().size(), 1u);
}

TEST(ReadCsv, ErrorsAreDiagnosed) {
  EXPECT_THROW(read_schedule_csv(""), ParseError);  // no header
  EXPECT_THROW(read_schedule_csv("task_id,type,start,end,allocs\n"
                                 "1,t,zero,1,0:0\n"),
               ParseError);  // bad time
  EXPECT_THROW(read_schedule_csv("task_id,type,start,end,allocs\n"
                                 "1,t,0,1,5\n"),
               ParseError);  // alloc without cluster prefix
  EXPECT_THROW(read_schedule_csv("task_id,type,start,end,allocs\n"
                                 "1,t,0,1,0:9-3\n"),
               ParseError);  // inverted range
  EXPECT_THROW(read_schedule_csv("!cluster,0,a\n"
                                 "task_id,type,start,end,allocs\n"),
               ParseError);  // short !cluster
  EXPECT_THROW(read_schedule_csv("!bogus,1,2\n"
                                 "task_id,type,start,end,allocs\n"),
               ParseError);  // unknown directive
}

TEST(WriteCsv, RoundTrips) {
  const auto orig = model::ScheduleBuilder()
                        .cluster(0, "main", 8)
                        .cluster(1, "aux", 2)
                        .meta("algorithm", "demo")
                        .task("1", "computation", 0.0, 0.31)
                        .on(0, 0, 8)
                        .task("2", "transfer", 0.31, 0.5)
                        .hosts(0, {0, 1, 2, 3, 6})
                        .on(1, 0, 2)
                        .build();
  const auto back = read_schedule_csv(write_schedule_csv(orig));
  ASSERT_EQ(back.tasks().size(), orig.tasks().size());
  for (std::size_t i = 0; i < orig.tasks().size(); ++i) {
    EXPECT_EQ(back.tasks()[i].id(), orig.tasks()[i].id());
    EXPECT_EQ(back.tasks()[i].configurations(),
              orig.tasks()[i].configurations());
    EXPECT_NEAR(back.tasks()[i].start_time(), orig.tasks()[i].start_time(),
                1e-6);
  }
  EXPECT_EQ(back.meta_value("algorithm"), "demo");
  EXPECT_EQ(back.clusters().size(), 2u);
}

TEST(WriteCsv, RoundTripsDeps) {
  auto orig = model::ScheduleBuilder()
                  .cluster(0, "main", 8)
                  .task("a", "computation", 0.0, 1.0)
                  .on(0, 0, 4)
                  .task("b", "computation", 1.5, 2.0)
                  .on(0, 4, 4)
                  .task("c", "transfer", 2.0, 3.0)
                  .on(0, 0, 2)
                  .build();
  orig.add_dependency(0, 1, 4.5);
  orig.add_dependency(0, 2);
  orig.add_dependency(1, 2, 0.25);
  orig.validate();
  const std::string csv = write_schedule_csv(orig);
  // The optional sixth column only appears when edges exist.
  EXPECT_NE(csv.find("deps"), std::string::npos);
  EXPECT_EQ(read_schedule_csv(csv).dependencies(), orig.dependencies());

  const auto bare = model::ScheduleBuilder()
                        .cluster(0, "main", 8)
                        .task("a", "computation", 0.0, 1.0)
                        .on(0, 0, 4)
                        .build();
  EXPECT_EQ(write_schedule_csv(bare).find("deps"), std::string::npos);
}

}  // namespace
}  // namespace jedule::io
