#include "jedule/interactive/session.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "jedule/io/file.hpp"
#include "jedule/io/jedule_xml.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/util/error.hpp"

namespace jedule::interactive {
namespace {

model::Schedule demo_schedule() {
  return model::ScheduleBuilder()
      .cluster(0, "c0", 4)
      .cluster(1, "c1", 2)
      .task("1", "computation", 0.0, 10.0)
      .on(0, 0, 4)
      .task("2", "transfer", 4.0, 6.0)
      .on(1, 0, 2)
      .build();
}

Session make_session() {
  render::GanttStyle style;
  style.width = 800;
  style.height = 480;
  return Session(demo_schedule(), color::standard_colormap(), style);
}

TEST(Session, ZoomFactorShrinksWindow) {
  Session s = make_session();
  s.zoom(2.0);  // full span 10 -> 5, centered
  ASSERT_TRUE(s.style().time_window.has_value());
  EXPECT_DOUBLE_EQ(s.style().time_window->begin, 2.5);
  EXPECT_DOUBLE_EQ(s.style().time_window->end, 7.5);
  s.zoom(0.5);  // back out to 10 long
  EXPECT_DOUBLE_EQ(s.style().time_window->length(), 10.0);
}

TEST(Session, ZoomKeepsCenterFraction) {
  Session s = make_session();
  s.zoom(2.0, 0.0);  // anchor at the left edge
  EXPECT_DOUBLE_EQ(s.style().time_window->begin, 0.0);
  EXPECT_DOUBLE_EQ(s.style().time_window->end, 5.0);
}

TEST(Session, ZoomRejectsBadFactor) {
  Session s = make_session();
  EXPECT_THROW(s.zoom(0.0), ArgumentError);
  EXPECT_THROW(s.zoom(-1.0), ArgumentError);
}

TEST(Session, PanShiftsWindow) {
  Session s = make_session();
  s.zoom_to_time(2.0, 4.0);
  s.pan(1.5);
  EXPECT_DOUBLE_EQ(s.style().time_window->begin, 3.5);
  EXPECT_DOUBLE_EQ(s.style().time_window->end, 5.5);
  s.pan(-3.5);
  EXPECT_DOUBLE_EQ(s.style().time_window->begin, 0.0);
}

TEST(Session, ZoomToPixelsUsesPanelAxis) {
  Session s = make_session();
  const auto& layout = s.layout();
  const auto& panel = layout.panels.front();
  // Select the middle half of the first panel.
  s.zoom_to_pixels(panel.x + panel.w * 0.25, panel.x + panel.w * 0.75);
  ASSERT_TRUE(s.style().time_window.has_value());
  EXPECT_NEAR(s.style().time_window->begin, 2.5, 0.01);
  EXPECT_NEAR(s.style().time_window->end, 7.5, 0.01);
}

TEST(Session, ResetClearsZoomAndSelection) {
  Session s = make_session();
  s.zoom_to_time(1, 2);
  s.select_clusters({1});
  s.reset_view();
  EXPECT_FALSE(s.style().time_window.has_value());
  EXPECT_TRUE(s.style().cluster_filter.empty());
}

TEST(Session, SelectClustersValidates) {
  Session s = make_session();
  s.select_clusters({1});
  EXPECT_EQ(s.layout().panels.size(), 1u);
  EXPECT_THROW(s.select_clusters({42}), ArgumentError);
}

TEST(Session, InspectFindsTask) {
  Session s = make_session();
  const auto& layout = s.layout();
  // Center of task 1's box.
  const render::TaskBox* box = nullptr;
  for (const auto& b : layout.boxes) {
    if (b.label == "1") box = &b;
  }
  ASSERT_NE(box, nullptr);
  const std::string info = s.inspect(box->x + box->w / 2, box->y + box->h / 2);
  EXPECT_NE(info.find("task 1"), std::string::npos);
  EXPECT_NE(info.find("type=computation"), std::string::npos);
  EXPECT_NE(info.find("start=0.000"), std::string::npos);
  EXPECT_NE(info.find("end=10.000"), std::string::npos);
  EXPECT_NE(info.find("cluster 0 hosts 0-3"), std::string::npos);
}

TEST(Session, InspectMissReportsCoordinates) {
  Session s = make_session();
  EXPECT_NE(s.inspect(1, 1).find("no task at"), std::string::npos);
}

TEST(Session, InfoSummarizes) {
  Session s = make_session();
  const std::string info = s.info();
  EXPECT_NE(info.find("2 cluster(s)"), std::string::npos);
  EXPECT_NE(info.find("2 task(s)"), std::string::npos);
  EXPECT_NE(info.find("makespan=10.000"), std::string::npos);
}

TEST(Session, ExecuteCommandLanguage) {
  Session s = make_session();
  EXPECT_NE(s.execute("info").find("2 task(s)"), std::string::npos);
  EXPECT_NE(s.execute("zoom 2 8").find("window [2"), std::string::npos);
  EXPECT_NE(s.execute("pan 1").find("window [3"), std::string::npos);
  EXPECT_EQ(s.execute("reset"), "view reset");
  EXPECT_EQ(s.execute("clusters 0,1"), "showing 2 cluster(s)");
  EXPECT_EQ(s.execute("clusters all"), "showing all clusters");
  EXPECT_EQ(s.execute("mode aligned"), "mode aligned");
  EXPECT_EQ(s.execute("grayscale on"), "grayscale on");
  EXPECT_EQ(s.execute("grayscale off"), "grayscale off");
  EXPECT_NE(s.execute("help").find("commands:"), std::string::npos);
  EXPECT_EQ(s.execute(""), "");
}

TEST(Session, ExecuteRejectsBadCommands) {
  Session s = make_session();
  EXPECT_THROW(s.execute("frobnicate"), ArgumentError);
  EXPECT_THROW(s.execute("zoom"), ArgumentError);
  EXPECT_THROW(s.execute("zoom abc"), ArgumentError);
  EXPECT_THROW(s.execute("mode sideways"), ArgumentError);
  EXPECT_THROW(s.execute("clusters 0,x"), ArgumentError);
  EXPECT_THROW(s.execute("reread"), Error);  // not file-bound
}

TEST(Session, FileBoundRereadPicksUpChanges) {
  const std::string path = ::testing::TempDir() + "/session_reread.jed";
  io::save_schedule_xml(demo_schedule(), path);
  Session s(path, color::standard_colormap());
  EXPECT_NE(s.execute("info").find("2 task(s)"), std::string::npos);

  // Simulate the paper's development loop: re-run the "simulator", look
  // again.
  auto bigger = demo_schedule();
  model::Task extra("3", "computation", 10.0, 12.0);
  extra.allocate(0, 0, 2);
  bigger.add_task(std::move(extra));
  io::save_schedule_xml(bigger, path);
  EXPECT_EQ(s.execute("reread"), "reloaded " + path);
  EXPECT_NE(s.execute("info").find("3 task(s)"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Session, SnapshotWritesCurrentView) {
  Session s = make_session();
  s.zoom_to_time(4.0, 6.0);
  const std::string path = ::testing::TempDir() + "/snapshot.png";
  EXPECT_NE(s.execute("export " + path).find("wrote"), std::string::npos);
  const std::string bytes = io::read_file(path);
  EXPECT_EQ(bytes.substr(1, 3), "PNG");
  std::remove(path.c_str());
}

TEST(Session, GrayscaleAffectsRender) {
  Session s = make_session();
  const std::string color_path = ::testing::TempDir() + "/color.ppm";
  const std::string gray_path = ::testing::TempDir() + "/gray.ppm";
  s.snapshot(color_path);
  s.set_grayscale(true);
  s.snapshot(gray_path);
  EXPECT_NE(io::read_file(color_path), io::read_file(gray_path));
  // Toggling back restores the original colors exactly.
  s.set_grayscale(false);
  const std::string back_path = ::testing::TempDir() + "/back.ppm";
  s.snapshot(back_path);
  EXPECT_EQ(io::read_file(color_path), io::read_file(back_path));
  std::remove(color_path.c_str());
  std::remove(gray_path.c_str());
  std::remove(back_path.c_str());
}

TEST(Session, CmapCommandSwapsColorsOnTheFly) {
  // "Color maps can also be changed on the fly" (paper conclusions).
  const std::string cmap_path = ::testing::TempDir() + "/session_cmap.xml";
  io::write_file(cmap_path, R"(<cmap name="alt">
    <task id="computation">
      <color type="fg" rgb="000000"/><color type="bg" rgb="00ff00"/>
    </task>
  </cmap>)");
  Session s = make_session();
  const std::string before_path = ::testing::TempDir() + "/cmap_before.ppm";
  const std::string after_path = ::testing::TempDir() + "/cmap_after.ppm";
  s.snapshot(before_path);
  EXPECT_EQ(s.execute("cmap " + cmap_path), "colormap " + cmap_path);
  s.snapshot(after_path);
  EXPECT_NE(io::read_file(before_path), io::read_file(after_path));
  // The new map survives a grayscale round trip (grayscale derives from
  // the *current* map).
  s.execute("grayscale on");
  s.execute("grayscale off");
  const std::string back_path = ::testing::TempDir() + "/cmap_back.ppm";
  s.snapshot(back_path);
  EXPECT_EQ(io::read_file(after_path), io::read_file(back_path));
  std::remove(cmap_path.c_str());
  std::remove(before_path.c_str());
  std::remove(after_path.c_str());
  std::remove(back_path.c_str());
}

TEST(Session, RejectsInvalidScheduleUpFront) {
  model::Schedule bad;
  bad.add_cluster(0, "c", 2);
  model::Task t("1", "t", 0, 1);
  t.allocate(0, 5, 1);  // out of range
  bad.add_task(std::move(t));
  EXPECT_THROW(Session(std::move(bad), color::standard_colormap()),
               ValidationError);
}

}  // namespace
}  // namespace jedule::interactive
