// Unit tests of the arena allocator and string interner backing the
// zero-copy XML parser (and the task-type pool of the model layer).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "jedule/model/schedule.hpp"
#include "jedule/util/interner.hpp"

namespace jedule {
namespace {

TEST(Arena, StoresStableCopies) {
  util::Arena arena;
  std::string source = "hello";
  const auto a = arena.store(source);
  source = "clobbered";
  EXPECT_EQ(a, "hello");
}

TEST(Arena, EmptyStringNeedsNoStorage) {
  util::Arena arena;
  const auto v = arena.store(std::string_view());
  EXPECT_TRUE(v.empty());
}

TEST(Arena, SurvivesManySmallAndLargeAllocations) {
  util::Arena arena;
  std::vector<std::string_view> views;
  std::vector<std::string> expected;
  for (int i = 0; i < 2000; ++i) {
    expected.push_back("s" + std::string(static_cast<std::size_t>(i % 97), 'x') +
                       std::to_string(i));
    views.push_back(arena.store(expected.back()));
  }
  // A single allocation larger than the chunk size gets its own chunk.
  expected.emplace_back(100000, 'y');
  views.push_back(arena.store(expected.back()));
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i], expected[i]) << i;
  }
}

TEST(Arena, ClearRecyclesStorage) {
  util::Arena arena;
  arena.store("first generation");
  arena.clear();
  const auto v = arena.store("second");
  EXPECT_EQ(v, "second");
}

TEST(Interner, DeduplicatesToOneAddress) {
  util::Interner interner;
  const auto a = interner.intern("computation");
  const auto b = interner.intern(std::string("comp") + "utation");
  EXPECT_EQ(a, "computation");
  EXPECT_EQ(a.data(), b.data());  // identical storage, not just equal text
  const auto c = interner.intern("transfer");
  EXPECT_NE(a.data(), c.data());
  EXPECT_EQ(c, "transfer");
}

TEST(TaskTypeInterning, SharesStorageBetweenTasks) {
  model::Task a("a", "computation", 0, 1);
  model::Task b("b", std::string("computation"), 1, 2);
  EXPECT_EQ(a.type(), "computation");
  EXPECT_EQ(&a.type(), &b.type());
  b.set_type("transfer");
  EXPECT_EQ(b.type(), "transfer");
  EXPECT_EQ(a.type(), "computation");
  model::Task untyped;
  EXPECT_EQ(untyped.type(), "");
}

}  // namespace
}  // namespace jedule
