#include "jedule/render/profile.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "jedule/io/file.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/util/error.hpp"
#include "jedule/xml/xml.hpp"

namespace jedule::render {
namespace {

model::Schedule step_schedule() {
  // 4 hosts busy in [0,5), 2 hosts in [5,10).
  return model::ScheduleBuilder()
      .cluster(0, "c", 4)
      .task("a", "computation", 0, 5)
      .on(0, 0, 4)
      .task("b", "computation", 5, 10)
      .on(0, 0, 2)
      .build();
}

int count_pixels(const Framebuffer& fb, color::Color c) {
  int n = 0;
  for (int y = 0; y < fb.height(); ++y) {
    for (int x = 0; x < fb.width(); ++x) {
      if (fb.pixel(x, y) == c) ++n;
    }
  }
  return n;
}

TEST(Profile, StepFunctionAreaMatchesUtilization) {
  ProfileStyle style;
  style.width = 400;
  style.height = 200;
  const Framebuffer fb = render_profile(step_schedule(), style);
  // Busy fraction over the run: (4*5 + 2*5) / (4*10) = 0.75 of the plot
  // area should be filled.
  const int filled = count_pixels(fb, style.fill);
  const double plot_area = (400 - 52 - 14) * (200 - 22 - 30);
  EXPECT_NEAR(filled / plot_area, 0.75, 0.05);
}

TEST(Profile, TypeFilterDropsWaitingTime) {
  auto s = model::ScheduleBuilder()
               .cluster(0, "c", 2)
               .task("w", "waiting", 0, 10)
               .on(0, 0, 2)
               .task("e", "computation", 0, 5)
               .on(0, 0, 1)
               .build();
  ProfileStyle all;
  all.width = 300;
  all.height = 150;
  ProfileStyle compute_only = all;
  compute_only.type_filter = {"computation"};
  const int filled_all = count_pixels(render_profile(s, all), all.fill);
  const int filled_compute =
      count_pixels(render_profile(s, compute_only), all.fill);
  EXPECT_LT(filled_compute, filled_all / 2);
}

TEST(Profile, EmptyScheduleStillDraws) {
  model::Schedule s;
  s.add_cluster(0, "c", 4);
  EXPECT_NO_THROW(render_profile(s));
}

TEST(Profile, Deterministic) {
  const auto s = step_schedule();
  EXPECT_TRUE(render_profile(s) == render_profile(s));
}

TEST(Profile, RejectsTinyCanvas) {
  ProfileStyle style;
  style.width = 10;
  EXPECT_THROW(render_profile(step_schedule(), style), ArgumentError);
}

TEST(Profile, ExportsAllSupportedFormats) {
  const auto s = step_schedule();
  ProfileStyle style;
  for (const char* ext : {"png", "ppm", "svg"}) {
    const std::string path =
        ::testing::TempDir() + "/profile_test." + ext;
    export_profile(s, style, path);
    const std::string bytes = io::read_file(path);
    EXPECT_GT(bytes.size(), 100u) << ext;
    std::remove(path.c_str());
  }
  EXPECT_THROW(export_profile(s, style, "/tmp/profile.pdf"), ArgumentError);
}

TEST(Profile, SvgIsWellFormed) {
  const std::string path = ::testing::TempDir() + "/profile_wf.svg";
  export_profile(step_schedule(), ProfileStyle{}, path);
  EXPECT_NO_THROW(xml::parse(io::read_file(path)));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jedule::render
