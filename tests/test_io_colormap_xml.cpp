#include "jedule/io/colormap_xml.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "jedule/util/error.hpp"

namespace jedule::io {
namespace {

// Paper Fig. 2, verbatim structure.
const char kFig2[] = R"(<cmap name="standard_map">
  <conf name="min_fontsize_label" value="11"/>
  <conf name="fontsize_label" value="13"/>
  <conf name="font_size_axes" value="12"/>
  <task id="computation">
    <color type="fg" rgb="FFFFFF"/>
    <color type="bg" rgb="0000FF"/>
  </task>
  <task id="transfer">
    <color type="fg" rgb="000000"/>
    <color type="bg" rgb="f10000"/>
  </task>
  <composite>
    <task id="computation"/>
    <task id="transfer"/>
    <color type="fg" rgb="FFFFFF"/>
    <color type="bg" rgb="ff6200"/>
  </composite>
</cmap>
)";

TEST(ReadColormap, ParsesPaperFigure2) {
  const auto map = read_colormap_xml(kFig2);
  EXPECT_EQ(map.name(), "standard_map");
  EXPECT_EQ(map.style_for("computation").background,
            color::parse_color("0000FF"));
  EXPECT_EQ(map.style_for("transfer").foreground, color::kBlack);
  EXPECT_EQ(map.config_value("font_size_axes"), "12");
  ASSERT_EQ(map.composite_rules().size(), 1u);
  EXPECT_EQ(map.composite_rules()[0].members,
            (std::set<std::string>{"computation", "transfer"}));
  EXPECT_EQ(map.composite_style({"computation", "transfer"}).background,
            color::parse_color("ff6200"));
}

TEST(WriteColormap, RoundTrips) {
  const auto orig = read_colormap_xml(kFig2);
  const auto back = read_colormap_xml(write_colormap_xml(orig));
  EXPECT_EQ(back.name(), orig.name());
  EXPECT_EQ(back.config(), orig.config());
  ASSERT_EQ(back.styles().size(), orig.styles().size());
  for (std::size_t i = 0; i < orig.styles().size(); ++i) {
    EXPECT_EQ(back.styles()[i], orig.styles()[i]);
  }
  ASSERT_EQ(back.composite_rules().size(), orig.composite_rules().size());
  EXPECT_EQ(back.composite_rules()[0].members,
            orig.composite_rules()[0].members);
  EXPECT_EQ(back.composite_rules()[0].style,
            orig.composite_rules()[0].style);
}

TEST(ReadColormap, RejectsBadDocuments) {
  EXPECT_THROW(read_colormap_xml("<palette/>"), ParseError);  // wrong root
  EXPECT_THROW(
      read_colormap_xml("<cmap><task id='x'><color type='mid' rgb='000000'/>"
                        "</task></cmap>"),
      ParseError);  // bad color type
  EXPECT_THROW(read_colormap_xml("<cmap><composite><color type='fg' "
                                 "rgb='000000'/></composite></cmap>"),
               ParseError);  // composite without members
  EXPECT_THROW(read_colormap_xml("<cmap><what/></cmap>"), ParseError);
  EXPECT_THROW(
      read_colormap_xml("<cmap><task id='x'><color type='fg' rgb='XYZ'/>"
                        "</task></cmap>"),
      ParseError);  // bad hex
}

TEST(SaveLoadColormap, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cmap_rt.xml";
  save_colormap_xml(read_colormap_xml(kFig2), path);
  const auto map = load_colormap_xml(path);
  EXPECT_EQ(map.style_for("transfer").background,
            color::parse_color("f10000"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jedule::io
