#include "jedule/render/ascii.hpp"

#include <gtest/gtest.h>

#include "jedule/interactive/session.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::render {
namespace {

model::Schedule demo() {
  return model::ScheduleBuilder()
      .cluster(0, "c0", 4)
      .task("1", "computation", 0.0, 6.0)
      .on(0, 0, 4)
      .task("2", "transfer", 4.0, 10.0)
      .on(0, 1, 2)
      .build();
}

TEST(Ascii, OneLinePerHostWithLabels) {
  const std::string text = render_ascii(demo());
  EXPECT_NE(text.find("c0 (4 hosts)"), std::string::npos);
  EXPECT_NE(text.find("   0 |"), std::string::npos);
  EXPECT_NE(text.find("   3 |"), std::string::npos);
  EXPECT_EQ(text.find("   4 |"), std::string::npos);
}

TEST(Ascii, CellsReflectTasksIdleAndOverlap) {
  AsciiOptions options;
  options.width = 20;  // 0.5 s per cell over [0, 10)
  const std::string text = render_ascii(demo(), options);
  const auto lines = util::split(text, '\n');
  // Row of host 0: computation 'c' for [0,6), idle after.
  const std::string& row0 = lines[1];
  EXPECT_NE(row0.find("cccc"), std::string::npos);
  EXPECT_NE(row0.find("...."), std::string::npos);
  EXPECT_EQ(row0.find("t"), std::string::npos);
  // Row of host 1: overlap [4,6) shows '*', then transfer 't'.
  const std::string& row1 = lines[2];
  EXPECT_NE(row1.find("*"), std::string::npos);
  EXPECT_NE(row1.find("t"), std::string::npos);
}

TEST(Ascii, LegendListsTypes) {
  const std::string text = render_ascii(demo());
  EXPECT_NE(text.find("legend:"), std::string::npos);
  EXPECT_NE(text.find("c=computation"), std::string::npos);
  EXPECT_NE(text.find("t=transfer"), std::string::npos);
  AsciiOptions no_legend;
  no_legend.show_legend = false;
  EXPECT_EQ(render_ascii(demo(), no_legend).find("legend:"),
            std::string::npos);
}

TEST(Ascii, LegendLettersAreUniquePerType) {
  auto s = model::ScheduleBuilder()
               .cluster(0, "c", 2)
               .task("1", "compute", 0, 1)
               .on(0, 0, 1)
               .task("2", "copy", 0, 1)  // same initial 'c'
               .on(0, 1, 1)
               .build();
  const std::string text = render_ascii(s);
  EXPECT_NE(text.find("=compute"), std::string::npos);
  EXPECT_NE(text.find("=copy"), std::string::npos);
  // Two distinct letters before the '=' signs.
  const auto a = text.find("=compute");
  const auto b = text.find("=copy");
  EXPECT_NE(text[a - 1], text[b - 1]);
}

TEST(Ascii, TallClustersGroupHosts) {
  model::ScheduleBuilder builder;
  builder.cluster(0, "big", 64);
  builder.task("1", "job", 0, 1).on(0, 0, 64);
  AsciiOptions options;
  options.max_rows_per_cluster = 8;
  const std::string text = render_ascii(builder.build(), options);
  EXPECT_NE(text.find("8 hosts/row"), std::string::npos);
  EXPECT_NE(text.find("   0 |"), std::string::npos);
  EXPECT_NE(text.find("  56 |"), std::string::npos);
}

TEST(Ascii, TimeWindowZooms) {
  AsciiOptions options;
  options.width = 20;
  options.time_window = model::TimeRange{6.0, 10.0};  // transfer only
  const std::string text = render_ascii(demo(), options);
  EXPECT_EQ(text.find("c"), text.find("c0"));  // no computation cells
  EXPECT_NE(text.find("tttt"), std::string::npos);
}

TEST(Ascii, ClusterFilter) {
  auto s = model::ScheduleBuilder()
               .cluster(0, "zero", 2)
               .cluster(1, "one", 2)
               .task("1", "t", 0, 1)
               .on(0, 0, 2)
               .task("2", "t", 0, 1)
               .on(1, 0, 2)
               .build();
  AsciiOptions options;
  options.cluster_filter = {1};
  const std::string text = render_ascii(s, options);
  EXPECT_EQ(text.find("zero"), std::string::npos);
  EXPECT_NE(text.find("one"), std::string::npos);
}

TEST(Ascii, Validation) {
  AsciiOptions bad;
  bad.width = 3;
  EXPECT_THROW(render_ascii(demo(), bad), ArgumentError);
  bad.width = 40;
  bad.max_rows_per_cluster = 0;
  EXPECT_THROW(render_ascii(demo(), bad), ArgumentError);
}

TEST(Ascii, SessionCommandRendersCurrentView) {
  interactive::Session session(demo(), color::standard_colormap());
  const std::string full = session.execute("ascii");
  EXPECT_NE(full.find("c0 (4 hosts)"), std::string::npos);
  EXPECT_NE(full.find("legend:"), std::string::npos);
  session.execute("zoom 6 10");
  const std::string zoomed = session.execute("ascii");
  EXPECT_NE(zoomed, full);
  EXPECT_NE(zoomed.find("t"), std::string::npos);
}

}  // namespace
}  // namespace jedule::render
