#include "jedule/io/registry.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "jedule/io/csv.hpp"
#include "jedule/io/file.hpp"
#include "jedule/io/jedule_xml.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/util/error.hpp"
#include "jedule/workload/swf_parser.hpp"

namespace jedule::io {
namespace {

std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  write_file(path, content);
  return path;
}

model::Schedule sample_schedule() {
  return model::ScheduleBuilder()
      .cluster(0, "c", 4)
      .task("1", "t", 0, 1)
      .on(0, 0, 4)
      .build();
}

TEST(Registry, BuiltInsPresent) {
  const auto names = ParserRegistry::instance().parser_names();
  EXPECT_NE(ParserRegistry::instance().find("jedule-xml"), nullptr);
  EXPECT_NE(ParserRegistry::instance().find("csv"), nullptr);
  EXPECT_GE(names.size(), 2u);
}

TEST(Registry, SniffsXmlByContentAndExtension) {
  const auto path =
      write_temp("sniff1.jed", write_schedule_xml(sample_schedule()));
  EXPECT_EQ(load_schedule(path).tasks().size(), 1u);
  // Same content with an unknown extension: content sniffing kicks in.
  const auto odd =
      write_temp("sniff1.dat", write_schedule_xml(sample_schedule()));
  EXPECT_EQ(load_schedule(odd).tasks().size(), 1u);
  std::remove(path.c_str());
  std::remove(odd.c_str());
}

TEST(Registry, SniffsCsv) {
  const auto path =
      write_temp("sniff2.csv", write_schedule_csv(sample_schedule()));
  EXPECT_EQ(load_schedule(path).tasks().size(), 1u);
  std::remove(path.c_str());
}

TEST(Registry, ExplicitFormatOverridesSniffing) {
  const auto path =
      write_temp("odd.xml.txt", write_schedule_csv(sample_schedule()));
  EXPECT_EQ(load_schedule(path, "csv").tasks().size(), 1u);
  std::remove(path.c_str());
}

TEST(Registry, UnknownFormatOrFileRejected) {
  EXPECT_THROW(load_schedule("/no/such/file.xml"), IoError);
  const auto path = write_temp("unknown.bin", "\x01\x02\x03garbage");
  EXPECT_THROW(load_schedule(path), ParseError);
  EXPECT_THROW(load_schedule(path, "not-a-format"), ParseError);
  std::remove(path.c_str());
}

TEST(Registry, UnsupportedInputErrorsNameThePathAndFormats) {
  // The structured error carries the offending path plus the supported
  // format list, so the CLI message and the HTTP 415 body are actionable.
  const auto path = write_temp("mystery.bin", "\x01\x02\x03garbage");
  try {
    load_schedule(path);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("supported formats:"), std::string::npos) << what;
    EXPECT_NE(what.find("jedule-xml"), std::string::npos) << what;
    EXPECT_NE(what.find("csv"), std::string::npos) << what;
  }
  try {
    load_schedule(path, "not-a-format");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("not-a-format"), std::string::npos) << what;
    EXPECT_NE(what.find("supported formats:"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(Registry, ParseScheduleSniffsGzipInMemory) {
  // The serve upload path: bytes, not a file; gzip detected by magic.
  const std::string xml = write_schedule_xml(sample_schedule());
  EXPECT_EQ(parse_schedule(xml, "upload.jed").tasks().size(), 1u);
  EXPECT_EQ(parse_schedule(xml).tasks().size(), 1u);  // content sniff only
}

TEST(Registry, UserParserExtensionPoint) {
  // A custom one-line format, registered exactly like the paper describes
  // third-party parsers plugging in.
  class OneLiner final : public ScheduleParser {
   public:
    std::string name() const override { return "one-liner"; }
    bool sniff(const std::string& path, const std::string&) const override {
      return path.ends_with(".one");
    }
    model::Schedule parse(std::string_view content) const override {
      model::Schedule s;
      s.add_cluster(0, "c", 1);
      model::Task t(std::string(content.substr(0, content.find('\n'))),
                    "custom", 0, 1);
      t.allocate(0, 0, 1);
      s.add_task(std::move(t));
      s.validate();
      return s;
    }
  };
  ParserRegistry::instance().register_parser(std::make_unique<OneLiner>());
  const auto path = write_temp("thing.one", "my-task\n");
  const auto s = load_schedule(path);
  EXPECT_EQ(s.tasks()[0].id(), "my-task");
  EXPECT_EQ(s.tasks()[0].type(), "custom");
  std::remove(path.c_str());
}

TEST(Registry, SwfParserRegistersAndLoads) {
  workload::register_swf_parser();
  workload::register_swf_parser();  // idempotent
  ASSERT_NE(ParserRegistry::instance().find("swf"), nullptr);
  const auto path = write_temp(
      "mini.swf",
      "; MaxProcs: 8\n"
      "1 0 0 100 4 -1 -1 4 -1 -1 1 10 1 1 1 1 -1 -1\n"
      "2 10 0 50 2 -1 -1 2 -1 -1 1 11 1 1 1 1 -1 -1\n");
  const auto s = load_schedule(path);
  EXPECT_EQ(s.tasks().size(), 2u);
  EXPECT_EQ(s.total_hosts(), 8);
  EXPECT_EQ(s.tasks()[0].property("user"), "10");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jedule::io
