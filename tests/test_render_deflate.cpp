#include "jedule/render/deflate.hpp"

#include <gtest/gtest.h>

#include "jedule/util/inflate.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::render {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Adler32, KnownVectors) {
  // Reference values from RFC 1950 implementations.
  EXPECT_EQ(adler32(nullptr, 0), 1u);
  const auto abc = bytes_of("abc");
  EXPECT_EQ(adler32(abc.data(), abc.size()), 0x024d0127u);
  const auto msg = bytes_of("Wikipedia");
  EXPECT_EQ(adler32(msg.data(), msg.size()), 0x11E60398u);
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32(nullptr, 0), 0u);
  const auto check = bytes_of("123456789");
  EXPECT_EQ(crc32(check.data(), check.size()), 0xCBF43926u);
  const auto abc = bytes_of("abc");
  EXPECT_EQ(crc32(abc.data(), abc.size()), 0x352441C2u);
}

TEST(Crc32, SeedChains) {
  const auto all = bytes_of("hello world");
  const auto first = bytes_of("hello ");
  const auto second = bytes_of("world");
  const auto chained = crc32(second.data(), second.size(),
                             crc32(first.data(), first.size()));
  EXPECT_EQ(chained, crc32(all.data(), all.size()));
}

void roundtrip(const std::vector<std::uint8_t>& data) {
  {
    const auto packed = deflate_compress(data.data(), data.size());
    const auto back = util::inflate_decompress(packed.data(), packed.size());
    EXPECT_EQ(back, data);
  }
  {
    const auto packed = deflate_store(data.data(), data.size());
    const auto back = util::inflate_decompress(packed.data(), packed.size());
    EXPECT_EQ(back, data);
  }
}

TEST(Deflate, EmptyInput) { roundtrip({}); }

TEST(Deflate, SingleByte) { roundtrip({42}); }

TEST(Deflate, TextRoundTrip) {
  roundtrip(bytes_of("the quick brown fox jumps over the lazy dog"));
}

TEST(Deflate, HighlyRepetitiveCompresses) {
  std::vector<std::uint8_t> data(100000, 7);
  const auto packed = deflate_compress(data.data(), data.size());
  roundtrip(data);
  EXPECT_LT(packed.size(), data.size() / 50);  // runs collapse via LZ77
}

TEST(Deflate, PeriodicPattern) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 50000; ++i) {
    data.push_back(static_cast<std::uint8_t>(i % 7));
  }
  roundtrip(data);
}

TEST(Deflate, RandomDataSurvives) {
  util::Rng rng(99);
  std::vector<std::uint8_t> data(70000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng() & 0xFF);
  roundtrip(data);
}

TEST(Deflate, AllByteValues) {
  std::vector<std::uint8_t> data;
  for (int rep = 0; rep < 4; ++rep) {
    for (int b = 0; b < 256; ++b) {
      data.push_back(static_cast<std::uint8_t>(b));
    }
  }
  roundtrip(data);
}

TEST(DeflateStore, MultiBlockBoundary) {
  // > 65535 bytes forces several stored blocks.
  std::vector<std::uint8_t> data(70000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  roundtrip(data);
}

TEST(Zlib, RoundTripBothModes) {
  const auto data = bytes_of("zlib framing test, zlib framing test");
  for (bool compress : {true, false}) {
    const auto z = zlib_compress(data.data(), data.size(), compress);
    EXPECT_EQ(z[0], 0x78);
    EXPECT_EQ(((static_cast<unsigned>(z[0]) << 8) | z[1]) % 31, 0u);
    const auto back = util::zlib_decompress(z.data(), z.size());
    EXPECT_EQ(back, data);
  }
}

TEST(Zlib, DetectsCorruption) {
  const auto data = bytes_of("payload payload payload");
  auto z = zlib_compress(data.data(), data.size());
  z[z.size() - 1] ^= 0xFF;  // break the Adler-32
  EXPECT_THROW(util::zlib_decompress(z.data(), z.size()), ParseError);
}

TEST(Zlib, RejectsTruncation) {
  const auto data = bytes_of("payload");
  const auto z = zlib_compress(data.data(), data.size());
  EXPECT_THROW(util::zlib_decompress(z.data(), 3), ParseError);
}

TEST(Inflate, RejectsGarbage) {
  const std::vector<std::uint8_t> junk = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_THROW(util::inflate_decompress(junk.data(), junk.size()), ParseError);
}

// Round trip across a size sweep (property-style).
class DeflateSizes : public ::testing::TestWithParam<int> {};

TEST_P(DeflateSizes, RoundTrips) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<std::uint8_t> data(static_cast<std::size_t>(GetParam()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Mixture of runs and noise, like filtered scanlines.
    data[i] = rng.bernoulli(0.7) ? 0 : static_cast<std::uint8_t>(rng() & 0xFF);
  }
  roundtrip(data);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeflateSizes,
                         ::testing::Values(1, 2, 3, 255, 256, 257, 4096,
                                           65535, 65536, 65537, 200000));

}  // namespace
}  // namespace jedule::render
