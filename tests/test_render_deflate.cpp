#include "jedule/render/deflate.hpp"

#include <gtest/gtest.h>

#include "jedule/model/builder.hpp"
#include "jedule/render/export.hpp"
#include "jedule/render/png.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/inflate.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::render {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Adler32, KnownVectors) {
  // Reference values from RFC 1950 implementations.
  EXPECT_EQ(adler32(nullptr, 0), 1u);
  const auto abc = bytes_of("abc");
  EXPECT_EQ(adler32(abc.data(), abc.size()), 0x024d0127u);
  const auto msg = bytes_of("Wikipedia");
  EXPECT_EQ(adler32(msg.data(), msg.size()), 0x11E60398u);
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32(nullptr, 0), 0u);
  const auto check = bytes_of("123456789");
  EXPECT_EQ(crc32(check.data(), check.size()), 0xCBF43926u);
  const auto abc = bytes_of("abc");
  EXPECT_EQ(crc32(abc.data(), abc.size()), 0x352441C2u);
}

TEST(Crc32, SeedChains) {
  const auto all = bytes_of("hello world");
  const auto first = bytes_of("hello ");
  const auto second = bytes_of("world");
  const auto chained = crc32(second.data(), second.size(),
                             crc32(first.data(), first.size()));
  EXPECT_EQ(chained, crc32(all.data(), all.size()));
}

void roundtrip(const std::vector<std::uint8_t>& data) {
  for (const DeflateStrategy strategy :
       {DeflateStrategy::stored, DeflateStrategy::fixed,
        DeflateStrategy::dynamic}) {
    const auto packed =
        deflate_compress(data.data(), data.size(), 1, strategy);
    const auto back = util::inflate_decompress(packed.data(), packed.size());
    EXPECT_EQ(back, data);
  }
}

TEST(Deflate, EmptyInput) { roundtrip({}); }

TEST(Deflate, SingleByte) { roundtrip({42}); }

TEST(Deflate, TextRoundTrip) {
  roundtrip(bytes_of("the quick brown fox jumps over the lazy dog"));
}

TEST(Deflate, HighlyRepetitiveCompresses) {
  std::vector<std::uint8_t> data(100000, 7);
  const auto packed = deflate_compress(data.data(), data.size());
  roundtrip(data);
  EXPECT_LT(packed.size(), data.size() / 50);  // runs collapse via LZ77
}

TEST(Deflate, DynamicBeatsFixedOnSkewedHistograms) {
  // Long runs of a few byte values: the per-chunk canonical code assigns
  // them short codes while the fixed code spends 8 bits per literal.
  util::Rng rng(7);
  std::vector<std::uint8_t> data;
  data.reserve(120000);
  while (data.size() < 120000) {
    const auto v = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
    const int run = rng.uniform_int(1, 9);
    for (int i = 0; i < run && !(rng() & 1); ++i) data.push_back(v);
    data.push_back(static_cast<std::uint8_t>(rng() & 0xFF));
  }
  const auto fixed =
      deflate_compress(data.data(), data.size(), 1, DeflateStrategy::fixed);
  const auto dynamic = deflate_compress(data.data(), data.size(), 1,
                                        DeflateStrategy::dynamic);
  EXPECT_LT(dynamic.size(), fixed.size());
  EXPECT_EQ(util::inflate_decompress(dynamic.data(), dynamic.size()), data);
}

TEST(Gzip, RoundTripAndDeterministicFraming) {
  const auto data = bytes_of("gzip framing test, gzip framing test");
  const auto z = gzip_compress(data.data(), data.size());
  ASSERT_GE(z.size(), 18u);
  EXPECT_EQ(z[0], 0x1F);
  EXPECT_EQ(z[1], 0x8B);
  EXPECT_EQ(z[2], 0x08);          // deflate
  EXPECT_EQ(z[3], 0x00);          // no flags
  for (int i = 4; i <= 8; ++i) EXPECT_EQ(z[i], 0x00);  // MTIME, XFL
  const auto back = util::gzip_decompress(z.data(), z.size());
  EXPECT_EQ(back, data);
  // Byte-identical regardless of thread count (same chunk grid).
  EXPECT_EQ(gzip_compress(data.data(), data.size(),
                          DeflateStrategy::dynamic, 8),
            z);
}

TEST(Deflate, PeriodicPattern) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 50000; ++i) {
    data.push_back(static_cast<std::uint8_t>(i % 7));
  }
  roundtrip(data);
}

TEST(Deflate, RandomDataSurvives) {
  util::Rng rng(99);
  std::vector<std::uint8_t> data(70000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng() & 0xFF);
  roundtrip(data);
}

TEST(Deflate, AllByteValues) {
  std::vector<std::uint8_t> data;
  for (int rep = 0; rep < 4; ++rep) {
    for (int b = 0; b < 256; ++b) {
      data.push_back(static_cast<std::uint8_t>(b));
    }
  }
  roundtrip(data);
}

TEST(DeflateStore, MultiBlockBoundary) {
  // > 65535 bytes forces several stored blocks.
  std::vector<std::uint8_t> data(70000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  roundtrip(data);
}

TEST(Zlib, RoundTripAllStrategies) {
  const auto data = bytes_of("zlib framing test, zlib framing test");
  for (const DeflateStrategy strategy :
       {DeflateStrategy::stored, DeflateStrategy::fixed,
        DeflateStrategy::dynamic}) {
    const auto z = zlib_compress(data.data(), data.size(), strategy);
    EXPECT_EQ(z[0], 0x78);
    EXPECT_EQ(((static_cast<unsigned>(z[0]) << 8) | z[1]) % 31, 0u);
    const auto back = util::zlib_decompress(z.data(), z.size());
    EXPECT_EQ(back, data);
  }
}

TEST(Zlib, DetectsCorruption) {
  const auto data = bytes_of("payload payload payload");
  auto z = zlib_compress(data.data(), data.size());
  z[z.size() - 1] ^= 0xFF;  // break the Adler-32
  EXPECT_THROW(util::zlib_decompress(z.data(), z.size()), ParseError);
}

TEST(Zlib, RejectsTruncation) {
  const auto data = bytes_of("payload");
  const auto z = zlib_compress(data.data(), data.size());
  EXPECT_THROW(util::zlib_decompress(z.data(), 3), ParseError);
}

TEST(Inflate, RejectsGarbage) {
  const std::vector<std::uint8_t> junk = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_THROW(util::inflate_decompress(junk.data(), junk.size()), ParseError);
}

// Round trip across a size sweep (property-style).
class DeflateSizes : public ::testing::TestWithParam<int> {};

TEST_P(DeflateSizes, RoundTrips) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<std::uint8_t> data(static_cast<std::size_t>(GetParam()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Mixture of runs and noise, like filtered scanlines.
    data[i] = rng.bernoulli(0.7) ? 0 : static_cast<std::uint8_t>(rng() & 0xFF);
  }
  roundtrip(data);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeflateSizes,
                         ::testing::Values(1, 2, 3, 255, 256, 257, 4096,
                                           65535, 65536, 65537, 200000));

// --- Differential: dynamic deflate across thread counts ----------------
// deflate(dynamic, T) must be byte-identical for T in {1, 2, 8} and round
// trip through util::inflate, over random, run-heavy and real-render
// inputs (the three shapes the exporters feed it).

std::vector<std::uint8_t> random_input() {
  util::Rng rng(2024);
  std::vector<std::uint8_t> data(600000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng() & 0xFF);
  return data;
}

std::vector<std::uint8_t> run_heavy_input() {
  util::Rng rng(2025);
  std::vector<std::uint8_t> data;
  data.reserve(700000);
  while (data.size() < 700000) {
    const auto v = static_cast<std::uint8_t>(rng() & 0x0F);
    const int run = rng.uniform_int(3, 900);
    data.insert(data.end(), static_cast<std::size_t>(run), v);
  }
  return data;
}

std::vector<std::uint8_t> real_render_input() {
  auto builder = model::ScheduleBuilder().cluster(0, "c0", 32);
  util::Rng rng(2026);
  for (int i = 0; i < 400; ++i) {
    const double start = rng.uniform_int(0, 900) / 10.0;
    const int first = rng.uniform_int(0, 24);
    builder.task(std::to_string(i), i % 2 ? "computation" : "transfer",
                 start, start + rng.uniform_int(5, 200) / 10.0)
        .on(0, first, rng.uniform_int(1, 8));
  }
  RenderOptions options;
  options.style.width = 800;
  options.style.height = 500;
  options.threads = 1;
  return filter_scanlines(render_raster(builder.build(), options), 1);
}

class DeflateDifferential
    : public ::testing::TestWithParam<const char*> {};

TEST_P(DeflateDifferential, ThreadCountInvariantAndRoundTrips) {
  std::vector<std::uint8_t> data;
  const std::string_view kind = GetParam();
  if (kind == "random") data = random_input();
  else if (kind == "run-heavy") data = run_heavy_input();
  else data = real_render_input();
  ASSERT_GT(data.size(), std::size_t{1} << 18)  // spans several chunks
      << kind;

  const auto serial = deflate_compress(data.data(), data.size(), 1,
                                       DeflateStrategy::dynamic);
  EXPECT_EQ(util::inflate_decompress(serial.data(), serial.size()), data)
      << kind;
  for (const int threads : {2, 8}) {
    EXPECT_EQ(deflate_compress(data.data(), data.size(), threads,
                               DeflateStrategy::dynamic),
              serial)
        << kind << " threads=" << threads;
  }
  const auto zserial = zlib_compress(data.data(), data.size(),
                                     DeflateStrategy::dynamic, 1);
  EXPECT_EQ(util::zlib_decompress(zserial.data(), zserial.size()), data)
      << kind;
  for (const int threads : {2, 8}) {
    EXPECT_EQ(zlib_compress(data.data(), data.size(),
                            DeflateStrategy::dynamic, threads),
              zserial)
        << kind << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Inputs, DeflateDifferential,
                         ::testing::Values("random", "run-heavy",
                                           "real-render"));

}  // namespace
}  // namespace jedule::render
