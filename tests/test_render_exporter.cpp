// Exporter registry: name/extension lookup, dispatch from export_schedule /
// render_to_bytes, and user registration semantics.

#include "jedule/render/exporter.hpp"

#include <gtest/gtest.h>

#include "jedule/io/file.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/util/error.hpp"

namespace jedule::render {
namespace {

model::Schedule demo_schedule() {
  return model::ScheduleBuilder()
      .cluster(0, "c0", 8)
      .task("1", "computation", 0.0, 0.31)
      .on(0, 0, 8)
      .task("2", "transfer", 0.25, 0.50)
      .on(0, 2, 4)
      .build();
}

RenderOptions small_options() {
  RenderOptions options;
  options.style.width = 320;
  options.style.height = 200;
  options.threads = 1;
  return options;
}

TEST(ExporterRegistry, BuiltinsAreRegistered) {
  auto& registry = ExporterRegistry::instance();
  for (const char* name : {"png", "ppm", "svg", "svgz", "pdf", "ascii"}) {
    const Exporter* e = registry.find(name);
    ASSERT_NE(e, nullptr) << name;
    EXPECT_EQ(e->name(), name);
    EXPECT_FALSE(e->extensions().empty());
    EXPECT_FALSE(e->description().empty());
  }
  EXPECT_EQ(registry.find("jpeg"), nullptr);
}

TEST(ExporterRegistry, FindForPathIsCaseInsensitive) {
  auto& registry = ExporterRegistry::instance();
  const Exporter* png = registry.find_for_path("chart.PNG");
  ASSERT_NE(png, nullptr);
  EXPECT_EQ(png->name(), "png");
  const Exporter* svg = registry.find_for_path("a/b/chart.Svg");
  ASSERT_NE(svg, nullptr);
  EXPECT_EQ(svg->name(), "svg");
  const Exporter* ascii = registry.find_for_path("out.TXT");
  ASSERT_NE(ascii, nullptr);
  EXPECT_EQ(ascii->name(), "ascii");
  const Exporter* svgz = registry.find_for_path("chart.svgz");
  ASSERT_NE(svgz, nullptr);
  EXPECT_EQ(svgz->name(), "svgz");
  const Exporter* svg_gz = registry.find_for_path("chart.SVG.GZ");
  ASSERT_NE(svg_gz, nullptr);
  EXPECT_EQ(svg_gz->name(), "svgz");
  EXPECT_EQ(registry.find_for_path("chart.jpeg"), nullptr);
  EXPECT_EQ(registry.find_for_path("no_extension"), nullptr);
}

TEST(ExporterRegistry, ExtensionSummaryListsEverything) {
  const std::string summary = ExporterRegistry::instance().extension_summary();
  for (const char* ext : {".png", ".ppm", ".svg", ".pdf", ".txt"}) {
    EXPECT_NE(summary.find(ext), std::string::npos) << ext;
  }
}

TEST(ExporterRegistry, RenderToBytesForEveryBuiltin) {
  const auto schedule = demo_schedule();
  const auto options = small_options();
  for (const char* name : {"png", "ppm", "svg", "svgz", "pdf", "ascii"}) {
    const std::string bytes = render_to_bytes(schedule, options, name);
    EXPECT_GT(bytes.size(), 50u) << name;
  }
  EXPECT_THROW(render_to_bytes(schedule, options, "jpeg"), ArgumentError);
}

TEST(ExporterRegistry, ExportScheduleDispatchesOnExtension) {
  const auto schedule = demo_schedule();
  const auto options = small_options();
  const std::string path = ::testing::TempDir() + "/exporter_upper.PNG";
  export_schedule(schedule, options, path);
  const std::string bytes = io::read_file(path);
  EXPECT_EQ(bytes.substr(1, 3), "PNG");
  EXPECT_EQ(bytes, render_to_bytes(schedule, options, "png"));

  // Explicit format wins over the extension.
  const std::string forced = ::testing::TempDir() + "/exporter_forced.dat";
  export_schedule(schedule, options, forced, "ppm");
  EXPECT_EQ(io::read_file(forced).substr(0, 2), "P6");

  EXPECT_THROW(export_schedule(schedule, options,
                               ::testing::TempDir() + "/exporter.jpeg"),
               ArgumentError);
}

class CountedExporter : public Exporter {
 public:
  explicit CountedExporter(std::string description)
      : description_(std::move(description)) {}
  std::string name() const override { return "test-fmt"; }
  std::vector<std::string> extensions() const override { return {".tfmt"}; }
  std::string description() const override { return description_; }
  std::string render(const model::Schedule& schedule,
                     const RenderOptions&) const override {
    return "test-fmt:" + std::to_string(schedule.tasks().size());
  }

 private:
  std::string description_;
};

TEST(ExporterRegistry, DuplicateRegistrationReplaces) {
  auto& registry = ExporterRegistry::instance();
  registry.register_exporter(std::make_unique<CountedExporter>("first"));
  registry.register_exporter(std::make_unique<CountedExporter>("second"));

  const Exporter* e = registry.find("test-fmt");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->description(), "second");

  int seen = 0;
  for (const auto& name : registry.exporter_names()) {
    if (name == "test-fmt") ++seen;
  }
  EXPECT_EQ(seen, 1);

  // The user exporter owns its extension and works through the free
  // functions like any built-in.
  const Exporter* by_ext = registry.find_for_path("x.TFMT");
  ASSERT_NE(by_ext, nullptr);
  EXPECT_EQ(by_ext->name(), "test-fmt");
  EXPECT_EQ(render_to_bytes(demo_schedule(), small_options(), "test-fmt"),
            "test-fmt:2");
}

}  // namespace
}  // namespace jedule::render
