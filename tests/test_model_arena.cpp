// Differential suite for the columnar ScheduleArena against the AoS
// Schedule (DESIGN.md §4h): both representations must agree on hashes,
// validation verdicts, partitions, bounds and density, and the O(delta)
// append must be indistinguishable from rebuilding from scratch.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "jedule/io/jedule_xml.hpp"
#include "jedule/model/arena.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/model/task_index.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::model {
namespace {

Schedule sample_schedule() {
  return ScheduleBuilder()
      .cluster(0, "c0", 8)
      .cluster(1, "c1", 4)
      .meta("algorithm", "CPA")
      .task("a", "computation", 0.0, 2.0)
      .on(0, 0, 4)
      .task("b", "transfer", 1.0, 3.0)
      .on(0, 4, 2)
      .on(1, 0, 2)
      .task("c", "computation", 2.5, 4.0)
      .hosts(0, {1, 3, 5})
      .task("d", "io", 0.5, 0.5)
      .on(1, 2, 1)
      .property("user", "42")
      .build();
}

// A larger pseudo-random schedule: many tasks, single contiguous
// allocations (the event shape), two clusters.
Schedule random_schedule(int tasks, unsigned seed) {
  util::Rng rng(seed);
  ScheduleBuilder b;
  b.cluster(0, "c0", 64).cluster(1, "c1", 32);
  for (int i = 0; i < tasks; ++i) {
    const int cluster = static_cast<int>(rng.uniform_int(0, 1));
    const int hosts = cluster == 0 ? 64 : 32;
    const int nb = static_cast<int>(rng.uniform_int(1, 4));
    const int first = static_cast<int>(rng.uniform_int(0, hosts - nb));
    const double start = rng.uniform(0.0, 100.0);
    b.task("t" + std::to_string(i), i % 3 ? "computation" : "transfer",
           start, start + rng.uniform(0.1, 5.0))
        .on(cluster, first, nb);
  }
  return b.build();
}

std::vector<ScheduleArena::Event> events_for(const Schedule& schedule,
                                             std::size_t first) {
  std::vector<ScheduleArena::Event> events;
  for (std::size_t i = first; i < schedule.tasks().size(); ++i) {
    const Task& t = schedule.tasks()[i];
    const Configuration& cfg = t.configurations().front();
    ScheduleArena::Event e;
    e.id = t.id();
    e.type = t.type();
    e.start = t.start_time();
    e.end = t.end_time();
    e.cluster_id = cfg.cluster_id;
    e.host_start = cfg.hosts.front().start;
    e.host_nb = cfg.hosts.front().nb;
    events.push_back(std::move(e));
  }
  return events;
}

TEST(ScheduleArena, RoundTripsThroughColumns) {
  const Schedule schedule = sample_schedule();
  const ScheduleArena arena(schedule);
  EXPECT_EQ(arena.task_count(), schedule.tasks().size());
  EXPECT_EQ(arena.clusters().size(), schedule.clusters().size());
  EXPECT_EQ(arena.meta(), schedule.meta());
  // The materialized schedule is byte-identical on the wire.
  EXPECT_EQ(io::write_schedule_xml(arena.to_schedule()),
            io::write_schedule_xml(schedule));
}

TEST(ScheduleArena, ContentHashMatchesTaskIndex) {
  for (const Schedule& s :
       {sample_schedule(), random_schedule(500, 7), Schedule{}}) {
    const ScheduleArena arena(s);
    EXPECT_EQ(arena.content_hash(), TaskIndex::hash_schedule(s));
  }
}

TEST(ScheduleArena, BoundsAndPartitionsMatchSchedule) {
  const Schedule schedule = random_schedule(300, 11);
  const ScheduleArena arena(schedule);

  ASSERT_TRUE(arena.time_range().has_value());
  ASSERT_TRUE(schedule.time_range().has_value());
  EXPECT_EQ(arena.time_range()->begin, schedule.time_range()->begin);
  EXPECT_EQ(arena.time_range()->end, schedule.time_range()->end);

  for (const auto& cluster : schedule.clusters()) {
    const auto a = arena.cluster_time_range(cluster.id);
    const auto s = schedule.cluster_time_range(cluster.id);
    ASSERT_EQ(a.has_value(), s.has_value()) << cluster.id;
    if (a) {
      EXPECT_EQ(a->begin, s->begin);
      EXPECT_EQ(a->end, s->end);
    }

    // Cluster partition == tasks_in_cluster's scan result.
    const auto* part = arena.cluster_tasks(cluster.id);
    const auto scanned = schedule.tasks_in_cluster(cluster.id);
    ASSERT_NE(part, nullptr);
    ASSERT_EQ(part->size(), scanned.size());
    for (std::size_t i = 0; i < scanned.size(); ++i) {
      EXPECT_EQ(&schedule.tasks()[(*part)[i]], scanned[i]);
    }
  }
  EXPECT_EQ(arena.cluster_tasks(999), nullptr);
}

TEST(ScheduleArena, ValidateAgreesWithScheduleValidate) {
  // Valid schedules pass both.
  ScheduleArena ok(sample_schedule());
  EXPECT_NO_THROW(ok.validate());

  // Each invalid shape must throw ValidationError columnarly too. The
  // builder validates on build(), so assemble via Schedule directly.
  auto make = [](auto&& mutate) {
    Schedule s;
    s.add_cluster(0, "c0", 4);
    Task t("x", "computation", 0.0, 1.0);
    Configuration cfg;
    cfg.cluster_id = 0;
    cfg.hosts.push_back(HostRange{0, 2});
    t.add_configuration(cfg);
    s.add_task(t);
    mutate(&s);
    return s;
  };

  // Host range past the cluster size.
  const Schedule bad_host = make([](Schedule* s) {
    Task t("y", "computation", 0.0, 1.0);
    Configuration cfg;
    cfg.cluster_id = 0;
    cfg.hosts.push_back(HostRange{3, 2});
    t.add_configuration(cfg);
    s->add_task(t);
  });
  EXPECT_THROW(bad_host.validate(), ValidationError);
  EXPECT_THROW(ScheduleArena(bad_host).validate(), ValidationError);

  // Unknown cluster.
  const Schedule bad_cluster = make([](Schedule* s) {
    Task t("y", "computation", 0.0, 1.0);
    Configuration cfg;
    cfg.cluster_id = 7;
    cfg.hosts.push_back(HostRange{0, 1});
    t.add_configuration(cfg);
    s->add_task(t);
  });
  EXPECT_THROW(bad_cluster.validate(), ValidationError);
  EXPECT_THROW(ScheduleArena(bad_cluster).validate(), ValidationError);

  // end < start.
  const Schedule bad_time = make([](Schedule* s) {
    Task t("y", "computation", 2.0, 1.0);
    Configuration cfg;
    cfg.cluster_id = 0;
    cfg.hosts.push_back(HostRange{0, 1});
    t.add_configuration(cfg);
    s->add_task(t);
  });
  EXPECT_THROW(bad_time.validate(), ValidationError);
  EXPECT_THROW(ScheduleArena(bad_time).validate(), ValidationError);

  // Duplicate task id.
  const Schedule dup_id = make([](Schedule* s) {
    Task t("x", "computation", 2.0, 3.0);
    Configuration cfg;
    cfg.cluster_id = 0;
    cfg.hosts.push_back(HostRange{0, 1});
    t.add_configuration(cfg);
    s->add_task(t);
  });
  EXPECT_THROW(dup_id.validate(), ValidationError);
  EXPECT_THROW(ScheduleArena(dup_id).validate(), ValidationError);
}

TEST(ScheduleArena, AppendMatchesFreshBuild) {
  const Schedule full = random_schedule(400, 21);
  // Base arena over the first 300 tasks.
  Schedule base_schedule;
  for (const auto& c : full.clusters()) {
    base_schedule.add_cluster(c.id, c.name, c.hosts);
  }
  for (const auto& [k, v] : full.meta()) base_schedule.set_meta(k, v);
  for (std::size_t i = 0; i < 300; ++i) {
    base_schedule.add_task(full.tasks()[i]);
  }

  ScheduleArena grown(base_schedule);
  grown.validate();  // seeds the id table, as the engine does at ingest
  grown.append(events_for(full, 300));

  const ScheduleArena fresh(full);
  EXPECT_EQ(grown.task_count(), fresh.task_count());
  EXPECT_EQ(grown.content_hash(), fresh.content_hash());
  EXPECT_EQ(grown.tasks_hash(), fresh.tasks_hash());
  EXPECT_EQ(io::write_schedule_xml(grown.to_schedule()),
            io::write_schedule_xml(full));

  for (const auto& cluster : full.clusters()) {
    const auto* gp = grown.cluster_tasks(cluster.id);
    const auto* fp = fresh.cluster_tasks(cluster.id);
    ASSERT_EQ(gp != nullptr, fp != nullptr);
    if (gp) {
      EXPECT_EQ(*gp, *fp) << cluster.id;
    }

    const auto gr = grown.cluster_time_range(cluster.id);
    const auto fr = fresh.cluster_time_range(cluster.id);
    ASSERT_EQ(gr.has_value(), fr.has_value());
    if (gr) {
      EXPECT_EQ(gr->begin, fr->begin);
      EXPECT_EQ(gr->end, fr->end);
    }

    // Incrementally maintained density == freshly built density.
    const auto* gd = grown.density(cluster.id);
    const auto* fd = fresh.density(cluster.id);
    ASSERT_EQ(gd != nullptr, fd != nullptr);
    if (gd) {
      EXPECT_EQ(gd->origin, fd->origin);
      EXPECT_EQ(gd->bin_width, fd->bin_width);
      EXPECT_EQ(gd->bins, fd->bins);
    }
  }
}

TEST(ScheduleArena, AppendRejectsBadEventsLeavingArenaUntouched) {
  ScheduleArena arena(sample_schedule());
  arena.validate();
  const std::uint64_t hash = arena.content_hash();
  const std::size_t count = arena.task_count();
  const std::uint64_t version = arena.version();

  auto event = [](std::string id, double s, double e, int cluster, int h0,
                  int nb) {
    ScheduleArena::Event ev;
    ev.id = std::move(id);
    ev.type = "computation";
    ev.start = s;
    ev.end = e;
    ev.cluster_id = cluster;
    ev.host_start = h0;
    ev.host_nb = nb;
    return ev;
  };

  // Duplicate id (against the existing rows, via the persistent table).
  EXPECT_THROW(arena.append({event("a", 10, 11, 0, 0, 1)}), ValidationError);
  // Host range out of bounds.
  EXPECT_THROW(arena.append({event("z1", 10, 11, 0, 7, 3)}), ValidationError);
  // Unknown cluster.
  EXPECT_THROW(arena.append({event("z2", 10, 11, 9, 0, 1)}), ValidationError);
  // end < start.
  EXPECT_THROW(arena.append({event("z3", 11, 10, 0, 0, 1)}), ValidationError);
  // Duplicate id *within* the batch.
  EXPECT_THROW(
      arena.append({event("z4", 1, 2, 0, 0, 1), event("z4", 3, 4, 0, 2, 1)}),
      ValidationError);

  EXPECT_EQ(arena.content_hash(), hash);
  EXPECT_EQ(arena.task_count(), count);
  EXPECT_EQ(arena.version(), version);

  // And a good append still works afterwards.
  arena.append({event("z5", 10, 11, 0, 0, 2)});
  EXPECT_EQ(arena.task_count(), count + 1);
  EXPECT_EQ(arena.version(), version + 1);
}

TEST(TaskIndexArena, ExtensionMatchesFreshIndex) {
  const Schedule full = random_schedule(350, 31);
  Schedule base_schedule;
  for (const auto& c : full.clusters()) {
    base_schedule.add_cluster(c.id, c.name, c.hosts);
  }
  for (std::size_t i = 0; i < 250; ++i) {
    base_schedule.add_task(full.tasks()[i]);
  }

  ScheduleArena arena(base_schedule);
  arena.validate();
  arena.append(events_for(full, 250));

  const TaskIndex base(base_schedule);
  const TaskIndex extended(base, arena, 250);
  const TaskIndex fresh(full);

  EXPECT_EQ(extended.task_count(), fresh.task_count());
  EXPECT_EQ(extended.content_hash(), fresh.content_hash());
  EXPECT_EQ(extended.tasks_hash(), fresh.tasks_hash());

  // Same flattened geometry per cluster (order inside flatten() is the
  // canonical sorted form).
  const auto fe = extended.flatten();
  const auto ff = fresh.flatten();
  ASSERT_EQ(fe.size(), ff.size());
  for (std::size_t c = 0; c < ff.size(); ++c) {
    EXPECT_EQ(fe[c].cluster_id, ff[c].cluster_id);
    ASSERT_EQ(fe[c].entries.size(), ff[c].entries.size());
    for (std::size_t i = 0; i < ff[c].entries.size(); ++i) {
      EXPECT_EQ(fe[c].entries[i].begin, ff[c].entries[i].begin);
      EXPECT_EQ(fe[c].entries[i].end, ff[c].entries[i].end);
      EXPECT_EQ(fe[c].entries[i].task, ff[c].entries[i].task);
      EXPECT_EQ(fe[c].entries[i].host_start, ff[c].entries[i].host_start);
      EXPECT_EQ(fe[c].entries[i].host_end, ff[c].entries[i].host_end);
    }
    EXPECT_EQ(fe[c].max_end, ff[c].max_end);
  }

  // Cluster partitions agree too.
  for (const auto& cluster : full.clusters()) {
    EXPECT_EQ(extended.cluster_tasks(cluster.id),
              fresh.cluster_tasks(cluster.id));
  }
}

}  // namespace
}  // namespace jedule::model
