#include "jedule/util/checksum.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "jedule/util/rng.hpp"

namespace jedule {
namespace {

std::vector<std::uint8_t> random_bytes(util::Rng* rng, std::size_t size) {
  std::vector<std::uint8_t> out(size);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng->uniform_int(0, 255));
  }
  return out;
}

// crc32() may take a carry-less-multiply fast path on capable CPUs; it must
// be bit-identical to the portable slice-by-8 walk for every size class the
// folding kernel branches on (< 64, 16-byte multiples, ragged tails).
TEST(Checksum, DispatchedCrc32MatchesPortableAcrossSizes) {
  util::Rng rng(20240807);
  for (std::size_t size = 0; size <= 300; ++size) {
    const auto data = random_bytes(&rng, size);
    EXPECT_EQ(util::crc32(data.data(), size),
              util::crc32_portable(data.data(), size))
        << "size " << size;
  }
}

TEST(Checksum, DispatchedCrc32MatchesPortableOnLargeUnalignedBuffers) {
  util::Rng rng(7);
  const auto data = random_bytes(&rng, (1 << 20) + 37);
  for (std::size_t offset : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                             std::size_t{15}, std::size_t{63}}) {
    for (std::size_t size :
         {std::size_t{64}, std::size_t{65}, std::size_t{1024},
          std::size_t{4096} + 17, data.size() - offset}) {
      EXPECT_EQ(util::crc32(data.data() + offset, size),
                util::crc32_portable(data.data() + offset, size))
          << "offset " << offset << " size " << size;
    }
  }
}

TEST(Checksum, DispatchedCrc32ChainsSeedsLikePortable) {
  util::Rng rng(99);
  const auto data = random_bytes(&rng, 100000);
  // Chained calls (arbitrary split points, non-zero seeds) must agree with
  // one portable pass over the whole buffer.
  const std::uint32_t whole = util::crc32_portable(data.data(), data.size());
  std::uint32_t chained = 0;
  std::size_t done = 0;
  for (std::size_t chunk : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                            std::size_t{4099}, std::size_t{50000}}) {
    chained = util::crc32(data.data() + done, chunk, chained);
    done += chunk;
  }
  chained = util::crc32(data.data() + done, data.size() - done, chained);
  EXPECT_EQ(chained, whole);

  EXPECT_EQ(util::crc32(data.data(), data.size(), 0xDEADBEEFu),
            util::crc32_portable(data.data(), data.size(), 0xDEADBEEFu));
}

TEST(Checksum, ParallelCrc32MatchesSerial) {
  util::Rng rng(3);
  const auto data = random_bytes(&rng, (1 << 19) + 11);
  const std::uint32_t serial = util::crc32(data.data(), data.size());
  for (int threads : {1, 2, 4, 7}) {
    EXPECT_EQ(util::crc32_parallel(data.data(), data.size(), threads), serial)
        << "threads " << threads;
  }
}

TEST(Checksum, Crc32KnownVectors) {
  // "123456789" -> 0xCBF43926 (the CRC-32/ISO-HDLC check value).
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(util::crc32(check, sizeof(check)), 0xCBF43926u);
  EXPECT_EQ(util::crc32(nullptr, 0), 0u);
}

}  // namespace
}  // namespace jedule
