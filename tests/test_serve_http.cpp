// `jedule serve` integration: a real Server on an ephemeral loopback port
// driven through raw sockets (upload -> render -> tile roundtrip, dedup,
// artifact-cache hits, 404/405/415/400 mapping, malformed-request fuzz,
// 429 backpressure, graceful stop), plus direct handle() routing tests.
// Runs under the tsan ctest configuration.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "jedule/io/jedule_xml.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/serve/http.hpp"
#include "jedule/serve/server.hpp"
#include "jedule/util/inflate.hpp"

namespace jedule::serve {
namespace {

model::Schedule sample_schedule(double shift = 0.0) {
  model::ScheduleBuilder builder;
  builder.cluster(0, "c0", 8).cluster(1, "c1", 4);
  for (int i = 0; i < 12; ++i) {
    const double start = shift + i;
    builder
        .task(std::to_string(i), i % 2 ? "computation" : "transfer", start,
              start + 2.0)
        .on(i % 2, i % 3, 2);
  }
  return builder.build();
}

std::string sample_xml(double shift = 0.0) {
  return io::write_schedule_xml(sample_schedule(shift));
}

/// Blocking loopback client: one connected socket per exchange
/// (Connection: close), exposed stepwise so tests can hold half-open
/// connections for the backpressure case.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return connected_; }

  void send(const std::string& bytes) {
    ASSERT_TRUE(write_all(fd_, bytes));
  }

  /// Reads until the server closes the connection.
  std::string read_to_eof() {
    std::string out;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

struct RawResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;
};

RawResponse parse_response(const std::string& raw) {
  RawResponse resp;
  const std::size_t head_end = raw.find("\r\n\r\n");
  EXPECT_NE(head_end, std::string::npos) << "incomplete response: " << raw;
  if (head_end == std::string::npos) return resp;
  const std::string head = raw.substr(0, head_end);
  resp.body = raw.substr(head_end + 4);

  std::size_t line_end = head.find("\r\n");
  const std::string status_line = head.substr(0, line_end);
  EXPECT_EQ(status_line.rfind("HTTP/1.1 ", 0), 0u) << status_line;
  resp.status = std::stoi(status_line.substr(9, 3));

  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    line_end = head.find("\r\n", pos);
    if (line_end == std::string::npos) line_end = head.size();
    const std::string line = head.substr(pos, line_end - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(::tolower(c));
      std::size_t v = colon + 1;
      while (v < line.size() && line[v] == ' ') ++v;
      resp.headers[name] = line.substr(v);
    }
    pos = line_end + 2;
  }
  return resp;
}

std::string format_request(
    const std::string& method, const std::string& target,
    const std::string& body = "",
    const std::vector<std::string>& extra_headers = {}) {
  std::string req = method + " " + target + " HTTP/1.1\r\n";
  req += "Host: 127.0.0.1\r\n";
  for (const auto& header : extra_headers) req += header + "\r\n";
  if (!body.empty() || method == "POST") {
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  req += "\r\n";
  req += body;
  return req;
}

/// One full exchange against the server.
RawResponse fetch(int port, const std::string& method,
                  const std::string& target, const std::string& body = "",
                  const std::vector<std::string>& extra_headers = {}) {
  Client client(port);
  EXPECT_TRUE(client.connected());
  client.send(format_request(method, target, body, extra_headers));
  return parse_response(client.read_to_eof());
}

/// Pulls the id out of an upload response body ({"id":"...",...}).
std::string id_of(const RawResponse& resp) {
  const std::size_t key = resp.body.find("\"id\":\"");
  EXPECT_NE(key, std::string::npos) << resp.body;
  if (key == std::string::npos) return "";
  const std::size_t start = key + 6;
  return resp.body.substr(start, resp.body.find('"', start) - start);
}

bool looks_like_png(const std::string& bytes) {
  return bytes.size() > 8 && bytes.compare(0, 4, "\x89PNG") == 0;
}

class ServeHttp : public ::testing::Test {
 protected:
  void SetUp() override {
    Server::Options opt;
    opt.threads = 2;
    opt.queue_capacity = 8;
    opt.request_timeout_ms = 5000;
    server_ = std::make_unique<Server>(opt);
    server_->start();
    ASSERT_GT(server_->port(), 0);
  }
  void TearDown() override { server_->stop(); }

  std::unique_ptr<Server> server_;
};

TEST_F(ServeHttp, HealthAndStats) {
  const auto health = fetch(server_->port(), "GET", "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const auto stats = fetch(server_->port(), "GET", "/stats");
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.headers.at("content-type").find("application/json"),
            std::string::npos);
  for (const char* key :
       {"\"store\"", "\"render\"", "\"server\"", "\"artifact_hits\"",
        "\"rejected_429\"", "\"queue_depth\"", "\"resident_mmap_bytes\"",
        "\"resident_heap_bytes\"", "\"snapshot\"", "\"not_modified_304\""}) {
    EXPECT_NE(stats.body.find(key), std::string::npos) << key;
  }
}

TEST_F(ServeHttp, UploadRenderTileRoundtrip) {
  const auto upload = fetch(server_->port(), "POST",
                            "/schedules?name=trace.jed", sample_xml());
  ASSERT_EQ(upload.status, 201);
  const std::string id = id_of(upload);
  ASSERT_EQ(id.size(), 16u);
  EXPECT_EQ(upload.headers.at("location"), "/schedules/" + id);
  EXPECT_NE(upload.body.find("\"deduplicated\":false"), std::string::npos);

  const auto meta = fetch(server_->port(), "GET", "/schedules/" + id);
  EXPECT_EQ(meta.status, 200);
  EXPECT_NE(meta.body.find("\"tasks\":12"), std::string::npos) << meta.body;
  EXPECT_NE(meta.body.find("\"source\":\"trace.jed\""), std::string::npos);

  const auto list = fetch(server_->port(), "GET", "/schedules");
  EXPECT_EQ(list.status, 200);
  EXPECT_NE(list.body.find(id), std::string::npos);

  const auto png = fetch(server_->port(), "GET",
                         "/schedules/" + id + "/render.png?width=320");
  EXPECT_EQ(png.status, 200);
  EXPECT_EQ(png.headers.at("content-type"), "image/png");
  EXPECT_EQ(png.headers.at("x-cache"), "miss");
  EXPECT_TRUE(looks_like_png(png.body));
  EXPECT_EQ(png.body.size(),
            static_cast<std::size_t>(
                std::stoul(png.headers.at("content-length"))));

  const auto svg = fetch(server_->port(), "GET",
                         "/schedules/" + id + "/render.svg");
  EXPECT_EQ(svg.status, 200);
  EXPECT_NE(svg.body.find("<svg"), std::string::npos);

  const auto tile = fetch(server_->port(), "GET",
                          "/schedules/" + id + "/tile?x=1&zoom=2&width=256");
  EXPECT_EQ(tile.status, 200);
  EXPECT_EQ(tile.headers.at("content-type"), "image/png");
  EXPECT_TRUE(looks_like_png(tile.body));

  const auto gone = fetch(server_->port(), "DELETE", "/schedules/" + id);
  EXPECT_EQ(gone.status, 204);
  EXPECT_EQ(fetch(server_->port(), "GET", "/schedules/" + id).status, 404);
}

TEST_F(ServeHttp, ReuploadDeduplicatesByContentHash) {
  const auto first = fetch(server_->port(), "POST", "/schedules",
                           sample_xml());
  ASSERT_EQ(first.status, 201);
  const auto again = fetch(server_->port(), "POST", "/schedules?name=copy",
                           sample_xml());
  EXPECT_EQ(again.status, 200);
  EXPECT_EQ(id_of(again), id_of(first));
  EXPECT_NE(again.body.find("\"deduplicated\":true"), std::string::npos);
  EXPECT_NE(fetch(server_->port(), "GET", "/stats")
                .body.find("\"dedup_hits\":1"),
            std::string::npos);
}

TEST_F(ServeHttp, EtagEnables304Revalidation) {
  const auto upload = fetch(server_->port(), "POST", "/schedules",
                            sample_xml());
  ASSERT_EQ(upload.status, 201);
  const std::string id = id_of(upload);
  const std::string target = "/schedules/" + id + "/render.svg?width=320";

  const auto full = fetch(server_->port(), "GET", target);
  ASSERT_EQ(full.status, 200);
  ASSERT_NE(full.headers.count("etag"), 0u);
  const std::string etag = full.headers.at("etag");
  EXPECT_EQ(etag.front(), '"');
  EXPECT_EQ(etag.back(), '"');

  // A matching validator short-circuits to an empty 304 carrying the tag.
  const auto cached = fetch(server_->port(), "GET", target, "",
                            {"If-None-Match: " + etag});
  EXPECT_EQ(cached.status, 304);
  EXPECT_TRUE(cached.body.empty());
  EXPECT_EQ(cached.headers.at("etag"), etag);
  // Weak-comparison spellings and the wildcard revalidate too.
  EXPECT_EQ(fetch(server_->port(), "GET", target, "",
                  {"If-None-Match: W/" + etag})
                .status,
            304);
  EXPECT_EQ(fetch(server_->port(), "GET", target, "",
                  {"If-None-Match: \"nope\", " + etag})
                .status,
            304);
  EXPECT_EQ(fetch(server_->port(), "GET", target, "", {"If-None-Match: *"})
                .status,
            304);
  // A stale validator gets the full body again.
  EXPECT_EQ(fetch(server_->port(), "GET", target, "",
                  {"If-None-Match: \"0000000000000000-0-svg\""})
                .status,
            200);
  // The tag covers the option digest: different options, different tag.
  const auto wider =
      fetch(server_->port(), "GET",
            "/schedules/" + id + "/render.svg?width=400");
  EXPECT_EQ(wider.status, 200);
  EXPECT_NE(wider.headers.at("etag"), etag);

  // Tiles carry validators as well.
  const std::string tile_target = "/schedules/" + id + "/tile?x=0&zoom=1";
  const auto tile = fetch(server_->port(), "GET", tile_target);
  ASSERT_EQ(tile.status, 200);
  const std::string tile_etag = tile.headers.at("etag");
  EXPECT_NE(tile_etag, etag);
  EXPECT_EQ(fetch(server_->port(), "GET", tile_target, "",
                  {"If-None-Match: " + tile_etag})
                .status,
            304);

  const auto stats = fetch(server_->port(), "GET", "/stats");
  EXPECT_NE(stats.body.find("\"not_modified_304\":5"), std::string::npos)
      << stats.body;
}

TEST_F(ServeHttp, PostEventsGrowsTheScheduleAsANewEntry) {
  const auto upload = fetch(server_->port(), "POST", "/schedules",
                            sample_xml());
  ASSERT_EQ(upload.status, 201);
  const std::string base = id_of(upload);

  // Two more tasks in the sample_schedule formula, as event lines (the
  // CSV tail grammar — comments and header rows are tolerated).
  const std::string events =
      "# tail\n"
      "task_id,type,start,end,allocation\n"
      "12,transfer,12,14,0:0-1\n"
      "13,computation,13,15,1:1-2\n";
  const auto grown = fetch(server_->port(), "POST",
                           "/schedules/" + base + "/events", events);
  ASSERT_EQ(grown.status, 201) << grown.body;
  const std::string grown_id = id_of(grown);
  EXPECT_NE(grown_id, base);
  EXPECT_EQ(grown.headers.at("location"), "/schedules/" + grown_id);
  EXPECT_NE(grown.body.find("\"tasks\":14"), std::string::npos) << grown.body;
  EXPECT_NE(grown.body.find("\"appended\":2"), std::string::npos);

  // The base entry stays addressable (in-flight renders keep working)...
  EXPECT_EQ(fetch(server_->port(), "GET", "/schedules/" + base).status, 200);
  // ...and the grown entry is content-addressed: uploading the full
  // 14-task schedule dedups against it.
  model::ScheduleBuilder builder;
  builder.cluster(0, "c0", 8).cluster(1, "c1", 4);
  for (int i = 0; i < 14; ++i) {
    builder
        .task(std::to_string(i), i % 2 ? "computation" : "transfer",
              static_cast<double>(i), i + 2.0)
        .on(i % 2, i % 3, 2);
  }
  const auto fresh = fetch(server_->port(), "POST", "/schedules",
                           io::write_schedule_xml(builder.build()));
  EXPECT_EQ(fresh.status, 200);
  EXPECT_EQ(id_of(fresh), grown_id);
  EXPECT_NE(fresh.body.find("\"deduplicated\":true"), std::string::npos);

  // Replaying the same delta is idempotent: same grown id, deduplicated.
  const auto replay = fetch(server_->port(), "POST",
                            "/schedules/" + base + "/events", events);
  EXPECT_EQ(replay.status, 200);
  EXPECT_EQ(id_of(replay), grown_id);
  EXPECT_NE(replay.body.find("\"deduplicated\":true"), std::string::npos);

  // Error mapping: unknown id, empty delta, unparseable delta, invalid
  // events and a wrong method never crash the worker.
  EXPECT_EQ(fetch(server_->port(), "POST",
                  "/schedules/0000000000000000/events", events)
                .status,
            404);
  EXPECT_EQ(fetch(server_->port(), "POST",
                  "/schedules/" + base + "/events", "")
                .status,
            400);
  EXPECT_EQ(fetch(server_->port(), "POST",
                  "/schedules/" + base + "/events", "one,two,three\n")
                .status,
            415);
  // Duplicate task id: parses fine, fails columnar validation.
  EXPECT_EQ(fetch(server_->port(), "POST",
                  "/schedules/" + base + "/events", "5,w,1,2,0:0\n")
                .status,
            400);
  // Host range off the end of cluster 1 (4 hosts).
  EXPECT_EQ(fetch(server_->port(), "POST",
                  "/schedules/" + base + "/events", "x,w,1,2,1:3-6\n")
                .status,
            400);
  EXPECT_EQ(fetch(server_->port(), "GET",
                  "/schedules/" + base + "/events")
                .status,
            405);
}

TEST_F(ServeHttp, ConcurrentClientsShareOneRender) {
  // The acceptance bar: two clients asking for the same render get
  // byte-identical bodies and only one render happens — the second body
  // comes from the artifact cache (single-flight collapse counts the
  // waiter as a hit).
  const auto upload = fetch(server_->port(), "POST", "/schedules",
                            sample_xml());
  const std::string target =
      "/schedules/" + id_of(upload) + "/render.png?width=640&height=360";

  std::vector<RawResponse> got(2);
  {
    std::vector<std::thread> clients;
    for (int i = 0; i < 2; ++i) {
      clients.emplace_back([&, i] {
        got[static_cast<std::size_t>(i)] =
            fetch(server_->port(), "GET", target);
      });
    }
    for (auto& t : clients) t.join();
  }

  ASSERT_EQ(got[0].status, 200);
  ASSERT_EQ(got[1].status, 200);
  EXPECT_EQ(got[0].body, got[1].body);
  EXPECT_TRUE(looks_like_png(got[0].body));

  const auto stats = server_->renders().stats();
  EXPECT_EQ(stats.artifact_misses, 1u);
  EXPECT_EQ(stats.artifact_hits, 1u);
  EXPECT_NE(fetch(server_->port(), "GET", "/stats")
                .body.find("\"artifact_hits\":1"),
            std::string::npos);

  // A third, sequential client is a plain cache hit with the same bytes.
  const auto warm = fetch(server_->port(), "GET", target);
  EXPECT_EQ(warm.headers.at("x-cache"), "hit");
  EXPECT_EQ(warm.body, got[0].body);
}

TEST_F(ServeHttp, ErrorMappingMirrorsTheCli) {
  const auto upload = fetch(server_->port(), "POST", "/schedules",
                            sample_xml());
  const std::string id = id_of(upload);

  // Unknown id -> 404 on every resource route.
  EXPECT_EQ(fetch(server_->port(), "GET",
                  "/schedules/0123456789abcdef/render.png")
                .status,
            404);

  // Unregistered exporter -> 415 naming the format and the supported list.
  const auto jpeg = fetch(server_->port(), "GET",
                          "/schedules/" + id + "/render.jpeg");
  EXPECT_EQ(jpeg.status, 415);
  EXPECT_NE(jpeg.body.find("jpeg"), std::string::npos) << jpeg.body;
  EXPECT_NE(jpeg.body.find("supported formats:"), std::string::npos);
  EXPECT_NE(jpeg.body.find("png"), std::string::npos);

  // Unparseable upload -> 415 with the parser registry's format list.
  const auto garbage = fetch(server_->port(), "POST", "/schedules",
                             "\x01\x02\x03 not a trace");
  EXPECT_EQ(garbage.status, 415);
  EXPECT_NE(garbage.body.find("supported formats:"), std::string::npos);

  // Bad option values -> 400 with the shared parser's message.
  const auto bad_width = fetch(server_->port(), "GET",
                               "/schedules/" + id + "/render.png?width=abc");
  EXPECT_EQ(bad_width.status, 400);
  EXPECT_NE(bad_width.body.find("width"), std::string::npos);

  // cmap is a server-side file read: rejected over HTTP.
  const auto cmap = fetch(server_->port(), "GET",
                          "/schedules/" + id + "/render.png?cmap=/etc/x");
  EXPECT_EQ(cmap.status, 400);

  // Tile parameter validation.
  EXPECT_EQ(fetch(server_->port(), "GET", "/schedules/" + id + "/tile")
                .status,
            400);
  EXPECT_EQ(fetch(server_->port(), "GET",
                  "/schedules/" + id + "/tile?x=9&zoom=2")
                .status,
            400);

  // Routing: unknown paths and wrong methods.
  EXPECT_EQ(fetch(server_->port(), "GET", "/nope").status, 404);
  EXPECT_EQ(fetch(server_->port(), "PUT", "/schedules", "x").status, 405);
  EXPECT_EQ(fetch(server_->port(), "POST", "/healthz", "x").status, 405);
}

TEST_F(ServeHttp, MalformedRequestsGetA4xxNeverACrash) {
  struct Case {
    const char* label;
    std::string bytes;
  };
  const std::vector<Case> cases = {
      {"garbage bytes", "\x01\x02\x03\xff nonsense\r\n\r\n"},
      {"bad request line", "GET\r\n\r\n"},
      {"bad version", "GET / HTTP/9.9\r\n\r\n"},
      {"bad header line", "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"},
      {"bad content length",
       "POST /schedules HTTP/1.1\r\nContent-Length: twelve\r\n\r\n"},
      {"chunked body", "POST /schedules HTTP/1.1\r\n"
                       "Transfer-Encoding: chunked\r\n\r\n"},
      {"bad escape", "GET /schedules/%zz HTTP/1.1\r\n\r\n"},
      {"huge head", "GET / HTTP/1.1\r\nX-Pad: " +
                        std::string(80 * 1024, 'a') + "\r\n\r\n"},
  };
  for (const auto& c : cases) {
    Client client(server_->port());
    ASSERT_TRUE(client.connected()) << c.label;
    client.send(c.bytes);
    const auto resp = parse_response(client.read_to_eof());
    // 4xx for malformed input; the bad-version case is a deliberate 505.
    // Never a 500, never a dropped connection.
    EXPECT_GE(resp.status, 400) << c.label;
    EXPECT_NE(resp.status, 500) << c.label;
  }

  // Oversized body against a small cap -> 413.
  Server::Options tiny;
  tiny.threads = 1;
  tiny.max_body = 64;
  Server small(tiny);
  small.start();
  const auto too_big = fetch(small.port(), "POST", "/schedules",
                             std::string(1024, 'x'));
  EXPECT_EQ(too_big.status, 413);
  small.stop();

  // The server is still healthy after all of that.
  EXPECT_EQ(fetch(server_->port(), "GET", "/healthz").status, 200);
  EXPECT_EQ(server_->counters().errors, 0u);
}

TEST(ServeBackpressure, SaturatedQueueShedsWith429) {
  Server::Options opt;
  opt.threads = 1;
  opt.queue_capacity = 1;
  opt.request_timeout_ms = 5000;
  Server server(opt);
  server.start();

  // Two half-open connections pin the single worker (blocked reading) and
  // the one queue slot; the third must be shed by the listener itself.
  Client busy1(server.port());
  ASSERT_TRUE(busy1.connected());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Client busy2(server.port());
  ASSERT_TRUE(busy2.connected());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Client shed(server.port());
  ASSERT_TRUE(shed.connected());
  const auto resp = parse_response(shed.read_to_eof());
  EXPECT_EQ(resp.status, 429);
  EXPECT_EQ(resp.headers.at("retry-after"), "1");
  EXPECT_NE(resp.body.find("admission queue is full"), std::string::npos);
  EXPECT_GE(server.counters().rejected_429, 1u);

  // Releasing the stalled connections restores service.
  busy1.close();
  busy2.close();
  for (int attempt = 0;; ++attempt) {
    const auto health = fetch(server.port(), "GET", "/healthz");
    if (health.status == 200) break;
    ASSERT_LT(attempt, 50) << "server did not recover after shedding";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Graceful drain, idempotent stop.
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();
}

TEST(ServeRouting, HandleIsAPureFunction) {
  // handle() routes without sockets; drive the edge cases directly.
  Server server;  // never started: no listener, no port
  HttpRequest req;
  req.method = "GET";
  req.path = "/healthz";
  EXPECT_EQ(server.handle(req).status, 200);

  req.path = "/schedules/";
  EXPECT_EQ(server.handle(req).status, 404);

  req.method = "POST";
  req.path = "/schedules";
  req.body = io::write_schedule_xml(sample_schedule());
  const auto created = server.handle(req);
  EXPECT_EQ(created.status, 201);
  EXPECT_EQ(server.store().stats().entries, 1u);

  req.method = "GET";
  req.path = "/schedules/" + server.store().list()[0]->id + "/tile";
  req.query = {{"x", "0"}, {"zoom", "oops"}};
  const auto bad = server.handle(req);
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("zoom"), std::string::npos);
}

// Content-Encoding negotiation: text bodies (svg, ascii) are gzipped when
// Accept-Encoding allows it, svgz always is, binary formats never are.
TEST(ServeRouting, NegotiatesGzipForTextBodies) {
  Server server;
  HttpRequest post;
  post.method = "POST";
  post.path = "/schedules";
  post.body = io::write_schedule_xml(sample_schedule());
  ASSERT_EQ(server.handle(post).status, 201);
  const std::string base =
      "/schedules/" + server.store().list()[0]->id + "/render.";

  HttpRequest req;
  req.method = "GET";
  req.path = base + "svg";

  // No Accept-Encoding: identity, but the response still varies on it.
  const auto plain = server.handle(req);
  EXPECT_EQ(plain.status, 200);
  EXPECT_EQ(plain.headers.count("Content-Encoding"), 0u);
  EXPECT_EQ(plain.headers.at("Vary"), "Accept-Encoding");

  // gzip accepted: compressed body that inflates to the identity bytes.
  req.headers["accept-encoding"] = "deflate, gzip;q=0.8, br";
  const auto packed = server.handle(req);
  EXPECT_EQ(packed.status, 200);
  EXPECT_EQ(packed.headers.at("Content-Encoding"), "gzip");
  EXPECT_EQ(packed.headers.at("Vary"), "Accept-Encoding");
  EXPECT_EQ(packed.media_type, "image/svg+xml");
  EXPECT_LT(packed.body.size(), plain.body.size());
  const auto raw = util::gzip_decompress(
      reinterpret_cast<const std::uint8_t*>(packed.body.data()),
      packed.body.size());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(raw.data()),
                        raw.size()),
            plain.body);

  // The serialized response's Content-Length is the wire body size.
  const std::string wire = serialize_response(packed);
  EXPECT_NE(wire.find("Content-Length: " + std::to_string(packed.body.size())),
            std::string::npos);

  // Explicit refusal wins; wildcard grants.
  req.headers["accept-encoding"] = "gzip;q=0";
  EXPECT_EQ(server.handle(req).headers.count("Content-Encoding"), 0u);
  req.headers["accept-encoding"] = "*";
  EXPECT_EQ(server.handle(req).headers.at("Content-Encoding"), "gzip");

  // ascii negotiates too; png stays identity even when gzip is accepted.
  req.path = base + "ascii";
  req.headers["accept-encoding"] = "gzip";
  EXPECT_EQ(server.handle(req).headers.at("Content-Encoding"), "gzip");
  req.path = base + "png";
  const auto png = server.handle(req);
  EXPECT_EQ(png.headers.count("Content-Encoding"), 0u);
  EXPECT_EQ(png.headers.count("Vary"), 0u);

  // svgz is a gzip stream no matter what the client advertises.
  req.path = base + "svgz";
  req.headers.clear();
  const auto svgz = server.handle(req);
  EXPECT_EQ(svgz.headers.at("Content-Encoding"), "gzip");
  EXPECT_EQ(svgz.media_type, "image/svg+xml");

  // /stats accounts wire vs raw bytes and per-encoding response counts.
  const std::string stats = server.stats_json();
  EXPECT_NE(stats.find("\"encoding\":{"), std::string::npos);
  EXPECT_NE(stats.find("\"wire_bytes\":"), std::string::npos);
  EXPECT_NE(stats.find("\"raw_bytes\":"), std::string::npos);
  const auto c = server.counters();
  EXPECT_EQ(c.gzip_responses, 4u);      // svg x2, ascii, svgz
  EXPECT_EQ(c.identity_responses, 3u);  // svg x2 (plain + refused), png
  EXPECT_GT(c.raw_bytes, 0u);
  EXPECT_GT(c.wire_bytes, 0u);
  // Compression must have saved bytes overall for this mix.
  EXPECT_LT(c.wire_bytes, c.raw_bytes);
}

TEST(ServeHttpParsing, QueryAndHeadParsing) {
  EXPECT_EQ(url_decode("a%20b+c"), "a b c");
  EXPECT_THROW(url_decode("%g1"), HttpError);
  EXPECT_THROW(url_decode("%2"), HttpError);

  const auto q = parse_query("width=320&aligned&name=a%2Fb");
  EXPECT_EQ(q.at("width"), "320");
  EXPECT_EQ(q.at("aligned"), "");
  EXPECT_EQ(q.at("name"), "a/b");

  const auto req = parse_request_head(
      "GET /schedules/x/render.png?width=320 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "X-Custom: value");
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/schedules/x/render.png");
  EXPECT_EQ(req.query.at("width"), "320");
  EXPECT_EQ(req.headers.at("host"), "localhost");
  EXPECT_EQ(req.headers.at("x-custom"), "value");

  HttpResponse resp;
  resp.status = 404;
  resp.body = "gone";
  const std::string wire = serialize_response(resp);
  EXPECT_NE(wire.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 4\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
}

}  // namespace
}  // namespace jedule::serve
