// Structural validation of the vector exporters: the SVG is parsed back
// through the in-tree XML DOM; the PDF's cross-reference table is checked
// to point at real objects (what a picky viewer would verify first).

#include <gtest/gtest.h>

#include "jedule/model/builder.hpp"
#include "jedule/render/exporter.hpp"
#include "jedule/util/inflate.hpp"
#include "jedule/render/gantt.hpp"
#include "jedule/render/pdf.hpp"
#include "jedule/render/svg.hpp"
#include "jedule/util/strings.hpp"
#include "jedule/xml/xml.hpp"

namespace jedule::render {
namespace {

model::Schedule demo() {
  return model::ScheduleBuilder()
      .cluster(0, "c0", 8)
      .meta("algorithm", "vector-test")
      .task("1", "computation", 0.0, 4.0)
      .on(0, 0, 8)
      .task("2", "transfer", 3.0, 6.0)
      .on(0, 2, 4)
      .build();
}

GanttStyle style() {
  GanttStyle s;
  s.width = 640;
  s.height = 400;
  return s;
}

std::string bytes_for(const model::Schedule& schedule,
                      const std::string& format) {
  RenderOptions options;
  options.style = style();
  options.threads = 1;
  return render_to_bytes(schedule, options, format);
}

TEST(SvgExport, IsWellFormedXml) {
  const std::string svg = bytes_for(demo(), "svg");
  const auto doc = xml::parse(svg);
  EXPECT_EQ(doc.root->name(), "svg");
  EXPECT_EQ(doc.root->attr("width"), "640");
  EXPECT_EQ(doc.root->attr("height"), "400");
}

TEST(SvgExport, HasOneFilledRectPerBoxPlusChrome) {
  const auto layout = layout_gantt(demo(), color::standard_colormap(),
                                   style());
  const std::string svg = bytes_for(demo(), "svg");
  const auto doc = xml::parse(svg);

  int filled_rects = 0;
  int texts = 0;
  int lines = 0;
  for (const auto& child : doc.root->children()) {
    if (child->name() == "rect" && child->attr("fill") != "none") {
      ++filled_rects;
    }
    if (child->name() == "text") ++texts;
    if (child->name() == "line") ++lines;
  }
  // Background + every task/composite box is a filled rect.
  EXPECT_GE(filled_rects, static_cast<int>(layout.boxes.size()) + 1);
  // Labels + header + titles + axis tick labels.
  EXPECT_GE(texts, static_cast<int>(layout.boxes.size()));
  EXPECT_GT(lines, 4);  // grid + axis + ticks
}

TEST(SvgExport, TaskColorsAppear) {
  const std::string svg = bytes_for(demo(), "svg");
  EXPECT_NE(svg.find("#0000ff"), std::string::npos);  // computation
  EXPECT_NE(svg.find("#f10000"), std::string::npos);  // transfer
  EXPECT_NE(svg.find("#ff6200"), std::string::npos);  // composite
}

TEST(SvgExport, EscapesSpecialCharacters) {
  auto s = model::ScheduleBuilder()
               .cluster(0, "a<b>&c", 2)
               .task("t\"1\"", "x&y", 0, 1)
               .on(0, 0, 2)
               .build();
  const std::string svg = bytes_for(s, "svg");
  EXPECT_NO_THROW(xml::parse(svg));
  EXPECT_NE(svg.find("a&lt;b&gt;&amp;c"), std::string::npos);
}

TEST(PdfExport, XrefOffsetsPointAtObjects) {
  const std::string pdf = bytes_for(demo(), "pdf");
  // startxref declares where the table lives; the bytes there must read
  // "xref". (Careful: "startxref" itself contains the substring "xref".)
  const auto startxref_pos = pdf.rfind("startxref\n");
  ASSERT_NE(startxref_pos, std::string::npos);
  const auto offset_str = pdf.substr(startxref_pos + 10);
  const auto declared = util::parse_int(
      util::trim(offset_str.substr(0, offset_str.find('\n'))));
  ASSERT_TRUE(declared);
  const auto xref_pos = static_cast<std::size_t>(*declared);
  ASSERT_EQ(pdf.substr(xref_pos, 5), "xref\n");

  // Each "NNNNNNNNNN 00000 n" entry points at "<i> 0 obj".
  std::size_t cursor = pdf.find('\n', xref_pos) + 1;  // start of "0 6" line
  cursor = pdf.find('\n', cursor) + 1;                // start of free entry
  cursor = pdf.find('\n', cursor) + 1;                // first object entry
  for (int i = 1; i <= 5; ++i) {
    const auto entry = pdf.substr(cursor, 20);
    const auto offset = util::parse_int(util::trim(entry.substr(0, 10)));
    ASSERT_TRUE(offset) << "entry " << i;
    const std::string expected = std::to_string(i) + " 0 obj";
    EXPECT_EQ(pdf.substr(static_cast<std::size_t>(*offset), expected.size()),
              expected);
    cursor = pdf.find('\n', cursor) + 1;
  }
}

// Extracts and inflates the /FlateDecode page content stream, checking
// that /Length covers exactly the compressed bytes (the EOL before
// `endstream` is not part of the stream data).
std::string content_stream_of(const std::string& pdf) {
  const auto len_pos = pdf.find("/Length ");
  EXPECT_NE(len_pos, std::string::npos);
  const auto len_end = pdf.find(' ', len_pos + 8);
  const auto length = util::parse_int(pdf.substr(len_pos + 8,
                                                 len_end - len_pos - 8));
  EXPECT_TRUE(length);
  EXPECT_NE(pdf.find("/Filter /FlateDecode"), std::string::npos);
  const auto stream_pos = pdf.find("stream\n", len_pos) + 7;
  const auto n = static_cast<std::size_t>(*length);
  EXPECT_EQ(pdf.substr(stream_pos + n, 10), "\nendstream");
  const auto raw = util::zlib_decompress(
      reinterpret_cast<const std::uint8_t*>(pdf.data() + stream_pos), n);
  return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
}

TEST(PdfExport, ContentStreamLengthIsExactAndInflates) {
  const std::string pdf = bytes_for(demo(), "pdf");
  const std::string content = content_stream_of(pdf);
  EXPECT_NE(content.find(" re f"), std::string::npos);   // filled rects
  EXPECT_NE(content.find("Tj ET"), std::string::npos);   // text
  EXPECT_NE(content.find("c0 \\(8 hosts\\)"), std::string::npos);
}

TEST(PdfExport, EscapesParentheses) {
  auto s = model::ScheduleBuilder()
               .cluster(0, "c (main)", 2)
               .task("t(1)", "x", 0, 1)
               .on(0, 0, 2)
               .build();
  const std::string pdf = bytes_for(s, "pdf");
  EXPECT_NE(content_stream_of(pdf).find("\\(main\\)"),
            std::string::npos);
}

TEST(SvgzExport, GzipFramedAndMatchesSvg) {
  const auto s = demo();
  const std::string svgz = bytes_for(s, "svgz");
  ASSERT_GE(svgz.size(), 18u);
  EXPECT_EQ(static_cast<std::uint8_t>(svgz[0]), 0x1F);
  EXPECT_EQ(static_cast<std::uint8_t>(svgz[1]), 0x8B);
  const auto raw = util::gzip_decompress(
      reinterpret_cast<const std::uint8_t*>(svgz.data()), svgz.size());
  const std::string svg = bytes_for(s, "svg");
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(raw.data()),
                        raw.size()),
            svg);
  EXPECT_LT(svgz.size(), svg.size());
}

TEST(VectorExports, Deterministic) {
  const auto s = demo();
  for (const char* format : {"svg", "svgz", "pdf"}) {
    EXPECT_EQ(bytes_for(s, format), bytes_for(s, format));
  }
}

}  // namespace
}  // namespace jedule::render
