// .jbin binary snapshots (DESIGN.md §4h): exact round-trips through
// serialize/parse and save/load (mmap), plus a corruption fuzz — any
// truncated, bit-flipped, wrong-version or wrong-endian file must be
// rejected with ParseError before a model object exists. Runs under the
// sanitize ctest label: a mapped-column overread would trip ASan here.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "jedule/io/file.hpp"
#include "jedule/io/jedule_xml.hpp"
#include "jedule/io/registry.hpp"
#include "jedule/io/snapshot.hpp"
#include "jedule/model/arena.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/model/task_index.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::io {
namespace {

using model::Schedule;
using model::ScheduleArena;
using model::TaskIndex;

Schedule sample_schedule(int tasks = 40) {
  util::Rng rng(5);
  model::ScheduleBuilder b;
  b.cluster(0, "c0", 16).cluster(1, "c1", 8);
  b.meta("algorithm", "HEFT").meta("trace", "unit");
  for (int i = 0; i < tasks; ++i) {
    const int cluster = i % 2;
    const int hosts = cluster == 0 ? 16 : 8;
    const int nb = 1 + i % 3;
    const double start = rng.uniform(0.0, 50.0);
    b.task("t" + std::to_string(i), i % 3 ? "computation" : "transfer",
           start, start + rng.uniform(0.1, 3.0))
        .on(cluster, i % (hosts - nb), nb);
    if (i % 7 == 0) b.property("user", std::to_string(i));
  }
  return b.build();
}

std::string snapshot_bytes(const Schedule& schedule) {
  const ScheduleArena arena(schedule);
  const TaskIndex index(schedule);
  return serialize_snapshot(arena, index);
}

Snapshot parse_copy(const std::string& bytes) {
  auto owner = std::make_shared<std::string>(bytes);
  return parse_snapshot(reinterpret_cast<const std::uint8_t*>(owner->data()),
                        owner->size(), owner, /*mapped_bytes=*/0);
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Snapshot, SerializeParseRoundTrips) {
  const Schedule schedule = sample_schedule();
  const std::string bytes = snapshot_bytes(schedule);
  ASSERT_TRUE(is_snapshot(bytes));

  Snapshot snap = parse_copy(bytes);
  EXPECT_FALSE(snap.mapped);
  EXPECT_EQ(snap.file_bytes, bytes.size());
  EXPECT_EQ(snap.arena.task_count(), schedule.tasks().size());
  EXPECT_EQ(snap.arena.content_hash(), TaskIndex::hash_schedule(schedule));
  EXPECT_EQ(snap.index.content_hash(), snap.arena.content_hash());
  EXPECT_NO_THROW(snap.arena.validate());
  // Materialization is byte-identical on the wire.
  EXPECT_EQ(write_schedule_xml(snap.arena.to_schedule()),
            write_schedule_xml(schedule));
  // Serializing the loaded pair reproduces the exact file bytes.
  EXPECT_EQ(serialize_snapshot(snap.arena, snap.index), bytes);
}

TEST(Snapshot, SaveLoadUsesTheMapping) {
  const Schedule schedule = sample_schedule();
  const ScheduleArena arena(schedule);
  const TaskIndex index(schedule);
  const std::string path = temp_path("jedule_snapshot_test.jbin");
  const auto before = snapshot_counters();
  save_snapshot(arena, index, path);

  Snapshot snap = load_snapshot(path);
  EXPECT_TRUE(snap.mapped);
  EXPECT_GT(snap.arena.mmap_bytes(), 0u);
  EXPECT_TRUE(snap.arena.mmap_backed());
  EXPECT_EQ(snap.arena.content_hash(), arena.content_hash());
  EXPECT_NO_THROW(snap.arena.validate());

  // Index queries work straight off the mapping.
  const auto fresh = index.flatten();
  const auto loaded = snap.index.flatten();
  ASSERT_EQ(fresh.size(), loaded.size());
  for (std::size_t c = 0; c < fresh.size(); ++c) {
    ASSERT_EQ(fresh[c].entries.size(), loaded[c].entries.size());
    EXPECT_EQ(fresh[c].max_end, loaded[c].max_end);
  }

  // Appending to a mapped arena copies the columns out first
  // (copy-on-append) and keeps working.
  ScheduleArena::Event e;
  e.id = "appended";
  e.type = "computation";
  e.start = 100.0;
  e.end = 101.0;
  e.cluster_id = 0;
  e.host_start = 0;
  e.host_nb = 2;
  snap.arena.append({e});
  EXPECT_FALSE(snap.arena.mmap_backed());
  EXPECT_EQ(snap.arena.task_count(), schedule.tasks().size() + 1);

  const auto after = snapshot_counters();
  EXPECT_EQ(after.saves, before.saves + 1);
  EXPECT_EQ(after.loads, before.loads + 1);
  EXPECT_GT(after.save_bytes, before.save_bytes);
  std::filesystem::remove(path);
}

TEST(Snapshot, RegistryParsesJbinContent) {
  // .jbin goes through io::parse_schedule like any other format, so the
  // serve upload path and `--format jbin` both work.
  const Schedule schedule = sample_schedule(10);
  const std::string bytes = snapshot_bytes(schedule);
  const Schedule parsed = parse_schedule(std::string(bytes), "trace.jbin");
  EXPECT_EQ(write_schedule_xml(parsed), write_schedule_xml(schedule));
}

TEST(Snapshot, RejectsWrongVersionAndEndianness) {
  const std::string good = snapshot_bytes(sample_schedule(6));

  // Version field (offset 4, after the 4-byte magic).
  std::string bad = good;
  bad[4] = static_cast<char>(bad[4] + 1);
  EXPECT_THROW(parse_copy(bad), ParseError);

  // Endianness marker (offset 8): byte-swapped file from a big-endian
  // writer must be refused, not misread.
  bad = good;
  std::swap(bad[8], bad[11]);
  std::swap(bad[9], bad[10]);
  EXPECT_THROW(parse_copy(bad), ParseError);

  // Wrong magic entirely.
  bad = good;
  bad[0] = 'X';
  EXPECT_THROW(parse_copy(bad), ParseError);
  EXPECT_FALSE(is_snapshot(bad));
}

TEST(Snapshot, RejectsEveryTruncation) {
  const std::string good = snapshot_bytes(sample_schedule(6));
  // Every prefix shorter than the file must fail cleanly — including
  // cuts inside the header, the section table and each section.
  for (std::size_t cut = 0; cut < good.size();
       cut += (cut < 128 ? 1 : 97)) {
    const std::string trunc = good.substr(0, cut);
    EXPECT_THROW(parse_copy(trunc), ParseError) << "cut=" << cut;
  }
}

TEST(Snapshot, RejectsBitFlips) {
  const std::string good = snapshot_bytes(sample_schedule(12));
  std::mt19937 gen(1234);  // fixed seed: reproducible fuzz
  std::uniform_int_distribution<std::size_t> pos(0, good.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  const std::uint64_t good_hash = parse_copy(good).arena.content_hash();
  int rejected = 0;
  const int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    std::string bad = good;
    bad[pos(gen)] ^= static_cast<char>(1 << bit(gen));
    try {
      Snapshot snap = parse_copy(bad);
      // The only flips the CRCs don't cover are the 64-byte-alignment
      // padding gaps between sections; those leave every payload byte
      // intact, so the parsed snapshot must be identical to the original.
      snap.arena.validate();
      EXPECT_EQ(snap.arena.content_hash(), good_hash) << "trial " << t;
      EXPECT_EQ(serialize_snapshot(snap.arena, snap.index), good)
          << "trial " << t;
    } catch (const ParseError&) {
      ++rejected;
    }
  }
  // CRC32 per section + header CRC: every payload flip is caught.
  EXPECT_GT(rejected, kTrials / 2);
}

TEST(Snapshot, LoadErrorsAreClean) {
  EXPECT_THROW(load_snapshot(temp_path("jedule_no_such_file.jbin")),
               IoError);
  const std::string path = temp_path("jedule_not_a_snapshot.jbin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a snapshot at all";
  }
  EXPECT_THROW(load_snapshot(path), ParseError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace jedule::io
