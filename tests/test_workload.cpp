#include "jedule/workload/thunder.hpp"

#include <gtest/gtest.h>

#include <set>

#include "jedule/model/composite.hpp"
#include "jedule/util/error.hpp"
#include "jedule/workload/trace_schedule.hpp"

namespace jedule::workload {
namespace {

TEST(Thunder, GeneratesRequestedJobCount) {
  const auto trace = generate_thunder_day();
  EXPECT_EQ(trace.jobs.size(), 834u);  // paper: "834 jobs were executed"
  EXPECT_EQ(trace.max_procs(), 1024);
}

TEST(Thunder, AllJobsFinishWithinTheDay) {
  const auto trace = generate_thunder_day();
  for (const auto& j : trace.jobs) {
    EXPECT_GE(j.submit_time, 0.0);
    EXPECT_GT(j.run_time, 0.0);
    EXPECT_GE(j.wait_time, 0.0);
    EXPECT_LT(j.end_time(), 86400.0) << "job " << j.job_id;
    EXPECT_GE(j.allocated_procs, 1);
    EXPECT_LE(j.allocated_procs, 1024 - 20);
  }
}

TEST(Thunder, SubmitOrderedWithDenseIds) {
  const auto trace = generate_thunder_day();
  for (std::size_t i = 1; i < trace.jobs.size(); ++i) {
    EXPECT_GE(trace.jobs[i].submit_time, trace.jobs[i - 1].submit_time);
    EXPECT_EQ(trace.jobs[i].job_id,
              static_cast<std::int64_t>(i + 1));
  }
}

TEST(Thunder, HighlightedUserHasJobs) {
  const auto trace = generate_thunder_day();
  int highlighted = 0;
  std::set<int> users;
  for (const auto& j : trace.jobs) {
    users.insert(j.user_id);
    if (j.user_id == 6447) ++highlighted;
  }
  EXPECT_GE(highlighted, 10);       // enough yellow boxes to see
  EXPECT_LE(highlighted, 100);      // but a minority
  EXPECT_GE(users.size(), 20u);     // a real user population
}

TEST(Thunder, DeterministicPerSeed) {
  ThunderOptions o;
  const auto a = generate_thunder_day(o);
  const auto b = generate_thunder_day(o);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].user_id, b.jobs[i].user_id);
    EXPECT_DOUBLE_EQ(a.jobs[i].submit_time, b.jobs[i].submit_time);
  }
  o.seed = 999;
  const auto c = generate_thunder_day(o);
  bool differs = false;
  for (std::size_t i = 0; i < a.jobs.size() && i < c.jobs.size(); ++i) {
    if (a.jobs[i].run_time != c.jobs[i].run_time) differs = true;
  }
  EXPECT_TRUE(differs);
}

// -- trace -> schedule --------------------------------------------------------

io::SwfTrace tiny_trace() {
  io::SwfTrace trace;
  trace.header["MaxProcs"] = "8";
  auto add = [&trace](int id, double start, double run, int procs, int user) {
    io::SwfJob j;
    j.job_id = id;
    j.submit_time = start;
    j.wait_time = 0;
    j.run_time = run;
    j.allocated_procs = procs;
    j.requested_procs = procs;
    j.status = 1;
    j.user_id = user;
    trace.jobs.push_back(j);
  };
  add(1, 0, 10, 4, 100);
  add(2, 0, 5, 4, 101);
  add(3, 6, 3, 4, 100);   // reuses job 2's freed nodes
  add(4, 12, 2, 2, 102);
  return trace;
}

TEST(TraceToSchedule, PlacesWithoutOverlapWhenFeasible) {
  const auto result = trace_to_schedule(tiny_trace());
  EXPECT_EQ(result.overlapped_jobs, 0);
  EXPECT_EQ(result.dropped_jobs, 0);
  EXPECT_EQ(result.schedule.tasks().size(), 4u);
  EXPECT_FALSE(model::has_resource_conflicts(result.schedule));
  EXPECT_NO_THROW(result.schedule.validate());
}

TEST(TraceToSchedule, JobPropertiesCarried) {
  const auto result = trace_to_schedule(tiny_trace());
  const auto* t = result.schedule.find_task("1");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->property("user"), "100");
  EXPECT_EQ(t->property("status"), "1");
  EXPECT_EQ(t->type(), "job");
  EXPECT_DOUBLE_EQ(t->start_time(), 0.0);
  EXPECT_DOUBLE_EQ(t->end_time(), 10.0);
  EXPECT_EQ(t->total_hosts(), 4);
}

TEST(TraceToSchedule, ReservedNodesStayEmpty) {
  TraceScheduleOptions options;
  options.reserved_nodes = 5;
  const auto result = trace_to_schedule(tiny_trace(), options);
  // The three 4-processor jobs need more than the 3 usable nodes.
  EXPECT_EQ(result.dropped_jobs, 3);
  ASSERT_EQ(result.schedule.tasks().size(), 1u);  // only job 4 fits
  for (const auto& task : result.schedule.tasks()) {
    for (const auto& cfg : task.configurations()) {
      for (int h : cfg.host_list()) {
        EXPECT_GE(h, 5) << "job on reserved node";
      }
    }
  }
}

TEST(TraceToSchedule, WindowFiltersByFinishTime) {
  TraceScheduleOptions options;
  options.window_begin = 0;
  options.window_end = 9.5;  // jobs 1 (ends 10) and 4 (ends 14) fall out
  const auto result = trace_to_schedule(tiny_trace(), options);
  EXPECT_EQ(result.schedule.tasks().size(), 2u);
  EXPECT_EQ(result.schedule.find_task("1"), nullptr);
  EXPECT_NE(result.schedule.find_task("2"), nullptr);
  EXPECT_NE(result.schedule.find_task("3"), nullptr);
}

TEST(TraceToSchedule, MalformedJobsDropped) {
  io::SwfTrace trace = tiny_trace();
  io::SwfJob bad;
  bad.job_id = 9;
  bad.submit_time = 0;
  bad.run_time = -1;
  bad.allocated_procs = 2;
  trace.jobs.push_back(bad);
  const auto result = trace_to_schedule(trace);
  EXPECT_EQ(result.dropped_jobs, 1);
}

TEST(TraceToSchedule, OverCommittedTraceStillPlacesEverything) {
  io::SwfTrace trace;
  trace.header["MaxProcs"] = "4";
  for (int i = 0; i < 3; ++i) {
    io::SwfJob j;
    j.job_id = i + 1;
    j.submit_time = 0;
    j.wait_time = 0;
    j.run_time = 10;
    j.allocated_procs = 3;  // 9 procs in flight on a 4-proc machine
    j.status = 1;
    j.user_id = 1;
    trace.jobs.push_back(j);
  }
  const auto result = trace_to_schedule(trace);
  EXPECT_EQ(result.schedule.tasks().size(), 3u);
  EXPECT_GE(result.overlapped_jobs, 1);
}

TEST(TraceToSchedule, PrefersContiguousBlocks) {
  const auto result = trace_to_schedule(tiny_trace());
  for (const auto& task : result.schedule.tasks()) {
    // In this easy trace every job fits contiguously.
    EXPECT_EQ(task.configurations()[0].hosts.size(), 1u) << task.id();
  }
}

TEST(TraceToSchedule, InvalidOptionsRejected) {
  TraceScheduleOptions options;
  options.reserved_nodes = 8;  // as large as the machine
  EXPECT_THROW(trace_to_schedule(tiny_trace(), options), ArgumentError);
  io::SwfTrace empty;
  EXPECT_THROW(trace_to_schedule(empty), ValidationError);
}

TEST(ThunderEndToEnd, ConvertsRespectingReservedBand) {
  const ThunderOptions opts;
  const auto trace = generate_thunder_day(opts);
  TraceScheduleOptions conv;
  conv.reserved_nodes = opts.reserved_nodes;
  const auto result = trace_to_schedule(trace, conv);
  EXPECT_EQ(result.dropped_jobs, 0);
  // The generator's feasibility pass guarantees a real-trace property: at
  // no instant do jobs claim more processors than exist, so the replay
  // placement never conflicts.
  EXPECT_EQ(result.overlapped_jobs, 0);
  EXPECT_FALSE(model::has_resource_conflicts(result.schedule));
  // Paper Fig. 13: "jobs get only executed by nodes with a number greater
  // than 20".
  for (const auto& task : result.schedule.tasks()) {
    for (const auto& cfg : task.configurations()) {
      for (const auto& r : cfg.hosts) {
        EXPECT_GE(r.start, 20);
      }
    }
  }
  EXPECT_EQ(result.schedule.total_hosts(), 1024);
}

}  // namespace
}  // namespace jedule::workload
