#pragma once

// model::ScheduleArena — the columnar (struct-of-arrays) twin of the AoS
// Schedule (DESIGN.md §4h). Task fields live in contiguous parallel
// columns: start/end times, interned type ids, task-id bytes in one string
// pool addressed by an offset column, per-task configuration spans into a
// flat (cluster, host-range) table, and property key/value slices into a
// second string pool. Columns are either heap vectors or zero-copy views
// into an mmapped `.jbin` snapshot (io/snapshot.hpp); the first append to
// a mapped arena copies the columns out once (copy-on-append) and stays
// heap-backed from then on.
//
// On top of the raw columns the arena maintains derived structures kept
// consistent incrementally across append():
//   * per-cluster task partitions (sorted task indices) — the replacement
//     for Schedule::tasks_in_cluster's O(n) scan,
//   * per-cluster and global time bounds (O(1) lookups for the layout's
//     panel ranges),
//   * per-cluster LOD density histograms over fixed time bins,
//   * an open-addressed task-id hash table, so appending checks duplicate
//     ids in O(delta) instead of re-probing the whole table,
//   * the running FNV content hash, byte-identical to
//     TaskIndex::hash_schedule on the materialized schedule, extended in
//     O(delta) per append.
//
// The AoS Schedule stays the construction and differential-reference
// path: `ScheduleArena(schedule)` builds the columns, `to_schedule()`
// materializes them back, and the test suite cross-checks validate(),
// hashes, partitions and bounds between the two representations.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "jedule/model/schedule.hpp"

namespace jedule::model {

namespace detail {

/// One arena column: either an owned heap vector or a borrowed span into
/// an mmapped snapshot. owned() copies a borrowed span out (once), so
/// append paths can mutate.
template <typename T>
class Column {
 public:
  const T* data() const { return mapped_ ? mapped_ : vec_.data(); }
  std::size_t size() const { return mapped_ ? mapped_size_ : vec_.size(); }
  bool empty() const { return size() == 0; }
  bool mapped() const { return mapped_ != nullptr; }
  T operator[](std::size_t i) const { return data()[i]; }

  void set_mapped(const T* p, std::size_t n) {
    mapped_ = p;
    mapped_size_ = n;
    vec_.clear();
  }
  void set_owned(std::vector<T> v) {
    vec_ = std::move(v);
    mapped_ = nullptr;
    mapped_size_ = 0;
  }
  std::vector<T>& owned() {
    if (mapped_ != nullptr) {
      vec_.assign(mapped_, mapped_ + mapped_size_);
      mapped_ = nullptr;
      mapped_size_ = 0;
    }
    return vec_;
  }

  std::size_t heap_bytes() const { return vec_.capacity() * sizeof(T); }
  std::size_t mapped_bytes() const {
    return mapped_ ? mapped_size_ * sizeof(T) : 0;
  }

 private:
  const T* mapped_ = nullptr;
  std::size_t mapped_size_ = 0;
  std::vector<T> vec_;
};

}  // namespace detail

/// Columnar scan hooks. The arena's hot sweeps (min/max time bounds, the
/// end>=start sanity scan of validate()) call through these so the
/// runtime-dispatched SIMD kernels in render::kernels can serve them;
/// jed_render installs the dispatcher at static-init time and standalone
/// jed_model users fall back to the scalar loops.
struct ColumnScanOps {
  /// Writes min(a[0..n)) / max(b[0..n)) to *lo / *hi; n >= 1.
  void (*minmax_f64)(const double* a, const double* b, std::size_t n,
                     double* lo, double* hi) = nullptr;
  /// First index i with !(end[i] >= start[i]) (catches NaNs), or n.
  std::size_t (*first_violation)(const double* start, const double* end,
                                 std::size_t n) = nullptr;
};
void set_column_scan_ops(const ColumnScanOps& ops);
const ColumnScanOps& column_scan_ops();

class ScheduleArena {
 public:
  /// One appended task: a single contiguous allocation on one cluster —
  /// the shape live traces produce (`--follow`, POST /schedules/:id/events).
  struct Event {
    std::string id;
    std::string type;
    Time start = 0;
    Time end = 0;
    int cluster_id = 0;
    int host_start = 0;
    int host_nb = 1;
    /// Predecessor task ids this event depends on, each with the data
    /// volume transferred. A dep may name an existing task or an earlier
    /// event of the same batch; unknown ids fail validation.
    std::vector<std::pair<std::string, double>> deps;
  };

  /// Per-cluster LOD density histogram: bins[k] counts the tasks of the
  /// cluster whose *start* time falls in [origin + k*bin_width,
  /// origin + (k+1)*bin_width). Start counts (unlike overlap counts) are
  /// additive under bin merges, so append() re-buckets a histogram the
  /// cluster outgrew without rescanning the columns; the bin geometry is a
  /// pure function of the cluster's current time bounds, making an
  /// incrementally maintained histogram identical to a freshly built one.
  struct Density {
    Time origin = 0;
    Time bin_width = 0;
    std::vector<std::uint32_t> bins;
  };

  /// Raw column package, the snapshot loader's construction input. Every
  /// column may be mapped (zero-copy spans kept alive by `owner`) or
  /// owned. The constructor bounds-checks all offsets/ids (ParseError on
  /// inconsistency) before deriving anything, so corrupted snapshots fail
  /// cleanly instead of faulting.
  struct Raw {
    detail::Column<double> start, end;
    detail::Column<std::uint32_t> type_id;
    detail::Column<std::uint64_t> id_off;  // n+1 offsets into id_pool
    detail::Column<char> id_pool;
    detail::Column<std::uint32_t> cfg_off;  // n+1 offsets into cfg_cluster
    detail::Column<std::int32_t> cfg_cluster;
    detail::Column<std::uint32_t> range_off;  // m+1 offsets into ranges
    detail::Column<HostRange> ranges;
    detail::Column<std::uint32_t> prop_off;  // n+1 offsets (property count)
    // 4 words per property: key_off, key_len, val_off, val_len (prop_pool).
    detail::Column<std::uint64_t> prop_slices;
    detail::Column<char> prop_pool;
    // CSR dependency columns, grouped by destination task (predecessor
    // lists). All-empty when the snapshot carries no edge sections.
    detail::Column<std::uint64_t> dep_off;  // n+1 offsets, or empty
    detail::Column<std::uint32_t> dep_src;
    detail::Column<double> dep_data;

    std::vector<std::string> types;  // interned type table
    std::vector<Cluster> clusters;
    std::vector<std::pair<std::string, std::string>> meta;

    std::uint64_t tasks_hash = 0;  // running hash, pre task-count fold
    std::uint64_t edges_hash = 0;  // running CSR edge hash (0 if no edges)
    std::shared_ptr<const void> owner;   // the file mapping, when mapped
    std::size_t mapped_file_bytes = 0;   // accounting (mmap-resident)
  };

  /// Borrowed read-only view of every column (snapshot writer, tests,
  /// columnar sweeps).
  struct ColumnsView {
    std::size_t tasks = 0, configs = 0, ranges_count = 0, props = 0;
    const double* start = nullptr;
    const double* end = nullptr;
    const std::uint32_t* type_id = nullptr;
    const std::uint64_t* id_off = nullptr;
    const char* id_pool = nullptr;
    std::size_t id_pool_size = 0;
    const std::uint32_t* cfg_off = nullptr;
    const std::int32_t* cfg_cluster = nullptr;
    const std::uint32_t* range_off = nullptr;
    const HostRange* ranges = nullptr;
    const std::uint32_t* prop_off = nullptr;
    const std::uint64_t* prop_slices = nullptr;
    const char* prop_pool = nullptr;
    std::size_t prop_pool_size = 0;
    std::size_t deps = 0;                      // edge count
    const std::uint64_t* dep_off = nullptr;    // n+1, or nullptr if no edges
    const std::uint32_t* dep_src = nullptr;
    const double* dep_data = nullptr;
  };

  /// Columnarizes `schedule` (one pass; the schedule is not retained).
  explicit ScheduleArena(const Schedule& schedule);

  /// Adopts loaded columns; throws ParseError on structural inconsistency
  /// (out-of-range offsets, type ids past the table, ...).
  explicit ScheduleArena(Raw raw);

  std::size_t task_count() const { return start_.size(); }
  ColumnsView columns() const;

  std::string_view task_id(std::size_t i) const;
  std::string_view task_type(std::size_t i) const;
  Time task_start(std::size_t i) const { return start_[i]; }
  Time task_end(std::size_t i) const { return end_[i]; }

  /// Total precedence-edge count (CSR, grouped by destination task).
  std::size_t dep_count() const { return dep_src_.size(); }
  /// Half-open [first, last) span of task i's predecessor slots in
  /// dep_src()/dep_data(); {0, 0} when the arena has no edges at all.
  std::pair<std::size_t, std::size_t> task_dep_span(std::size_t i) const {
    if (dep_off_.empty()) return {0, 0};
    return {static_cast<std::size_t>(dep_off_[i]),
            static_cast<std::size_t>(dep_off_[i + 1])};
  }
  const std::uint32_t* dep_src() const { return dep_src_.data(); }
  const double* dep_data() const { return dep_data_.data(); }

  const std::vector<Cluster>& clusters() const { return clusters_; }
  const std::vector<std::pair<std::string, std::string>>& meta() const {
    return meta_;
  }
  const std::vector<std::string>& types() const { return types_; }

  std::optional<TimeRange> time_range() const;
  /// O(1): bounds of the tasks with a configuration in `cluster_id`,
  /// maintained across append(); nullopt if none.
  std::optional<TimeRange> cluster_time_range(int cluster_id) const;
  /// Sorted task indices with a configuration in `cluster_id`; nullptr if
  /// none (or unknown cluster).
  const std::vector<std::uint32_t>* cluster_tasks(int cluster_id) const;
  /// Density histogram for `cluster_id`; nullptr if the cluster is empty.
  const Density* density(int cluster_id) const;

  /// Byte-identical to TaskIndex::hash_schedule(to_schedule()). Covers
  /// the task columns only (edges excluded) so task-only tooling — the
  /// snapshot header, TaskIndex — keeps matching historical hashes.
  std::uint64_t content_hash() const;
  /// content_hash() when the arena has no edges (so legacy ids and dedup
  /// keys are unchanged), else content_hash() folded with the running
  /// edge hash and edge count. This is the invalidation key for caches
  /// whose output depends on edges (TileCache, serve ETags).
  std::uint64_t combined_hash() const;
  std::uint64_t tasks_hash() const { return tasks_hash_; }
  /// Running FNV over the CSR edge triples (src, dst, data), extended in
  /// O(delta) per append.
  std::uint64_t edges_hash() const { return edges_hash_; }
  /// Bumped once per successful append().
  std::uint64_t version() const { return version_; }

  /// Semantic validation over the columns — the same invariants (and
  /// error messages) as Schedule::validate(), plus it seeds the id table
  /// used for O(delta) duplicate checks on append.
  void validate() const;

  /// Snapshot-load validation: the numeric invariants of validate() (time
  /// sanity, non-empty ids and configurations, host-range bounds and
  /// overlap) as wide column sweeps, but without hashing a million task
  /// ids into the duplicate-id table — id uniqueness was certified when
  /// the snapshot was written and every column is CRC-covered, so the
  /// table is seeded lazily by the first append() instead. Roughly 10x
  /// cheaper than validate() on large arenas.
  void validate_columns() const;

  /// Materializes the AoS schedule (snapshot load / render path).
  Schedule to_schedule() const;

  /// Appends `events` as new tasks: validates them (duplicate ids via the
  /// persistent id table, host bounds, time sanity) without touching the
  /// existing rows, extends every column and derived structure, and
  /// continues the content hash — O(delta) total. Throws ValidationError
  /// leaving the arena unchanged.
  void append(const std::vector<Event>& events);

  std::size_t heap_bytes() const;
  std::size_t mmap_bytes() const;
  bool mmap_backed() const;

 private:
  struct PerCluster {
    TimeRange range{0, 0};
    bool any = false;
    std::vector<std::uint32_t> tasks;  // ascending
    Density density;
  };

  void check_structure() const;  // throws ParseError
  void check_deps() const;       // throws ValidationError
  void build_derived();          // partitions, bounds, density, id table
  void check_config_ranges(std::string_view id, const Cluster& cluster,
                           std::size_t r0, std::size_t r1) const;
  void ensure_owned();           // copy-on-append out of the mapping
  void id_table_insert(std::uint32_t task, bool* duplicate) const;
  void id_table_grow() const;
  std::uint32_t id_table_find(std::string_view id) const;  // task or npos
  void bump_density(PerCluster* pc, Time start);
  void hash_row(std::size_t i);  // folds row i into tasks_hash_
  void hash_edge(std::uint32_t src, std::uint32_t dst, double data);
  void materialize_dep_offsets();  // dep_off_: empty -> task_count()+1 zeros

  detail::Column<double> start_, end_;
  detail::Column<std::uint32_t> type_id_;
  detail::Column<std::uint64_t> id_off_;
  detail::Column<char> id_pool_;
  detail::Column<std::uint32_t> cfg_off_;
  detail::Column<std::int32_t> cfg_cluster_;
  detail::Column<std::uint32_t> range_off_;
  detail::Column<HostRange> ranges_;
  detail::Column<std::uint32_t> prop_off_;
  detail::Column<std::uint64_t> prop_slices_;
  detail::Column<char> prop_pool_;
  // CSR predecessor lists grouped by destination task. dep_off_ is either
  // empty (the arena never saw an edge) or exactly task_count()+1 offsets;
  // the first appended edge materializes the offsets, so edge-free arenas
  // pay nothing.
  detail::Column<std::uint64_t> dep_off_;
  detail::Column<std::uint32_t> dep_src_;
  detail::Column<double> dep_data_;

  std::vector<std::string> types_;
  std::vector<Cluster> clusters_;
  std::map<int, std::size_t> cluster_slot_;  // id -> clusters_ index
  std::vector<std::pair<std::string, std::string>> meta_;

  std::map<int, PerCluster> per_cluster_;
  TimeRange range_{0, 0};
  bool any_tasks_ = false;

  // Open-addressed task-id table: slot -> task index (kIdEmpty free),
  // power-of-two capacity. Mutable: validate() seeds it lazily.
  mutable std::vector<std::uint32_t> id_slots_;
  mutable std::size_t id_count_ = 0;

  std::uint64_t tasks_hash_ = 0;
  std::uint64_t edges_hash_ = 0;
  std::uint64_t version_ = 0;
  std::shared_ptr<const void> owner_;
  std::size_t mapped_file_bytes_ = 0;
};

using ArenaPtr = std::shared_ptr<const ScheduleArena>;

}  // namespace jedule::model
