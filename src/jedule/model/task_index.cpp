#include "jedule/model/task_index.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "jedule/model/arena.hpp"
#include "jedule/model/fnv.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/parallel.hpp"

namespace jedule::model {

namespace {

using detail::fnv_double;
using detail::fnv_string;
using detail::fnv_u64;

// Beyond this many segments per cluster the per-query segment loop starts
// to cost more than one amortized merge; the extension ctor compacts back
// to a single segment.
constexpr std::size_t kMaxSegments = 8;

// FNV-1a over the cluster table — the prefix of the schedule hash.
std::uint64_t hash_clusters(const Schedule& schedule) {
  std::uint64_t h = detail::kFnvOffset;
  fnv_u64(&h, schedule.clusters().size());
  for (const auto& c : schedule.clusters()) {
    fnv_u64(&h, static_cast<std::uint64_t>(c.id));
    fnv_u64(&h, static_cast<std::uint64_t>(c.hosts));
    fnv_string(&h, c.name);
  }
  return h;
}

void hash_task(std::uint64_t* h, const Task& t) {
  fnv_string(h, t.id());
  fnv_string(h, t.type());
  fnv_double(h, t.start_time());
  fnv_double(h, t.end_time());
  fnv_u64(h, t.configurations().size());
  for (const auto& cfg : t.configurations()) {
    fnv_u64(h, static_cast<std::uint64_t>(cfg.cluster_id));
    for (const auto& hr : cfg.hosts) {
      fnv_u64(h, static_cast<std::uint64_t>(hr.start));
      fnv_u64(h, static_cast<std::uint64_t>(hr.nb));
    }
  }
  // Properties drive highlighting, so they are part of the identity.
  fnv_u64(h, t.properties().size());
  for (const auto& [k, v] : t.properties()) {
    fnv_string(h, k);
    fnv_string(h, v);
  }
}

// Recursively fills max_end[mid] with the maximum end time over
// entries[lo, hi) — the implicit-BST augmentation of the sorted array.
double build_max_end(const std::vector<TaskIndex::Entry>& entries,
                     std::vector<double>* max_end, std::size_t lo,
                     std::size_t hi) {
  if (lo >= hi) return -std::numeric_limits<double>::infinity();
  const std::size_t mid = lo + (hi - lo) / 2;
  double m = entries[mid].end;
  m = std::max(m, build_max_end(entries, max_end, lo, mid));
  m = std::max(m, build_max_end(entries, max_end, mid + 1, hi));
  (*max_end)[mid] = m;
  return m;
}

void query_range(const TaskIndex::Entry* entries, const double* max_end,
                 std::size_t lo, std::size_t hi, double t0, double t1,
                 const std::function<void(const TaskIndex::Entry&)>& fn) {
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    // Nothing in this subtree ends late enough to reach the window.
    if (max_end[mid] < t0) return;
    query_range(entries, max_end, lo, mid, t0, t1, fn);
    const TaskIndex::Entry& e = entries[mid];
    // Entries right of mid begin no earlier than e; once e starts past
    // the window, the right subtree cannot intersect either.
    if (e.begin > t1) return;
    if (e.end >= t0) fn(e);
    lo = mid + 1;  // descend right iteratively (tail call)
  }
}

// The heap backing of one segment: the shared owner keeps both arrays
// alive for as long as any index generation references them.
struct SegmentStorage {
  std::vector<TaskIndex::Entry> entries;
  std::vector<double> max_end;
};

}  // namespace

TaskIndex::Segment TaskIndex::make_segment(std::vector<Entry> entries) {
  auto storage = std::make_shared<SegmentStorage>();
  storage->entries = std::move(entries);
  std::sort(storage->entries.begin(), storage->entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.task < b.task;
            });
  storage->max_end.assign(storage->entries.size(), 0.0);
  build_max_end(storage->entries, &storage->max_end, 0,
                storage->entries.size());

  auto tasks = std::make_shared<std::vector<std::uint32_t>>();
  tasks->reserve(storage->entries.size());
  for (const auto& e : storage->entries) tasks->push_back(e.task);
  std::sort(tasks->begin(), tasks->end());
  tasks->erase(std::unique(tasks->begin(), tasks->end()), tasks->end());

  Segment seg;
  seg.entries = storage->entries.data();
  seg.max_end = storage->max_end.data();
  seg.count = storage->entries.size();
  seg.owner = std::move(storage);
  seg.tasks = std::move(tasks);
  return seg;
}

void TaskIndex::extend(const Schedule& schedule, std::size_t first) {
  const auto& tasks = schedule.tasks();
  auto cluster_slot = [this](int id) -> ClusterIndex* {
    for (auto& ci : clusters_) {
      if (ci.cluster_id == id) return &ci;
    }
    return nullptr;
  };

  std::vector<std::vector<Entry>> fresh(clusters_.size());
  double lo = 0, hi = 0;
  bool any = false;
  for (std::size_t i = first; i < tasks.size(); ++i) {
    const Task& t = tasks[i];
    if (!any) {
      lo = t.start_time();
      hi = t.end_time();
      any = true;
    } else {
      lo = std::min(lo, t.start_time());
      hi = std::max(hi, t.end_time());
    }
    for (const auto& cfg : t.configurations()) {
      ClusterIndex* ci = cluster_slot(cfg.cluster_id);
      if (ci == nullptr) continue;  // validate() rejects this anyway
      for (const auto& hr : cfg.hosts) {
        Entry e;
        e.begin = t.start_time();
        e.end = t.end_time();
        e.host_start = hr.start;
        e.host_end = hr.start + hr.nb - 1;
        e.task = static_cast<std::uint32_t>(i);
        fresh[static_cast<std::size_t>(ci - clusters_.data())].push_back(e);
      }
    }
    hash_task(&tasks_hash_, t);
  }
  finish_extend(&fresh, any, lo, hi, tasks.size(), tasks_hash_);
}

void TaskIndex::finish_extend(std::vector<std::vector<Entry>>* fresh,
                              bool any, double lo, double hi,
                              std::size_t new_count,
                              std::uint64_t new_tasks_hash) {
  if (any) {
    if (!time_range_) {
      time_range_ = TimeRange{lo, hi};
    } else {
      time_range_->begin = std::min(time_range_->begin, lo);
      time_range_->end = std::max(time_range_->end, hi);
    }
  }

  // Per-cluster segment builds (sort + BST augmentation) are independent;
  // spread them over the build workers. The segments are a pure function
  // of the entry lists, so the index is identical at any thread count.
  std::vector<std::size_t> pending;
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    if (!(*fresh)[c].empty()) pending.push_back(c);
  }
  if (build_threads_ > 1 && pending.size() > 1) {
    std::vector<Segment> built(pending.size());
    util::parallel_for(pending.size(), build_threads_, [&](std::size_t k) {
      built[k] = make_segment(std::move((*fresh)[pending[k]]));
    });
    for (std::size_t k = 0; k < pending.size(); ++k) {
      clusters_[pending[k]].segments.push_back(std::move(built[k]));
      compact_cluster(&clusters_[pending[k]]);
    }
  } else {
    for (const std::size_t c : pending) {
      clusters_[c].segments.push_back(make_segment(std::move((*fresh)[c])));
      compact_cluster(&clusters_[c]);
    }
  }

  task_count_ = new_count;
  tasks_hash_ = new_tasks_hash;
  content_hash_ = tasks_hash_;
  fnv_u64(&content_hash_, task_count_);
}

void TaskIndex::compact_cluster(ClusterIndex* ci) {
  if (ci->segments.size() <= kMaxSegments) return;
  std::vector<Entry> all;
  std::size_t total = 0;
  for (const auto& s : ci->segments) total += s.count;
  all.reserve(total);
  for (const auto& s : ci->segments) {
    all.insert(all.end(), s.entries, s.entries + s.count);
  }
  ci->segments.clear();
  ci->segments.push_back(make_segment(std::move(all)));
}

TaskIndex::TaskIndex(const Schedule& schedule, int threads)
    : build_threads_(std::max(1, threads)) {
  clusters_.reserve(schedule.clusters().size());
  for (const auto& c : schedule.clusters()) {
    ClusterIndex ci;
    ci.cluster_id = c.id;
    clusters_.push_back(std::move(ci));
  }
  tasks_hash_ = hash_clusters(schedule);
  extend(schedule, 0);
}

TaskIndex::TaskIndex(const TaskIndex& base, const Schedule& schedule,
                     std::size_t first_new)
    : clusters_(base.clusters_),
      task_count_(base.task_count_),
      time_range_(base.time_range_),
      content_hash_(base.content_hash_),
      tasks_hash_(base.tasks_hash_) {
  JED_ASSERT(first_new == base.task_count_);
  JED_ASSERT(schedule.tasks().size() >= first_new);
  // The hash continuation is only valid when the cluster table is the one
  // the base hashed.
  JED_ASSERT(schedule.clusters().size() == clusters_.size());
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    JED_ASSERT(schedule.clusters()[c].id == clusters_[c].cluster_id);
  }
  extend(schedule, first_new);
}

TaskIndex::TaskIndex(const TaskIndex& base, const ScheduleArena& arena,
                     std::size_t first_new)
    : clusters_(base.clusters_),
      task_count_(base.task_count_),
      time_range_(base.time_range_),
      content_hash_(base.content_hash_),
      tasks_hash_(base.tasks_hash_) {
  JED_ASSERT(first_new == base.task_count_);
  JED_ASSERT(arena.task_count() >= first_new);
  JED_ASSERT(arena.clusters().size() == clusters_.size());
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    JED_ASSERT(arena.clusters()[c].id == clusters_[c].cluster_id);
  }

  const ScheduleArena::ColumnsView cols = arena.columns();
  auto cluster_slot = [this](int id) -> ClusterIndex* {
    for (auto& ci : clusters_) {
      if (ci.cluster_id == id) return &ci;
    }
    return nullptr;
  };

  std::vector<std::vector<Entry>> fresh(clusters_.size());
  double lo = 0, hi = 0;
  bool any = false;
  for (std::size_t i = first_new; i < cols.tasks; ++i) {
    const double b = cols.start[i];
    const double e = cols.end[i];
    if (!any) {
      lo = b;
      hi = e;
      any = true;
    } else {
      lo = std::min(lo, b);
      hi = std::max(hi, e);
    }
    for (std::uint32_t c = cols.cfg_off[i]; c < cols.cfg_off[i + 1]; ++c) {
      ClusterIndex* ci = cluster_slot(cols.cfg_cluster[c]);
      if (ci == nullptr) continue;  // append() rejects this anyway
      for (std::uint32_t r = cols.range_off[c]; r < cols.range_off[c + 1];
           ++r) {
        Entry en;
        en.begin = b;
        en.end = e;
        en.host_start = cols.ranges[r].start;
        en.host_end = cols.ranges[r].start + cols.ranges[r].nb - 1;
        en.task = static_cast<std::uint32_t>(i);
        fresh[static_cast<std::size_t>(ci - clusters_.data())].push_back(en);
      }
    }
  }
  // The arena extended the same running FNV chain row by row; adopting it
  // skips rehashing and stays byte-identical to the AoS extension path.
  finish_extend(&fresh, any, lo, hi, cols.tasks, arena.tasks_hash());
  JED_ASSERT(content_hash_ == arena.content_hash());
}

TaskIndex::TaskIndex(Raw raw)
    : task_count_(raw.task_count),
      time_range_(raw.time_range),
      content_hash_(raw.content_hash),
      tasks_hash_(raw.tasks_hash) {
  clusters_.reserve(raw.clusters.size());
  for (const auto& rc : raw.clusters) {
    ClusterIndex ci;
    ci.cluster_id = rc.cluster_id;
    if (rc.count > 0) {
      auto tasks = std::make_shared<std::vector<std::uint32_t>>();
      tasks->reserve(rc.count);
      for (std::size_t i = 0; i < rc.count; ++i) {
        tasks->push_back(rc.entries[i].task);
      }
      std::sort(tasks->begin(), tasks->end());
      tasks->erase(std::unique(tasks->begin(), tasks->end()), tasks->end());

      Segment seg;
      seg.entries = rc.entries;
      seg.max_end = rc.max_end;
      seg.count = rc.count;
      seg.owner = raw.owner;
      seg.tasks = std::move(tasks);
      ci.segments.push_back(std::move(seg));
    }
    clusters_.push_back(std::move(ci));
  }
}

std::uint64_t TaskIndex::hash_schedule(const Schedule& schedule) {
  std::uint64_t h = hash_clusters(schedule);
  for (const auto& t : schedule.tasks()) hash_task(&h, t);
  // The count folds in last so the per-task chain above is resumable: an
  // O(delta) append rehashes only the new tasks, then re-folds the count.
  fnv_u64(&h, schedule.tasks().size());
  return h;
}

const TaskIndex::ClusterIndex* TaskIndex::cluster(int id) const {
  for (const auto& ci : clusters_) {
    if (ci.cluster_id == id) return &ci;
  }
  return nullptr;
}

std::size_t TaskIndex::entry_count(int cluster_id) const {
  const ClusterIndex* ci = cluster(cluster_id);
  if (ci == nullptr) return 0;
  std::size_t n = 0;
  for (const auto& s : ci->segments) n += s.count;
  return n;
}

std::size_t TaskIndex::segment_count(int cluster_id) const {
  const ClusterIndex* ci = cluster(cluster_id);
  return ci ? ci->segments.size() : 0;
}

void TaskIndex::query(int cluster_id, double t0, double t1,
                      const std::function<void(const Entry&)>& fn) const {
  const ClusterIndex* ci = cluster(cluster_id);
  if (ci == nullptr) return;
  for (const auto& s : ci->segments) {
    query_range(s.entries, s.max_end, 0, s.count, t0, t1, fn);
  }
}

void TaskIndex::collect_tasks(int cluster_id, double t0, double t1,
                              std::vector<std::uint32_t>* out) const {
  const std::size_t first = out->size();
  query(cluster_id, t0, t1,
        [out](const Entry& e) { out->push_back(e.task); });
  std::sort(out->begin() + static_cast<std::ptrdiff_t>(first), out->end());
  out->erase(std::unique(out->begin() + static_cast<std::ptrdiff_t>(first),
                         out->end()),
             out->end());
}

std::size_t TaskIndex::count_upto(int cluster_id, double t0, double t1,
                                  std::size_t limit) const {
  std::size_t n = 0;
  struct Done {};  // early exit once the caller's threshold is settled
  try {
    query(cluster_id, t0, t1, [&n, limit](const Entry&) {
      if (++n >= limit) throw Done{};
    });
  } catch (const Done&) {
  }
  return n;
}

const TaskIndex::Entry* TaskIndex::topmost_at(int cluster_id, double t,
                                              int h) const {
  const Entry* best = nullptr;
  query(cluster_id, t, t, [&best, h](const Entry& e) {
    if (h < e.host_start || h > e.host_end) return;
    if (best == nullptr || e.task > best->task) best = &e;
  });
  return best;
}

std::vector<std::uint32_t> TaskIndex::cluster_tasks(int cluster_id) const {
  std::vector<std::uint32_t> out;
  const ClusterIndex* ci = cluster(cluster_id);
  if (ci == nullptr) return out;
  std::size_t total = 0;
  for (const auto& s : ci->segments) total += s.tasks->size();
  out.reserve(total);
  // Extension segments always cover strictly later task indices than the
  // segments before them, so the per-segment sorted lists concatenate
  // into one sorted, duplicate-free partition.
  for (const auto& s : ci->segments) {
    out.insert(out.end(), s.tasks->begin(), s.tasks->end());
  }
  return out;
}

std::vector<TaskIndex::FlatCluster> TaskIndex::flatten() const {
  std::vector<FlatCluster> out;
  out.reserve(clusters_.size());
  for (const auto& ci : clusters_) {
    FlatCluster fc;
    fc.cluster_id = ci.cluster_id;
    std::size_t total = 0;
    for (const auto& s : ci.segments) total += s.count;
    fc.entries.reserve(total);
    for (const auto& s : ci.segments) {
      fc.entries.insert(fc.entries.end(), s.entries, s.entries + s.count);
    }
    if (ci.segments.size() > 1) {
      std::sort(fc.entries.begin(), fc.entries.end(),
                [](const Entry& a, const Entry& b) {
                  if (a.begin != b.begin) return a.begin < b.begin;
                  return a.task < b.task;
                });
    }
    fc.max_end.assign(fc.entries.size(), 0.0);
    build_max_end(fc.entries, &fc.max_end, 0, fc.entries.size());
    out.push_back(std::move(fc));
  }
  return out;
}

}  // namespace jedule::model
