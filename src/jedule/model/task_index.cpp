#include "jedule/model/task_index.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>

namespace jedule::model {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void hash_bytes(std::uint64_t* h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void hash_u64(std::uint64_t* h, std::uint64_t v) { hash_bytes(h, &v, 8); }

void hash_double(std::uint64_t* h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  hash_u64(h, bits);
}

void hash_string(std::uint64_t* h, const std::string& s) {
  hash_u64(h, s.size());
  hash_bytes(h, s.data(), s.size());
}

// Recursively fills max_end[mid] with the maximum end time over
// entries[lo, hi) — the implicit-BST augmentation of the sorted array.
double build_max_end(const std::vector<TaskIndex::Entry>& entries,
                     std::vector<double>* max_end, std::size_t lo,
                     std::size_t hi) {
  if (lo >= hi) return -std::numeric_limits<double>::infinity();
  const std::size_t mid = lo + (hi - lo) / 2;
  double m = entries[mid].end;
  m = std::max(m, build_max_end(entries, max_end, lo, mid));
  m = std::max(m, build_max_end(entries, max_end, mid + 1, hi));
  (*max_end)[mid] = m;
  return m;
}

void query_range(const std::vector<TaskIndex::Entry>& entries,
                 const std::vector<double>& max_end, std::size_t lo,
                 std::size_t hi, double t0, double t1,
                 const std::function<void(const TaskIndex::Entry&)>& fn) {
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    // Nothing in this subtree ends late enough to reach the window.
    if (max_end[mid] < t0) return;
    query_range(entries, max_end, lo, mid, t0, t1, fn);
    const TaskIndex::Entry& e = entries[mid];
    // Entries right of mid begin no earlier than e; once e starts past
    // the window, the right subtree cannot intersect either.
    if (e.begin > t1) return;
    if (e.end >= t0) fn(e);
    lo = mid + 1;  // descend right iteratively (tail call)
  }
}

}  // namespace

TaskIndex::TaskIndex(const Schedule& schedule) {
  task_count_ = schedule.tasks().size();
  content_hash_ = hash_schedule(schedule);

  clusters_.reserve(schedule.clusters().size());
  for (const auto& c : schedule.clusters()) {
    ClusterIndex ci;
    ci.cluster_id = c.id;
    clusters_.push_back(std::move(ci));
  }
  auto cluster_slot = [this](int id) -> ClusterIndex* {
    for (auto& ci : clusters_) {
      if (ci.cluster_id == id) return &ci;
    }
    return nullptr;
  };

  double lo = 0, hi = 0;
  bool any = false;
  for (std::size_t i = 0; i < schedule.tasks().size(); ++i) {
    const Task& t = schedule.tasks()[i];
    if (!any) {
      lo = t.start_time();
      hi = t.end_time();
      any = true;
    } else {
      lo = std::min(lo, t.start_time());
      hi = std::max(hi, t.end_time());
    }
    for (const auto& cfg : t.configurations()) {
      ClusterIndex* ci = cluster_slot(cfg.cluster_id);
      if (ci == nullptr) continue;  // validate() rejects this anyway
      for (const auto& hr : cfg.hosts) {
        Entry e;
        e.begin = t.start_time();
        e.end = t.end_time();
        e.host_start = hr.start;
        e.host_end = hr.start + hr.nb - 1;
        e.task = static_cast<std::uint32_t>(i);
        ci->entries.push_back(e);
      }
    }
  }
  if (any) time_range_ = TimeRange{lo, hi};

  for (auto& ci : clusters_) {
    std::sort(ci.entries.begin(), ci.entries.end(),
              [](const Entry& a, const Entry& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                return a.task < b.task;
              });
    ci.max_end.assign(ci.entries.size(), 0.0);
    build_max_end(ci.entries, &ci.max_end, 0, ci.entries.size());
  }
}

std::uint64_t TaskIndex::hash_schedule(const Schedule& schedule) {
  std::uint64_t h = kFnvOffset;
  hash_u64(&h, schedule.clusters().size());
  for (const auto& c : schedule.clusters()) {
    hash_u64(&h, static_cast<std::uint64_t>(c.id));
    hash_u64(&h, static_cast<std::uint64_t>(c.hosts));
    hash_string(&h, c.name);
  }
  hash_u64(&h, schedule.tasks().size());
  for (const auto& t : schedule.tasks()) {
    hash_string(&h, t.id());
    hash_string(&h, t.type());
    hash_double(&h, t.start_time());
    hash_double(&h, t.end_time());
    hash_u64(&h, t.configurations().size());
    for (const auto& cfg : t.configurations()) {
      hash_u64(&h, static_cast<std::uint64_t>(cfg.cluster_id));
      for (const auto& hr : cfg.hosts) {
        hash_u64(&h, static_cast<std::uint64_t>(hr.start));
        hash_u64(&h, static_cast<std::uint64_t>(hr.nb));
      }
    }
    // Properties drive highlighting, so they are part of the identity.
    hash_u64(&h, t.properties().size());
    for (const auto& [k, v] : t.properties()) {
      hash_string(&h, k);
      hash_string(&h, v);
    }
  }
  return h;
}

const TaskIndex::ClusterIndex* TaskIndex::cluster(int id) const {
  for (const auto& ci : clusters_) {
    if (ci.cluster_id == id) return &ci;
  }
  return nullptr;
}

std::size_t TaskIndex::entry_count(int cluster_id) const {
  const ClusterIndex* ci = cluster(cluster_id);
  return ci ? ci->entries.size() : 0;
}

void TaskIndex::query(int cluster_id, double t0, double t1,
                      const std::function<void(const Entry&)>& fn) const {
  const ClusterIndex* ci = cluster(cluster_id);
  if (ci == nullptr || ci->entries.empty()) return;
  query_range(ci->entries, ci->max_end, 0, ci->entries.size(), t0, t1, fn);
}

void TaskIndex::collect_tasks(int cluster_id, double t0, double t1,
                              std::vector<std::uint32_t>* out) const {
  const std::size_t first = out->size();
  query(cluster_id, t0, t1,
        [out](const Entry& e) { out->push_back(e.task); });
  std::sort(out->begin() + static_cast<std::ptrdiff_t>(first), out->end());
  out->erase(std::unique(out->begin() + static_cast<std::ptrdiff_t>(first),
                         out->end()),
             out->end());
}

std::size_t TaskIndex::count_upto(int cluster_id, double t0, double t1,
                                  std::size_t limit) const {
  std::size_t n = 0;
  struct Done {};  // early exit once the caller's threshold is settled
  try {
    query(cluster_id, t0, t1, [&n, limit](const Entry&) {
      if (++n >= limit) throw Done{};
    });
  } catch (const Done&) {
  }
  return n;
}

const TaskIndex::Entry* TaskIndex::topmost_at(int cluster_id, double t,
                                              int h) const {
  const Entry* best = nullptr;
  query(cluster_id, t, t, [&best, h](const Entry& e) {
    if (h < e.host_start || h > e.host_end) return;
    if (best == nullptr || e.task > best->task) best = &e;
  });
  return best;
}

}  // namespace jedule::model
