#include "jedule/model/stats.hpp"

#include <algorithm>

#include "jedule/util/error.hpp"

namespace jedule::model {

namespace {

bool type_selected(const Task& t, const std::vector<std::string>& filter) {
  if (filter.empty()) return true;
  return std::find(filter.begin(), filter.end(), t.type()) != filter.end();
}

/// Total length of the union of half-open intervals.
double union_length(std::vector<std::pair<Time, Time>>& iv) {
  std::sort(iv.begin(), iv.end());
  double total = 0;
  Time cur_begin = 0;
  Time cur_end = 0;
  bool open = false;
  for (const auto& [b, e] : iv) {
    if (e <= b) continue;
    if (!open || b > cur_end) {
      if (open) total += cur_end - cur_begin;
      cur_begin = b;
      cur_end = e;
      open = true;
    } else {
      cur_end = std::max(cur_end, e);
    }
  }
  if (open) total += cur_end - cur_begin;
  return total;
}

}  // namespace

ScheduleStats compute_stats(const Schedule& schedule,
                            const std::vector<std::string>& type_filter) {
  ScheduleStats s;
  const int hosts = schedule.total_hosts();
  s.busy_by_resource.assign(static_cast<std::size_t>(hosts), 0.0);

  std::vector<std::vector<std::pair<Time, Time>>> per_resource(
      static_cast<std::size_t>(hosts));

  bool any = false;
  for (const auto& t : schedule.tasks()) {
    if (!type_selected(t, type_filter)) continue;
    ++s.task_count;
    if (!any) {
      s.begin = t.start_time();
      s.end = t.end_time();
      any = true;
    } else {
      s.begin = std::min(s.begin, t.start_time());
      s.end = std::max(s.end, t.end_time());
    }
    const double area = t.duration() * t.total_hosts();
    s.busy_area += area;
    s.area_by_type[t.type()] += area;
    for (const auto& cfg : t.configurations()) {
      for (const auto& range : cfg.hosts) {
        for (int h = range.start; h < range.start + range.nb; ++h) {
          const int g = schedule.global_resource_index(cfg.cluster_id, h);
          per_resource[static_cast<std::size_t>(g)].emplace_back(
              t.start_time(), t.end_time());
        }
      }
    }
  }

  for (std::size_t g = 0; g < per_resource.size(); ++g) {
    s.busy_by_resource[g] = union_length(per_resource[g]);
    s.covered_time += s.busy_by_resource[g];
  }

  s.makespan = any ? s.end - s.begin : 0.0;
  const double capacity = s.makespan * hosts;
  s.idle_time = capacity - s.covered_time;
  s.utilization = capacity > 0 ? s.covered_time / capacity : 0.0;
  return s;
}

std::vector<int> concurrency_profile(
    const Schedule& schedule, int samples,
    const std::vector<std::string>& type_filter) {
  JED_ASSERT(samples > 0);
  std::vector<int> profile(static_cast<std::size_t>(samples), 0);
  auto range = schedule.time_range();
  if (!range || range->length() <= 0) return profile;

  // Busy resource count at the *midpoint* of each sample bucket, computed
  // via a sweep over per-resource busy indicators.
  const int hosts = schedule.total_hosts();
  std::vector<std::vector<std::pair<Time, Time>>> per_resource(
      static_cast<std::size_t>(hosts));
  for (const auto& t : schedule.tasks()) {
    if (!type_selected(t, type_filter)) continue;
    for (const auto& cfg : t.configurations()) {
      for (const auto& r : cfg.hosts) {
        for (int h = r.start; h < r.start + r.nb; ++h) {
          const int g = schedule.global_resource_index(cfg.cluster_id, h);
          per_resource[static_cast<std::size_t>(g)].emplace_back(
              t.start_time(), t.end_time());
        }
      }
    }
  }
  for (auto& iv : per_resource) std::sort(iv.begin(), iv.end());

  for (int i = 0; i < samples; ++i) {
    const Time t = range->begin +
                   range->length() * (static_cast<double>(i) + 0.5) /
                       static_cast<double>(samples);
    int busy = 0;
    for (const auto& iv : per_resource) {
      for (const auto& [b, e] : iv) {
        if (b > t) break;
        if (t < e) {
          ++busy;
          break;
        }
      }
    }
    profile[static_cast<std::size_t>(i)] = busy;
  }
  return profile;
}

double fraction_of_time_with_busy(
    const Schedule& schedule, int k,
    const std::vector<std::string>& type_filter) {
  constexpr int kSamples = 2048;
  const auto profile = concurrency_profile(schedule, kSamples, type_filter);
  long hits = 0;
  for (int busy : profile) {
    if (busy == k) ++hits;
  }
  return static_cast<double>(hits) / kSamples;
}

}  // namespace jedule::model
