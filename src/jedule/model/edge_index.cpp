#include "jedule/model/edge_index.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "jedule/model/arena.hpp"
#include "jedule/model/fnv.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/parallel.hpp"

namespace jedule::model {

namespace {

using detail::fnv_double;
using detail::fnv_u64;

constexpr std::uint32_t kNoVia = 0xFFFFFFFFu;

// Beyond this many segments per cluster the per-query segment loop starts
// to cost more than one amortized merge; the extension ctor compacts back
// to a single segment (same policy as TaskIndex).
constexpr std::size_t kMaxSegments = 8;

bool entry_less(const EdgeIndex::Entry& a, const EdgeIndex::Entry& b) {
  if (a.begin != b.begin) return a.begin < b.begin;
  if (a.src != b.src) return a.src < b.src;
  return a.dst < b.dst;
}

// Recursively fills max_end[mid] with the maximum end time over
// entries[lo, hi) — the implicit-BST augmentation of the sorted array.
double build_max_end(const std::vector<EdgeIndex::Entry>& entries,
                     std::vector<double>* max_end, std::size_t lo,
                     std::size_t hi) {
  if (lo >= hi) return -std::numeric_limits<double>::infinity();
  const std::size_t mid = lo + (hi - lo) / 2;
  double m = entries[mid].end;
  m = std::max(m, build_max_end(entries, max_end, lo, mid));
  m = std::max(m, build_max_end(entries, max_end, mid + 1, hi));
  (*max_end)[mid] = m;
  return m;
}

void query_range(const EdgeIndex::Entry* entries, const double* max_end,
                 std::size_t lo, std::size_t hi, double t0, double t1,
                 const std::function<void(const EdgeIndex::Entry&)>& fn) {
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (max_end[mid] < t0) return;
    query_range(entries, max_end, lo, mid, t0, t1, fn);
    const EdgeIndex::Entry& e = entries[mid];
    if (e.begin > t1) return;
    if (e.end >= t0) fn(e);
    lo = mid + 1;  // descend right iteratively (tail call)
  }
}

struct SegmentStorage {
  std::vector<EdgeIndex::Entry> entries;
  std::vector<double> max_end;
};

// Plain CSR (dst-major predecessor lists) of a schedule's dependency
// vector: the shared shape both the DP and entry emission iterate. The
// stable counting sort preserves per-destination insertion order, which
// is exactly the order dag::Dag::predecessors reports — the DP tie-break
// depends on it.
struct Csr {
  std::vector<std::uint64_t> off;  // n+1
  std::vector<std::uint32_t> src;
  std::vector<double> data;
};

Csr build_csr(const Schedule& schedule) {
  const std::size_t n = schedule.tasks().size();
  const auto& deps = schedule.dependencies();
  Csr csr;
  csr.off.assign(n + 1, 0);
  for (const Dependency& d : deps) ++csr.off[d.dst + 1];
  for (std::size_t i = 0; i < n; ++i) csr.off[i + 1] += csr.off[i];
  csr.src.resize(deps.size());
  csr.data.resize(deps.size());
  std::vector<std::uint64_t> cursor(csr.off.begin(), csr.off.end() - 1);
  for (const Dependency& d : deps) {
    const std::uint64_t slot = cursor[d.dst]++;
    csr.src[slot] = d.src;
    csr.data[slot] = d.data;
  }
  return csr;
}

}  // namespace

EdgeIndex::Segment EdgeIndex::make_segment(std::vector<Entry> entries) {
  auto storage = std::make_shared<SegmentStorage>();
  storage->entries = std::move(entries);
  std::sort(storage->entries.begin(), storage->entries.end(), entry_less);
  storage->max_end.assign(storage->entries.size(), 0.0);
  build_max_end(storage->entries, &storage->max_end, 0,
                storage->entries.size());
  Segment seg;
  seg.entries = storage->entries.data();
  seg.max_end = storage->max_end.data();
  seg.count = storage->entries.size();
  seg.owner = std::move(storage);
  return seg;
}

void EdgeIndex::install_fresh(std::vector<std::vector<Entry>>* fresh) {
  std::vector<std::size_t> pending;
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    if (!(*fresh)[c].empty()) pending.push_back(c);
  }
  if (build_threads_ > 1 && pending.size() > 1) {
    std::vector<Segment> built(pending.size());
    util::parallel_for(pending.size(), build_threads_, [&](std::size_t k) {
      built[k] = make_segment(std::move((*fresh)[pending[k]]));
    });
    for (std::size_t k = 0; k < pending.size(); ++k) {
      clusters_[pending[k]].segments.push_back(std::move(built[k]));
      compact_cluster(&clusters_[pending[k]]);
    }
  } else {
    for (const std::size_t c : pending) {
      clusters_[c].segments.push_back(make_segment(std::move((*fresh)[c])));
      compact_cluster(&clusters_[c]);
    }
  }
}

void EdgeIndex::compact_cluster(ClusterIndex* ci) {
  if (ci->segments.size() <= kMaxSegments) return;
  std::vector<Entry> all;
  std::size_t total = 0;
  for (const auto& s : ci->segments) total += s.count;
  all.reserve(total);
  for (const auto& s : ci->segments) {
    all.insert(all.end(), s.entries, s.entries + s.count);
  }
  ci->segments.clear();
  ci->segments.push_back(make_segment(std::move(all)));
}

// ---------------------------------------------------------------------------
// Construction

EdgeIndex::EdgeIndex(const Schedule& schedule, int threads)
    : build_threads_(std::max(1, threads)) {
  clusters_.reserve(schedule.clusters().size());
  for (const auto& c : schedule.clusters()) {
    ClusterIndex ci;
    ci.cluster_id = c.id;
    clusters_.push_back(std::move(ci));
  }

  const auto& tasks = schedule.tasks();
  const std::size_t n = tasks.size();
  const Csr csr = build_csr(schedule);

  auto cluster_slot = [this](int id) -> std::size_t {
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
      if (clusters_[c].cluster_id == id) return c;
    }
    return static_cast<std::size_t>(-1);
  };
  auto rep_host = [&](std::uint32_t task, int cid) -> std::int32_t {
    for (const auto& cfg : tasks[task].configurations()) {
      if (cfg.cluster_id == cid && !cfg.hosts.empty()) {
        return cfg.hosts.front().start;
      }
    }
    return -1;
  };

  std::vector<std::vector<Entry>> fresh(clusters_.size());
  std::vector<int> seen;  // distinct clusters touched by the current edge
  edges_hash_ = detail::kFnvOffset;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint64_t k = csr.off[i]; k < csr.off[i + 1]; ++k) {
      const std::uint32_t src = csr.src[k];
      const auto dst = static_cast<std::uint32_t>(i);
      fnv_u64(&edges_hash_, src);
      fnv_u64(&edges_hash_, dst);
      fnv_double(&edges_hash_, csr.data[k]);
      Entry e;
      e.begin = std::min(tasks[src].end_time(), tasks[dst].start_time());
      e.end = std::max(tasks[src].end_time(), tasks[dst].start_time());
      e.src = src;
      e.dst = dst;
      seen.clear();
      for (const auto& cfg : tasks[src].configurations()) {
        if (std::find(seen.begin(), seen.end(), cfg.cluster_id) ==
            seen.end()) {
          seen.push_back(cfg.cluster_id);
        }
      }
      for (const auto& cfg : tasks[dst].configurations()) {
        if (std::find(seen.begin(), seen.end(), cfg.cluster_id) ==
            seen.end()) {
          seen.push_back(cfg.cluster_id);
        }
      }
      for (const int cid : seen) {
        const std::size_t slot = cluster_slot(cid);
        if (slot == static_cast<std::size_t>(-1)) continue;
        Entry ce = e;
        ce.src_host = rep_host(src, cid);
        ce.dst_host = rep_host(dst, cid);
        fresh[slot].push_back(ce);
      }
    }
  }
  edge_count_ = csr.src.size();
  install_fresh(&fresh);

  // Critical-path DP over the CSR (weights = task durations), mirroring
  // dag::Dag::critical_path: task order is a valid topological order.
  finish_.resize(n);
  via_.resize(n);
  best_time_ = -1.0;
  best_task_ = kNoVia;
  any_tasks_ = n > 0;
  for (std::size_t i = 0; i < n; ++i) {
    double start = 0.0;
    std::uint32_t via = kNoVia;
    for (std::uint64_t k = csr.off[i]; k < csr.off[i + 1]; ++k) {
      const std::uint32_t p = csr.src[k];
      if (finish_[p] > start) {
        start = finish_[p];
        via = p;
      }
    }
    finish_[i] = start + tasks[i].duration();
    via_[i] = via;
    if (finish_[i] > best_time_) {
      best_time_ = finish_[i];
      best_task_ = static_cast<std::uint32_t>(i);
    }
  }
  rebuild_path();
}

EdgeIndex::EdgeIndex(const ScheduleArena& arena, int threads)
    : build_threads_(std::max(1, threads)) {
  clusters_.reserve(arena.clusters().size());
  for (const auto& c : arena.clusters()) {
    ClusterIndex ci;
    ci.cluster_id = c.id;
    clusters_.push_back(std::move(ci));
  }
  edges_hash_ = arena.edges_hash();
  edge_count_ = arena.dep_count();
  best_time_ = -1.0;
  best_task_ = kNoVia;

  std::vector<std::vector<Entry>> fresh(clusters_.size());
  emit_entries(arena, 0, &fresh);
  install_fresh(&fresh);
  extend_dp(arena, 0);
  rebuild_path();
}

EdgeIndex::EdgeIndex(const EdgeIndex& base, const ScheduleArena& arena,
                     std::size_t first_new)
    : build_threads_(base.build_threads_),
      clusters_(base.clusters_),
      edge_count_(arena.dep_count()),
      edges_hash_(arena.edges_hash()),
      finish_(base.finish_),
      via_(base.via_),
      best_time_(base.best_time_),
      best_task_(base.best_task_),
      any_tasks_(base.any_tasks_) {
  JED_ASSERT(first_new == base.finish_.size());
  JED_ASSERT(arena.task_count() >= first_new);
  JED_ASSERT(arena.clusters().size() == clusters_.size());

  std::vector<std::vector<Entry>> fresh(clusters_.size());
  emit_entries(arena, first_new, &fresh);
  install_fresh(&fresh);
  extend_dp(arena, first_new);
  rebuild_path();
}

EdgeIndex::EdgeIndex(Raw raw, const ScheduleArena& arena)
    : edge_count_(raw.edge_count), edges_hash_(raw.edges_hash) {
  clusters_.reserve(raw.clusters.size());
  for (const auto& rc : raw.clusters) {
    ClusterIndex ci;
    ci.cluster_id = rc.cluster_id;
    if (rc.count > 0) {
      Segment seg;
      seg.entries = rc.entries;
      seg.max_end = rc.max_end;
      seg.count = rc.count;
      seg.owner = raw.owner;
      ci.segments.push_back(std::move(seg));
    }
    clusters_.push_back(std::move(ci));
  }
  best_time_ = -1.0;
  best_task_ = kNoVia;
  extend_dp(arena, 0);
  rebuild_path();
}

// Emits the index entries for every edge entering tasks [first, n) of the
// arena into the per-cluster lists.
void EdgeIndex::emit_entries(const ScheduleArena& arena, std::size_t first,
                             std::vector<std::vector<Entry>>* fresh) {
  const ScheduleArena::ColumnsView cols = arena.columns();
  if (cols.dep_off == nullptr) return;

  auto cluster_slot = [this](int id) -> std::size_t {
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
      if (clusters_[c].cluster_id == id) return c;
    }
    return static_cast<std::size_t>(-1);
  };
  auto rep_host = [&](std::uint32_t task, int cid) -> std::int32_t {
    for (std::uint32_t c = cols.cfg_off[task]; c < cols.cfg_off[task + 1];
         ++c) {
      if (cols.cfg_cluster[c] == cid) {
        return cols.ranges[cols.range_off[c]].start;
      }
    }
    return -1;
  };

  std::vector<int> seen;
  for (std::size_t i = first; i < cols.tasks; ++i) {
    for (std::uint64_t k = cols.dep_off[i]; k < cols.dep_off[i + 1]; ++k) {
      const std::uint32_t src = cols.dep_src[k];
      const auto dst = static_cast<std::uint32_t>(i);
      Entry e;
      e.begin = std::min(cols.end[src], cols.start[dst]);
      e.end = std::max(cols.end[src], cols.start[dst]);
      e.src = src;
      e.dst = dst;
      seen.clear();
      for (std::uint32_t c = cols.cfg_off[src]; c < cols.cfg_off[src + 1];
           ++c) {
        if (std::find(seen.begin(), seen.end(), cols.cfg_cluster[c]) ==
            seen.end()) {
          seen.push_back(cols.cfg_cluster[c]);
        }
      }
      for (std::uint32_t c = cols.cfg_off[dst]; c < cols.cfg_off[dst + 1];
           ++c) {
        if (std::find(seen.begin(), seen.end(), cols.cfg_cluster[c]) ==
            seen.end()) {
          seen.push_back(cols.cfg_cluster[c]);
        }
      }
      for (const int cid : seen) {
        const std::size_t slot = cluster_slot(cid);
        if (slot == static_cast<std::size_t>(-1)) continue;
        Entry ce = e;
        ce.src_host = rep_host(src, cid);
        ce.dst_host = rep_host(dst, cid);
        (*fresh)[slot].push_back(ce);
      }
    }
  }
}

void EdgeIndex::extend_dp(const ScheduleArena& arena, std::size_t first) {
  const ScheduleArena::ColumnsView cols = arena.columns();
  const std::size_t n = cols.tasks;
  finish_.resize(n);
  via_.resize(n);
  if (n > first) any_tasks_ = true;
  for (std::size_t i = first; i < n; ++i) {
    double start = 0.0;
    std::uint32_t via = kNoVia;
    if (cols.dep_off != nullptr) {
      for (std::uint64_t k = cols.dep_off[i]; k < cols.dep_off[i + 1]; ++k) {
        const std::uint32_t p = cols.dep_src[k];
        if (finish_[p] > start) {
          start = finish_[p];
          via = p;
        }
      }
    }
    finish_[i] = start + (cols.end[i] - cols.start[i]);
    via_[i] = via;
    if (finish_[i] > best_time_) {
      best_time_ = finish_[i];
      best_task_ = static_cast<std::uint32_t>(i);
    }
  }
}

void EdgeIndex::rebuild_path() {
  path_.clear();
  if (!any_tasks_ || best_task_ == kNoVia) return;
  for (std::uint32_t v = best_task_; v != kNoVia; v = via_[v]) {
    path_.push_back(v);
  }
  std::reverse(path_.begin(), path_.end());
}

// ---------------------------------------------------------------------------
// Queries

const EdgeIndex::ClusterIndex* EdgeIndex::cluster(int id) const {
  for (const auto& ci : clusters_) {
    if (ci.cluster_id == id) return &ci;
  }
  return nullptr;
}

std::size_t EdgeIndex::entry_count(int cluster_id) const {
  const ClusterIndex* ci = cluster(cluster_id);
  if (ci == nullptr) return 0;
  std::size_t n = 0;
  for (const auto& s : ci->segments) n += s.count;
  return n;
}

std::size_t EdgeIndex::segment_count(int cluster_id) const {
  const ClusterIndex* ci = cluster(cluster_id);
  return ci ? ci->segments.size() : 0;
}

void EdgeIndex::query(int cluster_id, double t0, double t1,
                      const std::function<void(const Entry&)>& fn) const {
  const ClusterIndex* ci = cluster(cluster_id);
  if (ci == nullptr) return;
  for (const auto& s : ci->segments) {
    query_range(s.entries, s.max_end, 0, s.count, t0, t1, fn);
  }
}

std::size_t EdgeIndex::count_upto(int cluster_id, double t0, double t1,
                                  std::size_t limit) const {
  std::size_t n = 0;
  struct Done {};  // early exit once the caller's threshold is settled
  try {
    query(cluster_id, t0, t1, [&n, limit](const Entry&) {
      if (++n >= limit) throw Done{};
    });
  } catch (const Done&) {
  }
  return n;
}

std::uint64_t EdgeIndex::content_hash() const {
  if (edge_count_ == 0) return 0;
  std::uint64_t h = edges_hash_;
  fnv_u64(&h, edge_count_);
  return h;
}

std::vector<EdgeIndex::FlatCluster> EdgeIndex::flatten() const {
  std::vector<FlatCluster> out;
  out.reserve(clusters_.size());
  for (const auto& ci : clusters_) {
    FlatCluster fc;
    fc.cluster_id = ci.cluster_id;
    std::size_t total = 0;
    for (const auto& s : ci.segments) total += s.count;
    fc.entries.reserve(total);
    for (const auto& s : ci.segments) {
      fc.entries.insert(fc.entries.end(), s.entries, s.entries + s.count);
    }
    if (ci.segments.size() > 1) {
      std::sort(fc.entries.begin(), fc.entries.end(), entry_less);
    }
    fc.max_end.assign(fc.entries.size(), 0.0);
    build_max_end(fc.entries, &fc.max_end, 0, fc.entries.size());
    out.push_back(std::move(fc));
  }
  return out;
}

std::size_t EdgeIndex::heap_bytes() const {
  std::size_t b = finish_.capacity() * sizeof(double) +
                  via_.capacity() * sizeof(std::uint32_t) +
                  path_.capacity() * sizeof(std::uint32_t);
  // Segment arrays are counted whether heap- or mmap-backed; the store's
  // accounting treats a shared mapping as resident either way.
  for (const auto& ci : clusters_) {
    for (const auto& s : ci.segments) {
      b += s.count * (sizeof(Entry) + sizeof(double));
    }
  }
  return b;
}

}  // namespace jedule::model
