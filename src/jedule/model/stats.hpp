#pragma once

// Schedule statistics: the quantitative side of the "sanity checks" the
// paper's case studies perform visually (idle holes in Fig. 4, underused
// processors in Fig. 5, single-busy-thread phases in Fig. 12).

#include <map>
#include <string>
#include <vector>

#include "jedule/model/schedule.hpp"

namespace jedule::model {

struct ScheduleStats {
  std::size_t task_count = 0;
  Time begin = 0;
  Time end = 0;
  Time makespan = 0;  // end - begin

  /// Sum over tasks of duration * allocated hosts ("area"; counts
  /// double-booked time twice).
  double busy_area = 0;

  /// Sum over resources of the *union* of busy intervals (double-booked
  /// time counted once).
  double covered_time = 0;

  /// total_hosts * makespan - covered_time.
  double idle_time = 0;

  /// covered_time / (total_hosts * makespan); 0 for an empty schedule.
  double utilization = 0;

  /// Busy area per task type.
  std::map<std::string, double> area_by_type;

  /// Union-of-intervals busy time per global resource index.
  std::vector<double> busy_by_resource;
};

/// Computes the statistics over tasks selected by `type_filter` (empty
/// filter = all types).
ScheduleStats compute_stats(const Schedule& schedule,
                            const std::vector<std::string>& type_filter = {});

/// Utilization profile: number of busy resources as a step function of time,
/// sampled at `samples` uniform points of the schedule's span. Used by the
/// Quicksort case study to assert "only one processor busy for ~half the
/// time" (Fig. 12).
std::vector<int> concurrency_profile(const Schedule& schedule, int samples,
                                     const std::vector<std::string>& type_filter = {});

/// Fraction of the makespan during which exactly `k` resources are busy.
double fraction_of_time_with_busy(const Schedule& schedule, int k,
                                  const std::vector<std::string>& type_filter = {});

}  // namespace jedule::model
