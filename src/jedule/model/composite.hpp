#pragma once

// Composite-task synthesis (paper Sec. II.C.3, Fig. 3).
//
// When several tasks share a resource for some time, Jedule introduces a
// *composite task* covering exactly the shared region: its identifier is the
// concatenation of the member identifiers and its type is "composite".
//
// The sweep below finds, per resource, the maximal time intervals covered by
// two or more tasks with a constant member set, then merges equal
// (member-set, interval) segments of adjacent hosts of the same cluster into
// host ranges, yielding one composite task per maximal rectangle group.

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "jedule/model/schedule.hpp"

namespace jedule::model {

struct Composite {
  Task task;                            // id, "composite" type, time, hosts
  std::vector<std::string> member_ids;  // sorted by schedule order
  std::set<std::string> member_types;   // distinct member types (for colors)
};

/// Synthesizes all composite tasks of `schedule`. Intervals are half-open:
/// a task ending exactly when another starts does not overlap it.
/// `include_task` filters which tasks participate (default: all); the
/// schedulers use it to e.g. ignore communication when checking compute
/// exclusivity. The per-resource sweep runs over up to `threads` workers,
/// partitioned by (cluster, host) and merged deterministically — the result
/// is identical for every thread count.
std::vector<Composite> synthesize_composites(
    const Schedule& schedule,
    const std::function<bool(const Task&)>& include_task = nullptr,
    int threads = 1);

/// True if two `include_task`-selected tasks ever share a resource. A
/// feasible single-occupancy schedule (DESIGN.md §6.5) has no conflicts.
bool has_resource_conflicts(
    const Schedule& schedule,
    const std::function<bool(const Task&)>& include_task = nullptr);

/// Copy of `schedule` with every composite appended as a task; each carries
/// properties "members" (comma-joined member ids) and "member_types"
/// (comma-joined distinct member types) so exports keep the information.
Schedule with_composites(const Schedule& schedule);

}  // namespace jedule::model
