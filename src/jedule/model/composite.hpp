#pragma once

// Composite-task synthesis (paper Sec. II.C.3, Fig. 3).
//
// When several tasks share a resource for some time, Jedule introduces a
// *composite task* covering exactly the shared region: its identifier is the
// concatenation of the member identifiers and its type is "composite".
//
// The sweep below finds, per resource, the maximal time intervals covered by
// two or more tasks with a constant member set, then merges equal
// (member-set, interval) segments of adjacent hosts of the same cluster into
// host ranges, yielding one composite task per maximal rectangle group.

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "jedule/model/schedule.hpp"

namespace jedule::model {

class TaskIndex;

struct Composite {
  Task task;                            // id, "composite" type, time, hosts
  std::vector<std::string> member_ids;  // sorted by schedule order
  std::set<std::string> member_types;   // distinct member types (for colors)
  // Sorted indices into Schedule::tasks() of the members — the stable
  // identity append_composites merges on (task indices never move, the
  // live-trace path only appends).
  std::vector<std::size_t> member_indices;
};

/// Synthesizes all composite tasks of `schedule`. Intervals are half-open:
/// a task ending exactly when another starts does not overlap it.
/// `include_task` filters which tasks participate (default: all); the
/// schedulers use it to e.g. ignore communication when checking compute
/// exclusivity. The per-resource sweep runs over up to `threads` workers,
/// partitioned by (cluster, host) and merged deterministically — the result
/// is identical for every thread count.
std::vector<Composite> synthesize_composites(
    const Schedule& schedule,
    const std::function<bool(const Task&)>& include_task = nullptr,
    int threads = 1);

/// O(delta) composite maintenance for the live-trace append path:
/// `cached` must be the synthesize_composites/append_composites result for
/// the first `first_new` tasks of `schedule` under the *same*
/// `include_task` predicate, and `index` must cover all of `schedule`
/// (the O(delta)-extended TaskIndex). Returns the full composite list,
/// byte-identical to synthesize_composites over the whole schedule.
///
/// Cost scales with the tail, not the schedule: a cut time t_cut is
/// lowered from the earliest new task start until no included task
/// strictly straddles it (each straddler can lower the cut once, and the
/// straddlers at the cut come from an index point query, not a scan).
/// Half-open intervals then guarantee no composite crosses the cut, so
/// cached composites ending at or before it are kept verbatim and only
/// the tasks at or after it — found through the index — are re-swept.
std::vector<Composite> append_composites(
    const Schedule& schedule, const TaskIndex& index,
    std::vector<Composite> cached, std::size_t first_new,
    const std::function<bool(const Task&)>& include_task = nullptr,
    int threads = 1);

/// True if two `include_task`-selected tasks ever share a resource. A
/// feasible single-occupancy schedule (DESIGN.md §6.5) has no conflicts.
bool has_resource_conflicts(
    const Schedule& schedule,
    const std::function<bool(const Task&)>& include_task = nullptr);

/// Copy of `schedule` with every composite appended as a task; each carries
/// properties "members" (comma-joined member ids) and "member_types"
/// (comma-joined distinct member types) so exports keep the information.
Schedule with_composites(const Schedule& schedule);

}  // namespace jedule::model
