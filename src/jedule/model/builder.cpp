#include "jedule/model/builder.hpp"

#include <algorithm>

#include "jedule/util/error.hpp"

namespace jedule::model {

ScheduleBuilder& ScheduleBuilder::cluster(int id, std::string name,
                                          int hosts) {
  schedule_.add_cluster(id, std::move(name), hosts);
  return *this;
}

ScheduleBuilder& ScheduleBuilder::meta(std::string key, std::string value) {
  schedule_.set_meta(std::move(key), std::move(value));
  return *this;
}

ScheduleBuilder& ScheduleBuilder::task(std::string id, std::string type,
                                       Time start, Time end) {
  flush_task();
  pending_ = Task(std::move(id), std::move(type), start, end);
  has_pending_ = true;
  return *this;
}

ScheduleBuilder& ScheduleBuilder::on(int cluster_id, int first_host,
                                     int host_count) {
  if (!has_pending_) throw ArgumentError("on() called before task()");
  pending_.allocate(cluster_id, first_host, host_count);
  return *this;
}

ScheduleBuilder& ScheduleBuilder::hosts(int cluster_id,
                                        const std::vector<int>& host_list) {
  if (!has_pending_) throw ArgumentError("hosts() called before task()");
  if (host_list.empty()) throw ArgumentError("hosts() with an empty list");
  std::vector<int> sorted = host_list;
  std::sort(sorted.begin(), sorted.end());
  Configuration cfg;
  cfg.cluster_id = cluster_id;
  for (int h : sorted) {
    if (!cfg.hosts.empty() &&
        cfg.hosts.back().start + cfg.hosts.back().nb == h) {
      ++cfg.hosts.back().nb;
    } else {
      cfg.hosts.push_back(HostRange{h, 1});
    }
  }
  pending_.add_configuration(std::move(cfg));
  return *this;
}

ScheduleBuilder& ScheduleBuilder::property(std::string key,
                                           std::string value) {
  if (!has_pending_) throw ArgumentError("property() called before task()");
  pending_.set_property(std::move(key), std::move(value));
  return *this;
}

Schedule ScheduleBuilder::build() {
  flush_task();
  schedule_.validate();
  return std::move(schedule_);
}

void ScheduleBuilder::flush_task() {
  if (has_pending_) {
    schedule_.add_task(std::move(pending_));
    has_pending_ = false;
  }
}

}  // namespace jedule::model
