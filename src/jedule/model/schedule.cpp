#include "jedule/model/schedule.hpp"

#include <algorithm>
#include <set>

#include "jedule/util/error.hpp"

namespace jedule::model {

int Configuration::host_count() const {
  int n = 0;
  for (const auto& r : hosts) n += r.nb;
  return n;
}

std::vector<int> Configuration::host_list() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(host_count()));
  for (const auto& r : hosts) {
    for (int h = r.start; h < r.start + r.nb; ++h) out.push_back(h);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Task::allocate(int cluster_id, int first_host, int host_count) {
  Configuration c;
  c.cluster_id = cluster_id;
  c.hosts.push_back(HostRange{first_host, host_count});
  configs_.push_back(std::move(c));
}

int Task::total_hosts() const {
  int n = 0;
  for (const auto& c : configs_) n += c.host_count();
  return n;
}

void Task::set_property(std::string key, std::string value) {
  for (auto& [k, v] : properties_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  properties_.emplace_back(std::move(key), std::move(value));
}

std::optional<std::string_view> Task::property(std::string_view key) const {
  for (const auto& [k, v] : properties_) {
    if (k == key) return std::string_view(v);
  }
  return std::nullopt;
}

std::size_t Schedule::add_cluster(Cluster c) {
  if (cluster_index_.count(c.id) != 0) {
    throw ValidationError("duplicate cluster id " + std::to_string(c.id));
  }
  if (c.hosts <= 0) {
    throw ValidationError("cluster " + std::to_string(c.id) +
                          " must have a positive host count");
  }
  const std::size_t index = clusters_.size();
  cluster_index_[c.id] = index;
  clusters_.push_back(std::move(c));
  return index;
}

std::size_t Schedule::add_cluster(int id, std::string name, int hosts) {
  return add_cluster(Cluster{id, std::move(name), hosts});
}

const Cluster& Schedule::cluster_by_id(int id) const {
  auto it = cluster_index_.find(id);
  if (it == cluster_index_.end()) {
    throw ValidationError("unknown cluster id " + std::to_string(id));
  }
  return clusters_[it->second];
}

bool Schedule::has_cluster(int id) const {
  return cluster_index_.count(id) != 0;
}

int Schedule::total_hosts() const {
  int n = 0;
  for (const auto& c : clusters_) n += c.hosts;
  return n;
}

int Schedule::global_resource_index(int cluster_id, int host) const {
  int offset = 0;
  for (const auto& c : clusters_) {
    if (c.id == cluster_id) {
      JED_ASSERT(host >= 0 && host < c.hosts);
      return offset + host;
    }
    offset += c.hosts;
  }
  throw ValidationError("unknown cluster id " + std::to_string(cluster_id));
}

const Task* Schedule::find_task(std::string_view id) const {
  for (const auto& t : tasks_) {
    if (t.id() == id) return &t;
  }
  return nullptr;
}

void Schedule::set_meta(std::string key, std::string value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  meta_.emplace_back(std::move(key), std::move(value));
}

std::optional<std::string_view> Schedule::meta_value(
    std::string_view key) const {
  for (const auto& [k, v] : meta_) {
    if (k == key) return std::string_view(v);
  }
  return std::nullopt;
}

std::optional<TimeRange> Schedule::time_range() const {
  if (tasks_.empty()) return std::nullopt;
  TimeRange r{tasks_.front().start_time(), tasks_.front().end_time()};
  for (const auto& t : tasks_) {
    r.begin = std::min(r.begin, t.start_time());
    r.end = std::max(r.end, t.end_time());
  }
  return r;
}

std::optional<TimeRange> Schedule::cluster_time_range(int cluster_id) const {
  std::optional<TimeRange> r;
  for (const auto& t : tasks_) {
    bool in_cluster = false;
    for (const auto& c : t.configurations()) {
      if (c.cluster_id == cluster_id) {
        in_cluster = true;
        break;
      }
    }
    if (!in_cluster) continue;
    if (!r) {
      r = TimeRange{t.start_time(), t.end_time()};
    } else {
      r->begin = std::min(r->begin, t.start_time());
      r->end = std::max(r->end, t.end_time());
    }
  }
  return r;
}

std::optional<TimeRange> Schedule::view_time_range(int cluster_id,
                                                   ViewMode mode) const {
  if (mode == ViewMode::kAligned) return time_range();
  auto local = cluster_time_range(cluster_id);
  return local ? local : time_range();
}

std::vector<const Task*> Schedule::tasks_in_cluster(int cluster_id) const {
  std::vector<const Task*> out;
  for (const auto& t : tasks_) {
    for (const auto& c : t.configurations()) {
      if (c.cluster_id == cluster_id) {
        out.push_back(&t);
        break;
      }
    }
  }
  return out;
}

void Schedule::validate() const {
  if (clusters_.empty()) {
    throw ValidationError("a schedule requires at least one cluster");
  }
  std::set<std::string_view> seen_ids;
  for (const auto& t : tasks_) {
    if (t.id().empty()) {
      throw ValidationError("task with empty id");
    }
    if (!seen_ids.insert(t.id()).second) {
      throw ValidationError("duplicate task id '" + t.id() + "'");
    }
    if (!(t.end_time() >= t.start_time())) {
      throw ValidationError("task '" + t.id() + "' has end_time " +
                            std::to_string(t.end_time()) +
                            " before start_time " +
                            std::to_string(t.start_time()));
    }
    if (t.configurations().empty()) {
      throw ValidationError("task '" + t.id() + "' has no configuration");
    }
    for (const auto& cfg : t.configurations()) {
      if (!has_cluster(cfg.cluster_id)) {
        throw ValidationError("task '" + t.id() +
                              "' references unknown cluster " +
                              std::to_string(cfg.cluster_id));
      }
      const Cluster& cluster = cluster_by_id(cfg.cluster_id);
      if (cfg.hosts.empty()) {
        throw ValidationError("task '" + t.id() +
                              "' has a configuration without hosts");
      }
      std::set<int> used;
      for (const auto& range : cfg.hosts) {
        if (range.nb <= 0) {
          throw ValidationError("task '" + t.id() +
                                "' has a host range with nb <= 0");
        }
        if (range.start < 0 || range.start + range.nb > cluster.hosts) {
          throw ValidationError(
              "task '" + t.id() + "' host range [" +
              std::to_string(range.start) + ", " +
              std::to_string(range.start + range.nb) +
              ") exceeds cluster " + std::to_string(cluster.id) + " size " +
              std::to_string(cluster.hosts));
        }
        for (int h = range.start; h < range.start + range.nb; ++h) {
          if (!used.insert(h).second) {
            throw ValidationError("task '" + t.id() + "' lists host " +
                                  std::to_string(h) + " of cluster " +
                                  std::to_string(cluster.id) + " twice");
          }
        }
      }
    }
  }
}

}  // namespace jedule::model
