#include "jedule/model/schedule.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <unordered_set>

#include "jedule/util/error.hpp"

namespace jedule::model {

namespace detail {

namespace {

struct StringViewHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

struct StringViewEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return a == b;
  }
};

}  // namespace

const std::string* intern_task_type(std::string_view type) {
  // unordered_set is node-based, so &*it stays valid across rehashes. The
  // pool is never shrunk; a handful of types live for the process lifetime.
  static std::shared_mutex mutex;
  static std::unordered_set<std::string, StringViewHash, StringViewEq> pool;
  {
    std::shared_lock lock(mutex);
    auto it = pool.find(type);
    if (it != pool.end()) return &*it;
  }
  std::unique_lock lock(mutex);
  return &*pool.emplace(type).first;
}

}  // namespace detail

int Configuration::host_count() const {
  int n = 0;
  for (const auto& r : hosts) n += r.nb;
  return n;
}

std::vector<int> Configuration::host_list() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(host_count()));
  for (const auto& r : hosts) {
    for (int h = r.start; h < r.start + r.nb; ++h) out.push_back(h);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Task::allocate(int cluster_id, int first_host, int host_count) {
  Configuration c;
  c.cluster_id = cluster_id;
  c.hosts.push_back(HostRange{first_host, host_count});
  configs_.push_back(std::move(c));
}

int Task::total_hosts() const {
  int n = 0;
  for (const auto& c : configs_) n += c.host_count();
  return n;
}

void Task::set_property(std::string key, std::string value) {
  for (auto& [k, v] : properties_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  properties_.emplace_back(std::move(key), std::move(value));
}

std::optional<std::string_view> Task::property(std::string_view key) const {
  for (const auto& [k, v] : properties_) {
    if (k == key) return std::string_view(v);
  }
  return std::nullopt;
}

std::size_t Schedule::add_cluster(Cluster c) {
  if (cluster_index_.count(c.id) != 0) {
    throw ValidationError("duplicate cluster id " + std::to_string(c.id));
  }
  if (c.hosts <= 0) {
    throw ValidationError("cluster " + std::to_string(c.id) +
                          " must have a positive host count");
  }
  const std::size_t index = clusters_.size();
  cluster_index_[c.id] = index;
  clusters_.push_back(std::move(c));
  return index;
}

std::size_t Schedule::add_cluster(int id, std::string name, int hosts) {
  return add_cluster(Cluster{id, std::move(name), hosts});
}

const Cluster& Schedule::cluster_by_id(int id) const {
  auto it = cluster_index_.find(id);
  if (it == cluster_index_.end()) {
    throw ValidationError("unknown cluster id " + std::to_string(id));
  }
  return clusters_[it->second];
}

bool Schedule::has_cluster(int id) const {
  return cluster_index_.count(id) != 0;
}

int Schedule::total_hosts() const {
  int n = 0;
  for (const auto& c : clusters_) n += c.hosts;
  return n;
}

int Schedule::global_resource_index(int cluster_id, int host) const {
  int offset = 0;
  for (const auto& c : clusters_) {
    if (c.id == cluster_id) {
      JED_ASSERT(host >= 0 && host < c.hosts);
      return offset + host;
    }
    offset += c.hosts;
  }
  throw ValidationError("unknown cluster id " + std::to_string(cluster_id));
}

const Task* Schedule::find_task(std::string_view id) const {
  for (const auto& t : tasks_) {
    if (t.id() == id) return &t;
  }
  return nullptr;
}

void Schedule::set_meta(std::string key, std::string value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  meta_.emplace_back(std::move(key), std::move(value));
}

std::optional<std::string_view> Schedule::meta_value(
    std::string_view key) const {
  for (const auto& [k, v] : meta_) {
    if (k == key) return std::string_view(v);
  }
  return std::nullopt;
}

std::optional<TimeRange> Schedule::time_range() const {
  if (tasks_.empty()) return std::nullopt;
  TimeRange r{tasks_.front().start_time(), tasks_.front().end_time()};
  for (const auto& t : tasks_) {
    r.begin = std::min(r.begin, t.start_time());
    r.end = std::max(r.end, t.end_time());
  }
  return r;
}

std::optional<TimeRange> Schedule::cluster_time_range(int cluster_id) const {
  std::optional<TimeRange> r;
  for (const auto& t : tasks_) {
    bool in_cluster = false;
    for (const auto& c : t.configurations()) {
      if (c.cluster_id == cluster_id) {
        in_cluster = true;
        break;
      }
    }
    if (!in_cluster) continue;
    if (!r) {
      r = TimeRange{t.start_time(), t.end_time()};
    } else {
      r->begin = std::min(r->begin, t.start_time());
      r->end = std::max(r->end, t.end_time());
    }
  }
  return r;
}

std::map<int, TimeRange> Schedule::cluster_time_ranges() const {
  std::map<int, TimeRange> out;
  for (const auto& t : tasks_) {
    int last = 0;
    bool have_last = false;
    for (const auto& c : t.configurations()) {
      // Tasks repeat a cluster only in pathological inputs; skipping the
      // immediate repeat keeps the common multi-range case one lookup.
      if (have_last && c.cluster_id == last) continue;
      last = c.cluster_id;
      have_last = true;
      auto [it, fresh] =
          out.try_emplace(c.cluster_id, TimeRange{t.start_time(), t.end_time()});
      if (!fresh) {
        it->second.begin = std::min(it->second.begin, t.start_time());
        it->second.end = std::max(it->second.end, t.end_time());
      }
    }
  }
  return out;
}

std::optional<TimeRange> Schedule::view_time_range(int cluster_id,
                                                   ViewMode mode) const {
  if (mode == ViewMode::kAligned) return time_range();
  auto local = cluster_time_range(cluster_id);
  return local ? local : time_range();
}

std::vector<const Task*> Schedule::tasks_in_cluster(int cluster_id) const {
  std::vector<const Task*> out;
  for (const auto& t : tasks_) {
    for (const auto& c : t.configurations()) {
      if (c.cluster_id == cluster_id) {
        out.push_back(&t);
        break;
      }
    }
  }
  return out;
}

void Schedule::validate() const {
  if (clusters_.empty()) {
    throw ValidationError("a schedule requires at least one cluster");
  }
  // Duplicate-id probe over a flat open-addressed table: a node-based set
  // costs one allocation and several cache misses per insert, which at
  // million-task scale is most of the validate pass.
  constexpr std::size_t kEmpty = static_cast<std::size_t>(-1);
  const std::size_t cap = std::bit_ceil(tasks_.size() * 2 + 16);
  std::vector<std::size_t> slots(cap, kEmpty);
  const auto seen_before = [&](std::size_t index) {
    const std::string_view id = tasks_[index].id();
    std::size_t h = std::hash<std::string_view>{}(id) & (cap - 1);
    while (slots[h] != kEmpty) {
      if (tasks_[slots[h]].id() == id) return true;
      h = (h + 1) & (cap - 1);
    }
    slots[h] = index;
    return false;
  };
  // The common case is every task on the same cluster, so the id -> cluster
  // map lookup is cached across consecutive configurations.
  int cached_id = 0;
  const Cluster* cached_cluster = nullptr;
  for (std::size_t ti = 0; ti < tasks_.size(); ++ti) {
    const Task& t = tasks_[ti];
    if (t.id().empty()) {
      throw ValidationError("task with empty id");
    }
    if (seen_before(ti)) {
      throw ValidationError("duplicate task id '" + t.id() + "'");
    }
    if (!(t.end_time() >= t.start_time())) {
      throw ValidationError("task '" + t.id() + "' has end_time " +
                            std::to_string(t.end_time()) +
                            " before start_time " +
                            std::to_string(t.start_time()));
    }
    if (t.configurations().empty()) {
      throw ValidationError("task '" + t.id() + "' has no configuration");
    }
    for (const auto& cfg : t.configurations()) {
      if (cached_cluster == nullptr || cfg.cluster_id != cached_id) {
        auto it = cluster_index_.find(cfg.cluster_id);
        if (it == cluster_index_.end()) {
          throw ValidationError("task '" + t.id() +
                                "' references unknown cluster " +
                                std::to_string(cfg.cluster_id));
        }
        cached_id = cfg.cluster_id;
        cached_cluster = &clusters_[it->second];
      }
      const Cluster& cluster = *cached_cluster;
      if (cfg.hosts.empty()) {
        throw ValidationError("task '" + t.id() +
                              "' has a configuration without hosts");
      }
      // Disjoint used-host intervals [start, end), coalesced on insert. A
      // range overlapping earlier ones reports the same first duplicate
      // host the per-host scan found: the smallest overlapped index. A
      // single-range configuration (the common case by far) cannot repeat
      // a host, so the interval map is only kept for multi-range configs.
      std::map<int, int> used;
      for (const auto& range : cfg.hosts) {
        if (range.nb <= 0) {
          throw ValidationError("task '" + t.id() +
                                "' has a host range with nb <= 0");
        }
        if (range.start < 0 || range.start + range.nb > cluster.hosts) {
          throw ValidationError(
              "task '" + t.id() + "' host range [" +
              std::to_string(range.start) + ", " +
              std::to_string(range.start + range.nb) +
              ") exceeds cluster " + std::to_string(cluster.id) + " size " +
              std::to_string(cluster.hosts));
        }
        if (cfg.hosts.size() == 1) break;
        const int start = range.start;
        const int end = range.start + range.nb;
        int dup = -1;
        auto next = used.upper_bound(start);
        if (next != used.begin() && std::prev(next)->second > start) {
          dup = start;
        } else if (next != used.end() && next->first < end) {
          dup = next->first;
        }
        if (dup >= 0) {
          throw ValidationError("task '" + t.id() + "' lists host " +
                                std::to_string(dup) + " of cluster " +
                                std::to_string(cluster.id) + " twice");
        }
        int merged_start = start;
        int merged_end = end;
        if (next != used.begin() && std::prev(next)->second == start) {
          auto prev = std::prev(next);
          merged_start = prev->first;
          used.erase(prev);
        }
        if (next != used.end() && next->first == end) {
          merged_end = next->second;
          used.erase(next);
        }
        used[merged_start] = merged_end;
      }
    }
  }
  for (const Dependency& d : deps_) {
    if (d.src >= tasks_.size() || d.dst >= tasks_.size()) {
      throw ValidationError("dependency " + std::to_string(d.src) + " -> " +
                            std::to_string(d.dst) +
                            " references a task index out of range (" +
                            std::to_string(tasks_.size()) + " tasks)");
    }
    if (d.src >= d.dst) {
      throw ValidationError("dependency " + std::to_string(d.src) + " -> " +
                            std::to_string(d.dst) +
                            " must point forward in task order (src < dst)");
    }
    if (!(d.data >= 0)) {
      throw ValidationError("dependency " + std::to_string(d.src) + " -> " +
                            std::to_string(d.dst) + " has negative data " +
                            std::to_string(d.data));
    }
  }
}

}  // namespace jedule::model
