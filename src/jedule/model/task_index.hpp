#pragma once

// model::TaskIndex — immutable spatial index over (time interval x host
// range), built once per schedule and shared by the layout engine, the
// tile cache and Session::inspect (DESIGN.md "interactive frames").
//
// Per cluster, every (task configuration x host range) rectangle becomes
// one Entry in a flat array sorted by start time; an implicit balanced
// BST over that array stores the maximum end time of each subtree, so a
// window query visits O(log n + k) entries instead of scanning all
// tasks. Intersection is *closed* ([begin, end] against [t0, t1]):
// zero-duration tasks and tasks touching the window edge are reported,
// which over-approximates the renderer's half-open clipping — harmless,
// since non-painting boxes are dropped by the clip itself.
//
// The index is immutable after construction and safe to share across
// threads. It also records a content hash of the schedule (tasks, times,
// allocations, clusters) that the render::TileCache uses as a cache key.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "jedule/model/schedule.hpp"

namespace jedule::model {

class TaskIndex {
 public:
  struct Entry {
    double begin = 0;
    double end = 0;
    int host_start = 0;  // inclusive host span [host_start, host_end]
    int host_end = 0;
    std::uint32_t task = 0;  // index into Schedule::tasks()
  };

  /// Builds the index in O(n log n). The schedule must outlive nothing —
  /// the index copies what it needs (times, host spans, task indices).
  explicit TaskIndex(const Schedule& schedule);

  std::size_t task_count() const { return task_count_; }

  /// Entries indexed for `cluster_id` (0 for unknown clusters).
  std::size_t entry_count(int cluster_id) const;

  /// Global time bounds over all tasks; nullopt for an empty schedule.
  std::optional<TimeRange> time_range() const { return time_range_; }

  /// Calls `fn` for every entry of `cluster_id` whose closed interval
  /// [begin, end] intersects [t0, t1]. A task is reported once per
  /// (configuration, host range); order is unspecified.
  void query(int cluster_id, double t0, double t1,
             const std::function<void(const Entry&)>& fn) const;

  /// Appends the ascending, duplicate-free task indices intersecting the
  /// window to `out` (viewport culling keeps schedule paint order by
  /// sorting the union over clusters afterwards).
  void collect_tasks(int cluster_id, double t0, double t1,
                     std::vector<std::uint32_t>* out) const;

  /// Number of entries intersecting the window, stopping early once
  /// `limit` is reached — the LOD density probe, O(log n + limit).
  std::size_t count_upto(int cluster_id, double t0, double t1,
                         std::size_t limit) const;

  /// Point query: the entry with the highest task index covering time `t`
  /// on host `h` (the topmost rectangle in paint order), or nullptr.
  const Entry* topmost_at(int cluster_id, double t, int h) const;

  /// FNV-1a over clusters, task ids/types/times and allocations; two
  /// schedules with equal hashes render identically (used to key the
  /// tile cache across reread()).
  std::uint64_t content_hash() const { return content_hash_; }

  /// The hash above without building an index (cache fallback path).
  static std::uint64_t hash_schedule(const Schedule& schedule);

 private:
  struct ClusterIndex {
    int cluster_id = 0;
    std::vector<Entry> entries;   // sorted by begin (ties: task index)
    std::vector<double> max_end;  // subtree max end, implicit BST on entries
  };

  const ClusterIndex* cluster(int id) const;

  std::vector<ClusterIndex> clusters_;
  std::size_t task_count_ = 0;
  std::optional<TimeRange> time_range_;
  std::uint64_t content_hash_ = 0;
};

}  // namespace jedule::model
