#pragma once

// model::TaskIndex — immutable spatial index over (time interval x host
// range), built once per schedule and shared by the layout engine, the
// tile cache and Session::inspect (DESIGN.md "interactive frames").
//
// Per cluster, every (task configuration x host range) rectangle becomes
// one Entry in a flat array sorted by start time; an implicit balanced
// BST over that array stores the maximum end time of each subtree, so a
// window query visits O(log n + k) entries instead of scanning all
// tasks. Intersection is *closed* ([begin, end] against [t0, t1]):
// zero-duration tasks and tasks touching the window edge are reported,
// which over-approximates the renderer's half-open clipping — harmless,
// since non-painting boxes are dropped by the clip itself.
//
// A cluster's entries live in one or more immutable *segments*, each a
// sorted array with its own implicit BST. A full build produces a single
// segment; the O(delta) extension constructor shares the base index's
// segments untouched and adds one small segment holding only the new
// tasks, so appending to a million-task index never re-sorts the base.
// Segments may also point into an mmapped snapshot (DESIGN.md §4h)
// instead of heap vectors; `owner` keeps the backing storage alive.
// Queries visit every segment; result order stays unspecified, as before.
//
// The index is immutable after construction and safe to share across
// threads. It also records a content hash of the schedule (tasks, times,
// allocations, clusters) that the render::TileCache uses as a cache key.
// The hash folds the task count in *last*, so the running pre-count hash
// (`tasks_hash()`) can be extended with appended tasks in O(delta).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "jedule/model/schedule.hpp"

namespace jedule::model {

class ScheduleArena;

class TaskIndex {
 public:
  struct Entry {
    double begin = 0;
    double end = 0;
    int host_start = 0;  // inclusive host span [host_start, host_end]
    int host_end = 0;
    std::uint32_t task = 0;  // index into Schedule::tasks()
  };

  /// Empty index (no clusters, zero hash) — the placeholder state for
  /// two-phase construction (engine::ScheduleEntry); move-assign a real
  /// index over it before use.
  TaskIndex() = default;

  /// Builds the index in O(n log n). The schedule must outlive nothing —
  /// the index copies what it needs (times, host spans, task indices).
  /// `threads` > 1 sorts/augments the per-cluster segments concurrently
  /// (util::parallel_for); the segments — and therefore every query
  /// result and the content hash — are identical at any thread count.
  explicit TaskIndex(const Schedule& schedule, int threads = 1);

  /// O(delta) extension: `base` indexed the first `first_new` tasks of
  /// `schedule` (same clusters, same tasks, in the same order — only
  /// tasks appended at the end). Shares the base's segments and indexes
  /// only tasks [first_new, size); the content hash is continued from the
  /// base's running hash instead of rehashing the whole schedule.
  TaskIndex(const TaskIndex& base, const Schedule& schedule,
            std::size_t first_new);

  /// Same O(delta) extension, reading the appended rows straight from the
  /// columnar arena — the live-append path never materializes an AoS
  /// schedule. The hash continuation reuses the arena's running hash
  /// (byte-identical to hashing the materialized tasks).
  TaskIndex(const TaskIndex& base, const ScheduleArena& arena,
            std::size_t first_new);

  /// One pre-sorted, pre-augmented cluster loaded from a snapshot; the
  /// pointers typically alias an mmapped file kept alive by `Raw::owner`.
  struct RawCluster {
    int cluster_id = 0;
    const Entry* entries = nullptr;   // sorted by (begin, task)
    const double* max_end = nullptr;  // implicit-BST augmentation
    std::size_t count = 0;
  };

  /// Zero-copy construction input (the `.jbin` load path): trusted
  /// precomputed segments plus the recorded hashes and bounds.
  struct Raw {
    std::vector<RawCluster> clusters;
    std::shared_ptr<const void> owner;  // keeps the mapping alive
    std::size_t task_count = 0;
    std::optional<TimeRange> time_range;
    std::uint64_t content_hash = 0;
    std::uint64_t tasks_hash = 0;  // running hash, pre task-count fold
  };
  explicit TaskIndex(Raw raw);

  std::size_t task_count() const { return task_count_; }

  /// Entries indexed for `cluster_id` (0 for unknown clusters).
  std::size_t entry_count(int cluster_id) const;

  /// Global time bounds over all tasks; nullopt for an empty schedule.
  std::optional<TimeRange> time_range() const { return time_range_; }

  /// Calls `fn` for every entry of `cluster_id` whose closed interval
  /// [begin, end] intersects [t0, t1]. A task is reported once per
  /// (configuration, host range); order is unspecified.
  void query(int cluster_id, double t0, double t1,
             const std::function<void(const Entry&)>& fn) const;

  /// Appends the ascending, duplicate-free task indices intersecting the
  /// window to `out` (viewport culling keeps schedule paint order by
  /// sorting the union over clusters afterwards).
  void collect_tasks(int cluster_id, double t0, double t1,
                     std::vector<std::uint32_t>* out) const;

  /// Number of entries intersecting the window, stopping early once
  /// `limit` is reached — the LOD density probe, O(log n + limit).
  std::size_t count_upto(int cluster_id, double t0, double t1,
                         std::size_t limit) const;

  /// Point query: the entry with the highest task index covering time `t`
  /// on host `h` (the topmost rectangle in paint order), or nullptr.
  const Entry* topmost_at(int cluster_id, double t, int h) const;

  /// Ascending, duplicate-free indices of the tasks having at least one
  /// configuration in `cluster_id` — the cluster partition that replaces
  /// Schedule::tasks_in_cluster's O(n) scan. Segments cover disjoint task
  /// ranges, so this concatenates precomputed per-segment lists.
  std::vector<std::uint32_t> cluster_tasks(int cluster_id) const;

  /// Number of segments backing `cluster_id` (test/bench introspection).
  std::size_t segment_count(int cluster_id) const;

  /// One merged, sorted entry array (+ implicit-BST max_end) per cluster,
  /// in schedule cluster order — the snapshot serialization form.
  struct FlatCluster {
    int cluster_id = 0;
    std::vector<Entry> entries;
    std::vector<double> max_end;
  };
  std::vector<FlatCluster> flatten() const;

  /// FNV-1a over clusters, task ids/types/times and allocations; two
  /// schedules with equal hashes render identically (used to key the
  /// tile cache across reread()).
  std::uint64_t content_hash() const { return content_hash_; }

  /// The running hash before the task count is folded in — the resume
  /// point for O(delta) hash extension (extension ctor, ScheduleArena).
  std::uint64_t tasks_hash() const { return tasks_hash_; }

  /// The hash above without building an index (cache fallback path).
  static std::uint64_t hash_schedule(const Schedule& schedule);

 private:
  struct Segment {
    const Entry* entries = nullptr;   // sorted by begin (ties: task index)
    const double* max_end = nullptr;  // subtree max end, implicit BST
    std::size_t count = 0;
    std::shared_ptr<const void> owner;  // heap vectors or a file mapping
    // Sorted unique task indices appearing in this segment.
    std::shared_ptr<const std::vector<std::uint32_t>> tasks;
  };
  struct ClusterIndex {
    int cluster_id = 0;
    std::vector<Segment> segments;
  };

  /// Builds a heap-backed segment from unsorted entries.
  static Segment make_segment(std::vector<Entry> entries);
  /// Indexes tasks [first, size) of `schedule`, appending one segment per
  /// cluster that gains entries, and extends hash/bounds/count.
  void extend(const Schedule& schedule, std::size_t first);
  /// Shared tail of the extension paths: installs the per-cluster fresh
  /// entry lists as segments, widens the bounds, refolds the count.
  void finish_extend(std::vector<std::vector<Entry>>* fresh, bool any,
                     double lo, double hi, std::size_t new_count,
                     std::uint64_t new_tasks_hash);
  void compact_cluster(ClusterIndex* ci);

  const ClusterIndex* cluster(int id) const;

  // Worker count for segment builds during construction only; the built
  // index is immutable and thread-agnostic.
  int build_threads_ = 1;
  std::vector<ClusterIndex> clusters_;
  std::size_t task_count_ = 0;
  std::optional<TimeRange> time_range_;
  std::uint64_t content_hash_ = 0;
  std::uint64_t tasks_hash_ = 0;
};

}  // namespace jedule::model
