#include "jedule/model/composite.hpp"

#include <algorithm>
#include <iterator>
#include <limits>
#include <map>
#include <tuple>
#include <utility>

#include "jedule/model/task_index.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/parallel.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::model {

namespace {

struct Interval {
  std::size_t task_index;
  Time begin;
  Time end;
};

// One task allocation on a cluster: the host range plus the time interval.
struct Entry {
  HostRange range;
  Interval interval;
};

// Key identifying one composite rectangle group within a cluster: same
// member set and same time interval; hosts are merged below.
struct GroupKey {
  int cluster_id;
  Time begin;
  Time end;
  std::vector<std::size_t> members;  // sorted task indices
};

// Borrowed key: lets the sweep probe the group map with the live `active`
// vector, so the members are only copied when the group is actually new.
struct GroupKeyView {
  int cluster_id;
  Time begin;
  Time end;
  const std::vector<std::size_t>* members;
};

struct GroupKeyLess {
  using is_transparent = void;

  static std::tuple<int, Time, Time, const std::vector<std::size_t>&> tie(
      const GroupKey& k) {
    return {k.cluster_id, k.begin, k.end, k.members};
  }
  static std::tuple<int, Time, Time, const std::vector<std::size_t>&> tie(
      const GroupKeyView& k) {
    return {k.cluster_id, k.begin, k.end, *k.members};
  }

  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return tie(a) < tie(b);
  }
};

// Host lists are built as sorted coalesced ranges directly: slabs arrive in
// ascending host order, so touching ranges merge as they are appended.
using GroupMap = std::map<GroupKey, std::vector<HostRange>, GroupKeyLess>;

void append_group_slab(GroupMap& groups, int cluster_id, Time begin, Time end,
                       const std::vector<std::size_t>& active, HostRange slab) {
  const GroupKeyView view{cluster_id, begin, end, &active};
  auto it = groups.lower_bound(view);
  if (it == groups.end() || GroupKeyLess{}(view, it->first)) {
    it = groups.emplace_hint(it, GroupKey{cluster_id, begin, end, active},
                             std::vector<HostRange>());
  }
  auto& ranges = it->second;
  if (!ranges.empty() && ranges.back().start + ranges.back().nb == slab.start) {
    ranges.back().nb += slab.nb;
  } else {
    ranges.push_back(slab);
  }
}

// A slab of hosts of one cluster over which every participating allocation
// either covers all hosts or none — so all its hosts share one interval
// list and one sweep covers the whole slab.
struct Slab {
  int cluster_id;
  HostRange hosts;
  std::vector<Interval> intervals;
};

// Sweep one slab's intervals, emitting (members, t0, t1) segments where
// >= 2 tasks are simultaneously active; accumulates the slab's host range
// into `groups`.
void sweep_slab(const Slab& slab, GroupMap& groups) {
  struct Event {
    Time time;
    bool is_start;
    std::size_t task_index;
  };
  std::vector<Event> events;
  events.reserve(slab.intervals.size() * 2);
  for (const auto& iv : slab.intervals) {
    events.push_back(Event{iv.begin, true, iv.task_index});
    events.push_back(Event{iv.end, false, iv.task_index});
  }
  // Ends sort before starts at equal times, so half-open touching
  // intervals never co-occur.
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.is_start != b.is_start) return !a.is_start;
    return a.task_index < b.task_index;
  });

  std::vector<std::size_t> active;  // kept sorted
  std::size_t e = 0;
  Time prev_time = 0;
  bool have_prev = false;
  while (e < events.size()) {
    const Time now = events[e].time;
    if (have_prev && active.size() >= 2 && now > prev_time) {
      append_group_slab(groups, slab.cluster_id, prev_time, now, active,
                        slab.hosts);
    }
    while (e < events.size() && events[e].time == now) {
      if (events[e].is_start) {
        active.insert(
            std::lower_bound(active.begin(), active.end(),
                             events[e].task_index),
            events[e].task_index);
      } else {
        auto it = std::lower_bound(active.begin(), active.end(),
                                   events[e].task_index);
        JED_ASSERT(it != active.end() && *it == events[e].task_index);
        active.erase(it);
      }
      ++e;
    }
    prev_time = now;
    have_prev = true;
  }
}

// Cuts each cluster's host axis at every allocation boundary and builds the
// per-slab interval lists. Within a slab every host sees the same intervals,
// so the sweep cost scales with the number of distinct host ranges, not the
// number of hosts a range spans.
std::vector<Slab> build_slabs(
    const std::map<int, std::vector<Entry>>& per_cluster) {
  std::vector<Slab> slabs;
  for (const auto& [cluster_id, entries] : per_cluster) {
    int max_end = 0;
    for (const auto& entry : entries) {
      max_end = std::max(max_end, entry.range.start + entry.range.nb);
    }

    // Boundary values are host indices, so when they are dense relative to
    // the entry count a bucket pass replaces the O(E log E) sort and the
    // per-entry binary searches; sparse/huge clusters fall back to sorting.
    std::vector<int> cuts;
    std::vector<std::size_t> cut_index;  // value -> position in `cuts`
    const std::size_t bound = static_cast<std::size_t>(max_end) + 1;
    const bool dense = bound <= entries.size() * 4 + 1024;
    if (dense) {
      std::vector<char> mark(bound, 0);
      for (const auto& entry : entries) {
        mark[static_cast<std::size_t>(entry.range.start)] = 1;
        mark[static_cast<std::size_t>(entry.range.start + entry.range.nb)] = 1;
      }
      cut_index.assign(bound, 0);
      for (std::size_t v = 0; v < bound; ++v) {
        if (mark[v]) {
          cut_index[v] = cuts.size();
          cuts.push_back(static_cast<int>(v));
        }
      }
    } else {
      cuts.reserve(entries.size() * 2);
      for (const auto& entry : entries) {
        cuts.push_back(entry.range.start);
        cuts.push_back(entry.range.start + entry.range.nb);
      }
      std::sort(cuts.begin(), cuts.end());
      cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    }
    const auto index_of = [&](int value) {
      if (dense) return cut_index[static_cast<std::size_t>(value)];
      // Both bounds are cuts, so lower_bound lands exactly on them.
      return static_cast<std::size_t>(
          std::lower_bound(cuts.begin(), cuts.end(), value) - cuts.begin());
    };

    std::vector<std::vector<Interval>> lists(cuts.size() - 1);
    for (const auto& entry : entries) {
      const std::size_t k0 = index_of(entry.range.start);
      const std::size_t k1 = index_of(entry.range.start + entry.range.nb);
      for (std::size_t k = k0; k < k1; ++k) {
        lists[k].push_back(entry.interval);
      }
    }
    for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
      if (lists[k].size() < 2) continue;  // no overlap possible
      slabs.push_back(Slab{cluster_id, HostRange{cuts[k], cuts[k + 1] - cuts[k]},
                           std::move(lists[k])});
    }
  }
  return slabs;
}

// Appends task `i`'s allocations to the per-cluster entry lists, applying
// the participation filters (predicate, zero-area).
void add_task_entries(const std::vector<Task>& tasks, std::size_t i,
                      const std::function<bool(const Task&)>& include_task,
                      std::map<int, std::vector<Entry>>* per_cluster) {
  const Task& t = tasks[i];
  if (include_task && !include_task(t)) return;
  if (!(t.end_time() > t.start_time())) return;  // zero area
  for (const auto& cfg : t.configurations()) {
    for (const auto& range : cfg.hosts) {
      (*per_cluster)[cfg.cluster_id].push_back(
          Entry{range, Interval{i, t.start_time(), t.end_time()}});
    }
  }
}

// Slab build + sharded sweep + deterministic merge: the thread-count
// invariant pipeline shared by the full synthesis and the append path.
GroupMap sweep_groups(const std::map<int, std::vector<Entry>>& per_cluster,
                      int threads) {
  // Slabs are emitted in ascending (cluster, host) order so the sweep can be
  // partitioned into contiguous shards, one per worker slot.
  std::vector<Slab> slabs = build_slabs(per_cluster);

  const std::size_t shards = std::min<std::size_t>(
      slabs.size(), threads < 1 ? 1 : static_cast<std::size_t>(threads));
  std::vector<GroupMap> shard_groups(shards > 0 ? shards : 1);
  util::parallel_for(shards, threads, [&](std::size_t s) {
    const std::size_t begin = slabs.size() * s / shards;
    const std::size_t end = slabs.size() * (s + 1) / shards;
    for (std::size_t k = begin; k < end; ++k) {
      sweep_slab(slabs[k], shard_groups[s]);
    }
  });

  // Merge shards in ascending slab order: a group's host ranges end up
  // exactly as the serial sweep would have produced them (coalescing across
  // the shard seam), so the result never depends on the thread count.
  GroupMap groups = std::move(shard_groups[0]);
  for (std::size_t s = 1; s < shards; ++s) {
    auto& src = shard_groups[s];
    for (auto it = src.begin(); it != src.end();) {
      const auto next = std::next(it);
      auto dst = groups.lower_bound(it->first);
      if (dst != groups.end() && !groups.key_comp()(it->first, dst->first)) {
        auto& merged = dst->second;
        auto& incoming = it->second;
        std::size_t from = 0;
        if (!merged.empty() && !incoming.empty() &&
            merged.back().start + merged.back().nb == incoming.front().start) {
          merged.back().nb += incoming.front().nb;
          from = 1;
        }
        merged.insert(merged.end(), incoming.begin() + from, incoming.end());
      } else {
        groups.insert(dst, src.extract(it));
      }
      it = next;
    }
  }
  return groups;
}

// Materializes one composite task per group, in GroupMap key order:
// (cluster_id, begin, end, member indices) ascending.
std::vector<Composite> materialize(GroupMap&& groups,
                                   const std::vector<Task>& tasks) {
  std::vector<Composite> out;
  out.reserve(groups.size());
  for (auto& [key, ranges] : groups) {
    Composite comp;
    std::vector<std::string> ids;
    ids.reserve(key.members.size());
    for (std::size_t idx : key.members) {
      ids.push_back(tasks[idx].id());
      comp.member_types.insert(tasks[idx].type());
    }
    comp.task.set_id(util::join(ids, "+"));
    comp.member_ids = std::move(ids);
    comp.member_indices = key.members;
    comp.task.set_type("composite");
    comp.task.set_times(key.begin, key.end);
    Configuration cfg;
    cfg.cluster_id = key.cluster_id;
    cfg.hosts = std::move(ranges);
    comp.task.add_configuration(std::move(cfg));
    out.push_back(std::move(comp));
  }
  return out;
}

// The GroupMap key order, recovered from a materialized composite — the
// merge order of append_composites. Keys are distinct across the cut, so
// head + tail merge reproduces the full-sweep order exactly.
bool composite_less(const Composite& a, const Composite& b) {
  const int ca = a.task.configurations().front().cluster_id;
  const int cb = b.task.configurations().front().cluster_id;
  if (ca != cb) return ca < cb;
  if (a.task.start_time() != b.task.start_time()) {
    return a.task.start_time() < b.task.start_time();
  }
  if (a.task.end_time() != b.task.end_time()) {
    return a.task.end_time() < b.task.end_time();
  }
  return a.member_indices < b.member_indices;
}

}  // namespace

std::vector<Composite> synthesize_composites(
    const Schedule& schedule,
    const std::function<bool(const Task&)>& include_task, int threads) {
  const auto& tasks = schedule.tasks();

  // Per-cluster allocation lists; hosts stay as ranges throughout — the
  // sweep works per boundary-delimited slab, so the cost is in the number
  // of ranges, never in the hosts they expand to.
  std::map<int, std::vector<Entry>> per_cluster;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    add_task_entries(tasks, i, include_task, &per_cluster);
  }
  return materialize(sweep_groups(per_cluster, threads), tasks);
}

std::vector<Composite> append_composites(
    const Schedule& schedule, const TaskIndex& index,
    std::vector<Composite> cached, std::size_t first_new,
    const std::function<bool(const Task&)>& include_task, int threads) {
  const auto& tasks = schedule.tasks();
  JED_ASSERT(index.task_count() == tasks.size());
  JED_ASSERT(first_new <= tasks.size());
  if (first_new >= tasks.size()) return cached;
  if (first_new == 0) {
    return synthesize_composites(schedule, include_task, threads);
  }

  // The initial cut: the earliest participating appended task.
  bool any_new = false;
  Time t_cut = 0;
  for (std::size_t i = first_new; i < tasks.size(); ++i) {
    const Task& t = tasks[i];
    if (include_task && !include_task(t)) continue;
    if (!(t.end_time() > t.start_time())) continue;
    if (!any_new || t.start_time() < t_cut) t_cut = t.start_time();
    any_new = true;
  }
  if (!any_new) return cached;

  // Fixpoint: lower t_cut until no included task strictly straddles it.
  // Each straddler can lower the cut at most once (to its own begin), so
  // the loop terminates; the guard caps pathological nesting chains with
  // a full resweep, which is always correct.
  for (int guard = 0;; ++guard) {
    if (guard >= 256) {
      return synthesize_composites(schedule, include_task, threads);
    }
    Time lowest = t_cut;
    for (const auto& cluster : schedule.clusters()) {
      index.query(cluster.id, t_cut, t_cut, [&](const TaskIndex::Entry& e) {
        if (!(e.begin < t_cut && e.end > t_cut)) return;
        const Task& t = tasks[e.task];
        if (include_task && !include_task(t)) return;
        lowest = std::min(lowest, e.begin);
      });
    }
    if (lowest == t_cut) break;
    t_cut = lowest;
  }

  // Head: cached composites entirely before the cut, kept verbatim. A
  // composite's members are all active over its whole interval, so a
  // composite straddling the cut would imply straddling members — the
  // fixpoint ruled those out; every cached composite falls cleanly on
  // one side.
  std::vector<Composite> head;
  head.reserve(cached.size());
  for (auto& comp : cached) {
    JED_ASSERT(comp.task.end_time() <= t_cut ||
               comp.task.start_time() >= t_cut);
    if (comp.task.end_time() <= t_cut) head.push_back(std::move(comp));
  }

  // Tail: every included task at or after the cut, found via the index
  // (the closed-interval query also reports tasks ending exactly at the
  // cut; the start >= t_cut filter drops them — with no straddlers,
  // end > t_cut and start >= t_cut coincide for positive-area tasks).
  std::vector<std::uint32_t> subset;
  for (const auto& cluster : schedule.clusters()) {
    index.collect_tasks(cluster.id, t_cut,
                        std::numeric_limits<double>::infinity(), &subset);
  }
  std::sort(subset.begin(), subset.end());
  subset.erase(std::unique(subset.begin(), subset.end()), subset.end());

  std::map<int, std::vector<Entry>> per_cluster;
  for (std::uint32_t i : subset) {
    if (tasks[i].start_time() < t_cut) continue;
    add_task_entries(tasks, i, include_task, &per_cluster);
  }
  std::vector<Composite> tail =
      materialize(sweep_groups(per_cluster, threads), tasks);

  // Both halves are already in GroupMap order with distinct keys; the
  // merge reproduces the full-sweep output exactly.
  std::vector<Composite> out;
  out.reserve(head.size() + tail.size());
  std::merge(std::make_move_iterator(head.begin()),
             std::make_move_iterator(head.end()),
             std::make_move_iterator(tail.begin()),
             std::make_move_iterator(tail.end()), std::back_inserter(out),
             composite_less);
  return out;
}

bool has_resource_conflicts(
    const Schedule& schedule,
    const std::function<bool(const Task&)>& include_task) {
  return !synthesize_composites(schedule, include_task).empty();
}

Schedule with_composites(const Schedule& schedule) {
  Schedule out = schedule;
  auto composites = synthesize_composites(schedule);
  // Composite ids are concatenations of member ids; when the same member set
  // overlaps in several disjoint rectangles the id would repeat, so a
  // disambiguating suffix keeps task ids unique (validate() requires it).
  std::map<std::string, int> seen;
  for (auto& comp : composites) {
    Task t = std::move(comp.task);
    int& n = seen[t.id()];
    if (n > 0) t.set_id(t.id() + "#" + std::to_string(n));
    ++n;
    t.set_property("members", util::join(comp.member_ids, ","));
    std::vector<std::string> types(comp.member_types.begin(),
                                   comp.member_types.end());
    t.set_property("member_types", util::join(types, ","));
    out.add_task(std::move(t));
  }
  return out;
}

}  // namespace jedule::model
