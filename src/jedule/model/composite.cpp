#include "jedule/model/composite.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "jedule/util/error.hpp"
#include "jedule/util/parallel.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::model {

namespace {

struct Interval {
  std::size_t task_index;
  Time begin;
  Time end;
};

// Key identifying one composite rectangle group within a cluster: same
// member set and same time interval; hosts are merged below.
struct GroupKey {
  int cluster_id;
  Time begin;
  Time end;
  std::vector<std::size_t> members;  // sorted task indices

  bool operator<(const GroupKey& o) const {
    return std::tie(cluster_id, begin, end, members) <
           std::tie(o.cluster_id, o.begin, o.end, o.members);
  }
};

using GroupMap = std::map<GroupKey, std::vector<int>>;

std::vector<HostRange> compress_hosts(std::vector<int> hosts) {
  std::sort(hosts.begin(), hosts.end());
  std::vector<HostRange> ranges;
  for (int h : hosts) {
    if (!ranges.empty() &&
        ranges.back().start + ranges.back().nb == h) {
      ++ranges.back().nb;
    } else {
      ranges.push_back(HostRange{h, 1});
    }
  }
  return ranges;
}

// Sweep one resource's intervals, emitting (members, t0, t1) segments where
// >= 2 tasks are simultaneously active; accumulates the host into `groups`.
void sweep_resource(std::pair<int, int> resource,
                    const std::vector<Interval>& intervals, GroupMap& groups) {
  struct Event {
    Time time;
    bool is_start;
    std::size_t task_index;
  };
  std::vector<Event> events;
  events.reserve(intervals.size() * 2);
  for (const auto& iv : intervals) {
    events.push_back(Event{iv.begin, true, iv.task_index});
    events.push_back(Event{iv.end, false, iv.task_index});
  }
  // Ends sort before starts at equal times, so half-open touching
  // intervals never co-occur.
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.is_start != b.is_start) return !a.is_start;
    return a.task_index < b.task_index;
  });

  std::vector<std::size_t> active;  // kept sorted
  std::size_t e = 0;
  Time prev_time = 0;
  bool have_prev = false;
  while (e < events.size()) {
    const Time now = events[e].time;
    if (have_prev && active.size() >= 2 && now > prev_time) {
      GroupKey key{resource.first, prev_time, now, active};
      groups[key].push_back(resource.second);
    }
    while (e < events.size() && events[e].time == now) {
      if (events[e].is_start) {
        active.insert(
            std::lower_bound(active.begin(), active.end(),
                             events[e].task_index),
            events[e].task_index);
      } else {
        auto it = std::lower_bound(active.begin(), active.end(),
                                   events[e].task_index);
        JED_ASSERT(it != active.end() && *it == events[e].task_index);
        active.erase(it);
      }
      ++e;
    }
    prev_time = now;
    have_prev = true;
  }
}

}  // namespace

std::vector<Composite> synthesize_composites(
    const Schedule& schedule,
    const std::function<bool(const Task&)>& include_task, int threads) {
  const auto& tasks = schedule.tasks();

  // Per (cluster, host) interval lists. Host key: cluster-local index; we
  // keep a per-cluster map to avoid allocating total_hosts vectors when the
  // schedule is sparse (e.g. a 1024-node day trace).
  std::map<std::pair<int, int>, std::vector<Interval>> per_resource;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Task& t = tasks[i];
    if (include_task && !include_task(t)) continue;
    if (!(t.end_time() > t.start_time())) continue;  // zero area
    for (const auto& cfg : t.configurations()) {
      for (const auto& range : cfg.hosts) {
        for (int h = range.start; h < range.start + range.nb; ++h) {
          per_resource[{cfg.cluster_id, h}].push_back(
              Interval{i, t.start_time(), t.end_time()});
        }
      }
    }
  }

  // Flatten to (cluster, host) order so the sweep can be partitioned into
  // contiguous resource shards, one per worker slot.
  std::vector<std::pair<std::pair<int, int>, std::vector<Interval>>> resources;
  resources.reserve(per_resource.size());
  for (auto& [resource, intervals] : per_resource) {
    if (intervals.size() < 2) continue;
    resources.emplace_back(resource, std::move(intervals));
  }

  const std::size_t shards = std::min<std::size_t>(
      resources.size(), threads < 1 ? 1 : static_cast<std::size_t>(threads));
  std::vector<GroupMap> shard_groups(shards > 0 ? shards : 1);
  util::parallel_for(shards, threads, [&](std::size_t s) {
    const std::size_t begin = resources.size() * s / shards;
    const std::size_t end = resources.size() * (s + 1) / shards;
    for (std::size_t r = begin; r < end; ++r) {
      sweep_resource(resources[r].first, resources[r].second, shard_groups[s]);
    }
  });

  // Merge shards in ascending resource order: a group's host list ends up
  // in the same order the serial sweep would have produced, so the result
  // never depends on the thread count.
  GroupMap groups = std::move(shard_groups[0]);
  for (std::size_t s = 1; s < shards; ++s) {
    for (auto& [key, hosts] : shard_groups[s]) {
      auto& dst = groups[key];
      dst.insert(dst.end(), hosts.begin(), hosts.end());
    }
  }

  // Materialize one composite task per group.
  std::vector<Composite> out;
  out.reserve(groups.size());
  for (auto& [key, hosts] : groups) {
    Composite comp;
    std::vector<std::string> ids;
    for (std::size_t idx : key.members) {
      ids.push_back(tasks[idx].id());
      comp.member_types.insert(tasks[idx].type());
    }
    comp.member_ids = ids;
    comp.task.set_id(util::join(ids, "+"));
    comp.task.set_type("composite");
    comp.task.set_times(key.begin, key.end);
    Configuration cfg;
    cfg.cluster_id = key.cluster_id;
    cfg.hosts = compress_hosts(std::move(hosts));
    comp.task.add_configuration(std::move(cfg));
    out.push_back(std::move(comp));
  }
  return out;
}

bool has_resource_conflicts(
    const Schedule& schedule,
    const std::function<bool(const Task&)>& include_task) {
  return !synthesize_composites(schedule, include_task).empty();
}

Schedule with_composites(const Schedule& schedule) {
  Schedule out = schedule;
  auto composites = synthesize_composites(schedule);
  // Composite ids are concatenations of member ids; when the same member set
  // overlaps in several disjoint rectangles the id would repeat, so a
  // disambiguating suffix keeps task ids unique (validate() requires it).
  std::map<std::string, int> seen;
  for (auto& comp : composites) {
    Task t = std::move(comp.task);
    int& n = seen[t.id()];
    if (n > 0) t.set_id(t.id() + "#" + std::to_string(n));
    ++n;
    t.set_property("members", util::join(comp.member_ids, ","));
    std::vector<std::string> types(comp.member_types.begin(),
                                   comp.member_types.end());
    t.set_property("member_types", util::join(types, ","));
    out.add_task(std::move(t));
  }
  return out;
}

}  // namespace jedule::model
