#pragma once

// Core schedule data model (paper Sec. II.C.1).
//
// A Schedule consists of clusters C_j that partition the resource set P, and
// tasks v_i with a start time, a finish time, a user-chosen type, and one or
// more Configurations. Each configuration names a cluster and a possibly
// non-contiguous list of host ranges inside it; a task with configurations in
// several clusters spans clusters (e.g. an inter-cluster transfer).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace jedule::model {

using Time = double;

/// Contiguous run of hosts [start, start+nb) within one cluster, mirroring
/// the `<hosts start=".." nb=".."/>` element of the input format (Fig. 1).
struct HostRange {
  int start = 0;
  int nb = 0;

  friend bool operator==(const HostRange&, const HostRange&) = default;
};

/// Where (part of) a task runs: a cluster plus host ranges inside it.
struct Configuration {
  int cluster_id = 0;
  std::vector<HostRange> hosts;

  /// Total number of hosts covered (ranges are validated to be disjoint).
  int host_count() const;

  /// Expanded, ascending host indices.
  std::vector<int> host_list() const;

  friend bool operator==(const Configuration&, const Configuration&) = default;
};

namespace detail {
/// Global task-type pool. Task types ("computation", "transfer", ...) are
/// drawn from a tiny vocabulary even in million-task schedules, so every
/// Task stores one interned pointer instead of its own heap string. The
/// pool is append-only and thread-safe; returned pointers are stable for
/// the lifetime of the process.
const std::string* intern_task_type(std::string_view type);

inline const std::string* empty_task_type() {
  static const std::string* const kEmpty = intern_task_type(std::string_view());
  return kEmpty;
}
}  // namespace detail

class Task {
 public:
  Task() = default;
  Task(std::string id, std::string_view type, Time start, Time end)
      : id_(std::move(id)),
        type_(detail::intern_task_type(type)),
        start_(start),
        end_(end) {}

  const std::string& id() const { return id_; }
  void set_id(std::string id) { id_ = std::move(id); }

  const std::string& type() const { return *type_; }
  void set_type(std::string_view type) {
    type_ = detail::intern_task_type(type);
  }
  /// Bulk-materialization fast path: adopts an already-interned pointer
  /// (must come from detail::intern_task_type) without a pool lookup.
  void set_interned_type(const std::string* type) { type_ = type; }

  Time start_time() const { return start_; }
  Time end_time() const { return end_; }
  Time duration() const { return end_ - start_; }
  void set_times(Time start, Time end) {
    start_ = start;
    end_ = end;
  }

  const std::vector<Configuration>& configurations() const { return configs_; }
  void add_configuration(Configuration c) { configs_.push_back(std::move(c)); }

  /// Convenience: single contiguous allocation on one cluster.
  void allocate(int cluster_id, int first_host, int host_count);

  /// Total hosts over all configurations.
  int total_hosts() const;

  /// Free-form per-task key/value pairs (extra `node_property` entries such
  /// as the owning user of a job, or the member list of a composite task).
  const std::vector<std::pair<std::string, std::string>>& properties() const {
    return properties_;
  }
  void set_property(std::string key, std::string value);
  std::optional<std::string_view> property(std::string_view key) const;

 private:
  std::string id_;
  const std::string* type_ = detail::empty_task_type();
  Time start_ = 0;
  Time end_ = 0;
  std::vector<Configuration> configs_;
  std::vector<std::pair<std::string, std::string>> properties_;
};

struct Cluster {
  int id = 0;
  std::string name;
  int hosts = 0;

  friend bool operator==(const Cluster&, const Cluster&) = default;
};

/// Inclusive-exclusive time window [begin, end).
struct TimeRange {
  Time begin = 0;
  Time end = 0;

  Time length() const { return end - begin; }
  friend bool operator==(const TimeRange&, const TimeRange&) = default;
};

/// Scaled view: each cluster panel spans its own local time bounds.
/// Aligned view: every panel spans the global bounds (paper Sec. II.C.3).
enum class ViewMode { kScaled, kAligned };

/// Precedence (communication) edge between two tasks, by task index. The
/// application model is a DAG of communicating tasks; edges always point
/// forward in task order (src < dst), which validate() enforces — the task
/// sequence is therefore a topological order and acyclicity comes for free.
struct Dependency {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  double data = 0;  ///< transferred volume (bytes or user units), >= 0

  friend bool operator==(const Dependency&, const Dependency&) = default;
};

class Schedule {
 public:
  /// Adds a cluster; ids must be unique. Returns the cluster index.
  std::size_t add_cluster(Cluster c);
  std::size_t add_cluster(int id, std::string name, int hosts);

  const std::vector<Cluster>& clusters() const { return clusters_; }
  const Cluster& cluster_by_id(int id) const;
  bool has_cluster(int id) const;

  /// Sum of host counts over all clusters (|P|).
  int total_hosts() const;

  /// Index of (cluster, host) on the global resource axis, clusters stacked
  /// in insertion order. Used by the composite sweep and the renderer.
  int global_resource_index(int cluster_id, int host) const;

  void add_task(Task t) { tasks_.push_back(std::move(t)); }
  const std::vector<Task>& tasks() const { return tasks_; }
  std::vector<Task>& mutable_tasks() { return tasks_; }

  const Task* find_task(std::string_view id) const;

  /// Adds a precedence edge between two tasks by index. Edges must point
  /// forward in task order (src < dst); validated by validate().
  void add_dependency(std::uint32_t src, std::uint32_t dst, double data = 0) {
    deps_.push_back(Dependency{src, dst, data});
  }
  const std::vector<Dependency>& dependencies() const { return deps_; }
  std::vector<Dependency>& mutable_dependencies() { return deps_; }

  /// Schedule-level meta information (paper Sec. II.C.2), in file order.
  const std::vector<std::pair<std::string, std::string>>& meta() const {
    return meta_;
  }
  void set_meta(std::string key, std::string value);
  std::optional<std::string_view> meta_value(std::string_view key) const;

  /// Global time bounds over all tasks; nullopt for an empty schedule.
  std::optional<TimeRange> time_range() const;

  /// Local bounds of the tasks having at least one configuration in
  /// `cluster_id`; nullopt if none.
  std::optional<TimeRange> cluster_time_range(int cluster_id) const;

  /// Bounds a cluster panel should use under `mode` (falls back to the
  /// global range when the cluster is empty).
  std::optional<TimeRange> view_time_range(int cluster_id,
                                           ViewMode mode) const;

  /// cluster_time_range for every non-empty cluster in one pass over the
  /// tasks — the panel loop of layout_gantt would otherwise rescan all
  /// tasks once per displayed cluster.
  std::map<int, TimeRange> cluster_time_ranges() const;

  /// Tasks with at least one configuration in the cluster. This is an
  /// O(n) scan over all tasks; hot paths that already hold a TaskIndex
  /// or ScheduleArena should use TaskIndex::cluster_tasks / the arena's
  /// per-cluster partitions, which answer the same query precomputed.
  std::vector<const Task*> tasks_in_cluster(int cluster_id) const;

  /// Checks every invariant of DESIGN.md §6 items 1-2 plus time sanity and
  /// task-id uniqueness; throws jedule::ValidationError describing the first
  /// violation found.
  void validate() const;

 private:
  std::vector<Cluster> clusters_;
  std::map<int, std::size_t> cluster_index_;
  std::vector<Task> tasks_;
  std::vector<Dependency> deps_;
  std::vector<std::pair<std::string, std::string>> meta_;
};

}  // namespace jedule::model
