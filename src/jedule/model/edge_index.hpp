#pragma once

// model::EdgeIndex — the dependency-edge twin of model::TaskIndex
// (DESIGN.md §4j). Per cluster, every precedence edge with at least one
// endpoint configured in the cluster becomes one 32-byte Entry in a flat
// array sorted by the edge's time interval; an implicit balanced BST over
// the array stores subtree maximum end times, so "edges intersecting this
// time window" queries visit O(log n + k) entries instead of scanning all
// edges. An edge's interval is [min(src_end, dst_start), max(src_end,
// dst_start)] — the span the rendered arrow covers; intersection is
// closed, matching TaskIndex.
//
// Like TaskIndex, a cluster's entries live in immutable segments: a full
// build produces one segment per cluster (built in parallel across
// clusters), the O(delta) extension constructor shares the base segments
// and adds one small segment of only the new edges, and segments may
// alias an mmapped snapshot. Queries are deterministic regardless of the
// build history because entries are reported per segment in sorted order
// and render callers re-sort the visible set.
//
// The index also carries the schedule's critical path through the
// dependency DAG (weights = task durations), mirroring
// dag::Dag::critical_path exactly — task order is a valid topological
// order because edges always point forward (src < dst), so the DP is one
// pass over the CSR columns and extends in O(delta) on append (appended
// edges never enter old tasks, so old finish times stay valid).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "jedule/model/schedule.hpp"

namespace jedule::model {

class ScheduleArena;

class EdgeIndex {
 public:
  struct Entry {
    double begin = 0;  // min(src end, dst start)
    double end = 0;    // max(src end, dst start)
    // Representative host row of each endpoint in this cluster (first
    // host of its first configuration there), or -1 when the endpoint
    // has no configuration in the cluster (a cross-cluster edge).
    std::int32_t src_host = -1;
    std::int32_t dst_host = -1;
    std::uint32_t src = 0;  // task indices into Schedule::tasks()
    std::uint32_t dst = 0;
  };

  /// Empty index (no clusters, no edges) — the placeholder state for
  /// two-phase construction (engine::ScheduleEntry).
  EdgeIndex() = default;

  /// Builds the index from the schedule's dependency list in O(n + m +
  /// m log m). `threads` > 1 builds the per-cluster segments concurrently;
  /// the segments — and every query result — are identical at any thread
  /// count.
  explicit EdgeIndex(const Schedule& schedule, int threads = 1);

  /// Same build reading the CSR columns straight from the arena.
  explicit EdgeIndex(const ScheduleArena& arena, int threads = 1);

  /// O(delta) extension: `base` indexed the first `first_new` tasks of
  /// `arena` (same clusters, tasks only appended). Shares the base's
  /// segments, indexes only edges entering tasks [first_new, n), and
  /// continues the critical-path DP from the base's finish times.
  EdgeIndex(const EdgeIndex& base, const ScheduleArena& arena,
            std::size_t first_new);

  /// One pre-sorted, pre-augmented cluster loaded from a snapshot; the
  /// pointers typically alias an mmapped file kept alive by `Raw::owner`.
  struct RawCluster {
    int cluster_id = 0;
    const Entry* entries = nullptr;   // sorted by (begin, src, dst)
    const double* max_end = nullptr;  // implicit-BST augmentation
    std::size_t count = 0;
  };

  /// Zero-copy construction input (the `.jbin` load path): trusted
  /// precomputed segments plus the recorded hash. The critical-path DP is
  /// recomputed from the arena's CSR columns (O(n + m), not serialized).
  struct Raw {
    std::vector<RawCluster> clusters;
    std::shared_ptr<const void> owner;  // keeps the mapping alive
    std::uint64_t edges_hash = 0;
    std::size_t edge_count = 0;
  };
  EdgeIndex(Raw raw, const ScheduleArena& arena);

  std::size_t edge_count() const { return edge_count_; }
  bool empty() const { return edge_count_ == 0; }

  /// Entries indexed for `cluster_id` (0 for unknown clusters).
  std::size_t entry_count(int cluster_id) const;

  /// Number of segments backing `cluster_id` (test/bench introspection).
  std::size_t segment_count(int cluster_id) const;

  /// Calls `fn` for every entry of `cluster_id` whose closed interval
  /// [begin, end] intersects [t0, t1]. An edge is reported once per
  /// cluster that contains either endpoint; order is unspecified.
  void query(int cluster_id, double t0, double t1,
             const std::function<void(const Entry&)>& fn) const;

  /// Number of entries intersecting the window, stopping early once
  /// `limit` is reached — the arrows-vs-heat density probe.
  std::size_t count_upto(int cluster_id, double t0, double t1,
                         std::size_t limit) const;

  /// The critical path through the dependency DAG (weights = task
  /// durations), identical to dag::Dag::critical_path on the same edges.
  /// Ascending task indices, source to sink; empty when there are no
  /// tasks.
  const std::vector<std::uint32_t>& critical_path() const { return path_; }
  /// Its length in summed task durations (dag::Dag::critical_path_time);
  /// 0 for a schedule with no tasks, like the DAG walk.
  double critical_path_time() const { return any_tasks_ ? best_time_ : 0.0; }

  /// FNV fold of the arena's running edge hash and the edge count — the
  /// cache key for edge-dependent artifacts; 0 for the empty index.
  std::uint64_t content_hash() const;
  std::uint64_t edges_hash() const { return edges_hash_; }

  /// One merged, sorted entry array (+ implicit-BST max_end) per cluster,
  /// in schedule cluster order — the snapshot serialization form.
  struct FlatCluster {
    int cluster_id = 0;
    std::vector<Entry> entries;
    std::vector<double> max_end;
  };
  std::vector<FlatCluster> flatten() const;

  /// Heap footprint (segments + DP arrays), for store accounting.
  std::size_t heap_bytes() const;

 private:
  struct Segment {
    const Entry* entries = nullptr;   // sorted by (begin, src, dst)
    const double* max_end = nullptr;  // subtree max end, implicit BST
    std::size_t count = 0;
    std::shared_ptr<const void> owner;  // heap vectors or a file mapping
  };
  struct ClusterIndex {
    int cluster_id = 0;
    std::vector<Segment> segments;
  };

  static Segment make_segment(std::vector<Entry> entries);
  /// Installs per-cluster fresh entry lists as segments (parallel across
  /// clusters when build_threads_ > 1) and compacts oversized clusters.
  void install_fresh(std::vector<std::vector<Entry>>* fresh);
  /// Emits the entries of every edge entering tasks [first, n) of the
  /// arena into the per-cluster lists.
  void emit_entries(const ScheduleArena& arena, std::size_t first,
                    std::vector<std::vector<Entry>>* fresh);
  void compact_cluster(ClusterIndex* ci);
  /// Extends the critical-path DP over tasks [first, n) of the arena.
  void extend_dp(const ScheduleArena& arena, std::size_t first);
  void rebuild_path();

  const ClusterIndex* cluster(int id) const;

  int build_threads_ = 1;
  std::vector<ClusterIndex> clusters_;
  std::size_t edge_count_ = 0;
  std::uint64_t edges_hash_ = 0;

  // Critical-path DP state, kept so the extension ctor resumes in
  // O(delta): finish[i] = duration(i) + max over predecessors.
  std::vector<double> finish_;
  std::vector<std::uint32_t> via_;  // kNoVia when no predecessor won
  std::vector<std::uint32_t> path_;
  double best_time_ = 0;
  std::uint32_t best_task_ = 0;
  bool any_tasks_ = false;
};

using EdgeIndexPtr = std::shared_ptr<const EdgeIndex>;

}  // namespace jedule::model
