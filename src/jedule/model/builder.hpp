#pragma once

// Fluent construction helper for schedules, used by examples and tests:
//
//   Schedule s = ScheduleBuilder()
//       .cluster(0, "cluster-0", 8)
//       .meta("algorithm", "CPA")
//       .task("1", "computation", 0.0, 0.31).on(0, /*first=*/0, /*count=*/8)
//       .task("2", "transfer", 0.31, 0.5).on(0, 0, 4).hosts(0, {6, 7})
//       .build();

#include <string>
#include <vector>

#include "jedule/model/schedule.hpp"

namespace jedule::model {

class ScheduleBuilder {
 public:
  ScheduleBuilder& cluster(int id, std::string name, int hosts);

  ScheduleBuilder& meta(std::string key, std::string value);

  /// Starts a new task; subsequent on()/hosts()/property() calls apply to it.
  ScheduleBuilder& task(std::string id, std::string type, Time start,
                        Time end);

  /// Adds a contiguous allocation [first, first+count) on `cluster_id`.
  ScheduleBuilder& on(int cluster_id, int first_host, int host_count);

  /// Adds a scattered allocation: one configuration with one single-host
  /// range per listed host (non-contiguous layout, paper Sec. II.A).
  ScheduleBuilder& hosts(int cluster_id, const std::vector<int>& host_list);

  ScheduleBuilder& property(std::string key, std::string value);

  /// Validates and returns the schedule; throws ValidationError on problems.
  Schedule build();

 private:
  void flush_task();

  Schedule schedule_;
  Task pending_;
  bool has_pending_ = false;
};

}  // namespace jedule::model
