#include "jedule/model/arena.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <limits>
#include <unordered_set>

#include "jedule/model/fnv.hpp"
#include "jedule/util/error.hpp"

namespace jedule::model {

namespace {

using detail::fnv_double;
using detail::fnv_string;
using detail::fnv_u64;

constexpr std::uint32_t kIdEmpty = 0xFFFFFFFFu;
constexpr std::size_t kDensityBins = 256;

// Scalar fallbacks for the columnar scans; render::kernels swaps in the
// runtime-dispatched SIMD variants via set_column_scan_ops().
void scalar_minmax_f64(const double* a, const double* b, std::size_t n,
                       double* lo, double* hi) {
  double l = a[0], h = b[0];
  for (std::size_t i = 1; i < n; ++i) {
    l = std::min(l, a[i]);
    h = std::max(h, b[i]);
  }
  *lo = l;
  *hi = h;
}

std::size_t scalar_first_violation(const double* start, const double* end,
                                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!(end[i] >= start[i])) return i;
  }
  return n;
}

ColumnScanOps g_scan_ops{&scalar_minmax_f64, &scalar_first_violation};

// Density bin geometry is a pure function of the cluster's current time
// bounds, so an incrementally grown histogram always matches a freshly
// built one: the width is the smallest power of two covering the range
// with kDensityBins bins, and the origin snaps down to the width grid.
void density_geometry(Time begin, Time end, Time* origin, Time* width) {
  double len = end - begin;
  if (!(len > 0)) len = 1.0;
  double w = 1.0;
  while (w * static_cast<double>(kDensityBins) < len) w *= 2;
  while (w * static_cast<double>(kDensityBins) >= len * 2 && w > 1e-9) w /= 2;
  if (w * static_cast<double>(kDensityBins) < len) w *= 2;
  double o = std::floor(begin / w) * w;
  while (end > o + w * static_cast<double>(kDensityBins)) {
    w *= 2;
    o = std::floor(begin / w) * w;
  }
  *origin = o;
  *width = w;
}

std::size_t density_bin(const ScheduleArena::Density& d, Time t) {
  auto k = static_cast<long long>(std::floor((t - d.origin) / d.bin_width));
  if (k < 0) k = 0;
  if (k >= static_cast<long long>(d.bins.size())) {
    k = static_cast<long long>(d.bins.size()) - 1;
  }
  return static_cast<std::size_t>(k);
}

}  // namespace

void set_column_scan_ops(const ColumnScanOps& ops) {
  if (ops.minmax_f64 != nullptr) g_scan_ops.minmax_f64 = ops.minmax_f64;
  if (ops.first_violation != nullptr) {
    g_scan_ops.first_violation = ops.first_violation;
  }
}

const ColumnScanOps& column_scan_ops() { return g_scan_ops; }

// ---------------------------------------------------------------------------
// Construction from the AoS schedule

ScheduleArena::ScheduleArena(const Schedule& schedule) {
  clusters_ = schedule.clusters();
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    cluster_slot_[clusters_[c].id] = c;
  }
  meta_ = schedule.meta();

  const auto& tasks = schedule.tasks();
  const std::size_t n = tasks.size();

  auto& start = start_.owned();
  auto& end = end_.owned();
  auto& type_id = type_id_.owned();
  auto& id_off = id_off_.owned();
  auto& id_pool = id_pool_.owned();
  auto& cfg_off = cfg_off_.owned();
  auto& cfg_cluster = cfg_cluster_.owned();
  auto& range_off = range_off_.owned();
  auto& ranges = ranges_.owned();
  auto& prop_off = prop_off_.owned();
  auto& prop_slices = prop_slices_.owned();
  auto& prop_pool = prop_pool_.owned();

  start.reserve(n);
  end.reserve(n);
  type_id.reserve(n);
  id_off.reserve(n + 1);
  cfg_off.reserve(n + 1);
  prop_off.reserve(n + 1);
  id_off.push_back(0);
  cfg_off.push_back(0);
  range_off.push_back(0);
  prop_off.push_back(0);

  std::map<std::string_view, std::uint32_t> type_slot;
  for (const Task& t : tasks) {
    start.push_back(t.start_time());
    end.push_back(t.end_time());

    auto it = type_slot.find(t.type());
    if (it == type_slot.end()) {
      // The key views the process-wide type intern pool (Task::type()
      // returns the interned string), so it stays valid however types_
      // reallocates.
      it = type_slot
               .emplace(t.type(), static_cast<std::uint32_t>(types_.size()))
               .first;
      types_.push_back(t.type());
    }
    type_id.push_back(it->second);

    id_pool.insert(id_pool.end(), t.id().begin(), t.id().end());
    id_off.push_back(id_pool.size());

    for (const auto& cfg : t.configurations()) {
      cfg_cluster.push_back(cfg.cluster_id);
      ranges.insert(ranges.end(), cfg.hosts.begin(), cfg.hosts.end());
      range_off.push_back(static_cast<std::uint32_t>(ranges.size()));
    }
    cfg_off.push_back(static_cast<std::uint32_t>(cfg_cluster.size()));

    for (const auto& [k, v] : t.properties()) {
      prop_slices.push_back(prop_pool.size());
      prop_slices.push_back(k.size());
      prop_pool.insert(prop_pool.end(), k.begin(), k.end());
      prop_slices.push_back(prop_pool.size());
      prop_slices.push_back(v.size());
      prop_pool.insert(prop_pool.end(), v.begin(), v.end());
    }
    prop_off.push_back(static_cast<std::uint32_t>(prop_slices.size() / 4));
  }

  // CSR edge columns, grouped by destination task (stable counting sort
  // preserves per-destination insertion order). Built only when the
  // schedule actually carries dependencies; src < dst was certified by
  // Schedule::validate and is re-checked by check_structure on load.
  edges_hash_ = detail::kFnvOffset;
  if (!schedule.dependencies().empty()) {
    const auto& deps = schedule.dependencies();
    auto& dep_off = dep_off_.owned();
    auto& dep_src = dep_src_.owned();
    auto& dep_data = dep_data_.owned();
    dep_off.assign(n + 1, 0);
    for (const Dependency& d : deps) ++dep_off[d.dst + 1];
    for (std::size_t i = 0; i < n; ++i) dep_off[i + 1] += dep_off[i];
    dep_src.resize(deps.size());
    dep_data.resize(deps.size());
    std::vector<std::uint64_t> cursor(dep_off.begin(), dep_off.end() - 1);
    for (const Dependency& d : deps) {
      const std::uint64_t slot = cursor[d.dst]++;
      dep_src[slot] = d.src;
      dep_data[slot] = d.data;
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::uint64_t k = dep_off[i]; k < dep_off[i + 1]; ++k) {
        hash_edge(dep_src[k], static_cast<std::uint32_t>(i), dep_data[k]);
      }
    }
  }

  build_derived();

  tasks_hash_ = detail::kFnvOffset;
  fnv_u64(&tasks_hash_, clusters_.size());
  for (const auto& c : clusters_) {
    fnv_u64(&tasks_hash_, static_cast<std::uint64_t>(c.id));
    fnv_u64(&tasks_hash_, static_cast<std::uint64_t>(c.hosts));
    fnv_string(&tasks_hash_, c.name);
  }
  for (std::size_t i = 0; i < n; ++i) hash_row(i);
}

// ---------------------------------------------------------------------------
// Construction from loaded columns

ScheduleArena::ScheduleArena(Raw raw)
    : start_(std::move(raw.start)),
      end_(std::move(raw.end)),
      type_id_(std::move(raw.type_id)),
      id_off_(std::move(raw.id_off)),
      id_pool_(std::move(raw.id_pool)),
      cfg_off_(std::move(raw.cfg_off)),
      cfg_cluster_(std::move(raw.cfg_cluster)),
      range_off_(std::move(raw.range_off)),
      ranges_(std::move(raw.ranges)),
      prop_off_(std::move(raw.prop_off)),
      prop_slices_(std::move(raw.prop_slices)),
      prop_pool_(std::move(raw.prop_pool)),
      dep_off_(std::move(raw.dep_off)),
      dep_src_(std::move(raw.dep_src)),
      dep_data_(std::move(raw.dep_data)),
      types_(std::move(raw.types)),
      clusters_(std::move(raw.clusters)),
      meta_(std::move(raw.meta)),
      tasks_hash_(raw.tasks_hash),
      edges_hash_(raw.edges_hash != 0 ? raw.edges_hash : detail::kFnvOffset),
      owner_(std::move(raw.owner)),
      mapped_file_bytes_(raw.mapped_file_bytes) {
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    if (!cluster_slot_.emplace(clusters_[c].id, c).second) {
      throw ParseError("snapshot: duplicate cluster id " +
                       std::to_string(clusters_[c].id));
    }
  }
  check_structure();
  build_derived();
}

void ScheduleArena::check_structure() const {
  const std::size_t n = start_.size();
  auto fail = [](const std::string& what) {
    throw ParseError("snapshot: inconsistent columns (" + what + ")");
  };
  if (end_.size() != n || type_id_.size() != n) fail("task column sizes");
  if (id_off_.size() != n + 1 || cfg_off_.size() != n + 1 ||
      prop_off_.size() != n + 1) {
    fail("offset column sizes");
  }
  if (id_off_[0] != 0 || cfg_off_[0] != 0 || prop_off_[0] != 0) {
    fail("offset origins");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (id_off_[i + 1] < id_off_[i]) fail("id offsets");
    if (cfg_off_[i + 1] < cfg_off_[i]) fail("config offsets");
    if (prop_off_[i + 1] < prop_off_[i]) fail("property offsets");
    if (type_id_[i] >= types_.size()) fail("type ids");
  }
  if (id_off_[n] != id_pool_.size()) fail("id pool size");
  const std::size_t m = cfg_off_[n];
  if (cfg_cluster_.size() != m || range_off_.size() != m + 1) {
    fail("config column sizes");
  }
  if (m > 0 && range_off_[0] != 0) fail("range offsets");
  for (std::size_t c = 0; c < m; ++c) {
    if (range_off_[c + 1] < range_off_[c]) fail("range offsets");
  }
  if ((m == 0 && ranges_.size() != 0) ||
      (m > 0 && range_off_[m] != ranges_.size())) {
    fail("range count");
  }
  if (m == 0 && range_off_.size() != 1) fail("range offset size");
  if (dep_off_.empty()) {
    if (dep_src_.size() != 0 || dep_data_.size() != 0) fail("edge columns");
  } else {
    if (dep_off_.size() != n + 1) fail("edge offset size");
    if (dep_off_[0] != 0) fail("edge offset origin");
    for (std::size_t i = 0; i < n; ++i) {
      if (dep_off_[i + 1] < dep_off_[i]) fail("edge offsets");
    }
    if (dep_src_.size() != dep_off_[n] || dep_data_.size() != dep_off_[n]) {
      fail("edge column sizes");
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::uint64_t k = dep_off_[i]; k < dep_off_[i + 1]; ++k) {
        if (dep_src_[k] >= i) fail("edge sources");
      }
    }
  }
  const std::size_t p = prop_off_[n];
  if (prop_slices_.size() != p * 4) fail("property slice count");
  for (std::size_t s = 0; s < p; ++s) {
    const std::uint64_t ko = prop_slices_[4 * s];
    const std::uint64_t kl = prop_slices_[4 * s + 1];
    const std::uint64_t vo = prop_slices_[4 * s + 2];
    const std::uint64_t vl = prop_slices_[4 * s + 3];
    if (ko + kl < ko || ko + kl > prop_pool_.size() || vo + vl < vo ||
        vo + vl > prop_pool_.size()) {
      fail("property slices");
    }
  }
}

void ScheduleArena::build_derived() {
  per_cluster_.clear();
  any_tasks_ = false;
  const std::size_t n = start_.size();
  if (n > 0) {
    g_scan_ops.minmax_f64(start_.data(), end_.data(), n, &range_.begin,
                          &range_.end);
    any_tasks_ = true;
  }

  // Pass 1: partitions and per-cluster bounds. Consecutive configs tend
  // to name the same cluster, so one cached slot skips the map lookup on
  // the hot path of this million-iteration loop.
  std::vector<int> seen;  // clusters of the current task, deduplicated
  int cached_cid = 0;
  PerCluster* cached_pc = nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    seen.clear();
    for (std::size_t c = cfg_off_[i]; c < cfg_off_[i + 1]; ++c) {
      const int cid = cfg_cluster_[c];
      if (std::find(seen.begin(), seen.end(), cid) != seen.end()) continue;
      seen.push_back(cid);
      if (cached_pc == nullptr || cid != cached_cid) {
        cached_pc = &per_cluster_[cid];
        cached_cid = cid;
      }
      PerCluster& pc = *cached_pc;
      pc.tasks.push_back(static_cast<std::uint32_t>(i));
      if (!pc.any) {
        pc.range = TimeRange{start_[i], end_[i]};
        pc.any = true;
      } else {
        pc.range.begin = std::min(pc.range.begin, start_[i]);
        pc.range.end = std::max(pc.range.end, end_[i]);
      }
    }
  }

  // Pass 2: start-time density histograms (additive, so append() can bump
  // or re-bucket them without rescanning columns).
  for (auto& [cid, pc] : per_cluster_) {
    pc.density.bins.assign(kDensityBins, 0);
    density_geometry(pc.range.begin, pc.range.end, &pc.density.origin,
                     &pc.density.bin_width);
    for (std::uint32_t t : pc.tasks) {
      ++pc.density.bins[density_bin(pc.density, start_[t])];
    }
  }

  id_slots_.clear();
  id_count_ = 0;
}

// ---------------------------------------------------------------------------
// Column access

ScheduleArena::ColumnsView ScheduleArena::columns() const {
  ColumnsView v;
  v.tasks = start_.size();
  v.configs = cfg_cluster_.size();
  v.ranges_count = ranges_.size();
  v.props = prop_slices_.size() / 4;
  v.start = start_.data();
  v.end = end_.data();
  v.type_id = type_id_.data();
  v.id_off = id_off_.data();
  v.id_pool = id_pool_.data();
  v.id_pool_size = id_pool_.size();
  v.cfg_off = cfg_off_.data();
  v.cfg_cluster = cfg_cluster_.data();
  v.range_off = range_off_.data();
  v.ranges = ranges_.data();
  v.prop_off = prop_off_.data();
  v.prop_slices = prop_slices_.data();
  v.prop_pool = prop_pool_.data();
  v.prop_pool_size = prop_pool_.size();
  v.deps = dep_src_.size();
  v.dep_off = dep_off_.empty() ? nullptr : dep_off_.data();
  v.dep_src = dep_src_.data();
  v.dep_data = dep_data_.data();
  return v;
}

std::string_view ScheduleArena::task_id(std::size_t i) const {
  const std::uint64_t b = id_off_[i];
  return {id_pool_.data() + b, static_cast<std::size_t>(id_off_[i + 1] - b)};
}

std::string_view ScheduleArena::task_type(std::size_t i) const {
  return types_[type_id_[i]];
}

std::optional<TimeRange> ScheduleArena::time_range() const {
  if (!any_tasks_) return std::nullopt;
  return range_;
}

std::optional<TimeRange> ScheduleArena::cluster_time_range(
    int cluster_id) const {
  auto it = per_cluster_.find(cluster_id);
  if (it == per_cluster_.end() || !it->second.any) return std::nullopt;
  return it->second.range;
}

const std::vector<std::uint32_t>* ScheduleArena::cluster_tasks(
    int cluster_id) const {
  auto it = per_cluster_.find(cluster_id);
  if (it == per_cluster_.end()) return nullptr;
  return &it->second.tasks;
}

const ScheduleArena::Density* ScheduleArena::density(int cluster_id) const {
  auto it = per_cluster_.find(cluster_id);
  if (it == per_cluster_.end() || !it->second.any) return nullptr;
  return &it->second.density;
}

std::uint64_t ScheduleArena::content_hash() const {
  std::uint64_t h = tasks_hash_;
  fnv_u64(&h, task_count());
  return h;
}

std::uint64_t ScheduleArena::combined_hash() const {
  std::uint64_t h = content_hash();
  if (dep_src_.empty()) return h;
  fnv_u64(&h, edges_hash_);
  fnv_u64(&h, dep_src_.size());
  return h;
}

void ScheduleArena::hash_edge(std::uint32_t src, std::uint32_t dst,
                              double data) {
  fnv_u64(&edges_hash_, src);
  fnv_u64(&edges_hash_, dst);
  fnv_double(&edges_hash_, data);
}

// ---------------------------------------------------------------------------
// Hashing (must stay byte-identical to TaskIndex::hash_schedule)

void ScheduleArena::hash_row(std::size_t i) {
  std::uint64_t* h = &tasks_hash_;
  fnv_string(h, task_id(i));
  fnv_string(h, task_type(i));
  fnv_double(h, start_[i]);
  fnv_double(h, end_[i]);
  const std::size_t c0 = cfg_off_[i], c1 = cfg_off_[i + 1];
  fnv_u64(h, c1 - c0);
  for (std::size_t c = c0; c < c1; ++c) {
    fnv_u64(h, static_cast<std::uint64_t>(cfg_cluster_[c]));
    for (std::size_t r = range_off_[c]; r < range_off_[c + 1]; ++r) {
      fnv_u64(h, static_cast<std::uint64_t>(ranges_[r].start));
      fnv_u64(h, static_cast<std::uint64_t>(ranges_[r].nb));
    }
  }
  const std::size_t p0 = prop_off_[i], p1 = prop_off_[i + 1];
  fnv_u64(h, p1 - p0);
  for (std::size_t p = p0; p < p1; ++p) {
    const char* pool = prop_pool_.data();
    fnv_string(h, {pool + prop_slices_[4 * p],
                   static_cast<std::size_t>(prop_slices_[4 * p + 1])});
    fnv_string(h, {pool + prop_slices_[4 * p + 2],
                   static_cast<std::size_t>(prop_slices_[4 * p + 3])});
  }
}

// ---------------------------------------------------------------------------
// Task-id hash table

std::uint32_t ScheduleArena::id_table_find(std::string_view id) const {
  if (id_slots_.empty()) return kIdEmpty;
  const std::size_t cap = id_slots_.size();
  std::size_t h = std::hash<std::string_view>{}(id) & (cap - 1);
  while (id_slots_[h] != kIdEmpty) {
    if (task_id(id_slots_[h]) == id) return id_slots_[h];
    h = (h + 1) & (cap - 1);
  }
  return kIdEmpty;
}

void ScheduleArena::id_table_grow() const {
  const std::size_t cap = std::bit_ceil(
      std::max<std::size_t>(id_count_ * 2 + 16, id_slots_.size() * 2));
  std::vector<std::uint32_t> bigger(cap, kIdEmpty);
  for (std::uint32_t t : id_slots_) {
    if (t == kIdEmpty) continue;
    std::size_t h = std::hash<std::string_view>{}(task_id(t)) & (cap - 1);
    while (bigger[h] != kIdEmpty) h = (h + 1) & (cap - 1);
    bigger[h] = t;
  }
  id_slots_.swap(bigger);
}

void ScheduleArena::id_table_insert(std::uint32_t task,
                                    bool* duplicate) const {
  if (id_slots_.empty() || (id_count_ + 1) * 2 > id_slots_.size()) {
    id_table_grow();
  }
  const std::size_t cap = id_slots_.size();
  const std::string_view id = task_id(task);
  std::size_t h = std::hash<std::string_view>{}(id) & (cap - 1);
  while (id_slots_[h] != kIdEmpty) {
    if (task_id(id_slots_[h]) == id) {
      *duplicate = true;
      return;
    }
    h = (h + 1) & (cap - 1);
  }
  id_slots_[h] = task;
  ++id_count_;
  *duplicate = false;
}

// ---------------------------------------------------------------------------
// Validation (mirrors Schedule::validate, column-backed)

void ScheduleArena::validate() const {
  if (clusters_.empty()) {
    throw ValidationError("a schedule requires at least one cluster");
  }
  const std::size_t n = task_count();

  // Wide pre-scan: the common, valid case skips the per-row time branch
  // entirely; a hit is re-reported below at the exact row AoS validate
  // would have reached first.
  const std::size_t violation =
      n > 0 ? g_scan_ops.first_violation(start_.data(), end_.data(), n) : 0;

  id_slots_.assign(std::bit_ceil(n * 2 + 16), kIdEmpty);
  id_count_ = 0;

  int cached_id = 0;
  const Cluster* cached_cluster = nullptr;
  for (std::size_t ti = 0; ti < n; ++ti) {
    const std::string_view id = task_id(ti);
    if (id.empty()) {
      throw ValidationError("task with empty id");
    }
    bool duplicate = false;
    id_table_insert(static_cast<std::uint32_t>(ti), &duplicate);
    if (duplicate) {
      throw ValidationError("duplicate task id '" + std::string(id) + "'");
    }
    if (ti == violation) {
      throw ValidationError("task '" + std::string(id) + "' has end_time " +
                            std::to_string(end_[ti]) +
                            " before start_time " +
                            std::to_string(start_[ti]));
    }
    const std::size_t c0 = cfg_off_[ti], c1 = cfg_off_[ti + 1];
    if (c0 == c1) {
      throw ValidationError("task '" + std::string(id) +
                            "' has no configuration");
    }
    for (std::size_t c = c0; c < c1; ++c) {
      const int cid = cfg_cluster_[c];
      if (cached_cluster == nullptr || cid != cached_id) {
        auto it = cluster_slot_.find(cid);
        if (it == cluster_slot_.end()) {
          throw ValidationError("task '" + std::string(id) +
                                "' references unknown cluster " +
                                std::to_string(cid));
        }
        cached_id = cid;
        cached_cluster = &clusters_[it->second];
      }
      const Cluster& cluster = *cached_cluster;
      check_config_ranges(id, cluster, range_off_[c], range_off_[c + 1]);
    }
  }
  check_deps();
}

void ScheduleArena::check_deps() const {
  if (dep_off_.empty()) return;
  const std::size_t n = task_count();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint64_t k = dep_off_[i]; k < dep_off_[i + 1]; ++k) {
      if (dep_src_[k] >= i) {
        throw ValidationError(
            "dependency " + std::to_string(dep_src_[k]) + " -> " +
            std::to_string(i) +
            " must point forward in task order (src < dst)");
      }
      if (!(dep_data_[k] >= 0)) {
        throw ValidationError("dependency " + std::to_string(dep_src_[k]) +
                              " -> " + std::to_string(i) +
                              " has negative data " +
                              std::to_string(dep_data_[k]));
      }
    }
  }
}

void ScheduleArena::check_config_ranges(std::string_view id,
                                        const Cluster& cluster,
                                        std::size_t r0,
                                        std::size_t r1) const {
  if (r0 == r1) {
    throw ValidationError("task '" + std::string(id) +
                          "' has a configuration without hosts");
  }
  std::map<int, int> used;
  for (std::size_t r = r0; r < r1; ++r) {
    const HostRange range = ranges_[r];
    if (range.nb <= 0) {
      throw ValidationError("task '" + std::string(id) +
                            "' has a host range with nb <= 0");
    }
    if (range.start < 0 || range.start + range.nb > cluster.hosts) {
      throw ValidationError(
          "task '" + std::string(id) + "' host range [" +
          std::to_string(range.start) + ", " +
          std::to_string(range.start + range.nb) + ") exceeds cluster " +
          std::to_string(cluster.id) + " size " +
          std::to_string(cluster.hosts));
    }
    if (r1 - r0 == 1) break;
    const int start = range.start;
    const int end = range.start + range.nb;
    int dup = -1;
    auto next = used.upper_bound(start);
    if (next != used.begin() && std::prev(next)->second > start) {
      dup = start;
    } else if (next != used.end() && next->first < end) {
      dup = next->first;
    }
    if (dup >= 0) {
      throw ValidationError("task '" + std::string(id) + "' lists host " +
                            std::to_string(dup) + " of cluster " +
                            std::to_string(cluster.id) + " twice");
    }
    int merged_start = start;
    int merged_end = end;
    if (next != used.begin() && std::prev(next)->second == start) {
      auto prev = std::prev(next);
      merged_start = prev->first;
      used.erase(prev);
    }
    if (next != used.end() && next->first == end) {
      merged_end = next->second;
      used.erase(next);
    }
    used[merged_start] = merged_end;
  }
}

void ScheduleArena::validate_columns() const {
  if (clusters_.empty()) {
    throw ValidationError("a schedule requires at least one cluster");
  }
  const std::size_t n = task_count();
  if (n == 0) return;

  // Each invariant becomes one branch-light sweep over a single column
  // instead of validate()'s fused per-row walk; none of them needs the
  // task id until the (exceptional) moment it reports a violation.
  const std::size_t violation =
      g_scan_ops.first_violation(start_.data(), end_.data(), n);
  if (violation < n) {
    throw ValidationError("task '" + std::string(task_id(violation)) +
                          "' has end_time " + std::to_string(end_[violation]) +
                          " before start_time " +
                          std::to_string(start_[violation]));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (id_off_[i + 1] == id_off_[i]) {
      throw ValidationError("task with empty id");
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (cfg_off_[i + 1] == cfg_off_[i]) {
      throw ValidationError("task '" + std::string(task_id(i)) +
                            "' has no configuration");
    }
  }

  // Host-range sweep over the flat config columns. Configs are grouped by
  // task but clusters repeat heavily, so one cached cluster pointer covers
  // almost every row; the task id is recovered by binary search only when
  // a violation needs reporting.
  auto task_of_config = [&](std::size_t c) -> std::string_view {
    const std::uint32_t cc = static_cast<std::uint32_t>(c);
    const auto it =
        std::upper_bound(cfg_off_.data() + 1, cfg_off_.data() + n + 1, cc);
    return task_id(static_cast<std::size_t>(it - (cfg_off_.data() + 1)));
  };
  const std::size_t m = cfg_off_[n];
  int cached_id = 0;
  const Cluster* cached_cluster = nullptr;
  for (std::size_t c = 0; c < m; ++c) {
    const int cid = cfg_cluster_[c];
    if (cached_cluster == nullptr || cid != cached_id) {
      auto it = cluster_slot_.find(cid);
      if (it == cluster_slot_.end()) {
        throw ValidationError("task '" + std::string(task_of_config(c)) +
                              "' references unknown cluster " +
                              std::to_string(cid));
      }
      cached_id = cid;
      cached_cluster = &clusters_[it->second];
    }
    const std::size_t r0 = range_off_[c], r1 = range_off_[c + 1];
    if (r1 - r0 == 1) {
      // Overwhelmingly common shape: one contiguous range, three compares.
      const HostRange range = ranges_[r0];
      if (range.nb > 0 && range.start >= 0 &&
          range.start + range.nb <= cached_cluster->hosts) {
        continue;
      }
    }
    check_config_ranges(task_of_config(c), *cached_cluster, r0, r1);
  }
  check_deps();
}

// ---------------------------------------------------------------------------
// Materialization

Schedule ScheduleArena::to_schedule() const {
  Schedule out;
  for (const auto& c : clusters_) out.add_cluster(c);
  for (const auto& [k, v] : meta_) out.set_meta(k, v);

  // Intern each distinct type once instead of per task — at a million
  // tasks the per-row intern lookup would be the materialization cost.
  std::vector<const std::string*> interned;
  interned.reserve(types_.size());
  for (const auto& t : types_) interned.push_back(detail::intern_task_type(t));

  const std::size_t n = task_count();
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.set_id(std::string(task_id(i)));
    t.set_interned_type(interned[type_id_[i]]);
    t.set_times(start_[i], end_[i]);
    for (std::size_t c = cfg_off_[i]; c < cfg_off_[i + 1]; ++c) {
      Configuration cfg;
      cfg.cluster_id = cfg_cluster_[c];
      cfg.hosts.assign(ranges_.data() + range_off_[c],
                       ranges_.data() + range_off_[c + 1]);
      t.add_configuration(std::move(cfg));
    }
    for (std::size_t p = prop_off_[i]; p < prop_off_[i + 1]; ++p) {
      const char* pool = prop_pool_.data();
      t.set_property(
          std::string(pool + prop_slices_[4 * p],
                      static_cast<std::size_t>(prop_slices_[4 * p + 1])),
          std::string(pool + prop_slices_[4 * p + 2],
                      static_cast<std::size_t>(prop_slices_[4 * p + 3])));
    }
    out.add_task(std::move(t));
  }
  if (!dep_off_.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::uint64_t k = dep_off_[i]; k < dep_off_[i + 1]; ++k) {
        out.add_dependency(dep_src_[k], static_cast<std::uint32_t>(i),
                           dep_data_[k]);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// O(delta) append

void ScheduleArena::append(const std::vector<Event>& events) {
  // Phase 1: validate everything without touching the arena, so a bad
  // batch leaves it unchanged. The persistent id table answers duplicate
  // probes in O(1) per event instead of re-probing all rows.
  if (id_slots_.empty() && task_count() > 0) {
    // validate() normally seeds the table; seed it here for arenas that
    // skipped it (trusted snapshot loads).
    id_slots_.assign(std::bit_ceil(task_count() * 2 + 16), kIdEmpty);
    id_count_ = 0;
    for (std::size_t i = 0; i < task_count(); ++i) {
      bool duplicate = false;
      id_table_insert(static_cast<std::uint32_t>(i), &duplicate);
    }
  }
  std::unordered_set<std::string_view> batch_ids;
  batch_ids.reserve(events.size());
  // Dep targets resolved during phase 1 (per event, parallel to `events`),
  // so phase 2 commits without re-probing. A dep may name an existing
  // task or an *earlier* event of this batch — later events would break
  // the src < dst invariant and read as unknown here.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> resolved;
  resolved.reserve(events.size());
  std::map<std::string_view, std::uint32_t> batch_index;
  std::uint32_t next_index = static_cast<std::uint32_t>(task_count());
  for (const Event& e : events) {
    if (e.id.empty()) {
      throw ValidationError("task with empty id");
    }
    if (id_table_find(e.id) != kIdEmpty || !batch_ids.insert(e.id).second) {
      throw ValidationError("duplicate task id '" + e.id + "'");
    }
    if (!(e.end >= e.start)) {
      throw ValidationError("task '" + e.id + "' has end_time " +
                            std::to_string(e.end) + " before start_time " +
                            std::to_string(e.start));
    }
    auto it = cluster_slot_.find(e.cluster_id);
    if (it == cluster_slot_.end()) {
      throw ValidationError("task '" + e.id + "' references unknown cluster " +
                            std::to_string(e.cluster_id));
    }
    const Cluster& cluster = clusters_[it->second];
    if (e.host_nb <= 0) {
      throw ValidationError("task '" + e.id +
                            "' has a host range with nb <= 0");
    }
    if (e.host_start < 0 || e.host_start + e.host_nb > cluster.hosts) {
      throw ValidationError(
          "task '" + e.id + "' host range [" + std::to_string(e.host_start) +
          ", " + std::to_string(e.host_start + e.host_nb) +
          ") exceeds cluster " + std::to_string(cluster.id) + " size " +
          std::to_string(cluster.hosts));
    }
    resolved.emplace_back();
    auto& out = resolved.back();
    out.reserve(e.deps.size());
    for (const auto& [src_id, data] : e.deps) {
      std::uint32_t src = id_table_find(src_id);
      if (src == kIdEmpty) {
        auto bit = batch_index.find(src_id);
        if (bit != batch_index.end()) src = bit->second;
      }
      if (src == kIdEmpty) {
        throw ValidationError("task '" + e.id + "' depends on unknown task '" +
                              src_id + "'");
      }
      if (!(data >= 0)) {
        throw ValidationError("task '" + e.id + "' dependency on '" + src_id +
                              "' has negative data " + std::to_string(data));
      }
      out.emplace_back(src, data);
    }
    batch_index.emplace(e.id, next_index++);
  }

  // Phase 2: commit. First write to a mapped arena copies the columns out.
  ensure_owned();
  bool batch_has_deps = false;
  for (const auto& r : resolved) {
    if (!r.empty()) {
      batch_has_deps = true;
      break;
    }
  }
  if (batch_has_deps && dep_off_.empty()) materialize_dep_offsets();
  std::map<std::string_view, std::uint32_t> type_slot;
  for (std::size_t t = 0; t < types_.size(); ++t) {
    type_slot[*detail::intern_task_type(types_[t])] =
        static_cast<std::uint32_t>(t);
  }
  for (std::size_t ev = 0; ev < events.size(); ++ev) {
    const Event& e = events[ev];
    const auto i = static_cast<std::uint32_t>(task_count());
    start_.owned().push_back(e.start);
    end_.owned().push_back(e.end);

    auto ts = type_slot.find(e.type);
    if (ts == type_slot.end()) {
      const auto slot = static_cast<std::uint32_t>(types_.size());
      types_.push_back(e.type);
      ts = type_slot.emplace(*detail::intern_task_type(e.type), slot).first;
    }
    type_id_.owned().push_back(ts->second);

    auto& id_pool = id_pool_.owned();
    id_pool.insert(id_pool.end(), e.id.begin(), e.id.end());
    id_off_.owned().push_back(id_pool.size());

    cfg_cluster_.owned().push_back(e.cluster_id);
    ranges_.owned().push_back(HostRange{e.host_start, e.host_nb});
    range_off_.owned().push_back(
        static_cast<std::uint32_t>(ranges_.size()));
    cfg_off_.owned().push_back(
        static_cast<std::uint32_t>(cfg_cluster_.size()));
    prop_off_.owned().push_back(
        static_cast<std::uint32_t>(prop_slices_.size() / 4));

    if (!dep_off_.empty()) {
      for (const auto& [src, data] : resolved[ev]) {
        dep_src_.owned().push_back(src);
        dep_data_.owned().push_back(data);
        hash_edge(src, i, data);
      }
      dep_off_.owned().push_back(dep_src_.size());
    }

    bool duplicate = false;
    id_table_insert(i, &duplicate);

    PerCluster& pc = per_cluster_[e.cluster_id];
    pc.tasks.push_back(i);
    const bool fresh = !pc.any;
    if (fresh) {
      pc.range = TimeRange{e.start, e.end};
      pc.any = true;
    } else {
      pc.range.begin = std::min(pc.range.begin, e.start);
      pc.range.end = std::max(pc.range.end, e.end);
    }
    bump_density(&pc, e.start);

    if (!any_tasks_) {
      range_ = TimeRange{e.start, e.end};
      any_tasks_ = true;
    } else {
      range_.begin = std::min(range_.begin, e.start);
      range_.end = std::max(range_.end, e.end);
    }

    hash_row(i);
  }
  ++version_;
}

void ScheduleArena::materialize_dep_offsets() {
  auto& off = dep_off_.owned();
  off.assign(task_count() + 1, 0);
  if (edges_hash_ == 0) edges_hash_ = detail::kFnvOffset;
}

void ScheduleArena::bump_density(PerCluster* pc, Time start) {
  Density& d = pc->density;
  if (d.bins.empty()) {
    d.bins.assign(kDensityBins, 0);
    density_geometry(pc->range.begin, pc->range.end, &d.origin, &d.bin_width);
    ++d.bins[density_bin(d, start)];
    return;
  }
  Time origin = 0, width = 0;
  density_geometry(pc->range.begin, pc->range.end, &origin, &width);
  if (origin != d.origin || width != d.bin_width) {
    // The cluster outgrew its histogram: re-bucket the counts into the new
    // geometry. Start counts are additive, so no column rescan is needed —
    // every old bin lands wholly inside one new bin (widths are powers of
    // two and origins snap to the width grid).
    std::vector<std::uint32_t> bins(kDensityBins, 0);
    Density fresh{origin, width, std::move(bins)};
    for (std::size_t k = 0; k < d.bins.size(); ++k) {
      if (d.bins[k] == 0) continue;
      const Time t = d.origin + (static_cast<Time>(k) + 0.5) * d.bin_width;
      fresh.bins[density_bin(fresh, t)] += d.bins[k];
    }
    d = std::move(fresh);
  }
  ++d.bins[density_bin(d, start)];
}

// ---------------------------------------------------------------------------
// Accounting

void ScheduleArena::ensure_owned() {
  start_.owned();
  end_.owned();
  type_id_.owned();
  id_off_.owned();
  id_pool_.owned();
  cfg_off_.owned();
  cfg_cluster_.owned();
  range_off_.owned();
  ranges_.owned();
  prop_off_.owned();
  prop_slices_.owned();
  prop_pool_.owned();
  if (!dep_off_.empty()) dep_off_.owned();
  dep_src_.owned();
  dep_data_.owned();
  owner_.reset();
  mapped_file_bytes_ = 0;
}

std::size_t ScheduleArena::heap_bytes() const {
  std::size_t b = start_.heap_bytes() + end_.heap_bytes() +
                  type_id_.heap_bytes() + id_off_.heap_bytes() +
                  id_pool_.heap_bytes() + cfg_off_.heap_bytes() +
                  cfg_cluster_.heap_bytes() + range_off_.heap_bytes() +
                  ranges_.heap_bytes() + prop_off_.heap_bytes() +
                  prop_slices_.heap_bytes() + prop_pool_.heap_bytes() +
                  dep_off_.heap_bytes() + dep_src_.heap_bytes() +
                  dep_data_.heap_bytes();
  b += id_slots_.capacity() * sizeof(std::uint32_t);
  for (const auto& [cid, pc] : per_cluster_) {
    b += pc.tasks.capacity() * sizeof(std::uint32_t);
    b += pc.density.bins.capacity() * sizeof(std::uint32_t);
  }
  for (const auto& t : types_) b += t.capacity();
  return b;
}

std::size_t ScheduleArena::mmap_bytes() const { return mapped_file_bytes_; }

bool ScheduleArena::mmap_backed() const { return owner_ != nullptr; }

}  // namespace jedule::model
