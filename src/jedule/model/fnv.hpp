#pragma once

// FNV-1a hashing helpers shared by TaskIndex::hash_schedule and the
// columnar ScheduleArena content hash. Both walk logically identical byte
// streams (clusters, then per-task fields, then the task count), so the
// two implementations must consume bytes through the same primitives —
// keeping them here makes an accidental divergence a compile-visible edit
// instead of a silent cache-key split.

#include <cstdint>
#include <cstring>
#include <string_view>

namespace jedule::model::detail {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void fnv_bytes(std::uint64_t* h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

inline void fnv_u64(std::uint64_t* h, std::uint64_t v) { fnv_bytes(h, &v, 8); }

inline void fnv_double(std::uint64_t* h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  fnv_u64(h, bits);
}

inline void fnv_string(std::uint64_t* h, std::string_view s) {
  fnv_u64(h, s.size());
  fnv_bytes(h, s.data(), s.size());
}

}  // namespace jedule::model::detail
