#pragma once

// Graphviz DOT export of a task graph — how we regenerate the workflow-
// structure figure (paper Fig. 6: "nodes with the same color are of same
// task type").

#include <string>

#include "jedule/dag/dag.hpp"

namespace jedule::dag {

/// DOT text with one fill color per node type (deterministic palette).
std::string to_dot(const Dag& dag);

void save_dot(const Dag& dag, const std::string& path);

}  // namespace jedule::dag
