#include "jedule/dag/dag.hpp"

#include <algorithm>
#include <queue>

#include "jedule/util/error.hpp"

namespace jedule::dag {

double Node::exec_time(int p, double speed) const {
  JED_ASSERT(p >= 1);
  JED_ASSERT(speed > 0);
  const double parallel = work / speed *
                          (serial_fraction + (1.0 - serial_fraction) / p);
  return parallel + overhead_per_proc * (p - 1);
}

int Dag::add_node(Node n) {
  n.id = static_cast<int>(nodes_.size());
  if (n.name.empty()) n.name = "v" + std::to_string(n.id);
  if (n.type.empty()) n.type = "computation";
  if (n.work <= 0) {
    throw ValidationError("node '" + n.name + "' must have positive work");
  }
  if (n.serial_fraction < 0 || n.serial_fraction > 1) {
    throw ValidationError("node '" + n.name +
                          "' serial fraction outside [0, 1]");
  }
  nodes_.push_back(std::move(n));
  adjacency_valid_ = false;
  return nodes_.back().id;
}

int Dag::add_node(std::string name, double work, double serial_fraction,
                  double overhead) {
  Node n;
  n.name = std::move(name);
  n.work = work;
  n.serial_fraction = serial_fraction;
  n.overhead_per_proc = overhead;
  return add_node(std::move(n));
}

void Dag::add_edge(int src, int dst, double data) {
  if (src < 0 || src >= node_count() || dst < 0 || dst >= node_count()) {
    throw ValidationError("edge endpoint out of range");
  }
  if (src == dst) throw ValidationError("self-loop on node " +
                                        std::to_string(src));
  if (data < 0) throw ValidationError("negative edge data");
  edges_.push_back(Edge{src, dst, data});
  adjacency_valid_ = false;
}

const Node& Dag::node(int id) const {
  JED_ASSERT(id >= 0 && id < node_count());
  return nodes_[static_cast<std::size_t>(id)];
}

Node& Dag::mutable_node(int id) {
  JED_ASSERT(id >= 0 && id < node_count());
  return nodes_[static_cast<std::size_t>(id)];
}

void Dag::ensure_adjacency() const {
  if (adjacency_valid_) return;
  succ_.assign(nodes_.size(), {});
  pred_.assign(nodes_.size(), {});
  for (const auto& e : edges_) {
    succ_[static_cast<std::size_t>(e.src)].push_back(e.dst);
    pred_[static_cast<std::size_t>(e.dst)].push_back(e.src);
  }
  adjacency_valid_ = true;
}

const std::vector<int>& Dag::successors(int id) const {
  ensure_adjacency();
  JED_ASSERT(id >= 0 && id < node_count());
  return succ_[static_cast<std::size_t>(id)];
}

const std::vector<int>& Dag::predecessors(int id) const {
  ensure_adjacency();
  JED_ASSERT(id >= 0 && id < node_count());
  return pred_[static_cast<std::size_t>(id)];
}

double Dag::edge_data(int src, int dst) const {
  for (const auto& e : edges_) {
    if (e.src == src && e.dst == dst) return e.data;
  }
  return 0.0;
}

std::vector<int> Dag::sources() const {
  std::vector<int> out;
  for (int v = 0; v < node_count(); ++v) {
    if (predecessors(v).empty()) out.push_back(v);
  }
  return out;
}

std::vector<int> Dag::sinks() const {
  std::vector<int> out;
  for (int v = 0; v < node_count(); ++v) {
    if (successors(v).empty()) out.push_back(v);
  }
  return out;
}

std::vector<int> Dag::topological_order() const {
  ensure_adjacency();
  std::vector<int> indegree(nodes_.size(), 0);
  for (const auto& e : edges_) ++indegree[static_cast<std::size_t>(e.dst)];
  // Min-heap keeps the order deterministic and stable across runs.
  std::priority_queue<int, std::vector<int>, std::greater<>> ready;
  for (int v = 0; v < node_count(); ++v) {
    if (indegree[static_cast<std::size_t>(v)] == 0) ready.push(v);
  }
  std::vector<int> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const int v = ready.top();
    ready.pop();
    order.push_back(v);
    for (int s : successors(v)) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push(s);
    }
  }
  if (order.size() != nodes_.size()) {
    throw ValidationError("graph '" + name_ + "' contains a cycle");
  }
  return order;
}

std::vector<int> Dag::precedence_levels() const {
  std::vector<int> level(nodes_.size(), 0);
  for (int v : topological_order()) {
    for (int p : predecessors(v)) {
      level[static_cast<std::size_t>(v)] =
          std::max(level[static_cast<std::size_t>(v)],
                   level[static_cast<std::size_t>(p)] + 1);
    }
  }
  return level;
}

double Dag::critical_path_time(const std::vector<double>& times) const {
  JED_ASSERT(times.size() == nodes_.size());
  std::vector<double> finish(nodes_.size(), 0.0);
  double best = 0.0;
  for (int v : topological_order()) {
    double start = 0.0;
    for (int p : predecessors(v)) {
      start = std::max(start, finish[static_cast<std::size_t>(p)]);
    }
    finish[static_cast<std::size_t>(v)] =
        start + times[static_cast<std::size_t>(v)];
    best = std::max(best, finish[static_cast<std::size_t>(v)]);
  }
  return best;
}

std::vector<int> Dag::critical_path(const std::vector<double>& times) const {
  JED_ASSERT(times.size() == nodes_.size());
  std::vector<double> finish(nodes_.size(), 0.0);
  std::vector<int> via(nodes_.size(), -1);
  int last = -1;
  double best = -1.0;
  for (int v : topological_order()) {
    double start = 0.0;
    for (int p : predecessors(v)) {
      if (finish[static_cast<std::size_t>(p)] > start) {
        start = finish[static_cast<std::size_t>(p)];
        via[static_cast<std::size_t>(v)] = p;
      }
    }
    finish[static_cast<std::size_t>(v)] =
        start + times[static_cast<std::size_t>(v)];
    if (finish[static_cast<std::size_t>(v)] > best) {
      best = finish[static_cast<std::size_t>(v)];
      last = v;
    }
  }
  std::vector<int> path;
  for (int v = last; v != -1; v = via[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double Dag::average_area(const std::vector<double>& times,
                         const std::vector<int>& allocs,
                         int total_procs) const {
  JED_ASSERT(times.size() == nodes_.size());
  JED_ASSERT(allocs.size() == nodes_.size());
  JED_ASSERT(total_procs > 0);
  return total_work(times, allocs) / total_procs;
}

double Dag::total_work(const std::vector<double>& times,
                       const std::vector<int>& allocs) const {
  double work = 0.0;
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    work += times[v] * allocs[v];
  }
  return work;
}

int Dag::width() const {
  const auto levels = precedence_levels();
  std::vector<int> count;
  for (int level : levels) {
    if (static_cast<std::size_t>(level) >= count.size()) {
      count.resize(static_cast<std::size_t>(level) + 1, 0);
    }
    ++count[static_cast<std::size_t>(level)];
  }
  int best = 0;
  for (int c : count) best = std::max(best, c);
  return best;
}

}  // namespace jedule::dag
