#pragma once

// DAG generators for the experiments. The CPA/MCPA evaluation of the paper
// sweeps "different types of DAGs (long, wide, serial, etc.)" (Sec. III.B);
// layered_random() with the presets below produces those families, and
// mcpa_pathological_dag() reconstructs the Fig. 4 trigger: a precedence
// level whose tasks have very different costs.

#include "jedule/dag/dag.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::dag {

struct LayeredDagOptions {
  int levels = 8;
  int min_width = 2;
  int max_width = 6;
  /// Probability of an edge from a level-l node to a level-(l+1) node
  /// (each non-source node keeps at least one predecessor).
  double edge_density = 0.35;
  double min_work = 5.0;
  double max_work = 60.0;
  double serial_fraction = 0.02;
  double overhead_per_proc = 0.02;
  double min_data = 0.5;   // MB on each edge
  double max_data = 8.0;
};

/// Random layered DAG; connected source-to-sink by construction.
Dag layered_random(const LayeredDagOptions& options, util::Rng& rng);

/// Preset families from the paper's experiment sweep.
Dag long_dag(int levels, util::Rng& rng);    // deep, narrow
Dag wide_dag(int width, util::Rng& rng);     // shallow, broad
Dag serial_dag(int length, util::Rng& rng);  // a chain

/// Fork-join: source -> `width` parallel tasks -> sink, repeated `phases`
/// times.
Dag fork_join_dag(int phases, int width, util::Rng& rng);

/// The Fig. 4 pathology: a DAG whose second precedence level contains both
/// very expensive and very cheap tasks. MCPA gives every task of the level
/// one processor (the level is as wide as the machine), so the cheap tasks
/// finish early and their processors idle while the expensive ones crawl —
/// the "large holes" of the figure. CPA lets the expensive tasks grow.
/// `machine_procs` should equal the cluster size the schedule targets.
Dag mcpa_pathological_dag(int machine_procs);

}  // namespace jedule::dag
