#include "jedule/dag/generators.hpp"

#include <algorithm>

#include "jedule/util/error.hpp"

namespace jedule::dag {

Dag layered_random(const LayeredDagOptions& options, util::Rng& rng) {
  JED_ASSERT(options.levels >= 1);
  JED_ASSERT(options.min_width >= 1 &&
             options.max_width >= options.min_width);
  Dag dag("layered");

  std::vector<std::vector<int>> layers;
  for (int l = 0; l < options.levels; ++l) {
    const int width = static_cast<int>(
        rng.uniform_int(options.min_width, options.max_width));
    std::vector<int> layer;
    for (int i = 0; i < width; ++i) {
      Node n;
      n.name = "t" + std::to_string(dag.node_count());
      n.work = rng.uniform(options.min_work, options.max_work);
      n.serial_fraction = options.serial_fraction;
      n.overhead_per_proc = options.overhead_per_proc;
      layer.push_back(dag.add_node(std::move(n)));
    }
    layers.push_back(std::move(layer));
  }

  for (std::size_t l = 1; l < layers.size(); ++l) {
    for (int v : layers[l]) {
      bool has_pred = false;
      for (int u : layers[l - 1]) {
        if (rng.bernoulli(options.edge_density)) {
          dag.add_edge(u, v, rng.uniform(options.min_data, options.max_data));
          has_pred = true;
        }
      }
      if (!has_pred) {
        const int u = layers[l - 1][static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(layers[l - 1].size()) - 1))];
        dag.add_edge(u, v, rng.uniform(options.min_data, options.max_data));
      }
    }
  }
  return dag;
}

Dag long_dag(int levels, util::Rng& rng) {
  LayeredDagOptions o;
  o.levels = levels;
  o.min_width = 1;
  o.max_width = 3;
  o.edge_density = 0.6;
  return layered_random(o, rng);
}

Dag wide_dag(int width, util::Rng& rng) {
  LayeredDagOptions o;
  o.levels = 3;
  o.min_width = std::max(2, width / 2);
  o.max_width = width;
  o.edge_density = 0.3;
  return layered_random(o, rng);
}

Dag serial_dag(int length, util::Rng& rng) {
  JED_ASSERT(length >= 1);
  Dag dag("serial");
  int prev = -1;
  for (int i = 0; i < length; ++i) {
    const int v = dag.add_node("s" + std::to_string(i),
                               rng.uniform(5.0, 60.0), 0.02, 0.02);
    if (prev >= 0) dag.add_edge(prev, v, rng.uniform(0.5, 8.0));
    prev = v;
  }
  return dag;
}

Dag fork_join_dag(int phases, int width, util::Rng& rng) {
  JED_ASSERT(phases >= 1 && width >= 1);
  Dag dag("fork-join");
  int join = dag.add_node("start", 1.0, 0.0, 0.0);
  for (int phase = 0; phase < phases; ++phase) {
    std::vector<int> fanout;
    for (int i = 0; i < width; ++i) {
      const int v = dag.add_node(
          "p" + std::to_string(phase) + "_" + std::to_string(i),
          rng.uniform(10.0, 50.0), 0.02, 0.02);
      dag.add_edge(join, v, rng.uniform(0.5, 4.0));
      fanout.push_back(v);
    }
    join = dag.add_node("join" + std::to_string(phase), 1.0, 0.0, 0.0);
    for (int v : fanout) dag.add_edge(v, join, rng.uniform(0.5, 4.0));
  }
  return dag;
}

Dag mcpa_pathological_dag(int machine_procs) {
  JED_ASSERT(machine_procs >= 4);
  Dag dag("mcpa-pathology");

  // Source feeding a level as wide as the machine. Under MCPA the level's
  // allocation is capped at `machine_procs` total, i.e. one processor per
  // task, so the heavy tasks cannot grow; under CPA they can.
  const int src = dag.add_node("src", 2.0, 0.0, 0.0);
  const int width = machine_procs;
  std::vector<int> layer;
  for (int i = 0; i < width; ++i) {
    // Two heavy tasks (the paper's "tasks 2 and 5"), the rest cheap.
    const bool heavy = (i == 1 || i == width / 2);
    const int v = dag.add_node("w" + std::to_string(i),
                               heavy ? 400.0 : 8.0,
                               /*serial_fraction=*/0.02,
                               /*overhead=*/0.02);
    dag.add_edge(src, v, 1.0);
    layer.push_back(v);
  }
  const int sink = dag.add_node("sink", 2.0, 0.0, 0.0);
  for (int v : layer) dag.add_edge(v, sink, 1.0);
  return dag;
}

}  // namespace jedule::dag
