#pragma once

// Task graphs of mixed-parallel (moldable-task) applications — the
// application model of paper Secs. III-V.
//
// A DAG node is a moldable computational task: T(v, p) gives its execution
// time on p processors (Amdahl speedup plus a per-processor coordination
// overhead, the standard model in the CPA/MCPA literature). Edges carry the
// amount of data communicated between tasks. For the HEFT case study
// (single-processor tasks on heterogeneous hosts) the same nodes are used
// with p = 1 and time work/host_speed.

#include <string>
#include <vector>

namespace jedule::dag {

struct Node {
  int id = 0;
  std::string name;
  std::string type;       // task type shown by the visualizer ("mProject"...)
  double work = 1.0;      // Gflop at p = 1 on a unit-speed processor
  double serial_fraction = 0.0;  // Amdahl alpha in [0, 1]
  double overhead_per_proc = 0.0;  // coordination cost added per extra proc

  /// Moldable execution time on p >= 1 processors of speed `speed` Gflop/s:
  ///   T(v, p) = work/speed * (alpha + (1 - alpha)/p) + overhead*(p - 1)
  /// Monotone non-increasing in p while the overhead term stays small.
  double exec_time(int p, double speed = 1.0) const;
};

struct Edge {
  int src = 0;
  int dst = 0;
  double data = 0.0;  // MB transferred from src to dst
};

class Dag {
 public:
  explicit Dag(std::string name = "dag") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a node and returns its id (ids are dense, 0-based).
  int add_node(Node n);
  int add_node(std::string name, double work, double serial_fraction = 0.0,
               double overhead = 0.0);

  void add_edge(int src, int dst, double data = 0.0);

  int node_count() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int id) const;
  Node& mutable_node(int id);
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  const std::vector<int>& successors(int id) const;
  const std::vector<int>& predecessors(int id) const;

  /// Data on the (src, dst) edge; 0 if absent.
  double edge_data(int src, int dst) const;

  /// Nodes without predecessors / successors.
  std::vector<int> sources() const;
  std::vector<int> sinks() const;

  /// Kahn topological order; throws ValidationError when the graph has a
  /// cycle (also the acyclicity check).
  std::vector<int> topological_order() const;

  /// Precedence level of each node: length (in hops) of the longest path
  /// from any source. MCPA constrains allocations per level (Sec. III.B).
  std::vector<int> precedence_levels() const;

  /// Length of the critical path when node v runs in time `times[v]`
  /// (edge costs excluded, as in CPA's T_CP).
  double critical_path_time(const std::vector<double>& times) const;

  /// Nodes of one critical path (source to sink), given per-node times.
  std::vector<int> critical_path(const std::vector<double>& times) const;

  /// Average area T_A = (1/P) * sum_v T(v, p(v)) * p(v) (Sec. III.B).
  double average_area(const std::vector<double>& times,
                      const std::vector<int>& allocs, int total_procs) const;

  /// Maximum number of nodes in any precedence level ("width" of the DAG;
  /// the CRA_WIDTH share function uses it).
  int width() const;

  /// Total work W(i) = sum_v T(v, p(v)) * p(v) (paper Sec. IV.B).
  double total_work(const std::vector<double>& times,
                    const std::vector<int>& allocs) const;

 private:
  void ensure_adjacency() const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  // Lazily built adjacency (invalidated by add_node/add_edge).
  mutable bool adjacency_valid_ = false;
  mutable std::vector<std::vector<int>> succ_;
  mutable std::vector<std::vector<int>> pred_;
};

}  // namespace jedule::dag
