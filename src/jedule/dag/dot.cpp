#include "jedule/dag/dot.hpp"

#include <fstream>
#include <map>

#include "jedule/util/error.hpp"

namespace jedule::dag {

namespace {
// Small fixed palette; types beyond it cycle.
const char* kFills[] = {"#4a90d9", "#e9583f", "#f5a623", "#7ed321",
                        "#9b59b6", "#1abc9c", "#d35400", "#7f8c8d"};
}  // namespace

std::string to_dot(const Dag& dag) {
  std::map<std::string, const char*> fill_of;
  std::string out = "digraph \"" + dag.name() + "\" {\n";
  out += "  rankdir=TB;\n  node [style=filled, shape=box, fontsize=10];\n";
  for (const auto& n : dag.nodes()) {
    auto it = fill_of.find(n.type);
    if (it == fill_of.end()) {
      const auto slot = fill_of.size() % (sizeof(kFills) / sizeof(kFills[0]));
      it = fill_of.emplace(n.type, kFills[slot]).first;
    }
    out += "  n" + std::to_string(n.id) + " [label=\"" + n.name +
           "\", fillcolor=\"" + it->second + "\"];\n";
  }
  for (const auto& e : dag.edges()) {
    out += "  n" + std::to_string(e.src) + " -> n" + std::to_string(e.dst) +
           ";\n";
  }
  out += "}\n";
  return out;
}

void save_dot(const Dag& dag, const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw IoError("cannot open '" + path + "' for writing");
  f << to_dot(dag);
  if (!f) throw IoError("error while writing '" + path + "'");
}

}  // namespace jedule::dag
