#include "jedule/dag/montage.hpp"

#include "jedule/util/error.hpp"

namespace jedule::dag {

Dag montage_dag(int images) {
  JED_ASSERT(images >= 2);
  Dag dag("montage-" + std::to_string(images));

  auto add = [&dag](const std::string& type, int index, double work,
                    double serial = 0.0) {
    Node n;
    n.name = index >= 0 ? type + "_" + std::to_string(index) : type;
    n.type = type;
    n.work = work;
    n.serial_fraction = serial;
    return dag.add_node(std::move(n));
  };

  // Stage costs in Gflop (relative shape of published Montage profiles:
  // projection and co-addition dominate).
  std::vector<int> project;
  for (int i = 0; i < images; ++i) {
    project.push_back(add("mProject", i, 24.0));
  }

  // Each image overlaps a handful of neighbours; a ring plus skip links
  // yields the standard ~3 overlaps per image (3k - 3 pair fits).
  std::vector<int> diffs;
  const int pair_count = 3 * images - 3;
  for (int d = 0; d < pair_count; ++d) {
    const int a = d % images;
    const int b = (a + 1 + d / images) % images;
    const int v = add("mDiffFit", d, 3.0);
    dag.add_edge(project[static_cast<std::size_t>(a)], v, 4.0);
    dag.add_edge(project[static_cast<std::size_t>(b)], v, 4.0);
    diffs.push_back(v);
  }

  const int concat = add("mConcatFit", -1, 4.0, 0.3);
  for (int v : diffs) dag.add_edge(v, concat, 0.5);

  const int bgmodel = add("mBgModel", -1, 10.0, 0.3);
  dag.add_edge(concat, bgmodel, 0.5);

  std::vector<int> background;
  for (int i = 0; i < images; ++i) {
    const int v = add("mBackground", i, 7.0);
    dag.add_edge(bgmodel, v, 0.5);
    dag.add_edge(project[static_cast<std::size_t>(i)], v, 4.0);
    background.push_back(v);
  }

  const int imgtbl = add("mImgtbl", -1, 3.0, 0.5);
  for (int v : background) dag.add_edge(v, imgtbl, 0.2);

  const int madd = add("mAdd", -1, 36.0, 0.2);
  dag.add_edge(imgtbl, madd, 0.2);
  for (int v : background) dag.add_edge(v, madd, 4.0);

  const int shrink = add("mShrink", -1, 6.0, 0.3);
  dag.add_edge(madd, shrink, 16.0);

  const int jpeg = add("mJPEG", -1, 3.0, 0.5);
  dag.add_edge(shrink, jpeg, 4.0);

  return dag;
}

Dag montage_case_study() { return montage_dag(9); }

}  // namespace jedule::dag
