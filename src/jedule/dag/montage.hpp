#pragma once

// Montage astronomy-mosaic workflow generator (paper Sec. V, Fig. 6).
//
// Structure for k input images (the standard Montage pipeline):
//   mProject   x k        reproject each image
//   mDiffFit   x (3k - 3)  fit overlapping image pairs (~3 overlaps/image)
//   mConcatFit x 1        merge the fit coefficients
//   mBgModel   x 1        compute background corrections
//   mBackground x k       apply correction per image
//   mImgtbl    x 1        build the metadata table
//   mAdd       x 1        co-add into the mosaic
//   mShrink    x 1        downsample
//   mJPEG      x 1        preview image
// Total: 5k + 3 nodes. The paper's instance has "50 compute nodes"; k = 9
// gives 48, the closest instance of this family (noted in EXPERIMENTS.md).
//
// Node work values follow the relative costs reported for Montage runs
// (mProject and mAdd dominate); edges carry the image/fit files in MB.

#include "jedule/dag/dag.hpp"

namespace jedule::dag {

/// Montage DAG for `images` >= 2 input images. Node types are set to the
/// Montage stage names, so per-type colormaps reproduce Fig. 6's coloring.
Dag montage_dag(int images);

/// The case-study instance (k = 9, 48 nodes).
Dag montage_case_study();

}  // namespace jedule::dag
