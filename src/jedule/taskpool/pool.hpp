#pragma once

// Task-pool runtime for irregular fine-grained parallelism (paper Sec. VI,
// Fig. 10): tasks live in a pool shared by all worker threads; executing a
// task may create new tasks. The runtime logs, per thread, the time spent
// executing tasks and the time spent getting/waiting for tasks — the two
// interval kinds the case study visualizes (blue execution, red waiting).
//
// Two pool organizations are provided: a central locked queue (the paper's
// baseline) and per-thread deques with work stealing (the organization of
// Cilk/TBB that the section cites as related).

#include <cstdint>
#include <functional>
#include <vector>

namespace jedule::taskpool {

class TaskContext;
using TaskFn = std::function<void(TaskContext&)>;

struct Interval {
  double start = 0;  // seconds since run() began
  double end = 0;
  std::int64_t task_id = -1;  // -1 for waiting intervals
};

struct ThreadLog {
  std::vector<Interval> exec;
  std::vector<Interval> wait;
};

struct RunLog {
  int threads = 0;
  double wallclock = 0;  // seconds
  std::int64_t tasks_executed = 0;
  std::vector<ThreadLog> per_thread;
};

class TaskPool {
 public:
  struct Options {
    int threads = 4;

    /// false: one central locked queue; true: per-thread deques with
    /// random-victim stealing.
    bool work_stealing = false;

    /// Drop logged intervals shorter than this (seconds); keeps the log of
    /// a 200k-task run (paper Sec. VI) at a displayable size. 0 keeps all.
    double min_logged_interval = 0;
  };

  explicit TaskPool(Options options);

  /// Enqueues a task before run() (Fig. 10's create_initial_task).
  void create_initial_task(TaskFn fn);

  /// Runs worker threads until every task (including transitively created
  /// ones) has executed; returns the per-thread interval log.
  RunLog run();

 private:
  friend class TaskContext;
  struct Impl;
  Options options_;
  std::vector<TaskFn> initial_;
};

/// Handed to every task; allows creating further tasks (Fig. 10's
/// "may create new tasks") and inspecting the executing thread.
class TaskContext {
 public:
  /// Submits a new task to the pool.
  void submit(TaskFn fn);

  /// Index of the executing worker thread in [0, threads).
  int thread_index() const { return thread_; }

  /// Id of the currently executing task (dense, in creation order).
  std::int64_t task_id() const { return task_id_; }

 private:
  friend struct TaskPool::Impl;
  TaskContext(TaskPool::Impl& impl, int thread) : impl_(impl), thread_(thread) {}
  TaskPool::Impl& impl_;
  int thread_;
  std::int64_t task_id_ = -1;
};

}  // namespace jedule::taskpool
