#include "jedule/taskpool/pool.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "jedule/util/error.hpp"
#include "jedule/util/stopwatch.hpp"

namespace jedule::taskpool {

namespace {
struct PoolTask {
  std::int64_t id;
  TaskFn fn;
};
}  // namespace

struct TaskPool::Impl {
  explicit Impl(const Options& opts) : options(opts) {
    JED_ASSERT(options.threads >= 1);
    local.resize(static_cast<std::size_t>(options.threads));
    logs.resize(static_cast<std::size_t>(options.threads));
  }

  Options options;
  util::Stopwatch watch;

  // One mutex guards all queues: the pool targets the *structure* of task-
  // parallel executions (ramp-up, waiting phases), and a single lock keeps
  // both organizations (central vs stealing) easy to reason about.
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<PoolTask> central;
  std::vector<std::deque<PoolTask>> local;
  std::int64_t outstanding = 0;  // created but not yet finished (guarded)
  std::int64_t next_id = 0;      // guarded
  std::atomic<std::int64_t> executed{0};
  std::vector<ThreadLog> logs;

  void submit(int thread, TaskFn fn) {
    std::lock_guard<std::mutex> lock(mutex);
    PoolTask task{next_id++, std::move(fn)};
    ++outstanding;
    if (options.work_stealing && thread >= 0) {
      local[static_cast<std::size_t>(thread)].push_back(std::move(task));
    } else {
      central.push_back(std::move(task));
    }
    cv.notify_one();
  }

  /// Under the lock: next task for `thread`, if any.
  bool try_pop_locked(int thread, PoolTask& out) {
    if (options.work_stealing) {
      auto& own = local[static_cast<std::size_t>(thread)];
      if (!own.empty()) {  // LIFO on the own deque (cache friendliness)
        out = std::move(own.back());
        own.pop_back();
        return true;
      }
      if (!central.empty()) {  // initial tasks
        out = std::move(central.front());
        central.pop_front();
        return true;
      }
      // Steal FIFO from the first non-empty victim after us.
      for (int d = 1; d < options.threads; ++d) {
        auto& victim =
            local[static_cast<std::size_t>((thread + d) % options.threads)];
        if (!victim.empty()) {
          out = std::move(victim.front());
          victim.pop_front();
          return true;
        }
      }
      return false;
    }
    if (!central.empty()) {
      out = std::move(central.front());
      central.pop_front();
      return true;
    }
    return false;
  }

  void log_interval(std::vector<Interval>& to, double start, double end,
                    std::int64_t id) {
    if (end - start < options.min_logged_interval) return;
    to.push_back(Interval{start, end, id});
  }

  void worker(int thread) {
    ThreadLog& log = logs[static_cast<std::size_t>(thread)];
    TaskContext ctx(*this, thread);
    double wait_begin = watch.seconds();
    std::unique_lock<std::mutex> lock(mutex);
    while (true) {
      PoolTask task;
      bool have = false;
      cv.wait(lock, [&] {
        if (outstanding == 0) return true;
        have = try_pop_locked(thread, task);
        return have;
      });
      if (!have) break;  // outstanding == 0: everything done
      lock.unlock();

      const double exec_begin = watch.seconds();
      log_interval(log.wait, wait_begin, exec_begin, -1);
      ctx.task_id_ = task.id;
      task.fn(ctx);
      const double exec_end = watch.seconds();
      log_interval(log.exec, exec_begin, exec_end, task.id);
      executed.fetch_add(1, std::memory_order_relaxed);
      wait_begin = exec_end;

      lock.lock();
      if (--outstanding == 0) cv.notify_all();
    }
    lock.unlock();
    log_interval(log.wait, wait_begin, watch.seconds(), -1);
  }
};

TaskPool::TaskPool(Options options) : options_(std::move(options)) {
  JED_ASSERT(options_.threads >= 1);
}

void TaskPool::create_initial_task(TaskFn fn) {
  JED_ASSERT(fn != nullptr);
  initial_.push_back(std::move(fn));
}

RunLog TaskPool::run() {
  Impl impl(options_);
  for (auto& fn : initial_) {
    impl.submit(/*thread=*/-1, std::move(fn));
  }
  initial_.clear();

  impl.watch.reset();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    workers.emplace_back([&impl, i] { impl.worker(i); });
  }
  for (auto& w : workers) w.join();

  RunLog log;
  log.threads = options_.threads;
  log.wallclock = impl.watch.seconds();
  log.tasks_executed = impl.executed.load();
  log.per_thread = std::move(impl.logs);
  return log;
}

void TaskContext::submit(TaskFn fn) {
  JED_ASSERT(fn != nullptr);
  impl_.submit(thread_, std::move(fn));
}

}  // namespace jedule::taskpool
