#pragma once

// Instrumented parallel Quicksort on the task pool — the application of the
// paper's Sec. VI case study. Each partitioning step creates two new tasks
// for the sub-arrays; sub-arrays below the cutoff sort sequentially.
//
// Two inputs matter for the figures:
//  * random values (Fig. 11): an accidental bad pivot splits the initial
//    array unevenly, delaying the parallel ramp-up;
//  * inversely sorted values with the middle element as pivot (Fig. 12):
//    the first task must swap every pair of the whole array, so one thread
//    is busy for a large fraction of the run before parallelism appears.

#include <cstdint>

#include "jedule/taskpool/pool.hpp"

namespace jedule::taskpool {

struct QuicksortOptions {
  std::size_t elements = 1'000'000;

  enum class Input { kRandom, kReversed };
  Input input = Input::kRandom;

  /// Sub-arrays at or below this size sort sequentially (task granularity).
  std::size_t sequential_cutoff = 16'384;

  std::uint64_t seed = 42;  // random input only

  /// Extra per-element busy work (relative units) charged during the
  /// partition scan. Models the memory-bandwidth pressure of the paper's
  /// NUMA machine where "even two tasks with equal-sized arrays may take a
  /// different time"; 0 disables it.
  int extra_work = 0;
};

struct QuicksortRun {
  RunLog log;
  bool sorted = false;          // verification of the result
  std::int64_t tasks = 0;       // tasks executed
  std::size_t elements = 0;
};

/// Sorts and returns the run log.
QuicksortRun run_parallel_quicksort(const TaskPool::Options& pool_options,
                                    const QuicksortOptions& options);

}  // namespace jedule::taskpool
