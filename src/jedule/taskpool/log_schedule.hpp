#pragma once

// Conversion of a task-pool run log into a jedule schedule: one host per
// worker thread, blue "computation" tasks for execution intervals, red
// "waiting" tasks for get()/wait time — the view of paper Figs. 11-12.

#include "jedule/model/schedule.hpp"
#include "jedule/taskpool/pool.hpp"

namespace jedule::taskpool {

struct LogScheduleOptions {
  std::string cluster_name = "smp";

  /// Merge adjacent same-kind intervals closer than this gap (seconds);
  /// keeps six-figure-task runs displayable. 0 disables merging.
  double merge_gap = 0;

  /// Include waiting intervals (the red boxes).
  bool include_waits = true;
};

model::Schedule log_to_schedule(const RunLog& log,
                                const LogScheduleOptions& options = {});

}  // namespace jedule::taskpool
