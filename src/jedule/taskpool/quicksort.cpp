#include "jedule/taskpool/quicksort.hpp"

#include <algorithm>
#include <vector>

#include "jedule/util/error.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::taskpool {

namespace {

/// Opaque per-element busy work; `volatile` keeps the loop from being
/// optimized away.
inline void burn(int units) {
  volatile int sink = 0;
  for (int i = 0; i < units; ++i) sink = sink + i;
}

struct Sorter {
  std::vector<int>* data;
  std::size_t cutoff;
  int extra_work;

  /// Hoare partition around the middle element's value.
  std::size_t partition(std::size_t lo, std::size_t hi) const {
    auto& a = *data;
    const int pivot = a[lo + (hi - lo) / 2];
    std::size_t i = lo;
    std::size_t j = hi;
    while (true) {
      while (a[i] < pivot) {
        ++i;
        if (extra_work > 0) burn(extra_work);
      }
      while (a[j] > pivot) {
        --j;
        if (extra_work > 0) burn(extra_work);
      }
      if (i >= j) return j;
      std::swap(a[i], a[j]);
      if (extra_work > 0) burn(4 * extra_work);  // swaps touch both lines
      ++i;
      if (j == 0) return 0;
      --j;
    }
  }

  void sort_task(TaskContext& ctx, std::size_t lo, std::size_t hi) const {
    if (hi <= lo) return;
    if (hi - lo + 1 <= cutoff) {
      std::sort(data->begin() + static_cast<std::ptrdiff_t>(lo),
                data->begin() + static_cast<std::ptrdiff_t>(hi) + 1);
      if (extra_work > 0) burn(static_cast<int>(hi - lo + 1) * extra_work / 4);
      return;
    }
    const std::size_t split = partition(lo, hi);
    // Two new tasks per partitioning step (paper Sec. VI.B).
    const Sorter self = *this;
    ctx.submit([self, lo, split](TaskContext& c) {
      self.sort_task(c, lo, split);
    });
    ctx.submit([self, split, hi](TaskContext& c) {
      self.sort_task(c, split + 1, hi);
    });
  }
};

}  // namespace

QuicksortRun run_parallel_quicksort(const TaskPool::Options& pool_options,
                                    const QuicksortOptions& options) {
  JED_ASSERT(options.elements >= 2);
  JED_ASSERT(options.sequential_cutoff >= 2);

  std::vector<int> data(options.elements);
  if (options.input == QuicksortOptions::Input::kRandom) {
    util::Rng rng(options.seed);
    for (auto& v : data) {
      v = static_cast<int>(rng.uniform_int(0, 1 << 30));
    }
  } else {
    // Inversely sorted; with the middle pivot the first partition swaps
    // every pair (paper Fig. 12's "specially crafted input").
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<int>(data.size() - i);
    }
  }

  Sorter sorter{&data, options.sequential_cutoff, options.extra_work};

  TaskPool pool(pool_options);
  const std::size_t last = data.size() - 1;
  pool.create_initial_task(
      [sorter, last](TaskContext& ctx) { sorter.sort_task(ctx, 0, last); });

  QuicksortRun run;
  run.log = pool.run();
  run.tasks = run.log.tasks_executed;
  run.elements = options.elements;
  run.sorted = std::is_sorted(data.begin(), data.end());
  return run;
}

}  // namespace jedule::taskpool
