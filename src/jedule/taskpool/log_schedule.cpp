#include "jedule/taskpool/log_schedule.hpp"

#include <algorithm>

#include "jedule/util/strings.hpp"

namespace jedule::taskpool {

namespace {

std::vector<Interval> merged(std::vector<Interval> intervals, double gap) {
  if (gap <= 0 || intervals.size() < 2) return intervals;
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start;
            });
  std::vector<Interval> out;
  for (const auto& iv : intervals) {
    if (!out.empty() && iv.start - out.back().end <= gap) {
      out.back().end = std::max(out.back().end, iv.end);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

}  // namespace

model::Schedule log_to_schedule(const RunLog& log,
                                const LogScheduleOptions& options) {
  model::Schedule s;
  s.add_cluster(0, options.cluster_name, std::max(1, log.threads));
  s.set_meta("threads", std::to_string(log.threads));
  s.set_meta("tasks", std::to_string(log.tasks_executed));
  s.set_meta("wallclock", util::format_fixed(log.wallclock, 3));

  for (int thread = 0; thread < log.threads; ++thread) {
    const auto& tl = log.per_thread[static_cast<std::size_t>(thread)];

    int k = 0;
    for (const auto& iv : merged(tl.exec, options.merge_gap)) {
      model::Task t("t" + std::to_string(thread) + "e" + std::to_string(k++),
                    "computation", iv.start, iv.end);
      t.allocate(0, thread, 1);
      if (iv.task_id >= 0) {
        t.set_property("task", std::to_string(iv.task_id));
      }
      s.add_task(std::move(t));
    }
    if (options.include_waits) {
      k = 0;
      for (const auto& iv : merged(tl.wait, options.merge_gap)) {
        model::Task t(
            "t" + std::to_string(thread) + "w" + std::to_string(k++),
            "waiting", iv.start, iv.end);
        t.allocate(0, thread, 1);
        s.add_task(std::move(t));
      }
    }
  }
  s.validate();
  return s;
}

}  // namespace jedule::taskpool
