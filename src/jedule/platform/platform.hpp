#pragma once

// Execution platform model (paper Secs. III and V, Fig. 7): clusters of
// hosts behind switches, interconnected by a single backbone. Each host has
// its own link to its cluster switch; communication time over a route is
//   latency(route) + bytes / bottleneck_bandwidth(route)
// which is the standard SimGrid-style model the paper's simulator used
// (DESIGN.md §2).

#include <string>
#include <vector>

namespace jedule::platform {

struct LinkSpec {
  double latency = 1e-4;      // seconds
  double bandwidth = 1000.0;  // MB/s
};

struct ClusterSpec {
  int id = 0;
  std::string name;
  int hosts = 0;
  double host_speed = 1.0;  // Gflop/s, homogeneous within a cluster
  LinkSpec link;            // host <-> cluster switch
};

class Platform {
 public:
  Platform() = default;

  /// Adds a cluster; host ids are assigned globally in insertion order.
  void add_cluster(ClusterSpec cluster);

  void set_backbone(LinkSpec backbone) { backbone_ = backbone; }
  const LinkSpec& backbone() const { return backbone_; }

  const std::vector<ClusterSpec>& clusters() const { return clusters_; }
  int total_hosts() const;

  /// Cluster owning global host `h`.
  int cluster_of(int host) const;
  const ClusterSpec& cluster(int id) const;

  /// Host index within its own cluster.
  int local_index(int host) const;

  /// First global host id of cluster `id`.
  int first_host(int id) const;

  double host_speed(int host) const;

  /// Transfer time for `mb` megabytes from `src` to `dst`:
  ///  - same host: 0 (local memory);
  ///  - same cluster: 2 link latencies + mb / link bandwidth;
  ///  - across clusters: 2 link latencies + backbone latency +
  ///    mb / min(link bw, backbone bw).
  /// The Fig. 8 anomaly comes from setting the backbone latency equal to
  /// the link latency, making remote and local transfers nearly equal.
  double comm_time(int src, int dst, double mb) const;

  /// Mean comm_time over all (src != dst) host pairs per MB plus mean
  /// latency; HEFT's rank computation uses averaged costs.
  double average_latency() const;
  double average_bandwidth() const;

  /// One-line description (used by schedule meta info).
  std::string describe() const;

 private:
  std::vector<ClusterSpec> clusters_;
  std::vector<int> first_host_;  // prefix sums of cluster sizes
  LinkSpec backbone_;
};

/// Homogeneous cluster of `hosts` processors at `speed` Gflop/s (the
/// CPA/MCPA and multi-DAG case studies, Secs. III-IV).
Platform homogeneous_cluster(int hosts, double speed = 1.0,
                             LinkSpec link = {});

/// The Sec. V platform (Fig. 7): four clusters —
///   cluster 0: hosts 0-1  at 3.3  Gflop/s (fast)
///   cluster 1: hosts 2-5  at 1.65 Gflop/s
///   cluster 2: hosts 6-7  at 3.3  Gflop/s (fast)
///   cluster 3: hosts 8-11 at 1.65 Gflop/s
/// `backbone_latency` is the knob the case study turns. The paper's buggy
/// platform description priced inter-cluster routes the same as
/// intra-cluster ones — pass 0 so the backbone adds nothing (Fig. 8); the
/// fixed description uses a much larger value, e.g. 0.05 s (Fig. 9).
Platform heterogeneous_case_study(double backbone_latency);

}  // namespace jedule::platform
