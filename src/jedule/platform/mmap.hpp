#pragma once

// Read-only memory-mapped files (DESIGN.md §4h). This is the one
// OS-facing corner of jedule::platform (the rest of the namespace models
// the *simulated* execution platform): the `.jbin` snapshot loader maps
// the file and hands zero-copy column views to model::ScheduleArena, so
// reopening a million-task schedule is a validation pass over mapped
// memory instead of a parse.
//
// On POSIX the mapping is a real mmap(PROT_READ, MAP_PRIVATE); elsewhere
// open() falls back to reading the file into heap memory, which keeps the
// same interface (and correctness) at the cost of residency — mapped()
// reports which one the caller got, and the engine's /stats endpoint
// surfaces the split.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace jedule::platform {

class MappedFile {
 public:
  /// Maps `path` read-only; throws jedule::IoError when the file cannot
  /// be opened or mapped (a zero-byte file yields an empty mapping).
  static std::shared_ptr<const MappedFile> open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

  /// True when backed by a real memory mapping, false on the heap-read
  /// fallback path.
  bool mapped() const { return mapped_; }

 private:
  MappedFile() = default;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  void* map_addr_ = nullptr;          // munmap handle (POSIX)
  std::vector<std::uint8_t> heap_;    // fallback storage
};

}  // namespace jedule::platform
