#include "jedule/platform/mmap.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "jedule/util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define JEDULE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace jedule::platform {

namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw IoError("cannot " + std::string(what) + " '" + path +
                "': " + std::strerror(errno));
}

}  // namespace

std::shared_ptr<const MappedFile> MappedFile::open(const std::string& path) {
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
#if JEDULE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, "open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(path, "stat");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size > 0) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      fail(path, "mmap");
    }
    file->map_addr_ = addr;
    file->data_ = static_cast<const std::uint8_t*>(addr);
  }
  // The mapping outlives the descriptor.
  ::close(fd);
  file->size_ = size;
  file->mapped_ = true;
#else
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (fp == nullptr) fail(path, "open");
  std::fseek(fp, 0, SEEK_END);
  const long end = std::ftell(fp);
  std::fseek(fp, 0, SEEK_SET);
  if (end < 0) {
    std::fclose(fp);
    fail(path, "seek");
  }
  file->heap_.resize(static_cast<std::size_t>(end));
  if (!file->heap_.empty() &&
      std::fread(file->heap_.data(), 1, file->heap_.size(), fp) !=
          file->heap_.size()) {
    std::fclose(fp);
    fail(path, "read");
  }
  std::fclose(fp);
  file->data_ = file->heap_.data();
  file->size_ = file->heap_.size();
  file->mapped_ = false;
#endif
  return file;
}

MappedFile::~MappedFile() {
#if JEDULE_HAVE_MMAP
  if (map_addr_ != nullptr) ::munmap(map_addr_, size_);
#endif
}

}  // namespace jedule::platform
