#include "jedule/platform/platform.hpp"

#include <algorithm>

#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::platform {

void Platform::add_cluster(ClusterSpec cluster) {
  if (cluster.hosts <= 0) {
    throw ValidationError("cluster must have a positive host count");
  }
  if (cluster.host_speed <= 0) {
    throw ValidationError("cluster host speed must be positive");
  }
  for (const auto& c : clusters_) {
    if (c.id == cluster.id) {
      throw ValidationError("duplicate cluster id " +
                            std::to_string(cluster.id));
    }
  }
  first_host_.push_back(total_hosts());
  clusters_.push_back(std::move(cluster));
}

int Platform::total_hosts() const {
  int n = 0;
  for (const auto& c : clusters_) n += c.hosts;
  return n;
}

int Platform::cluster_of(int host) const {
  JED_ASSERT(host >= 0 && host < total_hosts());
  for (std::size_t i = clusters_.size(); i-- > 0;) {
    if (host >= first_host_[i]) return clusters_[i].id;
  }
  throw ValidationError("host out of range");
}

const ClusterSpec& Platform::cluster(int id) const {
  for (const auto& c : clusters_) {
    if (c.id == id) return c;
  }
  throw ValidationError("unknown cluster id " + std::to_string(id));
}

int Platform::local_index(int host) const {
  const int cid = cluster_of(host);
  return host - first_host(cid);
}

int Platform::first_host(int id) const {
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    if (clusters_[i].id == id) return first_host_[i];
  }
  throw ValidationError("unknown cluster id " + std::to_string(id));
}

double Platform::host_speed(int host) const {
  return cluster(cluster_of(host)).host_speed;
}

double Platform::comm_time(int src, int dst, double mb) const {
  JED_ASSERT(mb >= 0);
  if (src == dst) return 0.0;
  const ClusterSpec& cs = cluster(cluster_of(src));
  const ClusterSpec& cd = cluster(cluster_of(dst));
  if (cs.id == cd.id) {
    return 2.0 * cs.link.latency + mb / cs.link.bandwidth;
  }
  const double bw = std::min({cs.link.bandwidth, cd.link.bandwidth,
                              backbone_.bandwidth});
  return cs.link.latency + cd.link.latency + backbone_.latency + mb / bw;
}

double Platform::average_latency() const {
  const int n = total_hosts();
  if (n < 2) return 0.0;
  double total = 0.0;
  long pairs = 0;
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      total += comm_time(s, d, 0.0);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

double Platform::average_bandwidth() const {
  const int n = total_hosts();
  if (n < 2) return clusters_.empty() ? 0.0 : clusters_[0].link.bandwidth;
  double total = 0.0;
  long pairs = 0;
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      // Per-MB transfer cost beyond latency.
      const double per_mb = comm_time(s, d, 1.0) - comm_time(s, d, 0.0);
      total += 1.0 / per_mb;
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

std::string Platform::describe() const {
  std::vector<std::string> parts;
  for (const auto& c : clusters_) {
    parts.push_back(c.name + ":" + std::to_string(c.hosts) + "x" +
                    util::format_fixed(c.host_speed, 2) + "Gf");
  }
  return util::join(parts, " ") +
         " backbone(lat=" + util::format_fixed(backbone_.latency, 6) +
         "s,bw=" + util::format_fixed(backbone_.bandwidth, 0) + "MB/s)";
}

Platform homogeneous_cluster(int hosts, double speed, LinkSpec link) {
  Platform p;
  ClusterSpec c;
  c.id = 0;
  c.name = "cluster-0";
  c.hosts = hosts;
  c.host_speed = speed;
  c.link = link;
  p.add_cluster(std::move(c));
  p.set_backbone(link);
  return p;
}

Platform heterogeneous_case_study(double backbone_latency) {
  Platform p;
  const LinkSpec local{1e-4, 1250.0};  // ~gigabit with 100us latency

  auto add = [&p, &local](int id, int hosts, double speed) {
    ClusterSpec c;
    c.id = id;
    c.name = "cluster-" + std::to_string(id);
    c.hosts = hosts;
    c.host_speed = speed;
    c.link = local;
    p.add_cluster(std::move(c));
  };
  add(0, 2, 3.3);   // hosts 0-1, fast
  add(1, 4, 1.65);  // hosts 2-5
  add(2, 2, 3.3);   // hosts 6-7, fast
  add(3, 4, 1.65);  // hosts 8-11

  LinkSpec backbone;
  backbone.latency = backbone_latency;
  backbone.bandwidth = 1250.0;
  p.set_backbone(backbone);
  return p;
}

}  // namespace jedule::platform
