#include "jedule/sim/dag_execution.hpp"

#include <algorithm>
#include <set>

#include "jedule/sim/engine.hpp"
#include "jedule/util/error.hpp"

namespace jedule::sim {

namespace {

using dag::Dag;
using platform::Platform;

void validate_mapping(const Dag& dag, const Platform& platform,
                      const Mapping& mapping) {
  if (mapping.items.size() != static_cast<std::size_t>(dag.node_count())) {
    throw ValidationError("mapping covers " +
                          std::to_string(mapping.items.size()) + " of " +
                          std::to_string(dag.node_count()) + " nodes");
  }
  const int hosts = platform.total_hosts();
  for (int v = 0; v < dag.node_count(); ++v) {
    const auto& item = mapping.items[static_cast<std::size_t>(v)];
    if (item.hosts.empty()) {
      throw ValidationError("node " + std::to_string(v) + " has no hosts");
    }
    std::set<int> seen;
    for (int h : item.hosts) {
      if (h < 0 || h >= hosts) {
        throw ValidationError("node " + std::to_string(v) +
                              " mapped to invalid host " + std::to_string(h));
      }
      if (!seen.insert(h).second) {
        throw ValidationError("node " + std::to_string(v) + " lists host " +
                              std::to_string(h) + " twice");
      }
    }
  }
}

}  // namespace

SimResult simulate_dag(const Dag& dag, const Platform& platform,
                       const Mapping& mapping, const SimOptions& options) {
  validate_mapping(dag, platform, mapping);

  Engine engine;
  SimResult result;
  const auto n = static_cast<std::size_t>(dag.node_count());
  result.start.assign(n, 0.0);
  result.finish.assign(n, 0.0);

  std::vector<int> missing_inputs(n, 0);
  for (int v = 0; v < dag.node_count(); ++v) {
    missing_inputs[static_cast<std::size_t>(v)] =
        static_cast<int>(dag.predecessors(v).size());
  }

  std::vector<double> host_free(
      static_cast<std::size_t>(platform.total_hosts()), 0.0);

  // Ready tasks contending for hosts dispatch in priority order; the set is
  // drained by an event scheduled after the inserting event, so all tasks
  // becoming ready at one instant dispatch together.
  auto ready_before = [&](int a, int b) {
    const double pa = mapping.items[static_cast<std::size_t>(a)].priority;
    const double pb = mapping.items[static_cast<std::size_t>(b)].priority;
    if (pa != pb) return pa < pb;
    return a < b;
  };
  std::set<int, decltype(ready_before)> ready(ready_before);

  // Forward declaration dance via std::function: finish -> transfers ->
  // ready -> dispatch -> finish.
  std::function<void(int)> on_node_ready;
  std::function<void()> drain_ready;

  auto node_exec_time = [&](int v) {
    const auto& hosts = mapping.items[static_cast<std::size_t>(v)].hosts;
    // The slowest allocated host paces a multiprocessor task.
    double speed = platform.host_speed(hosts[0]);
    for (int h : hosts) speed = std::min(speed, platform.host_speed(h));
    return dag.node(v).exec_time(static_cast<int>(hosts.size()), speed);
  };

  std::function<void(int)> on_node_finished = [&](int v) {
    for (int s : dag.successors(v)) {
      const double mb = dag.edge_data(v, s);
      const int src_host = mapping.items[static_cast<std::size_t>(v)].hosts[0];
      const int dst_host = mapping.items[static_cast<std::size_t>(s)].hosts[0];
      const double delay = platform.comm_time(src_host, dst_host, mb);
      if (options.record_transfers && delay > 0 && src_host != dst_host) {
        result.transfers.push_back(Transfer{v, s, src_host, dst_host,
                                            engine.now(), engine.now() + delay,
                                            mb});
      }
      engine.schedule_in(delay, [&, s] { on_node_ready(s); });
    }
  };

  drain_ready = [&] {
    while (!ready.empty()) {
      const int v = *ready.begin();
      ready.erase(ready.begin());
      const auto& hosts = mapping.items[static_cast<std::size_t>(v)].hosts;
      double start = engine.now();
      for (int h : hosts) {
        start = std::max(start, host_free[static_cast<std::size_t>(h)]);
      }
      const double finish = start + node_exec_time(v);
      for (int h : hosts) host_free[static_cast<std::size_t>(h)] = finish;
      result.start[static_cast<std::size_t>(v)] = start;
      result.finish[static_cast<std::size_t>(v)] = finish;
      engine.schedule_at(finish, [&, v] { on_node_finished(v); });
    }
  };

  on_node_ready = [&](int v) {
    if (--missing_inputs[static_cast<std::size_t>(v)] > 0) return;
    ready.insert(v);
    engine.schedule_in(0.0, drain_ready);
  };

  for (int v : dag.sources()) {
    // Sources have no inputs; make them ready at t = 0.
    missing_inputs[static_cast<std::size_t>(v)] = 1;
    engine.schedule_at(0.0, [&, v] { on_node_ready(v); });
  }
  engine.run();

  for (std::size_t v = 0; v < n; ++v) {
    if (missing_inputs[v] > 0) {
      throw ValidationError("node " + std::to_string(v) +
                            " never became ready (disconnected inputs?)");
    }
    result.makespan = std::max(result.makespan, result.finish[v]);
  }
  return result;
}

void add_platform_clusters(const Platform& platform, model::Schedule& out) {
  for (const auto& c : platform.clusters()) {
    out.add_cluster(c.id, c.name, c.hosts);
  }
}

void append_to_schedule(const Dag& dag, const Platform& platform,
                        const Mapping& mapping, const SimResult& result,
                        const ToScheduleOptions& options,
                        model::Schedule& out) {
  // Group a node's hosts by cluster into configurations with compressed
  // local host ranges.
  auto make_configs = [&](const std::vector<int>& hosts) {
    std::vector<model::Configuration> configs;
    std::vector<int> sorted = hosts;
    std::sort(sorted.begin(), sorted.end());
    for (int h : sorted) {
      const int cid = platform.cluster_of(h);
      const int local = platform.local_index(h);
      if (configs.empty() || configs.back().cluster_id != cid ||
          configs.back().hosts.back().start + configs.back().hosts.back().nb !=
              local) {
        if (configs.empty() || configs.back().cluster_id != cid) {
          model::Configuration cfg;
          cfg.cluster_id = cid;
          configs.push_back(std::move(cfg));
        }
        auto& cfg = configs.back();
        if (!cfg.hosts.empty() &&
            cfg.hosts.back().start + cfg.hosts.back().nb == local) {
          ++cfg.hosts.back().nb;
        } else {
          cfg.hosts.push_back(model::HostRange{local, 1});
        }
      } else {
        ++configs.back().hosts.back().nb;
      }
    }
    return configs;
  };

  const std::size_t base = out.tasks().size();
  for (int v = 0; v < dag.node_count(); ++v) {
    const auto& node = dag.node(v);
    model::Task t(options.id_prefix + node.name,
                  options.type_override.empty() ? node.type
                                                : options.type_override,
                  result.start[static_cast<std::size_t>(v)],
                  result.finish[static_cast<std::size_t>(v)]);
    for (auto& cfg :
         make_configs(mapping.items[static_cast<std::size_t>(v)].hosts)) {
      t.add_configuration(std::move(cfg));
    }
    t.set_property("node", std::to_string(v));
    out.add_task(std::move(t));
  }

  // The DAG's precedence edges become first-class schedule dependencies.
  // Emitting them in predecessor-list order keeps the schedule's
  // critical-path tie-breaks identical to dag::Dag::critical_path.
  for (int v = 0; v < dag.node_count(); ++v) {
    for (int p : dag.predecessors(v)) {
      out.add_dependency(static_cast<std::uint32_t>(base + p),
                         static_cast<std::uint32_t>(base + v),
                         dag.edge_data(p, v));
    }
  }

  if (options.include_transfers) {
    int k = 0;
    for (const auto& tr : result.transfers) {
      model::Task t(options.id_prefix + "x" + std::to_string(k++), "transfer",
                    tr.start, tr.end);
      for (auto& cfg : make_configs({tr.src_host, tr.dst_host})) {
        t.add_configuration(std::move(cfg));
      }
      t.set_property("from", dag.node(tr.src_node).name);
      t.set_property("to", dag.node(tr.dst_node).name);
      out.add_task(std::move(t));
    }
  }
}

model::Schedule to_schedule(const Dag& dag, const Platform& platform,
                            const Mapping& mapping, const SimResult& result,
                            const ToScheduleOptions& options) {
  model::Schedule out;
  add_platform_clusters(platform, out);
  append_to_schedule(dag, platform, mapping, result, options, out);
  out.validate();
  return out;
}

}  // namespace jedule::sim
