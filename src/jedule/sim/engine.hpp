#pragma once

// Generic discrete-event simulation engine — the substrate standing in for
// SimGrid (DESIGN.md §2). Events fire in nondecreasing time; ties run in
// insertion order, which makes runs fully deterministic.

#include <cstdint>
#include <functional>
#include <queue>

namespace jedule::sim {

class Engine {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `time` (>= now()).
  void schedule_at(double time, Action action);

  /// Schedules `action` `delay` seconds from now.
  void schedule_in(double delay, Action action);

  /// Runs until the event queue drains. Re-entrant scheduling from inside
  /// actions is allowed (that is how simulations grow).
  void run();

  /// Current simulation time (0 before the first event).
  double now() const { return now_; }

  /// Number of events processed so far.
  std::uint64_t processed() const { return processed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace jedule::sim
