#include "jedule/sim/engine.hpp"

#include "jedule/util/error.hpp"

namespace jedule::sim {

void Engine::schedule_at(double time, Action action) {
  JED_ASSERT(action != nullptr);
  if (time < now_) {
    throw ArgumentError("cannot schedule an event in the past (t=" +
                        std::to_string(time) + " < now=" +
                        std::to_string(now_) + ")");
  }
  queue_.push(Event{time, next_seq_++, std::move(action)});
}

void Engine::schedule_in(double delay, Action action) {
  JED_ASSERT(delay >= 0);
  schedule_at(now_ + delay, std::move(action));
}

void Engine::run() {
  while (!queue_.empty()) {
    // Move out before pop so the action may schedule further events.
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = e.time;
    ++processed_;
    e.action();
  }
}

}  // namespace jedule::sim
