#pragma once

// Simulated execution of a mapped DAG on a platform. A scheduler (CPA,
// MCPA, HEFT, CRA, ...) decides *where* each task runs; this module decides
// *when*, by replaying the graph through the event engine with host
// exclusivity and link delays — the role SimGrid played for the paper.
// The result converts to a jedule schedule for visualization.

#include <vector>

#include "jedule/dag/dag.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/platform/platform.hpp"

namespace jedule::sim {

/// Placement decision for one DAG: global host ids per node, plus a
/// dispatch priority (lower runs first when several ready tasks contend for
/// a host; schedulers pass their intended start order).
struct Mapping {
  struct Item {
    std::vector<int> hosts;
    double priority = 0.0;
  };
  std::vector<Item> items;  // indexed by node id
};

struct Transfer {
  int src_node = 0;
  int dst_node = 0;
  int src_host = 0;
  int dst_host = 0;
  double start = 0;
  double end = 0;
  double mb = 0;
};

struct SimResult {
  std::vector<double> start;   // per node
  std::vector<double> finish;  // per node
  std::vector<Transfer> transfers;
  double makespan = 0;
};

struct SimOptions {
  /// Record inter-host data movements as transfers (they become "transfer"
  /// tasks in the jedule view, overlapping computation like paper Fig. 3).
  bool record_transfers = true;
};

/// Simulates; throws ValidationError if the mapping references invalid
/// hosts or leaves nodes unmapped.
SimResult simulate_dag(const dag::Dag& dag, const platform::Platform& platform,
                       const Mapping& mapping, const SimOptions& options = {});

struct ToScheduleOptions {
  /// Include transfer tasks in the schedule.
  bool include_transfers = true;

  /// Prefix prepended to task ids (used when several DAGs share a view,
  /// as in the multi-DAG case study where each application has a color).
  std::string id_prefix;

  /// Override the task type of computation nodes with this value (e.g.
  /// "app3" to color per application in Fig. 5); empty keeps node types.
  std::string type_override;
};

/// Converts a simulation result into a jedule schedule over the platform's
/// clusters. Appends to `out` so several applications can be merged.
void append_to_schedule(const dag::Dag& dag,
                        const platform::Platform& platform,
                        const Mapping& mapping, const SimResult& result,
                        const ToScheduleOptions& options,
                        model::Schedule& out);

/// Convenience: fresh schedule with the platform's clusters + one DAG.
model::Schedule to_schedule(const dag::Dag& dag,
                            const platform::Platform& platform,
                            const Mapping& mapping, const SimResult& result,
                            const ToScheduleOptions& options = {});

/// Adds the platform's clusters to an empty schedule.
void add_platform_clusters(const platform::Platform& platform,
                           model::Schedule& out);

}  // namespace jedule::sim
