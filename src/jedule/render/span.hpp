#pragma once

// Batched scanline span rasterizer (DESIGN.md §4e).
//
// RasterCanvas queues axis-aligned fills and outlines here instead of
// painting them immediately; flush() buckets the queued primitives by
// scanline, converts them to x-spans and resolves occlusion in paint
// order, so each pixel is written approximately once no matter how deep
// the overdraw — dense schedules repaint the same columns dozens of
// times on the direct path. The resolved spans are painted with the SIMD
// row kernels (kernels.hpp).
//
// The batch is an optimization, never a semantic change: flushing
// produces exactly the bytes that painting the queued primitives one by
// one through Framebuffer would, including the order-dependent blending
// of translucent colors (test_render_span.cpp fuzzes this equivalence).

#include <cstdint>
#include <vector>

#include "jedule/color/color.hpp"
#include "jedule/render/framebuffer.hpp"

namespace jedule::render {

class SpanBatch {
 public:
  /// Queues into `fb`, which must outlive the batch.
  explicit SpanBatch(Framebuffer& fb) : fb_(fb) {}

  /// Queue the equivalent of Framebuffer::fill_rect(x, y, w, h, c).
  void add_rect(int x, int y, int w, int h, Color c);

  /// Queue the equivalent of Framebuffer::draw_rect(x, y, w, h, c): four
  /// 1-pixel edges in draw_rect's order, so translucent outlines
  /// double-blend their corners exactly like the sequential path.
  void add_outline(int x, int y, int w, int h, Color c);

  bool empty() const { return ops_.empty(); }

  /// Paints every queued primitive and clears the queue.
  void flush();

 private:
  struct Op {
    int x0, x1;  // clipped, half-open [x0, x1)
    int y0, y1;  // clipped, half-open [y0, y1)
    Color c;
  };
  struct PendingBlend {
    std::uint32_t op;
    int x0, x1;
  };

  void push_op(long long x0, long long y0, long long x1, long long y1,
               Color c);
  void flush_line(int y, const std::uint32_t* idx, std::size_t n);

  Framebuffer& fb_;
  std::vector<Op> ops_;  // queue, in paint order

  // flush() scratch, reused across flushes.
  std::vector<std::uint32_t> bucket_at_;  // per row: offset into order_
  std::vector<std::uint32_t> cursor_;
  std::vector<std::uint32_t> order_;   // op indices bucketed by y0
  std::vector<std::uint32_t> active_;  // ops covering the current row
  std::vector<int> next_;              // next-unpainted-column union-find
  std::vector<PendingBlend> pending_;
};

}  // namespace jedule::render
