#include "jedule/render/ascii.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::render {

namespace {

using model::Schedule;
using model::TimeRange;

char letter_for(std::map<std::string, char>& legend, const std::string& type) {
  auto it = legend.find(type);
  if (it != legend.end()) return it->second;
  // Prefer the type's initial; fall back to the alphabet on collisions.
  char candidate = type.empty() ? 'x' : type[0];
  if (candidate < 'a' || candidate > 'z') candidate = 'x';
  bool taken = false;
  for (const auto& [t, c] : legend) taken = taken || c == candidate;
  if (taken) {
    for (char c = 'a'; c <= 'z'; ++c) {
      bool used = false;
      for (const auto& [t, cc] : legend) used = used || cc == c;
      if (!used) {
        candidate = c;
        break;
      }
    }
  }
  legend[type] = candidate;
  return candidate;
}

}  // namespace

std::string render_ascii(const Schedule& schedule,
                         const AsciiOptions& options) {
  schedule.validate();
  if (options.width < 10) throw ArgumentError("ascii: width below 10");
  if (options.max_rows_per_cluster < 1) {
    throw ArgumentError("ascii: need at least one row per cluster");
  }

  std::map<std::string, char> legend;
  std::string out;

  for (const auto& cluster : schedule.clusters()) {
    if (!options.cluster_filter.empty() &&
        std::find(options.cluster_filter.begin(),
                  options.cluster_filter.end(),
                  cluster.id) == options.cluster_filter.end()) {
      continue;
    }
    auto range = schedule.view_time_range(cluster.id, options.view_mode);
    if (!range || range->length() <= 0) range = TimeRange{0, 1};
    const TimeRange window =
        options.time_window ? *options.time_window : *range;
    if (window.length() <= 0) throw ArgumentError("ascii: empty time window");

    const int rows = std::min(cluster.hosts, options.max_rows_per_cluster);
    const int hosts_per_row =
        (cluster.hosts + rows - 1) / rows;  // ceil division

    out += cluster.name + " (" + std::to_string(cluster.hosts) + " hosts";
    if (hosts_per_row > 1) {
      out += ", " + std::to_string(hosts_per_row) + " hosts/row";
    }
    out += ")\n";

    // cell[row][col] = 0 idle, '*' mixed, else the type letter.
    std::vector<std::string> cells(
        static_cast<std::size_t>(rows),
        std::string(static_cast<std::size_t>(options.width), 0));

    for (const auto& task : schedule.tasks()) {
      if (!options.type_filter.empty() &&
          std::find(options.type_filter.begin(), options.type_filter.end(),
                    task.type()) == options.type_filter.end()) {
        continue;
      }
      for (const auto& cfg : task.configurations()) {
        if (cfg.cluster_id != cluster.id) continue;
        const double t0 = std::max(task.start_time(), window.begin);
        const double t1 = std::min(task.end_time(), window.end);
        if (t1 <= t0) continue;
        int c0 = static_cast<int>((t0 - window.begin) / window.length() *
                                  options.width);
        int c1 = static_cast<int>((t1 - window.begin) / window.length() *
                                  options.width);
        c0 = std::clamp(c0, 0, options.width - 1);
        c1 = std::clamp(c1, c0, options.width - 1);
        const char letter = letter_for(legend, task.type());
        for (const auto& hr : cfg.hosts) {
          for (int h = hr.start; h < hr.start + hr.nb; ++h) {
            const int row = h / hosts_per_row;
            for (int c = c0; c <= c1; ++c) {
              char& cell = cells[static_cast<std::size_t>(row)]
                                [static_cast<std::size_t>(c)];
              if (cell == 0 || cell == letter) {
                cell = letter;
              } else {
                cell = '*';
              }
            }
          }
        }
      }
    }

    for (int row = 0; row < rows; ++row) {
      const int first = row * hosts_per_row;
      char label[16];
      std::snprintf(label, sizeof(label), "%4d |", first);
      out += label;
      for (char c : cells[static_cast<std::size_t>(row)]) {
        out += c == 0 ? '.' : c;
      }
      out += "|\n";
    }

    // Time axis: begin, middle, end markers, with enough decimals to
    // distinguish them at this window size.
    const int digits = window.length() < 1 ? 3 : window.length() < 100 ? 2 : 0;
    const std::string begin_label = util::format_fixed(window.begin, digits);
    const std::string mid_label = util::format_fixed(
        window.begin + window.length() / 2, digits);
    const std::string end_label = util::format_fixed(window.end, digits);
    std::string axis(static_cast<std::size_t>(options.width) + 7, ' ');
    axis.replace(6, begin_label.size(), begin_label);
    const std::size_t mid_pos =
        6 + static_cast<std::size_t>(options.width) / 2 -
        mid_label.size() / 2;
    if (mid_pos + mid_label.size() < axis.size()) {
      axis.replace(mid_pos, mid_label.size(), mid_label);
    }
    if (axis.size() > end_label.size()) {
      axis.replace(axis.size() - end_label.size() - 1, end_label.size(),
                   end_label);
    }
    out += axis + "\n\n";
  }

  if (options.show_legend && !legend.empty()) {
    out += "legend: ";
    std::vector<std::string> entries;
    for (const auto& [type, letter] : legend) {
      entries.push_back(std::string(1, letter) + "=" + type);
    }
    out += util::join(entries, "  ") + "  *=mixed  .=idle\n";
  }
  return out;
}

}  // namespace jedule::render
