#include "jedule/render/export.hpp"

#include <algorithm>

#include "jedule/render/gantt.hpp"
#include "jedule/render/raster_canvas.hpp"
#include "jedule/util/parallel.hpp"

namespace jedule::render {

Framebuffer render_raster(const model::Schedule& schedule,
                          const RenderOptions& options) {
  const GanttLayout layout = layout_gantt(schedule, options);
  Framebuffer fb(options.style.width, options.style.height);
  const int threads = options.resolved_threads();
  const int bands = std::min(threads, fb.height());
  if (bands <= 1) {
    RasterCanvas canvas(fb);
    paint_gantt(layout, canvas, options.style);
    return fb;
  }
  util::parallel_for(static_cast<std::size_t>(bands), threads,
                     [&](std::size_t b) {
    const int y0 = static_cast<int>(fb.height() * b / static_cast<std::size_t>(bands));
    const int y1 = static_cast<int>(fb.height() * (b + 1) / static_cast<std::size_t>(bands));
    Framebuffer band(fb.width(), y1 - y0);
    RasterCanvas canvas(band, y0, fb.height());
    paint_gantt(layout, canvas, options.style);
    // Bands cover disjoint row ranges, so workers can blit directly.
    fb.blit_rows(band, y0);
  });
  return fb;
}

}  // namespace jedule::render
