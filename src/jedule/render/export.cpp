#include "jedule/render/export.hpp"

#include "jedule/io/file.hpp"
#include "jedule/render/pdf.hpp"
#include "jedule/render/png.hpp"
#include "jedule/render/ppm.hpp"
#include "jedule/render/raster_canvas.hpp"
#include "jedule/render/svg.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::render {

ImageFormat format_for_path(const std::string& path) {
  const std::string lower = util::to_lower(path);
  if (util::ends_with(lower, ".png")) return ImageFormat::kPng;
  if (util::ends_with(lower, ".ppm")) return ImageFormat::kPpm;
  if (util::ends_with(lower, ".svg")) return ImageFormat::kSvg;
  if (util::ends_with(lower, ".pdf")) return ImageFormat::kPdf;
  throw ArgumentError("unknown image extension on '" + path +
                      "' (use .png, .ppm, .svg or .pdf)");
}

Framebuffer render_raster(const model::Schedule& schedule,
                          const color::ColorMap& colormap,
                          const GanttStyle& style) {
  const GanttLayout layout = layout_gantt(schedule, colormap, style);
  Framebuffer fb(style.width, style.height);
  RasterCanvas canvas(fb);
  paint_gantt(layout, canvas, style);
  return fb;
}

std::string render_to_bytes(const model::Schedule& schedule,
                            const color::ColorMap& colormap,
                            const GanttStyle& style, ImageFormat format) {
  switch (format) {
    case ImageFormat::kPng:
      return encode_png(render_raster(schedule, colormap, style));
    case ImageFormat::kPpm:
      return encode_ppm(render_raster(schedule, colormap, style));
    case ImageFormat::kSvg: {
      const GanttLayout layout = layout_gantt(schedule, colormap, style);
      SvgCanvas canvas(style.width, style.height);
      paint_gantt(layout, canvas, style);
      return canvas.finish();
    }
    case ImageFormat::kPdf: {
      const GanttLayout layout = layout_gantt(schedule, colormap, style);
      PdfCanvas canvas(style.width, style.height);
      paint_gantt(layout, canvas, style);
      return canvas.finish();
    }
  }
  throw ArgumentError("unhandled image format");
}

void export_schedule(const model::Schedule& schedule,
                     const color::ColorMap& colormap, const GanttStyle& style,
                     const std::string& path) {
  io::write_file(path,
                 render_to_bytes(schedule, colormap, style,
                                 format_for_path(path)));
}

}  // namespace jedule::render
