#include "jedule/render/export.hpp"

#include <algorithm>

#include "jedule/render/exporter.hpp"
#include "jedule/render/raster_canvas.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/parallel.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::render {

Framebuffer render_raster(const model::Schedule& schedule,
                          const RenderOptions& options) {
  const GanttLayout layout = layout_gantt(schedule, options);
  Framebuffer fb(options.style.width, options.style.height);
  const int threads = options.resolved_threads();
  const int bands = std::min(threads, fb.height());
  if (bands <= 1) {
    RasterCanvas canvas(fb);
    paint_gantt(layout, canvas, options.style);
    return fb;
  }
  util::parallel_for(static_cast<std::size_t>(bands), threads,
                     [&](std::size_t b) {
    const int y0 = static_cast<int>(fb.height() * b / static_cast<std::size_t>(bands));
    const int y1 = static_cast<int>(fb.height() * (b + 1) / static_cast<std::size_t>(bands));
    Framebuffer band(fb.width(), y1 - y0);
    RasterCanvas canvas(band, y0, fb.height());
    paint_gantt(layout, canvas, options.style);
    // Bands cover disjoint row ranges, so workers can blit directly.
    fb.blit_rows(band, y0);
  });
  return fb;
}

ImageFormat format_for_path(const std::string& path) {
  const std::string lower = util::to_lower(path);
  if (util::ends_with(lower, ".png")) return ImageFormat::kPng;
  if (util::ends_with(lower, ".ppm")) return ImageFormat::kPpm;
  if (util::ends_with(lower, ".svg")) return ImageFormat::kSvg;
  if (util::ends_with(lower, ".pdf")) return ImageFormat::kPdf;
  throw ArgumentError("unknown image extension on '" + path +
                      "' (use .png, .ppm, .svg or .pdf)");
}

namespace {

RenderOptions legacy_options(const color::ColorMap& colormap,
                             const GanttStyle& style) {
  RenderOptions options;
  options.style = style;
  options.colormap = colormap;
  options.threads = 1;  // the pre-registry API was single-threaded
  return options;
}

}  // namespace

Framebuffer render_raster(const model::Schedule& schedule,
                          const color::ColorMap& colormap,
                          const GanttStyle& style) {
  return render_raster(schedule, legacy_options(colormap, style));
}

std::string render_to_bytes(const model::Schedule& schedule,
                            const color::ColorMap& colormap,
                            const GanttStyle& style, ImageFormat format) {
  const char* name = nullptr;
  switch (format) {
    case ImageFormat::kPng: name = "png"; break;
    case ImageFormat::kPpm: name = "ppm"; break;
    case ImageFormat::kSvg: name = "svg"; break;
    case ImageFormat::kPdf: name = "pdf"; break;
  }
  if (name == nullptr) throw ArgumentError("unhandled image format");
  return render_to_bytes(schedule, legacy_options(colormap, style), name);
}

void export_schedule(const model::Schedule& schedule,
                     const color::ColorMap& colormap, const GanttStyle& style,
                     const std::string& path) {
  export_schedule(schedule, legacy_options(colormap, style), path);
}

}  // namespace jedule::render
