#include "jedule/render/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::render {

namespace {

using model::Schedule;
using model::Task;
using model::TimeRange;

// Fixed chrome dimensions (pixels).
constexpr double kMarginLeft = 56;    // host labels
constexpr double kMarginRight = 14;
constexpr double kMarginTop = 8;
constexpr double kHeaderHeight = 18;  // meta line
constexpr double kTitleHeight = 16;   // per-panel cluster title
constexpr double kAxisHeight = 22;    // per-panel time axis
constexpr double kPanelGap = 10;

std::string format_tick(double v, double step) {
  // Enough decimals to distinguish consecutive ticks.
  int digits = 0;
  if (step < 1.0) {
    digits = static_cast<int>(std::ceil(-std::log10(step)));
    digits = std::clamp(digits, 0, 6);
  }
  return util::format_fixed(v, digits);
}

}  // namespace

std::vector<double> nice_ticks(const TimeRange& range, int about) {
  JED_ASSERT(about >= 2);
  std::vector<double> ticks;
  const double span = range.length();
  if (span <= 0) {
    ticks.push_back(range.begin);
    return ticks;
  }
  const double raw_step = span / about;
  const double mag = std::pow(10.0, std::floor(std::log10(raw_step)));
  double step = mag;
  for (double mult : {1.0, 2.0, 5.0, 10.0}) {
    if (mag * mult >= raw_step) {
      step = mag * mult;
      break;
    }
  }
  const double first = std::ceil(range.begin / step) * step;
  for (double t = first; t <= range.end + step * 1e-9; t += step) {
    // Snap values like 0.30000000000000004 back onto the grid.
    ticks.push_back(std::round(t / step) * step);
  }
  return ticks;
}

GanttLayout layout_gantt(const Schedule& schedule,
                         const color::ColorMap& colormap,
                         const GanttStyle& style, int threads) {
  schedule.validate();
  if (style.width < 160 || style.height < 120) {
    throw ArgumentError("gantt: canvas smaller than 160x120");
  }
  if (style.time_window && style.time_window->length() <= 0) {
    throw ArgumentError("gantt: empty time window");
  }

  GanttLayout layout;
  layout.width = style.width;
  layout.height = style.height;
  layout.label_font_size = colormap.font_size_label();
  layout.min_label_font_size = colormap.min_font_size_label();
  layout.axes_font_size = colormap.font_size_axes();

  // Which clusters, in which order.
  std::vector<const model::Cluster*> shown;
  if (style.cluster_filter.empty()) {
    for (const auto& c : schedule.clusters()) shown.push_back(&c);
  } else {
    for (int id : style.cluster_filter) {
      shown.push_back(&schedule.cluster_by_id(id));  // throws if unknown
    }
  }

  // Header.
  if (style.show_meta && !schedule.meta().empty()) {
    std::vector<std::string> parts;
    for (const auto& [k, v] : schedule.meta()) parts.push_back(k + "=" + v);
    layout.header = util::join(parts, "  ");
  }

  // Tasks (+ composites).
  const auto type_selected = [&style](const Task& t) {
    return style.type_filter.empty() ||
           std::find(style.type_filter.begin(), style.type_filter.end(),
                     t.type()) != style.type_filter.end();
  };
  if (style.type_filter.empty()) {
    layout.tasks = schedule.tasks();
  } else {
    for (const auto& t : schedule.tasks()) {
      if (type_selected(t)) layout.tasks.push_back(t);
    }
  }
  layout.composite_begin = layout.tasks.size();
  if (style.show_composites) {
    for (auto& comp :
         model::synthesize_composites(schedule, type_selected, threads)) {
      // Keep members on the task so click-to-inspect and the colormap's
      // composite rules can see them.
      comp.task.set_property("members", util::join(comp.member_ids, ","));
      std::vector<std::string> types(comp.member_types.begin(),
                                     comp.member_types.end());
      comp.task.set_property("member_types", util::join(types, ","));
      layout.tasks.push_back(std::move(comp.task));
    }
  }

  // Vertical space distribution: panel heights proportional to host counts.
  const double header = style.show_meta && !layout.header.empty()
                            ? kHeaderHeight
                            : 0.0;
  const double avail_y0 = kMarginTop + header;
  const double avail_h =
      style.height - avail_y0 -
      static_cast<double>(shown.size()) * (kTitleHeight + kAxisHeight) -
      static_cast<double>(shown.size() - 1) * kPanelGap - 6;
  if (avail_h < static_cast<double>(shown.size()) * 8) {
    throw ArgumentError("gantt: canvas too small for " +
                        std::to_string(shown.size()) + " cluster panels");
  }
  int total_hosts = 0;
  for (const auto* c : shown) total_hosts += c->hosts;

  const double panel_x = kMarginLeft;
  const double panel_w = style.width - kMarginLeft - kMarginRight;
  double cursor_y = avail_y0;
  for (const auto* c : shown) {
    PanelLayout panel;
    panel.cluster_id = c->id;
    panel.title = c->name + " (" + std::to_string(c->hosts) + " hosts)";
    panel.hosts = c->hosts;
    panel.x = panel_x;
    panel.w = panel_w;
    panel.y = cursor_y + kTitleHeight;
    panel.h = std::max(8.0, avail_h * c->hosts / std::max(1, total_hosts));

    auto range = schedule.view_time_range(c->id, style.view_mode);
    if (!range || range->length() <= 0) {
      range = TimeRange{0, 1};  // empty cluster: unit axis
    }
    panel.time_range = style.time_window ? *style.time_window : *range;
    layout.panels.push_back(panel);
    cursor_y = panel.y + panel.h + kAxisHeight + kPanelGap;
  }

  // Boxes. Ordinary tasks first, composites after (paint order == z-order).
  auto add_boxes = [&](std::size_t first, std::size_t last, bool composite) {
    for (std::size_t i = first; i < last; ++i) {
      const Task& t = layout.tasks[i];
      color::TaskStyle task_style;
      if (composite) {
        // Recover member types for the colormap's composite rules.
        std::set<std::string> member_types;
        if (auto types = t.property("member_types")) {
          for (auto& part : util::split(*types, ',')) {
            member_types.insert(part);
          }
        }
        task_style = colormap.composite_style(member_types);
      } else {
        task_style = colormap.style_for(t.type());
      }

      bool highlighted = false;
      if (!style.highlight_key.empty()) {
        auto v = t.property(style.highlight_key);
        if (v && *v == style.highlight_value) {
          highlighted = true;
          task_style.background = style.highlight_bg;
          task_style.foreground = color::contrast_color(style.highlight_bg);
        }
      }

      for (const auto& cfg : t.configurations()) {
        for (const auto& panel : layout.panels) {
          if (panel.cluster_id != cfg.cluster_id) continue;
          // Clip to the panel's time window.
          const double t0 =
              std::max(t.start_time(), panel.time_range.begin);
          const double t1 = std::min(t.end_time(), panel.time_range.end);
          if (t1 <= t0 && !(t.start_time() == t.end_time() &&
                            t0 == t.start_time())) {
            continue;
          }
          for (const auto& hr : cfg.hosts) {
            TaskBox box;
            box.task_index = i;
            box.cluster_id = cfg.cluster_id;
            box.x = panel.x_of_time(t0);
            box.w = panel.x_of_time(t1) - box.x;
            box.y = panel.y + panel.row_height() * hr.start;
            box.h = panel.row_height() * hr.nb;
            box.style = task_style;
            box.label = t.id();
            box.composite = composite;
            box.highlighted = highlighted;
            layout.boxes.push_back(std::move(box));
          }
        }
      }
    }
  };
  add_boxes(0, layout.composite_begin, false);
  add_boxes(layout.composite_begin, layout.tasks.size(), true);

  return layout;
}

namespace {

const color::Color kFrame{60, 60, 60, 255};
const color::Color kGrid{225, 225, 225, 255};
const color::Color kAxisText{30, 30, 30, 255};
const color::Color kOutline{0, 0, 0, 90};

void paint_panel_chrome(const GanttLayout& layout, const PanelLayout& panel,
                        Canvas& canvas, const GanttStyle& style) {
  // Title.
  canvas.text(panel.x, panel.y - kTitleHeight + 2, panel.title, kAxisText,
              layout.axes_font_size);

  // Host grid lines + labels.
  const double row_h = panel.row_height();
  if (style.show_grid && row_h >= 4.0) {
    for (int h = 1; h < panel.hosts; ++h) {
      canvas.line(panel.x, panel.y + row_h * h, panel.x + panel.w,
                  panel.y + row_h * h, kGrid);
    }
  }
  const double label_h = canvas.text_height(layout.axes_font_size);
  const int label_stride =
      std::max(1, static_cast<int>(std::ceil((label_h + 2) / row_h)));
  for (int h = 0; h < panel.hosts; h += label_stride) {
    const std::string label = std::to_string(h);
    canvas.text(panel.x - canvas.text_width(label, layout.axes_font_size) - 5,
                panel.y + row_h * h + (row_h - label_h) / 2, label, kAxisText,
                layout.axes_font_size);
  }

  // Time axis.
  const auto ticks = nice_ticks(panel.time_range, style.time_ticks);
  const double step =
      ticks.size() >= 2 ? ticks[1] - ticks[0] : panel.time_range.length();
  const double axis_y = panel.y + panel.h;
  canvas.line(panel.x, axis_y, panel.x + panel.w, axis_y, kFrame);
  for (double t : ticks) {
    const double x = panel.x_of_time(t);
    canvas.line(x, axis_y, x, axis_y + 4, kFrame);
    const std::string label = format_tick(t, step);
    canvas.text(x - canvas.text_width(label, layout.axes_font_size) / 2,
                axis_y + 6, label, kAxisText, layout.axes_font_size);
  }

  // Frame on top of grid lines.
  canvas.stroke_rect(panel.x, panel.y, panel.w, panel.h, kFrame);
}

void paint_box(const GanttLayout& layout, const TaskBox& box, Canvas& canvas,
               const GanttStyle& style) {
  canvas.fill_rect(box.x, box.y, box.w, box.h, box.style.background);
  if (box.w >= 3 && box.h >= 3) {
    canvas.stroke_rect(box.x, box.y, box.w, box.h, kOutline);
  }
  if (box.composite && style.hatch_composites && box.w >= 6 && box.h >= 6) {
    canvas.hatch_rect(box.x, box.y, box.w, box.h, 6, box.style.foreground);
  }
  if (!style.show_labels || box.label.empty()) return;

  // Label fitting (paper's fontsize_label / min_fontsize_label semantics):
  // try the preferred size, fall back to the minimum, else draw nothing.
  for (int size : {layout.label_font_size, layout.min_label_font_size}) {
    const double tw = canvas.text_width(box.label, size);
    const double th = canvas.text_height(size);
    if (tw + 2 <= box.w && th + 2 <= box.h) {
      canvas.text(box.x + (box.w - tw) / 2, box.y + (box.h - th) / 2,
                  box.label, box.style.foreground, size);
      return;
    }
    if (size == layout.min_label_font_size) break;
  }
}

}  // namespace

void paint_gantt(const GanttLayout& layout, Canvas& canvas,
                 const GanttStyle& style) {
  canvas.fill_rect(0, 0, layout.width, layout.height, color::kWhite);
  if (!layout.header.empty()) {
    canvas.text(kMarginLeft, kMarginTop, layout.header, kAxisText,
                layout.axes_font_size);
  }
  for (const auto& box : layout.boxes) {
    paint_box(layout, box, canvas, style);
  }
  // Chrome last so frames and axes stay crisp over task fills.
  for (const auto& panel : layout.panels) {
    paint_panel_chrome(layout, panel, canvas, style);
  }
}

const TaskBox* hit_test(const GanttLayout& layout, double x, double y) {
  // Reverse order: composites and later boxes are drawn on top.
  for (auto it = layout.boxes.rbegin(); it != layout.boxes.rend(); ++it) {
    if (x >= it->x && x < it->x + std::max(it->w, 1.0) && y >= it->y &&
        y < it->y + std::max(it->h, 1.0)) {
      return &*it;
    }
  }
  return nullptr;
}

const PanelLayout* panel_at(const GanttLayout& layout, double x, double y) {
  for (const auto& panel : layout.panels) {
    if (x >= panel.x && x < panel.x + panel.w && y >= panel.y &&
        y < panel.y + panel.h) {
      return &panel;
    }
  }
  return nullptr;
}

}  // namespace jedule::render
