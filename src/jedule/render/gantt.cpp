#include "jedule/render/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <set>

#include "jedule/render/kernels.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::render {

namespace {

using model::Schedule;
using model::Task;
using model::TimeRange;

// Fixed chrome dimensions (pixels).
constexpr double kMarginLeft = 56;    // host labels
constexpr double kMarginRight = 14;
constexpr double kMarginTop = 8;
constexpr double kHeaderHeight = 18;  // meta line
constexpr double kTitleHeight = 16;   // per-panel cluster title
constexpr double kAxisHeight = 22;    // per-panel time axis
constexpr double kPanelGap = 10;

std::string format_tick(double v, double step) {
  // Enough decimals to distinguish consecutive ticks.
  int digits = 0;
  if (step < 1.0) {
    digits = static_cast<int>(std::ceil(-std::log10(step)));
    digits = std::clamp(digits, 0, 6);
  }
  return util::format_fixed(v, digits);
}

}  // namespace

std::vector<double> nice_ticks(const TimeRange& range, int about) {
  JED_ASSERT(about >= 2);
  std::vector<double> ticks;
  const double span = range.length();
  if (span <= 0) {
    ticks.push_back(range.begin);
    return ticks;
  }
  const double raw_step = span / about;
  const double mag = std::pow(10.0, std::floor(std::log10(raw_step)));
  double step = mag;
  for (double mult : {1.0, 2.0, 5.0, 10.0}) {
    if (mag * mult >= raw_step) {
      step = mag * mult;
      break;
    }
  }
  const double first = std::ceil(range.begin / step) * step;
  for (double t = first; t <= range.end + step * 1e-9; t += step) {
    // Snap values like 0.30000000000000004 back onto the grid.
    ticks.push_back(std::round(t / step) * step);
  }
  return ticks;
}

namespace {

// Closed-interval intersection count of (configuration x host range)
// entries against `win` for one cluster, stopping at `limit` — the LOD
// density probe when no TaskIndex is available.
std::size_t density_count(const Schedule& schedule, int cluster_id,
                          const TimeRange& win, std::size_t limit) {
  std::size_t n = 0;
  for (const Task& t : schedule.tasks()) {
    if (t.start_time() > win.end || t.end_time() < win.begin) continue;
    for (const auto& cfg : t.configurations()) {
      if (cfg.cluster_id != cluster_id) continue;
      n += cfg.hosts.size();
      if (n >= limit) return n;
    }
  }
  return n;
}

// Snap-aware box geometry: the classic path keeps the continuous
// panel-relative mapping; the snap path rounds to absolute integer pixel
// columns so tiles agree byte-for-byte across pans.
void set_box_times(TaskBox* box, const PanelLayout& panel, double t0,
                   double t1, const std::optional<SnapGrid>& snap) {
  if (snap) {
    const double b0 =
        std::floor((t0 - snap->anchor) * snap->cols_per_time + 0.5);
    const double b1 =
        std::floor((t1 - snap->anchor) * snap->cols_per_time + 0.5);
    box->x = panel.x + (b0 - static_cast<double>(snap->origin_col));
    box->w = b1 - b0;
  } else {
    box->x = panel.x_of_time(t0);
    box->w = panel.x_of_time(t1) - box->x;
  }
}

void set_box_hosts(TaskBox* box, const PanelLayout& panel, int host_start,
                   int nb, const std::optional<SnapGrid>& snap) {
  if (snap) {
    const double y0 = panel.y + panel.row_height() * host_start;
    const double y1 = panel.y + panel.row_height() * (host_start + nb);
    box->y = std::floor(y0 + 0.5);
    box->h = std::floor(y1 + 0.5) - box->y;
  } else {
    // Bit-identical to the pre-index arithmetic (default exports must not
    // move by even a rounding ulp).
    box->y = panel.y + panel.row_height() * host_start;
    box->h = panel.row_height() * nb;
  }
}

// Collapses one panel into per-pixel-column density bins colored by the
// dominant task type of each (column x host-row) cell; vertical runs with
// the same dominant type merge into a single 1-column-wide box. Work and
// memory are O(columns x rows x types), independent of the task count.
void add_lod_bins(GanttLayout* layout, std::size_t panel_index,
                  const Schedule& schedule, const color::ColorMap& colormap,
                  const GanttStyle& style, const LayoutHints& hints) {
  const PanelLayout& panel = layout->panels[panel_index];
  const TimeRange win = panel.time_range;
  const double len = win.length();
  if (!(len > 0) || panel.hosts <= 0) return;

  const auto type_selected = [&style](const Task& t) {
    return style.type_filter.empty() ||
           std::find(style.type_filter.begin(), style.type_filter.end(),
                     t.type()) != style.type_filter.end();
  };
  // Entry stream: (begin, end, host span, type) of every visible
  // (configuration x host range) rectangle, via the index when present.
  const auto for_each_entry = [&](const std::function<void(
                                      double, double, int, int,
                                      const std::string*)>& fn) {
    if (hints.index != nullptr) {
      hints.index->query(
          panel.cluster_id, win.begin, win.end,
          [&](const model::TaskIndex::Entry& e) {
            const Task& t = schedule.tasks()[e.task];
            if (!type_selected(t)) return;
            fn(e.begin, e.end, e.host_start, e.host_end, &t.type());
          });
      return;
    }
    for (const Task& t : schedule.tasks()) {
      if (t.start_time() > win.end || t.end_time() < win.begin) continue;
      if (!type_selected(t)) continue;
      for (const auto& cfg : t.configurations()) {
        if (cfg.cluster_id != panel.cluster_id) continue;
        for (const auto& hr : cfg.hosts) {
          fn(t.start_time(), t.end_time(), hr.start, hr.start + hr.nb - 1,
             &t.type());
        }
      }
    }
  };

  // Column mapping, in device-pixel units relative to panel.x.
  double col_w = 1.0;
  long long c_lo = 0, c_hi = 0;
  std::function<double(double)> col_of;
  if (hints.snap) {
    const SnapGrid g = *hints.snap;
    col_of = [g](double t) {
      return (t - g.anchor) * g.cols_per_time -
             static_cast<double>(g.origin_col);
    };
    c_lo = static_cast<long long>(std::floor(col_of(win.begin)));
    c_hi = static_cast<long long>(std::ceil(col_of(win.end)));
  } else {
    const long long cols = std::max<long long>(1, std::llround(panel.w));
    col_w = panel.w / static_cast<double>(cols);
    col_of = [win, len, cols](double t) {
      return (t - win.begin) / len * static_cast<double>(cols);
    };
    c_hi = cols;
  }
  if (c_hi <= c_lo) c_hi = c_lo + 1;
  const std::size_t ncols = static_cast<std::size_t>(c_hi - c_lo);

  // Host rows: at most one per device pixel, capped so the accumulation
  // grid stays small (bins are 1 column x >=1 row cells).
  const int rows = std::max(
      1, std::min({panel.hosts, static_cast<int>(panel.h), 256}));
  const double hosts_per_row =
      static_cast<double>(panel.hosts) / static_cast<double>(rows);

  // Pass 1: the distinct visible types, ordered by name so the dominance
  // tie-break is frame- and tile-invariant.
  std::vector<const std::string*> types;
  for_each_entry([&](double, double, int, int, const std::string* ty) {
    if (std::find(types.begin(), types.end(), ty) == types.end()) {
      types.push_back(ty);
    }
  });
  if (types.empty()) return;
  std::sort(types.begin(), types.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  const std::size_t ntypes = types.size();
  auto type_id = [&types](const std::string* ty) {
    return static_cast<std::size_t>(
        std::find(types.begin(), types.end(), ty) - types.begin());
  };

  // Pass 2: coverage (pixel-column overlap x host overlap) per cell/type.
  std::vector<float> cov(ncols * static_cast<std::size_t>(rows) * ntypes,
                         0.0f);
  for_each_entry([&](double b, double e, int h0, int h1,
                     const std::string* ty) {
    const double u0 = std::max(col_of(std::max(b, win.begin)),
                               static_cast<double>(c_lo));
    const double u1 = std::min(col_of(std::min(e, win.end)),
                               static_cast<double>(c_hi));
    if (!(u1 > u0)) return;
    const std::size_t tid = type_id(ty);
    int r0 = static_cast<int>(h0 / hosts_per_row);
    int r1 = static_cast<int>(h1 / hosts_per_row);
    r0 = std::clamp(r0, 0, rows - 1);
    r1 = std::clamp(r1, r0, rows - 1);
    const auto cc0 = static_cast<long long>(std::floor(u0));
    const auto cc1 = static_cast<long long>(std::ceil(u1));
    for (long long c = cc0; c < cc1; ++c) {
      const double tcov = std::min(u1, static_cast<double>(c) + 1) -
                          std::max(u0, static_cast<double>(c));
      if (!(tcov > 0)) continue;
      for (int r = r0; r <= r1; ++r) {
        const double rb0 = r * hosts_per_row;
        const double rb1 = (r + 1) * hosts_per_row;
        const double hcov = std::min<double>(h1 + 1, rb1) -
                            std::max<double>(h0, rb0);
        if (!(hcov > 0)) continue;
        cov[(static_cast<std::size_t>(c - c_lo) *
                 static_cast<std::size_t>(rows) +
             static_cast<std::size_t>(r)) *
                ntypes +
            tid] += static_cast<float>(tcov * hcov);
      }
    }
  });

  // Emit: dominant type per cell, vertical same-type runs merged.
  for (std::size_t c = 0; c < ncols; ++c) {
    int run_start = -1;
    std::size_t run_type = 0;
    auto flush = [&](int r_end) {
      if (run_start < 0) return;
      TaskBox box;
      box.task_index = TaskBox::kNoTask;
      box.cluster_id = panel.cluster_id;
      box.lod_bin = true;
      box.style = colormap.style_for(*types[run_type]);
      const double x =
          panel.x + static_cast<double>(c_lo + static_cast<long long>(c)) *
                        col_w;
      box.x = x;
      box.w = col_w;
      const double y0 = panel.y + panel.h * run_start / rows;
      const double y1 = panel.y + panel.h * r_end / rows;
      if (hints.snap) {
        box.y = std::floor(y0 + 0.5);
        box.h = std::floor(y1 + 0.5) - box.y;
      } else {
        box.y = y0;
        box.h = y1 - y0;
      }
      layout->boxes.push_back(std::move(box));
      run_start = -1;
    };
    for (int r = 0; r < rows; ++r) {
      const float* cell =
          &cov[(c * static_cast<std::size_t>(rows) +
                static_cast<std::size_t>(r)) *
               ntypes];
      std::size_t best = ntypes;  // ntypes == empty cell
      for (std::size_t ty = 0; ty < ntypes; ++ty) {
        if (cell[ty] > 0 && (best == ntypes || cell[ty] > cell[best])) {
          best = ty;
        }
      }
      if (best == ntypes) {
        flush(r);
        continue;
      }
      if (run_start >= 0 && best != run_type) flush(r);
      if (run_start < 0) {
        run_start = r;
        run_type = best;
      }
    }
    flush(rows);
  }
}

// --- Dependency-edge layout (DESIGN.md §4j) --------------------------------

// Liang-Barsky clip of the segment in `a` against [rx0, rx1] x [ry0, ry1].
// Returns false when nothing survives; sets a->head when the destination
// endpoint itself is inside the rect, so arrowheads only draw where the
// dependency actually lands.
bool clip_arrow(EdgeArrow* a, double rx0, double ry0, double rx1,
                double ry1) {
  double t0 = 0, t1 = 1;
  const double dx = a->x1 - a->x0;
  const double dy = a->y1 - a->y0;
  const double p[4] = {-dx, dx, -dy, dy};
  const double q[4] = {a->x0 - rx0, rx1 - a->x0, a->y0 - ry0, ry1 - a->y0};
  for (int i = 0; i < 4; ++i) {
    if (p[i] == 0) {
      if (q[i] < 0) return false;
      continue;
    }
    const double r = q[i] / p[i];
    if (p[i] < 0) {
      if (r > t1) return false;
      if (r > t0) t0 = r;
    } else {
      if (r < t0) return false;
      if (r < t1) t1 = r;
    }
  }
  const double x0 = a->x0 + t0 * dx;
  const double y0 = a->y0 + t0 * dy;
  const double x1 = a->x0 + t1 * dx;
  const double y1 = a->y0 + t1 * dy;
  a->x0 = x0;
  a->y0 = y0;
  a->x1 = x1;
  a->y1 = y1;
  a->head = t1 == 1.0;
  return true;
}

// Is (src, dst) a consecutive pair of the (ascending) critical path?
bool on_path(const std::vector<std::uint32_t>& path, std::uint32_t src,
             std::uint32_t dst) {
  const auto it = std::lower_bound(path.begin(), path.end(), src);
  return it != path.end() && *it == src && it + 1 != path.end() &&
         *(it + 1) == dst;
}

bool entry_before(const model::EdgeIndex::Entry& a,
                  const model::EdgeIndex::Entry& b) {
  if (a.begin != b.begin) return a.begin < b.begin;
  if (a.src != b.src) return a.src < b.src;
  return a.dst < b.dst;
}

// Lays out dependency arrows / heat lanes for every panel. With an
// EdgeIndex hint a panel costs O(log n + visible); the fallback scans
// Schedule::dependencies() per panel and produces the identical layout
// (same entries, same sort, same critical path — the differential tests
// rely on this, and the bench uses it as the brute-force baseline).
void layout_edges(GanttLayout* layout, const Schedule& schedule,
                  const GanttStyle& style, const LayoutHints& hints) {
  const EdgeMode mode =
      style.edges == EdgeMode::kDefault ? EdgeMode::kAuto : style.edges;
  if (mode == EdgeMode::kOff) return;
  const model::EdgeIndex* index = hints.edge_index;
  if (index != nullptr && index->empty()) index = nullptr;
  if (index == nullptr && schedule.dependencies().empty()) return;
  const auto& tasks = schedule.tasks();
  constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  // The critical path: persistent DP in the index, or the identical
  // O(n + m) recomputation (same CSR order, same tie-breaks) here.
  std::vector<std::uint32_t> local_path;
  const std::vector<std::uint32_t>* path = &local_path;
  if (index != nullptr) {
    path = &index->critical_path();
  } else {
    const auto& deps = schedule.dependencies();
    const std::size_t n = tasks.size();
    std::vector<std::size_t> off(n + 1, 0);
    for (const auto& d : deps) ++off[d.dst + 1];
    for (std::size_t i = 0; i < n; ++i) off[i + 1] += off[i];
    std::vector<std::uint32_t> src(deps.size());
    {
      std::vector<std::size_t> cur(off.begin(), off.end() - 1);
      for (const auto& d : deps) src[cur[d.dst]++] = d.src;
    }
    std::vector<double> finish(n);
    std::vector<std::uint32_t> via(n, kNone);
    double best_time = -1.0;
    std::uint32_t best = kNone;
    for (std::size_t i = 0; i < n; ++i) {
      double start = 0.0;
      for (std::size_t k = off[i]; k < off[i + 1]; ++k) {
        if (finish[src[k]] > start) {
          start = finish[src[k]];
          via[i] = src[k];
        }
      }
      finish[i] = start + tasks[i].duration();
      if (finish[i] > best_time) {
        best_time = finish[i];
        best = static_cast<std::uint32_t>(i);
      }
    }
    for (std::uint32_t v = best; v != kNone; v = via[v]) {
      local_path.push_back(v);
    }
    std::reverse(local_path.begin(), local_path.end());
  }

  auto rep_host = [&tasks](std::uint32_t task, int cid) -> std::int32_t {
    for (const auto& cfg : tasks[task].configurations()) {
      if (cfg.cluster_id == cid && !cfg.hosts.empty()) {
        return cfg.hosts.front().start;
      }
    }
    return -1;
  };

  using Entry = model::EdgeIndex::Entry;
  for (std::size_t pi = 0; pi < layout->panels.size(); ++pi) {
    const PanelLayout& panel = layout->panels[pi];
    const TimeRange win = panel.time_range;
    if (!(win.length() > 0) || panel.hosts <= 0) continue;

    // Visible-entry stream: the index reports an edge once per cluster
    // containing either endpoint; the fallback reproduces exactly that.
    const auto for_each_entry =
        [&](const std::function<void(const Entry&)>& fn) {
          if (index != nullptr) {
            index->query(panel.cluster_id, win.begin, win.end, fn);
            return;
          }
          const auto in_cluster = [&](std::uint32_t t) {
            for (const auto& cfg : tasks[t].configurations()) {
              if (cfg.cluster_id == panel.cluster_id) return true;
            }
            return false;
          };
          for (const auto& d : schedule.dependencies()) {
            Entry e;
            e.begin = std::min(tasks[d.src].end_time(),
                               tasks[d.dst].start_time());
            e.end = std::max(tasks[d.src].end_time(),
                             tasks[d.dst].start_time());
            if (e.begin > win.end || e.end < win.begin) continue;
            if (!in_cluster(d.src) && !in_cluster(d.dst)) continue;
            e.src = d.src;
            e.dst = d.dst;
            e.src_host = rep_host(d.src, panel.cluster_id);
            e.dst_host = rep_host(d.dst, panel.cluster_id);
            fn(e);
          }
        };

    const double row_h = panel.row_height();
    const auto add_arrow = [&](const Entry& e, bool critical) {
      // Cross-cluster edges (an endpoint without a host row here) feed
      // the heat lane but have no arrow geometry in this panel.
      if (e.src_host < 0 || e.dst_host < 0) return;
      EdgeArrow a;
      a.x0 = panel.x_of_time(tasks[e.src].end_time());
      a.y0 = panel.y + row_h * (e.src_host + 0.5);
      a.x1 = panel.x_of_time(tasks[e.dst].start_time());
      a.y1 = panel.y + row_h * (e.dst_host + 0.5);
      a.critical = critical;
      if (!clip_arrow(&a, panel.x, panel.y, panel.x + panel.w,
                      panel.y + panel.h)) {
        return;
      }
      layout->edge_arrows.push_back(a);
      ++layout->edge_stats.arrows;
      if (critical) ++layout->edge_stats.critical_arrows;
    };

    // Density probe: arrows within budget, heat lane above it.
    const auto cols_ll = std::max<long long>(1, std::llround(panel.w));
    const std::size_t budget =
        static_cast<std::size_t>(cols_ll) *
        static_cast<std::size_t>(std::max(1, style.edge_density));
    bool heat = mode == EdgeMode::kForce;
    std::vector<Entry> visible;
    if (!heat) {
      if (index != nullptr) {
        heat = index->count_upto(panel.cluster_id, win.begin, win.end,
                                 budget + 1) > budget;
      } else {
        for_each_entry([&](const Entry& e) { visible.push_back(e); });
        heat = visible.size() > budget;
      }
    }

    if (heat) {
      visible.clear();
      // Column mapping — the same device-pixel grid as the LOD bins.
      double col_w = 1.0;
      long long c_lo = 0, c_hi = 0;
      std::function<double(double)> col_of;
      if (hints.snap) {
        const SnapGrid g = *hints.snap;
        col_of = [g](double t) {
          return (t - g.anchor) * g.cols_per_time -
                 static_cast<double>(g.origin_col);
        };
        c_lo = static_cast<long long>(std::floor(col_of(win.begin)));
        c_hi = static_cast<long long>(std::ceil(col_of(win.end)));
      } else {
        const double len = win.length();
        col_w = panel.w / static_cast<double>(cols_ll);
        col_of = [win, len, cols_ll](double t) {
          return (t - win.begin) / len * static_cast<double>(cols_ll);
        };
        c_hi = cols_ll;
      }
      if (c_hi <= c_lo) c_hi = c_lo + 1;
      const std::size_t ncols = static_cast<std::size_t>(c_hi - c_lo);

      // Accumulate one f32 count per column. The adds are 1.0f each and
      // element-wise, so the lane is bit-exact at any visit order and
      // under every SIMD kernel (counts stay exact below 2^24).
      std::vector<float> acc(ncols, 0.0f);
      const auto& kern = kernels::active();
      std::vector<Entry> crit;  // critical edges still draw as arrows
      for_each_entry([&](const Entry& e) {
        ++layout->edge_stats.considered;
        const double u0 = std::max(col_of(std::max(e.begin, win.begin)),
                                   static_cast<double>(c_lo));
        const double u1 = std::min(col_of(std::min(e.end, win.end)),
                                   static_cast<double>(c_hi));
        auto b0 = static_cast<long long>(std::floor(u0));
        auto b1 = static_cast<long long>(std::ceil(u1));
        if (b1 <= b0) b1 = b0 + 1;  // instantaneous edge: one column
        b0 = std::clamp(b0, c_lo, c_hi);
        b1 = std::clamp(b1, c_lo, c_hi);
        if (b1 > b0) {
          kern.heat_accum(acc.data() + (b0 - c_lo),
                          static_cast<std::size_t>(b1 - b0), 1.0f);
        }
        if (on_path(*path, e.src, e.dst)) crit.push_back(e);
      });
      float maxv = 0.0f;
      for (const float v : acc) maxv = std::max(maxv, v);
      if (maxv > 0.0f) {
        EdgeHeatLane lane;
        lane.panel_index = pi;
        lane.col_w = col_w;
        lane.x = panel.x + static_cast<double>(c_lo) * col_w;
        lane.h = std::min(6.0, panel.h);
        lane.y = panel.y + panel.h - lane.h;
        lane.levels.resize(ncols);
        kern.heat_quantize(acc.data(), ncols, 255.0f / maxv,
                           lane.levels.data());
        for (const auto v : lane.levels) {
          if (v != 0) ++layout->edge_stats.heat_columns;
        }
        layout->edge_lanes.push_back(std::move(lane));
      }
      ++layout->edge_stats.heat_panels;
      std::sort(crit.begin(), crit.end(), entry_before);
      for (const Entry& e : crit) add_arrow(e, true);
    } else {
      if (index != nullptr) {
        for_each_entry([&](const Entry& e) { visible.push_back(e); });
      }
      layout->edge_stats.considered += visible.size();
      std::sort(visible.begin(), visible.end(), entry_before);
      for (const Entry& e : visible) {
        add_arrow(e, on_path(*path, e.src, e.dst));
      }
    }
  }
}

}  // namespace

GanttLayout layout_gantt(const Schedule& schedule,
                         const color::ColorMap& colormap,
                         const GanttStyle& style, int threads,
                         const LayoutHints& hints) {
  if (!hints.assume_validated) schedule.validate();
  if (style.width < 160 || style.height < 120) {
    throw ArgumentError("gantt: canvas smaller than 160x120");
  }
  if (style.time_window && style.time_window->length() <= 0) {
    throw ArgumentError("gantt: empty time window");
  }

  GanttLayout layout;
  layout.width = style.width;
  layout.height = style.height;
  layout.label_font_size = colormap.font_size_label();
  layout.min_label_font_size = colormap.min_font_size_label();
  layout.axes_font_size = colormap.font_size_axes();

  // Which clusters, in which order.
  std::vector<const model::Cluster*> shown;
  if (style.cluster_filter.empty()) {
    for (const auto& c : schedule.clusters()) shown.push_back(&c);
  } else {
    for (int id : style.cluster_filter) {
      shown.push_back(&schedule.cluster_by_id(id));  // throws if unknown
    }
  }

  // Header.
  if (style.show_meta && !schedule.meta().empty()) {
    std::vector<std::string> parts;
    for (const auto& [k, v] : schedule.meta()) parts.push_back(k + "=" + v);
    layout.header = util::join(parts, "  ");
  }

  const auto type_selected = [&style](const Task& t) {
    return style.type_filter.empty() ||
           std::find(style.type_filter.begin(), style.type_filter.end(),
                     t.type()) != style.type_filter.end();
  };

  // Vertical space distribution: panel heights proportional to host counts.
  const double header = style.show_meta && !layout.header.empty()
                            ? kHeaderHeight
                            : 0.0;
  const double avail_y0 = kMarginTop + header;
  const double avail_h =
      style.height - avail_y0 -
      static_cast<double>(shown.size()) * (kTitleHeight + kAxisHeight) -
      static_cast<double>(shown.size() - 1) * kPanelGap - 6;
  if (avail_h < static_cast<double>(shown.size()) * 8) {
    throw ArgumentError("gantt: canvas too small for " +
                        std::to_string(shown.size()) + " cluster panels");
  }
  int total_hosts = 0;
  for (const auto* c : shown) total_hosts += c->hosts;

  // Panel windows: every cluster's bounds in one pass over the tasks
  // instead of one O(n) view_time_range scan per panel; the global range
  // comes for free from the index when the caller supplied one.
  std::map<int, TimeRange> local_ranges;
  std::optional<TimeRange> global_range;
  if (!style.time_window) {
    local_ranges = schedule.cluster_time_ranges();
    global_range = hints.index != nullptr ? hints.index->time_range()
                                          : schedule.time_range();
  }

  const double panel_x = kMarginLeft;
  const double panel_w = style.width - kMarginLeft - kMarginRight;
  double cursor_y = avail_y0;
  for (const auto* c : shown) {
    PanelLayout panel;
    panel.cluster_id = c->id;
    panel.title = c->name + " (" + std::to_string(c->hosts) + " hosts)";
    panel.hosts = c->hosts;
    panel.x = panel_x;
    panel.w = panel_w;
    panel.y = cursor_y + kTitleHeight;
    panel.h = std::max(8.0, avail_h * c->hosts / std::max(1, total_hosts));

    if (style.time_window) {
      // Windowed views never consult the cluster bounds; skipping the
      // O(n) scan keeps warm interactive frames O(visible).
      panel.time_range = *style.time_window;
    } else {
      std::optional<TimeRange> range;
      if (style.view_mode == model::ViewMode::kAligned) {
        range = global_range;
      } else {
        const auto it = local_ranges.find(c->id);
        range = it != local_ranges.end() ? std::optional<TimeRange>(it->second)
                                         : global_range;
      }
      if (!range || range->length() <= 0) {
        range = TimeRange{0, 1};  // empty cluster: unit axis
      }
      panel.time_range = *range;
    }
    layout.panels.push_back(panel);
    cursor_y = panel.y + panel.h + kAxisHeight + kPanelGap;
  }

  layout.panel_lod.assign(layout.panels.size(), 0);
  if (hints.chrome_only) return layout;

  // Per-panel LOD decision (the tile cache pre-decides per frame so all
  // tiles of one frame agree).
  const LodMode lod_mode =
      style.lod == LodMode::kDefault
          ? (hints.interactive ? LodMode::kAuto : LodMode::kOff)
          : style.lod;
  if (hints.panel_lod_override &&
      hints.panel_lod_override->size() == layout.panels.size()) {
    layout.panel_lod = *hints.panel_lod_override;
  } else if (lod_mode == LodMode::kForce) {
    layout.panel_lod.assign(layout.panels.size(), 1);
  } else if (lod_mode == LodMode::kAuto) {
    for (std::size_t pi = 0; pi < layout.panels.size(); ++pi) {
      const PanelLayout& panel = layout.panels[pi];
      const auto cols =
          static_cast<std::size_t>(std::max<long long>(1, std::llround(panel.w)));
      const std::size_t limit =
          cols * static_cast<std::size_t>(std::max(1, style.lod_density));
      const std::size_t n =
          hints.index != nullptr
              ? hints.index->count_upto(panel.cluster_id,
                                        panel.time_range.begin,
                                        panel.time_range.end, limit + 1)
              : density_count(schedule, panel.cluster_id, panel.time_range,
                              limit + 1);
      layout.panel_lod[pi] = n > limit ? 1 : 0;
    }
  }
  const bool any_exact_panel =
      std::find(layout.panel_lod.begin(), layout.panel_lod.end(), 0) !=
      layout.panel_lod.end();

  // Tasks (+ composites). With an index and a time window, lay out only
  // the tasks intersecting the window (closed intersection, a superset of
  // what paints after clipping — so the boxes match the full layout's).
  const bool cull = hints.index != nullptr && style.time_window.has_value();
  layout.culled = cull;
  if (cull) {
    std::vector<std::uint32_t> visible;
    for (std::size_t pi = 0; pi < layout.panels.size(); ++pi) {
      if (layout.panel_lod[pi]) continue;  // LOD panels draw bins, not boxes
      const PanelLayout& panel = layout.panels[pi];
      hints.index->collect_tasks(panel.cluster_id, panel.time_range.begin,
                                 panel.time_range.end, &visible);
    }
    std::sort(visible.begin(), visible.end());
    visible.erase(std::unique(visible.begin(), visible.end()), visible.end());
    layout.tasks.reserve(visible.size());
    for (std::uint32_t idx : visible) {
      const Task& t = schedule.tasks()[idx];
      if (type_selected(t)) layout.tasks.push_back(t);
    }
  } else if (any_exact_panel || layout.panels.empty()) {
    if (style.type_filter.empty()) {
      layout.tasks = schedule.tasks();
    } else {
      for (const auto& t : schedule.tasks()) {
        if (type_selected(t)) layout.tasks.push_back(t);
      }
    }
  }
  layout.composite_begin = layout.tasks.size();
  if (style.show_composites && any_exact_panel) {
    std::vector<model::Composite> composites;
    if (cull) {
      // Composite groups that intersect the window can be split (in time
      // or host ranges) by the events of any task overlapping their
      // members, so synthesize over the tasks intersecting the *extent*
      // of the visible set — the 1-hop closure that makes the culled
      // composites bit-identical to the full layout's inside the window.
      bool have = false;
      double lo = 0, hi = 0;
      for (std::size_t i = 0; i < layout.composite_begin; ++i) {
        const Task& t = layout.tasks[i];
        lo = have ? std::min(lo, t.start_time()) : t.start_time();
        hi = have ? std::max(hi, t.end_time()) : t.end_time();
        have = true;
      }
      if (have) {
        std::vector<std::uint32_t> closure;
        for (std::size_t pi = 0; pi < layout.panels.size(); ++pi) {
          if (layout.panel_lod[pi]) continue;
          hints.index->collect_tasks(layout.panels[pi].cluster_id, lo, hi,
                                     &closure);
        }
        std::sort(closure.begin(), closure.end());
        closure.erase(std::unique(closure.begin(), closure.end()),
                      closure.end());
        Schedule sub;
        for (const auto& c : schedule.clusters()) sub.add_cluster(c);
        for (std::uint32_t idx : closure) {
          const Task& t = schedule.tasks()[idx];
          if (type_selected(t)) sub.add_task(t);
        }
        composites = model::synthesize_composites(sub, nullptr, threads);
      }
    } else if (hints.composites != nullptr && style.type_filter.empty()) {
      // The engine's incrementally-maintained list (append_composites);
      // copied because the loop below decorates each task with properties.
      composites = *hints.composites;
    } else {
      composites = model::synthesize_composites(schedule, type_selected,
                                                threads);
    }
    for (auto& comp : composites) {
      // Keep members on the task so click-to-inspect and the colormap's
      // composite rules can see them.
      comp.task.set_property("members", util::join(comp.member_ids, ","));
      std::vector<std::string> types(comp.member_types.begin(),
                                     comp.member_types.end());
      comp.task.set_property("member_types", util::join(types, ","));
      layout.tasks.push_back(std::move(comp.task));
    }
  }

  // Boxes. Ordinary tasks first, composites after (paint order == z-order).
  auto add_boxes = [&](std::size_t first, std::size_t last, bool composite) {
    for (std::size_t i = first; i < last; ++i) {
      const Task& t = layout.tasks[i];
      color::TaskStyle task_style;
      if (composite) {
        // Recover member types for the colormap's composite rules.
        std::set<std::string> member_types;
        if (auto types = t.property("member_types")) {
          for (auto& part : util::split(*types, ',')) {
            member_types.insert(part);
          }
        }
        task_style = colormap.composite_style(member_types);
      } else {
        task_style = colormap.style_for(t.type());
      }

      bool highlighted = false;
      if (!style.highlight_key.empty()) {
        auto v = t.property(style.highlight_key);
        if (v && *v == style.highlight_value) {
          highlighted = true;
          task_style.background = style.highlight_bg;
          task_style.foreground = color::contrast_color(style.highlight_bg);
        }
      }

      for (const auto& cfg : t.configurations()) {
        for (std::size_t pi = 0; pi < layout.panels.size(); ++pi) {
          const PanelLayout& panel = layout.panels[pi];
          if (panel.cluster_id != cfg.cluster_id) continue;
          if (layout.panel_lod[pi]) continue;  // LOD panels draw bins
          // Clip to the panel's time window.
          const double t0 =
              std::max(t.start_time(), panel.time_range.begin);
          const double t1 = std::min(t.end_time(), panel.time_range.end);
          if (t1 <= t0 && !(t.start_time() == t.end_time() &&
                            t0 == t.start_time())) {
            continue;
          }
          for (const auto& hr : cfg.hosts) {
            TaskBox box;
            box.task_index = i;
            box.cluster_id = cfg.cluster_id;
            set_box_times(&box, panel, t0, t1, hints.snap);
            set_box_hosts(&box, panel, hr.start, hr.nb, hints.snap);
            box.style = task_style;
            box.label = t.id();
            box.composite = composite;
            box.highlighted = highlighted;
            layout.boxes.push_back(std::move(box));
          }
        }
      }
    }
  };
  add_boxes(0, layout.composite_begin, false);
  if (!hints.skip_lod_bins) {
    for (std::size_t pi = 0; pi < layout.panels.size(); ++pi) {
      if (layout.panel_lod[pi]) {
        add_lod_bins(&layout, pi, schedule, colormap, style, hints);
      }
    }
  }
  add_boxes(layout.composite_begin, layout.tasks.size(), true);

  layout_edges(&layout, schedule, style, hints);

  return layout;
}

namespace {

const color::Color kFrame{60, 60, 60, 255};
const color::Color kGrid{225, 225, 225, 255};
const color::Color kAxisText{30, 30, 30, 255};
const color::Color kOutline{0, 0, 0, 90};
const color::Color kEdgeLine{70, 70, 190, 255};
const color::Color kEdgeCritical{205, 30, 30, 255};
const color::Color kEdgeHeat{110, 40, 160, 255};  // alpha = quantized level

void paint_panel_chrome(const GanttLayout& layout, const PanelLayout& panel,
                        Canvas& canvas, const GanttStyle& style) {
  // Title.
  canvas.text(panel.x, panel.y - kTitleHeight + 2, panel.title, kAxisText,
              layout.axes_font_size);

  // Host grid lines + labels.
  const double row_h = panel.row_height();
  if (style.show_grid && row_h >= 4.0) {
    for (int h = 1; h < panel.hosts; ++h) {
      canvas.line(panel.x, panel.y + row_h * h, panel.x + panel.w,
                  panel.y + row_h * h, kGrid);
    }
  }
  const double label_h = canvas.text_height(layout.axes_font_size);
  const int label_stride =
      std::max(1, static_cast<int>(std::ceil((label_h + 2) / row_h)));
  for (int h = 0; h < panel.hosts; h += label_stride) {
    const std::string label = std::to_string(h);
    canvas.text(panel.x - canvas.text_width(label, layout.axes_font_size) - 5,
                panel.y + row_h * h + (row_h - label_h) / 2, label, kAxisText,
                layout.axes_font_size);
  }

  // Time axis.
  const auto ticks = nice_ticks(panel.time_range, style.time_ticks);
  const double step =
      ticks.size() >= 2 ? ticks[1] - ticks[0] : panel.time_range.length();
  const double axis_y = panel.y + panel.h;
  canvas.line(panel.x, axis_y, panel.x + panel.w, axis_y, kFrame);
  for (double t : ticks) {
    const double x = panel.x_of_time(t);
    canvas.line(x, axis_y, x, axis_y + 4, kFrame);
    const std::string label = format_tick(t, step);
    canvas.text(x - canvas.text_width(label, layout.axes_font_size) / 2,
                axis_y + 6, label, kAxisText, layout.axes_font_size);
  }

  // Frame on top of grid lines.
  canvas.stroke_rect(panel.x, panel.y, panel.w, panel.h, kFrame);
}

void paint_box_label(const GanttLayout& layout, const TaskBox& box,
                     Canvas& canvas) {
  // Label fitting (paper's fontsize_label / min_fontsize_label semantics):
  // try the preferred size, fall back to the minimum, else draw nothing.
  for (int size : {layout.label_font_size, layout.min_label_font_size}) {
    const double tw = canvas.text_width(box.label, size);
    const double th = canvas.text_height(size);
    if (tw + 2 <= box.w && th + 2 <= box.h) {
      canvas.text(box.x + (box.w - tw) / 2, box.y + (box.h - th) / 2,
                  box.label, box.style.foreground, size);
      return;
    }
    if (size == layout.min_label_font_size) break;
  }
}

void paint_box(const GanttLayout& layout, const TaskBox& box, Canvas& canvas,
               const GanttStyle& style, bool with_label) {
  canvas.fill_rect(box.x, box.y, box.w, box.h, box.style.background);
  if (box.w >= 3 && box.h >= 3) {
    canvas.stroke_rect(box.x, box.y, box.w, box.h, kOutline);
  }
  if (box.composite && style.hatch_composites && box.w >= 6 && box.h >= 6) {
    canvas.hatch_rect(box.x, box.y, box.w, box.h, 6, box.style.foreground);
  }
  if (!with_label || !style.show_labels || box.label.empty()) return;
  paint_box_label(layout, box, canvas);
}

}  // namespace

// Every public paint pass flushes before returning so callers can read
// the render target (or blit/move it) without knowing whether the canvas
// batches its primitives.

void paint_gantt_background(const GanttLayout& layout, Canvas& canvas) {
  canvas.fill_rect(0, 0, layout.width, layout.height, color::kWhite);
  paint_gantt_header(layout, canvas);
  canvas.flush();
}

void paint_gantt_header(const GanttLayout& layout, Canvas& canvas) {
  if (!layout.header.empty()) {
    canvas.text(kMarginLeft, kMarginTop, layout.header, kAxisText,
                layout.axes_font_size);
  }
  canvas.flush();
}

void paint_gantt_boxes(const GanttLayout& layout, Canvas& canvas,
                       const GanttStyle& style, bool with_labels) {
  for (const auto& box : layout.boxes) {
    paint_box(layout, box, canvas, style, with_labels);
  }
  canvas.flush();
}

void paint_gantt_labels(const GanttLayout& layout, Canvas& canvas,
                        const GanttStyle& style) {
  if (!style.show_labels) {
    canvas.flush();
    return;
  }
  for (const auto& box : layout.boxes) {
    if (box.lod_bin || box.label.empty()) continue;
    paint_box_label(layout, box, canvas);
  }
  canvas.flush();
}

void paint_gantt_chrome(const GanttLayout& layout, Canvas& canvas,
                        const GanttStyle& style) {
  // Chrome last so frames and axes stay crisp over task fills.
  for (const auto& panel : layout.panels) {
    paint_panel_chrome(layout, panel, canvas, style);
  }
  canvas.flush();
}

namespace {

void paint_edge_arrow(const EdgeArrow& a, Canvas& canvas, color::Color c) {
  canvas.line(a.x0, a.y0, a.x1, a.y1, c);
  if (!a.head) return;
  // Two barbs at the destination, +/-30 degrees off the reversed
  // direction (closed-form constants keep the geometry deterministic).
  const double dx = a.x0 - a.x1;
  const double dy = a.y0 - a.y1;
  const double len = std::hypot(dx, dy);
  if (!(len > 1e-9)) return;
  const double ux = dx / len;
  const double uy = dy / len;
  constexpr double kBarb = 4.0;
  constexpr double kCos = 0.8660254037844387;  // cos 30°
  constexpr double kSin = 0.5;                 // sin 30°
  canvas.line(a.x1, a.y1, a.x1 + kBarb * (ux * kCos - uy * kSin),
              a.y1 + kBarb * (ux * kSin + uy * kCos), c);
  canvas.line(a.x1, a.y1, a.x1 + kBarb * (ux * kCos + uy * kSin),
              a.y1 + kBarb * (-ux * kSin + uy * kCos), c);
}

}  // namespace

void paint_gantt_edges(const GanttLayout& layout, Canvas& canvas) {
  for (const auto& lane : layout.edge_lanes) {
    // Merge equal-level runs into single fills; zero columns draw nothing.
    std::size_t i = 0;
    while (i < lane.levels.size()) {
      const std::uint8_t v = lane.levels[i];
      std::size_t j = i + 1;
      while (j < lane.levels.size() && lane.levels[j] == v) ++j;
      if (v != 0) {
        color::Color c = kEdgeHeat;
        c.a = v;
        canvas.fill_rect(lane.x + lane.col_w * static_cast<double>(i),
                         lane.y, lane.col_w * static_cast<double>(j - i),
                         lane.h, c);
      }
      i = j;
    }
  }
  for (const auto& a : layout.edge_arrows) {
    if (!a.critical) paint_edge_arrow(a, canvas, kEdgeLine);
  }
  // Critical path on top, in its own color.
  for (const auto& a : layout.edge_arrows) {
    if (a.critical) paint_edge_arrow(a, canvas, kEdgeCritical);
  }
  canvas.flush();
}

void paint_gantt(const GanttLayout& layout, Canvas& canvas,
                 const GanttStyle& style) {
  paint_gantt_background(layout, canvas);
  paint_gantt_boxes(layout, canvas, style, /*with_labels=*/true);
  paint_gantt_edges(layout, canvas);
  paint_gantt_chrome(layout, canvas, style);
}

PanelExtent gantt_panel_extent(const GanttStyle& style) {
  return PanelExtent{kMarginLeft,
                     style.width - kMarginLeft - kMarginRight};
}

const TaskBox* hit_test(const GanttLayout& layout, double x, double y) {
  // Reverse order: composites and later boxes are drawn on top. Density
  // bins have no backing task, so they are transparent to hits.
  for (auto it = layout.boxes.rbegin(); it != layout.boxes.rend(); ++it) {
    if (it->lod_bin) continue;
    if (x >= it->x && x < it->x + std::max(it->w, 1.0) && y >= it->y &&
        y < it->y + std::max(it->h, 1.0)) {
      return &*it;
    }
  }
  return nullptr;
}

const PanelLayout* panel_at(const GanttLayout& layout, double x, double y) {
  for (const auto& panel : layout.panels) {
    if (x >= panel.x && x < panel.x + panel.w && y >= panel.y &&
        y < panel.y + panel.h) {
      return &panel;
    }
  }
  return nullptr;
}

}  // namespace jedule::render
