#pragma once

// Canvas backend that rasterizes into a Framebuffer using the embedded
// bitmap font — the byte-reproducible path behind PNG and PPM export.
//
// Fills, outlines and axis-aligned lines are queued in a SpanBatch and
// resolved scanline-by-scanline on flush() (overdraw elimination, SIMD
// row kernels); the remaining primitives (text, hatching, diagonal
// lines) flush the batch and paint directly, which keeps the output
// byte-identical to the fully sequential path.

#include <string>

#include "jedule/render/canvas.hpp"
#include "jedule/render/framebuffer.hpp"
#include "jedule/render/span.hpp"

namespace jedule::render {

class RasterCanvas final : public Canvas {
 public:
  /// Draws onto `fb`, which must outlive the canvas.
  explicit RasterCanvas(Framebuffer& fb)
      : fb_(fb), batch_(fb), height_(fb.height()) {}

  /// Band view for tiled parallel painting: `fb` holds the horizontal band
  /// of a `logical_height`-pixel image starting at device row `y_offset`.
  /// All drawing happens in logical coordinates; the offset is applied
  /// after integer rounding, so a band paints exactly the pixels the
  /// full-image canvas would paint into its rows.
  RasterCanvas(Framebuffer& fb, int y_offset, int logical_height)
      : fb_(fb), batch_(fb), y_offset_(y_offset), height_(logical_height) {}

  /// Backstop only — rely on flush(): a canvas destroyed after its
  /// framebuffer was moved away would flush into the moved-from object.
  ~RasterCanvas() override { batch_.flush(); }

  int width() const override { return fb_.width(); }
  int height() const override { return height_; }

  void fill_rect(double x, double y, double w, double h,
                 color::Color c) override;
  void stroke_rect(double x, double y, double w, double h,
                   color::Color c) override;
  void line(double x0, double y0, double x1, double y1,
            color::Color c) override;
  void hatch_rect(double x, double y, double w, double h, int spacing,
                  color::Color c) override;
  void text(double x, double y, std::string_view text, color::Color c,
            int size) override;
  double text_width(std::string_view text, int size) const override;
  double text_height(int size) const override;
  void flush() override { batch_.flush(); }

 private:
  Framebuffer& fb_;
  SpanBatch batch_;
  int y_offset_ = 0;
  int height_;
};

}  // namespace jedule::render
