#pragma once

// Canvas backend that rasterizes into a Framebuffer using the embedded
// bitmap font — the byte-reproducible path behind PNG and PPM export.

#include <string>

#include "jedule/render/canvas.hpp"
#include "jedule/render/framebuffer.hpp"

namespace jedule::render {

class RasterCanvas final : public Canvas {
 public:
  /// Draws onto `fb`, which must outlive the canvas.
  explicit RasterCanvas(Framebuffer& fb) : fb_(fb) {}

  int width() const override { return fb_.width(); }
  int height() const override { return fb_.height(); }

  void fill_rect(double x, double y, double w, double h,
                 color::Color c) override;
  void stroke_rect(double x, double y, double w, double h,
                   color::Color c) override;
  void line(double x0, double y0, double x1, double y1,
            color::Color c) override;
  void hatch_rect(double x, double y, double w, double h, int spacing,
                  color::Color c) override;
  void text(double x, double y, std::string_view text, color::Color c,
            int size) override;
  double text_width(std::string_view text, int size) const override;
  double text_height(int size) const override;

 private:
  Framebuffer& fb_;
};

}  // namespace jedule::render
