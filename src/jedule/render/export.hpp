#pragma once

// Raster rendering entry point (paper Sec. II.D.2). Format dispatch lives
// in exporter.hpp — every output format is an Exporter registered with the
// ExporterRegistry; build a RenderOptions and call render_to_bytes /
// export_schedule from there, or render_raster below for direct
// framebuffer access.

#include "jedule/model/schedule.hpp"
#include "jedule/render/framebuffer.hpp"
#include "jedule/render/options.hpp"

namespace jedule::render {

/// Renders to an in-memory raster. The framebuffer is split into
/// horizontal bands painted concurrently by options.resolved_threads()
/// workers; every band replays the full paint sequence clipped to its
/// rows, so the pixels are byte-identical for every thread count (the
/// single-thread path paints the whole image directly).
Framebuffer render_raster(const model::Schedule& schedule,
                          const RenderOptions& options);

}  // namespace jedule::render
