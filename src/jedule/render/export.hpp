#pragma once

// Raster rendering entry point plus the legacy one-call export API (paper
// Sec. II.D.2). Format dispatch lives in exporter.hpp these days — every
// format is an Exporter registered with the ExporterRegistry — and the
// free functions below survive only as thin deprecated wrappers over that
// registry. New code should build a RenderOptions and call the registry
// API (or render_raster(schedule, options) for direct framebuffer access).

#include <string>

#include "jedule/color/colormap.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/render/framebuffer.hpp"
#include "jedule/render/gantt.hpp"
#include "jedule/render/options.hpp"

namespace jedule::render {

/// Renders to an in-memory raster. The framebuffer is split into
/// horizontal bands painted concurrently by options.resolved_threads()
/// workers; every band replays the full paint sequence clipped to its
/// rows, so the pixels are byte-identical for every thread count (the
/// single-thread path paints the whole image directly).
Framebuffer render_raster(const model::Schedule& schedule,
                          const RenderOptions& options);

enum class ImageFormat { kPng, kPpm, kSvg, kPdf };

/// Format for `path` from its extension (matched case-insensitively, so
/// ".PNG" and ".Svg" work); throws ArgumentError if unknown.
/// Deprecated: prefer ExporterRegistry::find_for_path, which also sees
/// user-registered formats.
ImageFormat format_for_path(const std::string& path);

/// Deprecated wrapper: single-threaded render_raster with loose
/// colormap/style arguments. Prefer render_raster(schedule, options).
Framebuffer render_raster(const model::Schedule& schedule,
                          const color::ColorMap& colormap,
                          const GanttStyle& style);

/// Deprecated wrapper: renders via the registered exporter for `format`.
/// Prefer render_to_bytes(schedule, options, name) from exporter.hpp.
std::string render_to_bytes(const model::Schedule& schedule,
                            const color::ColorMap& colormap,
                            const GanttStyle& style, ImageFormat format);

/// Deprecated wrapper: renders and writes `path` (format from the
/// extension). Prefer export_schedule(schedule, options, path).
void export_schedule(const model::Schedule& schedule,
                     const color::ColorMap& colormap, const GanttStyle& style,
                     const std::string& path);

}  // namespace jedule::render
