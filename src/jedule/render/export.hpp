#pragma once

// One-call export of a schedule to an image file — the core of the command
// line mode (paper Sec. II.D.2). The output format is chosen by file
// extension: .png, .ppm, .svg, .pdf.

#include <string>

#include "jedule/color/colormap.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/render/framebuffer.hpp"
#include "jedule/render/gantt.hpp"

namespace jedule::render {

enum class ImageFormat { kPng, kPpm, kSvg, kPdf };

/// Format for `path` from its extension; throws ArgumentError if unknown.
ImageFormat format_for_path(const std::string& path);

/// Renders to an in-memory raster (the PNG/PPM pipeline).
Framebuffer render_raster(const model::Schedule& schedule,
                          const color::ColorMap& colormap,
                          const GanttStyle& style);

/// Renders and returns the bytes of the image in `format`.
std::string render_to_bytes(const model::Schedule& schedule,
                            const color::ColorMap& colormap,
                            const GanttStyle& style, ImageFormat format);

/// Renders and writes `path` (format from the extension).
void export_schedule(const model::Schedule& schedule,
                     const color::ColorMap& colormap, const GanttStyle& style,
                     const std::string& path);

}  // namespace jedule::render
