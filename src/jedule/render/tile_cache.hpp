#pragma once

// render::TileCache — pan-reusing raster cache for interactive frames.
//
// The panel area of the canvas is split into fixed-width, full-height
// vertical tiles on an *anchored* pixel grid: time t maps to absolute
// pixel column floor((t - anchor) / time_per_px + 0.5), so a pan by a
// whole number of pixels shifts boxes by exactly that integer and tiles
// rendered for the old window stay byte-valid for the new one. A frame
// blits the still-valid tiles and rasterizes only the newly exposed
// strip (misses render in parallel); zoom (window length change),
// reread (content hash change) and style/colormap changes invalidate.
//
// Tiles hold the box layer only; the per-frame overlay repaints header,
// task labels and panel chrome on top, so text never straddles a tile
// seam. Hatched composites bypass the cache (the hatch phase is anchored
// to the box corner, which tile clipping would shift).
//
// Hit/miss/evict counters flow into render::profile (frame_profile.hpp).

#include <cstdint>
#include <list>
#include <map>
#include <optional>

#include "jedule/color/colormap.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/model/task_index.hpp"
#include "jedule/render/frame_profile.hpp"
#include "jedule/render/framebuffer.hpp"
#include "jedule/render/gantt.hpp"

namespace jedule::render {

class TileCache {
 public:
  struct Options {
    int tile_width = 256;
    std::size_t max_tiles = 48;  // raised per frame if a frame needs more
    int threads = 1;             // parallel miss rasterization
  };

  struct Request {
    const model::Schedule* schedule = nullptr;
    const color::ColorMap* colormap = nullptr;
    /// style.time_window is the view window (falls back to the schedule
    /// bounds when unset). LodMode::kDefault resolves to kAuto here —
    /// the tile cache is the interactive path.
    GanttStyle style;
    /// Optional; without it culling degrades to full scans (correct,
    /// slower) and the content hash is recomputed per frame.
    const model::TaskIndex* index = nullptr;
    /// Optional dependency-edge index. Edges paint in the per-frame
    /// overlay only — tiles never contain them, so edge style changes
    /// never invalidate the cache. Without the index an active EdgeMode
    /// falls back to brute-force dependency scans per frame.
    const model::EdgeIndex* edge_index = nullptr;
    /// Bumped by the caller whenever the colormap object changes (the
    /// cache cannot cheaply hash a colormap).
    std::uint64_t colormap_epoch = 0;
    /// Skip Schedule::validate() inside layouts (caller validated once).
    bool validated = false;
  };

  TileCache();
  explicit TileCache(Options opt);

  /// Renders one frame, reusing every tile still valid for the request.
  Framebuffer render_frame(const Request& req);

  /// Drops all tiles but keeps the pixel grid: the next frame re-renders
  /// cold on the *same* grid (the byte-identity reference for tests).
  void clear();

  /// Drops tiles and grid (the next frame re-anchors at its window).
  void invalidate();

  std::size_t tile_count() const { return tiles_.size(); }
  const profile::FrameStats& last_frame() const { return last_; }
  const profile::CacheStats& stats() const { return stats_; }

 private:
  struct Grid {
    double anchor = 0;         // time at absolute pixel column 0
    double time_per_px = 1;
    double cols_per_time = 1;  // the exact reciprocal used for snapping
    std::uint64_t len_bits = 0;  // bit pattern of the window length
  };
  struct Tile {
    Framebuffer fb;
    std::list<long long>::iterator lru;
  };

  Framebuffer render_direct(const Request& req, const model::TimeRange& win,
                            const LayoutHints& base_hints);
  Framebuffer render_tile(const Request& req, const Grid& grid,
                          long long tile_col, const LayoutHints& base_hints,
                          int panel_x,
                          const std::vector<std::uint8_t>& panel_lod) const;
  void drop_tiles();

  Options opt_;
  std::optional<Grid> grid_;
  std::uint64_t content_hash_ = 0;
  std::uint64_t style_hash_ = 0;
  std::map<long long, Tile> tiles_;   // keyed by tile column index
  std::list<long long> lru_;          // front = most recently used
  profile::FrameStats last_;
  profile::CacheStats stats_;
};

}  // namespace jedule::render
