#include "jedule/render/pdf.hpp"

#include "jedule/render/deflate.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::render {

namespace {
std::string num(double v) {
  std::string s = util::format_fixed(v, 2);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s.empty() ? "0" : s;
}

std::string rgb(color::Color c) {
  return num(c.r / 255.0) + " " + num(c.g / 255.0) + " " + num(c.b / 255.0);
}

std::string pdf_escape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '(' || c == ')' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}
}  // namespace

PdfCanvas::PdfCanvas(int width, int height) : width_(width), height_(height) {}

void PdfCanvas::fill_rect(double x, double y, double w, double h,
                          color::Color c) {
  content_ += rgb(c) + " rg " + num(x) + " " + num(flip(y + h)) + " " +
              num(w) + " " + num(h) + " re f\n";
}

void PdfCanvas::stroke_rect(double x, double y, double w, double h,
                            color::Color c) {
  content_ += rgb(c) + " RG " + num(x) + " " + num(flip(y + h)) + " " +
              num(w) + " " + num(h) + " re S\n";
}

void PdfCanvas::line(double x0, double y0, double x1, double y1,
                     color::Color c) {
  content_ += rgb(c) + " RG " + num(x0) + " " + num(flip(y0)) + " m " +
              num(x1) + " " + num(flip(y1)) + " l S\n";
}

void PdfCanvas::text(double x, double y, std::string_view text,
                     color::Color c, int size) {
  content_ += "BT /F1 " + std::to_string(size) + " Tf " + rgb(c) + " rg " +
              num(x) + " " + num(flip(y + size * 0.8)) + " Td (" +
              pdf_escape(text) + ") Tj ET\n";
}

double PdfCanvas::text_width(std::string_view text, int size) const {
  // Helvetica averages ~0.55 em per character; close enough for fitting.
  return static_cast<double>(text.size()) * size * 0.55;
}

double PdfCanvas::text_height(int size) const { return size; }

std::string PdfCanvas::finish(int threads) const {
  // Objects: 1 catalog, 2 pages, 3 page, 4 contents, 5 font.
  const auto z = zlib_compress(
      reinterpret_cast<const std::uint8_t*>(content_.data()),
      content_.size(), DeflateStrategy::dynamic, threads);
  const std::string packed(reinterpret_cast<const char*>(z.data()),
                           z.size());
  std::string objects[6];
  objects[1] = "<< /Type /Catalog /Pages 2 0 R >>";
  objects[2] = "<< /Type /Pages /Kids [3 0 R] /Count 1 >>";
  objects[3] = "<< /Type /Page /Parent 2 0 R /MediaBox [0 0 " +
               std::to_string(width_) + " " + std::to_string(height_) +
               "] /Contents 4 0 R /Resources << /Font << /F1 5 0 R >> >> >>";
  objects[4] = "<< /Length " + std::to_string(packed.size()) +
               " /Filter /FlateDecode >>\nstream\n" + packed +
               "\nendstream";
  objects[5] =
      "<< /Type /Font /Subtype /Type1 /BaseFont /Helvetica >>";

  std::string out = "%PDF-1.4\n";
  std::size_t offsets[6] = {0, 0, 0, 0, 0, 0};
  for (int i = 1; i <= 5; ++i) {
    offsets[i] = out.size();
    out += std::to_string(i) + " 0 obj\n" + objects[i] + "\nendobj\n";
  }
  const std::size_t xref = out.size();
  out += "xref\n0 6\n0000000000 65535 f \n";
  for (int i = 1; i <= 5; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%010zu 00000 n \n", offsets[i]);
    out += buf;
  }
  out += "trailer\n<< /Size 6 /Root 1 0 R >>\nstartxref\n" +
         std::to_string(xref) + "\n%%EOF\n";
  return out;
}

}  // namespace jedule::render
