#pragma once

// Pluggable schedule exporters, the output-side mirror of the input-side
// ScheduleParser registry (paper Sec. II.C.1): every image format is an
// Exporter registered under a format name and a set of file extensions.
// The built-in PNG, PPM, SVG, PDF and ASCII exporters are pre-registered;
// a user extension registers the same way and immediately shows up in the
// CLI's format list and extension dispatch.

#include <memory>
#include <string>
#include <vector>

#include "jedule/model/schedule.hpp"
#include "jedule/render/options.hpp"

namespace jedule::render {

class Exporter {
 public:
  virtual ~Exporter() = default;

  /// Short unique format name ("png", "svg", "ascii", ...).
  virtual std::string name() const = 0;

  /// Extensions claimed by this exporter, each with the leading dot
  /// (".png"). Matching is case-insensitive.
  virtual std::vector<std::string> extensions() const = 0;

  /// One-line description for the CLI's format help.
  virtual std::string description() const = 0;

  /// Renders `schedule` and returns the complete file bytes.
  virtual std::string render(const model::Schedule& schedule,
                             const RenderOptions& options) const = 0;
};

class ExporterRegistry {
 public:
  /// The process-wide registry, pre-populated with the built-in exporters.
  static ExporterRegistry& instance();

  /// Registers an exporter; one with the same name replaces the old one.
  void register_exporter(std::unique_ptr<Exporter> exporter);

  /// Exporter by format name, or nullptr.
  const Exporter* find(const std::string& name) const;

  /// Exporter claiming `path`'s extension (case-insensitive), or nullptr.
  /// Later registrations win so user exporters can take over an extension.
  const Exporter* find_for_path(const std::string& path) const;

  std::vector<std::string> exporter_names() const;

  /// All registered exporters, in registration order.
  std::vector<const Exporter*> exporters() const;

  /// Space-separated list of every registered extension (".png .ppm ...").
  std::string extension_summary() const;

 private:
  std::vector<std::unique_ptr<Exporter>> exporters_;
};

/// Renders with the registered exporter named `format`; throws
/// ArgumentError when no such exporter exists.
std::string render_to_bytes(const model::Schedule& schedule,
                            const RenderOptions& options,
                            const std::string& format);

/// Renders and writes `path`. A nonempty `format` selects the exporter by
/// name; otherwise the (case-insensitive) extension decides. Throws
/// ArgumentError when nothing matches.
void export_schedule(const model::Schedule& schedule,
                     const RenderOptions& options, const std::string& path,
                     const std::string& format = "");

}  // namespace jedule::render
