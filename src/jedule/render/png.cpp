#include "jedule/render/png.hpp"

#include <cstring>

#include "jedule/io/file.hpp"
#include "jedule/render/deflate.hpp"
#include "jedule/render/kernels.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/inflate.hpp"
#include "jedule/util/parallel.hpp"

namespace jedule::render {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out += static_cast<char>(v >> 24);
  out += static_cast<char>(v >> 16);
  out += static_cast<char>(v >> 8);
  out += static_cast<char>(v);
}

void put_chunk(std::string& out, const char type[4], const std::string& data,
               int threads = 1) {
  put_u32(out, static_cast<std::uint32_t>(data.size()));
  const std::size_t crc_start = out.size();
  out.append(type, 4);
  out += data;
  const std::uint32_t crc = crc32_parallel(
      reinterpret_cast<const std::uint8_t*>(out.data() + crc_start),
      out.size() - crc_start, threads);
  put_u32(out, crc);
}

constexpr std::size_t kBytesPerPixel = 3;  // the encoder always emits RGB

}  // namespace

std::vector<std::uint8_t> filter_scanlines(const Framebuffer& fb,
                                           int threads) {
  const auto width = static_cast<std::size_t>(fb.width());
  const auto height = static_cast<std::size_t>(fb.height());
  const std::size_t rowlen = width * kBytesPerPixel;
  const std::size_t stride = rowlen + 1;  // + filter-type byte

  // Pass 1: pack RGBA pixels into raw RGB rows (no filter bytes) so the
  // filter pass can read any row's unfiltered predecessor.
  std::vector<std::uint8_t> rgb(rowlen * height);
  const auto& px = fb.pixels();
  util::parallel_for(height, threads, [&](std::size_t y) {
    std::uint8_t* row = rgb.data() + y * rowlen;
    const std::uint8_t* src = px.data() + y * width * 4;
    for (std::size_t x = 0; x < width; ++x) {
      row[x * 3] = src[x * 4];
      row[x * 3 + 1] = src[x * 4 + 1];
      row[x * 3 + 2] = src[x * 4 + 2];
    }
  });

  // Pass 2: per row, score all five filters by sum of absolute differences
  // and keep the cheapest (ties go to the lowest filter type). The choice
  // is a pure function of the row bytes, so output is identical for every
  // thread count; SAD is exact integer math, so it is also identical for
  // every SIMD kernel.
  std::vector<std::uint8_t> out(stride * height);
  const std::vector<std::uint8_t> zero_row(rowlen, 0);
  const kernels::Kernels& k = kernels::active();
  util::parallel_for(height, threads, [&](std::size_t y) {
    const std::uint8_t* cur = rgb.data() + y * rowlen;
    const std::uint8_t* prev = y > 0 ? cur - rowlen : zero_row.data();
    thread_local std::vector<std::uint8_t> scratch;
    if (scratch.size() < rowlen * 4) scratch.resize(rowlen * 4);

    int best = 0;
    std::uint64_t best_score = k.png_sad(cur, rowlen);
    for (int type = 1; type <= 4; ++type) {
      std::uint8_t* cand = scratch.data() + (type - 1) * rowlen;
      k.png_filter_row(type, cand, cur, prev, rowlen, kBytesPerPixel);
      const std::uint64_t score = k.png_sad(cand, rowlen);
      if (score < best_score) {
        best = type;
        best_score = score;
      }
    }

    std::uint8_t* dst = out.data() + y * stride;
    dst[0] = static_cast<std::uint8_t>(best);
    if (best == 0) {
      std::memcpy(dst + 1, cur, rowlen);
    } else {
      std::memcpy(dst + 1, scratch.data() + (best - 1) * rowlen, rowlen);
    }
  });
  return out;
}

std::string encode_png(const Framebuffer& fb, int threads) {
  std::string out("\x89PNG\r\n\x1a\n", 8);

  std::string ihdr;
  put_u32(ihdr, static_cast<std::uint32_t>(fb.width()));
  put_u32(ihdr, static_cast<std::uint32_t>(fb.height()));
  ihdr += static_cast<char>(8);  // bit depth
  ihdr += static_cast<char>(2);  // color type: truecolor RGB
  ihdr += static_cast<char>(0);  // compression
  ihdr += static_cast<char>(0);  // filter method
  ihdr += static_cast<char>(0);  // no interlace
  put_chunk(out, "IHDR", ihdr);

  const auto raw = filter_scanlines(fb, threads);
  const auto z = zlib_compress(raw.data(), raw.size(),
                               DeflateStrategy::dynamic, threads);
  put_chunk(out, "IDAT",
            std::string(reinterpret_cast<const char*>(z.data()), z.size()),
            threads);
  put_chunk(out, "IEND", "");
  return out;
}

void save_png(const Framebuffer& fb, const std::string& path, int threads) {
  io::write_file(path, encode_png(fb, threads));
}

Framebuffer decode_png(const std::string& bytes) {
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
  const std::size_t size = bytes.size();
  if (size < 8 || std::memcmp(data, "\x89PNG\r\n\x1a\n", 8) != 0) {
    throw ParseError("png: bad signature");
  }
  auto read_u32 = [&](std::size_t pos) {
    return (static_cast<std::uint32_t>(data[pos]) << 24) |
           (static_cast<std::uint32_t>(data[pos + 1]) << 16) |
           (static_cast<std::uint32_t>(data[pos + 2]) << 8) |
           static_cast<std::uint32_t>(data[pos + 3]);
  };

  int width = 0;
  int height = 0;
  int channels = 0;
  std::vector<std::uint8_t> idat;
  std::size_t pos = 8;
  bool done = false;
  while (!done) {
    if (pos + 8 > size) throw ParseError("png: truncated chunk header");
    const std::uint32_t len = read_u32(pos);
    const char* type = reinterpret_cast<const char*>(data + pos + 4);
    if (pos + 12 + len > size) throw ParseError("png: truncated chunk");
    const std::uint8_t* body = data + pos + 8;
    if (std::memcmp(type, "IHDR", 4) == 0) {
      if (len != 13) throw ParseError("png: bad IHDR");
      width = static_cast<int>(read_u32(pos + 8));
      height = static_cast<int>(read_u32(pos + 12));
      if (body[8] != 8) throw ParseError("png: only 8-bit depth supported");
      if (body[9] == 2) channels = 3;
      else if (body[9] == 6) channels = 4;
      else throw ParseError("png: only RGB/RGBA supported");
      if (body[12] != 0) throw ParseError("png: interlacing unsupported");
    } else if (std::memcmp(type, "IDAT", 4) == 0) {
      idat.insert(idat.end(), body, body + len);
    } else if (std::memcmp(type, "IEND", 4) == 0) {
      done = true;
    }
    pos += 12 + len;
  }
  if (width <= 0 || height <= 0 || channels == 0) {
    throw ParseError("png: missing IHDR");
  }

  const auto raw = util::zlib_decompress(idat.data(), idat.size());
  const std::size_t stride =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(channels) + 1;
  if (raw.size() != stride * static_cast<std::size_t>(height)) {
    throw ParseError("png: pixel data size mismatch");
  }

  // Undo per-scanline filtering through the dispatched unfilter kernel
  // (the same rows the encoder's filter kernel produced).
  std::vector<std::uint8_t> img(stride * static_cast<std::size_t>(height));
  const std::size_t rowlen = stride - 1;
  const std::vector<std::uint8_t> zero_row(rowlen, 0);
  const auto bpp = static_cast<std::size_t>(channels);
  const kernels::Kernels& k = kernels::active();
  for (int y = 0; y < height; ++y) {
    const std::uint8_t* src =
        raw.data() + static_cast<std::size_t>(y) * stride;
    std::uint8_t* dst = img.data() + static_cast<std::size_t>(y) * stride;
    const std::uint8_t* above =
        y > 0 ? img.data() + static_cast<std::size_t>(y - 1) * stride + 1
              : zero_row.data();
    const int filter = src[0];
    if (filter > 4) throw ParseError("png: unknown filter type");
    dst[0] = 0;
    std::memcpy(dst + 1, src + 1, rowlen);
    k.png_unfilter_row(filter, dst + 1, above, rowlen, bpp);
  }

  Framebuffer fb(width, height);
  for (int y = 0; y < height; ++y) {
    const std::uint8_t* row =
        img.data() + static_cast<std::size_t>(y) * stride + 1;
    for (int x = 0; x < width; ++x) {
      Color c;
      c.r = row[x * channels];
      c.g = row[x * channels + 1];
      c.b = row[x * channels + 2];
      c.a = channels == 4 ? row[x * channels + 3] : 255;
      fb.set_pixel_unchecked(x, y, c);
    }
  }
  return fb;
}

}  // namespace jedule::render
