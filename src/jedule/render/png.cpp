#include "jedule/render/png.hpp"

#include <cstring>

#include "jedule/io/file.hpp"
#include "jedule/render/deflate.hpp"
#include "jedule/util/inflate.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/parallel.hpp"

namespace jedule::render {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out += static_cast<char>(v >> 24);
  out += static_cast<char>(v >> 16);
  out += static_cast<char>(v >> 8);
  out += static_cast<char>(v);
}

void put_chunk(std::string& out, const char type[4], const std::string& data,
               int threads = 1) {
  put_u32(out, static_cast<std::uint32_t>(data.size()));
  const std::size_t crc_start = out.size();
  out.append(type, 4);
  out += data;
  const std::uint32_t crc = crc32_parallel(
      reinterpret_cast<const std::uint8_t*>(out.data() + crc_start),
      out.size() - crc_start, threads);
  put_u32(out, crc);
}

int paeth(int a, int b, int c) {
  const int p = a + b - c;
  const int pa = std::abs(p - a);
  const int pb = std::abs(p - b);
  const int pc = std::abs(p - c);
  if (pa <= pb && pa <= pc) return a;
  if (pb <= pc) return b;
  return c;
}

}  // namespace

std::string encode_png(const Framebuffer& fb, int threads) {
  std::string out("\x89PNG\r\n\x1a\n", 8);

  std::string ihdr;
  put_u32(ihdr, static_cast<std::uint32_t>(fb.width()));
  put_u32(ihdr, static_cast<std::uint32_t>(fb.height()));
  ihdr += static_cast<char>(8);  // bit depth
  ihdr += static_cast<char>(2);  // color type: truecolor RGB
  ihdr += static_cast<char>(0);  // compression
  ihdr += static_cast<char>(0);  // filter method
  ihdr += static_cast<char>(0);  // no interlace
  put_chunk(out, "IHDR", ihdr);

  // Raw scanlines: filter byte 0 (None) + RGB triples. The deflate LZ77
  // stage captures the long horizontal runs of a Gantt chart directly.
  const std::size_t stride = static_cast<std::size_t>(fb.width()) * 3 + 1;
  std::vector<std::uint8_t> raw(stride * static_cast<std::size_t>(fb.height()));
  const auto& px = fb.pixels();
  util::parallel_for(static_cast<std::size_t>(fb.height()), threads,
                     [&](std::size_t y) {
    std::uint8_t* row = raw.data() + y * stride;
    row[0] = 0;  // filter: None
    const std::uint8_t* src =
        px.data() + y * static_cast<std::size_t>(fb.width()) * 4;
    for (int x = 0; x < fb.width(); ++x) {
      row[1 + x * 3] = src[x * 4];
      row[2 + x * 3] = src[x * 4 + 1];
      row[3 + x * 3] = src[x * 4 + 2];
    }
  });

  const auto z = zlib_compress(raw.data(), raw.size(), /*compress=*/true,
                               threads);
  put_chunk(out, "IDAT",
            std::string(reinterpret_cast<const char*>(z.data()), z.size()),
            threads);
  put_chunk(out, "IEND", "");
  return out;
}

void save_png(const Framebuffer& fb, const std::string& path, int threads) {
  io::write_file(path, encode_png(fb, threads));
}

Framebuffer decode_png(const std::string& bytes) {
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
  const std::size_t size = bytes.size();
  if (size < 8 || std::memcmp(data, "\x89PNG\r\n\x1a\n", 8) != 0) {
    throw ParseError("png: bad signature");
  }
  auto read_u32 = [&](std::size_t pos) {
    return (static_cast<std::uint32_t>(data[pos]) << 24) |
           (static_cast<std::uint32_t>(data[pos + 1]) << 16) |
           (static_cast<std::uint32_t>(data[pos + 2]) << 8) |
           static_cast<std::uint32_t>(data[pos + 3]);
  };

  int width = 0;
  int height = 0;
  int channels = 0;
  std::vector<std::uint8_t> idat;
  std::size_t pos = 8;
  bool done = false;
  while (!done) {
    if (pos + 8 > size) throw ParseError("png: truncated chunk header");
    const std::uint32_t len = read_u32(pos);
    const char* type = reinterpret_cast<const char*>(data + pos + 4);
    if (pos + 12 + len > size) throw ParseError("png: truncated chunk");
    const std::uint8_t* body = data + pos + 8;
    if (std::memcmp(type, "IHDR", 4) == 0) {
      if (len != 13) throw ParseError("png: bad IHDR");
      width = static_cast<int>(read_u32(pos + 8));
      height = static_cast<int>(read_u32(pos + 12));
      if (body[8] != 8) throw ParseError("png: only 8-bit depth supported");
      if (body[9] == 2) channels = 3;
      else if (body[9] == 6) channels = 4;
      else throw ParseError("png: only RGB/RGBA supported");
      if (body[12] != 0) throw ParseError("png: interlacing unsupported");
    } else if (std::memcmp(type, "IDAT", 4) == 0) {
      idat.insert(idat.end(), body, body + len);
    } else if (std::memcmp(type, "IEND", 4) == 0) {
      done = true;
    }
    pos += 12 + len;
  }
  if (width <= 0 || height <= 0 || channels == 0) {
    throw ParseError("png: missing IHDR");
  }

  const auto raw = util::zlib_decompress(idat.data(), idat.size());
  const std::size_t stride =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(channels) + 1;
  if (raw.size() != stride * static_cast<std::size_t>(height)) {
    throw ParseError("png: pixel data size mismatch");
  }

  // Undo per-scanline filtering.
  std::vector<std::uint8_t> img(stride * static_cast<std::size_t>(height));
  const int bpp = channels;
  for (int y = 0; y < height; ++y) {
    const std::uint8_t* src = raw.data() + static_cast<std::size_t>(y) * stride;
    std::uint8_t* dst = img.data() + static_cast<std::size_t>(y) * stride;
    const std::uint8_t* above =
        y > 0 ? img.data() + static_cast<std::size_t>(y - 1) * stride : nullptr;
    const int filter = src[0];
    dst[0] = 0;
    const int rowlen = static_cast<int>(stride) - 1;
    for (int i = 0; i < rowlen; ++i) {
      const int x = src[1 + i];
      const int a = i >= bpp ? dst[1 + i - bpp] : 0;
      const int b = above != nullptr ? above[1 + i] : 0;
      const int c = (above != nullptr && i >= bpp) ? above[1 + i - bpp] : 0;
      int v = 0;
      switch (filter) {
        case 0: v = x; break;
        case 1: v = x + a; break;
        case 2: v = x + b; break;
        case 3: v = x + (a + b) / 2; break;
        case 4: v = x + paeth(a, b, c); break;
        default: throw ParseError("png: unknown filter type");
      }
      dst[1 + i] = static_cast<std::uint8_t>(v & 0xFF);
    }
  }

  Framebuffer fb(width, height);
  for (int y = 0; y < height; ++y) {
    const std::uint8_t* row = img.data() + static_cast<std::size_t>(y) * stride + 1;
    for (int x = 0; x < width; ++x) {
      Color c;
      c.r = row[x * channels];
      c.g = row[x * channels + 1];
      c.b = row[x * channels + 2];
      c.a = channels == 4 ? row[x * channels + 3] : 255;
      fb.set_pixel_unchecked(x, y, c);
    }
  }
  return fb;
}

}  // namespace jedule::render
