#pragma once

// RenderOptions bundles everything an export needs — style, colormap and
// worker-thread count — into one object handed CLI -> gantt -> exporter,
// replacing the per-call (colormap, style, ...) parameter threading.

#include "jedule/color/colormap.hpp"
#include "jedule/render/gantt.hpp"
#include "jedule/util/parallel.hpp"

namespace jedule::render {

struct RenderOptions {
  GanttStyle style;
  color::ColorMap colormap = color::standard_colormap();

  /// Worker threads for composite synthesis, band rasterization and PNG
  /// encoding. <= 0 (the default) resolves to JEDULE_THREADS when set,
  /// else to the hardware concurrency. The rendered bytes are identical
  /// for every thread count.
  int threads = 0;

  /// Optional spatial index over the schedule (must outlive the render).
  /// With a time window set, the layout culls to the window through it —
  /// same boxes, O(visible) work — instead of scanning every task.
  const model::TaskIndex* task_index = nullptr;

  /// Optional dependency-edge index (must outlive the render); see
  /// LayoutHints::edge_index. With it, edge layout costs O(log n +
  /// visible) per panel instead of a brute-force dependency scan.
  const model::EdgeIndex* edge_index = nullptr;

  /// Precomputed unfiltered composite list (must outlive the render); see
  /// LayoutHints::composites. The engine passes its per-entry cached list
  /// so repeated/appended renders skip the full overlap sweep.
  const std::vector<model::Composite>* composites = nullptr;

  /// Skip Schedule::validate() inside the layout — set by callers that
  /// validated at ingest (the engine's entries always are).
  bool assume_validated = false;

  int resolved_threads() const { return util::resolve_threads(threads); }
};

/// layout_gantt with the bundled colormap/style/threads.
inline GanttLayout layout_gantt(const model::Schedule& schedule,
                                const RenderOptions& options) {
  LayoutHints hints;
  hints.index = options.task_index;
  hints.edge_index = options.edge_index;
  hints.composites = options.composites;
  hints.assume_validated = options.assume_validated;
  return layout_gantt(schedule, options.colormap, options.style,
                      options.resolved_threads(), hints);
}

}  // namespace jedule::render
