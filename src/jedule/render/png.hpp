#pragma once

// PNG (RFC 2083) encoder for Framebuffer images, plus a decoder for the
// subset this encoder emits (8-bit RGB/RGBA, filter types 0/1), used by the
// round-trip tests.

#include <string>

#include "jedule/render/framebuffer.hpp"

namespace jedule::render {

/// Encodes as an 8-bit RGB PNG (the framebuffer is always opaque). The
/// zlib payload uses the in-tree fixed-Huffman deflate. Scanline packing,
/// deflate chunks and the IDAT CRC run over up to `threads` workers; the
/// encoded bytes are identical for every thread count.
std::string encode_png(const Framebuffer& fb, int threads = 1);

void save_png(const Framebuffer& fb, const std::string& path,
              int threads = 1);

/// Decodes a PNG produced by encode_png (or any 8-bit RGB/RGBA PNG with
/// filters None/Sub/Up/Average/Paeth and no interlacing).
Framebuffer decode_png(const std::string& bytes);

}  // namespace jedule::render
